type process =
  | Poisson of { rate : float }
  | Bursty of { rate : float; on_mean : float; off_mean : float }
  | Hotspot of { rate : float; hot_fraction : float; hot_share : float }

let pp_process ppf = function
  | Poisson { rate } -> Format.fprintf ppf "poisson:%g" rate
  | Bursty { rate; on_mean; off_mean } ->
      Format.fprintf ppf "bursty:%g:%g:%g" rate on_mean off_mean
  | Hotspot { rate; hot_fraction; hot_share } ->
      Format.fprintf ppf "hotspot:%g:%g:%g" rate hot_fraction hot_share

let process_to_string p = Format.asprintf "%a" pp_process p

(* Shared parameter validation: [parse] reports these as [Error]
   (clean CLI diagnostics), [create] raises [Invalid_argument]. *)
let process_error = function
  | Poisson { rate } | Bursty { rate; _ } | Hotspot { rate; _ }
    when not (Float.is_finite rate && rate >= 0.0) ->
      Some "rate must be finite and non-negative"
  | Bursty { on_mean; _ } when not (Float.is_finite on_mean && on_mean >= 1.0)
    ->
      Some "on_mean must be >= 1"
  | Bursty { off_mean; _ }
    when not (Float.is_finite off_mean && off_mean >= 1.0) ->
      Some "off_mean must be >= 1"
  | Hotspot { hot_fraction; _ }
    when not (hot_fraction >= 0.0 && hot_fraction <= 1.0) ->
      Some "hot_fraction outside [0, 1]"
  | Hotspot { hot_share; _ } when not (hot_share >= 0.0 && hot_share <= 1.0)
    ->
      Some "hot_share outside [0, 1]"
  | _ -> None

let parse s =
  let num tok =
    match float_of_string_opt tok with
    | Some v when Float.is_finite v -> Ok v
    | _ -> Error (Printf.sprintf "workload: bad number %S" tok)
  in
  let ( let* ) r f = Result.bind r f in
  let validated p =
    match process_error p with
    | None -> Ok p
    | Some msg -> Error ("workload: " ^ msg)
  in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "poisson"; r ] ->
      let* rate = num r in
      validated (Poisson { rate })
  | [ "bursty"; r; on; off ] ->
      let* rate = num r in
      let* on_mean = num on in
      let* off_mean = num off in
      validated (Bursty { rate; on_mean; off_mean })
  | [ "hotspot"; r; f; sh ] ->
      let* rate = num r in
      let* hot_fraction = num f in
      let* hot_share = num sh in
      validated (Hotspot { rate; hot_fraction; hot_share })
  | _ ->
      Error
        (Printf.sprintf
           "workload: %S does not match poisson:RATE | \
            bursty:RATE:ON_MEAN:OFF_MEAN | hotspot:RATE:HOT_FRACTION:HOT_SHARE"
           s)

(* --- the draw substrate ---

   A 63-bit SplitMix-style finalizer on native ints: the serving loop
   cannot afford the boxed-int64 allocation Prng.Splitmix incurs per
   draw, and counter-mode keying (hash of (seed, node, round, i)) is
   what makes arrival plans order-independent in the first place.  The
   multipliers are odd constants below 2^62. *)

let mix z =
  let z = (z lxor (z lsr 31)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 29)) * 0x3C6EF372FE94F82B in
  (z lxor (z lsr 32)) land max_int

(* Uniform in (0, 1]: 52 fresh mantissa bits, never exactly 0 (safe
   under log). *)
let u52 h = float_of_int ((h land 0xF_FFFF_FFFF_FFFF) + 1) *. 0x1p-52

(* Bounded Knuth sampler: Poisson(λ) given exp(-λ), capped at 64 (a
   fixed draw budget keeps the per-(node, round) cost bounded; at the
   per-node rates that matter here λ « 64 and the cap is unreachable).

   The sampler is written allocation-free for the non-flambda compiler:
   local [ref] cells and floats crossing call boundaries would each
   cost a minor allocation, so the running product p and the threshold
   exp(-λ) live in a 2-slot scratch float array (unboxed stores/loads)
   and the recursion carries only ints. *)
let max_count = 64

let round_salt = 0x9E3779B9

(* Geometric period length with the given mean (≥ 1): inverse transform
   of P(len = j) = (1-p)^(j-1) p, p = 1/mean. *)
let geometric_len ~mean u =
  if mean <= 1.0 then 1
  else begin
    let ln1p = log (1.0 -. (1.0 /. mean)) in
    let l = int_of_float (ceil (log u /. ln1p)) in
    if l < 1 then 1 else l
  end

type t = {
  process : process;
  n : int;
  base : int array;  (* per-node arrival draw channel *)
  dur_base : int array;  (* per-node period-length draw channel *)
  eneg : float array;  (* per-node exp(-λ); for bursty, the ON-state λ *)
  last : int array;  (* monotonicity check *)
  (* bursty modulator state *)
  on_state : Bytes.t;
  until : int array;  (* current period's end round (exclusive) *)
  cycle : int array;  (* next period-length draw index *)
  on_mean : float;
  off_mean : float;
  is_hot : Bytes.t;
  scratch : float array;  (* 0: Knuth running product; 1: exp(-λ) *)
}

let n t = t.n

let process t = t.process

let hot t ~node =
  if node < 0 || node >= t.n then invalid_arg "Workload.hot: node out of range";
  Bytes.get t.is_hot node = '\001'

let create ~process ~n ~seed () =
  if n < 1 then invalid_arg "Workload.create: need at least one node";
  (match process_error process with
  | Some msg -> invalid_arg ("Workload.create: " ^ msg)
  | None -> ());
  let root = mix (seed lxor 0x517CC1B727220A95) in
  let base = Array.init n (fun v -> mix (root + ((v + 1) * 0x2545F4914F6CDD1D))) in
  let dur_base = Array.init n (fun v -> mix (base.(v) lxor 0x27220A95)) in
  let is_hot = Bytes.make n '\000' in
  (match process with
  | Hotspot { hot_fraction; _ } ->
      let hot_root = mix (root lxor 0x1B873593) in
      let threshold = int_of_float (hot_fraction *. 1048576.0) in
      for v = 0 to n - 1 do
        if mix (hot_root + v) land 0xFFFFF < threshold then
          Bytes.set is_hot v '\001'
      done;
      (* the hot set is never empty when a positive fraction was asked *)
      if hot_fraction > 0.0 then begin
        let any = ref false in
        Bytes.iter (fun c -> if c = '\001' then any := true) is_hot;
        if not !any then Bytes.set is_hot (mix hot_root mod n) '\001'
      end
  | Poisson _ | Bursty _ -> ());
  let lam v =
    match process with
    | Poisson { rate } -> rate /. float_of_int n
    | Bursty { rate; on_mean; off_mean } ->
        (* ON-state rate, scaled so the time average is rate/n *)
        rate /. float_of_int n *. ((on_mean +. off_mean) /. on_mean)
    | Hotspot { rate; hot_fraction = _; hot_share } ->
        let hot_count = ref 0 in
        Bytes.iter (fun c -> if c = '\001' then incr hot_count) is_hot;
        let hot_count = !hot_count in
        let cold_count = n - hot_count in
        if hot_count = 0 then rate /. float_of_int n
        else if cold_count = 0 then rate /. float_of_int n
        else if Bytes.get is_hot v = '\001' then
          rate *. hot_share /. float_of_int hot_count
        else rate *. (1.0 -. hot_share) /. float_of_int cold_count
  in
  let eneg = Array.init n (fun v -> exp (-.lam v)) in
  let on_mean, off_mean =
    match process with
    | Bursty { on_mean; off_mean; _ } -> (on_mean, off_mean)
    | Poisson _ | Hotspot _ -> (1.0, 1.0)
  in
  let on_state = Bytes.make n '\000' in
  let until = Array.make n 0 in
  let cycle = Array.make n 1 in
  (match process with
  | Bursty _ ->
      (* draw 0 picks the initial phase (stationary-ish split), draw 1
         its length *)
      for v = 0 to n - 1 do
        let u0 = u52 (mix (dur_base.(v) + 0)) in
        let on = u0 <= on_mean /. (on_mean +. off_mean) in
        if on then Bytes.set on_state v '\001';
        let mean = if on then on_mean else off_mean in
        until.(v) <- geometric_len ~mean (u52 (mix (dur_base.(v) + 1)));
        cycle.(v) <- 2
      done
  | Poisson _ | Hotspot _ -> ());
  {
    process;
    n;
    base;
    dur_base;
    eneg;
    last = Array.make n 0;
    on_state;
    until;
    cycle;
    on_mean;
    off_mean;
    is_hot;
    scratch = Array.make 2 0.0;
  }

(* scratch.(0) > scratch.(1) is p > exp(-λ); draws k+1, k+2, ... fold in
   until the product crosses the threshold.  Int-only signature. *)
let rec knuth t base round k =
  if Array.unsafe_get t.scratch 0 > Array.unsafe_get t.scratch 1
     && k < max_count
  then begin
    let h = mix (base + (round * round_salt) + (k + 1)) in
    Array.unsafe_set t.scratch 0
      (Array.unsafe_get t.scratch 0
      *. (float_of_int ((h land 0xF_FFFF_FFFF_FFFF) + 1) *. 0x1p-52));
    knuth t base round (k + 1)
  end
  else k

let sample_poisson t ~node ~round =
  let base = Array.unsafe_get t.base node in
  let h0 = mix (base + (round * round_salt)) in
  Array.unsafe_set t.scratch 0
    (float_of_int ((h0 land 0xF_FFFF_FFFF_FFFF) + 1) *. 0x1p-52);
  Array.unsafe_set t.scratch 1 (Array.unsafe_get t.eneg node);
  knuth t base round 0

let arrivals t ~node ~round =
  if node < 0 || node >= t.n then
    invalid_arg "Workload.arrivals: node out of range";
  if round < 0 then invalid_arg "Workload.arrivals: negative round";
  if round < t.last.(node) then
    invalid_arg "Workload.arrivals: rounds must be non-decreasing per node";
  t.last.(node) <- round;
  match t.process with
  | Poisson _ | Hotspot _ -> sample_poisson t ~node ~round
  | Bursty _ ->
      (* catch the on/off cursor up to this round; the geometric draw is
         inlined (cf. geometric_len) so the floats stay in unboxed
         locals — this loop runs at most once per period, not per
         round *)
      while round >= Array.unsafe_get t.until node do
        let on = Bytes.unsafe_get t.on_state node = '\001' in
        let on = not on in
        Bytes.unsafe_set t.on_state node (if on then '\001' else '\000');
        let mean = if on then t.on_mean else t.off_mean in
        let c = Array.unsafe_get t.cycle node in
        let h = mix (Array.unsafe_get t.dur_base node + c) in
        let u = float_of_int ((h land 0xF_FFFF_FFFF_FFFF) + 1) *. 0x1p-52 in
        let len =
          if mean <= 1.0 then 1
          else begin
            let l =
              int_of_float (ceil (log u /. log (1.0 -. (1.0 /. mean))))
            in
            if l < 1 then 1 else l
          end
        in
        Array.unsafe_set t.until node (Array.unsafe_get t.until node + len);
        Array.unsafe_set t.cycle node (c + 1)
      done;
      if Bytes.unsafe_get t.on_state node = '\001' then
        sample_poisson t ~node ~round
      else 0
