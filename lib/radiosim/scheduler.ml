type t = {
  name : string;
  active : round:int -> edge:int -> bool;
  (* Batch form of [active]: set byte [e] of the buffer to '\001' iff
     edge [e] is present this round.  Semantically redundant with
     [active]; kept as a separate field so constant and periodic
     schedulers can fill with a single [Bytes.fill] instead of one
     predicate call per edge. *)
  fill : round:int -> Bytes.t -> unit;
  (* Sparse form: write the indices of the active edges among [0, m)
     into the buffer prefix in strictly increasing order and return
     their count.  Semantically redundant with [active] too; kept
     separate so schedulers whose expected active set is much smaller
     than m can emit it directly instead of resolving every edge. *)
  fill_sparse : round:int -> m:int -> int array -> int;
  (* Whether [fill_sparse] does work proportional to the emitted set
     (true) or resolves every one of the m edges per round (false).
     Drives the [scheduler.edges_resolved] observability counter. *)
  sparse_native : bool;
}

let name t = t.name
let active t = t.active
let resolves_sparsely t = t.sparse_native

let fill_of_active active ~round buf =
  for e = 0 to Bytes.length buf - 1 do
    Bytes.unsafe_set buf e (if active ~round ~edge:e then '\001' else '\000')
  done

let sparse_of_active active ~round ~m buf =
  if Array.length buf < m then
    invalid_arg "Scheduler.fill_active_sparse: buffer shorter than m";
  let k = ref 0 in
  for e = 0 to m - 1 do
    if active ~round ~edge:e then begin
      Array.unsafe_set buf !k e;
      incr k
    end
  done;
  !k

let fill_active t ~round buf = t.fill ~round buf

let fill_active_sparse t ~round ~m buf =
  if m < 0 then invalid_arg "Scheduler.fill_active_sparse: negative m";
  if Array.length buf < m then
    invalid_arg "Scheduler.fill_active_sparse: buffer shorter than m";
  t.fill_sparse ~round ~m buf

let make ~name active =
  {
    name;
    active;
    fill = fill_of_active active;
    fill_sparse = sparse_of_active active;
    sparse_native = false;
  }

let constant_fill on ~round:_ buf =
  Bytes.fill buf 0 (Bytes.length buf) (if on then '\001' else '\000')

let sparse_all ~m buf =
  for e = 0 to m - 1 do
    Array.unsafe_set buf e e
  done;
  m

let constant_sparse on ~round:_ ~m buf = if on then sparse_all ~m buf else 0

let reliable_only =
  {
    name = "reliable-only";
    active = (fun ~round:_ ~edge:_ -> false);
    fill = constant_fill false;
    fill_sparse = constant_sparse false;
    sparse_native = true;
  }

let all_edges =
  {
    name = "all-edges";
    active = (fun ~round:_ ~edge:_ -> true);
    fill = constant_fill true;
    fill_sparse = constant_sparse true;
    sparse_native = true;
  }

let bernoulli ~seed ~p =
  let active ~round ~edge =
    let h =
      Prng.Splitmix.mix
        (Int64.add
           (Int64.mul (Int64.of_int round) 0x100000001B3L)
           (Int64.of_int ((edge * 2654435761) + seed)))
    in
    (* Scale 53 hash bits into [0, 1) and compare against [p], exactly
       mirroring Rng.float / Rng.bernoulli. *)
    let v = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0 in
    v < p
  in
  (* The batch fills hoist the round term out of the per-edge hash: one
     multiply per round, one mix per edge. *)
  let fill ~round buf =
    let round_term = Int64.mul (Int64.of_int round) 0x100000001B3L in
    for edge = 0 to Bytes.length buf - 1 do
      let h =
        Prng.Splitmix.mix
          (Int64.add round_term (Int64.of_int ((edge * 2654435761) + seed)))
      in
      let v =
        Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
      in
      Bytes.unsafe_set buf edge (if v < p then '\001' else '\000')
    done
  in
  let fill_sparse ~round ~m buf =
    let round_term = Int64.mul (Int64.of_int round) 0x100000001B3L in
    let k = ref 0 in
    for edge = 0 to m - 1 do
      let h =
        Prng.Splitmix.mix
          (Int64.add round_term (Int64.of_int ((edge * 2654435761) + seed)))
      in
      let v =
        Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
      in
      if v < p then begin
        Array.unsafe_set buf !k edge;
        incr k
      end
    done;
    !k
  in
  { name = Printf.sprintf "bernoulli(p=%.2f)" p; active; fill; fill_sparse;
    sparse_native = false }

(* [bernoulli_sparse] draws each round's active set by geometric skip
   sampling over the edge indices: successive gaps between active edges
   are i.i.d. Geometric(p), so the emitted set is a Bernoulli(p) process
   over [0, m) — per-edge marginal p, per-round count Binomial(m, p),
   edges independent — without ever touching an inactive edge.  (This is
   the standard equivalent of sampling the count Binomial(m, p) and then
   placing it uniformly; the two-sample tests in the suite check both
   marginals against the dense [bernoulli].)  The per-round draw stream
   is its own SplitMix generator seeded from (seed, round), so the
   scheduler stays oblivious: the set is a pure function of the round.

   [active] must agree edge-by-edge with the emitted set, but the set is
   sampled jointly, so membership queries replay the same walk.  A
   one-round memo keeps that cheap for the engine's query patterns
   (ascending rounds, with [run_reference] probing one round many
   times); the memo makes a [t] unsafe to share across domains, which
   matches the existing per-trial ownership discipline. *)
let bernoulli_sparse ~seed ~p =
  let round_stream round =
    Prng.Splitmix.create
      (Prng.Splitmix.mix
         (Int64.add
            (Int64.mul (Int64.of_int round) 0x100000001B3L)
            (Int64.of_int seed)))
  in
  let log1mp = if p < 1.0 then Float.log1p (-.p) else Float.neg_infinity in
  let uniform g =
    Int64.to_float (Int64.shift_right_logical (Prng.Splitmix.next g) 11)
    /. 9007199254740992.0
  in
  (* Number of inactive edges before the next active one; [None] when the
     next active edge certainly lies beyond any index representable in
     the caller's range. *)
  let draw_gap g =
    let u = uniform g in
    let gf = Float.floor (Float.log1p (-.u) /. log1mp) in
    if gf >= 4.611686018427387904e18 (* 2^62: past any edge index *) then None
    else Some (int_of_float gf)
  in
  if p <= 0.0 then
    { reliable_only with name = Printf.sprintf "bernoulli-sparse(p=%.2f)" p }
  else if p >= 1.0 then
    { all_edges with name = Printf.sprintf "bernoulli-sparse(p=%.2f)" p }
  else begin
    let fill_sparse ~round ~m buf =
      let g = round_stream round in
      let k = ref 0 in
      let pos = ref (-1) in
      let running = ref true in
      while !running do
        (match draw_gap g with
        | None -> running := false
        | Some gap when gap >= m - !pos - 1 -> running := false
        | Some gap ->
            pos := !pos + 1 + gap;
            Array.unsafe_set buf !k !pos;
            incr k)
      done;
      !k
    in
    (* One-round memo for membership queries: the decided prefix of the
       walk, extended lazily as larger edge indices are probed. *)
    let memo_round = ref (-1) in
    let memo_gen = ref (round_stream 0) in
    let memo_frontier = ref (-1) in
    let memo_hits = Hashtbl.create 64 in
    let active ~round ~edge =
      if !memo_round <> round then begin
        memo_round := round;
        memo_gen := round_stream round;
        memo_frontier := -1;
        Hashtbl.reset memo_hits
      end;
      while !memo_frontier < edge do
        match draw_gap !memo_gen with
        | None -> memo_frontier := max_int
        | Some gap ->
            let s = !memo_frontier + 1 + gap in
            if s < 0 (* overflow *) then memo_frontier := max_int
            else begin
              Hashtbl.replace memo_hits s ();
              memo_frontier := s
            end
      done;
      Hashtbl.mem memo_hits edge
    in
    let fill ~round buf =
      Bytes.fill buf 0 (Bytes.length buf) '\000';
      let m = Bytes.length buf in
      let idx = Array.make (max m 1) 0 in
      let k = fill_sparse ~round ~m idx in
      for i = 0 to k - 1 do
        Bytes.unsafe_set buf (Array.unsafe_get idx i) '\001'
      done
    in
    {
      name = Printf.sprintf "bernoulli-sparse(p=%.2f)" p;
      active;
      fill;
      fill_sparse;
      sparse_native = true;
    }
  end

let flicker ~period ~duty =
  if period <= 0 || duty < 0 || duty > period then
    invalid_arg "Scheduler.flicker: need 0 <= duty <= period, period > 0";
  let on round = round mod period < duty in
  {
    name = Printf.sprintf "flicker(%d/%d)" duty period;
    active = (fun ~round ~edge:_ -> on round);
    fill = (fun ~round buf -> constant_fill (on round) ~round buf);
    fill_sparse = (fun ~round ~m buf -> constant_sparse (on round) ~round ~m buf);
    sparse_native = true;
  }

let edge_phase_flicker ~period =
  if period <= 0 then invalid_arg "Scheduler.edge_phase_flicker: period > 0";
  let active ~round ~edge = round mod period = edge mod period in
  {
    name = Printf.sprintf "edge-phase(%d)" period;
    active;
    fill =
      (fun ~round buf ->
        (* Only every [period]-th edge is on: clear, then stride. *)
        Bytes.fill buf 0 (Bytes.length buf) '\000';
        let e = ref (round mod period) in
        while !e < Bytes.length buf do
          Bytes.unsafe_set buf !e '\001';
          e := !e + period
        done);
    fill_sparse =
      (fun ~round ~m buf ->
        let k = ref 0 in
        let e = ref (round mod period) in
        while !e < m do
          Array.unsafe_set buf !k !e;
          incr k;
          e := !e + period
        done;
        !k);
    sparse_native = true;
  }

let thwart ~hot =
  {
    name = "thwart";
    active = (fun ~round ~edge:_ -> hot round);
    fill = (fun ~round buf -> constant_fill (hot round) ~round buf);
    fill_sparse = (fun ~round ~m buf -> constant_sparse (hot round) ~round ~m buf);
    sparse_native = true;
  }

let pp ppf t = Format.pp_print_string ppf t.name
