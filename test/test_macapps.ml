(* Tests for the higher-level abstract-MAC-layer applications:
   multi-message broadcast, neighbor discovery and flood-max consensus. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Params = Localcast.Params
module Multi = Macapps.Multi_broadcast
module Discovery = Macapps.Discovery
module Consensus = Macapps.Consensus
module Rng = Prng.Rng

let params_for dual = Params.of_dual ~tack_phases:2 ~eps1:0.2 dual

let budget ~dual params =
  60 * Dual.n dual * params.Params.phase_len

(* --- multi-message broadcast --- *)

let test_multi_single_source_equals_flood () =
  let dual = Geo.line ~n:4 ~spacing:0.9 () in
  let params = params_for dual in
  let result =
    Multi.run ~params ~rng:(Rng.of_int 1) ~dual ~scheduler:Sch.reliable_only
      ~sources:[ 0 ] ~max_rounds:(budget ~dual params) ()
  in
  checki "one complete message" 1 result.Multi.complete_messages;
  checkb "completed" true (result.Multi.completion_round <> None);
  checkb "every node got it" true (Array.for_all Fun.id result.Multi.delivered.(0))

let test_multi_three_sources () =
  let dual = Geo.line ~n:5 ~spacing:0.9 () in
  let params = params_for dual in
  let result =
    Multi.run ~params ~rng:(Rng.of_int 2) ~dual
      ~scheduler:(Sch.bernoulli ~seed:2 ~p:0.5)
      ~sources:[ 0; 2; 4 ]
      ~max_rounds:(budget ~dual params)
      ()
  in
  checki "three complete messages" 3 result.Multi.complete_messages;
  checkb "relays at least k" true (result.Multi.relays >= 3)

let test_multi_same_source_twice () =
  (* One node originating two messages serializes them through its MAC. *)
  let dual = Geo.pair () in
  let params = params_for dual in
  let result =
    Multi.run ~params ~rng:(Rng.of_int 3) ~dual ~scheduler:Sch.reliable_only
      ~sources:[ 0; 0 ]
      ~max_rounds:(budget ~dual params)
      ()
  in
  checki "both complete" 2 result.Multi.complete_messages

let test_multi_disconnected () =
  let g = Dualgraph.Graph.create ~n:3 ~edges:[ (0, 1) ] in
  let dual = Dual.create ~g ~g':g () in
  let params = params_for dual in
  let result =
    Multi.run ~params ~rng:(Rng.of_int 4) ~dual ~scheduler:Sch.reliable_only
      ~sources:[ 0 ] ~max_rounds:(20 * params.Params.phase_len) ()
  in
  checki "incomplete" 0 result.Multi.complete_messages;
  checkb "island never reached" false result.Multi.delivered.(0).(2)

let test_multi_source_validation () =
  let dual = Geo.pair () in
  let params = params_for dual in
  Alcotest.check_raises "range" (Invalid_argument "Multi_broadcast.run: source out of range")
    (fun () ->
      ignore
        (Multi.run ~params ~rng:(Rng.of_int 1) ~dual ~scheduler:Sch.reliable_only
           ~sources:[ 7 ] ~max_rounds:10 ()))

(* --- neighbor discovery --- *)

let test_discovery_pair () =
  let dual = Geo.pair () in
  let params = params_for dual in
  let result =
    Discovery.run ~params ~rng:(Rng.of_int 5) ~dual ~scheduler:Sch.reliable_only
      ~max_rounds:(budget ~dual params) ()
  in
  checkb "complete" true result.Discovery.complete;
  checki "no missing pairs" 0 result.Discovery.missing_pairs;
  checki "no spurious pairs" 0 result.Discovery.spurious_pairs;
  Alcotest.check (Alcotest.list Alcotest.int) "0 discovered 1" [ 1 ]
    result.Discovery.discovered.(0)

let test_discovery_clique () =
  let dual = Geo.clique 5 in
  let params = params_for dual in
  let result =
    Discovery.run ~params ~rng:(Rng.of_int 6) ~dual
      ~scheduler:(Sch.bernoulli ~seed:6 ~p:0.5)
      ~max_rounds:(budget ~dual params) ()
  in
  checkb "complete" true result.Discovery.complete;
  Array.iteri
    (fun v discovered ->
      checki "found the other four" 4 (List.length discovered);
      checkb "never self" true (not (List.mem v discovered)))
    result.Discovery.discovered

let test_discovery_respects_validity () =
  (* Discovered sets never exceed the G'-neighborhood, under any
     scheduler — a direct corollary of LB validity. *)
  let dual =
    Geo.random_field ~rng:(Rng.of_int 7) ~n:20 ~width:3.0 ~height:3.0 ~r:1.5
      ~gray_g':0.7 ()
  in
  let params = params_for dual in
  let result =
    Discovery.run ~params ~rng:(Rng.of_int 8) ~dual ~scheduler:Sch.all_edges
      ~max_rounds:(30 * params.Params.phase_len) ()
  in
  checki "no spurious pairs" 0 result.Discovery.spurious_pairs

let test_discovery_singleton () =
  let dual = Geo.singleton () in
  let params = params_for dual in
  let result =
    Discovery.run ~params ~rng:(Rng.of_int 9) ~dual ~scheduler:Sch.reliable_only
      ~max_rounds:(5 * params.Params.phase_len) ()
  in
  checkb "trivially complete" true result.Discovery.complete;
  Alcotest.check (Alcotest.list Alcotest.int) "nothing to discover" []
    result.Discovery.discovered.(0)

(* --- consensus --- *)

let test_consensus_line () =
  let dual = Geo.line ~n:5 ~spacing:0.9 () in
  let params = params_for dual in
  let inputs = [| 7; 3; 9; 1; 5 |] in
  let result =
    Consensus.run ~params ~rng:(Rng.of_int 10) ~dual
      ~scheduler:(Sch.bernoulli ~seed:10 ~p:0.5)
      ~inputs
      ~max_rounds:(budget ~dual params)
      ()
  in
  checkb "converged" true result.Consensus.converged;
  checkb "agreement" true result.Consensus.agreement;
  checkb "valid (max id's input wins)" true result.Consensus.valid;
  checki "decided 5" 5 result.Consensus.decisions.(0)

let test_consensus_clique () =
  let dual = Geo.clique 6 in
  let params = params_for dual in
  let inputs = [| 1; 2; 3; 4; 5; 42 |] in
  let result =
    Consensus.run ~params ~rng:(Rng.of_int 11) ~dual ~scheduler:Sch.reliable_only
      ~inputs ~max_rounds:(budget ~dual params) ()
  in
  checkb "agreement" true result.Consensus.agreement;
  checki "node 5's value everywhere" 42 result.Consensus.decisions.(2)

let test_consensus_singleton () =
  let dual = Geo.singleton () in
  let params = params_for dual in
  let result =
    Consensus.run ~params ~rng:(Rng.of_int 12) ~dual ~scheduler:Sch.reliable_only
      ~inputs:[| 13 |] ~max_rounds:(3 * params.Params.phase_len) ()
  in
  checkb "agreement" true result.Consensus.agreement;
  checkb "valid" true result.Consensus.valid;
  checki "own value" 13 result.Consensus.decisions.(0)

let test_consensus_validation () =
  let dual = Geo.pair () in
  let params = params_for dual in
  Alcotest.check_raises "length" (Invalid_argument "Consensus.run: inputs length mismatch")
    (fun () ->
      ignore
        (Consensus.run ~params ~rng:(Rng.of_int 1) ~dual
           ~scheduler:Sch.reliable_only ~inputs:[| 1 |] ~max_rounds:10 ()));
  Alcotest.check_raises "range"
    (Invalid_argument "Consensus.run: input outside [0, value_base)") (fun () ->
      ignore
        (Consensus.run ~params ~rng:(Rng.of_int 1) ~dual
           ~scheduler:Sch.reliable_only
           ~inputs:[| 1; Consensus.value_base |]
           ~max_rounds:10 ()))

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("multi: single source equals flood", test_multi_single_source_equals_flood);
      ("multi: three sources", test_multi_three_sources);
      ("multi: same source twice", test_multi_same_source_twice);
      ("multi: disconnected island", test_multi_disconnected);
      ("multi: source validation", test_multi_source_validation);
      ("discovery: pair", test_discovery_pair);
      ("discovery: clique", test_discovery_clique);
      ("discovery: validity corollary", test_discovery_respects_validity);
      ("discovery: singleton", test_discovery_singleton);
      ("consensus: line", test_consensus_line);
      ("consensus: clique", test_consensus_clique);
      ("consensus: singleton", test_consensus_singleton);
      ("consensus: validation", test_consensus_validation);
    ]
