(** The metrics registry: named counters, gauges and per-node histograms
    with labeled snapshots and a JSON artifact writer.

    A registry is a flat namespace of metrics created on first use
    ({!counter}, {!gauge} and {!histogram} are idempotent per name; the
    conventional names the stack itself uses are listed in
    [docs/OBSERVABILITY.md]).  Instrumented code holds the returned
    handle and updates it with no lookup on the hot path.

    Histograms come in two modes.  {!histogram} keeps raw samples, each
    optionally tagged with a node id, so one histogram serves both the
    aggregate distribution ({!summary}) and the per-node breakdown
    ({!by_node}) — e.g. ack latency overall and ack latency of the worst
    node.  {!bounded_histogram} streams samples into a constant-memory
    {!Stats.Quantile} estimator instead — the default for long-horizon
    runs, whose observation counts would make raw storage unbounded.

    {!snapshot} captures every metric's current value under a label;
    [Localcast.Lb_obs] takes one per LBAlg phase.  {!write_json} dumps a
    snapshot list as a [BENCH_obs.json]-style artifact (same shape
    discipline as [BENCH_micro.json]: top-level [git_rev], trailing
    newline, fully escaped strings). *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** The counter named so, created at 0 on first use.  Raises
    [Invalid_argument] if the name is already a gauge or histogram. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). *)

val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
(** The gauge named so, created at 0 on first use. *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
(** The raw histogram named so, created empty on first use: every sample
    is kept, so memory grows with the observation count but {!summary}
    percentiles are exact and {!by_node} breakdowns are available.
    Raises [Invalid_argument] if the name is registered as a
    {!bounded_histogram} (or as another metric kind). *)

val bounded_histogram :
  ?sub:int -> ?lo:float -> ?hi:float -> t -> string -> histogram
(** The bounded (streaming) histogram named so: samples are folded into
    a {!Stats.Quantile} log-histogram, so memory is fixed at creation no
    matter how many observations arrive — the mode long-horizon runs
    (the serving engine, soak scenarios) must use.  {!summary}'s
    [count]/[sum]/[min]/[max]/[mean] are exact; [p50]/[p90]/[p99] carry
    the estimator's bounded relative error ({!Stats.Quantile.error_bound},
    ≈ 2.2% at the default [sub]).  Node attribution is not retained:
    {!by_node} returns [[]].  The optional parameters are passed to
    {!Stats.Quantile.create} on first use.  Raises [Invalid_argument] if
    the name is registered as a raw histogram (or as another metric
    kind). *)

val observe : ?node:int -> histogram -> float -> unit
(** Record one sample, attributed to [node] when given (default: no
    attribution; the sample still counts toward the aggregate).  On a
    bounded histogram the sample is folded into the estimator ([node]
    is ignored) with no allocation. *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;  (** nearest-rank percentiles over the raw samples *)
  p90 : float;
  p99 : float;
}

val summary : histogram -> summary option
(** Aggregate over all samples; [None] when empty. *)

val by_node : histogram -> (int * summary) list
(** Per-node summaries (nodes in increasing order), over the attributed
    samples only.  Always [[]] on a bounded histogram. *)

(** {1 Snapshots and artifacts} *)

type snapshot = {
  label : string;
  counters : (string * int) list;  (** in creation order *)
  gauges : (string * float) list;
  histograms : (string * summary option) list;
}

val snapshot : label:string -> t -> snapshot
(** Capture every registered metric's current value.  Counters and
    histograms accumulate over the run, so per-phase deltas are
    differences of consecutive snapshots. *)

val snapshot_to_json : snapshot -> string
(** One flat JSON object (no trailing newline). *)

val write_json : path:string -> ?git_rev:string -> snapshot list -> unit
(** Write [{"git_rev": ..., "snapshots": [...]}] to [path], one snapshot
    object per line of the array, newline-terminated — the
    [BENCH_obs.json] artifact format consumed by the docs' worked
    examples and validated in CI. *)
