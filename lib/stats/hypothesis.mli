(** Lightweight hypothesis tests for randomness checks.

    Used by the prng property tests and by experiment E4 to turn the
    paper's independence claims (Lemmas B.17/B.18) into quantitative
    verdicts instead of loose tolerance checks. *)

val chi_square_statistic : observed:int array -> expected:float array -> float
(** Pearson's X² = Σ (O - E)² / E.  Requires same-length arrays with all
    expected counts positive. *)

val chi_square_uniform : int array -> float
(** X² against the uniform distribution over the array's cells. *)

val chi_square_critical : df:int -> float
(** The 99th-percentile critical value of the χ² distribution with [df]
    degrees of freedom (Wilson–Hilferty approximation; exact to ~1% for
    df >= 3).  A statistic below this is consistent with the null at the
    1% level. *)

val uniform_ok : ?df:int -> int array -> bool
(** [uniform_ok counts]: is the cell distribution consistent with uniform
    at the 1% level?  [df] defaults to [length - 1]. *)

val serial_correlation : float array -> float
(** Lag-1 autocorrelation coefficient; near 0 for independent samples.
    Returns 0 for fewer than 3 samples or constant input. *)
