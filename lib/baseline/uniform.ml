let node ~p ~message ~rng =
  if p < 0.0 || p > 1.0 then invalid_arg "Uniform.node: p must be in [0, 1]";
  let decide ~round:_ _inputs =
    if Prng.Rng.bernoulli rng p then
      Radiosim.Process.Transmit (Localcast.Messages.Data message)
    else Radiosim.Process.Listen
  in
  { Radiosim.Process.decide; absorb = (fun ~round:_ _ -> []) }
