(** Pluggable reception models: which physics decides who hears whom.

    The engine separates {e scheduling} (who transmits this round) from
    {e reception} (which listeners decode which transmission).  A
    reception model is the second half: a rule mapping the round's
    transmitter set to a per-listener outcome.  Two models ship:

    - {b Dual-graph} (the paper's model, the default): listener [u]
      receives from [v] iff [v] is the {e only} transmitter among [u]'s
      neighbors in the round's topology — all of [G] plus the unreliable
      edges the link scheduler activates.  Collision resolution is
      binary and graph-local; unreliability is adversarial, injected by
      the scheduler.

    - {b SINR} (physical interference, after Halldórsson & Mitra's
      analysis of local broadcasting in the SINR model): every
      transmitter radiates power [power]; listener [u] receives
      [power / d(u,v)^alpha] from a transmitter at distance [d(u,v)],
      and decodes the {e strongest} one iff its signal is at least
      [beta] times the sum of all other received power plus the ambient
      [noise] floor.  Unreliability is emergent — interference — so the
      link scheduler is {e not consulted} and [G' \ G] plays no role;
      the model reads only the dual graph's Euclidean embedding.

    Same algorithms, same specs, same observability rail run unchanged
    over either physics; only the air differs.  See [docs/RECEPTION.md]
    for the interface contract, the parameter guide and the power-sum
    aggregation scheme, and DESIGN.md §11 for where the model plugs into
    the engines. *)

type sinr = private {
  alpha : float;  (** path-loss exponent, [> 0] (free space 2, urban 3–5) *)
  beta : float;  (** decoding threshold, [> 0]: signal ≥ beta · interference *)
  noise : float;  (** ambient noise floor, [>= 0] *)
  power : float;  (** uniform transmit power, [> 0] *)
  jam : float;
      (** extra noise a jam window injects into the jammed node's
          receiver, [>= 0] (see {!sinr} for the default) *)
  near : int;
      (** near-field radius in grid columns, [>= 1]: transmitters within
          [near] columns are summed exactly, farther ones through the
          per-column far-field aggregate (see [docs/RECEPTION.md]) *)
}
(** SINR parameters.  [private]: obtain values via {!sinr} or
    {!of_spec}, which validate; the fields are free to read. *)

type t =
  | Dual_graph
      (** The paper's dual-graph collision rule — bit-identical to the
          engine as it existed before reception models were pluggable. *)
  | Sinr of sinr
      (** Physical interference over the topology's embedding. *)

val dual_graph : t
(** [Dual_graph] — the default of every engine entry point. *)

val sinr :
  ?alpha:float ->
  ?beta:float ->
  ?noise:float ->
  ?power:float ->
  ?jam:float ->
  ?near:int ->
  unit ->
  t
(** An SINR model.  Defaults: [alpha = 3.0], [beta = 1.5],
    [noise = 0.01], [power = 1.0], [jam = 1000 · power] (a jammer parked
    next to the radio — strong enough to deafen it against any
    neighbor), [near = 2].  With the defaults a {e lone} transmitter is
    decodable out to [d* = (power / (beta · noise))^(1/alpha) ≈ 4.05] —
    comfortably past the geographic parameter [r] of the bundled
    topologies, so sparse rounds behave like the dual-graph model and
    dense rounds expose the interference physics.

    @raise Invalid_argument unless [alpha > 0], [beta > 0],
    [noise >= 0], [power > 0], [jam >= 0] and [near >= 1]. *)

val of_spec : string -> (t, string) result
(** Parses the CLI grammar:

    {v
    SPEC   := 'dual' | 'dual-graph'
            | 'sinr' [':' kv (',' kv)*]
    kv     := ('alpha' | 'beta' | 'noise' | 'power' | 'jam' | 'near') '=' NUM
    v}

    e.g. ["dual"], ["sinr"], or ["sinr:alpha=4,beta=2,noise=1e-3"].
    Unmentioned keys take the {!sinr} defaults; values are validated
    with the same rules.  Errors name the offending key or clause. *)

val to_spec : t -> string
(** The canonical spec string: [of_spec (to_spec m) = Ok m] for every
    [m], with every SINR key spelled out. *)

val name : t -> string
(** ["dual-graph"] or ["sinr"] — the label observability consumers and
    experiment tables use. *)

val requires_embedding : t -> bool
(** Whether the model reads the dual graph's Euclidean embedding
    ([true] exactly for {!Sinr}).  Engines raise [Invalid_argument]
    when given such a model and a topology without one. *)

val pp : Format.formatter -> t -> unit
