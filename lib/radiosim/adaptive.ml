module Dual = Dualgraph.Dual

type t = {
  name : string;
  choose : round:int -> transmitting:bool array -> edge:int -> bool;
}

let name t = t.name
let choose t = t.choose

let of_oblivious scheduler =
  {
    name = Scheduler.name scheduler;
    choose =
      (fun ~round ~transmitting:_ ~edge -> Scheduler.active scheduler ~round ~edge);
  }

let jam dual =
  let unreliable = Dual.unreliable_edges dual in
  let n = Dual.n dual in
  (* (node -> incident unreliable edge ids), for the per-round scan. *)
  let incident = Array.make n [] in
  Array.iteri
    (fun idx (u, v) ->
      incident.(u) <- (idx, v) :: incident.(u);
      incident.(v) <- (idx, u) :: incident.(v))
    unreliable;
  (* Cache one round's decision, keyed by BOTH the round number and the
     physical identity of the transmission vector: the engine allocates a
     fresh vector every round, so this never serves a stale decision even
     if one adversary value is (incorrectly but harmlessly) reused across
     several runs. *)
  let last_key : (int * bool array) option ref = ref None in
  let active = Array.make (Array.length unreliable) false in
  let recompute transmitting =
    Array.fill active 0 (Array.length active) false;
    for u = 0 to n - 1 do
      if not transmitting.(u) then begin
        let reliable_transmitters = ref 0 in
        Array.iter
          (fun v -> if transmitting.(v) then incr reliable_transmitters)
          (Dual.reliable_neighbors dual u);
        let unreliable_transmitters =
          List.filter (fun (_, v) -> transmitting.(v)) incident.(u)
        in
        match (!reliable_transmitters, unreliable_transmitters) with
        | 1, (edge, _) :: _ ->
            (* One clean reliable transmitter: collide it if possible. *)
            active.(edge) <- true
        | 0, [ _ ] ->
            (* A single unreliable transmitter would deliver: keep it out. *)
            ()
        | 0, (e1, _) :: (e2, _) :: _ ->
            (* Several unreliable transmitters: bring in two to collide.
               (They may already be incident elsewhere; extra inclusions
               only ever add contention.) *)
            active.(e1) <- true;
            active.(e2) <- true
        | _ -> ()
      end
    done
  in
  {
    name = "adaptive-jam";
    choose =
      (fun ~round ~transmitting ~edge ->
        let fresh =
          match !last_key with
          | Some (r, v) -> r <> round || not (v == transmitting)
          | None -> true
        in
        if fresh then begin
          recompute transmitting;
          last_key := Some (round, transmitting)
        end;
        active.(edge));
  }
