(* Experiment E9: true locality.  One parameter set, derived from a LOCAL
   density bound (Δ, Δ', r, ε) and never from n, drives growing fields at
   constant density; every per-node guarantee must stay flat as n grows. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Params = Localcast.Params
module L = Localcast
module Table = Stats.Table

let run () =
  section "E9: true locality — guarantees independent of n (§1)";
  note
    "Constant-density random fields; ONE parameter set (delta=32,\n\
     delta'=48, r=1.5, eps=0.1) reused for every n.  All bounds and the\n\
     measured error stay flat while n grows.";
  let trials = trials_scaled 6 in
  let phases = 5 in
  let params = Params.make ~delta:32 ~delta':48 ~r:1.5 ~eps1:0.1 ~tack_phases:3 () in
  let table =
    Table.create ~title:"E9: growing n, fixed local parameters"
      ~columns:
        [ "n"; "t_prog"; "t_ack"; "progress freq"; "progress fails/opps";
          "validity"; "late acks" ]
  in
  let sizes = if !quick then [ 50; 200 ] else [ 50; 100; 200; 400 ] in
  List.iter
    (fun n ->
      let samples =
        run_trials ~salt:n ~n:trials (fun ~trial:_ ~seed ->
            let side = sqrt (float_of_int n /. 4.0) in
            let dual =
              Geo.random_field ~rng:(Prng.Rng.of_int seed) ~n ~width:side
                ~height:side ~r:1.5 ~gray_g':0.5 ()
            in
            let senders = List.init (max 1 (n / 10)) (fun i -> i * 10) in
            let report, _ = run_lb_trial ~dual ~params ~senders ~phases ~seed () in
            ( report.L.Lb_spec.progress_opportunities,
              report.L.Lb_spec.progress_failures,
              report.L.Lb_spec.validity_violations,
              report.L.Lb_spec.late_ack_count ))
      in
      let opportunities = ref 0 and failures = ref 0 in
      let validity = ref 0 and late = ref 0 in
      List.iter
        (fun (opps, fails, viol, late_acks) ->
          opportunities := !opportunities + opps;
          failures := !failures + fails;
          validity := !validity + viol;
          late := !late + late_acks)
        samples;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int (Params.t_prog_rounds params);
          Table.cell_int (Params.t_ack_rounds params);
          Table.cell_float ~decimals:4
            (1.0 -. (float_of_int !failures /. float_of_int (max 1 !opportunities)));
          Printf.sprintf "%d/%d" !failures !opportunities;
          Table.cell_int !validity;
          Table.cell_int !late;
        ])
    sizes;
  Table.print table;
  note
    "Expected: every column except n and the raw counts is flat — the\n\
     bounds (t_prog, t_ack) are literally the same number for all n, and\n\
     the measured progress frequency stays >= 1 - eps.\n"
