(** Ranked-table aggregation with bootstrap confidence intervals.

    The tournament runner (experiment E25) compares many strategy arms
    on the same metric and needs two things the rest of {!Stats} does
    not provide: a distribution-free confidence interval on a mean (the
    latency/coverage/cost samples are nothing like binomial, so
    {!Ci.wilson} does not apply), and a deterministic competition
    ranking of labelled sample sets.  Both live here.

    Everything is seeded and deterministic: the bootstrap resamples
    through {!Prng.Rng}, so a (samples, seed) pair always yields the
    same interval — the same reproducibility contract as the trial
    runner itself. *)

type ci = { mean : float; lower : float; upper : float }
(** A point estimate with a two-sided confidence interval,
    [lower <= mean <= upper]. *)

val bootstrap :
  ?replicates:int -> ?confidence:float -> seed:int -> float array -> ci
(** Percentile bootstrap of the mean: draw [replicates] (default 1000)
    resamples with replacement, take the empirical
    [(1 ± confidence) / 2] percentiles (default [confidence = 0.95]) of
    the resampled means.  Degenerate inputs short-circuit without
    consuming randomness: a single sample or a zero-variance sample
    collapses the interval to [{mean = x; lower = x; upper = x}].
    @raise Invalid_argument on an empty array, on any NaN sample
    (["Rank.bootstrap: NaN sample"] — same contract as
    {!Summary.of_array}), on [replicates < 1], or on [confidence]
    outside [(0, 1)]. *)

type row = { label : string; count : int; ci : ci; rank : int }
(** One table row: [count] is the sample size behind the estimate,
    [rank] the 1-based competition rank. *)

val table :
  ?replicates:int ->
  ?confidence:float ->
  ?descending:bool ->
  ?tie_eps:float ->
  seed:int ->
  (string * float array) list ->
  row list
(** Rank labelled sample sets by mean.  [descending] (default [false],
    i.e. smaller-is-better, the right sense for latency and cost; pass
    [true] for coverage) sets the sort sense; equal means — and means
    within [tie_eps] (default [0.]) of the running tie-group
    representative — share a rank, with competition ("1224") numbering.
    Label order breaks exact ties deterministically, and each row's
    bootstrap draws from its own stream keyed by [(seed, label)], so a
    row's interval does not depend on which other rows are present.
    @raise Invalid_argument on an empty list, duplicate labels, empty or
    NaN-bearing sample sets, or a negative/NaN [tie_eps]. *)
