(** Spatial tiling of a dual graph's vertex set.

    A tiling partitions the vertices into [tiles] disjoint, jointly
    exhaustive tiles of near-equal size (sizes differ by at most one).
    When the dual graph carries an embedding, tiles are vertical
    stripes of {!Grid} columns at cell side [max r 1.0], ordered left
    to right and balanced by vertex count — so for an r-geographic
    field almost all edges stay inside a tile and cross-tile ("halo")
    traffic is proportional to the stripe boundaries, not to the area.
    Without an embedding the tiling falls back to contiguous vertex-id
    ranges, which is still a valid partition (just with no locality
    guarantee).

    The tiling is a pure index: which tile owns which vertex.  It
    never affects simulation semantics — the tiled engine produces the
    same trace under any tiling — only which domain does the work. *)

type t

val of_dual : ?tiles:int -> Dual.t -> t
(** [of_dual ~tiles dual] partitions [dual]'s vertices into
    [min (max 1 tiles) (max 1 n)] tiles (so every tile of a non-empty
    graph is non-empty).  [tiles] defaults to 1. *)

val tiles : t -> int
(** Number of tiles (>= 1). *)

val owner : t -> int -> int
(** [owner t v] is the tile owning vertex [v]. *)

val members : t -> int -> int array
(** [members t i] are tile [i]'s vertices in ascending order.  Owned by
    the tiling — do not mutate. *)

val cross_edges : t -> Dual.t -> int
(** Diagnostic: how many edges of G' (reliable and unreliable) have
    endpoints in different tiles — the per-round halo volume bound. *)

val pp : Format.formatter -> t -> unit
