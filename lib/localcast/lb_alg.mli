(** LBAlg: the local broadcast algorithm (paper §4.2).

    Rounds are partitioned into phases of [Ts + Tprog] rounds.  Each phase
    opens with a SeedAlg(ε₂) preamble in which every node — sender or
    receiver — participates; the committed seed supplies the {e shared}
    random bits for the phase's body rounds.  During a body round a node
    in sending state:

    + consumes [d] shared bits; it is a {e participant} iff all are zero
      (probability ≈ 1/(r² log(1/ε₂))) — nodes that committed the same
      seed make the same choice, so whole seed-groups participate or
      abstain together, restoring independence from the oblivious link
      schedule;
    + if a non-participant, listens;
    + if a participant, consumes [level_draws × level_bits] shared bits
      to pick a uniform probability level [b ∈ \[log Δ\]] (fixed-budget
      rejection sampling — see {!Params.t.level_draws}), then flips [b]
      {e local} fair coins and transmits its message iff all landed zero
      (probability [2^{-b}]).

    A node in receiving state listens through the body.  Every clean
    reception of a not-previously-seen message yields a [Recv] output.
    A [bcast(m)] input puts the node into sending state from the next
    phase boundary, for [Tack] full phases, after which it emits [Ack m]
    at the phase's last round and returns to receiving.

    With [Params.seed_refresh = k > 1], only every k-th phase carries a
    preamble (§4.2's closing remark); the other phases are pure body and
    the committed seed is sized to last the whole cycle. *)

type seed_source =
  | Agreement
      (** the paper's algorithm: run SeedAlg in each phase preamble *)
  | Oracle of Prng.Rng.t
      (** ablation: a magical global seed service hands every node the
          {e same} fresh seed at each preamble (drawn from the given
          shared generator).  The phase structure — including the
          preamble rounds, spent idle — is kept identical, so comparing
          against [Agreement] isolates the {e quality} cost of loose
          coordination (several seed groups per neighborhood instead of
          one), not its time cost.  Used by experiment E14. *)

val node :
  ?seed_source:seed_source ->
  Params.t ->
  id:int ->
  rng:Prng.Rng.t ->
  (Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Process.node

val network :
  ?seed_source:seed_source ->
  Params.t ->
  rng:Prng.Rng.t ->
  n:int ->
  (Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Process.node array
(** One node per vertex, ids [0..n-1], independent split RNGs.  All
    nodes share the given [seed_source] (default [Agreement]). *)

val phase_of_round : Params.t -> int -> int
(** Which phase (0-based) a global round belongs to. *)

val is_preamble_round : Params.t -> int -> bool
(** Whether a global round falls inside a SeedAlg preamble. *)
