(** ASCII rendering of embedded topologies.

    Terminal-friendly sketches for the CLI and for debugging property-test
    counterexamples: the embedding is scaled onto a character grid, with
    one glyph per cell ('.' empty, a digit for 1-9 co-located nodes, '+'
    for 10 or more). *)

val field : ?columns:int -> Dual.t -> string
(** [field dual] sketches the node positions.  [columns] bounds the grid
    width (default 60); the aspect ratio is preserved approximately
    (terminal cells being about twice as tall as wide).  Raises
    [Invalid_argument] if the dual graph carries no embedding. *)

val degree_histogram : Dual.t -> string
(** A textual histogram of reliable degrees — a quick look at Δ's
    distribution, e.g.:
    {v
    deg  3 | ###### 6
    deg  4 | ########## 10
    v} *)
