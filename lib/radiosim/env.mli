(** Environments: deterministic input/output automata (paper §2).

    An environment generates each node's inputs at the top of a round and
    consumes its outputs at the bottom.  The paper restricts attention to
    deterministic environments; ours are deterministic automata whose
    state advances only on the outputs they observe (e.g. the local
    broadcast environments in {!Localcast} wait for an [ack] before
    issuing the next [bcast]). *)

type ('input, 'output) t = {
  name : string;
  pure_inputs : bool;
      (** [true] promises that [inputs] has no observable side effects
          and its result depends only on [(round, node)] — not on how
          often, in what order, or from which domain it is polled.
          The tiled engine ({!Tiled}) then lets worker domains poll
          their own tiles' inputs concurrently; with [false] it polls
          nodes serially in ascending order on one domain, exactly
          like {!Engine.run}.  Stateful environments (the localcast
          environments advance their automaton inside [inputs]) must
          say [false]. *)
  inputs : round:int -> node:int -> 'input list;
  notify : round:int -> node:int -> 'output list -> unit;
}

val null : name:string -> unit -> ('input, 'output) t
(** No inputs; outputs are discarded. *)

val scripted : name:string -> (int * int * 'input) list -> ('input, 'output) t
(** [scripted events] delivers each [(round, node, input)] exactly once at
    the top of the given round.  Outputs are discarded. *)
