(** The SINR reception backend: received-power bookkeeping over a
    topology's Euclidean embedding.

    A {!t} is prepared once per run and reused across rounds; the engine
    loads each round's transmitter set ({!load_round}) and then asks,
    per listener, who (if anyone) was decoded ({!receive}).  The answer
    is a pure function of [(transmitter set, listener, jammed)], so the
    tiled engine can evaluate listeners from any worker domain in any
    order and still produce the sequential engine's exact trace.

    {b The power-sum aggregation scheme.}  Received power at distance
    [d] is [power / d^alpha].  Summing it over every transmitter for
    every listener is O(T·n) per round, so the field splits the sum at
    the granularity of the embedding's {!Dualgraph.Grid} columns — the
    same columns {!Dualgraph.Tile} builds its stripes from, at cell
    side [max r 1]:

    - {e near field}: transmitters within [near] columns of the
      listener are summed {e exactly}, bucketed per column by a
      counting sort (ascending id within a column, columns ascending) —
      the candidate (strongest transmitter) always comes from this
      band;
    - {e far field}: each column beyond the band contributes
      [count · power / (Δcol · cell)^alpha] — its transmitter count
      times the power of a single transmitter at the column-center
      distance — accumulated into a per-column table once per round.

    {b Output-sensitive kernels.}  Rounds are sparse in practice — a
    handful of transmitters against millions of listeners — so the
    per-round work is proportional to the transmitters' footprint, not
    to the field:

    - the far-field table sums over the [K] {e occupied} columns only,
      O(K·cols) instead of O(cols²) — a column with no transmitters
      contributes an exact [+0.0], so skipping it leaves every partial
      sum bit-identical;
    - the occupied columns induce the round's {e active} columns (those
      within [near] of one); a listener anywhere else provably has no
      in-band candidate and decodes [-1], so the engines never visit it
      ({!active_columns}, {!column_active});
    - within an active column, {!scan_slots} computes every listener's
      candidate and power sum in one batched pass over the in-band
      transmitter slices (loop interchange — per-listener accumulation
      order unchanged), with verdicts read back per slot ({!verdict}).

    Every sum is accumulated in one fixed global order (columns
    ascending, ids ascending within a column), never in tile order, so
    floating-point results — and therefore traces — are bit-identical
    at any tile count.  [docs/RECEPTION.md] works the scheme, its cost
    model and its error envelope; the test suite checks exact agreement
    with the frozen dense path ({!receive_reference}) across the
    scheduler and fault zoo, and with a naive all-pairs sum whenever
    the band covers the whole field. *)

type t

val create : params:Reception.sinr -> Dualgraph.Dual.t -> t
(** Prepares the power field: copies the embedding into flat coordinate
    arrays, assigns each node its grid column, builds the per-column
    listener CSR, and precomputes the per-distance far-field power
    table.  O(n + cols); all per-round buffers are allocated here, so
    rounds allocate nothing.

    @raise Invalid_argument if the dual graph carries no embedding. *)

val cols : t -> int
(** Number of grid columns the field is bucketed into. *)

val column_of : t -> int -> int
(** The grid column a node lives in (fixed at creation). *)

val slot_off : t -> int array
(** The listener CSR offsets, length [cols + 1]: column [c]'s nodes
    occupy slots [slot_off.(c) .. slot_off.(c+1) - 1] of {!slot_node}.
    Shared with the caller — do not mutate. *)

val slot_node : t -> int array
(** The listener CSR payload, length [n]: all nodes in column-major
    order, ascending by id within a column — the same spatial ranking
    {!Dualgraph.Tile} stripes, so contiguous slot ranges are valid
    work-partition units for the tiled engine.  Do not mutate. *)

val load_round : t -> transmitters:int array -> count:int -> unit
(** Loads the round's transmitter set — the first [count] slots of
    [transmitters], which must be strictly ascending node ids (both
    engines produce them that way).  Buckets them by column, rebuilds
    the far-field table over the occupied columns, and derives the
    round's active-column set.  O(T + K·cols) for K occupied columns. *)

val active_columns : t -> int array * int
(** [(act, nact)] — the loaded round's active columns are the first
    [nact] entries of [act], ascending.  A column is active iff some
    column within [near] of it holds a transmitter; every listener of
    an inactive column decodes [-1] (nothing in band), so engines skip
    inactive columns without calling {!receive}.  The set is derived
    from topology-fixed column data only, never from the tiling.  The
    array is reused by the next {!load_round} — do not mutate. *)

val column_active : t -> int -> bool
(** Whether a column is in the loaded round's active set. *)

val scan_slots : t -> column:int -> lo:int -> hi:int -> unit
(** Batched near-band scan for the listeners in slots [lo..hi-1] of
    {!slot_node} — all of which must lie in [column] — filling the
    per-slot scratch {!verdict} reads.  One pass per in-band
    transmitter slice is shared by all listeners of the range; each
    listener's accumulation order (and so every float and tie-break) is
    exactly the per-listener scan's.  Disjoint slot ranges write
    disjoint scratch, so concurrent tiles may share one [t]. *)

val verdict : t -> jammed:bool -> slot:int -> int
(** The {!receive} outcome for the node in [slot], read from the
    scratch a covering {!scan_slots} filled: decoded transmitter id,
    [-1] silence, [-2] drowned.  The caller is responsible for only
    consulting slots of listeners (alive, not transmitting). *)

val receive : t -> jammed:bool -> listener:int -> int
(** The loaded round's outcome at [listener] (which must not itself be
    transmitting): the decoded transmitter's id; [-1] if no transmitter
    lies within the near band (silence — nothing to decode); [-2] if
    the strongest in-band transmitter failed the SINR test (drowned —
    the dual-graph model's collision).  [jammed] adds the model's [jam]
    noise to the listener's floor — under SINR a jam window degrades
    the victim's {e reception} instead of suppressing its transmission
    (see [docs/RECEPTION.md] §4). *)

val receive_reference : t -> jammed:bool -> listener:int -> int
(** The frozen dense oracle: PR 8's listener-centric path — full
    per-listener band scan plus an O(cols) dense far-field row — kept
    verbatim and reading none of the sparse kernels' state.  The
    property suite asserts [receive ≡ receive_reference] (and the
    engines' skip set sound against it) across the scheduler and fault
    zoo; the M12 micro-benchmark reports the speedup against it. *)

val diag : t -> jammed:bool -> listener:int -> int * float * float
(** [(best, signal, interference)] behind the {!receive} verdict:
    the in-band candidate ([-1] if none), its received signal power,
    and the denominator — every other transmitter's power (near exact
    + far aggregated) plus noise plus jam.  [receive] returns [best]
    iff [signal >= beta · interference].  Exposed for tests and for
    the worked example in [docs/RECEPTION.md]. *)
