(** Trial running for the experiment harness.

    Experiments repeat a randomized measurement across independently
    seeded trials and aggregate.  The runner derives one deterministic
    sub-seed per trial from a master seed, so every table in
    EXPERIMENTS.md is exactly reproducible. *)

val trials : seed:int -> n:int -> (trial:int -> seed:int -> 'a) -> 'a list
(** [trials ~seed ~n f] runs [f] for trials [0 .. n-1], each with its own
    derived seed. *)

val count : ('a -> bool) -> 'a list -> int

val float_samples : ('a -> float) -> 'a list -> float list

val time : (unit -> 'a) -> 'a * float
(** Result plus wall-clock seconds. *)
