module Emb = Dualgraph.Embedding
module Grid = Dualgraph.Grid

(* Two co-located points would yield infinite received power; clamp the
   squared distance so the math stays finite (the clamp is far below any
   inter-node distance a generator produces). *)
let min_d2 = 1e-12

type t = {
  n : int;
  px : float array;
  py : float array;
  col : int array;  (* node -> grid column, fixed at creation *)
  ncols : int;
  near : int;
  power : float;
  beta : float;
  noise : float;
  jam : float;
  neg_half_alpha : float;
  pw_far : float array;
      (* pw_far.(d): power of one transmitter at the center of a column
         d columns away, i.e. power / (d * cell)^alpha; index 0 unused *)
  (* per-round state, rebuilt by load_round *)
  cnt : int array;  (* transmitters per column *)
  off : int array;  (* CSR offsets into col_tx, length ncols + 1 *)
  fill : int array;  (* placement cursor during the counting sort *)
  col_tx : int array;  (* transmitter ids, column-major, ascending per column *)
  far : float array;  (* far-field interference seen from each column *)
}

let create ~params dual =
  let p : Reception.sinr = params in
  let emb =
    match Dualgraph.Dual.embedding dual with
    | Some e -> e
    | None ->
        invalid_arg
          "Sinr.create: the SINR reception model needs a Euclidean embedding \
           (this topology has none)"
  in
  let n = Emb.n emb in
  let px = Array.make (max n 1) 0.0 and py = Array.make (max n 1) 0.0 in
  for v = 0 to n - 1 do
    let pt = Emb.point emb v in
    px.(v) <- pt.Emb.x;
    py.(v) <- pt.Emb.y
  done;
  (* Bucket at the Tile stripe granularity: grid columns of side
     max r 1.  The column partition is a property of the topology alone,
     never of the runtime tile count — that is what keeps the far-field
     aggregate (and so every trace) tiling-invariant. *)
  let cell = Float.max (Dualgraph.Dual.r dual) 1.0 in
  let grid = Grid.create ~cell emb in
  let ncols = Grid.cols grid in
  let col = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    col.(v) <- Grid.cell_index grid v mod ncols
  done;
  let pw_far = Array.make (max ncols 1) 0.0 in
  for d = 1 to ncols - 1 do
    pw_far.(d) <- p.Reception.power *. ((float_of_int d *. cell) ** -.p.Reception.alpha)
  done;
  {
    n;
    px;
    py;
    col;
    ncols;
    near = p.Reception.near;
    power = p.Reception.power;
    beta = p.Reception.beta;
    noise = p.Reception.noise;
    jam = p.Reception.jam;
    neg_half_alpha = -.p.Reception.alpha /. 2.0;
    pw_far;
    cnt = Array.make ncols 0;
    off = Array.make (ncols + 1) 0;
    fill = Array.make ncols 0;
    col_tx = Array.make (max n 1) 0;
    far = Array.make ncols 0.0;
  }

let cols t = t.ncols

let load_round t ~transmitters ~count =
  if count < 0 || count > t.n then invalid_arg "Sinr.load_round: bad count";
  let cnt = t.cnt and off = t.off and fill = t.fill in
  Array.fill cnt 0 t.ncols 0;
  for i = 0 to count - 1 do
    let c = Array.unsafe_get t.col (Array.unsafe_get transmitters i) in
    Array.unsafe_set cnt c (Array.unsafe_get cnt c + 1)
  done;
  off.(0) <- 0;
  for c = 0 to t.ncols - 1 do
    off.(c + 1) <- off.(c) + cnt.(c);
    fill.(c) <- off.(c)
  done;
  (* Stable counting sort: the input is ascending by id, so each
     column's slice comes out ascending by id too — the canonical
     accumulation order receive relies on. *)
  for i = 0 to count - 1 do
    let w = Array.unsafe_get transmitters i in
    let c = Array.unsafe_get t.col w in
    Array.unsafe_set t.col_tx (Array.unsafe_get fill c) w;
    Array.unsafe_set fill c (Array.unsafe_get fill c + 1)
  done;
  (* Far-field table: column i sees count_j transmitters at column-center
     distance |i - j| * cell for every column beyond the near band.
     O(cols^2) per round, independent of n and of T. *)
  for i = 0 to t.ncols - 1 do
    let s = ref 0.0 in
    for j = 0 to t.ncols - 1 do
      let d = abs (j - i) in
      if d > t.near then
        s := !s +. (float_of_int (Array.unsafe_get cnt j) *. Array.unsafe_get t.pw_far d)
    done;
    Array.unsafe_set t.far i !s
  done

(* The shared near-band scan: candidate (strongest, first-seen on ties)
   plus the exact power sum over the band, accumulated in fixed global
   order — ascending column, then ascending id. *)
let scan t listener =
  let cx = Array.unsafe_get t.col listener in
  let x = Array.unsafe_get t.px listener
  and y = Array.unsafe_get t.py listener in
  let lo = max 0 (cx - t.near) and hi = min (t.ncols - 1) (cx + t.near) in
  let best = ref (-1) and best_pw = ref 0.0 and sum = ref 0.0 in
  for c = lo to hi do
    for idx = t.off.(c) to t.off.(c + 1) - 1 do
      let w = Array.unsafe_get t.col_tx idx in
      let dx = Array.unsafe_get t.px w -. x
      and dy = Array.unsafe_get t.py w -. y in
      let d2 = Float.max ((dx *. dx) +. (dy *. dy)) min_d2 in
      let pw = t.power *. (d2 ** t.neg_half_alpha) in
      sum := !sum +. pw;
      if pw > !best_pw then begin
        best_pw := pw;
        best := w
      end
    done
  done;
  (cx, !best, !best_pw, !sum)

let diag t ~jammed ~listener =
  let cx, best, best_pw, sum = scan t listener in
  let floor = t.noise +. (if jammed then t.jam else 0.0) in
  if best < 0 then (-1, 0.0, t.far.(cx) +. floor)
  else (best, best_pw, sum -. best_pw +. t.far.(cx) +. floor)

let receive t ~jammed ~listener =
  let cx, best, best_pw, sum = scan t listener in
  if best < 0 then -1
  else begin
    let floor = t.noise +. (if jammed then t.jam else 0.0) in
    let interference = sum -. best_pw +. t.far.(cx) +. floor in
    if best_pw >= t.beta *. interference then best else -2
  end
