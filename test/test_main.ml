(* Aggregated alcotest entry point: one section per library. *)

let () =
  Alcotest.run "local-broadcast-layer"
    [
      ("prng", Test_prng.suite);
      ("dualgraph", Test_dualgraph.suite);
      ("radiosim", Test_radiosim.suite);
      ("seed-agreement", Test_seed.suite);
      ("local-broadcast", Test_lb.suite);
      ("baseline", Test_baseline.suite);
      ("mac-layer", Test_mac.suite);
      ("mac-apps", Test_macapps.suite);
      ("adaptive-adversary", Test_adaptive.suite);
      ("instrumentation", Test_instrumentation.suite);
      ("oracle-ablation", Test_oracle.suite);
      ("io-render", Test_io_render.suite);
      ("hypothesis", Test_hypothesis.suite);
      ("lb-probe", Test_lbprobe.suite);
      ("engine-properties", Test_engine_props.suite);
      ("lb-properties", Test_lb_props.suite);
      ("mac-spec", Test_macspec.suite);
      ("gossip-baseline", Test_gossip.suite);
      ("service", Test_service.suite);
      ("serving-engine", Test_serve.suite);
      ("observability", Test_obs.suite);
      ("faults", Test_faults.suite);
      ("golden-traces", Test_golden.suite);
      ("printers", Test_printers.suite);
      ("stats", Test_stats.suite);
      ("tiled-engine", Test_tiled.suite);
      ("reception-models", Test_reception.suite);
    ]
