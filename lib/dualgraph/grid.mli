(** Flat uniform spatial grid over an {!Embedding}, for neighbor-candidate
    queries.

    Both the geometric generators and [Dual.create]'s r-geographic
    validator need "all vertices within distance [d] of [u]" candidate
    sets.  This grid buckets the points into square cells of side
    [cell] (CSR layout, counting sort — two O(n) passes, no hashing) so
    a 3x3 cell neighborhood covers every candidate at distance [<= cell]
    in O(local density) per query. *)

type t

val create : cell:float -> Embedding.t -> t
(** [create ~cell emb] buckets the points of [emb] into square cells of
    side [cell].  Raises [Invalid_argument] unless [cell > 0].  Within a
    cell, vertex ids are stored in ascending order. *)

val cols : t -> int
(** Number of cell columns (>= 1). *)

val rows : t -> int
(** Number of cell rows (>= 1). *)

val cell_index : t -> int -> int
(** [cell_index t v] is vertex [v]'s flat cell index, in
    [0 .. cols t * rows t - 1]; the column is [cell_index t v mod
    cols t].  Boundary coordinates (a point exactly on the field's
    right/top edge) are clamped into the last column/row, never out of
    range.  {!Tile} stripes the field by these columns. *)

val iter_neighborhood : t -> int -> (int -> unit) -> unit
(** [iter_neighborhood t u f] applies [f] to every vertex in the 3x3
    block of cells centered on [u]'s cell — a superset of all vertices
    within distance [cell] of [u] ([u] itself included).  Each cell is
    visited once and yields its ids in ascending order, so the full
    visit sequence is a concatenation of at most 9 ascending runs. *)
