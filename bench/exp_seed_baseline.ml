(* Experiment E17: SeedAlg vs a strawman gossip seed-agreement protocol.

   The gossip baseline (Baseline.Gossip_seed) broadcasts (id, seed) pairs
   with a fixed probability and commits to the minimum id heard.  It can
   eventually drive a neighborhood to very few owners — but it has no
   per-node error parameter, its quality depends on how long you run it,
   and its fixed transmission probability is exposed to the link
   scheduler.  The comparison quantifies what SeedAlg's phased,
   self-deactivating leader election buys. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Sch = Radiosim.Scheduler
module Params = Localcast.Params
module L = Localcast
module Table = Stats.Table

let run_gossip ~dual ~rounds ~p ~seed =
  let n = Dual.n dual in
  let rng = Prng.Rng.of_int seed in
  let nodes = Baseline.Gossip_seed.network ~rounds ~p ~kappa:16 ~rng ~n in
  let trace, observer = Radiosim.Trace.recorder () in
  let (_ : int) =
    Radiosim.Engine.run ~observer ~dual
      ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
      ~nodes
      ~env:(Radiosim.Env.null ~name:"gossip" ())
      ~rounds ()
  in
  L.Seed_spec.decisions_of_trace trace ~n

let run () =
  section "E17: SeedAlg vs gossip seed agreement (engineered baseline)";
  note
    "Random fields n=50, eps=0.05.  Gossip broadcasts (id, seed) with\n\
     p = 1/Delta and commits to the min id heard; rows give it the same\n\
     round budget as SeedAlg (1x) and a 4x budget.";
  let trials = trials_scaled 12 in
  let table =
    Table.create ~title:"E17: owner count vs owner locality (per-trial max)"
      ~columns:
        [ "algorithm"; "rounds"; "max owners (mean)"; "max owners (max)";
          "owner distance p90"; "owner distance max" ]
  in
  (* How far away (G'-hops) is the owner a node committed to?  SeedAlg
     commits to a transmission actually heard, so distance <= 1 hop; the
     gossip baseline commits to relayed minima from arbitrarily far away —
     trading away exactly the locality Lemma B.1 gives SeedAlg. *)
  let owner_distances (dual, decisions) =
    let g' = Dual.g' dual in
    let dists = ref [] in
    Array.iteri
      (fun u entries ->
        List.iter
          (fun (_, { L.Messages.owner; _ }) ->
            if owner >= 0 && owner < Dual.n dual then begin
              let d = (Dualgraph.Graph.bfs_distances g' owner).(u) in
              if d < max_int then dists := float_of_int d :: !dists
            end)
          entries)
      decisions;
    !dists
  in
  let summarize decisions_list =
    let maxima =
      List.map
        (fun (dual, decisions) ->
          let report = L.Seed_spec.check ~dual ~delta_bound:1000 ~decisions in
          float_of_int report.L.Seed_spec.max_owners)
        decisions_list
    in
    let distances = List.concat_map owner_distances decisions_list in
    (Stats.Summary.of_list maxima, Stats.Summary.of_list distances)
  in
  (* Both algorithms derive the trial's field from the runner's per-trial
     seed with the same salt, so SeedAlg and gossip face identical
     topologies and seeds — a paired comparison. *)
  (* SeedAlg row *)
  let seedalg_samples =
    run_trials ~n:trials (fun ~trial:_ ~seed ->
        let dual = random_field ~seed ~n:50 () in
        let params =
          Params.make_seed ~eps:0.05 ~delta:(Dual.delta dual) ~kappa:16 ()
        in
        let outcome =
          run_seed_trial ~dual ~params ~delta_bound:1000
            ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
            ~seed
        in
        (dual, outcome.decisions, L.Seed_alg.duration params))
  in
  let seedalg_results =
    List.rev_map (fun (dual, decisions, _) -> (dual, decisions)) seedalg_samples
  in
  let seedalg_rounds =
    ref (List.fold_left (fun _ (_, _, d) -> d) 0 seedalg_samples)
  in
  let s, d = summarize seedalg_results in
  Table.add_row table
    [
      "SeedAlg";
      Table.cell_int !seedalg_rounds;
      Table.cell_float s.Stats.Summary.mean;
      Table.cell_float ~decimals:0 s.Stats.Summary.max;
      Table.cell_float ~decimals:1 d.Stats.Summary.p90;
      Table.cell_float ~decimals:0 d.Stats.Summary.max;
    ];
  (* Gossip rows at 1x and 4x the SeedAlg budget *)
  List.iter
    (fun multiplier ->
      let rounds = ref (multiplier * !seedalg_rounds) in
      let results =
        run_trials ~n:trials (fun ~trial:_ ~seed ->
            let dual = random_field ~seed ~n:50 () in
            let p = 1.0 /. float_of_int (Dual.delta dual) in
            let decisions = run_gossip ~dual ~rounds:!rounds ~p ~seed in
            (dual, decisions))
      in
      let s, d = summarize results in
      Table.add_row table
        [
          Printf.sprintf "gossip %dx" multiplier;
          Table.cell_int !rounds;
          Table.cell_float s.Stats.Summary.mean;
          Table.cell_float ~decimals:0 s.Stats.Summary.max;
          Table.cell_float ~decimals:1 d.Stats.Summary.p90;
          Table.cell_float ~decimals:0 d.Stats.Summary.max;
        ])
    [ 1; 4 ];
  Table.print table;
  note
    "Expected: gossip converges to very FEW owners (min-flooding is a\n\
     global leader election) — but the owners are far away: the owner\n\
     distance grows with the budget (the min's basin), whereas SeedAlg\n\
     commits only to seeds heard directly (distance <= 1), the locality\n\
     Lemma B.1 records and the broadcast analysis leans on.  Gossip also\n\
     has no tunable per-node (delta, eps) guarantee: its quality is\n\
     whatever the diameter and the scheduler allow.\n"
