(* Property-based tests of LBAlg invariants across random topologies,
   schedulers and environments. *)

open Core

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Trace = Radiosim.Trace
module P = Radiosim.Process
module M = Localcast.Messages
module Params = Localcast.Params
module Lb_alg = Localcast.Lb_alg
module Lb_env = Localcast.Lb_env
module Lb_spec = Localcast.Lb_spec
module Rng = Prng.Rng

(* A randomized LBAlg execution, small enough for hundreds of qcheck
   iterations. *)
let random_run seed =
  let rng = Rng.of_int seed in
  let n = 2 + Rng.int rng 10 in
  let dual =
    Geo.random_field ~rng ~n ~width:2.5 ~height:2.5 ~r:1.5 ~gray_g':0.5 ()
  in
  let params =
    Params.of_dual
      ~tack_phases:(1 + Rng.int rng 3)
      ~seed_refresh:(1 + Rng.int rng 2)
      ~eps1:0.25 dual
  in
  let sender_count = 1 + Rng.int rng (max 1 (n / 2)) in
  let senders = List.init sender_count (fun i -> i * n / sender_count) in
  let nodes = Lb_alg.network params ~rng ~n in
  let envt = Lb_env.saturate ~n ~senders () in
  let phases = 3 * params.Params.seed_refresh in
  let trace, obs = Trace.recorder () in
  let monitor = Lb_spec.monitor ~dual ~params ~env:envt () in
  let observer record =
    obs record;
    Lb_spec.observe monitor record
  in
  let (_ : int) =
    Radiosim.Engine.run ~observer ~dual
      ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
      ~nodes
      ~env:(Lb_env.env envt)
      ~rounds:(phases * params.Params.phase_len)
      ()
  in
  (dual, params, trace, Lb_spec.finish monitor, envt)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"validity and ack sanity hold on random runs" ~count:30
      small_int
      (fun seed ->
        let _, _, _, report, _ = random_run seed in
        report.Lb_spec.validity_violations = 0
        && report.Lb_spec.late_ack_count = 0
        && report.Lb_spec.missing_ack_count = 0);
    Test.make ~name:"data only in body rounds, seeds only in preambles"
      ~count:30 small_int
      (fun seed ->
        let _, params, trace, _, _ = random_run seed in
        let ok = ref true in
        Trace.iter
          (fun record ->
            Array.iter
              (fun action ->
                match action with
                | P.Transmit (M.Data _) ->
                    if Lb_alg.is_preamble_round params record.Trace.round then
                      ok := false
                | P.Transmit (M.Seed_msg _) ->
                    if not (Lb_alg.is_preamble_round params record.Trace.round)
                    then ok := false
                | P.Listen -> ())
              record.Trace.actions)
          trace;
        !ok);
    Test.make ~name:"acks land on phase-final rounds" ~count:30 small_int
      (fun seed ->
        let _, params, trace, _, _ = random_run seed in
        let ok = ref true in
        Trace.iter
          (fun record ->
            Array.iter
              (fun outs ->
                List.iter
                  (fun out ->
                    match out with
                    | M.Ack _ ->
                        if
                          record.Trace.round mod params.Params.phase_len
                          <> params.Params.phase_len - 1
                        then ok := false
                    | M.Recv _ | M.Committed _ -> ())
                  outs)
              record.Trace.outputs)
          trace;
        !ok);
    Test.make ~name:"each node recvs a payload at most once" ~count:30
      small_int
      (fun seed ->
        let dual, _, trace, _, _ = random_run seed in
        let ok = ref true in
        for v = 0 to Dual.n dual - 1 do
          let recvs =
            List.filter_map
              (fun (_, out) -> match out with M.Recv p -> Some p | _ -> None)
              (Trace.outputs_of trace v)
          in
          if List.length (List.sort_uniq compare recvs) <> List.length recvs
          then ok := false
        done;
        !ok);
    Test.make ~name:"progress latencies lie inside the phase" ~count:30
      small_int
      (fun seed ->
        let _, params, _, report, _ = random_run seed in
        List.for_all
          (fun l -> l >= 0 && l < params.Params.phase_len)
          report.Lb_spec.progress_latencies);
    Test.make ~name:"commit events carry real owners and full-length seeds"
      ~count:30 small_int
      (fun seed ->
        let dual, params, trace, _, _ = random_run seed in
        let ok = ref true in
        Trace.iter
          (fun record ->
            Array.iter
              (fun outs ->
                List.iter
                  (fun out ->
                    match out with
                    | M.Committed { M.owner; seed = s } ->
                        if owner < 0 || owner >= Dual.n dual then ok := false;
                        if
                          Prng.Bitstring.length s
                          <> params.Params.seed.Params.kappa
                        then ok := false
                    | M.Recv _ | M.Ack _ -> ())
                  outs)
              record.Trace.outputs)
          trace;
        !ok);
    Test.make ~name:"env log agrees with the spec monitor's ack count"
      ~count:30 small_int
      (fun seed ->
        let _, _, _, report, envt = random_run seed in
        let acked_entries =
          List.length
            (List.filter
               (fun e -> e.Lb_env.ack_round <> None)
               (Lb_env.log envt))
        in
        acked_entries = report.Lb_spec.ack_count);
  ]

let suite = List.map QCheck_alcotest.to_alcotest qcheck_cases
