(** Topology generators.

    Random r-geographic dual graphs (the model class of paper §2) plus
    deterministic fixtures for tests and targeted experiments.  All random
    generators are deterministic functions of the supplied {!Prng.Rng.t}.

    Edge policy for embedded generators: for vertices [u, v] at distance
    [d],
    - [d <= 1]: reliable edge (forced by the r-geographic property);
    - [1 < d <= r]: unreliable edge with probability [gray_g'], and
      additionally promoted to a reliable edge with probability [gray_g]
      (conditioned on being present at all);
    - [d > r]: no edge (forced). *)

val random_field :
  rng:Prng.Rng.t ->
  n:int ->
  width:float ->
  height:float ->
  r:float ->
  ?gray_g':float ->
  ?gray_g:float ->
  unit ->
  Dual.t
(** [n] points uniform in a [width × height] field.  Defaults:
    [gray_g' = 0.5], [gray_g = 0.0]. *)

val grid :
  rows:int ->
  cols:int ->
  spacing:float ->
  r:float ->
  ?gray_g':float ->
  ?rng:Prng.Rng.t ->
  unit ->
  Dual.t
(** Lattice of [rows × cols] points at the given spacing.  With
    [spacing <= 1] the reliable graph is (at least) the king-graph
    neighborhood.  [rng] is needed only when [0 < gray_g' < 1]
    (default [gray_g' = 1], i.e. all grey-zone pairs get unreliable
    edges, which needs no randomness). *)

val cluster_field :
  rng:Prng.Rng.t ->
  clusters:int ->
  per_cluster:int ->
  field:float ->
  r:float ->
  ?spread:float ->
  ?gray_g':float ->
  unit ->
  Dual.t
(** [clusters] tight clusters of [per_cluster] co-located points (within
    [spread], default 0.3) whose centers are uniform in a [field × field]
    square.  Produces high Δ with controlled locality. *)

val dense_disk : rng:Prng.Rng.t -> n:int -> Dual.t
(** [n] points in a disk of radius 1/2 — the reliable graph is a clique
    (Δ = n).  The worst case for acknowledgement bounds. *)

val line : n:int -> ?spacing:float -> ?r:float -> unit -> Dual.t
(** [n] points on a line at [spacing] (default 0.9): a multihop chain.
    With [r >= 2 * spacing] grey-zone (unreliable) edges join vertices two
    hops apart. *)

val clique : int -> Dual.t
(** [clique n]: co-located points; G = G' = complete graph. *)

val pair : unit -> Dual.t
(** Two vertices joined by a reliable edge. *)

val singleton : unit -> Dual.t
(** One isolated vertex. *)

val gray_cluster : k:int -> ?r:float -> unit -> Dual.t
(** The decay-thwarting fixture (experiment E8): vertex 0 is the receiver
    [u]; vertex 1 is its single reliable neighbor [v]; vertices
    [2 .. k+1] are a co-located cluster in the grey zone of [u]
    (unreliable edges to [u], no edges to [v], reliable clique among
    themselves).  Requires [r >= 1.41] (default 1.5) so the grey cluster
    fits outside [v]'s range. *)

val ring : n:int -> ?hop:float -> ?r:float -> unit -> Dual.t
(** [n] points on a circle with consecutive points [hop] apart (default
    0.9): a cycle in G.  With [r >= 2 * hop] each vertex also gets
    grey-zone (unreliable) edges to its 2-hop neighbors.  Requires
    [n >= 3]. *)

val corridor :
  rng:Prng.Rng.t ->
  n:int ->
  length:float ->
  ?height:float ->
  ?r:float ->
  ?gray_g':float ->
  unit ->
  Dual.t
(** [n] points uniform in a thin [length × height] strip (default height
    0.8): a long multihop network with high local density — the shape of
    a vehicular or pipeline deployment. *)

val star_unembedded : leaves:int -> Dual.t
(** Hub 0 with [leaves] reliable spokes and no leaf-leaf edges.  No
    embedding (such stars are not geographically realizable beyond 5
    leaves); for unit tests of the engine only. *)
