(* Tests for the event-level abstract MAC layer checker (Mac_spec). *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module M = Localcast.Messages
module Params = Localcast.Params
module Mac = Localcast.Mac
module Spec = Localcast.Mac_spec
module Rng = Prng.Rng

let payload ?(uid = 0) src = M.payload ~src ~uid ()

(* --- synthetic event sequences --- *)

let test_clean_sequence () =
  let dual = Geo.pair () in
  let m = Spec.monitor ~dual ~f_ack:100 in
  Spec.note_request m ~node:0 ~round:0 (payload 0);
  Spec.note_recv m ~node:1 ~round:5 (payload 0);
  Spec.note_ack m ~node:0 ~round:10 (payload 0);
  let report = Spec.finish m ~rounds:20 in
  checkb "ok" true (Spec.ok report);
  checki "requests" 1 report.Spec.requests;
  checki "max latency" 10 report.Spec.max_ack_latency

let test_unmatched_ack () =
  let dual = Geo.pair () in
  let m = Spec.monitor ~dual ~f_ack:100 in
  Spec.note_ack m ~node:0 ~round:3 (payload 0);
  let report = Spec.finish m ~rounds:10 in
  checki "unmatched" 1 report.Spec.unmatched_acks;
  checkb "not ok" false (Spec.ok report)

let test_late_and_missing_acks () =
  let dual = Geo.pair () in
  let m = Spec.monitor ~dual ~f_ack:10 in
  Spec.note_request m ~node:0 ~round:0 (payload 0);
  Spec.note_ack m ~node:0 ~round:25 (payload 0);
  Spec.note_request m ~node:1 ~round:0 (payload 1);
  let report = Spec.finish m ~rounds:50 in
  checki "late" 1 report.Spec.late_acks;
  checki "missing" 1 report.Spec.missing_acks

let test_invalid_recv_no_outstanding () =
  let dual = Geo.pair () in
  let m = Spec.monitor ~dual ~f_ack:100 in
  Spec.note_recv m ~node:1 ~round:2 (payload 0);
  let report = Spec.finish m ~rounds:10 in
  checki "invalid" 1 report.Spec.invalid_recvs

let test_invalid_recv_not_neighbor () =
  (* line 0-1-2 with r=1: nodes 0 and 2 are not G'-neighbors *)
  let dual = Geo.line ~n:3 ~spacing:0.9 ~r:1.0 () in
  let m = Spec.monitor ~dual ~f_ack:100 in
  Spec.note_request m ~node:0 ~round:0 (payload 0);
  Spec.note_recv m ~node:2 ~round:2 (payload 0);
  let report = Spec.finish m ~rounds:10 in
  checki "invalid (not a neighbor)" 1 report.Spec.invalid_recvs

let test_recv_in_ack_round_valid () =
  let dual = Geo.pair () in
  let m = Spec.monitor ~dual ~f_ack:100 in
  Spec.note_request m ~node:0 ~round:0 (payload 0);
  (* ack processed before the neighbor's recv within the same round *)
  Spec.note_ack m ~node:0 ~round:7 (payload 0);
  Spec.note_recv m ~node:1 ~round:7 (payload 0);
  let report = Spec.finish m ~rounds:10 in
  checki "same-round recv valid" 0 report.Spec.invalid_recvs

let test_duplicate_recv () =
  let dual = Geo.pair () in
  let m = Spec.monitor ~dual ~f_ack:100 in
  Spec.note_request m ~node:0 ~round:0 (payload 0);
  Spec.note_recv m ~node:1 ~round:2 (payload 0);
  Spec.note_recv m ~node:1 ~round:3 (payload 0);
  let report = Spec.finish m ~rounds:10 in
  checki "duplicate" 1 report.Spec.duplicate_recvs

(* --- end-to-end over a real MAC run --- *)

let test_live_mac_run_is_clean () =
  let dual = Geo.clique 4 in
  let params = Params.of_dual ~tack_phases:2 ~eps1:0.2 dual in
  let monitor = Spec.monitor ~dual ~f_ack:(Params.t_ack_rounds params) in
  let callbacks = Spec.callbacks monitor ~chain:Mac.no_callbacks in
  let mac = Mac.create ~callbacks ~params ~rng:(Rng.of_int 8) ~dual () in
  (* requests land as bcast inputs at round 0 *)
  for v = 0 to 3 do
    if Mac.request mac ~node:v ~tag:0 then
      Spec.note_request monitor ~node:v ~round:0
        (M.payload ~tag:0 ~src:v ~uid:0 ())
  done;
  let rounds = 4 * params.Params.phase_len in
  let executed = Mac.run mac ~scheduler:(Sch.bernoulli ~seed:8 ~p:0.5) ~rounds in
  let report = Spec.finish monitor ~rounds:executed in
  checki "all four acked" 4 report.Spec.acks;
  checkb "live run satisfies the MAC spec" true (Spec.ok report);
  checkb "saw receptions" true (report.Spec.recvs > 0)

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("clean sequence", test_clean_sequence);
      ("unmatched ack", test_unmatched_ack);
      ("late and missing acks", test_late_and_missing_acks);
      ("invalid recv: no outstanding", test_invalid_recv_no_outstanding);
      ("invalid recv: not neighbor", test_invalid_recv_not_neighbor);
      ("same-round ack/recv ordering", test_recv_in_ack_round_valid);
      ("duplicate recv", test_duplicate_recv);
      ("live MAC run is clean", test_live_mac_run_is_clean);
    ]
