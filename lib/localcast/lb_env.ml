type entry = {
  node : int;
  payload : Messages.payload;
  bcast_round : int;
  mutable ack_round : int option;
  mutable recv_rounds : (int * int) list;
}

type t = {
  env : (Messages.lb_input, Messages.lb_output) Radiosim.Env.t;
  entries : entry list ref;
}

let env t = t.env

let log t = List.rev !(t.entries)

let find_in entries ~node payload =
  List.find_opt
    (fun e -> e.node = node && Messages.payload_equal e.payload payload)
    !entries

(* Shared machinery: [schedule.(v)] holds the round at which node [v]
   should next receive a bcast (if any); [notify] logs acks/recvs and, when
   [reissue] is set, schedules the next bcast one round after each ack. *)
let make ~name ~n ~initial ~reissue =
  let schedule = Array.make n None in
  let next_uid = Array.make n 0 in
  let entries = ref [] in
  List.iter (fun (node, round) -> schedule.(node) <- Some round) initial;
  let env =
    {
      Radiosim.Env.name;
          (* [inputs] consumes the schedule slot — a side effect. *)
          pure_inputs = false;
          inputs =
            (fun ~round ~node ->
              (* [r <= round], not [r = round]: a node that was dead (not
                 polled) at its scheduled round receives the bcast at the
                 first round it is alive again.  Without faults the two
                 are equivalent — inputs are polled every round. *)
              match schedule.(node) with
              | Some r when r <= round ->
                  schedule.(node) <- None;
                  let payload =
                    Messages.payload ~src:node ~uid:next_uid.(node) ()
                  in
                  next_uid.(node) <- next_uid.(node) + 1;
                  entries :=
                    {
                      node;
                      payload;
                      bcast_round = round;
                      ack_round = None;
                      recv_rounds = [];
                    }
                    :: !entries;
                  [ Messages.Bcast payload ]
              | _ -> []);
          notify =
            (fun ~round ~node outs ->
              List.iter
                (fun out ->
                  match out with
                  | Messages.Ack payload ->
                      (match find_in entries ~node payload with
                      | Some e -> e.ack_round <- Some round
                      | None -> ());
                      if reissue then schedule.(node) <- Some (round + 1)
                  | Messages.Recv payload ->
                      (match find_in entries ~node:payload.Messages.src payload with
                      | Some e -> e.recv_rounds <- (node, round) :: e.recv_rounds
                      | None -> ())
                  | Messages.Committed _ -> ())
                outs);
    }
  in
  { env; entries }

let saturate ?(start = 0) ~n ~senders () =
  make ~name:"saturate" ~n
    ~initial:(List.map (fun v -> (v, start)) senders)
    ~reissue:true

let one_shot ~n ~bcasts = make ~name:"one-shot" ~n ~initial:bcasts ~reissue:false

let is_active t ~node ~round =
  List.exists
    (fun e ->
      e.node = node && e.bcast_round <= round
      && match e.ack_round with None -> true | Some a -> round <= a)
    !(t.entries)
