let node ~n ~id ~message =
  if n < 1 || id < 0 || id >= n then invalid_arg "Round_robin.node: bad id/n";
  let decide ~round _inputs =
    if round mod n = id then
      Radiosim.Process.Transmit (Localcast.Messages.Data message)
    else Radiosim.Process.Listen
  in
  { Radiosim.Process.decide; absorb = (fun ~round:_ _ -> []) }
