type t = {
  name : string;
  active : round:int -> edge:int -> bool;
  (* Batch form of [active]: set byte [e] of the buffer to '\001' iff
     edge [e] is present this round.  Semantically redundant with
     [active]; kept as a separate field so constant and periodic
     schedulers can fill with a single [Bytes.fill] instead of one
     predicate call per edge. *)
  fill : round:int -> Bytes.t -> unit;
}

let name t = t.name
let active t = t.active

let fill_of_active active ~round buf =
  for e = 0 to Bytes.length buf - 1 do
    Bytes.unsafe_set buf e (if active ~round ~edge:e then '\001' else '\000')
  done

let fill_active t ~round buf = t.fill ~round buf

let make ~name active = { name; active; fill = fill_of_active active }

let constant_fill on ~round:_ buf =
  Bytes.fill buf 0 (Bytes.length buf) (if on then '\001' else '\000')

let reliable_only =
  {
    name = "reliable-only";
    active = (fun ~round:_ ~edge:_ -> false);
    fill = constant_fill false;
  }

let all_edges =
  {
    name = "all-edges";
    active = (fun ~round:_ ~edge:_ -> true);
    fill = constant_fill true;
  }

let bernoulli ~seed ~p =
  let active ~round ~edge =
    let h =
      Prng.Splitmix.mix
        (Int64.add
           (Int64.mul (Int64.of_int round) 0x100000001B3L)
           (Int64.of_int ((edge * 2654435761) + seed)))
    in
    (* Scale 53 hash bits into [0, 1) and compare against [p], exactly
       mirroring Rng.float / Rng.bernoulli. *)
    let v = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0 in
    v < p
  in
  (* The batch fill hoists the round term out of the per-edge hash: one
     multiply per round, one mix per edge. *)
  let fill ~round buf =
    let round_term = Int64.mul (Int64.of_int round) 0x100000001B3L in
    for edge = 0 to Bytes.length buf - 1 do
      let h =
        Prng.Splitmix.mix
          (Int64.add round_term (Int64.of_int ((edge * 2654435761) + seed)))
      in
      let v =
        Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
      in
      Bytes.unsafe_set buf edge (if v < p then '\001' else '\000')
    done
  in
  { name = Printf.sprintf "bernoulli(p=%.2f)" p; active; fill }

let flicker ~period ~duty =
  if period <= 0 || duty < 0 || duty > period then
    invalid_arg "Scheduler.flicker: need 0 <= duty <= period, period > 0";
  {
    name = Printf.sprintf "flicker(%d/%d)" duty period;
    active = (fun ~round ~edge:_ -> round mod period < duty);
    fill = (fun ~round buf -> constant_fill (round mod period < duty) ~round buf);
  }

let edge_phase_flicker ~period =
  if period <= 0 then invalid_arg "Scheduler.edge_phase_flicker: period > 0";
  let active ~round ~edge = round mod period = edge mod period in
  {
    name = Printf.sprintf "edge-phase(%d)" period;
    active;
    fill =
      (fun ~round buf ->
        (* Only every [period]-th edge is on: clear, then stride. *)
        Bytes.fill buf 0 (Bytes.length buf) '\000';
        let e = ref (round mod period) in
        while !e < Bytes.length buf do
          Bytes.unsafe_set buf !e '\001';
          e := !e + period
        done);
  }

let thwart ~hot =
  {
    name = "thwart";
    active = (fun ~round ~edge:_ -> hot round);
    fill = (fun ~round buf -> constant_fill (hot round) ~round buf);
  }

let pp ppf t = Format.pp_print_string ppf t.name
