(** Event-level checker for the abstract MAC layer interface.

    The abstract MAC layer specification (Kuhn–Lynch–Newport; paper §1,
    §5) is stated purely in terms of the ordering and timing of bcast /
    ack / recv events.  This monitor observes exactly those events (via
    {!Mac} callbacks plus the request log) and checks:

    - {e ack pairing}: every ack answers exactly one outstanding request
      of its node, in FIFO-of-one order (the MAC refuses overlapping
      requests, so at most one is outstanding);
    - {e ack timing}: each ack arrives within [f_ack] rounds of its
      request;
    - {e receive validity}: a recv at [v] carries a payload whose source
      currently has that payload outstanding and is a G'-neighbor of [v];
    - {e receive uniqueness}: no (receiver, payload) pair is delivered
      twice.

    Together these are the safety face of the abstract MAC layer; the
    liveness face (progress) is measured by experiments E5/E11 rather
    than asserted per-event. *)

type report = {
  requests : int;
  acks : int;
  recvs : int;
  unmatched_acks : int;  (** acks with no outstanding request *)
  late_acks : int;  (** acks later than f_ack after their request *)
  missing_acks : int;  (** requests unanswered ≥ f_ack rounds at finish *)
  invalid_recvs : int;  (** recvs violating neighbor/outstanding validity *)
  duplicate_recvs : int;
  max_ack_latency : int;
}

val ok : report -> bool
(** No violations of any kind. *)

type monitor

val monitor : dual:Dualgraph.Dual.t -> f_ack:int -> monitor

val note_request : monitor -> node:int -> round:int -> Messages.payload -> unit
(** Call when {!Mac.request} accepts a request (the round at which the
    bcast input will be delivered, i.e. the following round). *)

val note_ack : monitor -> node:int -> round:int -> Messages.payload -> unit

val note_recv : monitor -> node:int -> round:int -> Messages.payload -> unit

val callbacks : monitor -> chain:Mac.callbacks -> Mac.callbacks
(** Wrap application callbacks so MAC events flow through the monitor
    before reaching the application. *)

val finish : monitor -> rounds:int -> report
