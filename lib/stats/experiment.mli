(** Trial running for the experiment harness.

    Experiments repeat a randomized measurement across independently
    seeded trials and aggregate.  The runner derives one deterministic
    sub-seed per trial from a master seed (an affine combination of seed
    and trial index pushed through the SplitMix64 finalizer, so nearby
    master seeds cannot produce overlapping trial streams), and every
    table in EXPERIMENTS.md is exactly reproducible — including under
    {!trials_par}, whose results are bit-identical to {!trials} at any
    domain count. *)

val trials : seed:int -> n:int -> (trial:int -> seed:int -> 'a) -> 'a list
(** [trials ~seed ~n f] runs [f] for trials [0 .. n-1], each with its own
    derived seed, and returns the results in trial order. *)

val trials_par :
  ?domains:int -> seed:int -> n:int -> (trial:int -> seed:int -> 'a) -> 'a list
(** [trials_par ~domains ~seed ~n f] is observably identical to
    [trials ~seed ~n f] — same derived seed per trial, results restored
    to trial order — but spreads the trials over [domains] worker
    domains (default [1], which runs sequentially without spawning)
    through a chunked work-stealing loop: workers claim the next chunk
    of trial indices from a shared atomic cursor, so uneven per-trial
    workloads rebalance instead of stranding a static block on one
    domain.  [f] therefore runs concurrently with itself and must not
    share mutable state across trials; make each trial return its
    measurements and aggregate over the result list instead.  Raises
    [Invalid_argument] if [domains < 1].

    If a trial raises, the first such exception (in completion order)
    is re-raised here on the calling domain with its original
    backtrace; the remaining trials are abandoned as soon as the
    workers observe the failure, and every worker domain is still
    joined before the re-raise — no chunk cursor deadlock, no
    swallowed exception.  The spawned worker domains are registered
    with {!Parallel.Budget} for their lifetime, so nested parallel
    sections (e.g. a tiled engine run inside a trial) size their
    defaults against the remaining capacity. *)

val count : ('a -> bool) -> 'a list -> int

val float_samples : ('a -> float) -> 'a list -> float list

val time : (unit -> 'a) -> 'a * float
(** Result plus elapsed seconds on the monotonic clock
    (CLOCK_MONOTONIC) — immune to the backwards steps NTP inflicts on
    time-of-day clocks, so the reading is always >= 0. *)
