(* Two classic abstract-MAC-layer services running over the dual graph
   model: neighbor discovery (paper refs [5, 6]) and flood-max consensus
   (paper ref [20]).  Both are written purely against Localcast.Mac and
   inherit the LB layer's tolerance of unreliable links.

   Run with:  dune exec examples/neighborhood_services.exe *)

open Core
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler

let () =
  let rng = Prng.Rng.of_int 314 in
  let dual =
    Geo.corridor ~rng ~n:24 ~length:7.0 ~height:0.8 ~r:1.5 ~gray_g':0.6 ()
  in
  let n = Dual.n dual in
  Format.printf "topology: %a@." Dual.pp dual;
  print_string (Dualgraph.Render.field ~columns:70 dual);
  let params = Localcast.Params.of_dual ~eps1:0.1 ~tack_phases:3 dual in
  let budget = 80 * n * params.Localcast.Params.phase_len in

  (* --- neighbor discovery: every node says hello once --- *)
  let discovery =
    Macapps.Discovery.run ~params ~rng:(Prng.Rng.split rng) ~dual
      ~scheduler:(Sch.bernoulli ~seed:1 ~p:0.5)
      ~max_rounds:budget ()
  in
  Format.printf "@.neighbor discovery:@.";
  Format.printf "  complete          : %b%s@." discovery.Macapps.Discovery.complete
    (match discovery.Macapps.Discovery.completion_round with
    | Some round -> Printf.sprintf " (at round %d)" round
    | None -> "");
  Format.printf "  missing G pairs   : %d@."
    discovery.Macapps.Discovery.missing_pairs;
  Format.printf "  spurious pairs    : %d (validity: can never exceed G')@."
    discovery.Macapps.Discovery.spurious_pairs;
  let sizes =
    Array.map List.length discovery.Macapps.Discovery.discovered
    |> Array.to_list |> List.map float_of_int
  in
  Format.printf "  neighbors found   : %s@."
    (Format.asprintf "%a" Stats.Summary.pp (Stats.Summary.of_list sizes));

  (* --- consensus: agree on the max-id node's reading --- *)
  let inputs = Array.init n (fun v -> (v * 37) mod 100) in
  let consensus =
    Macapps.Consensus.run ~params ~rng:(Prng.Rng.split rng) ~dual
      ~scheduler:(Sch.bernoulli ~seed:2 ~p:0.5)
      ~inputs ~max_rounds:budget ()
  in
  Format.printf "@.flood-max consensus:@.";
  Format.printf "  converged         : %b (after %d rounds)@."
    consensus.Macapps.Consensus.converged
    consensus.Macapps.Consensus.rounds_executed;
  Format.printf "  agreement         : %b@." consensus.Macapps.Consensus.agreement;
  Format.printf "  validity          : %b (decided %d, max-id input was %d)@."
    consensus.Macapps.Consensus.valid
    consensus.Macapps.Consensus.decisions.(0)
    inputs.(n - 1);
  Format.printf
    "@.Neither service mentions rounds, collisions or link schedules —@.\
     the local broadcast layer hides the dual graph's unreliability.@."
