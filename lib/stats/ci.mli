(** Binomial confidence intervals.

    Error-probability experiments (E3, E5, E6) estimate a failure rate
    from Bernoulli trials; the Wilson score interval gives usable bounds
    even when no failures were observed. *)

type t = { rate : float; lower : float; upper : float }

val wilson : ?z:float -> successes:int -> trials:int -> unit -> t
(** Wilson score interval at confidence [z] standard normal quantiles
    (default [z = 1.96], ≈ 95%).  Requires [0 <= successes <= trials] and
    [trials > 0]. *)

val pp : Format.formatter -> t -> unit
