(* Experiments E5-E7: the local broadcast service (Theorem 4.1, Lemma C.1).

   E5  progress: within each t_prog-round phase with an always-active
       reliable neighbor, a node receives something w.p. >= 1 - ε; t_prog
       scales as O(log Δ · polylog).
   E6  reliability & acknowledgement: a one-shot bcast reaches every
       reliable neighbor before the ack, within t_ack = O(Δ polylog).
   E7  per-round reception bound (Lemma C.1): in a body round,
       p_u >= c₂ / (r² log(1/ε₂) log Δ) and p_{u,v} >= p_u / Δ'. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Params = Localcast.Params
module M = Localcast.Messages
module L = Localcast
module Table = Stats.Table

let e5 () =
  section "E5: progress bound t_prog (Theorem 4.1, Lemma C.2)";
  note
    "Saturated senders; every (receiver, phase) with a fully-active\n\
     reliable neighbor must hear something.  Failure frequency vs ε, and\n\
     t_prog growth vs Δ.";
  let trials = trials_scaled 10 in
  let phases = 6 in
  let table =
    Table.create ~title:"E5a: progress vs delta (eps=0.1, cliques, all-but-one send)"
      ~columns:
        [ "delta"; "t_prog"; "opportunities"; "failures"; "failure freq";
          "latency p50"; "latency p90" ]
  in
  List.iter
    (fun delta ->
      let dual = Geo.clique delta in
      let params = Params.of_dual ~eps1:0.1 ~tack_phases:2 dual in
      let samples =
        run_trials ~salt:delta ~n:trials (fun ~trial:_ ~seed ->
            let senders = List.init (delta - 1) (fun i -> i + 1) in
            let report, _ = run_lb_trial ~dual ~params ~senders ~phases ~seed () in
            ( report.L.Lb_spec.progress_opportunities,
              report.L.Lb_spec.progress_failures,
              List.map float_of_int report.L.Lb_spec.progress_latencies ))
      in
      let opportunities = ref 0 and failures = ref 0 in
      let latencies = ref [] in
      List.iter
        (fun (opps, fails, lats) ->
          opportunities := !opportunities + opps;
          failures := !failures + fails;
          latencies := lats @ !latencies)
        samples;
      let latency_summary =
        if !latencies = [] then None else Some (Stats.Summary.of_list !latencies)
      in
      let cell f =
        match latency_summary with
        | Some s -> Table.cell_float ~decimals:0 (f s)
        | None -> "-"
      in
      Table.add_row table
        [
          Table.cell_int delta;
          Table.cell_int (Params.t_prog_rounds params);
          Table.cell_int !opportunities;
          Table.cell_int !failures;
          Table.cell_float ~decimals:4
            (float_of_int !failures /. float_of_int (max 1 !opportunities));
          cell (fun s -> s.Stats.Summary.median);
          cell (fun s -> s.Stats.Summary.p90);
        ])
    (if !quick then [ 4; 16 ] else [ 2; 4; 8; 16; 32 ]);
  Table.print table;
  let table_eps =
    Table.create ~title:"E5b: progress vs eps (random field n=40)"
      ~columns:[ "eps"; "t_prog"; "opportunities"; "failures"; "failure freq" ]
  in
  List.iter
    (fun eps1 ->
      (* Same salt across eps rows: each eps sees the same topologies and
         seeds, isolating the parameter effect. *)
      let samples =
        run_trials ~n:trials (fun ~trial:_ ~seed ->
            let dual = random_field ~seed ~n:40 () in
            let params = Params.of_dual ~eps1 ~tack_phases:2 dual in
            let report, _ =
              run_lb_trial ~dual ~params ~senders:[ 0; 13; 26 ] ~phases ~seed ()
            in
            ( Params.t_prog_rounds params,
              report.L.Lb_spec.progress_opportunities,
              report.L.Lb_spec.progress_failures ))
      in
      let opportunities = ref 0 and failures = ref 0 in
      let t_prog = ref 0 in
      List.iter
        (fun (tp, opps, fails) ->
          t_prog := tp;
          opportunities := !opportunities + opps;
          failures := !failures + fails)
        samples;
      Table.add_row table_eps
        [
          Table.cell_float ~decimals:3 eps1;
          Table.cell_int !t_prog;
          Table.cell_int !opportunities;
          Table.cell_int !failures;
          Table.cell_float ~decimals:4
            (float_of_int !failures /. float_of_int (max 1 !opportunities));
        ])
    (if !quick then [ 0.2; 0.05 ] else [ 0.25; 0.1; 0.05 ]);
  Table.print table_eps;
  note "Expected: failure frequency <= eps in every row; t_prog grows ~log Δ.\n"

let e6 () =
  section "E6: reliability and acknowledgement bound t_ack (Theorem 4.1, Lemma C.3)";
  note
    "One-shot bcast from node 0 with the fully derived Tack; every\n\
     reliable neighbor must recv before the ack.  'completion' is the\n\
     round the last neighbor got the message.";
  let trials = trials_scaled 8 in
  let table =
    Table.create ~title:"E6: reliability on cliques (eps=0.1)"
      ~columns:
        [ "delta"; "Tack phases"; "t_ack rounds"; "reliability"; "mean completion";
          "completion/t_ack" ]
  in
  List.iter
    (fun delta ->
      let dual = Geo.clique delta in
      let params = Params.of_dual ~eps1:0.1 dual in
      let samples =
        run_trials ~salt:delta ~n:trials (fun ~trial:_ ~seed ->
            let report, completion = run_reliability_trial ~dual ~params ~seed in
            ( report.L.Lb_spec.reliability_attempts,
              report.L.Lb_spec.reliability_failures,
              completion ))
      in
      let successes = ref 0 and attempts = ref 0 in
      let completions = ref [] in
      List.iter
        (fun (atts, fails, completion) ->
          attempts := !attempts + atts;
          successes := !successes + (atts - fails);
          match completion with
          | Some round -> completions := float_of_int round :: !completions
          | None -> ())
        samples;
      let t_ack = Params.t_ack_rounds params in
      let mean_completion =
        if !completions = [] then Float.nan else Stats.Summary.mean !completions
      in
      Table.add_row table
        [
          Table.cell_int delta;
          Table.cell_int params.Params.tack_phases;
          Table.cell_int t_ack;
          Printf.sprintf "%d/%d" !successes !attempts;
          Table.cell_float ~decimals:0 mean_completion;
          Table.cell_float ~decimals:3 (mean_completion /. float_of_int t_ack);
        ])
    (if !quick then [ 4; 8 ] else [ 2; 4; 8; 16 ]);
  Table.print table;
  note
    "Expected: reliability = 100%% of attempts; completion well inside\n\
     t_ack (the bound is worst-case over schedulers); t_ack grows ~Δ·polylog.\n"

(* E7: instrument per-round reception frequencies in body rounds. *)
let e7 () =
  section "E7: per-round reception probability (Lemma 4.2 / C.1)";
  note
    "Clique of Δ senders + one receiver u; count u's clean receptions per\n\
     body round and receptions from one fixed sender v.";
  let trials = trials_scaled 6 in
  let phases = 4 in
  let table =
    Table.create ~title:"E7: body-round reception frequency"
      ~columns:
        [ "delta"; "p_u measured"; "p_u bound"; "p_uv measured"; "p_u/delta'" ]
  in
  List.iter
    (fun delta ->
      let dual = Geo.clique (delta + 1) in
      (* node 0 receives; 1..delta send *)
      let params = Params.of_dual ~eps1:0.1 ~tack_phases:phases dual in
      (* The observer is trial-local: each trial counts into its own refs
         and returns the totals, so trials stay independent under
         --domains > 1. *)
      let samples =
        run_trials ~salt:delta ~n:trials (fun ~trial:_ ~seed ->
            let body_rounds = ref 0 and receptions = ref 0 and from_v = ref 0 in
            let observer record =
              if
                (not
                   (L.Lb_alg.is_preamble_round params record.Radiosim.Trace.round))
                && record.Radiosim.Trace.round >= params.Params.ts
              then begin
                incr body_rounds;
                match record.Radiosim.Trace.delivered.(0) with
                | Some (M.Data p) ->
                    incr receptions;
                    if p.M.src = 1 then incr from_v
                | _ -> ()
              end
            in
            let senders = List.init delta (fun i -> i + 1) in
            let (_ : L.Lb_spec.report * L.Lb_env.entry list) =
              run_lb_trial ~observer ~dual ~params ~senders ~phases ~seed ()
            in
            (!body_rounds, !receptions, !from_v))
      in
      let body_rounds = ref 0 and receptions = ref 0 and from_v = ref 0 in
      List.iter
        (fun (b, r, f) ->
          body_rounds := !body_rounds + b;
          receptions := !receptions + r;
          from_v := !from_v + f)
        samples;
      let p_u = float_of_int !receptions /. float_of_int (max 1 !body_rounds) in
      let p_uv = float_of_int !from_v /. float_of_int (max 1 !body_rounds) in
      let log_inv2 = log (1.0 /. params.Params.eps2) /. log 2.0 in
      let r = Dual.r dual in
      let bound =
        params.Params.calibration.Params.c_pu
        /. (r *. r *. log_inv2 *. float_of_int params.Params.log_delta)
      in
      Table.add_row table
        [
          Table.cell_int delta;
          Table.cell_float ~decimals:4 p_u;
          Table.cell_float ~decimals:4 bound;
          Table.cell_float ~decimals:4 p_uv;
          Table.cell_float ~decimals:4 (p_u /. float_of_int (Dual.delta' dual));
        ])
    (if !quick then [ 4; 16 ] else [ 2; 4; 8; 16; 32 ]);
  Table.print table;
  note
    "Expected: measured p_u above the calibrated bound; measured p_{u,v}\n\
     above p_u/Δ' (the Δ' divisor is worst-case).\n"

let run () =
  e5 ();
  e6 ();
  e7 ()
