(** The structured event sink: a bounded ring buffer plus streaming
    consumers.

    A sink is the single object instrumented code writes to.  It does two
    things per {!emit}:

    + stores the event in a fixed-capacity ring buffer (overwriting the
      oldest retained event once full — long runs keep a bounded recent
      window instead of growing without limit), and
    + hands the event synchronously to every registered {!on_event}
      consumer, so online analyses (the {!Audit} monitor, metric
      counting, live filtering) see the {e complete} stream even when the
      ring has long since wrapped.

    The disabled state is represented by absence: instrumented code takes
    a [Sink.t option] and emits nothing when it is [None], so a disabled
    sink costs one branch per emission site — the engine's micro-bench
    regression budget for the whole layer is 2%.

    Sinks are not thread-safe; use one sink per domain (the experiment
    runner's domain-parallel trials each build their own). *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh sink retaining the last [capacity] events (default 65536;
    must be ≥ 1).  Raises [Invalid_argument] on a non-positive
    capacity. *)

val capacity : t -> int

val emit : t -> Event.t -> unit
(** Append an event: store it in the ring (evicting the oldest if full)
    and call every registered consumer, in registration order. *)

val on_event : t -> (Event.t -> unit) -> unit
(** Register a streaming consumer.  Consumers run synchronously inside
    {!emit}, in registration order; they must not emit into the same
    sink. *)

val emitted : t -> int
(** Total events emitted over the sink's lifetime (≥ {!length}). *)

val length : t -> int
(** Events currently retained in the ring. *)

val dropped : t -> int
(** Events evicted by wraparound ([emitted - length]). *)

val get : t -> int -> Event.t
(** [get t i] is the [i]-th retained event, [0] being the oldest
    retained.  Raises [Invalid_argument] out of range. *)

val iter : t -> (Event.t -> unit) -> unit
(** Iterate the retained window, oldest first. *)

val fold : t -> init:'acc -> f:('acc -> Event.t -> 'acc) -> 'acc

val to_list : t -> Event.t list
(** The retained window, oldest first. *)

val clear : t -> unit
(** Forget all retained events and reset the counters.  Registered
    consumers stay. *)

(** {1 JSONL export / import}

    One event per line in emission order; schema in
    [docs/OBSERVABILITY.md].  Export covers the {e retained} window — to
    capture a complete run, size the capacity to the run (or attach a
    consumer that writes lines as they happen). *)

val write_jsonl : t -> out_channel -> unit
(** Write the retained window, one {!Event.to_json} line per event,
    oldest first, each line newline-terminated. *)

val save_jsonl : t -> path:string -> unit
(** {!write_jsonl} to a fresh file at [path]. *)

val read_jsonl : in_channel -> (Event.t list, string) result
(** Read events back, one per line, in order; blank lines are skipped.
    [Error] names the first offending line. *)

val load_jsonl : path:string -> (Event.t list, string) result
