(** The SeedAlg state machine (paper §3.2), reusable across hosts.

    SeedAlg runs standalone (wrapped by {!Seed_alg} into a process) and as
    the preamble subroutine of every LBAlg phase ({!Lb_alg}).  Both hosts
    drive the same machine: call {!decide_action} at each local round to
    learn whether to transmit, feed receptions to {!absorb}, and call
    {!finalize} once the [Params.seed_duration] rounds have elapsed to
    apply the end-of-algorithm default decision.

    Timeline, for local rounds [0 .. duration-1] with phase
    [h = local_round / phase_len + 1]:

    - at the first round of phase [h], an [active] node elects itself
      leader with probability [2^{-(phases - h + 1)}] (so the sequence
      1/Δ, 2/Δ, …, 1/4, 1/2) and, if elected, decides on its own initial
      seed immediately;
    - a leader transmits [(i, s)] w.p. [broadcast_prob] in every round of
      its phase, then goes inactive;
    - an active non-leader listens; on receiving some [(j, s)] it decides
      [(j, s)] and goes inactive;
    - a node still active after the last phase decides its own seed. *)

type t

type status =
  | Active
  | Leader of int  (** the phase (1-based) in which leadership was won *)
  | Inactive

val create : Params.seed -> id:int -> rng:Prng.Rng.t -> t
(** Draws the initial seed uniformly from [{0,1}^kappa] using [rng]. *)

val initial_seed : t -> Prng.Bitstring.t

val status : t -> status

val duration : t -> int
(** Total number of local rounds the machine needs. *)

val decide_action : t -> local_round:int -> Messages.msg Radiosim.Process.action
(** Must be called exactly once per local round, in order, with
    [local_round] in [\[0, duration)].  Performs the phase-start leader
    election when [local_round] opens a phase. *)

val absorb : t -> local_round:int -> Messages.msg option -> unit
(** Feed the round's reception result.  Non-seed messages are ignored. *)

val take_event : t -> Messages.seed_announcement option
(** The decision made during the current round, if any — emitted once;
    subsequent calls return [None] until another decision happens.
    (Decisions happen at most once per machine.) *)

val finalize : t -> unit
(** Apply the default decision (own id, own seed) if still active.  Call
    after the machine's last round. *)

val decision : t -> Messages.seed_announcement option
(** The committed (owner, seed), once decided. *)
