(* Experiment OBS: the observability layer exercised end-to-end.

   One instrumented LB service run (saturated senders, random field)
   with the full pipeline attached — event sink, metrics registry,
   online spec auditor — then three checks with teeth:

   + the auditor's acknowledgement accounting must agree exactly with
     the offline Lb_spec monitor that watched the same run (ack count,
     max latency, and total t_ack deadline misses),
   + the auditor's progress-miss count must equal the monitor's
     progress-failure count,
   + the exported JSONL stream must parse back to exactly the events
     the sink retained.

   Any disagreement is a [failwith]: this group runs in quick mode under
   the bench-smoke alias, so CI fails if the online auditor and the
   reference monitor ever drift apart.  The run also writes the
   BENCH_obs.json metrics artifact and the BENCH_obs_events.jsonl event
   stream — the files the worked example in docs/OBSERVABILITY.md
   walks through. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Params = Localcast.Params
module L = Localcast
module Table = Stats.Table

let count_kind violations pred =
  List.length (List.filter (fun v -> pred v.Obs.Audit.kind) violations)

let run () =
  section "OBS: observability layer (event stream, metrics, online audit)";
  note
    "One instrumented run: engine + LBAlg emit into a sink; the online\n\
     auditor's verdicts are cross-checked against the Lb_spec monitor.";
  let dual = random_field ~seed:(master_seed + 41) ~n:48 () in
  let params = Params.of_dual ~eps1:0.2 ~tack_phases:1 dual in
  let phases = if !quick then 3 else 5 in
  let rounds = phases * params.Params.phase_len in
  let n = Dual.n dual in
  (* Size the ring to the whole run so the JSONL export is the complete
     stream: per round at most n transmit/deliver/collision events plus
     the protocol events, bracketed by round_start/round_end. *)
  let capacity = max 65536 (rounds * (2 * n + 8)) in
  let sink = Obs.Sink.create ~capacity () in
  let metrics = Obs.Metrics.create () in
  let auditor = L.Lb_obs.auditor ~dual ~params () in
  Obs.Sink.on_event sink (Obs.Audit.observe auditor);
  let senders = [ 0; 1; 2; 3 ] in
  let outcome =
    L.Service.run ~sink ~metrics ~dual ~params ~senders ~phases
      ~seed:(master_seed + 42) ()
  in
  Obs.Audit.finish auditor;
  let report = outcome.L.Service.report in
  let violations = Obs.Audit.violations auditor in
  let latencies = List.map (fun (_, _, l) -> l) (Obs.Audit.ack_latencies auditor) in
  let audit_acks = List.length latencies in
  let audit_max_latency = List.fold_left max 0 latencies in
  let audit_late =
    count_kind violations (function Obs.Audit.Late_ack _ -> true | _ -> false)
  in
  let audit_missing =
    count_kind violations (function
      | Obs.Audit.Missing_ack _ -> true
      | _ -> false)
  in
  let audit_progress_miss =
    count_kind violations (function
      | Obs.Audit.Progress_miss _ -> true
      | _ -> false)
  in
  let audit_delta =
    count_kind violations (function
      | Obs.Audit.Delta_breach _ -> true
      | _ -> false)
  in
  let table =
    Table.create
      ~title:"OBS: online auditor vs offline Lb_spec monitor (same run)"
      ~columns:[ "quantity"; "auditor"; "lb_spec" ]
  in
  let row name a b = Table.add_row table [ name; string_of_int a; string_of_int b ] in
  row "acks" audit_acks report.L.Lb_spec.ack_count;
  row "max ack latency" audit_max_latency report.L.Lb_spec.max_ack_latency;
  row "t_ack deadline misses" (audit_late + audit_missing)
    (report.L.Lb_spec.late_ack_count + report.L.Lb_spec.missing_ack_count);
  row "progress misses" audit_progress_miss report.L.Lb_spec.progress_failures;
  Table.add_row table
    [ "delta breaches"; string_of_int audit_delta; "-" ];
  Table.print table;
  if audit_acks <> report.L.Lb_spec.ack_count then
    failwith "exp_obs: auditor ack count disagrees with Lb_spec";
  if audit_max_latency <> report.L.Lb_spec.max_ack_latency then
    failwith "exp_obs: auditor max ack latency disagrees with Lb_spec";
  if
    audit_late + audit_missing
    <> report.L.Lb_spec.late_ack_count + report.L.Lb_spec.missing_ack_count
  then failwith "exp_obs: auditor deadline-miss count disagrees with Lb_spec";
  if audit_progress_miss <> report.L.Lb_spec.progress_failures then
    failwith "exp_obs: auditor progress misses disagree with Lb_spec";
  (* Artifacts: the per-phase metric snapshots and the raw event stream. *)
  let json_path = "BENCH_obs.json" in
  Obs.Metrics.write_json ~path:json_path ~git_rev:(git_rev ())
    outcome.L.Service.obs_snapshots;
  let jsonl_path = "BENCH_obs_events.jsonl" in
  Obs.Sink.save_jsonl sink ~path:jsonl_path;
  (* Round-trip the export: teeth for the JSONL schema. *)
  (match Obs.Sink.load_jsonl ~path:jsonl_path with
  | Error e -> failwith ("exp_obs: exported JSONL fails to parse back: " ^ e)
  | Ok events ->
      if List.length events <> Obs.Sink.length sink then
        failwith "exp_obs: JSONL round-trip lost events";
      List.iteri
        (fun i ev ->
          if not (Obs.Event.equal ev (Obs.Sink.get sink i)) then
            failwith "exp_obs: JSONL round-trip changed an event")
        events);
  if Obs.Sink.dropped sink > 0 then
    failwith "exp_obs: sink wrapped; capacity estimate too small";
  note
    "%d events emitted (%d retained), %d phase snapshots, %d violations; \
     wrote %s and %s (git rev %s)"
    (Obs.Sink.emitted sink) (Obs.Sink.length sink)
    (List.length outcome.L.Service.obs_snapshots)
    (List.length violations) json_path jsonl_path (git_rev ())
