type ('msg, 'input, 'output) round_record = {
  round : int;
  inputs : 'input list array;
  actions : 'msg Process.action array;
  delivered : 'msg option array;
  outputs : 'output list array;
}

type ('msg, 'input, 'output) t = {
  mutable records : ('msg, 'input, 'output) round_record array;
  mutable len : int;
}

let recorder () =
  let t = { records = [||]; len = 0 } in
  let push record =
    let cap = Array.length t.records in
    if t.len = cap then begin
      let fresh = Array.make (max 16 (2 * cap)) record in
      Array.blit t.records 0 fresh 0 t.len;
      t.records <- fresh
    end;
    t.records.(t.len) <- record;
    t.len <- t.len + 1
  in
  (t, push)

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: round out of range";
  t.records.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.records.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.records.(i)
  done;
  !acc

let outputs_of t node =
  fold
    (fun acc record ->
      List.fold_left (fun acc out -> (record.round, out) :: acc) acc
        record.outputs.(node))
    [] t
  |> List.rev

let deliveries_of t node =
  fold
    (fun acc record ->
      match record.delivered.(node) with
      | Some m -> (record.round, m) :: acc
      | None -> acc)
    [] t
  |> List.rev

let transmission_count t node =
  fold
    (fun acc record ->
      match record.actions.(node) with
      | Process.Transmit _ -> acc + 1
      | Process.Listen -> acc)
    0 t
