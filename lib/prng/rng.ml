type t = Splitmix.t

let create = Splitmix.create
let of_int = Splitmix.of_int
let split = Splitmix.split
let copy = Splitmix.copy
let bits64 = Splitmix.next

let bool t = Int64.logand (Splitmix.next t) 1L = 1L

let bits t k =
  (* 62 is the widest width whose values are all non-negative OCaml ints
     on 64-bit platforms (an int has 63 value bits including the sign). *)
  assert (k >= 0 && k <= 62);
  if k = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (Splitmix.next t) (64 - k))

let int t n =
  assert (n > 0);
  if n = 1 then 0
  else begin
    (* Rejection sampling on the smallest power-of-two envelope of [n].
       The envelope is capped at 62 bits, which covers every positive
       OCaml int (max_int = 2^62 - 1); [1 lsl k] must not be evaluated
       at k = 62, where it would overflow to min_int. *)
    let k =
      let rec width k = if k >= 62 || 1 lsl k >= n then k else width (k + 1) in
      width 1
    in
    let rec draw () =
      let v = bits t k in
      if v < n then v else draw ()
    in
    draw ()
  end

let int_in_range t ~min ~max =
  assert (min <= max);
  min + int t (max - min + 1)

let float t x =
  (* 53 random bits scaled into [0, 1), then into [0, x). *)
  let v = Int64.to_float (Int64.shift_right_logical (Splitmix.next t) 11) in
  x *. (v /. 9007199254740992.0)

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let geometric_trial t b =
  assert (b >= 0);
  let rec go remaining =
    if remaining = 0 then true
    else if bool t then false
    else go (remaining - 1)
  in
  go b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
