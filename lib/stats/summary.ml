type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

let mean = function
  | [] -> invalid_arg "Summary.mean: empty sample"
  | samples ->
      List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.percentile: q outside [0,1]";
  if n = 1 then sorted.(0)
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let of_array samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Summary.of_array: empty sample";
  (* NaNs must be rejected, not sorted: [Float.compare] orders them
     below every number, so a single NaN would silently poison [min],
     [mean] and [stddev] while the percentiles kept looking sane. *)
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Summary.of_array: NaN sample")
    samples;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let total = Array.fold_left ( +. ) 0.0 sorted in
  let mu = total /. float_of_int n in
  let sq_dev =
    Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 sorted
  in
  let stddev = if n < 2 then 0.0 else sqrt (sq_dev /. float_of_int (n - 1)) in
  {
    count = n;
    mean = mu;
    stddev;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = percentile sorted 0.5;
    p90 = percentile sorted 0.9;
    p99 = percentile sorted 0.99;
  }

let of_list samples = of_array (Array.of_list samples)

let of_ints samples = of_list (List.map float_of_int samples)

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.2f med=%.2f p90=%.2f p99=%.2f max=%.2f"
    t.count t.mean t.stddev t.min t.median t.p90 t.p99 t.max
