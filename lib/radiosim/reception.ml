type sinr = {
  alpha : float;
  beta : float;
  noise : float;
  power : float;
  jam : float;
  near : int;
}

type t = Dual_graph | Sinr of sinr

let dual_graph = Dual_graph

let default_alpha = 3.0
let default_beta = 1.5
let default_noise = 0.01
let default_power = 1.0
let default_near = 2

let validate_sinr { alpha; beta; noise; power; jam; near } =
  let bad fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let finite_pos name v =
    if Float.is_nan v || v <= 0.0 || v = Float.infinity then
      bad "Reception: %s must be a finite positive number, got %g" name v
    else Ok ()
  in
  let finite_nonneg name v =
    if Float.is_nan v || v < 0.0 || v = Float.infinity then
      bad "Reception: %s must be finite and >= 0, got %g" name v
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = finite_pos "alpha" alpha in
  let* () = finite_pos "beta" beta in
  let* () = finite_nonneg "noise" noise in
  let* () = finite_pos "power" power in
  let* () = finite_nonneg "jam" jam in
  if near < 1 then bad "Reception: near must be >= 1, got %d" near else Ok ()

let sinr_exn p =
  match validate_sinr p with
  | Ok () -> Sinr p
  | Error msg -> invalid_arg msg

let sinr ?(alpha = default_alpha) ?(beta = default_beta)
    ?(noise = default_noise) ?(power = default_power) ?jam
    ?(near = default_near) () =
  let jam = match jam with Some j -> j | None -> 1000.0 *. power in
  sinr_exn { alpha; beta; noise; power; jam; near }

let of_spec spec =
  let spec = String.trim spec in
  match String.lowercase_ascii spec with
  | "dual" | "dual-graph" -> Ok Dual_graph
  | "sinr" -> Ok (sinr ())
  | _ ->
      let prefix = "sinr:" in
      let plen = String.length prefix in
      if
        String.length spec < plen
        || not (String.equal (String.lowercase_ascii (String.sub spec 0 plen)) prefix)
      then
        Error
          (Printf.sprintf
             "Reception: bad spec %S (expected 'dual', 'sinr' or \
              'sinr:key=value,...')"
             spec)
      else begin
        let body = String.sub spec plen (String.length spec - plen) in
        let kvs = String.split_on_char ',' body in
        let parse acc kv =
          let ( let* ) = Result.bind in
          let* acc = acc in
          match String.split_on_char '=' (String.trim kv) with
          | [ key; value ] -> (
              let key = String.lowercase_ascii (String.trim key) in
              let value = String.trim value in
              let float_v () =
                match float_of_string_opt value with
                | Some f -> Ok f
                | None ->
                    Error
                      (Printf.sprintf "Reception: %s=%S is not a number" key
                         value)
              in
              match key with
              | "alpha" ->
                  let* v = float_v () in
                  Ok { acc with alpha = v }
              | "beta" ->
                  let* v = float_v () in
                  Ok { acc with beta = v }
              | "noise" ->
                  let* v = float_v () in
                  Ok { acc with noise = v }
              | "power" ->
                  let* v = float_v () in
                  Ok { acc with power = v }
              | "jam" ->
                  let* v = float_v () in
                  Ok { acc with jam = v }
              | "near" -> (
                  match int_of_string_opt value with
                  | Some i -> Ok { acc with near = i }
                  | None ->
                      Error
                        (Printf.sprintf "Reception: near=%S is not an integer"
                           value))
              | _ ->
                  Error
                    (Printf.sprintf
                       "Reception: unknown key %S (expected alpha, beta, \
                        noise, power, jam or near)"
                       key))
          | _ ->
              Error
                (Printf.sprintf "Reception: malformed clause %S (expected \
                                 key=value)"
                   kv)
        in
        let defaults =
          {
            alpha = default_alpha;
            beta = default_beta;
            noise = default_noise;
            power = default_power;
            jam = 1000.0 *. default_power;
            near = default_near;
          }
        in
        match List.fold_left parse (Ok defaults) kvs with
        | Error _ as e -> e
        | Ok p -> ( match validate_sinr p with Ok () -> Ok (Sinr p) | Error e -> Error e)
      end

let to_spec = function
  | Dual_graph -> "dual"
  | Sinr { alpha; beta; noise; power; jam; near } ->
      Printf.sprintf "sinr:alpha=%.17g,beta=%.17g,noise=%.17g,power=%.17g,jam=%.17g,near=%d"
        alpha beta noise power jam near

let name = function Dual_graph -> "dual-graph" | Sinr _ -> "sinr"

let requires_embedding = function Dual_graph -> false | Sinr _ -> true

let pp fmt = function
  | Dual_graph -> Format.fprintf fmt "dual-graph"
  | Sinr { alpha; beta; noise; power; jam; near } ->
      Format.fprintf fmt
        "sinr(alpha=%g beta=%g noise=%g power=%g jam=%g near=%d)" alpha beta
        noise power jam near
