(* Quickstart: stand up a local broadcast service on a random dual graph
   and watch it meet its spec.

   Run with:  dune exec examples/quickstart.exe

   The flow below is the canonical way to use the library:
   1. build (or load) a dual graph topology,
   2. derive LB parameters from its local degree bounds (never from n!),
   3. build the LBAlg network and an environment that feeds it bcasts,
   4. run the synchronous engine under some oblivious link scheduler,
   5. check the execution against the LB(t_ack, t_prog, ε) spec. *)

open Core
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module L = Localcast

let () =
  let rng = Prng.Rng.of_int 2026 in

  (* 1. A 30-node field, 1.5-geographic, with half the grey-zone pairs
        getting unreliable links. *)
  let dual =
    Geo.random_field ~rng ~n:30 ~width:4.0 ~height:4.0 ~r:1.5 ~gray_g':0.5 ()
  in
  Format.printf "topology: %a@." Dual.pp dual;

  (* 2. Parameters from (Δ, Δ', r, ε₁) only. *)
  let params = L.Params.of_dual ~eps1:0.1 ~tack_phases:4 dual in
  Format.printf "%a@.@." L.Params.pp params;

  (* 3. LBAlg nodes + an environment that keeps nodes 0 and 7 sending. *)
  let nodes = L.Lb_alg.network params ~rng ~n:(Dual.n dual) in
  let envt = L.Lb_env.saturate ~n:(Dual.n dual) ~senders:[ 0; 7 ] () in

  (* 4. Run 8 phases under an adversarially flickering link scheduler,
        with the spec monitor watching every round. *)
  let monitor = L.Lb_spec.monitor ~dual ~params ~env:envt () in
  let rounds = 8 * params.L.Params.phase_len in
  let executed =
    Radiosim.Engine.run
      ~observer:(L.Lb_spec.observe monitor)
      ~dual
      ~scheduler:(Sch.bernoulli ~seed:1 ~p:0.5)
      ~nodes ~env:(L.Lb_env.env envt) ~rounds ()
  in

  (* 5. Report. *)
  let report = L.Lb_spec.finish monitor in
  Format.printf "ran %d rounds (%d phases)@." executed
    (executed / params.L.Params.phase_len);
  Format.printf "validity violations : %d@." report.L.Lb_spec.validity_violations;
  Format.printf "acks                : %d (late: %d, missing: %d, max latency: %d)@."
    report.L.Lb_spec.ack_count report.L.Lb_spec.late_ack_count
    report.L.Lb_spec.missing_ack_count report.L.Lb_spec.max_ack_latency;
  Format.printf "reliability         : %d/%d (%.1f%%)@."
    (report.L.Lb_spec.reliability_attempts - report.L.Lb_spec.reliability_failures)
    report.L.Lb_spec.reliability_attempts
    (100.0 *. L.Lb_spec.reliability_rate report);
  Format.printf "progress            : %d/%d (%.1f%%)@."
    (report.L.Lb_spec.progress_opportunities - report.L.Lb_spec.progress_failures)
    report.L.Lb_spec.progress_opportunities
    (100.0 *. L.Lb_spec.progress_rate report)
