(* One derived seed per trial.  The affine combination separates the
   (master seed, trial) pairs; routing it through the SplitMix64
   finalizer then decorrelates them, so nearby master seeds (or salted
   variants of one master seed) cannot yield overlapping trial streams
   the way the raw affine form could. *)
let derived_seed ~seed ~trial =
  let affine = (seed * 0x9E3779B1) + (trial * 0x85EBCA77) + 0x165667B1 in
  (* [to_int] keeps the low 63 bits — deterministic on 64-bit platforms. *)
  Int64.to_int (Prng.Splitmix.mix (Int64.of_int affine))

let trials ~seed ~n f =
  List.init n (fun trial -> f ~trial ~seed:(derived_seed ~seed ~trial))

let trials_par ?(domains = 1) ~seed ~n f =
  if domains < 1 then invalid_arg "Experiment.trials_par: domains must be >= 1";
  let workers = min domains n in
  if workers <= 1 then trials ~seed ~n f
  else begin
    (* Work-stealing loop over the trial indices: every worker claims
       the next chunk from a shared atomic cursor until the range is
       drained, so a few slow trials cannot strand the rest of a static
       block on one domain.  Each trial's seed depends only on its
       index and each result lands in its own slot, so the claiming
       order cannot affect any result (bit-identical at any domain
       count) and the unsynchronized writes below are race-free.  The
       chunk size amortizes the fetch-and-add without costing balance:
       at least 8 claims per worker on large n, single-trial claims on
       small n. *)
    let results = Array.make n None in
    let chunk = max 1 (n / (workers * 8)) in
    let cursor = Atomic.make 0 in
    (* Failure protocol: the first trial to raise parks its exception
       (with backtrace) in [failure] and flips [poisoned]; every worker
       checks the flag per claim and per trial, so the remaining chunks
       are abandoned quickly but no worker is left unjoined.  Workers
       themselves never exit exceptionally — the capture is re-raised
       on the calling domain after all joins, preserving the original
       backtrace instead of the mangled one [Domain.join] forwards. *)
    let poisoned = Atomic.make false in
    let failure = Atomic.make None in
    let rec worker () =
      if not (Atomic.get poisoned) then begin
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo < n then begin
          let hi = min n (lo + chunk) in
          (try
             let trial = ref lo in
             while !trial < hi && not (Atomic.get poisoned) do
               let t = !trial in
               results.(t) <- Some (f ~trial:t ~seed:(derived_seed ~seed ~trial:t));
               incr trial
             done
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             if Atomic.compare_and_set failure None (Some (e, bt)) then ();
             Atomic.set poisoned true);
          worker ()
        end
      end
    in
    (* The spawning domain participates too. *)
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    Parallel.Budget.note_spawned (workers - 1);
    worker ();
    List.iter Domain.join spawned;
    Parallel.Budget.note_joined (workers - 1);
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        List.init n (fun trial ->
            match results.(trial) with
            | Some r -> r
            | None -> assert false (* the cursor covers every index exactly once *))
  end

let count p l = List.length (List.filter p l)

let float_samples f l = List.map f l

(* Monotonic wall-clock (CLOCK_MONOTONIC via bechamel's stub, ns):
   [Unix.gettimeofday] is wall time and steps backwards under NTP
   adjustment, which produced negative "elapsed" readings in long
   sweeps. *)
let time f =
  let start = Monotonic_clock.now () in
  let result = f () in
  let stop = Monotonic_clock.now () in
  (result, Int64.to_float (Int64.sub stop start) /. 1e9)
