(** An abstract MAC layer over LBAlg (paper §1, §5).

    The abstract MAC layer of Kuhn, Lynch and Newport exposes exactly
    three events per node — [bcast(m)] requests, [ack(m)] confirmations
    and [recv(m)] deliveries — with a progress bound [f_prog] and an
    acknowledgement bound [f_ack], hiding all channel details.  LBAlg's
    interface is already event-shaped, so the adaptation the paper calls
    "likely straightforward" amounts to this module: it packages an LBAlg
    network plus an environment that routes the events to application
    callbacks, enforces the one-outstanding-bcast rule, and reports
    [f_prog = t_prog] and [f_ack = t_ack].

    Applications written against this interface (e.g. {!Macapps.Flood})
    run on the dual graph model unchanged — the porting claim of the
    paper's introduction. *)

type callbacks = {
  on_recv : node:int -> round:int -> Messages.payload -> unit;
  on_ack : node:int -> round:int -> Messages.payload -> unit;
}

val no_callbacks : callbacks

type t

val create :
  ?callbacks:callbacks ->
  params:Params.t ->
  rng:Prng.Rng.t ->
  dual:Dualgraph.Dual.t ->
  unit ->
  t
(** Builds the LBAlg network underneath.  Callbacks may call {!request}
    re-entrantly (e.g. relaying from [on_recv]); the new bcast is
    delivered to the MAC at the next round. *)

val request : t -> node:int -> tag:int -> bool
(** [request t ~node ~tag] asks the MAC at [node] to broadcast a fresh
    message (unique uid, the given application [tag]) to its reliable
    neighborhood.  Returns [false] — and does nothing — if the node still
    has an unacknowledged bcast outstanding (the abstract MAC layer
    forbids overlapping requests). *)

val busy : t -> node:int -> bool

val f_prog : t -> int
(** The progress bound this MAC provides (= t_prog of the LB service). *)

val f_ack : t -> int
(** The acknowledgement bound (= t_ack). *)

val run :
  ?observer:
    ((Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Trace.round_record ->
    unit) ->
  ?stop:
    ((Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Trace.round_record ->
    bool) ->
  ?sink:Obs.Sink.t ->
  ?metrics:Obs.Metrics.t ->
  ?faults:Faults.Plan.t ->
  ?revive:
    (node:int ->
    round:int ->
    (Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Process.node) ->
  ?reception:Radiosim.Reception.t ->
  ?tick:(round:int -> unit) ->
  t ->
  scheduler:Radiosim.Scheduler.t ->
  rounds:int ->
  int
(** Drive the network for up to [rounds] rounds (callbacks fire as events
    happen); returns rounds executed.  May only be called once per [t].

    [tick] fires once at the top of every round, before any node's
    queued bcast is popped — the hook open-loop workload drivers
    ({!Macapps.Serve}) use to inject this round's arrivals: a
    {!request} made inside the tick is delivered to the MAC in the same
    round, deterministically, for every node.  (Under a fault plan the
    tick rides the first {e live} node's input poll; a round in which
    every node is dead has no tick.)
    [sink] receives the engine's structural events interleaved with the
    {!Lb_obs}-translated protocol events, as in {!Service.run}; when
    [metrics] is also given the conventional instruments (see
    [docs/OBSERVABILITY.md]) are maintained in it.  [metrics] without
    [sink] is ignored.

    [faults] and [revive] are forwarded to {!Radiosim.Engine.run}: a
    crashed MAC node goes silent (its outstanding request, if any, stays
    outstanding — the application sees no ack) and a restart swaps in
    the process [revive] supplies; use [Lb_alg.node] with a derived RNG
    for fresh-state re-entry, as {!Service.run} does.

    [reception] selects the engine's reception model (default
    {!Radiosim.Reception.dual_graph}); the MAC's request/ack contract is
    physics-agnostic — see [docs/RECEPTION.md]. *)
