(** Simple undirected graphs on vertices [0 .. n-1].

    This is the substrate under both components of a dual graph
    [(G, G')].  Vertices are dense integer indices (the simulator
    addresses nodes by index; the separate injective [id] mapping of the
    paper's model lives in {!Radiosim} configurations).  Self-loops are
    rejected; duplicate edges are collapsed. *)

type t

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a graph with vertices [0..n-1].  Raises
    [Invalid_argument] on out-of-range endpoints or self-loops. *)

val empty : int -> t
(** [empty n] has [n] vertices and no edges. *)

val n : t -> int
(** Number of vertices. *)

val edge_count : t -> int

val neighbors : t -> int -> int array
(** Sorted neighbor array of a vertex.  The returned array is owned by the
    graph — callers must not mutate it. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** Symmetric edge membership; [mem_edge g u u] is [false]. *)

val edges : t -> (int * int) list
(** Each undirected edge once, as [(u, v)] with [u < v], sorted. *)

val max_closed_degree : t -> int
(** [max_closed_degree g] is the paper's degree bound: the maximum over
    vertices [u] of [|N(u) ∪ {u}|], i.e. max degree + 1.  This is the
    quantity Δ (for G) and Δ' (for G'). *)

val is_subgraph : t -> t -> bool
(** [is_subgraph g g'] checks that [g] and [g'] have the same vertex set
    and every edge of [g] is an edge of [g'] — the dual graph condition
    [E ⊆ E']. *)

val union : t -> t -> t
(** Edge-wise union of two graphs on the same vertex set. *)

val is_connected : t -> bool
(** Whole-graph connectivity (vacuously true for [n <= 1]). *)

val bfs_distances : t -> int -> int array
(** [bfs_distances g src] is the array of hop distances from [src];
    unreachable vertices get [max_int]. *)

val diameter : t -> int
(** Largest finite pairwise hop distance (0 for [n <= 1]).  Raises
    [Invalid_argument] if the graph is disconnected. *)

val pp : Format.formatter -> t -> unit
