type payload = { src : int; uid : int; tag : int }

let payload ?(tag = 0) ~src ~uid () = { src; uid; tag }

let payload_equal a b = a.src = b.src && a.uid = b.uid && a.tag = b.tag

let pp_payload ppf p =
  if p.tag = 0 then Format.fprintf ppf "m(%d#%d)" p.src p.uid
  else Format.fprintf ppf "m(%d#%d,tag=%d)" p.src p.uid p.tag

type seed_announcement = { owner : int; seed : Prng.Bitstring.t }

let pp_seed_announcement ppf { owner; seed } =
  Format.fprintf ppf "seed(owner=%d,<%d bits>)" owner (Prng.Bitstring.length seed)

type msg =
  | Seed_msg of seed_announcement
  | Data of payload

let pp_msg ppf = function
  | Seed_msg s -> pp_seed_announcement ppf s
  | Data p -> pp_payload ppf p

type seed_output = Decide of seed_announcement

let pp_seed_output ppf (Decide s) =
  Format.fprintf ppf "decide(%a)" pp_seed_announcement s

type lb_input = Bcast of payload

type lb_output =
  | Recv of payload
  | Ack of payload
  | Committed of seed_announcement

let pp_lb_input ppf (Bcast p) = Format.fprintf ppf "bcast(%a)" pp_payload p

let pp_lb_output ppf = function
  | Recv p -> Format.fprintf ppf "recv(%a)" pp_payload p
  | Ack p -> Format.fprintf ppf "ack(%a)" pp_payload p
  | Committed s -> Format.fprintf ppf "committed(%a)" pp_seed_announcement s
