(** Immutable bit strings with sequential consumption.

    SeedAlg draws its seeds from the domain [S_kappa = {0,1}^kappa]
    (paper §4.2), and LBAlg then consumes bits from the committed seed in
    order: first [d] bits per body round for the participant decision, then
    [log log Delta] bits for the probability-level choice.  A [Bitstring.t]
    is the seed value; a {!cursor} tracks a node's position in it.

    Crucially, two nodes that committed to the same seed and are at the
    same round consume the same bits and therefore make identical shared
    choices — the property Lemma C.1's analysis relies on. *)

type t
(** An immutable sequence of bits. *)

val length : t -> int

val get : t -> int -> bool
(** [get s i] is bit [i] (0-indexed).  Raises [Invalid_argument] if out of
    range. *)

val random : Rng.t -> int -> t
(** [random rng k] draws a uniform element of [{0,1}^k]. *)

val of_bools : bool list -> t

val to_bools : t -> bool list

val equal : t -> t -> bool

val compare : t -> t -> int

val ones : t -> int
(** Number of set bits. *)

val pp : Format.formatter -> t -> unit
(** Prints as e.g. [0110...] (truncated for long strings). *)

val to_string : t -> string
(** Full "0"/"1" rendering. *)

val of_string : string -> t
(** Parse a "0"/"1" string.  Raises [Invalid_argument] on other chars. *)

(** {1 Cursors} *)

type cursor
(** A mutable read position into a bitstring. *)

val cursor : t -> cursor
(** Fresh cursor at position 0. *)

val remaining : cursor -> int
(** Bits left before exhaustion. *)

val position : cursor -> int

val take_bit : cursor -> bool
(** Consume one bit.  Raises [Invalid_argument] if exhausted. *)

val take_int : cursor -> int -> int
(** [take_int c k] consumes [k] bits (most significant first) and returns
    the value in [\[0, 2^k)].  Requires [0 <= k <= 30]. *)

val take_all_zero : cursor -> int -> bool
(** [take_all_zero c k] consumes [k] bits and reports whether all were 0 —
    the "participant" test of LBAlg's body round (probability [2^-k]). *)
