(* Tests for the adaptive link scheduler (the model variant the paper
   excludes) and Engine.run_adaptive. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Adaptive = Radiosim.Adaptive
module Engine = Radiosim.Engine
module P = Radiosim.Process
module M = Localcast.Messages
module Rng = Prng.Rng

let talker ~src ~when_ =
  let message = M.Data (M.payload ~src ~uid:0 ()) in
  {
    P.decide = (fun ~round _ -> if when_ round then P.Transmit message else P.Listen);
    absorb = (fun ~round:_ _ -> []);
  }

let listener () = P.silent ()

let run_adaptive_once ~dual ~adversary nodes =
  let trace, obs = Radiosim.Trace.recorder () in
  let (_ : int) =
    Engine.run_adaptive ~observer:obs ~dual ~adversary ~nodes
      ~env:(Radiosim.Env.null ~name:"t" ())
      ~rounds:1 ()
  in
  Radiosim.Trace.get trace 0

let test_of_oblivious () =
  let adv = Adaptive.of_oblivious (Sch.flicker ~period:2 ~duty:1) in
  let transmitting = [| false; false |] in
  checkb "round 0" true (Adaptive.choose adv ~round:0 ~transmitting ~edge:0);
  checkb "round 1" false (Adaptive.choose adv ~round:1 ~transmitting ~edge:0);
  Alcotest.check Alcotest.string "keeps name" "flicker(1/2)" (Adaptive.name adv)

let test_jam_collides_single_reliable_transmitter () =
  (* gray_cluster: 0 = receiver, 1 = reliable sender, 2 = grey sender.
     When both senders transmit, the jammer switches in the grey edge and
     node 0 hears nothing. *)
  let dual = Geo.gray_cluster ~k:1 ~r:1.5 () in
  let adversary = Adaptive.jam dual in
  let record =
    run_adaptive_once ~dual ~adversary
      [| listener (); talker ~src:1 ~when_:(fun _ -> true);
         talker ~src:2 ~when_:(fun _ -> true) |]
  in
  checkb "jammed" true (record.Radiosim.Trace.delivered.(0) = None)

let test_jam_powerless_without_grey_transmitter () =
  (* Only the reliable sender transmits: the jammer has nothing to
     collide it with, so delivery goes through. *)
  let dual = Geo.gray_cluster ~k:1 ~r:1.5 () in
  let adversary = Adaptive.jam dual in
  let record =
    run_adaptive_once ~dual ~adversary
      [| listener (); talker ~src:1 ~when_:(fun _ -> true); listener () |]
  in
  checkb "delivered" true
    (match record.Radiosim.Trace.delivered.(0) with
    | Some (M.Data p) -> p.M.src = 1
    | _ -> false)

let test_jam_excludes_lone_unreliable_transmitter () =
  (* Only a grey sender transmits: the jammer keeps its edge out, so the
     receiver hears nothing (whereas all-edges would deliver). *)
  let dual = Geo.gray_cluster ~k:1 ~r:1.5 () in
  let nodes () = [| listener (); listener (); talker ~src:2 ~when_:(fun _ -> true) |] in
  let record = run_adaptive_once ~dual ~adversary:(Adaptive.jam dual) (nodes ()) in
  checkb "starved by jam" true (record.Radiosim.Trace.delivered.(0) = None);
  let oblivious = run_adaptive_once ~dual ~adversary:(Adaptive.of_oblivious Sch.all_edges) (nodes ()) in
  checkb "oblivious all-edges would deliver" true
    (oblivious.Radiosim.Trace.delivered.(0) <> None)

let test_jam_pairs_up_unreliable_transmitters () =
  (* Two grey senders transmit: the jammer brings both in to collide. *)
  let dual = Geo.gray_cluster ~k:2 ~r:1.5 () in
  let record =
    run_adaptive_once ~dual ~adversary:(Adaptive.jam dual)
      [| listener (); listener (); talker ~src:2 ~when_:(fun _ -> true);
         talker ~src:3 ~when_:(fun _ -> true) |]
  in
  checkb "collision (not clean delivery)" true
    (record.Radiosim.Trace.delivered.(0) = None)

let test_jam_starves_fixed_probability_senders () =
  (* The predecessor impossibility's empirical shape: against senders that
     transmit with a fixed probability every round, the adaptive jammer
     lets the receiver hear only when its single reliable neighbor
     transmits alone among ALL k+1 senders — probability 2^-(k+1) for
     p = 1/2 — while an oblivious scheduler leaves a per-round constant.
     The latency gap is an order of magnitude already at k = 10. *)
  let k = 10 in
  let dual = Geo.gray_cluster ~k ~r:1.5 () in
  let n = Dual.n dual in
  let max_rounds = 60_000 in
  let latency ~mode seed =
    let rng = Rng.of_int seed in
    let nodes =
      Array.init n (fun v ->
          if v = 0 then listener ()
          else
            Baseline.Uniform.node ~p:0.5
              ~message:(M.payload ~src:v ~uid:0 ())
              ~rng:(Rng.split rng))
    in
    let env = Radiosim.Env.null ~name:"t" () in
    let result = ref max_rounds in
    let stop record =
      match record.Radiosim.Trace.delivered.(0) with
      | Some (M.Data _) ->
          result := record.Radiosim.Trace.round;
          true
      | _ -> false
    in
    let (_ : int) =
      match mode with
      | `Adaptive ->
          Engine.run_adaptive ~stop ~dual ~adversary:(Adaptive.jam dual) ~nodes
            ~env ~rounds:max_rounds ()
      | `Oblivious ->
          Engine.run ~stop ~dual
            ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
            ~nodes ~env ~rounds:max_rounds ()
    in
    !result
  in
  let total mode =
    List.fold_left (fun acc seed -> acc + latency ~mode seed) 0 [ 1; 2; 3; 4; 5 ]
  in
  let adaptive = total `Adaptive and oblivious = total `Oblivious in
  checkb "adaptive jam at least 5x's latency" true (adaptive > 5 * oblivious)

let test_run_adaptive_determinism () =
  let dual = Geo.gray_cluster ~k:3 ~r:1.5 () in
  let run () =
    let rng = Rng.of_int 5 in
    let nodes =
      Array.init (Dual.n dual) (fun src ->
          let node_rng = Rng.split rng in
          talker ~src ~when_:(fun _ -> Rng.bernoulli node_rng 0.4))
    in
    let deliveries = ref 0 in
    let observer record =
      Array.iter
        (fun d -> if d <> None then incr deliveries)
        record.Radiosim.Trace.delivered
    in
    let (_ : int) =
      Engine.run_adaptive ~observer ~dual ~adversary:(Adaptive.jam dual) ~nodes
        ~env:(Radiosim.Env.null ~name:"t" ())
        ~rounds:100 ()
    in
    !deliveries
  in
  checki "same execution twice" (run ()) (run ())

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("of_oblivious", test_of_oblivious);
      ("jam collides single reliable tx", test_jam_collides_single_reliable_transmitter);
      ("jam powerless without grey tx", test_jam_powerless_without_grey_transmitter);
      ("jam excludes lone unreliable tx", test_jam_excludes_lone_unreliable_transmitter);
      ("jam pairs up unreliable txs", test_jam_pairs_up_unreliable_transmitters);
      ("jam starves fixed-prob senders", test_jam_starves_fixed_probability_senders);
      ("run_adaptive determinism", test_run_adaptive_determinism);
    ]
