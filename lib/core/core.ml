(** Umbrella module: one-stop access to the whole local broadcast layer.

    [Core] simply re-exports the constituent libraries so applications can
    depend on a single name.  See DESIGN.md for the library inventory and
    README.md for a guided tour. *)

module Prng = Prng
module Dualgraph = Dualgraph
module Radiosim = Radiosim
module Obs = Obs
module Faults = Faults
module Localcast = Localcast
module Baseline = Baseline
module Macapps = Macapps
module Stats = Stats
module Parallel = Parallel
