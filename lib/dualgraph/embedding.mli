(** Euclidean-plane embeddings of graph vertices (paper §2).

    An embedding [emb : V -> R²] supports the r-geographic constraint:
    vertices at distance ≤ 1 must share a reliable edge, and vertices at
    distance > r must not even share an unreliable edge.  Everything in
    the grey zone (1, r] is up to the topology generator. *)

type point = { x : float; y : float }

type t
(** An embedding of vertices [0 .. n-1]. *)

val create : point array -> t
(** Takes ownership of the array (a defensive copy is made). *)

val n : t -> int

val point : t -> int -> point

val distance : point -> point -> float
(** Euclidean distance. *)

val vertex_distance : t -> int -> int -> float

val pp_point : Format.formatter -> point -> unit
