(* Smoke tests for every pretty-printer: rendering must not raise and
   must contain the load-bearing pieces of information. *)

open Core

let checkb = Alcotest.check Alcotest.bool

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let render pp v = Format.asprintf "%a" pp v

module M = Localcast.Messages

let payload = M.payload ~src:3 ~uid:7 ()
let tagged = M.payload ~tag:5 ~src:3 ~uid:7 ()
let announcement = { M.owner = 2; seed = Prng.Bitstring.of_string "1010" }

let test_payload () =
  checkb "payload" true (contains (render M.pp_payload payload) "3#7");
  checkb "tagged payload" true (contains (render M.pp_payload tagged) "tag=5")

let test_seed_announcement () =
  let s = render M.pp_seed_announcement announcement in
  checkb "owner" true (contains s "owner=2");
  checkb "length not contents" true (contains s "4 bits")

let test_msg () =
  checkb "data" true (contains (render M.pp_msg (M.Data payload)) "3#7");
  checkb "seed" true (contains (render M.pp_msg (M.Seed_msg announcement)) "owner=2")

let test_lb_io () =
  checkb "bcast" true (contains (render M.pp_lb_input (M.Bcast payload)) "bcast");
  checkb "recv" true (contains (render M.pp_lb_output (M.Recv payload)) "recv");
  checkb "ack" true (contains (render M.pp_lb_output (M.Ack payload)) "ack");
  checkb "committed" true
    (contains (render M.pp_lb_output (M.Committed announcement)) "committed");
  checkb "decide" true
    (contains (render M.pp_seed_output (M.Decide announcement)) "decide")

let test_action () =
  let pp = Radiosim.Process.pp_action M.pp_msg in
  checkb "transmit" true
    (contains (render pp (Radiosim.Process.Transmit (M.Data payload))) "transmit");
  checkb "listen" true (contains (render pp Radiosim.Process.Listen) "listen")

let test_scheduler () =
  let s = render Radiosim.Scheduler.pp (Radiosim.Scheduler.bernoulli ~seed:1 ~p:0.25) in
  checkb "bernoulli name" true (contains s "bernoulli(p=0.25)");
  checkb "adaptive name" true
    (Radiosim.Adaptive.name (Radiosim.Adaptive.jam (Dualgraph.Geometric.gray_cluster ~k:1 ()))
    = "adaptive-jam")

let test_dual_pp () =
  let s = render Dualgraph.Dual.pp (Dualgraph.Geometric.clique 3) in
  checkb "vertex count" true (contains s "n=3");
  checkb "edge counts" true (contains s "|E|=3")

let test_graph_pp () =
  let g = Dualgraph.Graph.create ~n:4 ~edges:[ (0, 1) ] in
  checkb "graph pp" true (contains (render Dualgraph.Graph.pp g) "n=4 m=1")

let test_embedding_pp () =
  let s = render Dualgraph.Embedding.pp_point { Dualgraph.Embedding.x = 1.5; y = -2.0 } in
  checkb "point" true (contains s "1.500")

let test_bitstring_pp () =
  let short = render Prng.Bitstring.pp (Prng.Bitstring.of_string "0110") in
  checkb "short verbatim" true (String.equal short "0110");
  let long = render Prng.Bitstring.pp (Prng.Bitstring.of_string (String.make 100 '1')) in
  checkb "long truncated" true (contains long "(100 bits)")

let test_params_pp () =
  let p = Localcast.Params.make ~delta:8 ~delta':8 ~r:1.0 ~eps1:0.1 () in
  let s = render Localcast.Params.pp p in
  checkb "shows Tprog" true (contains s "Tprog=");
  checkb "shows t_ack" true (contains s "t_ack=");
  let sp = render Localcast.Params.pp_seed p.Localcast.Params.seed in
  checkb "seed params show phases" true (contains sp "phases=")

let test_summary_pp () =
  let s = render Stats.Summary.pp (Stats.Summary.of_list [ 1.0; 2.0 ]) in
  checkb "mean shown" true (contains s "mean=1.50")

let test_ci_pp () =
  let s = render Stats.Ci.pp (Stats.Ci.wilson ~successes:1 ~trials:2 ()) in
  checkb "interval shown" true (contains s "0.5000 [")

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("payload", test_payload);
      ("seed announcement", test_seed_announcement);
      ("msg", test_msg);
      ("lb inputs/outputs", test_lb_io);
      ("process action", test_action);
      ("scheduler names", test_scheduler);
      ("dual", test_dual_pp);
      ("graph", test_graph_pp);
      ("embedding point", test_embedding_pp);
      ("bitstring", test_bitstring_pp);
      ("params", test_params_pp);
      ("summary", test_summary_pp);
      ("confidence interval", test_ci_pp);
    ]
