(** Descriptive statistics over float samples.

    The experiment harness reports means, dispersion and order statistics
    of measured latencies and rates.  All functions are total on non-empty
    inputs and raise [Invalid_argument] on empty ones unless noted. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

val of_list : float list -> t

val of_array : float array -> t

val of_ints : int list -> t

val mean : float list -> float

val percentile : float array -> float -> float
(** [percentile sorted q] with [q ∈ \[0,1\]]: linear-interpolated order
    statistic.  The array must be sorted ascending. *)

val pp : Format.formatter -> t -> unit
