(* Tests for the abstract MAC layer adapter and the flood application. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module M = Localcast.Messages
module Params = Localcast.Params
module Mac = Localcast.Mac
module Flood = Macapps.Flood
module Rng = Prng.Rng

let mk_mac ?callbacks ?(tack_phases = 2) dual =
  let params = Params.of_dual ~tack_phases ~eps1:0.2 dual in
  (params, Mac.create ?callbacks ~params ~rng:(Rng.of_int 11) ~dual ())

let test_request_busy_lifecycle () =
  let dual = Geo.pair () in
  let _, mac = mk_mac dual in
  checkb "idle initially" false (Mac.busy mac ~node:0);
  checkb "request accepted" true (Mac.request mac ~node:0 ~tag:5);
  checkb "busy while outstanding" true (Mac.busy mac ~node:0);
  checkb "second request refused" false (Mac.request mac ~node:0 ~tag:5);
  checkb "other node unaffected" false (Mac.busy mac ~node:1)

let test_bounds_match_params () =
  let dual = Geo.pair () in
  let params, mac = mk_mac dual in
  checki "f_prog = t_prog" (Params.t_prog_rounds params) (Mac.f_prog mac);
  checki "f_ack = t_ack" (Params.t_ack_rounds params) (Mac.f_ack mac)

let test_events_fire () =
  let dual = Geo.pair () in
  let recvs = ref [] and acks = ref [] in
  let callbacks =
    {
      Mac.on_recv = (fun ~node ~round:_ p -> recvs := (node, p) :: !recvs);
      on_ack = (fun ~node ~round:_ p -> acks := (node, p) :: !acks);
    }
  in
  let params, mac = mk_mac ~callbacks dual in
  checkb "request" true (Mac.request mac ~node:0 ~tag:7);
  let (_ : int) =
    Mac.run mac ~scheduler:Sch.reliable_only ~rounds:(4 * params.Params.phase_len)
  in
  checkb "neighbor received" true
    (List.exists (fun (node, p) -> node = 1 && p.M.tag = 7) !recvs);
  checkb "sender acked" true
    (List.exists (fun (node, p) -> node = 0 && p.M.tag = 7) !acks);
  checkb "idle again after ack" false (Mac.busy mac ~node:0)

let test_run_once_only () =
  let dual = Geo.pair () in
  let _, mac = mk_mac dual in
  let (_ : int) = Mac.run mac ~scheduler:Sch.reliable_only ~rounds:1 in
  Alcotest.check_raises "second run" (Invalid_argument "Mac.run: already run")
    (fun () -> ignore (Mac.run mac ~scheduler:Sch.reliable_only ~rounds:1))

let flood_params dual = Params.of_dual ~tack_phases:2 ~eps1:0.2 dual

let test_flood_pair () =
  let dual = Geo.pair () in
  let params = flood_params dual in
  let result =
    Flood.run ~params ~rng:(Rng.of_int 21) ~dual ~scheduler:Sch.reliable_only
      ~source:0
      ~max_rounds:(10 * params.Localcast.Params.phase_len)
      ()
  in
  checki "both covered" 2 result.Flood.covered_count;
  checkb "completed" true (result.Flood.completion_round <> None);
  checkb "source covered" true result.Flood.covered.(0)

let test_flood_line_multihop () =
  let dual = Geo.line ~n:5 ~spacing:0.9 () in
  let params = flood_params dual in
  let result =
    Flood.run ~params ~rng:(Rng.of_int 22) ~dual ~scheduler:Sch.reliable_only
      ~source:0
      ~max_rounds:(60 * params.Localcast.Params.phase_len)
      ()
  in
  checki "line fully covered" 5 result.Flood.covered_count;
  checkb "needed relays" true (result.Flood.relays >= 2);
  checkb "relays bounded by n" true (result.Flood.relays <= 5)

let test_flood_respects_topology () =
  (* Flooding never reaches a node with no path in G'. *)
  let g = Dualgraph.Graph.create ~n:3 ~edges:[ (0, 1) ] in
  let dual = Dual.create ~g ~g':g () in
  let params = flood_params dual in
  let result =
    Flood.run ~params ~rng:(Rng.of_int 23) ~dual ~scheduler:Sch.reliable_only
      ~source:0
      ~max_rounds:(10 * params.Localcast.Params.phase_len)
      ()
  in
  checki "island not covered" 2 result.Flood.covered_count;
  checkb "no completion" true (result.Flood.completion_round = None)

let test_flood_source_validation () =
  let dual = Geo.pair () in
  let params = flood_params dual in
  Alcotest.check_raises "source range" (Invalid_argument "Flood.run: source out of range")
    (fun () ->
      ignore
        (Flood.run ~params ~rng:(Rng.of_int 1) ~dual ~scheduler:Sch.reliable_only
           ~source:5 ~max_rounds:10 ()))

let test_flood_latency_grows_with_diameter () =
  let latency n =
    let dual = Geo.line ~n ~spacing:0.9 () in
    let params = flood_params dual in
    let result =
      Flood.run ~params ~rng:(Rng.of_int 24) ~dual ~scheduler:Sch.reliable_only
        ~source:0
        ~max_rounds:(200 * params.Localcast.Params.phase_len)
        ()
    in
    match result.Flood.completion_round with
    | Some r -> r
    | None -> Alcotest.fail "flood did not complete"
  in
  checkb "longer line takes longer" true (latency 8 > latency 2)

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("request/busy lifecycle", test_request_busy_lifecycle);
      ("bounds match params", test_bounds_match_params);
      ("events fire", test_events_fire);
      ("run once only", test_run_once_only);
      ("flood pair", test_flood_pair);
      ("flood line multihop", test_flood_line_multihop);
      ("flood respects topology", test_flood_respects_topology);
      ("flood source validation", test_flood_source_validation);
      ("flood latency grows with diameter", test_flood_latency_grows_with_diameter);
    ]
