(* Seed agreement, standalone: run SeedAlg on a dense sensor cluster and
   inspect what the Seed(δ, ε) service actually delivers — who became a
   leader, who adopted whose seed, and how many distinct seed owners any
   single neighborhood ends up with.

   Run with:  dune exec examples/seed_demo.exe *)

open Core
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module L = Localcast

let () =
  let rng = Prng.Rng.of_int 7 in
  let dual =
    Geo.cluster_field ~rng ~clusters:4 ~per_cluster:8 ~field:5.0 ~r:1.5
      ~gray_g':0.6 ()
  in
  let n = Dual.n dual in
  Format.printf "topology: %a@." Dual.pp dual;

  let params =
    L.Params.make_seed ~eps:0.05 ~delta:(Dual.delta dual) ~kappa:32 ()
  in
  Format.printf "%a@.@." L.Params.pp_seed params;

  let nodes = L.Seed_alg.network params ~rng ~n in
  let trace, observer = Radiosim.Trace.recorder () in
  let (_ : int) =
    Radiosim.Engine.run ~observer ~dual
      ~scheduler:(Radiosim.Scheduler.bernoulli ~seed:3 ~p:0.5)
      ~nodes
      ~env:(Radiosim.Env.null ~name:"seed" ())
      ~rounds:(L.Seed_alg.duration params)
      ()
  in

  let decisions = L.Seed_spec.decisions_of_trace trace ~n in
  Format.printf "decisions (node -> owner at round):@.";
  Array.iteri
    (fun v ds ->
      List.iter
        (fun (round, { L.Messages.owner; _ }) ->
          let marker = if owner = v then " (own seed)" else "" in
          Format.printf "  node %2d -> owner %2d at round %3d%s@." v owner round
            marker)
        ds)
    decisions;

  let report =
    L.Seed_spec.check ~dual ~delta_bound:(4 * Dual.delta dual) ~decisions
  in
  let owners = L.Seed_spec.owners ~decisions in
  let distinct =
    List.sort_uniq Int.compare (Array.to_list owners) |> List.length
  in
  Format.printf "@.well-formed: %b   consistent: %b@." report.L.Seed_spec.well_formed
    report.L.Seed_spec.consistent;
  Format.printf "distinct owners network-wide  : %d (of %d nodes)@." distinct n;
  Format.printf "max owners in one neighborhood: %d@." report.L.Seed_spec.max_owners;
  Format.printf
    "(the Seed spec promises the per-neighborhood count stays O(log 1/ε),@.\
    \ independent of both Δ and the network size)@."
