(* Tests for the open-loop serving engine (Macapps.Serve) and its
   arrival-process generator (Macapps.Workload): counter-mode
   determinism and order-independence of arrivals, exact message
   conservation under every backpressure policy, the policies' loss
   sites, ttl expiry, the metrics mirror, full-stack determinism and
   the zero-allocation steady state. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Serve = Macapps.Serve
module Workload = Macapps.Workload
module Geo = Dualgraph.Geometric
module Params = Localcast.Params
module Sch = Radiosim.Scheduler
module Rng = Prng.Rng
module Metrics = Obs.Metrics

(* --- workload: parsing and validation --- *)

let processes : (string * Workload.process) list =
  [
    ("poisson", Poisson { rate = 0.8 });
    ("bursty", Bursty { rate = 0.8; on_mean = 10.0; off_mean = 30.0 });
    ("hotspot", Hotspot { rate = 0.8; hot_fraction = 0.2; hot_share = 0.8 });
  ]

let test_parse_roundtrip () =
  List.iter
    (fun (name, p) ->
      match Workload.parse (Workload.process_to_string p) with
      | Ok p' -> checkb (name ^ " round-trips") true (p = p')
      | Error e -> Alcotest.failf "%s did not round-trip: %s" name e)
    processes;
  (match Workload.parse "  POISSON:0.5 " with
  | Ok (Poisson { rate }) ->
      checkb "case/space insensitive" true (rate = 0.5)
  | _ -> Alcotest.fail "POISSON:0.5 should parse");
  List.iter
    (fun s ->
      checkb (Printf.sprintf "%S rejected" s) true
        (match Workload.parse s with Error _ -> true | Ok _ -> false))
    [
      ""; "poisson"; "poisson:x"; "poisson:1:2"; "bursty:1"; "bursty:1:0:5";
      "hotspot:1:2:0.5"; "uniform:1"; "poisson:-1";
    ]

let test_create_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "negative rate" true (raises (fun () ->
      Workload.create ~process:(Poisson { rate = -1.0 }) ~n:4 ~seed:0 ()));
  checkb "on_mean < 1" true (raises (fun () ->
      Workload.create
        ~process:(Bursty { rate = 1.0; on_mean = 0.5; off_mean = 5.0 })
        ~n:4 ~seed:0 ()));
  checkb "hot_fraction > 1" true (raises (fun () ->
      Workload.create
        ~process:(Hotspot { rate = 1.0; hot_fraction = 1.5; hot_share = 0.5 })
        ~n:4 ~seed:0 ()));
  checkb "n = 0" true (raises (fun () ->
      Workload.create ~process:(Poisson { rate = 1.0 }) ~n:0 ~seed:0 ()));
  let w = Workload.create ~process:(Poisson { rate = 1.0 }) ~n:4 ~seed:0 () in
  checkb "node out of range" true
    (raises (fun () -> Workload.arrivals w ~node:4 ~round:0));
  checkb "negative round" true
    (raises (fun () -> Workload.arrivals w ~node:0 ~round:(-1)));
  ignore (Workload.arrivals w ~node:0 ~round:5);
  checkb "round going backwards" true
    (raises (fun () -> Workload.arrivals w ~node:0 ~round:3))

(* --- workload: determinism and order-independence ---

   This is the property the domain-parallel experiment harness leans
   on: a workload's arrival counts are a pure function of (process,
   seed, node, round), so tiles/domains that each own a node subset and
   query in their own order see bit-identical traffic. *)

let dense_counts ~order ~process ~seed ~n ~rounds =
  let w = Workload.create ~process ~n ~seed () in
  let a = Array.make_matrix n rounds 0 in
  (match order with
  | `Round_major ->
      for r = 0 to rounds - 1 do
        for v = 0 to n - 1 do
          a.(v).(r) <- Workload.arrivals w ~node:v ~round:r
        done
      done
  | `Node_major_rev ->
      for v = n - 1 downto 0 do
        for r = 0 to rounds - 1 do
          a.(v).(r) <- Workload.arrivals w ~node:v ~round:r
        done
      done);
  a

let qcheck_process =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> Workload.Poisson { rate = float_of_int r /. 20.0 })
          (int_range 0 40);
        map3
          (fun r on off ->
            Workload.Bursty
              {
                rate = float_of_int r /. 20.0;
                on_mean = float_of_int on;
                off_mean = float_of_int off;
              })
          (int_range 1 40) (int_range 1 20) (int_range 1 40);
        map3
          (fun r f s ->
            Workload.Hotspot
              {
                rate = float_of_int r /. 20.0;
                hot_fraction = float_of_int f /. 10.0;
                hot_share = float_of_int s /. 10.0;
              })
          (int_range 1 40) (int_range 1 10) (int_range 0 10);
      ])

let qcheck_workload_cases =
  let open QCheck in
  let arb_process = make ~print:Workload.process_to_string qcheck_process in
  [
    Test.make ~name:"arrivals are query-order independent" ~count:60
      (triple arb_process (int_range 1 12) small_int)
      (fun (process, n, seed) ->
        dense_counts ~order:`Round_major ~process ~seed ~n ~rounds:120
        = dense_counts ~order:`Node_major_rev ~process ~seed ~n ~rounds:120);
    Test.make ~name:"sparse round queries agree with dense" ~count:60
      (triple arb_process (int_range 1 12) small_int)
      (fun (process, n, seed) ->
        let dense =
          dense_counts ~order:`Round_major ~process ~seed ~n ~rounds:120
        in
        let w = Workload.create ~process ~n ~seed () in
        let ok = ref true in
        for v = 0 to n - 1 do
          let r = ref 0 in
          while !r < 120 do
            if Workload.arrivals w ~node:v ~round:!r <> dense.(v).(!r) then
              ok := false;
            (* stride derived from the query itself, deterministic *)
            r := !r + 1 + ((v + !r) mod 7)
          done
        done;
        !ok);
  ]

let test_hotspot_skew () =
  let n = 50 in
  let process =
    Workload.Hotspot { rate = 2.0; hot_fraction = 0.1; hot_share = 0.9 }
  in
  let w = Workload.create ~process ~n ~seed:42 () in
  let hot_nodes = ref 0 in
  let hot_arr = ref 0 and cold_arr = ref 0 in
  for v = 0 to n - 1 do
    if Workload.hot w ~node:v then incr hot_nodes
  done;
  for r = 0 to 4_999 do
    for v = 0 to n - 1 do
      let k = Workload.arrivals w ~node:v ~round:r in
      if Workload.hot w ~node:v then hot_arr := !hot_arr + k
      else cold_arr := !cold_arr + k
    done
  done;
  checkb "at least one hot node" true (!hot_nodes >= 1);
  checkb "hot set is a strict subset" true (!hot_nodes < n);
  (* 90% of the rate goes to ~10% of the nodes *)
  checkb "hot nodes dominate arrivals" true (!hot_arr > 3 * !cold_arr)

let test_bursty_time_average () =
  (* On/off gating keeps the time-averaged rate: over a long horizon
     the bursty count is within 15% of the plain Poisson count at the
     same rate. *)
  let n = 16 and rounds = 40_000 in
  let total process =
    let w = Workload.create ~process ~n ~seed:7 () in
    let t = ref 0 in
    for r = 0 to rounds - 1 do
      for v = 0 to n - 1 do
        t := !t + Workload.arrivals w ~node:v ~round:r
      done
    done;
    !t
  in
  let poisson = total (Poisson { rate = 1.0 }) in
  let bursty =
    total (Bursty { rate = 1.0; on_mean = 25.0; off_mean = 75.0 })
  in
  let ratio = float_of_int bursty /. float_of_int poisson in
  checkb
    (Printf.sprintf "bursty/poisson ratio %.3f in [0.85, 1.15]" ratio)
    true
    (ratio > 0.85 && ratio < 1.15)

(* --- conservation: every message is accounted for exactly --- *)

let qcheck_conservation_cases =
  let open QCheck in
  let arb_policy =
    oneofl [ Serve.Drop_tail; Serve.Drop_newest; Serve.Source_throttle ]
  in
  [
    Test.make ~name:"Sim conserves messages exactly under any policy"
      ~count:40
      (quad arb_policy (int_range 1 8) (int_range 1 30) small_int)
      (fun (policy, queue_cap, rate10, seed) ->
        let config =
          Serve.config ~queue_cap ~max_inflight:256
            ~ttl:(40 + (seed mod 200))
            ~policy ~ack_deadline:6 ()
        in
        let sim =
          Serve.Sim.create ~config ~n:16 ~degree:4 ~relay_delay:1
            ~ack_delay:2 ()
        in
        let workload =
          Workload.create
            ~process:(Poisson { rate = float_of_int rate10 /. 10.0 })
            ~n:16 ~seed ()
        in
        let r = Serve.Sim.run sim ~workload ~rounds:600 () in
        r.Serve.audit = []
        && r.Serve.arrivals = r.Serve.admitted + r.Serve.rejected
        && r.Serve.admitted
           = r.Serve.completed + r.Serve.expired + r.Serve.inflight);
  ]

(* --- backpressure policies: who loses --- *)

let drive_policy policy =
  (* A send hook that always refuses keeps every queue saturated, so
     the policy's shedding site is isolated from channel dynamics. *)
  let config =
    Serve.config ~queue_cap:2 ~max_inflight:1024 ~ttl:100_000 ~policy ()
  in
  let core = Serve.Core.create ~config ~n:4 () in
  Serve.Core.set_send core (fun ~node:_ ~tag:_ -> false);
  let w = Workload.create ~process:(Poisson { rate = 8.0 }) ~n:4 ~seed:5 () in
  for r = 0 to 49 do
    Serve.Core.tick core ~workload:w ~round:r
  done;
  (core, Serve.Core.report core ~rounds:50)

let test_policy_drop_tail () =
  let core, r = drive_policy Serve.Drop_tail in
  checkb "arrivals happened" true (r.Serve.arrivals > 50);
  checkb "queue bound respected" true (Serve.Core.queued core <= 4 * 2);
  checkb "relays shed" true (r.Serve.relay_drops > 0);
  checki "no admission rejection (pool not full)" 0 r.Serve.rejected;
  checkb "audit clean" true (r.Serve.audit = [])

let test_policy_drop_newest () =
  let core, r = drive_policy Serve.Drop_newest in
  checkb "queue bound respected" true (Serve.Core.queued core <= 4 * 2);
  checkb "evictions counted as relay drops" true (r.Serve.relay_drops > 0);
  checki "no admission rejection (pool not full)" 0 r.Serve.rejected;
  checkb "audit clean" true (r.Serve.audit = [])

let test_policy_source_throttle () =
  let core, r = drive_policy Serve.Source_throttle in
  checkb "queue bound respected" true (Serve.Core.queued core <= 4 * 2);
  checkb "arrivals rejected at admission" true (r.Serve.rejected > 0);
  checkb "audit clean" true (r.Serve.audit = [])

let test_pool_exhaustion_rejects () =
  (* Pool of 4 slots, nothing ever completes or expires: the 5th
     admission and every one after it must be rejected, under any
     policy. *)
  let config =
    Serve.config ~queue_cap:16 ~max_inflight:4 ~ttl:100_000
      ~policy:Serve.Drop_tail ()
  in
  let core = Serve.Core.create ~config ~n:4 () in
  Serve.Core.set_send core (fun ~node:_ ~tag:_ -> false);
  let w = Workload.create ~process:(Poisson { rate = 4.0 }) ~n:4 ~seed:9 () in
  for r = 0 to 19 do
    Serve.Core.tick core ~workload:w ~round:r
  done;
  let r = Serve.Core.report core ~rounds:20 in
  checki "pool-size admissions" 4 r.Serve.admitted;
  checki "everything else rejected" (r.Serve.arrivals - 4) r.Serve.rejected;
  checki "all four still inflight" 4 r.Serve.inflight;
  checkb "audit clean" true (r.Serve.audit = [])

let test_single_node_completes_instantly () =
  (* n = 1: the source is the whole network, so every admission
     completes at admission with latency 0 and nothing is ever
     queued. *)
  let config = Serve.config ~queue_cap:4 ~max_inflight:64 ~ttl:100 () in
  let core = Serve.Core.create ~config ~n:1 () in
  Serve.Core.set_send core (fun ~node:_ ~tag:_ -> false);
  let w = Workload.create ~process:(Poisson { rate = 2.0 }) ~n:1 ~seed:3 () in
  for r = 0 to 99 do
    Serve.Core.tick core ~workload:w ~round:r
  done;
  let r = Serve.Core.report core ~rounds:100 in
  checkb "arrivals happened" true (r.Serve.arrivals > 0);
  checki "all admitted complete" r.Serve.admitted r.Serve.completed;
  checki "nothing queued" 0 (Serve.Core.queued core);
  checkb "zero delivery latency" true (r.Serve.delivery_p99 = 0.0);
  checkb "audit clean" true (r.Serve.audit = [])

let test_ttl_expiry () =
  (* A ttl far below the flooding time: overloaded messages must
     expire (freeing their slots) rather than accumulate, and the
     recycled slots make old queued relays stale. *)
  let config =
    Serve.config ~queue_cap:4 ~max_inflight:32 ~ttl:20
      ~policy:Serve.Drop_tail ~ack_deadline:4 ()
  in
  let sim =
    Serve.Sim.create ~config ~n:32 ~degree:2 ~relay_delay:1 ~ack_delay:2 ()
  in
  let workload =
    Workload.create ~process:(Poisson { rate = 2.0 }) ~n:32 ~seed:17 ()
  in
  let r = Serve.Sim.run sim ~workload ~rounds:800 () in
  checkb "messages expired" true (r.Serve.expired > 0);
  checkb "slots recycled (inflight stays bounded)" true
    (r.Serve.inflight <= 32);
  checkb "audit clean despite heavy expiry" true (r.Serve.audit = [])

(* --- determinism of full runs --- *)

let sim_report () =
  let config =
    Serve.config ~queue_cap:8 ~max_inflight:512 ~ttl:300 ~ack_deadline:8 ()
  in
  let sim =
    Serve.Sim.create ~config ~n:48 ~degree:6 ~relay_delay:1 ~ack_delay:3 ()
  in
  let workload =
    Workload.create
      ~process:(Bursty { rate = 0.8; on_mean = 20.0; off_mean = 60.0 })
      ~n:48 ~seed:23 ()
  in
  Serve.Sim.run sim ~workload ~rounds:2_000 ()

let test_sim_deterministic () =
  let a = sim_report () and b = sim_report () in
  checkb "something completed" true (a.Serve.completed > 0);
  checki "arrivals" a.Serve.arrivals b.Serve.arrivals;
  checki "admitted" a.Serve.admitted b.Serve.admitted;
  checki "completed" a.Serve.completed b.Serve.completed;
  checki "expired" a.Serve.expired b.Serve.expired;
  checki "relays" a.Serve.relays b.Serve.relays;
  checki "relay drops" a.Serve.relay_drops b.Serve.relay_drops;
  checki "acks" a.Serve.acks b.Serve.acks;
  checkb "p99 equal" true (a.Serve.delivery_p99 = b.Serve.delivery_p99)

(* --- the metrics mirror --- *)

let test_metrics_mirror () =
  let reg = Metrics.create () in
  let config =
    Serve.config ~queue_cap:8 ~max_inflight:256 ~ttl:300 ~ack_deadline:8 ()
  in
  let sim =
    Serve.Sim.create ~metrics:reg ~config ~n:32 ~degree:4 ~relay_delay:1
      ~ack_delay:2 ()
  in
  let workload =
    Workload.create ~process:(Poisson { rate = 0.5 }) ~n:32 ~seed:11 ()
  in
  let r = Serve.Sim.run sim ~workload ~rounds:1_000 () in
  let c name = Metrics.counter_value (Metrics.counter reg name) in
  checki "serve.arrivals mirrors" r.Serve.arrivals (c "serve.arrivals");
  checki "serve.admitted mirrors" r.Serve.admitted (c "serve.admitted");
  checki "serve.completed mirrors" r.Serve.completed (c "serve.completed");
  checki "serve.relays mirrors" r.Serve.relays (c "serve.relays");
  checki "serve.acks mirrors" r.Serve.acks (c "serve.acks");
  let h = Metrics.bounded_histogram reg "serve.delivery_latency" in
  (match Metrics.summary h with
  | Some s -> checki "delivery histogram count = completions"
      r.Serve.completed s.Metrics.count
  | None -> Alcotest.fail "delivery histogram empty");
  checkb "bounded histogram has no per-node samples" true
    (Metrics.by_node h = [])

(* --- allocation: the steady state is allocation-free --- *)

let test_steady_state_allocation_free () =
  let config =
    Serve.config ~queue_cap:16 ~max_inflight:4096 ~ttl:500 ~ack_deadline:12 ()
  in
  let sim =
    Serve.Sim.create ~config ~n:64 ~degree:8 ~relay_delay:1 ~ack_delay:2 ()
  in
  let workload =
    Workload.create ~process:(Poisson { rate = 1.0 }) ~n:64 ~seed:22 ()
  in
  let r = Serve.Sim.run sim ~workload ~rounds:4_000 ~warmup:1_000 () in
  checkb "run was under load" true (r.Serve.arrivals > 3_000);
  checkb
    (Printf.sprintf "steady state allocates %.3f minor words/round (< 2)"
       r.Serve.minor_words_per_round)
    true
    (r.Serve.minor_words_per_round < 2.0);
  checkb "audit clean" true (r.Serve.audit = [])

(* --- the full MAC stack --- *)

let full_stack_report () =
  let dual = Geo.clique 6 in
  let params = Params.of_dual ~eps1:0.2 ~tack_phases:1 dual in
  let config = Serve.config ~queue_cap:8 ~max_inflight:64 ~ttl:4_000 () in
  let workload =
    Workload.create ~process:(Poisson { rate = 0.004 }) ~n:6 ~seed:13 ()
  in
  Serve.run ~config ~workload ~params ~rng:(Rng.of_int 3) ~dual
    ~scheduler:Sch.reliable_only ~rounds:5_000 ()

let test_full_stack_smoke () =
  let r = full_stack_report () in
  checkb "arrivals injected through the MAC tick hook" true
    (r.Serve.arrivals > 0);
  checkb "completions over the real MAC" true (r.Serve.completed > 0);
  checkb "acks observed" true (r.Serve.acks > 0);
  checkb "audit clean" true (r.Serve.audit = [])

let test_full_stack_deterministic () =
  let a = full_stack_report () and b = full_stack_report () in
  checki "arrivals" a.Serve.arrivals b.Serve.arrivals;
  checki "completed" a.Serve.completed b.Serve.completed;
  checki "relays" a.Serve.relays b.Serve.relays;
  checki "acks" a.Serve.acks b.Serve.acks;
  checkb "ack p99 equal" true
    (a.Serve.ack_p99 = b.Serve.ack_p99
    || (Float.is_nan a.Serve.ack_p99 && Float.is_nan b.Serve.ack_p99))

let test_workload_size_mismatch () =
  let dual = Geo.clique 4 in
  let params = Params.of_dual ~eps1:0.2 ~tack_phases:1 dual in
  let workload =
    Workload.create ~process:(Poisson { rate = 0.01 }) ~n:5 ~seed:1 ()
  in
  checkb "workload/dual size mismatch raises" true
    (match
       Serve.run ~config:(Serve.config ()) ~workload ~params
         ~rng:(Rng.of_int 1) ~dual ~scheduler:Sch.reliable_only ~rounds:10 ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  List.map
    (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("workload parse round-trip", test_parse_roundtrip);
      ("workload validation", test_create_validation);
      ("hotspot skew", test_hotspot_skew);
      ("bursty time-average rate", test_bursty_time_average);
      ("policy drop-tail", test_policy_drop_tail);
      ("policy drop-newest", test_policy_drop_newest);
      ("policy source-throttle", test_policy_source_throttle);
      ("pool exhaustion rejects", test_pool_exhaustion_rejects);
      ("single node completes instantly", test_single_node_completes_instantly);
      ("ttl expiry recycles slots", test_ttl_expiry);
      ("sim run deterministic", test_sim_deterministic);
      ("metrics mirror", test_metrics_mirror);
      ("steady state allocation-free", test_steady_state_allocation_free);
      ("full-stack smoke", test_full_stack_smoke);
      ("full-stack deterministic", test_full_stack_deterministic);
      ("workload size mismatch", test_workload_size_mismatch);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      (qcheck_workload_cases @ qcheck_conservation_cases)
