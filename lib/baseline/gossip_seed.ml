module M = Localcast.Messages
module P = Radiosim.Process

let node ~rounds ~p ~kappa ~id ~rng =
  if rounds < 1 then invalid_arg "Gossip_seed.node: rounds must be >= 1";
  if kappa < 1 then invalid_arg "Gossip_seed.node: kappa must be >= 1";
  let own = { M.owner = id; seed = Prng.Bitstring.random rng kappa } in
  let best = ref own in
  let decided = ref false in
  let decide ~round _inputs =
    if round < rounds && Prng.Rng.bernoulli rng p then
      (* Always advertise the current best, so minima spread by relay. *)
      P.Transmit (M.Seed_msg !best)
    else P.Listen
  in
  let absorb ~round received =
    (match received with
    | Some (M.Seed_msg announcement) when round < rounds ->
        if announcement.M.owner < !best.M.owner then best := announcement
    | Some (M.Seed_msg _) | Some (M.Data _) | None -> ());
    if round = rounds - 1 && not !decided then begin
      decided := true;
      [ M.Decide !best ]
    end
    else []
  in
  { P.decide; absorb }

let network ~rounds ~p ~kappa ~rng ~n =
  Array.init n (fun id -> node ~rounds ~p ~kappa ~id ~rng:(Prng.Rng.split rng))
