(** Flood-max consensus over the abstract MAC layer.

    A miniature of Newport's "Consensus with an abstract MAC layer"
    (the paper's reference [20]): every node starts with an input value,
    repeatedly floods the best (highest-id, value) pair it knows, and
    decides that pair's value once the network is quiescent.  On a
    connected reliable graph the belief of the maximum-id node sweeps the
    network in O(D) acknowledged hops, giving agreement and validity
    without any node knowing n or D.

    Beliefs travel in the payload tag as [id * value_base + value];
    inputs must lie in [\[0, value_base)]. *)

val value_base : int
(** Upper bound (exclusive) on input values: 1024. *)

type result = {
  decisions : int array;  (** per node, the decided value *)
  agreement : bool;  (** all decisions equal *)
  valid : bool;  (** the common decision is the max-id node's input *)
  converged : bool;  (** quiescence reached before [max_rounds] *)
  rounds_executed : int;
}

val run :
  params:Localcast.Params.t ->
  rng:Prng.Rng.t ->
  dual:Dualgraph.Dual.t ->
  scheduler:Radiosim.Scheduler.t ->
  inputs:int array ->
  max_rounds:int ->
  unit ->
  result
(** Raises [Invalid_argument] on an input outside [\[0, value_base)] or
    an input array of the wrong length. *)
