(** Parameter derivation and calibration (paper §3.2, §4.2, App. C.1).

    Every quantity the algorithms need is derived here from the four
    model-level inputs the paper allows a process to know: the degree
    bounds Δ and Δ', the geographic parameter r, and the caller's error
    budget ε₁.  Nothing depends on n — the point of the paper.

    The paper's proofs pick leading constants (c₁ … c₆, the
    [c₄ ≥ 2·4^{c_r c₃}] phase length, the factor-12 Chernoff slack in
    T_ack) large enough to make union bounds go through; plugged in
    literally they give phase lengths beyond any simulator's reach.  We
    keep the paper's algebraic {e forms} and expose the leading constants
    as a {!calibration} record whose defaults were tuned empirically (see
    EXPERIMENTS.md, experiments E3/E5/E6): the measured error stays below
    ε on the benchmark topologies while runs stay tractable.  Users who
    want the proof-grade constants can pass their own calibration. *)

type calibration = {
  c_seed_phase : float;
      (** c₄: SeedAlg phase length multiplier (rounds =
          [c_seed_phase · log₂²(1/ε)]).  Default 4. *)
  c_tprog : float;
      (** c₁: body length multiplier
          ([Tprog = c_tprog · r² · log(1/ε₁) · log(1/ε₂) · log Δ]).
          Default 4. *)
  c_pu : float;
      (** c₂: the per-round reception constant in Lemma C.1's
          [p_u ≥ c₂ / (r² log(1/ε₂) log Δ)].  Default 0.08 (measured;
          see E7). *)
  c_tack : float;
      (** Chernoff slack on the useful-round count in Lemma C.3 (the
          paper's factor 12).  Default 2. *)
  c_delta : float;
      (** Leading constant of the seed partition bound
          [δ = c_delta · r² · log₂(1/ε₂)] (the paper's 6·c_r·c₃).
          Default 6. *)
}

val default_calibration : calibration

(** {1 Seed agreement parameters} *)

type seed = {
  seed_eps : float;  (** the ε₁ handed to SeedAlg (≤ 1/4) *)
  phases : int;  (** log₂ Δ (Δ rounded up to a power of two), ≥ 1 *)
  phase_len : int;  (** c₄ · log₂²(1/ε) rounds *)
  broadcast_prob : float;  (** leaders transmit w.p. 1/log₂(1/ε) per round *)
  kappa : int;  (** seed length in bits; domain S = {0,1}^κ *)
}

val seed_duration : seed -> int
(** Total SeedAlg running time Ts = phases · phase_len. *)

val make_seed :
  ?calibration:calibration -> eps:float -> delta:int -> kappa:int -> unit -> seed
(** Standalone seed agreement parameters.  [eps] is clamped into
    (0, 1/4]; [delta] must be ≥ 1; [kappa] ≥ 1. *)

(** {1 Local broadcast parameters} *)

type t = {
  calibration : calibration;
  delta : int;  (** Δ as supplied *)
  delta' : int;  (** Δ' as supplied *)
  r : float;
  eps1 : float;  (** the LB error bound *)
  eps2 : float;  (** error handed to the per-phase SeedAlg runs, ≤ ε₁/2 *)
  log_delta : int;  (** log₂ Δ (power-of-two rounded), ≥ 1 *)
  seed : seed;  (** preamble parameters (SeedAlg(ε₂)) *)
  ts : int;  (** preamble length Ts *)
  tprog : int;  (** body length Tprog *)
  phase_len : int;  (** Ts + Tprog *)
  tack_phases : int;  (** Tack: full phases spent in sending state *)
  participant_bits : int;
      (** d = ⌈log₂(r² log₂(1/ε₂))⌉ bits per body round; participant w.p.
          2^-d ∈ [1/(2 r² log(1/ε₂)), 1/(r² log(1/ε₂))] — the paper's
          [a / (r² log(1/ε₂))] with a ∈ \[1, 2) *)
  level_bits : int;
      (** width (in shared bits) of one draw selecting the probability
          level b ∈ [log Δ] *)
  level_draws : int;
      (** number of [level_bits]-wide draws consumed per body round for
          the level pick: 1 when 2^level_bits is a multiple of log Δ
          (a single reduced draw is exactly uniform), else a fixed
          rejection budget — the first in-range draw wins, every draw is
          accepted w.p. > 1/2, and the residual bias of the mod-reduced
          fallback is below 2^-level_draws.  The budget is fixed (not
          open-ended rejection) so all members of a seed group consume
          identical bit counts and κ is sized exactly. *)
  delta_bound : int;  (** δ checked by the Seed spec: c_delta · r² · log(1/ε₂) *)
  seed_refresh : int;
      (** run the SeedAlg preamble every [seed_refresh]-th phase (§4.2's
          closing remark; 1 = every phase, the paper's base algorithm).
          Phases without a preamble use their full Ts + Tprog rounds as
          body rounds; κ is sized for the whole refresh cycle. *)
}

val make :
  ?calibration:calibration ->
  ?tack_phases:int ->
  ?seed_refresh:int ->
  delta:int ->
  delta':int ->
  r:float ->
  eps1:float ->
  unit ->
  t
(** Derive all LBAlg parameters.  [eps1] is clamped into (0, 1/2];
    [delta, delta' >= 1]; [r >= 1].  [tack_phases] overrides the derived
    Tack (useful to shorten progress-only experiments); [seed_refresh]
    (default 1) enables the multi-phase-seed variant. *)

val of_dual :
  ?calibration:calibration ->
  ?tack_phases:int ->
  ?seed_refresh:int ->
  eps1:float ->
  Dualgraph.Dual.t ->
  t
(** [make] with Δ, Δ', r read off a topology. *)

val t_prog_rounds : t -> int
(** The spec's t_prog = Ts + Tprog. *)

val t_ack_rounds : t -> int
(** The spec's t_ack = (Tack + 1) · (Ts + Tprog). *)

val pp : Format.formatter -> t -> unit

val pp_seed : Format.formatter -> seed -> unit
