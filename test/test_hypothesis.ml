(* Tests for the hypothesis-test helpers plus their application to the
   prng and to committed seeds (strengthening the E4 independence
   checks). *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

module H = Stats.Hypothesis
module Rng = Prng.Rng

let test_chi_square_statistic () =
  checkf "perfect fit" 0.0
    (H.chi_square_statistic ~observed:[| 10; 10 |] ~expected:[| 10.0; 10.0 |]);
  checkf "known value" 2.0
    (H.chi_square_statistic ~observed:[| 15; 5 |] ~expected:[| 10.0; 10.0 |]
    -. 3.0);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Hypothesis.chi_square_statistic: length mismatch")
    (fun () ->
      ignore (H.chi_square_statistic ~observed:[| 1 |] ~expected:[| 1.0; 2.0 |]))

let test_chi_square_uniform () =
  checkf "uniform is 0" 0.0 (H.chi_square_uniform [| 5; 5; 5; 5 |]);
  checkb "skew detected" true (H.chi_square_uniform [| 100; 0; 0; 0 |] > 100.0)

let test_critical_values () =
  (* Spot-check the Wilson–Hilferty approximation against table values
     (chi2.ppf(0.99): df=5 -> 15.09, df=10 -> 23.21, df=30 -> 50.89). *)
  let close df expected =
    let v = H.chi_square_critical ~df in
    checkb
      (Printf.sprintf "df=%d near %.2f (got %.2f)" df expected v)
      true
      (Float.abs (v -. expected) /. expected < 0.02)
  in
  close 5 15.09;
  close 10 23.21;
  close 30 50.89

let test_uniform_ok_accepts_rng () =
  let rng = Rng.of_int 31 in
  let counts = Array.make 16 0 in
  for _ = 1 to 16_000 do
    let v = Rng.int rng 16 in
    counts.(v) <- counts.(v) + 1
  done;
  checkb "splitmix passes chi-square uniformity" true (H.uniform_ok counts)

let test_uniform_ok_rejects_bias () =
  let counts = Array.make 16 100 in
  counts.(0) <- 400;
  checkb "bias rejected" false (H.uniform_ok counts)

let test_serial_correlation () =
  checkf "constant" 0.0 (H.serial_correlation [| 2.0; 2.0; 2.0; 2.0 |]);
  checkf "too short" 0.0 (H.serial_correlation [| 1.0; 2.0 |]);
  let rng = Rng.of_int 37 in
  let samples = Array.init 5000 (fun _ -> Rng.float rng 1.0) in
  checkb "iid samples decorrelated" true
    (Float.abs (H.serial_correlation samples) < 0.05);
  let trending = Array.init 100 float_of_int in
  checkb "trend detected" true (H.serial_correlation trending > 0.9)

let test_committed_seed_bits_pass_chi_square () =
  (* Lemma B.17 at 1% significance: bits of seeds committed by SeedAlg,
     bucketed into 4-bit words, are uniform over 16 cells. *)
  let dual = Dualgraph.Geometric.clique 8 in
  let params = Localcast.Params.make_seed ~eps:0.1 ~delta:8 ~kappa:64 () in
  let counts = Array.make 16 0 in
  for trial = 1 to 40 do
    let rng = Rng.of_int (4000 + trial) in
    let nodes = Localcast.Seed_alg.network params ~rng ~n:8 in
    let trace, observer = Radiosim.Trace.recorder () in
    let (_ : int) =
      Radiosim.Engine.run ~observer ~dual
        ~scheduler:Radiosim.Scheduler.reliable_only ~nodes
        ~env:(Radiosim.Env.null ~name:"seed" ())
        ~rounds:(Localcast.Seed_alg.duration params)
        ()
    in
    let decisions = Localcast.Seed_spec.decisions_of_trace trace ~n:8 in
    let seen = Hashtbl.create 8 in
    Array.iter
      (List.iter (fun (_, { Localcast.Messages.owner; seed }) ->
           if not (Hashtbl.mem seen owner) then begin
             Hashtbl.add seen owner ();
             let cursor = Prng.Bitstring.cursor seed in
             for _ = 1 to Prng.Bitstring.length seed / 4 do
               let word = Prng.Bitstring.take_int cursor 4 in
               counts.(word) <- counts.(word) + 1
             done
           end))
      decisions
  done;
  checkb "committed seed words uniform (chi-square, 1%)" true
    (H.uniform_ok counts)

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("chi-square statistic", test_chi_square_statistic);
      ("chi-square uniform", test_chi_square_uniform);
      ("critical values", test_critical_values);
      ("uniformity accepted for rng", test_uniform_ok_accepts_rng);
      ("bias rejected", test_uniform_ok_rejects_bias);
      ("serial correlation", test_serial_correlation);
      ("committed seeds pass chi-square", test_committed_seed_bits_pass_chi_square);
    ]
