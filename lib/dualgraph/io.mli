(** Plain-text serialization of dual graphs.

    A simple line-oriented format so topologies can be saved from one run
    (or authored by hand) and replayed in another — e.g. to reproduce a
    failure found by a property test, or to feed the CLI a fixed network.

    Format (one record per line, '#' starts a comment):
    {v
    dualgraph v1
    n 4
    r 1.50
    point 0 0.000000 0.000000      # optional, all-or-none
    edge g 0 1                     # reliable edge
    edge u 0 2                     # unreliable edge (in E' \ E)
    v}

    Reliable edges are listed under [edge g] and unreliable ones under
    [edge u]; G' is their union.  Loading re-validates every dual graph
    invariant (and the r-geographic conditions when points are present),
    so a corrupted file cannot produce an ill-formed topology. *)

val to_string : Dual.t -> string

val of_string : string -> Dual.t
(** Raises [Invalid_argument] with a line-numbered message on malformed
    input, and propagates {!Dual.create}'s validation errors. *)

val save : Dual.t -> filename:string -> unit

val load : string -> Dual.t
(** [load filename] reads and parses the file. *)
