(** A strawman seed-agreement protocol, for calibrating SeedAlg.

    Every node draws a seed, then for [rounds] rounds broadcasts its
    [(id, seed)] with a fixed probability [p] while remembering the
    smallest-id announcement it has heard; at the end it commits to the
    minimum of its own and every heard announcement.

    Contrast with SeedAlg (paper §3): no phases, no leader thinning, no
    deactivation — so the transmission load never decreases, the
    fixed probability [p] is exposed to exactly the link-scheduler attack
    the Discussion describes, and nothing bounds the number of distinct
    owners a neighborhood commits beyond what the min-convergence
    happens to achieve in [rounds] rounds.  Experiment E17 measures the
    resulting time/quality trade-off against SeedAlg. *)

val node :
  rounds:int ->
  p:float ->
  kappa:int ->
  id:int ->
  rng:Prng.Rng.t ->
  (Localcast.Messages.msg, unit, Localcast.Messages.seed_output) Radiosim.Process.node
(** Emits its single [Decide] output at local round [rounds - 1]. *)

val network :
  rounds:int ->
  p:float ->
  kappa:int ->
  rng:Prng.Rng.t ->
  n:int ->
  (Localcast.Messages.msg, unit, Localcast.Messages.seed_output) Radiosim.Process.node
  array
