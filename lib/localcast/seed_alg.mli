(** SeedAlg as a standalone simulator process (paper §3).

    Wraps {!Seed_core} into a {!Radiosim.Process.node} that starts at
    round 0, emits one [Decide (j, s)] output, and stays silent after the
    algorithm's [Params.seed_duration] rounds.  Use {!network} to
    instantiate one node per vertex with independent split RNGs. *)

val node :
  Params.seed ->
  id:int ->
  rng:Prng.Rng.t ->
  (Messages.msg, unit, Messages.seed_output) Radiosim.Process.node

val network :
  Params.seed ->
  rng:Prng.Rng.t ->
  n:int ->
  (Messages.msg, unit, Messages.seed_output) Radiosim.Process.node array
(** [network params ~rng ~n] builds [n] nodes with ids [0..n-1], each with
    its own generator split off [rng]. *)

val duration : Params.seed -> int
(** Rounds to run the engine for a complete execution. *)
