type t = {
  mutable buf : Event.t array;  (** [[||]] until the first emit *)
  cap : int;
  mutable total : int;
  mutable consumers : (Event.t -> unit) list;  (** registration order *)
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Sink.create: capacity must be >= 1";
  { buf = [||]; cap = capacity; total = 0; consumers = [] }

let capacity t = t.cap

let emit t ev =
  (* The ring is allocated on first use so that merely creating sinks
     (e.g. a disabled-by-default config object) costs nothing. *)
  if Array.length t.buf = 0 then t.buf <- Array.make t.cap ev
  else t.buf.(t.total mod t.cap) <- ev;
  t.total <- t.total + 1;
  List.iter (fun f -> f ev) t.consumers

let on_event t f = t.consumers <- t.consumers @ [ f ]

let emitted t = t.total

let length t = min t.total t.cap

let dropped t = t.total - length t

let get t i =
  let len = length t in
  if i < 0 || i >= len then invalid_arg "Sink.get: index out of range";
  t.buf.((t.total - len + i) mod t.cap)

let iter t f =
  let len = length t in
  let start = t.total - len in
  for i = start to t.total - 1 do
    f t.buf.(i mod t.cap)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun ev -> acc := f !acc ev);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc ev -> ev :: acc))

let clear t =
  t.buf <- [||];
  t.total <- 0

let write_jsonl t oc =
  iter t (fun ev ->
      output_string oc (Event.to_json ev);
      output_char oc '\n')

let save_jsonl t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_jsonl t oc)

let read_jsonl ic =
  let rec go lineno acc =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | "" -> go (lineno + 1) acc
    | line -> (
        match Event.of_json_line line with
        | Ok ev -> go (lineno + 1) (ev :: acc)
        | Error reason ->
            Error (Printf.sprintf "line %d: %s" lineno reason))
  in
  go 1 []

let load_jsonl ~path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_jsonl ic)
