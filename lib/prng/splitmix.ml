type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The standard SplitMix64 finalizer: xor-shift multiply chains that give
   good avalanche behaviour on the raw counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A second finalizer (MurmurHash3 constants) used to derive split streams. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  (* Gammas must be odd; this also keeps them well distributed. *)
  Int64.logor z 1L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let next t =
  let s = Int64.add t.state golden_gamma in
  t.state <- s;
  mix s

let split t =
  let s1 = next t in
  let s2 = next t in
  { state = Int64.logxor (mix s1) (mix_gamma s2) }

let copy t = { state = t.state }
