(* Experiment E10: the §4.2 closing-remark ablation.  Running seed
   agreement every k-th phase (with seeds sized for the whole cycle)
   leaves the worst-case bounds untouched but shifts the average-case
   cost: fewer preamble rounds per delivered message. *)

open Core
open Exp_common
module Geo = Dualgraph.Geometric
module Params = Localcast.Params
module L = Localcast
module Table = Stats.Table

let run () =
  section "E10: ablation — seed agreement frequency (§4.2 remark)";
  note
    "seed_refresh = k runs the SeedAlg preamble every k-th phase; the\n\
     other phases use their full length as extra body rounds.  Guarantees\n\
     must hold at every k; useful-round share and delivery rate improve.";
  let trials = trials_scaled 8 in
  let phases = 8 in
  let table =
    Table.create ~title:"E10: refresh period sweep (random field n=30, eps=0.1)"
      ~columns:
        [ "refresh"; "kappa bits"; "preamble share"; "progress freq";
          "reliability"; "acks/10k rounds" ]
  in
  List.iter
    (fun refresh ->
      let samples =
        run_trials ~salt:refresh ~n:trials (fun ~trial:_ ~seed ->
            let dual = random_field ~seed ~n:30 () in
            let params =
              Params.of_dual ~seed_refresh:refresh ~eps1:0.1 ~tack_phases:3 dual
            in
            let cycle = refresh * params.Params.phase_len in
            let share = float_of_int params.Params.ts /. float_of_int cycle in
            let report, _ =
              run_lb_trial ~dual ~params ~senders:[ 0; 15 ]
                ~phases:(phases * refresh) ~seed ()
            in
            ( params.Params.seed.Params.kappa,
              share,
              report.L.Lb_spec.progress_opportunities,
              report.L.Lb_spec.progress_failures,
              report.L.Lb_spec.reliability_attempts,
              report.L.Lb_spec.reliability_failures,
              report.L.Lb_spec.ack_count,
              report.L.Lb_spec.rounds_observed ))
      in
      let opportunities = ref 0 and failures = ref 0 in
      let attempts = ref 0 and rel_failures = ref 0 in
      let acks = ref 0 and rounds_total = ref 0 in
      let kappa = ref 0 and preamble_share = ref 0.0 in
      List.iter
        (fun (k, share, opps, fails, atts, rfails, ack, rounds) ->
          kappa := k;
          preamble_share := share;
          opportunities := !opportunities + opps;
          failures := !failures + fails;
          attempts := !attempts + atts;
          rel_failures := !rel_failures + rfails;
          acks := !acks + ack;
          rounds_total := !rounds_total + rounds)
        samples;
      Table.add_row table
        [
          Table.cell_int refresh;
          Table.cell_int !kappa;
          Table.cell_rate !preamble_share;
          Table.cell_float ~decimals:4
            (1.0 -. (float_of_int !failures /. float_of_int (max 1 !opportunities)));
          Printf.sprintf "%d/%d" (!attempts - !rel_failures) !attempts;
          Table.cell_float
            (10_000.0 *. float_of_int !acks /. float_of_int (max 1 !rounds_total));
        ])
    (if !quick then [ 1; 4 ] else [ 1; 2; 4; 8 ]);
  Table.print table;
  note
    "Expected: preamble share falls as 1/k (amortized); progress and\n\
     reliability stay above 1 - eps; delivery throughput (acks per 10k\n\
     rounds) rises with k.  Cost: kappa (seed length) grows ~linearly.\n"
