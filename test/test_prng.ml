(* Unit and property tests for the prng library: SplitMix64 streams, the
   typed Rng layer, and seed bitstrings with cursors. *)

open Core

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Sm = Prng.Splitmix
module Rng = Prng.Rng
module Bits = Prng.Bitstring

(* --- Splitmix --- *)

let test_determinism () =
  let a = Sm.of_int 12345 and b = Sm.of_int 12345 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Sm.next a) (Sm.next b)
  done

let test_copy () =
  let a = Sm.of_int 7 in
  let _ = Sm.next a in
  let b = Sm.copy a in
  check Alcotest.int64 "copy continues identically" (Sm.next a) (Sm.next b)

let test_seeds_differ () =
  let a = Sm.of_int 1 and b = Sm.of_int 2 in
  checkb "different seeds diverge" true (Sm.next a <> Sm.next b)

let test_split_diverges () =
  let parent = Sm.of_int 99 in
  let child = Sm.split parent in
  let xs = List.init 20 (fun _ -> Sm.next parent) in
  let ys = List.init 20 (fun _ -> Sm.next child) in
  checkb "split stream differs from parent's continuation" true (xs <> ys)

let test_mix_nonzero () =
  (* mix is a bijection with fixed point 0 — the generator never sits at
     state 0 because the golden gamma is added before mixing. *)
  check Alcotest.int64 "mix fixes zero" 0L (Sm.mix 0L);
  checkb "mix avalanches one" true (Sm.mix 1L <> 1L);
  checkb "mix injective-ish" true (Sm.mix 1L <> Sm.mix 2L)

(* --- Rng draws --- *)

let test_bool_fair () =
  let rng = Rng.of_int 11 in
  let heads = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr heads
  done;
  let rate = float_of_int !heads /. float_of_int n in
  checkb "fair coin within 3 sigma" true (Float.abs (rate -. 0.5) < 0.015)

let test_bits_range () =
  let rng = Rng.of_int 5 in
  checki "bits 0" 0 (Rng.bits rng 0);
  for _ = 1 to 1000 do
    let v = Rng.bits rng 7 in
    checkb "bits 7 in range" true (v >= 0 && v < 128)
  done

let test_int_bounds () =
  let rng = Rng.of_int 3 in
  List.iter
    (fun n ->
      for _ = 1 to 200 do
        let v = Rng.int rng n in
        checkb "int in range" true (v >= 0 && v < n)
      done)
    [ 1; 2; 3; 7; 10; 100; 1000 ]

let test_int_covers_support () =
  let rng = Rng.of_int 17 in
  let hits = Array.make 5 0 in
  for _ = 1 to 2000 do
    hits.(Rng.int rng 5) <- hits.(Rng.int rng 5) + 1
  done;
  Array.iteri (fun i c -> checkb (Printf.sprintf "value %d drawn" i) true (c > 0)) hits

let test_int_large_bounds () =
  (* Regression: bounds above 2^30 used to trip the bits-width assert.
     The envelope now covers any positive OCaml int (up to 62 bits). *)
  let rng = Rng.of_int 61 in
  List.iter
    (fun n ->
      for _ = 1 to 200 do
        let v = Rng.int rng n in
        checkb (Printf.sprintf "int %d in range" n) true (v >= 0 && v < n)
      done)
    [ (1 lsl 30) + 1; 1 lsl 40; (1 lsl 61) + 7; max_int ];
  (* A draw above 2^31 is actually reachable, i.e. high bits are live. *)
  let seen_high = ref false in
  for _ = 1 to 1000 do
    if Rng.int rng max_int > 1 lsl 31 then seen_high := true
  done;
  checkb "draws exceed 2^31" true !seen_high

let test_int_in_range () =
  let rng = Rng.of_int 23 in
  for _ = 1 to 500 do
    let v = Rng.int_in_range rng ~min:(-5) ~max:5 in
    checkb "in inclusive range" true (v >= -5 && v <= 5)
  done;
  checki "degenerate range" 4 (Rng.int_in_range rng ~min:4 ~max:4)

let test_float_range () =
  let rng = Rng.of_int 29 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    checkb "float in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_float_mean () =
  let rng = Rng.of_int 31 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.float rng 1.0
  done;
  let mean = !total /. float_of_int n in
  checkb "uniform mean near 1/2" true (Float.abs (mean -. 0.5) < 0.01)

let test_bernoulli_edges () =
  let rng = Rng.of_int 37 in
  checkb "p=0 never" false (Rng.bernoulli rng 0.0);
  checkb "p=1 always" true (Rng.bernoulli rng 1.0);
  checkb "p<0 never" false (Rng.bernoulli rng (-0.3));
  checkb "p>1 always" true (Rng.bernoulli rng 1.7)

let test_bernoulli_rate () =
  let rng = Rng.of_int 41 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  checkb "bernoulli(0.3) rate" true (Float.abs (rate -. 0.3) < 0.015)

let test_geometric_trial () =
  let rng = Rng.of_int 43 in
  checkb "b=0 always succeeds" true (Rng.geometric_trial rng 0);
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.geometric_trial rng 1 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  checkb "b=1 rate 1/2" true (Float.abs (rate -. 0.5) < 0.015);
  let hits3 = ref 0 in
  for _ = 1 to n do
    if Rng.geometric_trial rng 3 then incr hits3
  done;
  let rate3 = float_of_int !hits3 /. float_of_int n in
  checkb "b=3 rate 1/8" true (Float.abs (rate3 -. 0.125) < 0.01)

let test_shuffle_permutes () =
  let rng = Rng.of_int 47 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  check (Alcotest.array Alcotest.int) "multiset preserved" (Array.init 20 Fun.id) sorted

let test_pick_member () =
  let rng = Rng.of_int 53 in
  let a = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng a in
    checkb "picked element is a member" true (Array.exists (( = ) v) a)
  done

(* --- Bitstring --- *)

let test_bits_of_bools_roundtrip () =
  let bools = [ true; false; false; true; true; false ] in
  check (Alcotest.list Alcotest.bool) "roundtrip" bools
    (Bits.to_bools (Bits.of_bools bools))

let test_bits_of_string () =
  let s = "011010001" in
  check Alcotest.string "string roundtrip" s (Bits.to_string (Bits.of_string s));
  Alcotest.check_raises "bad char" (Invalid_argument
    "Bitstring.of_string: expected only '0'/'1'") (fun () ->
      ignore (Bits.of_string "01x"))

let test_bits_get_bounds () =
  let b = Bits.of_string "101" in
  checkb "get 0" true (Bits.get b 0);
  checkb "get 1" false (Bits.get b 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitstring.get: index out of range") (fun () ->
      ignore (Bits.get b 3))

let test_bits_ones () =
  checki "ones" 4 (Bits.ones (Bits.of_string "1011001"));
  checki "ones empty" 0 (Bits.ones (Bits.of_string ""))

let test_bits_equal_compare () =
  let a = Bits.of_string "1010" and b = Bits.of_string "1010" in
  checkb "equal" true (Bits.equal a b);
  checki "compare equal" 0 (Bits.compare a b);
  checkb "length distinguishes" false (Bits.equal a (Bits.of_string "10100"))

let test_bits_random_length_balance () =
  let rng = Rng.of_int 59 in
  let b = Bits.random rng 10_000 in
  checki "length" 10_000 (Bits.length b);
  let rate = float_of_int (Bits.ones b) /. 10_000.0 in
  checkb "random seed is balanced" true (Float.abs (rate -. 0.5) < 0.02)

let test_cursor_sequential () =
  let b = Bits.of_string "1101001" in
  let c = Bits.cursor b in
  checki "initial remaining" 7 (Bits.remaining c);
  let read = List.init 7 (fun _ -> Bits.take_bit c) in
  check (Alcotest.list Alcotest.bool) "bits in order" (Bits.to_bools b) read;
  checki "exhausted" 0 (Bits.remaining c);
  Alcotest.check_raises "take past end"
    (Invalid_argument "Bitstring.take_bit: exhausted") (fun () ->
      ignore (Bits.take_bit c))

let test_cursor_take_int () =
  let c = Bits.cursor (Bits.of_string "10110") in
  checki "msb-first 101 = 5" 5 (Bits.take_int c 3);
  checki "next 10 = 2" 2 (Bits.take_int c 2);
  checki "position" 5 (Bits.position c)

let test_cursor_take_all_zero () =
  let c = Bits.cursor (Bits.of_string "000100") in
  checkb "three zeros" true (Bits.take_all_zero c 3);
  (* Consumes all bits even after a 1: cursor alignment property. *)
  checkb "has a one" false (Bits.take_all_zero c 3);
  checki "all consumed" 0 (Bits.remaining c)

(* --- qcheck properties --- *)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"bitstring bools roundtrip" ~count:200
      (small_list bool)
      (fun bools -> Bits.to_bools (Bits.of_bools bools) = bools);
    Test.make ~name:"bitstring string roundtrip" ~count:200
      (string_of_size Gen.small_nat)
      (fun s ->
        let s01 =
          String.map (fun ch -> if Char.code ch land 1 = 0 then '0' else '1') s
        in
        Bits.to_string (Bits.of_string s01) = s01);
    Test.make ~name:"take_int stays below 2^k" ~count:200
      (pair (int_bound 12) small_int)
      (fun (k, seed) ->
        let rng = Rng.of_int seed in
        let b = Bits.random rng (max 1 k) in
        let c = Bits.cursor b in
        let v = Bits.take_int c (Bits.length b) in
        v >= 0 && v < 1 lsl Bits.length b);
    Test.make ~name:"rng int below bound" ~count:500
      (pair (int_range 1 10_000) small_int)
      (fun (n, seed) ->
        let rng = Rng.of_int seed in
        let v = Rng.int rng n in
        v >= 0 && v < n);
    Test.make ~name:"shuffle preserves multiset" ~count:200
      (pair (small_list small_int) small_int)
      (fun (l, seed) ->
        let rng = Rng.of_int seed in
        let a = Array.of_list l in
        Rng.shuffle rng a;
        List.sort compare (Array.to_list a) = List.sort compare l);
  ]

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("splitmix determinism", test_determinism);
      ("splitmix copy", test_copy);
      ("splitmix seeds differ", test_seeds_differ);
      ("splitmix split diverges", test_split_diverges);
      ("splitmix mix nonzero", test_mix_nonzero);
      ("rng bool fair", test_bool_fair);
      ("rng bits range", test_bits_range);
      ("rng int bounds", test_int_bounds);
      ("rng int covers support", test_int_covers_support);
      ("rng int large bounds", test_int_large_bounds);
      ("rng int_in_range", test_int_in_range);
      ("rng float range", test_float_range);
      ("rng float mean", test_float_mean);
      ("rng bernoulli edges", test_bernoulli_edges);
      ("rng bernoulli rate", test_bernoulli_rate);
      ("rng geometric trial", test_geometric_trial);
      ("rng shuffle permutes", test_shuffle_permutes);
      ("rng pick member", test_pick_member);
      ("bitstring bools roundtrip", test_bits_of_bools_roundtrip);
      ("bitstring string io", test_bits_of_string);
      ("bitstring get bounds", test_bits_get_bounds);
      ("bitstring ones", test_bits_ones);
      ("bitstring equal/compare", test_bits_equal_compare);
      ("bitstring random balance", test_bits_random_length_balance);
      ("cursor sequential", test_cursor_sequential);
      ("cursor take_int", test_cursor_take_int);
      ("cursor take_all_zero", test_cursor_take_all_zero);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
