module Dual = Dualgraph.Dual

(* Per-node incidence of unreliable edges: (neighbor, edge index) pairs,
   where the index refers to [Dual.unreliable_edges]. *)
type incidence = (int * int) array array

let unreliable_incidence dual =
  let n = Dual.n dual in
  let incident = Array.make n [] in
  Array.iteri
    (fun idx (u, v) ->
      incident.(u) <- (v, idx) :: incident.(u);
      incident.(v) <- (u, idx) :: incident.(v))
    (Dual.unreliable_edges dual);
  Array.map Array.of_list incident

(* The shared round loop.  [edge_active] decides, per round, which
   unreliable edges join the topology; for oblivious schedulers it ignores
   the transmission vector, for adaptive adversaries (Adaptive.t) it may
   inspect it — the engine computes the vector before resolving any
   reception either way, so both cases share one collision-resolution
   path. *)
let run_with ~edge_active ~dual ~nodes ~env ~rounds ?observer ?stop () =
  let n = Dual.n dual in
  if Array.length nodes <> n then
    invalid_arg "Engine.run: node array size differs from vertex count";
  if rounds < 0 then invalid_arg "Engine.run: negative round count";
  let incident = unreliable_incidence dual in
  (* A round record can escape the loop only through [observer] or
     [stop]; when neither is supplied, the per-round arrays are reused
     across rounds instead of being reallocated (the engine's dominant
     allocation cost on long unobserved runs). *)
  let record_escapes = observer <> None || stop <> None in
  let buffers = ref None in
  let executed = ref 0 in
  let continue = ref true in
  let round = ref 0 in
  while !continue && !round < rounds do
    let t = !round in
    (* Step 1 + 2: inputs, then transmit/listen decisions. *)
    let inputs, actions, transmitting, delivered, outputs =
      match !buffers with
      | Some ((inputs, actions, transmitting, _, _) as b) ->
          for v = 0 to n - 1 do
            inputs.(v) <- env.Env.inputs ~round:t ~node:v
          done;
          for v = 0 to n - 1 do
            let a = nodes.(v).Process.decide ~round:t inputs.(v) in
            actions.(v) <- a;
            transmitting.(v) <-
              (match a with Process.Transmit _ -> true | Process.Listen -> false)
          done;
          b
      | None ->
          let inputs = Array.init n (fun v -> env.Env.inputs ~round:t ~node:v) in
          let actions =
            Array.mapi (fun v node -> node.Process.decide ~round:t inputs.(v)) nodes
          in
          let transmitting =
            Array.map
              (function Process.Transmit _ -> true | Process.Listen -> false)
              actions
          in
          let delivered = Array.make n None in
          let outputs = Array.make n [] in
          let b = (inputs, actions, transmitting, delivered, outputs) in
          if not record_escapes then buffers := Some b;
          b
    in
    let active = edge_active ~round:t ~transmitting in
    (* Step 3: receptions under the round's topology. *)
    for u = 0 to n - 1 do
      delivered.(u) <-
        (match actions.(u) with
        | Process.Transmit _ -> None
        | Process.Listen ->
            let heard = ref None in
            let collided = ref false in
            let consider v =
              match actions.(v) with
              | Process.Listen -> ()
              | Process.Transmit m -> (
                  match !heard with
                  | None -> heard := Some m
                  | Some _ -> collided := true)
            in
            Array.iter consider (Dual.reliable_neighbors dual u);
            Array.iter
              (fun (v, edge) -> if active ~edge then consider v)
              incident.(u);
            if !collided then None else !heard)
    done;
    (* Step 4: outputs, consumed by the environment. *)
    for v = 0 to n - 1 do
      outputs.(v) <- nodes.(v).Process.absorb ~round:t delivered.(v)
    done;
    Array.iteri
      (fun v outs -> if outs <> [] then env.Env.notify ~round:t ~node:v outs)
      outputs;
    if record_escapes then begin
      let record = { Trace.round = t; inputs; actions; delivered; outputs } in
      (match observer with Some f -> f record | None -> ());
      match stop with Some p when p record -> continue := false | _ -> ()
    end;
    incr executed;
    incr round
  done;
  !executed

let run ?observer ?stop ~dual ~scheduler ~nodes ~env ~rounds () =
  let edge_active ~round ~transmitting:_ ~edge =
    Scheduler.active scheduler ~round ~edge
  in
  run_with ~edge_active ~dual ~nodes ~env ~rounds ?observer ?stop ()

let run_adaptive ?observer ?stop ~dual ~adversary ~nodes ~env ~rounds () =
  let edge_active ~round ~transmitting ~edge =
    Adaptive.choose adversary ~round ~transmitting ~edge
  in
  run_with ~edge_active ~dual ~nodes ~env ~rounds ?observer ?stop ()

let transmitter_counts ?incidence ~dual ~scheduler ~round ~transmitting () =
  let n = Dual.n dual in
  if Array.length transmitting <> n then
    invalid_arg "Engine.transmitter_counts: size mismatch";
  let incident =
    match incidence with
    | Some incident ->
        if Array.length incident <> n then
          invalid_arg "Engine.transmitter_counts: incidence/graph mismatch";
        incident
    | None -> unreliable_incidence dual
  in
  Array.init n (fun u ->
      let count = ref 0 in
      Array.iter
        (fun v -> if transmitting.(v) then incr count)
        (Dual.reliable_neighbors dual u);
      Array.iter
        (fun (v, edge) ->
          if transmitting.(v) && Scheduler.active scheduler ~round ~edge then
            incr count)
        incident.(u);
      !count)
