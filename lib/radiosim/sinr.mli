(** The SINR reception backend: received-power bookkeeping over a
    topology's Euclidean embedding.

    A {!t} is prepared once per run and reused across rounds; the engine
    loads each round's transmitter set ({!load_round}) and then asks,
    per listener, who (if anyone) was decoded ({!receive}).  The answer
    is a pure function of [(transmitter set, listener, jammed)], so the
    tiled engine can evaluate listeners from any worker domain in any
    order and still produce the sequential engine's exact trace.

    {b The power-sum aggregation scheme.}  Received power at distance
    [d] is [power / d^alpha].  Summing it over every transmitter for
    every listener is O(T·n) per round, so the field splits the sum at
    the granularity of the embedding's {!Dualgraph.Grid} columns — the
    same columns {!Dualgraph.Tile} builds its stripes from, at cell
    side [max r 1]:

    - {e near field}: transmitters within [near] columns of the
      listener are summed {e exactly}, bucketed per column by a
      counting sort (ascending id within a column, columns ascending) —
      the candidate (strongest transmitter) always comes from this
      band;
    - {e far field}: each column beyond the band contributes
      [count · power / (Δcol · cell)^alpha] — its transmitter count
      times the power of a single transmitter at the column-center
      distance — accumulated into a per-column table once per round
      (O(cols²), independent of n).

    Every sum is accumulated in one fixed global order (columns
    ascending, ids ascending within a column), never in tile order, so
    floating-point results — and therefore traces — are bit-identical
    at any tile count.  [docs/RECEPTION.md] works the scheme and its
    error envelope; the test suite checks exact agreement with a naive
    all-pairs sum whenever the band covers the whole field. *)

type t

val create : params:Reception.sinr -> Dualgraph.Dual.t -> t
(** Prepares the power field: copies the embedding into flat coordinate
    arrays, assigns each node its grid column, and precomputes the
    per-distance far-field power table.  O(n + cols); all per-round
    buffers are allocated here, so rounds allocate nothing.

    @raise Invalid_argument if the dual graph carries no embedding. *)

val cols : t -> int
(** Number of grid columns the field is bucketed into. *)

val load_round : t -> transmitters:int array -> count:int -> unit
(** Loads the round's transmitter set — the first [count] slots of
    [transmitters], which must be strictly ascending node ids (both
    engines produce them that way).  Buckets them by column and
    rebuilds the far-field table.  O(T + cols²). *)

val receive : t -> jammed:bool -> listener:int -> int
(** The loaded round's outcome at [listener] (which must not itself be
    transmitting): the decoded transmitter's id; [-1] if no transmitter
    lies within the near band (silence — nothing to decode); [-2] if
    the strongest in-band transmitter failed the SINR test (drowned —
    the dual-graph model's collision).  [jammed] adds the model's [jam]
    noise to the listener's floor — under SINR a jam window degrades
    the victim's {e reception} instead of suppressing its transmission
    (see [docs/RECEPTION.md] §4). *)

val diag : t -> jammed:bool -> listener:int -> int * float * float
(** [(best, signal, interference)] behind the {!receive} verdict:
    the in-band candidate ([-1] if none), its received signal power,
    and the denominator — every other transmitter's power (near exact
    + far aggregated) plus noise plus jam.  [receive] returns [best]
    iff [signal >= beta · interference].  Exposed for tests and for
    the worked example in [docs/RECEPTION.md]. *)
