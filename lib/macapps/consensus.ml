module Mac = Localcast.Mac
module M = Localcast.Messages
module Dual = Dualgraph.Dual

let value_base = 1024

type result = {
  decisions : int array;
  agreement : bool;
  valid : bool;
  converged : bool;
  rounds_executed : int;
}

let run ~params ~rng ~dual ~scheduler ~inputs ~max_rounds () =
  let n = Dual.n dual in
  if Array.length inputs <> n then
    invalid_arg "Consensus.run: inputs length mismatch";
  Array.iter
    (fun v ->
      if v < 0 || v >= value_base then
        invalid_arg "Consensus.run: input outside [0, value_base)")
    inputs;
  (* Per node: current belief (best id and its value) plus a dirty flag
     meaning the latest belief still has to go out through the MAC. *)
  let best_id = Array.init n Fun.id in
  let best_value = Array.copy inputs in
  let dirty = Array.make n true in
  let mac = ref None in
  let try_send node =
    match !mac with
    | Some mac when dirty.(node) ->
        let tag = (best_id.(node) * value_base) + best_value.(node) in
        if Mac.request mac ~node ~tag then dirty.(node) <- false
    | _ -> ()
  in
  let callbacks =
    {
      Mac.on_recv =
        (fun ~node ~round:_ payload ->
          let id = payload.M.tag / value_base in
          let value = payload.M.tag mod value_base in
          if id > best_id.(node) then begin
            best_id.(node) <- id;
            best_value.(node) <- value;
            dirty.(node) <- true;
            try_send node
          end);
      on_ack =
        (fun ~node ~round:_ _ ->
          (* The endpoint is free again; push any newer belief. *)
          try_send node);
    }
  in
  let m = Mac.create ~callbacks ~params ~rng ~dual () in
  mac := Some m;
  for v = 0 to n - 1 do
    try_send v
  done;
  (* Quiescent once every node holds the globally best belief and has no
     update left to publish.  (Outstanding rebroadcasts of the winning
     belief cannot change any state, so it is safe to stop then.) *)
  let target = n - 1 in
  let stop _ =
    let settled = ref true in
    for v = 0 to n - 1 do
      if best_id.(v) <> target || dirty.(v) then settled := false
    done;
    !settled
  in
  let rounds_executed = Mac.run ~stop m ~scheduler ~rounds:max_rounds in
  let decisions = Array.copy best_value in
  let agreement = Array.for_all (fun v -> v = decisions.(0)) decisions in
  let valid = agreement && n > 0 && decisions.(0) = inputs.(target) in
  let converged = Array.for_all (fun id -> id = target) best_id in
  { decisions; agreement; valid; converged; rounds_executed }
