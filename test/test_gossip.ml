(* Tests for the gossip seed-agreement baseline. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module M = Localcast.Messages
module Gossip = Baseline.Gossip_seed
module Rng = Prng.Rng

let run ~dual ~rounds ~p ~seed =
  let n = Dual.n dual in
  let nodes = Gossip.network ~rounds ~p ~kappa:8 ~rng:(Rng.of_int seed) ~n in
  let trace, observer = Radiosim.Trace.recorder () in
  let (_ : int) =
    Radiosim.Engine.run ~observer ~dual ~scheduler:Sch.reliable_only ~nodes
      ~env:(Radiosim.Env.null ~name:"gossip" ())
      ~rounds ()
  in
  Localcast.Seed_spec.decisions_of_trace trace ~n

let test_validation () =
  Alcotest.check_raises "rounds" (Invalid_argument "Gossip_seed.node: rounds must be >= 1")
    (fun () -> ignore (Gossip.node ~rounds:0 ~p:0.5 ~kappa:8 ~id:0 ~rng:(Rng.of_int 1)));
  Alcotest.check_raises "kappa" (Invalid_argument "Gossip_seed.node: kappa must be >= 1")
    (fun () -> ignore (Gossip.node ~rounds:5 ~p:0.5 ~kappa:0 ~id:0 ~rng:(Rng.of_int 1)))

let test_well_formed_and_consistent () =
  let dual = Geo.clique 8 in
  let decisions = run ~dual ~rounds:100 ~p:0.125 ~seed:2 in
  let report =
    Localcast.Seed_spec.check ~dual ~delta_bound:1000 ~decisions
  in
  checkb "well-formed" true report.Localcast.Seed_spec.well_formed;
  checkb "consistent" true report.Localcast.Seed_spec.consistent

let test_decides_exactly_at_deadline () =
  let dual = Geo.singleton () in
  let decisions = run ~dual ~rounds:17 ~p:0.5 ~seed:3 in
  (match decisions.(0) with
  | [ (round, { M.owner; _ }) ] ->
      checki "decide round" 16 round;
      checki "own seed for isolated node" 0 owner
  | _ -> Alcotest.fail "expected exactly one decision")

let test_converges_to_min_on_clique () =
  (* With ample rounds, every node should adopt node 0's seed. *)
  let dual = Geo.clique 6 in
  let decisions = run ~dual ~rounds:400 ~p:(1.0 /. 6.0) ~seed:4 in
  let owners = Localcast.Seed_spec.owners ~decisions in
  Alcotest.check (Alcotest.array Alcotest.int) "all commit to min id"
    (Array.make 6 0) owners

let test_no_convergence_without_time () =
  (* With a single round almost surely nothing is heard: everyone keeps
     its own seed. *)
  let dual = Geo.clique 6 in
  let decisions = run ~dual ~rounds:1 ~p:0.0 ~seed:5 in
  let owners = Localcast.Seed_spec.owners ~decisions in
  Alcotest.check (Alcotest.array Alcotest.int) "own ids" [| 0; 1; 2; 3; 4; 5 |] owners

let test_min_relays_across_hops () =
  (* On a line, the min id must cross multiple hops by relay — something
     the one-shot announcements of SeedAlg never do. *)
  let dual = Geo.line ~n:5 ~spacing:0.9 () in
  let decisions = run ~dual ~rounds:600 ~p:0.3 ~seed:6 in
  let owners = Localcast.Seed_spec.owners ~decisions in
  checki "far end adopted the global min" 0 owners.(4)

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("validation", test_validation);
      ("well-formed and consistent", test_well_formed_and_consistent);
      ("decides exactly at deadline", test_decides_exactly_at_deadline);
      ("converges to min on clique", test_converges_to_min_on_clique);
      ("no convergence without time", test_no_convergence_without_time);
      ("min relays across hops", test_min_relays_across_hops);
    ]
