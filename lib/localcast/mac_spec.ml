module Dual = Dualgraph.Dual

type report = {
  requests : int;
  acks : int;
  recvs : int;
  unmatched_acks : int;
  late_acks : int;
  missing_acks : int;
  invalid_recvs : int;
  duplicate_recvs : int;
  max_ack_latency : int;
}

let ok r =
  r.unmatched_acks = 0 && r.late_acks = 0 && r.missing_acks = 0
  && r.invalid_recvs = 0 && r.duplicate_recvs = 0

type outstanding = { payload : Messages.payload; since : int }

type monitor = {
  dual : Dual.t;
  f_ack : int;
  outstanding : (int, outstanding) Hashtbl.t;  (** per node *)
  acked_this_round : (int, Messages.payload * int) Hashtbl.t;
      (** per node: last acked payload and its round — a recv processed
          after its source's ack within the same engine round is valid *)
  delivered : (int * Messages.payload, unit) Hashtbl.t;
  mutable requests : int;
  mutable acks : int;
  mutable recvs : int;
  mutable unmatched_acks : int;
  mutable late_acks : int;
  mutable invalid_recvs : int;
  mutable duplicate_recvs : int;
  mutable max_ack_latency : int;
}

let monitor ~dual ~f_ack =
  {
    dual;
    f_ack;
    outstanding = Hashtbl.create 32;
    acked_this_round = Hashtbl.create 32;
    delivered = Hashtbl.create 64;
    requests = 0;
    acks = 0;
    recvs = 0;
    unmatched_acks = 0;
    late_acks = 0;
    invalid_recvs = 0;
    duplicate_recvs = 0;
    max_ack_latency = 0;
  }

let note_request m ~node ~round payload =
  m.requests <- m.requests + 1;
  Hashtbl.replace m.outstanding node { payload; since = round }

let note_ack m ~node ~round payload =
  m.acks <- m.acks + 1;
  match Hashtbl.find_opt m.outstanding node with
  | Some { payload = expected; since }
    when Messages.payload_equal expected payload ->
      let latency = round - since in
      if latency > m.max_ack_latency then m.max_ack_latency <- latency;
      if latency > m.f_ack then m.late_acks <- m.late_acks + 1;
      Hashtbl.remove m.outstanding node;
      Hashtbl.replace m.acked_this_round node (payload, round)
  | _ -> m.unmatched_acks <- m.unmatched_acks + 1

let note_recv m ~node ~round payload =
  m.recvs <- m.recvs + 1;
  let src = payload.Messages.src in
  let source_active =
    (match Hashtbl.find_opt m.outstanding src with
    | Some { payload = p; _ } -> Messages.payload_equal p payload
    | None -> false)
    ||
    match Hashtbl.find_opt m.acked_this_round src with
    | Some (p, ack_round) -> ack_round = round && Messages.payload_equal p payload
    | None -> false
  in
  let valid =
    src >= 0
    && src < Dual.n m.dual
    && src <> node
    && Dualgraph.Graph.mem_edge (Dual.g' m.dual) node src
    && source_active
  in
  if not valid then m.invalid_recvs <- m.invalid_recvs + 1;
  let key = (node, payload) in
  if Hashtbl.mem m.delivered key then m.duplicate_recvs <- m.duplicate_recvs + 1
  else Hashtbl.add m.delivered key ()

let callbacks m ~chain =
  {
    Mac.on_recv =
      (fun ~node ~round payload ->
        note_recv m ~node ~round payload;
        chain.Mac.on_recv ~node ~round payload);
    on_ack =
      (fun ~node ~round payload ->
        note_ack m ~node ~round payload;
        chain.Mac.on_ack ~node ~round payload);
  }

let finish m ~rounds =
  let missing_acks =
    Hashtbl.fold
      (fun _ { since; _ } acc -> if rounds - since > m.f_ack then acc + 1 else acc)
      m.outstanding 0
  in
  {
    requests = m.requests;
    acks = m.acks;
    recvs = m.recvs;
    unmatched_acks = m.unmatched_acks;
    late_acks = m.late_acks;
    missing_acks;
    invalid_recvs = m.invalid_recvs;
    duplicate_recvs = m.duplicate_recvs;
    max_ack_latency = m.max_ack_latency;
  }
