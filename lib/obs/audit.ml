type kind =
  | Late_ack of { latency : int }
  | Missing_ack of { bcast_round : int }
  | Progress_miss of { phase : int }
  | Delta_breach of { owners : int; bound : int }

type violation = {
  kind : kind;
  node : int;
  round : int;
  detail : string;
  window : Event.t list;
}

let pp_violation ppf v = Format.pp_print_string ppf v.detail

type t = {
  t_ack : int;
  t_prog : int option;
  delta_bound : int option;
  g : int array array option;
  g'_closed : int array array option;
  recent : Sink.t;  (** the evidence ring *)
  outstanding : (int * int, int) Hashtbl.t;  (** (node, uid) → bcast round *)
  missed : (int * int, int) Hashtbl.t;  (** flagged missing, for late acks *)
  mutable acks_rev : (int * int * int) list;
  mutable violations_rev : violation list;
  mutable cur_round : int;  (** highest round seen, -1 before any event *)
  (* progress state (allocated when g is present) *)
  active_count : int array;  (** outstanding bcasts per node *)
  active_all : bool array;  (** active in every round of the open phase *)
  got_progress : bool array;  (** qualifying reception seen this phase *)
  mutable pending_deactivate : int list;
      (** acked this round; deactivated after the round's activity check *)
  mutable open_phase : int option;
  (* δ state (allocated when g'_closed is present) *)
  commits : int array;  (** committed owner per node, min_int = none *)
  mutable commits_dirty : bool;
  (* fault state, tracked from the event stream itself *)
  down : (int, int) Hashtbl.t;  (** node → crash round, present iff down *)
  down_in_phase : (int, unit) Hashtbl.t;
      (** nodes dead at some point during the open progress phase *)
  mutable finished : bool;
}

let create ?(window = 64) ?t_prog ?delta_bound ?g ?g'_closed ~t_ack () =
  if t_ack < 0 then invalid_arg "Audit.create: negative t_ack";
  let n =
    match (g, g'_closed) with
    | Some g, _ -> Array.length g
    | None, Some g' -> Array.length g'
    | None, None -> 0
  in
  (match (g, g'_closed) with
  | Some g, Some g' when Array.length g <> Array.length g' ->
      invalid_arg "Audit.create: g and g'_closed disagree on vertex count"
  | _ -> ());
  {
    t_ack;
    t_prog;
    delta_bound;
    g;
    g'_closed;
    recent = Sink.create ~capacity:window ();
    outstanding = Hashtbl.create 32;
    missed = Hashtbl.create 8;
    acks_rev = [];
    violations_rev = [];
    cur_round = -1;
    active_count = Array.make (max n 1) 0;
    active_all = Array.make (max n 1) true;
    got_progress = Array.make (max n 1) false;
    pending_deactivate = [];
    open_phase = None;
    commits = Array.make (max n 1) min_int;
    commits_dirty = false;
    down = Hashtbl.create 8;
    down_in_phase = Hashtbl.create 8;
    finished = false;
  }

let flag t ~kind ~node ~round detail =
  t.violations_rev <-
    { kind; node; round; detail; window = Sink.to_list t.recent }
    :: t.violations_rev

(* δ check: distinct committed owners per closed G'-neighborhood.  Run
   whenever the commit map changed since the last check (once per phase
   in a normal stream). *)
let check_delta t ~round =
  match (t.delta_bound, t.g'_closed) with
  | Some bound, Some closed when t.commits_dirty ->
      t.commits_dirty <- false;
      Array.iteri
        (fun u neighborhood ->
          let owners = ref [] in
          Array.iter
            (fun v ->
              let owner = t.commits.(v) in
              if owner <> min_int && not (List.mem owner !owners) then
                owners := owner :: !owners)
            neighborhood;
          let count = List.length !owners in
          if count > bound then
            flag t ~kind:(Delta_breach { owners = count; bound }) ~node:u ~round
              (Printf.sprintf
                 "round %d: node %d sees %d distinct seed owners in its closed \
                  G'-neighborhood (bound delta = %d)"
                 round u count bound))
        closed
  | _ -> ()

(* Close the open progress phase: every receiver with a reliable neighbor
   active through the whole phase must have had a qualifying reception. *)
let close_phase t ~round =
  (match (t.open_phase, t.g) with
  | Some phase, Some g ->
      Array.iteri
        (fun u neighbors ->
          let opportunity =
            Array.exists (fun v -> t.active_all.(v)) neighbors
          in
          (* Survivor scoping: a receiver down at any point of the phase
             owes no progress obligation. *)
          if opportunity && not t.got_progress.(u)
             && not (Hashtbl.mem t.down_in_phase u)
          then
            flag t ~kind:(Progress_miss { phase }) ~node:u ~round
              (Printf.sprintf
                 "round %d: node %d missed the progress deadline of phase %d \
                  (a reliable neighbor was active all phase, no qualifying \
                  reception)"
                 round u phase))
        g
  | _ -> ());
  t.open_phase <- None;
  (* Mirror Lb_spec.close_phase: presume fully active, let each round's
     activity check (at Round_end) clear the nodes that are not. *)
  Array.fill t.active_all 0 (Array.length t.active_all) true;
  Array.fill t.got_progress 0 (Array.length t.got_progress) false;
  (* The new phase starts tainted only for nodes that are still down. *)
  Hashtbl.reset t.down_in_phase;
  Hashtbl.iter (fun node _ -> Hashtbl.replace t.down_in_phase node ()) t.down;
  (* A currently-dead node is not an active sender either. *)
  Hashtbl.iter
    (fun node _ ->
      if node >= 0 && node < Array.length t.active_all then
        t.active_all.(node) <- false)
    t.down

let flag_missing t ~now (node, uid) bcast_round =
  Hashtbl.remove t.outstanding (node, uid);
  Hashtbl.replace t.missed (node, uid) bcast_round;
  flag t ~kind:(Missing_ack { bcast_round }) ~node ~round:now
    (Printf.sprintf
       "round %d: bcast of node %d (uid %d, issued round %d) unacknowledged \
        after t_ack = %d rounds"
       now node uid bcast_round t.t_ack)

let observe t ev =
  if t.finished then invalid_arg "Audit.observe: auditor already finished";
  Sink.emit t.recent ev;
  let round = Event.round ev in
  if round > t.cur_round then t.cur_round <- round;
  match ev with
  | Event.Bcast { round; node; uid } ->
      Hashtbl.replace t.outstanding (node, uid) round;
      if node < Array.length t.active_count then
        t.active_count.(node) <- t.active_count.(node) + 1
  | Event.Ack { round; node; uid; latency = _ } -> (
      (* The sender stays active through its ack round; deactivate at
         Round_end, after the round's activity check. *)
      t.pending_deactivate <- node :: t.pending_deactivate;
      match Hashtbl.find_opt t.outstanding (node, uid) with
      | Some bcast_round ->
          Hashtbl.remove t.outstanding (node, uid);
          let latency = round - bcast_round in
          t.acks_rev <- (node, uid, latency) :: t.acks_rev;
          if latency > t.t_ack then
            flag t ~kind:(Late_ack { latency }) ~node ~round
              (Printf.sprintf
                 "round %d: ack of node %d (uid %d) took %d rounds (t_ack = %d)"
                 round node uid latency t.t_ack)
      | None -> (
          (* Already flagged missing: record the eventual latency, no
             second violation for the same bcast. *)
          match Hashtbl.find_opt t.missed (node, uid) with
          | Some bcast_round ->
              Hashtbl.remove t.missed (node, uid);
              t.acks_rev <- (node, uid, round - bcast_round) :: t.acks_rev
          | None -> t.acks_rev <- (node, uid, 0) :: t.acks_rev))
  | Event.Phase_start { round; phase; preamble = _ } ->
      check_delta t ~round;
      close_phase t ~round;
      t.open_phase <- Some phase
  | Event.Progress { round = _; node; latency = _ } ->
      if node < Array.length t.got_progress then t.got_progress.(node) <- true
  | Event.Seed_commit { round = _; node; owner } ->
      if node < Array.length t.commits then begin
        t.commits.(node) <- owner;
        t.commits_dirty <- true
      end
  | Event.Round_end { round; _ } ->
      (* Activity check mirrors Lb_spec: a node not active this round
         forfeits active_all; acked senders deactivate only now. *)
      Array.iteri
        (fun v c -> if c = 0 then t.active_all.(v) <- false)
        t.active_count;
      List.iter
        (fun node ->
          if node < Array.length t.active_count then
            t.active_count.(node) <- max 0 (t.active_count.(node) - 1))
        t.pending_deactivate;
      t.pending_deactivate <- [];
      (* Online missing-ack scan. *)
      let overdue =
        Hashtbl.fold
          (fun key bcast_round acc ->
            if round - bcast_round > t.t_ack then (key, bcast_round) :: acc
            else acc)
          t.outstanding []
      in
      List.iter
        (fun (key, bcast_round) -> flag_missing t ~now:round key bcast_round)
        (List.sort compare overdue)
  | Event.Crash { round = _; node } ->
      Hashtbl.replace t.down node round;
      Hashtbl.replace t.down_in_phase node ();
      (* A dead node owes no acks: waive its outstanding obligations (and
         any already-flagged ones, so an impossible post-mortem ack is not
         scored as a latency). *)
      let stale tbl =
        Hashtbl.fold
          (fun (v, uid) _ acc -> if v = node then (v, uid) :: acc else acc)
          tbl []
      in
      List.iter (Hashtbl.remove t.outstanding) (stale t.outstanding);
      List.iter (Hashtbl.remove t.missed) (stale t.missed);
      if node >= 0 && node < Array.length t.active_count then begin
        t.active_count.(node) <- 0;
        t.active_all.(node) <- false
      end
  | Event.Restart { round = _; node } ->
      (* Fresh state going forward; down_in_phase keeps the current phase
         waived until the next phase boundary. *)
      Hashtbl.remove t.down node
  | Event.Round_start _ | Event.Transmit _ | Event.Deliver _
  | Event.Collision _ | Event.Recv _ | Event.Mark _ -> ()

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let rounds = t.cur_round + 1 in
    check_delta t ~round:t.cur_round;
    close_phase t ~round:t.cur_round;
    (* Lb_spec's end-of-run rule: missing iff rounds_observed - b > t_ack. *)
    let overdue =
      Hashtbl.fold
        (fun key bcast_round acc ->
          if rounds - bcast_round > t.t_ack then (key, bcast_round) :: acc
          else acc)
        t.outstanding []
    in
    List.iter
      (fun (key, bcast_round) -> flag_missing t ~now:t.cur_round key bcast_round)
      (List.sort compare overdue)
  end

let violations t = List.rev t.violations_rev

let ack_latencies t = List.rev t.acks_rev

let rounds_seen t = t.cur_round + 1
