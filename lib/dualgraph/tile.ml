type t = {
  tiles : int;
  owner : int array; (* vertex -> tile *)
  members : int array array; (* tile -> vertices, ascending *)
}

let tiles t = t.tiles
let owner t v = t.owner.(v)
let members t i = t.members.(i)

(* [ranking] lists the vertices in spatial order; tile i takes the
   slice [i*n/k, (i+1)*n/k), so sizes differ by at most one. *)
let of_ranking ~n ~tiles ranking =
  let owner = Array.make (max n 1) 0 in
  let members =
    Array.init tiles (fun i ->
        let lo = i * n / tiles and hi = (i + 1) * n / tiles in
        let mem = Array.sub ranking lo (hi - lo) in
        Array.sort compare mem;
        Array.iter (fun v -> owner.(v) <- i) mem;
        mem)
  in
  { tiles; owner; members }

let of_dual ?(tiles = 1) dual =
  let n = Dual.n dual in
  let k = min (max 1 tiles) (max 1 n) in
  match Dual.embedding dual with
  | Some emb when n > 0 && k > 1 ->
      (* Stable counting sort of the vertices by grid column: within a
         column ids stay ascending, and consecutive ranking slices are
         consecutive stripes of columns. *)
      let grid = Grid.create ~cell:(Float.max (Dual.r dual) 1.0) emb in
      let cols = Grid.cols grid in
      let col v = Grid.cell_index grid v mod cols in
      let counts = Array.make (cols + 1) 0 in
      for v = 0 to n - 1 do
        let c = col v in
        counts.(c + 1) <- counts.(c + 1) + 1
      done;
      for c = 1 to cols do
        counts.(c) <- counts.(c) + counts.(c - 1)
      done;
      let ranking = Array.make n 0 in
      for v = 0 to n - 1 do
        let c = col v in
        ranking.(counts.(c)) <- v;
        counts.(c) <- counts.(c) + 1
      done;
      of_ranking ~n ~tiles:k ranking
  | _ -> of_ranking ~n ~tiles:k (Array.init n Fun.id)

let cross_edges t dual =
  let crossing = ref 0 in
  let g' = Dual.g' dual in
  let off = Graph.csr_offsets g' and adj = Graph.csr_neighbors g' in
  for u = 0 to Dual.n dual - 1 do
    for j = off.(u) to off.(u + 1) - 1 do
      let v = adj.(j) in
      if u < v && t.owner.(u) <> t.owner.(v) then incr crossing
    done
  done;
  !crossing

let pp ppf t =
  Format.fprintf ppf "tiles:";
  Array.iteri
    (fun i mem -> Format.fprintf ppf "%s%d:%d" (if i > 0 then " " else " ") i
        (Array.length mem))
    t.members
