module Dual = Dualgraph.Dual
module Trace = Radiosim.Trace

type report = {
  rounds_observed : int;
  validity_violations : int;
  ack_count : int;
  late_ack_count : int;
  missing_ack_count : int;
  max_ack_latency : int;
  reliability_attempts : int;
  reliability_failures : int;
  progress_opportunities : int;
  progress_failures : int;
  progress_latencies : int list;
}

let reliability_rate r =
  if r.reliability_attempts = 0 then 1.0
  else
    float_of_int (r.reliability_attempts - r.reliability_failures)
    /. float_of_int r.reliability_attempts

let progress_rate r =
  if r.progress_opportunities = 0 then 1.0
  else
    float_of_int (r.progress_opportunities - r.progress_failures)
    /. float_of_int r.progress_opportunities

type monitor = {
  dual : Dual.t;
  params : Params.t;
  n : int;
  t_ack : int;
  faults : Faults.Plan.t option;
      (** survivor-relative accounting: claims are scoped to nodes alive
          for the full obligation window *)
  (* activity tracking *)
  active : Messages.payload option array;
  bcast_round : (Messages.payload, int) Hashtbl.t;
  receivers : (Messages.payload, (int, unit) Hashtbl.t) Hashtbl.t;
  (* per-phase progress tracking *)
  mutable active_all : bool array;  (** active in every round of this phase *)
  mutable first_reception : int array;
      (** offset of the first qualifying reception this phase, -1 if none *)
  (* accumulators *)
  mutable rounds_observed : int;
  mutable validity_violations : int;
  mutable ack_count : int;
  mutable late_ack_count : int;
  mutable max_ack_latency : int;
  mutable reliability_attempts : int;
  mutable reliability_failures : int;
  mutable progress_opportunities : int;
  mutable progress_failures : int;
  mutable progress_latencies_rev : int list;
  mutable finished : bool;
}

let monitor ?faults ~dual ~params ~env:_ () =
  let n = Dual.n dual in
  {
    dual;
    params;
    n;
    t_ack = Params.t_ack_rounds params;
    faults;
    active = Array.make n None;
    bcast_round = Hashtbl.create 32;
    receivers = Hashtbl.create 32;
    active_all = Array.make n true;
    first_reception = Array.make n (-1);
    rounds_observed = 0;
    validity_violations = 0;
    ack_count = 0;
    late_ack_count = 0;
    max_ack_latency = 0;
    reliability_attempts = 0;
    reliability_failures = 0;
    progress_opportunities = 0;
    progress_failures = 0;
    progress_latencies_rev = [];
    finished = false;
  }

(* Survivor predicate over an inclusive round window; everyone survives
   when no plan is attached. *)
let survivor m ~node ~from ~until =
  match m.faults with
  | None -> true
  | Some plan -> Faults.Plan.alive_through plan ~node ~from ~until

let close_phase m =
  (* Called right after the phase's last round was observed, so the phase
     covered rounds [rounds_observed - phase_len, rounds_observed - 1]. *)
  let phase_hi = m.rounds_observed - 1 in
  let phase_lo = m.rounds_observed - m.params.Params.phase_len in
  for u = 0 to m.n - 1 do
    let opportunity =
      Dual.fold_reliable_neighbors m.dual u ~init:false ~f:(fun acc v ->
          acc || m.active_all.(v))
    in
    (* t_prog claims are survivor-relative: only receivers alive for the
       whole phase owe a reception (active_all already excludes senders
       that died mid-phase, via the per-round activity check). *)
    if opportunity && survivor m ~node:u ~from:phase_lo ~until:phase_hi
    then begin
      m.progress_opportunities <- m.progress_opportunities + 1;
      if m.first_reception.(u) < 0 then
        m.progress_failures <- m.progress_failures + 1
      else
        m.progress_latencies_rev <-
          m.first_reception.(u) :: m.progress_latencies_rev
    end
  done;
  Array.fill m.active_all 0 m.n true;
  Array.fill m.first_reception 0 m.n (-1)

let observe m (record : (Messages.msg, Messages.lb_input, Messages.lb_output) Trace.round_record) =
  assert (not m.finished);
  let round = record.Trace.round in
  (* 1. bcast inputs make their node active from this round on. *)
  Array.iteri
    (fun u ins ->
      List.iter
        (fun (Messages.Bcast payload) ->
          m.active.(u) <- Some payload;
          Hashtbl.replace m.bcast_round payload round)
        ins)
    record.Trace.inputs;
  (* 2. clean receptions of data from an actively-broadcasting source are
     qualifying progress receptions. *)
  Array.iteri
    (fun u delivered ->
      match delivered with
      | Some (Messages.Data payload) -> (
          match m.active.(payload.Messages.src) with
          | Some active_payload
            when Messages.payload_equal active_payload payload ->
              if m.first_reception.(u) < 0 then
                m.first_reception.(u) <-
                  round mod m.params.Params.phase_len
          | _ -> ())
      | Some (Messages.Seed_msg _) | None -> ())
    record.Trace.delivered;
  (* 3a. recv outputs: validity + reliability bookkeeping. *)
  Array.iteri
    (fun u outs ->
      List.iter
        (fun out ->
          match out with
          | Messages.Recv payload ->
              let src = payload.Messages.src in
              let valid =
                src <> u
                && Dualgraph.Graph.mem_edge (Dual.g' m.dual) u src
                && (match m.active.(src) with
                   | Some p -> Messages.payload_equal p payload
                   | None -> false)
              in
              if not valid then m.validity_violations <- m.validity_violations + 1;
              let set =
                match Hashtbl.find_opt m.receivers payload with
                | Some set -> set
                | None ->
                    let set = Hashtbl.create 8 in
                    Hashtbl.add m.receivers payload set;
                    set
              in
              Hashtbl.replace set u ()
          | Messages.Ack _ | Messages.Committed _ -> ())
        outs)
    record.Trace.outputs;
  (* 3b. ack outputs: latency + reliability verdicts; the node stays
     active through the ack round itself. *)
  let acked = ref [] in
  Array.iteri
    (fun u outs ->
      List.iter
        (fun out ->
          match out with
          | Messages.Ack payload ->
              acked := u :: !acked;
              m.ack_count <- m.ack_count + 1;
              let b_opt = Hashtbl.find_opt m.bcast_round payload in
              (match b_opt with
              | Some b ->
                  let latency = round - b in
                  if latency > m.max_ack_latency then m.max_ack_latency <- latency;
                  (* A sender that was down inside [b, round] owes no
                     timeliness claim for this bcast. *)
                  if latency > m.t_ack && survivor m ~node:u ~from:b ~until:round
                  then m.late_ack_count <- m.late_ack_count + 1;
                  Hashtbl.remove m.bcast_round payload
              | None -> ());
              m.reliability_attempts <- m.reliability_attempts + 1;
              let received_by =
                match Hashtbl.find_opt m.receivers payload with
                | Some set -> set
                | None -> Hashtbl.create 1
              in
              (* Reliability is owed to the neighbors alive for the whole
                 [bcast, ack] window; the dead owe and are owed nothing. *)
              let from = match b_opt with Some b -> b | None -> round in
              let all_neighbors_got_it =
                Dual.fold_reliable_neighbors m.dual u ~init:true ~f:(fun acc v ->
                    acc
                    && ((not (survivor m ~node:v ~from ~until:round))
                       || Hashtbl.mem received_by v))
              in
              if not all_neighbors_got_it then
                m.reliability_failures <- m.reliability_failures + 1
          | Messages.Recv _ | Messages.Committed _ -> ())
        outs)
    record.Trace.outputs;
  (* 4. progress: a node must be active (and alive) in every round of the
     phase. *)
  for v = 0 to m.n - 1 do
    if m.active.(v) = None then m.active_all.(v) <- false
  done;
  (match m.faults with
  | None -> ()
  | Some plan ->
      for v = 0 to m.n - 1 do
        if not (Faults.Plan.alive plan ~node:v ~round) then
          m.active_all.(v) <- false
      done);
  (* 5. acked senders stop being active after this round. *)
  List.iter (fun u -> m.active.(u) <- None) !acked;
  m.rounds_observed <- m.rounds_observed + 1;
  if m.rounds_observed mod m.params.Params.phase_len = 0 then close_phase m

let finish m =
  if not m.finished then begin
    m.finished <- true
    (* A trailing partial phase carries no progress obligations; pending
       acks are judged against the rounds that actually elapsed. *)
  end;
  let missing_ack_count =
    Hashtbl.fold
      (fun payload b acc ->
        (* The obligation window is [b, b + t_ack] (clipped to the run);
           a sender down anywhere inside it is exempt. *)
        let deadline = min (m.rounds_observed - 1) (b + m.t_ack) in
        if
          m.rounds_observed - b > m.t_ack
          && survivor m ~node:payload.Messages.src ~from:b ~until:deadline
        then acc + 1
        else acc)
      m.bcast_round 0
  in
  {
    rounds_observed = m.rounds_observed;
    validity_violations = m.validity_violations;
    ack_count = m.ack_count;
    late_ack_count = m.late_ack_count;
    missing_ack_count;
    max_ack_latency = m.max_ack_latency;
    reliability_attempts = m.reliability_attempts;
    reliability_failures = m.reliability_failures;
    progress_opportunities = m.progress_opportunities;
    progress_failures = m.progress_failures;
    progress_latencies = List.rev m.progress_latencies_rev;
  }

let check_trace ?faults ~dual ~params ~env trace =
  let m = monitor ?faults ~dual ~params ~env () in
  Trace.iter (observe m) trace;
  finish m
