type counter = { mutable count : int }

type gauge = { mutable value : float }

type raw = {
  mutable nodes : int array;  (** -1 = unattributed *)
  mutable values : float array;
  mutable len : int;
}

(* Raw keeps every sample (per-node breakdowns, exact percentiles);
   Bounded folds samples into a Stats.Quantile log-histogram — O(1)
   memory however long the run, which is what long-horizon serving runs
   register (docs/LOAD.md). *)
type histogram = Raw of raw | Bounded of Stats.Quantile.t

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order_rev : string list;  (** creation order, reversed *)
}

let create () = { tbl = Hashtbl.create 16; order_rev = [] }

let register t name make describe =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add t.tbl name m;
      t.order_rev <- name :: t.order_rev;
      ignore describe;
      m

let counter t name =
  match register t name (fun () -> Counter { count = 0 }) "counter" with
  | Counter c -> c
  | Gauge _ | Histogram _ ->
      invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)

let incr ?(by = 1) c = c.count <- c.count + by

let counter_value c = c.count

let gauge t name =
  match register t name (fun () -> Gauge { value = 0.0 }) "gauge" with
  | Gauge g -> g
  | Counter _ | Histogram _ ->
      invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name)

let set g v = g.value <- v

let gauge_value g = g.value

let histogram t name =
  match
    register t name
      (fun () -> Histogram (Raw { nodes = [||]; values = [||]; len = 0 }))
      "histogram"
  with
  | Histogram (Raw _ as h) -> h
  | Histogram (Bounded _) ->
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %S is a bounded histogram" name)
  | Counter _ | Gauge _ ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)

let bounded_histogram ?sub ?lo ?hi t name =
  match
    register t name
      (fun () -> Histogram (Bounded (Stats.Quantile.create ?sub ?lo ?hi ())))
      "bounded histogram"
  with
  | Histogram (Bounded _ as h) -> h
  | Histogram (Raw _) ->
      invalid_arg
        (Printf.sprintf "Metrics.bounded_histogram: %S is a raw histogram" name)
  | Counter _ | Gauge _ ->
      invalid_arg
        (Printf.sprintf "Metrics.bounded_histogram: %S is not a histogram" name)

let observe ?(node = -1) h v =
  match h with
  | Bounded q -> Stats.Quantile.observe q v
  | Raw h ->
      let cap = Array.length h.values in
      if h.len = cap then begin
        let fresh_cap = max 64 (2 * cap) in
        let values = Array.make fresh_cap 0.0 in
        let nodes = Array.make fresh_cap (-1) in
        Array.blit h.values 0 values 0 h.len;
        Array.blit h.nodes 0 nodes 0 h.len;
        h.values <- values;
        h.nodes <- nodes
      end;
      h.values.(h.len) <- v;
      h.nodes.(h.len) <- node;
      h.len <- h.len + 1

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary_of_samples samples =
  let n = Array.length samples in
  if n = 0 then None
  else begin
    Array.sort compare samples;
    (* nearest-rank: the ⌈q·n⌉-th smallest sample *)
    let pct q =
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      samples.(max 0 (min (n - 1) (rank - 1)))
    in
    let sum = Array.fold_left ( +. ) 0.0 samples in
    Some
      {
        count = n;
        sum;
        min = samples.(0);
        max = samples.(n - 1);
        mean = sum /. float_of_int n;
        p50 = pct 0.50;
        p90 = pct 0.90;
        p99 = pct 0.99;
      }
  end

let summary h =
  match h with
  | Raw h -> summary_of_samples (Array.sub h.values 0 h.len)
  | Bounded q ->
      let module Q = Stats.Quantile in
      if Q.count q = 0 then None
      else
        Some
          {
            count = Q.count q;
            sum = Q.sum q;
            min = Q.min_value q;
            max = Q.max_value q;
            mean = Q.mean q;
            p50 = Q.quantile q 0.50;
            p90 = Q.quantile q 0.90;
            p99 = Q.quantile q 0.99;
          }

let by_node histogram =
  match histogram with
  | Bounded _ -> []
  | Raw h ->
  let per_node = Hashtbl.create 16 in
  for i = 0 to h.len - 1 do
    let node = h.nodes.(i) in
    if node >= 0 then begin
      let samples =
        match Hashtbl.find_opt per_node node with
        | Some l -> l
        | None -> ref []
      in
      samples := h.values.(i) :: !samples;
      Hashtbl.replace per_node node samples
    end
  done;
  Hashtbl.fold
    (fun node samples acc ->
      match summary_of_samples (Array.of_list !samples) with
      | Some s -> (node, s) :: acc
      | None -> acc)
    per_node []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type snapshot = {
  label : string;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * summary option) list;
}

let snapshot ~label t =
  let names = List.rev t.order_rev in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | Counter c -> counters := (name, c.count) :: !counters
      | Gauge g -> gauges := (name, g.value) :: !gauges
      | Histogram h -> histograms := (name, summary h) :: !histograms)
    names;
  {
    label;
    counters = List.rev !counters;
    gauges = List.rev !gauges;
    histograms = List.rev !histograms;
  }

let float_json v =
  if Float.is_nan v then "null" else Printf.sprintf "%.6g" v

let snapshot_to_json s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf {|{"label":"%s"|} (Json.escape s.label));
  let obj name fields =
    Buffer.add_string buf (Printf.sprintf {|,"%s":{|} name);
    List.iteri
      (fun i field ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf field)
      fields;
    Buffer.add_char buf '}'
  in
  obj "counters"
    (List.map
       (fun (name, v) -> Printf.sprintf {|"%s":%d|} (Json.escape name) v)
       s.counters);
  obj "gauges"
    (List.map
       (fun (name, v) ->
         Printf.sprintf {|"%s":%s|} (Json.escape name) (float_json v))
       s.gauges);
  obj "histograms"
    (List.map
       (fun (name, summary) ->
         match summary with
         | None -> Printf.sprintf {|"%s":null|} (Json.escape name)
         | Some s ->
             Printf.sprintf
               {|"%s":{"count":%d,"sum":%s,"min":%s,"max":%s,"mean":%s,"p50":%s,"p90":%s,"p99":%s}|}
               (Json.escape name) s.count (float_json s.sum) (float_json s.min)
               (float_json s.max) (float_json s.mean) (float_json s.p50)
               (float_json s.p90) (float_json s.p99))
       s.histograms);
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_json ~path ?(git_rev = "unknown") snapshots =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"git_rev\": \"%s\",\n  \"snapshots\": [\n"
        (Json.escape git_rev);
      List.iteri
        (fun i s ->
          Printf.fprintf oc "    %s%s\n" (snapshot_to_json s)
            (if i = List.length snapshots - 1 then "" else ","))
        snapshots;
      Printf.fprintf oc "  ]\n}\n")
