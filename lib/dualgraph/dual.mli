(** Dual graphs [(G, G')] with [E ⊆ E'] (paper §2).

    [G] holds the reliable links; [G' \ G] the unreliable ones.  A dual
    graph may carry an embedding witnessing the r-geographic property.
    [delta] and [delta'] are the degree bounds Δ and Δ' that the paper
    assumes every process knows (but {e not} n). *)

type t

val create :
  ?embedding:Embedding.t ->
  ?r:float ->
  ?validate:bool ->
  g:Graph.t ->
  g':Graph.t ->
  unit ->
  t
(** Builds a dual graph.  Raises [Invalid_argument] if the vertex sets
    differ or [E ⊈ E'] (the subset check is a free byproduct of the
    [E' \ E] enumeration and always runs).  If [embedding] is given, [r]
    defaults to [1.0] and the r-geographic conditions are {e checked}
    (raises on violation).  The check walks a unit-cell {!Grid}, so it
    costs O(|E'| + n · local density) rather than O(n²).
    [~validate:false] skips that geometric check; it is meant for
    callers that guarantee the property by construction (the
    {!Geometric} generators, whose scan already classified every pair —
    {!is_r_geographic} can always re-check after the fact). *)

val g : t -> Graph.t
(** The reliable graph G. *)

val g' : t -> Graph.t
(** The full graph G' (reliable plus unreliable edges). *)

val n : t -> int

val r : t -> float
(** The geographic parameter; [1.0] when no embedding is attached. *)

val embedding : t -> Embedding.t option

val delta : t -> int
(** Δ: an upper bound on [|N_G(u) ∪ {u}|] over all u (the exact maximum
    for this topology). *)

val delta' : t -> int
(** Δ': the same bound for G'. *)

val unreliable_edges : t -> (int * int) array
(** The edges of [E' \ E], each once with [u < v], in a fixed order.  The
    array index is the edge's identity for link schedulers. *)

val unreliable_count : t -> int
(** [|E' \ E|] — the number of unreliable edges (and the size of the
    activation buffers link schedulers fill). *)

val reliable_neighbors : t -> int -> int array
(** [N_G(u)], sorted; freshly allocated per call.  Hot paths should use
    {!iter_reliable_neighbors} or the CSR accessors of [g t]. *)

val all_neighbors : t -> int -> int array
(** [N_G'(u)], sorted; freshly allocated per call.  Hot paths should use
    {!iter_all_neighbors} or the CSR accessors of [g' t]. *)

val iter_reliable_neighbors : t -> int -> (int -> unit) -> unit
(** Allocation-free iteration over [N_G(u)] in ascending order. *)

val iter_all_neighbors : t -> int -> (int -> unit) -> unit
(** Allocation-free iteration over [N_G'(u)] in ascending order. *)

val fold_reliable_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Allocation-free fold over [N_G(u)] in ascending order. *)

val fold_all_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Allocation-free fold over [N_G'(u)] in ascending order. *)

val unreliable_incidence_csr : t -> int array * int array * int array
(** [(offsets, nbr, edge)] — the unreliable-edge incidence in flat CSR
    form, precomputed at creation.  Node [u]'s incident unreliable edges
    occupy slots [offsets.(u) .. offsets.(u+1) - 1]: [nbr.(i)] is the far
    endpoint and [edge.(i)] the index into {!unreliable_edges}.  Owned by
    the dual graph — do not mutate. *)

val iter_unreliable_incident : t -> int -> (int -> int -> unit) -> unit
(** [iter_unreliable_incident t u f] applies [f nbr edge] to each
    unreliable edge incident to [u], without allocating. *)

val is_r_geographic : t -> bool
(** Re-checks the r-geographic conditions (always true for dual graphs
    built with an embedding; false is possible only for hand-built
    embeddings attached after the fact). *)

val pp : Format.formatter -> t -> unit
