(* Flat CSR adjacency: [adj.(offsets.(u)) .. adj.(offsets.(u+1) - 1)] is
   the sorted neighbor list of [u].  One boxed array per graph instead of
   one per vertex keeps the engine's inner loop on a single contiguous
   block, and sortedness gives O(log deg) edge membership with no
   auxiliary hash table. *)
type t = {
  size : int;
  offsets : int array;
  adj : int array;
}

(* Monomorphic order on undirected edges normalized to (lo, hi). *)
let compare_edge (u1, v1) (u2, v2) =
  if u1 <> u2 then Int.compare u1 u2 else Int.compare v1 v2

(* Normalized, sorted, deduplicated edge array from a raw edge list. *)
let normalize_edges ~n ~who edges =
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "%s: vertex %d out of range [0,%d)" who v n)
  in
  let arr =
    Array.of_list
      (List.map
         (fun (u, v) ->
           check u;
           check v;
           if u = v then invalid_arg (who ^ ": self-loop");
           if u < v then (u, v) else (v, u))
         edges)
  in
  Array.sort compare_edge arr;
  let m = Array.length arr in
  if m = 0 then arr
  else begin
    (* in-place adjacent dedup *)
    let w = ref 1 in
    for i = 1 to m - 1 do
      if compare_edge arr.(i) arr.(!w - 1) <> 0 then begin
        arr.(!w) <- arr.(i);
        incr w
      end
    done;
    Array.sub arr 0 !w
  end

(* Build the CSR from a normalized (sorted, unique, lo < hi) edge
   sequence given as accessors.  Filling in sorted edge order keeps
   every vertex slice sorted: all of [u]'s smaller neighbors arrive
   while [u] plays the hi role (ordered by lo), before any larger
   neighbor arrives with [u] as lo (ordered by hi). *)
let build_csr ~n ~len ~u_at ~v_at =
  let deg = Array.make (n + 1) 0 in
  for i = 0 to len - 1 do
    let u = u_at i and v = v_at i in
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1
  done;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adj = Array.make offsets.(n) 0 in
  let cursor = Array.sub offsets 0 n in
  for i = 0 to len - 1 do
    let u = u_at i and v = v_at i in
    adj.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    adj.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  { size = n; offsets; adj }

let of_normalized ~n edges =
  build_csr ~n ~len:(Array.length edges)
    ~u_at:(fun i -> fst edges.(i))
    ~v_at:(fun i -> snd edges.(i))

let create ~n ~edges =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  of_normalized ~n (normalize_edges ~n ~who:"Graph.create" edges)

let of_sorted_arrays ~n ~us ~vs ~len =
  if n < 0 then invalid_arg "Graph.of_sorted_arrays: negative vertex count";
  if len < 0 || len > Array.length us || len > Array.length vs then
    invalid_arg "Graph.of_sorted_arrays: length exceeds the arrays";
  for i = 0 to len - 1 do
    let u = us.(i) and v = vs.(i) in
    if u < 0 || v >= n || u >= v then
      invalid_arg "Graph.of_sorted_arrays: edges must satisfy 0 <= u < v < n";
    if i > 0 && (us.(i - 1) > u || (us.(i - 1) = u && vs.(i - 1) >= v)) then
      invalid_arg "Graph.of_sorted_arrays: edges must be strictly sorted"
  done;
  build_csr ~n ~len ~u_at:(Array.get us) ~v_at:(Array.get vs)

let empty n = create ~n ~edges:[]

let n t = t.size

let edge_count t = Array.length t.adj / 2

let degree t u = t.offsets.(u + 1) - t.offsets.(u)

let neighbors t u = Array.sub t.adj t.offsets.(u) (degree t u)

let iter_neighbors t u f =
  for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    f (Array.unsafe_get t.adj i)
  done

let fold_neighbors t u ~init ~f =
  let acc = ref init in
  for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    acc := f !acc (Array.unsafe_get t.adj i)
  done;
  !acc

let csr_offsets t = t.offsets

let csr_neighbors t = t.adj

(* Binary search of [v] in the sorted slice of [u]. *)
let mem_dir t u v =
  let lo = ref t.offsets.(u) and hi = ref (t.offsets.(u + 1)) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    let w = Array.unsafe_get t.adj mid in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid
  done;
  !found

let mem_edge t u v =
  u <> v
  && u >= 0 && u < t.size
  && v >= 0 && v < t.size
  && if degree t u <= degree t v then mem_dir t u v else mem_dir t v u

let edges t =
  (* CSR slices are sorted, so scanning vertices in order and keeping the
     (u < v) direction yields the canonical sorted edge list directly —
     no decode, no polymorphic compare. *)
  let acc = ref [] in
  for u = t.size - 1 downto 0 do
    for i = t.offsets.(u + 1) - 1 downto t.offsets.(u) do
      let v = t.adj.(i) in
      if u < v then acc := (u, v) :: !acc
    done
  done;
  !acc

let max_closed_degree t =
  let best = ref 1 in
  for u = 0 to t.size - 1 do
    best := max !best (degree t u + 1)
  done;
  if t.size = 0 then 0 else !best

let is_subgraph g g' =
  n g = n g'
  && List.for_all (fun (u, v) -> mem_edge g' u v) (edges g)

let union a b =
  if a.size <> b.size then invalid_arg "Graph.union: vertex count mismatch";
  (* Per-vertex two-pointer merge of the sorted CSR slices: linear in
     |E_a| + |E_b|, no re-hashing or re-sorting of the combined edge
     list. *)
  let n = a.size in
  let merged = Array.make (Array.length a.adj + Array.length b.adj) 0 in
  let offsets = Array.make (n + 1) 0 in
  let w = ref 0 in
  for u = 0 to n - 1 do
    let i = ref a.offsets.(u) and j = ref b.offsets.(u) in
    let ia_end = a.offsets.(u + 1) and ib_end = b.offsets.(u + 1) in
    while !i < ia_end || !j < ib_end do
      let next =
        if !i >= ia_end then begin
          let v = b.adj.(!j) in
          incr j;
          v
        end
        else if !j >= ib_end then begin
          let v = a.adj.(!i) in
          incr i;
          v
        end
        else begin
          let va = a.adj.(!i) and vb = b.adj.(!j) in
          if va < vb then begin
            incr i;
            va
          end
          else if vb < va then begin
            incr j;
            vb
          end
          else begin
            incr i;
            incr j;
            va
          end
        end
      in
      merged.(!w) <- next;
      incr w
    done;
    offsets.(u + 1) <- !w
  done;
  { size = n; offsets; adj = Array.sub merged 0 !w }

let bfs_distances t src =
  let dist = Array.make t.size max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    iter_neighbors t u (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let is_connected t =
  t.size <= 1
  || Array.for_all (fun d -> d < max_int) (bfs_distances t 0)

let diameter t =
  if t.size <= 1 then 0
  else begin
    if not (is_connected t) then invalid_arg "Graph.diameter: disconnected graph";
    let best = ref 0 in
    for u = 0 to t.size - 1 do
      Array.iter (fun d -> if d > !best then best := d) (bfs_distances t u)
    done;
    !best
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@]" t.size (edge_count t)
