(* Command-line driver for the local broadcast layer.

   Subcommands:
     topo   — generate a dual graph and describe it
     seed   — run seed agreement and report the Seed spec outcome
     run    — run LBAlg under an oblivious scheduler and report the LB spec
     flood  — run the abstract-MAC-layer flood application
     trace  — print a round-by-round execution transcript
     verify — CI-style specification check, non-zero exit on failure
     scale-smoke — tiled engine at size, with a tiling-invariant trace hash
     serve  — open-loop multi-message serving over the MAC (load smoke)
     tournament — race back-off strategies (and LBAlg) with ranked tables

   Every run is a pure function of --seed, so reported numbers are
   reproducible. *)

open Core
open Cmdliner
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module L = Localcast

(* --- shared arguments --- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc:"Master random seed.")

let n_arg =
  Arg.(value & opt int 30 & info [ "n"; "nodes" ] ~docv:"INT" ~doc:"Number of nodes.")

let width_arg =
  Arg.(
    value
    & opt float 4.0
    & info [ "width" ] ~docv:"FLOAT" ~doc:"Field width (and height).")

let r_arg =
  Arg.(
    value
    & opt float 1.5
    & info [ "r" ] ~docv:"FLOAT" ~doc:"Geographic parameter r (>= 1).")

let gray_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "gray" ] ~docv:"P"
        ~doc:"Probability a grey-zone pair gets an unreliable edge.")

let eps_arg =
  Arg.(
    value
    & opt float 0.1
    & info [ "eps" ] ~docv:"FLOAT" ~doc:"Error bound epsilon.")

let topology_arg =
  Arg.(
    value
    & opt (enum [ ("random", `Random); ("grid", `Grid); ("clique", `Clique);
                  ("line", `Line); ("gray-cluster", `Gray) ])
        `Random
    & info [ "topology" ] ~docv:"KIND"
        ~doc:"Topology: random, grid, clique, line or gray-cluster.")

let scheduler_arg =
  Arg.(
    value
    & opt (enum [ ("reliable-only", `Reliable); ("all-edges", `All);
                  ("bernoulli", `Bernoulli);
                  ("bernoulli-sparse", `BernoulliSparse);
                  ("flicker", `Flicker) ])
        `Bernoulli
    & info [ "scheduler" ] ~docv:"KIND"
        ~doc:
          "Oblivious link scheduler: reliable-only, all-edges, bernoulli, \
           bernoulli-sparse (same distribution as bernoulli, resolved in \
           time proportional to the active set — the right choice for low \
           --link-p sweeps on large fields) or flicker.")

let link_p_arg =
  Arg.(
    value & opt float 0.5
    & info [ "link-p" ] ~docv:"P"
        ~doc:
          "Per-round inclusion probability of each unreliable edge under the \
           bernoulli and bernoulli-sparse schedulers (ignored by the \
           others).")

let phases_arg =
  Arg.(
    value & opt int 6
    & info [ "phases" ] ~docv:"INT" ~doc:"Number of LBAlg phases to simulate.")

let load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:"Load the topology from a Dualgraph.Io file instead of generating it.")

let make_topology ?load kind ~seed ~n ~width ~r ~gray =
  match load with
  | Some filename -> Dualgraph.Io.load filename
  | None ->
  let rng = Prng.Rng.of_int seed in
  match kind with
  | `Random ->
      Geo.random_field ~rng ~n ~width ~height:width ~r ~gray_g':gray ()
  | `Grid ->
      let side = max 1 (int_of_float (Float.round (sqrt (float_of_int n)))) in
      Geo.grid ~rows:side ~cols:side ~spacing:0.9 ~r ~gray_g':gray ~rng ()
  | `Clique -> Geo.clique n
  | `Line -> Geo.line ~n ~spacing:0.9 ~r ()
  | `Gray -> Geo.gray_cluster ~k:(max 1 (n - 2)) ~r:(Float.max r 1.41) ()

let make_scheduler kind ~seed ~p =
  match kind with
  | `Reliable -> Sch.reliable_only
  | `All -> Sch.all_edges
  | `Bernoulli -> Sch.bernoulli ~seed ~p
  | `BernoulliSparse -> Sch.bernoulli_sparse ~seed ~p
  | `Flicker -> Sch.flicker ~period:16 ~duty:8

(* --- topo --- *)

let topo_cmd =
  let render_arg =
    Arg.(value & flag & info [ "render" ] ~doc:"Print an ASCII sketch of the field.")
  in
  let histogram_arg =
    Arg.(value & flag & info [ "degrees" ] ~doc:"Print the reliable-degree histogram.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the topology to FILE (Dualgraph.Io format).")
  in
  let run topology seed n width r gray load render degrees save =
    let dual = make_topology ?load topology ~seed ~n ~width ~r ~gray in
    Format.printf "%a@." Dual.pp dual;
    (match Dual.embedding dual with
    | Some _ ->
        let regions = Dualgraph.Region.of_dual dual in
        Format.printf "occupied half-unit regions: %d (largest holds %d nodes)@."
          (Dualgraph.Region.region_count regions)
          (Dualgraph.Region.max_members regions)
    | None -> ());
    if Dualgraph.Graph.is_connected (Dual.g dual) then
      Format.printf "G is connected, diameter %d@."
        (Dualgraph.Graph.diameter (Dual.g dual))
    else Format.printf "G is disconnected@.";
    if render then
      (match Dual.embedding dual with
      | Some _ -> print_string (Dualgraph.Render.field dual)
      | None -> print_endline "(no embedding to render)");
    if degrees then print_string (Dualgraph.Render.degree_histogram dual);
    match save with
    | Some filename ->
        Dualgraph.Io.save dual ~filename;
        Format.printf "saved to %s@." filename
    | None -> ()
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Generate, describe, render or save a dual graph topology.")
    Term.(
      const run $ topology_arg $ seed_arg $ n_arg $ width_arg $ r_arg $ gray_arg
      $ load_arg $ render_arg $ histogram_arg $ save_arg)

(* --- seed --- *)

let seed_cmd =
  let run topology seed n width r gray eps load =
    let dual = make_topology ?load topology ~seed ~n ~width ~r ~gray in
    let n = Dual.n dual in
    Format.printf "%a@." Dual.pp dual;
    let params = L.Params.make_seed ~eps ~delta:(Dual.delta dual) ~kappa:32 () in
    Format.printf "%a@." L.Params.pp_seed params;
    let rng = Prng.Rng.of_int (seed + 1) in
    let nodes = L.Seed_alg.network params ~rng ~n in
    let trace, observer = Radiosim.Trace.recorder () in
    let (_ : int) =
      Radiosim.Engine.run ~observer ~dual
        ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
        ~nodes
        ~env:(Radiosim.Env.null ~name:"seed" ())
        ~rounds:(L.Seed_alg.duration params)
        ()
    in
    let decisions = L.Seed_spec.decisions_of_trace trace ~n in
    let delta_bound =
      max 1 (int_of_float (Float.ceil (6.0 *. r *. r *. (log (1.0 /. eps) /. log 2.0))))
    in
    let report = L.Seed_spec.check ~dual ~delta_bound ~decisions in
    Format.printf
      "well-formed=%b consistent=%b  max owners per neighborhood=%d (bound \
       delta=%d, violations=%d)@."
      report.L.Seed_spec.well_formed report.L.Seed_spec.consistent
      report.L.Seed_spec.max_owners delta_bound report.L.Seed_spec.violation_count
  in
  Cmd.v
    (Cmd.info "seed" ~doc:"Run the SeedAlg seed agreement protocol.")
    Term.(
      const run $ topology_arg $ seed_arg $ n_arg $ width_arg $ r_arg $ gray_arg
      $ eps_arg $ load_arg)

(* --- run --- *)

let run_cmd =
  let senders_arg =
    Arg.(
      value & opt (list int) [ 0 ]
      & info [ "senders" ] ~docv:"IDS" ~doc:"Comma-separated sender vertices.")
  in
  let tack_arg =
    Arg.(
      value & opt (some int) None
      & info [ "tack-phases" ] ~docv:"INT"
          ~doc:"Override the derived Tack phase count.")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:"Write the run's full event stream to FILE as JSONL.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write per-phase metric snapshots to FILE (the BENCH_obs.json \
             artifact format).")
  in
  let audit_arg =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Run the online spec auditor over the event stream and report \
             t_ack / t_prog deadline misses and delta-bound breaches.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Inject faults: ';'-separated clauses crash:NODE@ROUND, \
             restart:NODE@ROUND, jam:NODE@FROM-UNTIL or \
             churn:RATE[,DOWNTIME] (e.g. 'crash:3@10;restart:3@40' or \
             'churn:0.002,120').  Churn is derived deterministically from \
             --seed; spec accounting becomes survivor-relative (see \
             docs/FAULTS.md).")
  in
  let reception_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "reception" ] ~docv:"SPEC"
          ~doc:
            "Reception model: 'dual' (the paper's dual-graph collision rule, \
             the default) or 'sinr[:key=value,...]' — physical interference \
             over the topology's embedding, with keys alpha, beta, noise, \
             power, jam, near (e.g. 'sinr:alpha=4,beta=2').  See \
             docs/RECEPTION.md.")
  in
  let run topology scheduler link_p seed n width r gray eps phases senders tack
      load events metrics_path audit faults_spec reception_spec =
    let dual = make_topology ?load topology ~seed ~n ~width ~r ~gray in
    let n = Dual.n dual in
    Format.printf "%a@." Dual.pp dual;
    let params = L.Params.of_dual ?tack_phases:tack ~eps1:eps dual in
    Format.printf "%a@.@." L.Params.pp params;
    let rng = Prng.Rng.of_int (seed + 1) in
    let nodes = L.Lb_alg.network params ~rng ~n in
    let senders = List.filter (fun v -> v >= 0 && v < n) senders in
    let envt = L.Lb_env.saturate ~n ~senders () in
    let rounds = phases * params.L.Params.phase_len in
    let faults =
      match faults_spec with
      | None -> None
      | Some spec -> (
          match Faults.Plan.of_spec ~seed ~n ~rounds spec with
          | Ok plan ->
              Format.printf "%a@." Faults.Plan.pp plan;
              Some plan
          | Error msg ->
              Format.eprintf "localcast: bad --faults spec: %s@." msg;
              exit 2)
    in
    let revive =
      match faults with
      | None -> None
      | Some _ -> Some (L.Service.reviver ~params ~seed ())
    in
    let reception =
      match reception_spec with
      | None -> Radiosim.Reception.dual_graph
      | Some spec -> (
          match Radiosim.Reception.of_spec spec with
          | Ok m ->
              Format.printf "reception %a@." Radiosim.Reception.pp m;
              m
          | Error msg ->
              Format.eprintf "localcast: bad --reception spec: %s@." msg;
              exit 2)
    in
    let monitor = L.Lb_spec.monitor ?faults ~dual ~params ~env:envt () in
    (* Observability wiring: any of --events/--metrics/--audit needs the
       event stream, so they share one sink sized to the whole run. *)
    let want_obs = events <> None || metrics_path <> None || audit in
    let sink =
      if want_obs then
        Some (Obs.Sink.create ~capacity:(max 65536 (rounds * ((2 * n) + 8))) ())
      else None
    in
    let registry =
      match metrics_path with Some _ -> Some (Obs.Metrics.create ()) | None -> None
    in
    let auditor =
      if audit then begin
        let a = L.Lb_obs.auditor ~dual ~params () in
        (match sink with
        | Some s -> Obs.Sink.on_event s (Obs.Audit.observe a)
        | None -> ());
        Some a
      end
      else None
    in
    let glue =
      match sink with
      | Some s -> Some (L.Lb_obs.create ?metrics:registry ~sink:s ~dual ~params ())
      | None -> None
    in
    let observer record =
      L.Lb_spec.observe monitor record;
      match glue with Some g -> L.Lb_obs.observer g record | None -> ()
    in
    let executed, secs =
      Stats.Experiment.time (fun () ->
          Radiosim.Engine.run ~observer ?sink ?metrics:registry ?faults
            ?revive ~reception ~dual
            ~scheduler:(make_scheduler scheduler ~seed ~p:link_p)
            ~nodes ~env:(L.Lb_env.env envt) ~rounds ())
    in
    let report = L.Lb_spec.finish monitor in
    Format.printf "executed %d rounds in %.2fs@." executed secs;
    Format.printf
      "validity violations=%d  acks=%d (late=%d missing=%d max latency=%d)@."
      report.L.Lb_spec.validity_violations report.L.Lb_spec.ack_count
      report.L.Lb_spec.late_ack_count report.L.Lb_spec.missing_ack_count
      report.L.Lb_spec.max_ack_latency;
    Format.printf "reliability %d/%d (%.1f%%)  progress %d/%d (%.1f%%)@."
      (report.L.Lb_spec.reliability_attempts - report.L.Lb_spec.reliability_failures)
      report.L.Lb_spec.reliability_attempts
      (100.0 *. L.Lb_spec.reliability_rate report)
      (report.L.Lb_spec.progress_opportunities - report.L.Lb_spec.progress_failures)
      report.L.Lb_spec.progress_opportunities
      (100.0 *. L.Lb_spec.progress_rate report);
    (match auditor with
    | None -> ()
    | Some a ->
        Obs.Audit.finish a;
        let violations = Obs.Audit.violations a in
        Format.printf "audit: %d violation%s over %d rounds of events@."
          (List.length violations)
          (if List.length violations = 1 then "" else "s")
          (Obs.Audit.rounds_seen a);
        List.iteri
          (fun i v ->
            if i < 20 then Format.printf "  %a@." Obs.Audit.pp_violation v)
          violations;
        if List.length violations > 20 then
          Format.printf "  ... and %d more@." (List.length violations - 20));
    (match (events, sink) with
    | Some path, Some s ->
        Obs.Sink.save_jsonl s ~path;
        Format.printf "wrote %d events to %s (%d emitted, %d dropped)@."
          (Obs.Sink.length s) path (Obs.Sink.emitted s) (Obs.Sink.dropped s)
    | _ -> ());
    match (metrics_path, glue, registry) with
    | Some path, Some g, Some reg ->
        let snapshots =
          L.Lb_obs.snapshots g @ [ Obs.Metrics.snapshot ~label:"final" reg ]
        in
        Obs.Metrics.write_json ~path snapshots;
        Format.printf "wrote %d metric snapshots to %s@."
          (List.length snapshots) path
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the LBAlg local broadcast service.")
    Term.(
      const run $ topology_arg $ scheduler_arg $ link_p_arg $ seed_arg $ n_arg
      $ width_arg $ r_arg $ gray_arg $ eps_arg $ phases_arg $ senders_arg
      $ tack_arg $ load_arg $ events_arg $ metrics_arg $ audit_arg
      $ faults_arg $ reception_arg)

(* --- flood --- *)

let flood_cmd =
  let source_arg =
    Arg.(value & opt int 0 & info [ "source" ] ~docv:"ID" ~doc:"Flood source.")
  in
  let run topology scheduler link_p seed n width r gray eps source load =
    let dual = make_topology ?load topology ~seed ~n ~width ~r ~gray in
    Format.printf "%a@." Dual.pp dual;
    let params = L.Params.of_dual ~eps1:eps ~tack_phases:3 dual in
    let result =
      Macapps.Flood.run ~params
        ~rng:(Prng.Rng.of_int (seed + 1))
        ~dual
        ~scheduler:(make_scheduler scheduler ~seed ~p:link_p)
        ~source
        ~max_rounds:(200 * Dual.n dual * params.L.Params.phase_len)
        ()
    in
    Format.printf "covered %d/%d nodes with %d relays@."
      result.Macapps.Flood.covered_count (Dual.n dual) result.Macapps.Flood.relays;
    match result.Macapps.Flood.completion_round with
    | Some round -> Format.printf "flood complete at round %d@." round
    | None ->
        Format.printf "flood incomplete after %d rounds@."
          result.Macapps.Flood.rounds_executed
  in
  Cmd.v
    (Cmd.info "flood" ~doc:"Flood a message over the abstract MAC layer.")
    Term.(
      const run $ topology_arg $ scheduler_arg $ link_p_arg $ seed_arg $ n_arg
      $ width_arg $ r_arg $ gray_arg $ eps_arg $ source_arg $ load_arg)

(* --- trace --- *)

(* --- scale-smoke: the tiled engine at size, with a trace digest --- *)

let scale_cmd =
  let rounds_arg =
    Arg.(
      value & opt int 20
      & info [ "rounds" ] ~docv:"INT" ~doc:"Number of rounds to run.")
  in
  let tiles_arg =
    Arg.(
      value & opt int 1
      & info [ "tiles" ] ~docv:"INT"
        ~doc:
          "Tile (domain) count for the tiled engine.  The printed trace \
           hash is identical at every value — run twice with different \
           --tiles and compare (CI does exactly that).")
  in
  let scale_n_arg =
    Arg.(
      value & opt int 100_000
      & info [ "n"; "nodes" ] ~docv:"INT" ~doc:"Number of nodes.")
  in
  let scale_reception_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "reception" ] ~docv:"SPEC"
          ~doc:
            "Reception model: 'dual' (the default) or 'sinr[:key=value,...]' \
             — physical interference over the field's embedding (e.g. \
             'sinr:alpha=3,beta=1.2,noise=0.02').  The trace hash stays \
             --tiles-invariant under either model.  See docs/RECEPTION.md.")
  in
  let run seed n rounds tiles reception_spec =
    let reception =
      match reception_spec with
      | None -> Radiosim.Reception.dual_graph
      | Some spec -> (
          match Radiosim.Reception.of_spec spec with
          | Ok m ->
              Format.printf "reception %a@." Radiosim.Reception.pp m;
              m
          | Error msg ->
              Format.eprintf "localcast: bad --reception spec: %s@." msg;
              exit 2)
    in
    (* Constant-density field: one node per unit square, r = 1, so Δ is
       independent of n and cost flatness is visible directly. *)
    let side = sqrt (float_of_int n) in
    let t0 = Unix.gettimeofday () in
    let dual =
      Geo.random_field
        ~rng:(Prng.Rng.of_int seed)
        ~n ~width:side ~height:side ~r:1.0 ~gray_g':0.5 ()
    in
    let t_topo = Unix.gettimeofday () -. t0 in
    let node_rng = Prng.Rng.of_int (seed + 1) in
    let nodes =
      Array.init n (fun src ->
          Baseline.Uniform.node ~p:0.01
            ~message:(L.Messages.payload ~src ~uid:0 ())
            ~rng:(Prng.Rng.split node_rng))
    in
    (* FNV-1a over every round's actions and deliveries: an
       order-sensitive digest of the observable trace. *)
    let hash = ref 0xcbf29ce48422325 in
    let fnv x = hash := (!hash lxor x) * 0x100000001b3 in
    let observer record =
      fnv record.Radiosim.Trace.round;
      Array.iter
        (fun a ->
          fnv
            (match a with
            | Radiosim.Process.Transmit (L.Messages.Data p) -> 3 + p.L.Messages.src
            | Radiosim.Process.Transmit _ -> 2
            | Radiosim.Process.Listen -> 1))
        record.Radiosim.Trace.actions;
      Array.iter
        (fun d ->
          fnv
            (match d with
            | Some (L.Messages.Data p) -> 3 + p.L.Messages.src
            | Some _ -> 2
            | None -> 1))
        record.Radiosim.Trace.delivered
    in
    let t1 = Unix.gettimeofday () in
    let executed =
      Radiosim.Tiled.run ~observer ~tiles ~reception ~dual
        ~scheduler:(Sch.bernoulli_sparse ~seed ~p:0.02)
        ~nodes
        ~env:(Radiosim.Env.null ~name:"scale-smoke" ())
        ~rounds ()
    in
    let t_run = Unix.gettimeofday () -. t1 in
    let rss_mb =
      try
        let ic = open_in "/proc/self/status" in
        let rec scan () =
          match input_line ic with
          | line when String.length line > 6 && String.sub line 0 6 = "VmRSS:" ->
              let v =
                String.trim (String.sub line 6 (String.length line - 6))
              in
              let kb =
                match String.split_on_char ' ' v with
                | x :: _ -> float_of_string x
                | [] -> nan
              in
              close_in ic;
              Some (kb /. 1024.0)
          | _ -> scan ()
          | exception End_of_file ->
              close_in ic;
              None
        in
        scan ()
      with _ -> None
    in
    Format.printf "n=%d rounds=%d tiles=%d seed=%d@." n executed tiles seed;
    Format.printf "topology: %.3fs  run: %.3fs  (%.1f ns/node/round)@." t_topo
      t_run
      (t_run *. 1e9 /. float_of_int (max 1 (n * executed)));
    (match rss_mb with
    | Some mb -> Format.printf "rss: %.1f MB@." mb
    | None -> Format.printf "rss: n/a@.");
    Format.printf "trace-hash: %016x@." (!hash land max_int)
  in
  Cmd.v
    (Cmd.info "scale-smoke"
       ~doc:
         "Run the tiled engine on a constant-density field and print \
          wall-clock, resident memory and an order-sensitive trace hash.  \
          The hash is invariant under --tiles; CI compares a 1-tile and a \
          2-tile run at n=10^5 under both reception models.")
    Term.(
      const run $ seed_arg $ scale_n_arg $ rounds_arg $ tiles_arg
      $ scale_reception_arg)

let trace_cmd =
  let rounds_arg =
    Arg.(
      value & opt int 60
      & info [ "rounds" ] ~docv:"INT" ~doc:"Number of rounds to trace.")
  in
  let from_arg =
    Arg.(
      value & opt int 0
      & info [ "from" ] ~docv:"ROUND" ~doc:"First round to print.")
  in
  let node_filter_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "node" ] ~docv:"ID" ~doc:"Only print events involving this node.")
  in
  let run topology seed n width r gray eps load rounds from node_filter =
    let dual = make_topology ?load topology ~seed ~n ~width ~r ~gray in
    let n = Dual.n dual in
    let params = L.Params.of_dual ~eps1:eps ~tack_phases:2 dual in
    Format.printf "%a@." Dual.pp dual;
    Format.printf "phase structure: Ts=%d Tprog=%d phase_len=%d@.@."
      params.L.Params.ts params.L.Params.tprog params.L.Params.phase_len;
    let rng = Prng.Rng.of_int (seed + 1) in
    let nodes = L.Lb_alg.network params ~rng ~n in
    let envt = L.Lb_env.saturate ~n ~senders:[ 0 ] () in
    let trace, observer = Radiosim.Trace.recorder () in
    let (_ : int) =
      Radiosim.Engine.run ~observer ~dual
        ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
        ~nodes ~env:(L.Lb_env.env envt) ~rounds ()
    in
    let wants v = match node_filter with None -> true | Some w -> w = v in
    Radiosim.Trace.iter
      (fun record ->
        if record.Radiosim.Trace.round >= from then begin
          let interesting = ref [] in
          Array.iteri
            (fun v action ->
              match action with
              | Radiosim.Process.Transmit m when wants v ->
                  interesting :=
                    Format.asprintf "%d!%a" v L.Messages.pp_msg m :: !interesting
              | _ -> ())
            record.Radiosim.Trace.actions;
          Array.iteri
            (fun v delivered ->
              match delivered with
              | Some m when wants v ->
                  interesting :=
                    Format.asprintf "%d<-%a" v L.Messages.pp_msg m :: !interesting
              | _ -> ())
            record.Radiosim.Trace.delivered;
          Array.iteri
            (fun v outs ->
              if wants v then
                List.iter
                  (fun out ->
                    interesting :=
                      Format.asprintf "%d:%a" v L.Messages.pp_lb_output out
                      :: !interesting)
                  outs)
            record.Radiosim.Trace.outputs;
          if !interesting <> [] then begin
            let kind =
              if L.Lb_alg.is_preamble_round params record.Radiosim.Trace.round
              then "pre "
              else "body"
            in
            Format.printf "r%-5d %s  %s@." record.Radiosim.Trace.round kind
              (String.concat "  " (List.rev !interesting))
          end
        end)
      trace
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Dump a round-by-round event trace of an LBAlg run (transmissions, \
          receptions, outputs).")
    Term.(
      const run $ topology_arg $ seed_arg $ n_arg $ width_arg $ r_arg $ gray_arg
      $ eps_arg $ load_arg $ rounds_arg $ from_arg $ node_filter_arg)

(* --- verify --- *)

let verify_cmd =
  let run topology scheduler link_p seed n width r gray eps load =
    let dual = make_topology ?load topology ~seed ~n ~width ~r ~gray in
    let params = L.Params.of_dual ~eps1:eps ~tack_phases:3 dual in
    Format.printf "%a@." Dual.pp dual;
    let failures = ref [] in
    let fail fmt = Format.kasprintf (fun s -> failures := s :: !failures) fmt in
    (* service guarantees under a saturated sender set *)
    let senders =
      List.filteri (fun i _ -> i mod 4 = 0) (List.init (Dual.n dual) Fun.id)
    in
    let outcome =
      L.Service.run
        ~scheduler:(make_scheduler scheduler ~seed ~p:link_p)
        ~dual ~params ~senders ~phases:6 ~seed ()
    in
    let report = outcome.L.Service.report in
    if report.L.Lb_spec.validity_violations > 0 then
      fail "validity violations: %d" report.L.Lb_spec.validity_violations;
    if report.L.Lb_spec.late_ack_count > 0 then
      fail "late acks: %d" report.L.Lb_spec.late_ack_count;
    if report.L.Lb_spec.missing_ack_count > 0 then
      fail "missing acks: %d" report.L.Lb_spec.missing_ack_count;
    let progress = L.Lb_spec.progress_rate report in
    if progress < 1.0 -. eps then
      fail "progress rate %.4f below 1 - eps = %.4f" progress (1.0 -. eps);
    let reliability = L.Lb_spec.reliability_rate report in
    if reliability < 1.0 -. eps then
      fail "reliability rate %.4f below 1 - eps = %.4f" reliability (1.0 -. eps);
    (* seed agreement spec on the same topology *)
    let seed_params =
      L.Params.make_seed ~eps:params.L.Params.eps2 ~delta:(Dual.delta dual)
        ~kappa:16 ()
    in
    let rng = Prng.Rng.of_int (seed + 2) in
    let nodes = L.Seed_alg.network seed_params ~rng ~n:(Dual.n dual) in
    let trace, observer = Radiosim.Trace.recorder () in
    let (_ : int) =
      Radiosim.Engine.run ~observer ~dual
        ~scheduler:(make_scheduler scheduler ~seed ~p:link_p)
        ~nodes
        ~env:(Radiosim.Env.null ~name:"verify" ())
        ~rounds:(L.Seed_alg.duration seed_params)
        ()
    in
    let decisions = L.Seed_spec.decisions_of_trace trace ~n:(Dual.n dual) in
    let seed_report =
      L.Seed_spec.check ~dual ~delta_bound:params.L.Params.delta_bound ~decisions
    in
    if not seed_report.L.Seed_spec.well_formed then fail "seed spec: not well-formed";
    if not seed_report.L.Seed_spec.consistent then fail "seed spec: inconsistent";
    if seed_report.L.Seed_spec.violation_count > 0 then
      fail "seed agreement violations: %d (max owners %d > delta %d)"
        seed_report.L.Seed_spec.violation_count seed_report.L.Seed_spec.max_owners
        params.L.Params.delta_bound;
    match !failures with
    | [] ->
        Format.printf
          "OK: LB spec (progress %.2f%%, reliability %.2f%%, %d acks) and Seed \
           spec (max owners %d <= %d) hold@."
          (100.0 *. progress) (100.0 *. reliability) report.L.Lb_spec.ack_count
          seed_report.L.Seed_spec.max_owners params.L.Params.delta_bound
    | problems ->
        List.iter (fun s -> Format.printf "FAIL: %s@." s) (List.rev problems);
        exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the service on a topology and exit non-zero unless every \
          specification check passes (CI-style).")
    Term.(
      const run $ topology_arg $ scheduler_arg $ link_p_arg $ seed_arg $ n_arg
      $ width_arg $ r_arg $ gray_arg $ eps_arg $ load_arg)

(* --- serve: the open-loop multi-message serving engine --- *)

let serve_cmd =
  let workload_arg =
    Arg.(
      value & opt string "poisson:0.002"
      & info [ "workload" ] ~docv:"SPEC"
          ~doc:
            "Arrival process: poisson:RATE, bursty:RATE:ON_MEAN:OFF_MEAN or \
             hotspot:RATE:HOT_FRACTION:HOT_SHARE (RATE in messages per round, \
             network-wide; see docs/LOAD.md).")
  in
  let policy_arg =
    Arg.(
      value & opt string "drop-tail"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Backpressure policy: drop-tail, drop-newest or source-throttle.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 40_000
      & info [ "rounds" ] ~docv:"INT" ~doc:"Number of rounds to serve.")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 8
      & info [ "queue-cap" ] ~docv:"INT" ~doc:"Per-node relay queue bound.")
  in
  let inflight_arg =
    Arg.(
      value & opt int 512
      & info [ "max-inflight" ] ~docv:"INT"
          ~doc:"Slot pool size: admission cap on concurrently live messages.")
  in
  let ttl_arg =
    Arg.(
      value & opt int 30_000
      & info [ "ttl" ] ~docv:"INT"
          ~doc:"Rounds a message may live before it is expired.")
  in
  let run topology scheduler link_p seed n width r gray eps load workload policy
      rounds queue_cap max_inflight ttl =
    let dual = make_topology ?load topology ~seed ~n ~width ~r ~gray in
    let n = Dual.n dual in
    Format.printf "%a@." Dual.pp dual;
    let process =
      match Macapps.Workload.parse workload with
      | Ok p -> p
      | Error msg ->
          Format.eprintf "%s@." msg;
          exit 2
    in
    let policy =
      match Macapps.Serve.parse_policy policy with
      | Ok p -> p
      | Error msg ->
          Format.eprintf "%s@." msg;
          exit 2
    in
    let params = L.Params.of_dual ~eps1:eps ~tack_phases:2 dual in
    let config =
      Macapps.Serve.config ~queue_cap ~max_inflight ~ttl ~policy ()
    in
    let wl = Macapps.Workload.create ~process ~n ~seed () in
    Format.printf
      "serving %a under %a for %d rounds (f_ack = %d rounds)@."
      Macapps.Workload.pp_process process Macapps.Serve.pp_policy policy rounds
      (L.Params.t_ack_rounds params);
    let report =
      Macapps.Serve.run ~config ~workload:wl ~params
        ~rng:(Prng.Rng.of_int (seed + 1))
        ~dual
        ~scheduler:(make_scheduler scheduler ~seed ~p:link_p)
        ~rounds ()
    in
    Format.printf "%a@." Macapps.Serve.pp_report report;
    (* CI-style gating: a serving run must conserve messages exactly and
       actually complete something *)
    if report.Macapps.Serve.audit <> [] then begin
      List.iter
        (fun s -> Format.printf "FAIL: audit: %s@." s)
        report.Macapps.Serve.audit;
      exit 1
    end;
    if report.Macapps.Serve.completed = 0 then begin
      Format.printf
        "FAIL: zero goodput (no message completed; raise --ttl or lower the \
         offered rate)@.";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve an open-loop multi-message workload over the abstract MAC \
          layer and print the serving report (admission, completion, \
          latency percentiles, queue depths, allocation probe).  Exits \
          non-zero if the conservation audit fails or nothing completes \
          (CI-style).")
    Term.(
      const run $ topology_arg $ scheduler_arg $ link_p_arg $ seed_arg $ n_arg
      $ width_arg $ r_arg $ gray_arg $ eps_arg $ load_arg $ workload_arg
      $ policy_arg $ rounds_arg $ queue_cap_arg $ inflight_arg $ ttl_arg)

(* --- tournament --- *)

let tournament_cmd =
  let module S = Baseline.Strategy in
  let module T = Baseline.Tournament in
  let module Rank = Stats.Rank in
  let trials_arg =
    Arg.(
      value & opt int 12
      & info [ "trials" ] ~docv:"INT"
          ~doc:"Paired trials per arm (same seeds across arms).")
  in
  let fault_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"SPEC"
          ~doc:
            "Fault plan applied verbatim to every trial, in the Faults.Plan \
             grammar (e.g. churn:0.05,817 or jam:3@0-100), derived from each \
             trial seed.  Note the sender is not exempt (the E25 bench \
             cells protect it); a crashed sender usually zeroes lbalg's \
             coverage.")
  in
  let arms_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "arms" ] ~docv:"LIST"
          ~doc:
            "Comma-separated arms: strategy specs (fixed:P, decay:L, \
             decay-restart:L, sawtooth:L, backoff:K, slotted:N) and/or \
             lbalg.  Default: the full zoo sized for the topology, plus \
             lbalg.")
  in
  let adaptive_arg =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Use the adaptive jamming adversary instead of an oblivious \
             scheduler (LBAlg is skipped: the paper's guarantees are \
             oblivious-only).")
  in
  let run topology scheduler link_p seed n width r gray load trials fault arms
      adaptive =
    let dual = make_topology ?load topology ~seed ~n ~width ~r ~gray in
    let n = Dual.n dual in
    Format.printf "%a@." Dual.pp dual;
    let adversary =
      if adaptive then T.Adaptive_jam
      else T.Oblivious (fun ~seed -> make_scheduler scheduler ~seed ~p:link_p)
    in
    let base = T.arena ~adversary ~dual () in
    let arena =
      match fault with
      | None -> base
      | Some spec ->
          let plan_of ~seed =
            match
              Faults.Plan.of_spec ~seed ~n ~rounds:base.T.horizon spec
            with
            | Ok plan -> plan
            | Error e ->
                Format.eprintf "bad --fault spec: %s@." e;
                exit 2
          in
          (* Surface a bad grammar before the trial loop. *)
          ignore (plan_of ~seed);
          { base with T.plan_of = Some plan_of }
    in
    let arms =
      match arms with
      | None -> T.arms ~dual
      | Some list ->
          List.map
            (fun tok ->
              let tok = String.trim tok in
              if String.lowercase_ascii tok = "lbalg" then T.Lbalg
              else
                match S.parse tok with
                | Ok t -> T.Strategy t
                | Error e ->
                    Format.eprintf "bad --arms entry: %s@." e;
                    exit 2)
            (String.split_on_char ',' list)
    in
    Format.printf
      "tournament: %d arm%s x %d paired trial%s, horizon %d rounds, budget \
       %d, %s adversary%s@."
      (List.length arms)
      (if List.length arms = 1 then "" else "s")
      trials
      (if trials = 1 then "" else "s")
      arena.T.horizon arena.T.budget
      (if adaptive then "adaptive-jam" else "oblivious")
      (match fault with None -> "" | Some s -> ", faults " ^ s);
    let label arm =
      match arm with T.Strategy t -> S.to_spec t | T.Lbalg -> "lbalg"
    in
    let cells =
      List.filter_map
        (fun arm ->
          let samples =
            List.filter_map
              (fun i -> T.trial arena arm ~seed:(seed + i))
              (List.init trials (fun i -> i))
          in
          if samples = [] then begin
            Format.printf "  (no samples for %s — skipped)@." (label arm);
            None
          end
          else Some (label arm, samples))
        arms
    in
    if cells = [] then begin
      Format.eprintf "no arm produced a sample (whole neighborhood dead?)@.";
      exit 1
    end;
    let metric name ~descending project =
      let ranked =
        Rank.table ~descending ~tie_eps:1e-9 ~seed:(seed + Hashtbl.hash name)
          (List.map
             (fun (l, samples) ->
               (l, Array.of_list (List.map project samples)))
             cells)
      in
      let table =
        Stats.Table.create
          ~title:(Printf.sprintf "%s (%s is better)" name
                    (if descending then "higher" else "lower"))
          ~columns:[ "rank"; "arm"; "trials"; "mean [95% CI]" ]
      in
      List.iter
        (fun row ->
          Stats.Table.add_row table
            [
              Stats.Table.cell_int row.Rank.rank;
              row.Rank.label;
              Stats.Table.cell_int row.Rank.count;
              Printf.sprintf "%.3f [%.3f, %.3f]" row.Rank.ci.Rank.mean
                row.Rank.ci.Rank.lower row.Rank.ci.Rank.upper;
            ])
        ranked;
      Stats.Table.print table
    in
    metric "coverage" ~descending:true (fun s -> s.T.coverage);
    metric "first-reception latency" ~descending:false (fun s -> s.T.latency);
    metric "transmission cost" ~descending:false (fun s -> s.T.cost)
  in
  Cmd.v
    (Cmd.info "tournament"
       ~doc:
         "Race back-off strategies (and LBAlg) on one topology under a \
          chosen adversary and fault plan: paired-seed trials, one ranked \
          table per metric (coverage, first-reception latency, transmission \
          cost) with seeded bootstrap confidence intervals.  The full \
          strategy x adversary x fault x topology matrix is experiment E25 \
          (bench/main.exe --only e25).")
    Term.(
      const run $ topology_arg $ scheduler_arg $ link_p_arg $ seed_arg $ n_arg
      $ width_arg $ r_arg $ gray_arg $ load_arg $ trials_arg $ fault_arg
      $ arms_arg $ adaptive_arg)

let () =
  let doc = "Local broadcast layer for unreliable (dual graph) radio networks" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "localcast" ~doc)
          [ topo_cmd; seed_cmd; run_cmd; flood_cmd; trace_cmd; verify_cmd;
            scale_cmd; serve_cmd; tournament_cmd ]))
