(* Tests for topology serialization (Dualgraph.Io), ASCII rendering
   (Dualgraph.Render) and the ring/corridor generators. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module G = Dualgraph.Graph
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Io = Dualgraph.Io
module Render = Dualgraph.Render
module Rng = Prng.Rng

let same_dual a b =
  Dual.n a = Dual.n b
  && G.edges (Dual.g a) = G.edges (Dual.g b)
  && G.edges (Dual.g' a) = G.edges (Dual.g' b)
  && Dual.r a = Dual.r b

(* --- Io --- *)

let test_roundtrip_embedded () =
  let dual =
    Geo.random_field ~rng:(Rng.of_int 1) ~n:20 ~width:3.0 ~height:3.0 ~r:1.5
      ~gray_g':0.5 ()
  in
  let copy = Io.of_string (Io.to_string dual) in
  checkb "graphs preserved" true (same_dual dual copy);
  checkb "embedding preserved" true (Dual.is_r_geographic copy)

let test_roundtrip_bare () =
  let g = G.create ~n:3 ~edges:[ (0, 1) ] in
  let g' = G.create ~n:3 ~edges:[ (0, 1); (1, 2) ] in
  let dual = Dual.create ~g ~g' () in
  let copy = Io.of_string (Io.to_string dual) in
  checkb "graphs preserved" true (same_dual dual copy);
  checkb "no embedding" true (Dual.embedding copy = None)

let test_parse_with_comments () =
  let text =
    "# a hand-written topology\n\
     dualgraph v1\n\
     n 2\n\
     r 1.00\n\
     edge g 0 1   # the only link\n\n"
  in
  let dual = Io.of_string text in
  checki "n" 2 (Dual.n dual);
  checkb "edge" true (G.mem_edge (Dual.g dual) 0 1)

let test_parse_errors () =
  let expect_invalid name text =
    match Io.of_string text with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "missing header" "n 2\n";
  expect_invalid "missing n" "dualgraph v1\nedge g 0 1\n";
  expect_invalid "garbage record" "dualgraph v1\nn 2\nfrobnicate\n";
  expect_invalid "bad integer" "dualgraph v1\nn two\n";
  expect_invalid "partial points" "dualgraph v1\nn 2\npoint 0 0.0 0.0\n";
  expect_invalid "duplicate point"
    "dualgraph v1\nn 1\npoint 0 0.0 0.0\npoint 0 1.0 1.0\n";
  (* structural validation still applies: unreliable edge over distance > r *)
  expect_invalid "invalid geometry"
    "dualgraph v1\nn 2\nr 1.0\npoint 0 0.0 0.0\npoint 1 5.0 0.0\nedge u 0 1\n"

let test_save_load () =
  let dual = Geo.line ~n:4 ~spacing:0.9 ~r:2.0 () in
  let filename = Filename.temp_file "dualgraph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove filename)
    (fun () ->
      Io.save dual ~filename;
      let copy = Io.load filename in
      checkb "file roundtrip" true (same_dual dual copy))

(* --- Render --- *)

let test_render_field () =
  let dual = Geo.grid ~rows:3 ~cols:5 ~spacing:1.0 ~r:1.0 () in
  let sketch = Render.field ~columns:20 dual in
  let node_cells =
    String.fold_left
      (fun acc ch -> if ch >= '1' && ch <= '9' then acc + Char.code ch - Char.code '0' else acc)
      0 sketch
  in
  checki "every node drawn" 15 node_cells;
  checkb "multi-line" true (String.contains sketch '\n')

let test_render_requires_embedding () =
  let g = G.empty 2 in
  let dual = Dual.create ~g ~g':g () in
  Alcotest.check_raises "no embedding"
    (Invalid_argument "Render.field: dual graph has no embedding") (fun () ->
      ignore (Render.field dual))

let test_render_degree_histogram () =
  let dual = Geo.clique 4 in
  let text = Render.degree_histogram dual in
  checkb "mentions degree 3" true
    (List.exists
       (fun line ->
         String.length line >= 6 && String.sub line 0 6 = "deg  3")
       (String.split_on_char '\n' text))

(* --- new generators --- *)

let test_ring_structure () =
  let dual = Geo.ring ~n:10 ~hop:0.9 ~r:1.0 () in
  checki "cycle edges" 10 (G.edge_count (Dual.g dual));
  checkb "0-1 adjacent" true (G.mem_edge (Dual.g dual) 0 1);
  checkb "wraps" true (G.mem_edge (Dual.g dual) 9 0);
  checkb "r-geographic" true (Dual.is_r_geographic dual);
  checki "ring diameter" 5 (G.diameter (Dual.g dual))

let test_ring_grey_shortcuts () =
  let dual = Geo.ring ~n:12 ~hop:0.9 ~r:2.0 () in
  checkb "2-hop unreliable" true
    (Array.length (Dual.unreliable_edges dual) >= 12);
  checkb "r-geographic" true (Dual.is_r_geographic dual)

let test_ring_validation () =
  Alcotest.check_raises "n >= 3" (Invalid_argument "Geometric.ring: need n >= 3")
    (fun () -> ignore (Geo.ring ~n:2 ()))

let test_corridor () =
  let dual = Geo.corridor ~rng:(Rng.of_int 5) ~n:30 ~length:8.0 () in
  checki "n" 30 (Dual.n dual);
  checkb "r-geographic" true (Dual.is_r_geographic dual);
  (* a thin strip yields a long multihop network *)
  if Dualgraph.Graph.is_connected (Dual.g dual) then
    checkb "elongated" true (G.diameter (Dual.g dual) >= 3)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"io roundtrip on random dual graphs" ~count:30
      (pair (int_range 0 30) small_int)
      (fun (n, seed) ->
        let dual =
          Geo.random_field ~rng:(Rng.of_int seed) ~n ~width:3.5 ~height:3.5
            ~r:1.5 ~gray_g':0.5 ~gray_g:0.2 ()
        in
        same_dual dual (Io.of_string (Io.to_string dual)));
    Test.make ~name:"io roundtrip preserves the embedding geometry" ~count:20
      (pair (int_range 1 20) small_int)
      (fun (n, seed) ->
        let dual =
          Geo.random_field ~rng:(Rng.of_int seed) ~n ~width:3.0 ~height:3.0
            ~r:1.5 ()
        in
        let copy = Io.of_string (Io.to_string dual) in
        (* loading re-validates, so surviving Dual.create means the
           geometry survived the float round-trip *)
        Dual.is_r_geographic copy);
  ]

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("io roundtrip embedded", test_roundtrip_embedded);
      ("io roundtrip bare", test_roundtrip_bare);
      ("io comments", test_parse_with_comments);
      ("io parse errors", test_parse_errors);
      ("io save/load", test_save_load);
      ("render field", test_render_field);
      ("render requires embedding", test_render_requires_embedding);
      ("render degree histogram", test_render_degree_histogram);
      ("ring structure", test_ring_structure);
      ("ring grey shortcuts", test_ring_grey_shortcuts);
      ("ring validation", test_ring_validation);
      ("corridor", test_corridor);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
