module Mac = Localcast.Mac

type result = {
  covered : bool array;
  covered_count : int;
  completion_round : int option;
  relays : int;
  rounds_executed : int;
}

let run ?sink ?metrics ~params ~rng ~dual ~scheduler ~source ~max_rounds
    ?(flood_tag = 1) () =
  let n = Dualgraph.Dual.n dual in
  if source < 0 || source >= n then invalid_arg "Flood.run: source out of range";
  let mark ~round ~node label =
    match sink with
    | None -> ()
    | Some s -> Obs.Sink.emit s (Obs.Event.Mark { round; node; label })
  in
  let m_relays, m_covered =
    match metrics with
    | None -> (None, None)
    | Some registry ->
        ( Some (Obs.Metrics.counter registry "flood.relays"),
          Some (Obs.Metrics.gauge registry "flood.covered") )
  in
  let covered = Array.make n false in
  let relayed = Array.make n false in
  let covered_count = ref 0 in
  let completion_round = ref None in
  let relays = ref 0 in
  let mac = ref None in
  let cover ~round node =
    if not covered.(node) then begin
      covered.(node) <- true;
      incr covered_count;
      mark ~round ~node "flood.cover";
      (match m_covered with
      | Some g -> Obs.Metrics.set g (float_of_int !covered_count)
      | None -> ());
      if !covered_count = n && !completion_round = None then begin
        completion_round := Some round;
        mark ~round ~node:(-1) "flood.complete"
      end
    end
  in
  let relay ~round ~node =
    if not relayed.(node) then begin
      relayed.(node) <- true;
      match !mac with
      | Some mac ->
          if Mac.request mac ~node ~tag:flood_tag then begin
            incr relays;
            mark ~round ~node "flood.relay";
            match m_relays with
            | Some c -> Obs.Metrics.incr c
            | None -> ()
          end
          else relayed.(node) <- false (* busy: retry on a later reception *)
      | None -> ()
    end
  in
  let callbacks =
    {
      Mac.on_recv =
        (fun ~node ~round payload ->
          if payload.Localcast.Messages.tag = flood_tag then begin
            cover ~round node;
            relay ~round ~node
          end);
      on_ack = (fun ~node:_ ~round:_ _ -> ());
    }
  in
  let m = Mac.create ~callbacks ~params ~rng ~dual () in
  mac := Some m;
  cover ~round:0 source;
  relayed.(source) <- true;
  if Mac.request m ~node:source ~tag:flood_tag then begin
    incr relays;
    mark ~round:0 ~node:source "flood.relay";
    match m_relays with Some c -> Obs.Metrics.incr c | None -> ()
  end;
  let stop _record = !covered_count = n in
  let rounds_executed =
    Mac.run ~stop ?sink ?metrics m ~scheduler ~rounds:max_rounds
  in
  {
    covered;
    covered_count = !covered_count;
    completion_round = !completion_round;
    relays = !relays;
    rounds_executed;
  }
