(** Checker for the LB(t_ack, t_prog, ε) specification (paper §4.1).

    Deterministic conditions, enforced on every execution:

    - {e Timely Acknowledgement}: each [bcast(m)_u] is answered by exactly
      one [ack(m)_u] within [t_ack] rounds;
    - {e Validity}: a [recv(m)_u] happens only while some [v ∈ N_{G'}(u)]
      is actively broadcasting [m].

    Probabilistic conditions, whose empirical frequency the checker
    reports so trials can estimate the error probability:

    - {e Reliability}: for each bcast, every reliable neighbor of the
      sender emits [recv(m)] no later than the sender's [ack(m)];
    - {e Progress}: partitioning rounds into phases of [t_prog], for each
      (receiver, phase) pair in which some reliable neighbor is actively
      broadcasting throughout the {e entire} phase, the receiver cleanly
      receives at least one data message from an actively-broadcasting
      node during the phase.

    The monitor is streaming: feed it each round record via {!observe}
    (e.g. as the engine's observer) and read the {!report} at the end —
    no trace needs to be retained.

    {e Churn.}  With a [?faults] plan attached, every claim becomes
    survivor-relative — scoped to nodes alive for the full obligation
    window ([docs/FAULTS.md] spells the windows out): timely
    acknowledgement and missing-ack verdicts exempt senders that were
    down inside [\[bcast, bcast + t_ack\]]; reliability is owed only to
    reliable neighbors alive through [\[bcast, ack\]]; a progress
    opportunity requires both the receiver and some fully-active
    reliable neighbor alive through the entire phase.  Without a plan,
    behavior is unchanged. *)

type report = {
  rounds_observed : int;
  validity_violations : int;  (** recv outputs with no active G'-source *)
  ack_count : int;
  late_ack_count : int;  (** acks later than t_ack after their bcast *)
  missing_ack_count : int;
      (** bcasts still unanswered at the end, despite ≥ t_ack elapsed
          rounds *)
  max_ack_latency : int;  (** largest observed ack latency, in rounds *)
  reliability_attempts : int;  (** acked bcasts *)
  reliability_failures : int;
      (** acked bcasts missed by some reliable neighbor *)
  progress_opportunities : int;
      (** (receiver, phase) pairs with a reliable neighbor active
          throughout the phase *)
  progress_failures : int;  (** opportunities with no qualifying reception *)
  progress_latencies : int list;
      (** for each successful opportunity, the offset (in rounds, from the
          phase start) of the first qualifying reception — the raw data
          behind the latency percentiles in experiment E5 *)
}

val reliability_rate : report -> float
(** Empirical success frequency (1.0 when there were no attempts). *)

val progress_rate : report -> float

type monitor

val monitor :
  ?faults:Faults.Plan.t ->
  dual:Dualgraph.Dual.t ->
  params:Params.t ->
  env:Lb_env.t ->
  unit ->
  monitor
(** [?faults] enables survivor-relative accounting (see above); it must
    be the same plan the engine runs under. *)

val observe :
  monitor ->
  (Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Trace.round_record ->
  unit
(** Feed rounds in order, starting at round 0. *)

val finish : monitor -> report
(** Close the monitor (completes any partially observed phase) and
    produce the report.  Idempotent. *)

val check_trace :
  ?faults:Faults.Plan.t ->
  dual:Dualgraph.Dual.t ->
  params:Params.t ->
  env:Lb_env.t ->
  (Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Trace.t ->
  report
(** Convenience: run a monitor over a recorded trace. *)
