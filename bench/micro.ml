(* M1-M6: Bechamel micro-benchmarks of the core primitives, one per
   experiment table in the performance section of EXPERIMENTS.md.  Each
   prints an OLS estimate of nanoseconds per run against the monotonic
   clock; the same estimates are written to BENCH_micro.json so the
   perf trajectory can be tracked across commits. *)

open Core
open Bechamel
open Toolkit
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module Params = Localcast.Params
module L = Localcast

(* M1: one simulated round on a 32-clique with every node transmitting
   with probability 1/2 (the engine's inner loop, including collision
   resolution). *)
let m1_engine_round =
  let dual = Geo.clique 32 in
  let rng = Prng.Rng.of_int 1 in
  let nodes =
    Array.init 32 (fun src ->
        Baseline.Uniform.node ~p:0.5
          ~message:(Localcast.Messages.payload ~src ~uid:0 ())
          ~rng:(Prng.Rng.split rng))
  in
  let env = Radiosim.Env.null ~name:"bench" () in
  Test.make ~name:"M1 engine round (clique 32)"
    (Staged.stage (fun () ->
         ignore
           (Engine.run ~dual ~scheduler:Sch.reliable_only ~nodes ~env
              ~rounds:1 ())))

(* M2: a complete standalone SeedAlg execution on a small clique. *)
let m2_seed_agreement =
  let dual = Geo.clique 8 in
  let params = Params.make_seed ~eps:0.25 ~delta:8 ~kappa:16 () in
  let counter = ref 0 in
  Test.make ~name:"M2 SeedAlg full run (clique 8)"
    (Staged.stage (fun () ->
         incr counter;
         let rng = Prng.Rng.of_int !counter in
         let nodes = L.Seed_alg.network params ~rng ~n:8 in
         ignore
           (Engine.run ~dual ~scheduler:Sch.reliable_only ~nodes
              ~env:(Radiosim.Env.null ~name:"bench" ())
              ~rounds:(L.Seed_alg.duration params)
              ())))

(* M3: one full LBAlg phase (preamble + body) on a pair. *)
let m3_lb_phase =
  let dual = Geo.pair () in
  let params = Params.of_dual ~eps1:0.25 ~tack_phases:1 dual in
  let counter = ref 0 in
  Test.make ~name:"M3 LBAlg phase (pair)"
    (Staged.stage (fun () ->
         incr counter;
         let rng = Prng.Rng.of_int !counter in
         let nodes = L.Lb_alg.network params ~rng ~n:2 in
         let envt = L.Lb_env.saturate ~n:2 ~senders:[ 0 ] () in
         ignore
           (Engine.run ~dual ~scheduler:Sch.reliable_only ~nodes
              ~env:(L.Lb_env.env envt) ~rounds:params.Params.phase_len ())))

(* M4: random r-geographic dual graph generation (n = 100). *)
let m4_topology =
  let counter = ref 0 in
  Test.make ~name:"M4 random_field n=100"
    (Staged.stage (fun () ->
         incr counter;
         ignore
           (Geo.random_field
              ~rng:(Prng.Rng.of_int !counter)
              ~n:100 ~width:6.0 ~height:6.0 ~r:1.5 ())))

(* M5: one sparse-transmitter round on a 256-clique at p = 1/Δ (the
   regime MAC backoff converges to).  Expected transmitter count is ~1,
   so the transmitter-centric resolver touches ~Δ + n slots while a
   listener-centric scan is Θ(n·Δ).  Benchmarked against the retained
   reference resolver to quantify exactly that gap. *)
let m5_clique = Geo.clique 256

let m5_nodes seed =
  let rng = Prng.Rng.of_int seed in
  Array.init 256 (fun src ->
      Baseline.Uniform.node ~p:(1.0 /. 256.0)
        ~message:(Localcast.Messages.payload ~src ~uid:0 ())
        ~rng:(Prng.Rng.split rng))

let m5_sparse_round =
  let nodes = m5_nodes 5 in
  let incidence = Engine.unreliable_incidence m5_clique in
  let env = Radiosim.Env.null ~name:"bench" () in
  Test.make ~name:"M5 sparse round (clique 256, p=1/256)"
    (Staged.stage (fun () ->
         ignore
           (Engine.run ~dual:m5_clique ~scheduler:Sch.reliable_only ~nodes
              ~env ~incidence ~rounds:1 ())))

let m5_sparse_round_reference =
  let nodes = m5_nodes 55 in
  let env = Radiosim.Env.null ~name:"bench" () in
  Test.make ~name:"M5b listener-centric reference (clique 256, p=1/256)"
    (Staged.stage (fun () ->
         ignore
           (Engine.run_reference ~dual:m5_clique ~scheduler:Sch.reliable_only
              ~nodes ~env ~rounds:1 ())))

(* M6: one round on a random field with a gray zone under the Bernoulli
   link scheduler — exercises Scheduler.fill_active (one hash per
   unreliable edge per round) plus unreliable-incidence traversal. *)
let m6_bernoulli_round =
  let dual =
    Geo.random_field
      ~rng:(Prng.Rng.of_int 6)
      ~n:256 ~width:9.0 ~height:9.0 ~r:1.5 ~gray_g':0.6 ()
  in
  let incidence = Engine.unreliable_incidence dual in
  let rng = Prng.Rng.of_int 7 in
  let nodes =
    Array.init (Dual.n dual) (fun src ->
        Baseline.Uniform.node ~p:0.5
          ~message:(Localcast.Messages.payload ~src ~uid:0 ())
          ~rng:(Prng.Rng.split rng))
  in
  let scheduler = Sch.bernoulli ~seed:6 ~p:0.5 in
  let env = Radiosim.Env.null ~name:"bench" () in
  Test.make ~name:"M6 bernoulli round (random field 256)"
    (Staged.stage (fun () ->
         ignore
           (Engine.run ~dual ~scheduler ~nodes ~env ~incidence ~rounds:1 ())))

(* --- JSON trajectory snapshot ---

   The writer escapes through the observability layer's shared
   Obs.Json.escape (one correct escaping implementation for every JSON
   artifact in the repository) and is newline-terminated. *)

let git_rev = Exp_common.git_rev

let write_json ~path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"git_rev\": \"%s\",\n  \"results\": {\n"
    (Obs.Json.escape (git_rev ()));
  List.iteri
    (fun i (name, ns, r2) ->
      Printf.fprintf oc "    \"%s\": { \"ns_per_run\": %.3f, \"r_square\": %s }%s\n"
        (Obs.Json.escape name) ns
        (match r2 with Some r -> Printf.sprintf "%.6f" r | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  }\n}\n";
  close_out oc

let run () =
  Exp_common.section "M1-M6: micro-benchmarks (Bechamel, monotonic clock)";
  let tests =
    [
      m1_engine_round;
      m2_seed_agreement;
      m3_lb_phase;
      m4_topology;
      m5_sparse_round;
      m5_sparse_round_reference;
      m6_bernoulli_round;
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !Exp_common.quick then 0.25 else 1.0))
      ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let table =
    Stats.Table.create ~title:"micro-benchmarks"
      ~columns:[ "benchmark"; "time per run"; "r^2" ]
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> Float.nan
          in
          let rendered =
            if estimate > 1e6 then Printf.sprintf "%.3f ms" (estimate /. 1e6)
            else if estimate > 1e3 then Printf.sprintf "%.3f us" (estimate /. 1e3)
            else Printf.sprintf "%.1f ns" estimate
          in
          let r2 = Analyze.OLS.r_square ols_result in
          let r2_text =
            match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-"
          in
          (* Strip the synthetic Bechamel group prefix for the JSON key. *)
          let bare =
            match String.index_opt name '/' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          rows := (bare, estimate, r2) :: !rows;
          Stats.Table.add_row table [ name; rendered; r2_text ])
        analyzed)
    tests;
  Stats.Table.print table;
  let path = "BENCH_micro.json" in
  write_json ~path (List.rev !rows);
  Exp_common.note "wrote %s (git rev %s)" path (git_rev ())
