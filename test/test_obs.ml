(* Tests for the observability layer: the event sink (ring semantics,
   JSONL round-trips), the flat-JSON parser's rejections, the metrics
   registry, the spec auditor (unit cases plus a QCheck equivalence with
   an offline reference scan), and the engine/service integration —
   including the bit-identity of uninstrumented traces. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module Trace = Radiosim.Trace
module P = Radiosim.Process
module M = Localcast.Messages
module Params = Localcast.Params
module L = Localcast
module Rng = Prng.Rng
module E = Obs.Event
module Sink = Obs.Sink
module Metrics = Obs.Metrics
module Audit = Obs.Audit

let ev i = E.Mark { round = i; node = -1; label = Printf.sprintf "m%d" i }

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- sink: ring semantics --- *)

let test_ring_wraparound () =
  let s = Sink.create ~capacity:4 () in
  checki "empty" 0 (Sink.length s);
  for i = 0 to 9 do
    Sink.emit s (ev i)
  done;
  checki "emitted" 10 (Sink.emitted s);
  checki "length capped" 4 (Sink.length s);
  checki "dropped" 6 (Sink.dropped s);
  (* the retained window is the newest four, oldest first *)
  List.iteri
    (fun i e -> checkb (Printf.sprintf "slot %d" i) true (E.equal e (ev (6 + i))))
    (Sink.to_list s);
  checkb "get oldest" true (E.equal (Sink.get s 0) (ev 6));
  checkb "get newest" true (E.equal (Sink.get s 3) (ev 9));
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Sink.get: index out of range") (fun () ->
      ignore (Sink.get s 4));
  Sink.clear s;
  checki "cleared" 0 (Sink.length s);
  checki "cleared emitted" 0 (Sink.emitted s)

let test_consumers_see_everything () =
  (* Streaming consumers get the complete stream even past wraparound,
     in registration order. *)
  let s = Sink.create ~capacity:2 () in
  let a = ref [] and b = ref [] in
  Sink.on_event s (fun e -> a := E.round e :: !a);
  Sink.on_event s (fun e -> b := (E.round e * 10) :: !b);
  for i = 0 to 7 do
    Sink.emit s (ev i)
  done;
  checki "consumer a saw all" 8 (List.length !a);
  checkb "order preserved" true (List.rev !a = [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  checkb "second consumer too" true (List.rev !b = List.map (fun x -> x * 10) [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  Sink.clear s;
  Sink.emit s (ev 99);
  checkb "consumers survive clear" true (List.hd !a = 99)

(* --- event JSON round-trips --- *)

let all_constructors =
  [
    E.Round_start { round = 0 };
    E.Round_end { round = 3; transmitters = 2; deliveries = 5; collisions = 1 };
    E.Transmit { round = 1; node = 7 };
    E.Deliver { round = 1; node = 8 };
    E.Collision { round = 1; node = 9 };
    E.Phase_start { round = 12; phase = 2; preamble = true };
    E.Phase_start { round = 18; phase = 3; preamble = false };
    E.Seed_commit { round = 5; node = 4; owner = -1 };
    E.Bcast { round = 0; node = 3; uid = 17 };
    E.Recv { round = 2; node = 6; src = 3; uid = 17 };
    E.Ack { round = 9; node = 3; uid = 17; latency = 9 };
    E.Progress { round = 7; node = 6; latency = 7 };
    E.Mark { round = 4; node = -1; label = "weird \"label\"\nwith\tescapes\\" };
    E.Crash { round = 11; node = 5 };
    E.Restart { round = 15; node = 5 };
  ]

let test_json_roundtrip_per_constructor () =
  List.iter
    (fun e ->
      let line = E.to_json e in
      match E.of_json_line line with
      | Ok e' ->
          checkb (Printf.sprintf "roundtrip %s" (E.kind e)) true (E.equal e e')
      | Error msg -> Alcotest.failf "parse of %s failed: %s" line msg)
    all_constructors

let test_jsonl_file_roundtrip () =
  let s = Sink.create ~capacity:64 () in
  List.iter (Sink.emit s) all_constructors;
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sink.save_jsonl s ~path;
      match Sink.load_jsonl ~path with
      | Error msg -> Alcotest.failf "load_jsonl: %s" msg
      | Ok events ->
          checki "count" (List.length all_constructors) (List.length events);
          List.iter2
            (fun a b -> checkb "event preserved" true (E.equal a b))
            all_constructors events)

let test_parser_rejections () =
  let bad =
    [
      "";
      "{";
      "not json at all";
      "{\"ev\":\"transmit\",\"round\":1}" ^ "trailing";
      "{\"ev\":\"transmit\",\"round\":1.5,\"node\":2}";
      "{\"ev\":\"transmit\",\"round\":{},\"node\":2}";
      "{\"ev\":\"no_such_event\",\"round\":1}";
      "{\"ev\":\"transmit\",\"round\":1}";
      "{\"ev\":\"mark\",\"round\":1,\"node\":0,\"label\":\"unterminated}";
      "[1,2,3]";
    ]
  in
  List.iter
    (fun line ->
      match E.of_json_line line with
      | Error _ -> ()
      | Ok e -> Alcotest.failf "accepted %S as %s" line (E.kind e))
    bad

(* --- metrics --- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  checki "counter" 5 (Metrics.counter_value c);
  checki "counter handle is shared" 5 (Metrics.counter_value (Metrics.counter m "c"));
  let g = Metrics.gauge m "g" in
  Metrics.set g 2.5;
  checkb "gauge" true (Metrics.gauge_value g = 2.5);
  Alcotest.check_raises "name collision"
    (Invalid_argument "Metrics.gauge: \"c\" is not a gauge") (fun () ->
      ignore (Metrics.gauge m "c"));
  let h = Metrics.histogram m "h" in
  checkb "empty histogram" true (Metrics.summary h = None);
  List.iter (fun v -> Metrics.observe ~node:(v mod 2) h (float_of_int v)) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  (match Metrics.summary h with
  | None -> Alcotest.fail "summary empty"
  | Some s ->
      checki "count" 10 s.Metrics.count;
      checkb "min" true (s.Metrics.min = 1.0);
      checkb "max" true (s.Metrics.max = 10.0);
      checkb "mean" true (s.Metrics.mean = 5.5);
      checkb "p50 nearest-rank" true (s.Metrics.p50 = 5.0);
      checkb "p99 nearest-rank" true (s.Metrics.p99 = 10.0));
  (match Metrics.by_node h with
  | [ (0, s0); (1, s1) ] ->
      checki "node 0 samples" 5 s0.Metrics.count;
      checkb "node 0 evens" true (s0.Metrics.sum = 30.0);
      checki "node 1 samples" 5 s1.Metrics.count;
      checkb "node 1 odds" true (s1.Metrics.sum = 25.0)
  | other -> Alcotest.failf "by_node returned %d groups" (List.length other));
  let snap = Metrics.snapshot ~label:"t" m in
  checkb "snapshot label" true (snap.Metrics.label = "t");
  checkb "snapshot counters" true (List.mem_assoc "c" snap.Metrics.counters);
  let json = Metrics.snapshot_to_json snap in
  checkb "snapshot json is one line" true
    (String.length json > 0 && String.index_opt json '\n' = None);
  checkb "snapshot json mentions histogram" true (contains json "\"h\"")

let test_bounded_histogram_mode () =
  let m = Metrics.create () in
  let h = Metrics.bounded_histogram m "b" in
  checkb "empty bounded histogram" true (Metrics.summary h = None);
  checkb "handle is shared" true (Metrics.bounded_histogram m "b" == h);
  List.iter
    (fun v -> Metrics.observe ~node:(v mod 2) h (float_of_int v))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  (match Metrics.summary h with
  | None -> Alcotest.fail "summary empty"
  | Some s ->
      (* count/sum/min/max/mean are exact in bounded mode *)
      checki "count" 10 s.Metrics.count;
      checkb "sum" true (s.Metrics.sum = 55.0);
      checkb "min" true (s.Metrics.min = 1.0);
      checkb "max" true (s.Metrics.max = 10.0);
      checkb "mean" true (s.Metrics.mean = 5.5);
      (* percentiles carry the estimator's ~2.2% relative error *)
      checkb "p50 near 5" true (Float.abs (s.Metrics.p50 -. 5.0) <= 1.0);
      checkb "p99 near max" true (Float.abs (s.Metrics.p99 -. 10.0) <= 1.0));
  checkb "no per-node attribution in bounded mode" true
    (Metrics.by_node h = []);
  (* a bounded name cannot be re-opened raw, and vice versa *)
  Alcotest.check_raises "raw reopen of bounded name"
    (Invalid_argument "Metrics.histogram: \"b\" is a bounded histogram")
    (fun () -> ignore (Metrics.histogram m "b"));
  let _raw = Metrics.histogram m "r" in
  Alcotest.check_raises "bounded reopen of raw name"
    (Invalid_argument "Metrics.bounded_histogram: \"r\" is a raw histogram")
    (fun () -> ignore (Metrics.bounded_histogram m "r"));
  (* bounded histograms appear in snapshots like raw ones *)
  let snap = Metrics.snapshot ~label:"t" m in
  checkb "snapshot carries bounded histogram" true
    (List.mem_assoc "b" snap.Metrics.histograms)

let test_bounded_histogram_fixed_memory () =
  (* The regression the serving engine depends on: a million
     observations must not grow the estimator.  The reachable-word
     budget is the fixed bin array (~1.1k bins at default resolution)
     plus small change — far below the 10^6 boxed floats raw mode
     would hold. *)
  let m = Metrics.create () in
  let h = Metrics.bounded_histogram m "soak" in
  Metrics.observe h 1.0;
  let words_before = Obj.reachable_words (Obj.repr h) in
  for i = 1 to 1_000_000 do
    Metrics.observe h (float_of_int ((i land 0xFFFF) + 1))
  done;
  let words_after = Obj.reachable_words (Obj.repr h) in
  checki "memory did not grow with observations" words_before words_after;
  checkb "and the budget is a few KB" true (words_after < 4_096);
  (match Metrics.summary h with
  | Some s -> checki "all observations counted" 1_000_001 s.Metrics.count
  | None -> Alcotest.fail "summary empty after soak")

let test_metrics_artifact () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "evil\"name");
  let snap = Metrics.snapshot ~label:"only" m in
  let path = Filename.temp_file "obs_metrics" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Metrics.write_json ~path ~git_rev:"rev\"with\\quote" [ snap ];
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      checkb "newline-terminated" true (len > 0 && body.[len - 1] = '\n');
      checkb "git_rev escaped" true (contains body "rev\\\"with\\\\quote");
      checkb "counter name escaped" true (contains body "evil\\\"name"))

(* --- auditor unit cases --- *)

let round_ends a ~from ~upto =
  for r = from to upto do
    Audit.observe a
      (E.Round_end { round = r; transmitters = 0; deliveries = 0; collisions = 0 })
  done

let count_kind violations pred =
  List.length (List.filter (fun v -> pred v.Audit.kind) violations)

let test_audit_ack_ok () =
  let a = Audit.create ~t_ack:5 () in
  Audit.observe a (E.Bcast { round = 0; node = 1; uid = 0 });
  round_ends a ~from:0 ~upto:3;
  Audit.observe a (E.Ack { round = 4; node = 1; uid = 0; latency = 4 });
  round_ends a ~from:4 ~upto:6;
  Audit.finish a;
  checki "no violations" 0 (List.length (Audit.violations a));
  checkb "latency recorded" true (Audit.ack_latencies a = [ (1, 0, 4) ])

let test_audit_late_ack () =
  let a = Audit.create ~t_ack:5 () in
  Audit.observe a (E.Bcast { round = 0; node = 1; uid = 0 });
  round_ends a ~from:0 ~upto:5;
  (* latency t_ack + 1: too late, but not yet flagged missing online *)
  Audit.observe a (E.Ack { round = 6; node = 1; uid = 0; latency = 6 });
  round_ends a ~from:6 ~upto:6;
  Audit.finish a;
  let v = Audit.violations a in
  checki "one violation" 1 (List.length v);
  checki "late kind" 1
    (count_kind v (function Audit.Late_ack { latency = 6 } -> true | _ -> false))

let test_audit_missing_then_ack () =
  (* Overdue at a Round_end: flagged missing online; the eventual ack
     records a latency but no second violation for the same bcast. *)
  let a = Audit.create ~t_ack:5 () in
  Audit.observe a (E.Bcast { round = 0; node = 1; uid = 0 });
  round_ends a ~from:0 ~upto:7;
  Audit.observe a (E.Ack { round = 8; node = 1; uid = 0; latency = 8 });
  round_ends a ~from:8 ~upto:8;
  Audit.finish a;
  let v = Audit.violations a in
  checki "exactly one violation" 1 (List.length v);
  checki "missing kind" 1
    (count_kind v (function
      | Audit.Missing_ack { bcast_round = 0 } -> true
      | _ -> false));
  checkb "latency still recorded" true (Audit.ack_latencies a = [ (1, 0, 8) ])

let test_audit_missing_at_finish () =
  let a = Audit.create ~t_ack:5 () in
  Audit.observe a (E.Bcast { round = 2; node = 3; uid = 1 });
  round_ends a ~from:2 ~upto:7;
  (* rounds observed = 8, 8 - 2 = 6 > 5: missing only via the end rule *)
  Audit.finish a;
  let v = Audit.violations a in
  checki "flagged at finish" 1
    (count_kind v (function Audit.Missing_ack _ -> true | _ -> false));
  (* within the window: a fresh auditor over fewer rounds stays clean *)
  let b = Audit.create ~t_ack:5 () in
  Audit.observe b (E.Bcast { round = 2; node = 3; uid = 1 });
  round_ends b ~from:2 ~upto:6;
  Audit.finish b;
  checki "not yet overdue" 0 (List.length (Audit.violations b))

let test_audit_delta_breach () =
  let g'_closed = [| [| 0; 1 |]; [| 1; 0 |]; [| 2 |] |] in
  let a = Audit.create ~t_ack:100 ~delta_bound:1 ~g'_closed () in
  Audit.observe a (E.Phase_start { round = 0; phase = 0; preamble = true });
  Audit.observe a (E.Seed_commit { round = 1; node = 0; owner = 0 });
  Audit.observe a (E.Seed_commit { round = 1; node = 1; owner = 1 });
  Audit.observe a (E.Seed_commit { round = 1; node = 2; owner = 1 });
  round_ends a ~from:0 ~upto:3;
  Audit.observe a (E.Phase_start { round = 4; phase = 1; preamble = true });
  Audit.finish a;
  let v = Audit.violations a in
  (* nodes 0 and 1 each see two owners; node 2 sees one *)
  checki "two breaches" 2
    (count_kind v (function
      | Audit.Delta_breach { owners = 2; bound = 1 } -> true
      | _ -> false));
  checkb "node 2 clean" true
    (List.for_all (fun viol -> viol.Audit.node <> 2) v)

let test_audit_progress () =
  let g = [| [| 1 |]; [| 0 |] |] in
  (* Node 1 broadcasts through the whole phase and is never acked; node 0
     has the opportunity.  Without a Progress event it must be flagged,
     with one it must not. *)
  let run_phase ~with_progress =
    let a = Audit.create ~t_ack:1000 ~t_prog:4 ~g () in
    Audit.observe a (E.Phase_start { round = 0; phase = 0; preamble = true });
    Audit.observe a (E.Bcast { round = 0; node = 1; uid = 0 });
    if with_progress then
      Audit.observe a (E.Progress { round = 2; node = 0; latency = 2 });
    round_ends a ~from:0 ~upto:2;
    (* the ack lands in the phase's last round: node 1 stays active
       through it (so the phase-0 obligation stands) but carries no
       obligation into phase 1 *)
    Audit.observe a (E.Ack { round = 3; node = 1; uid = 0; latency = 3 });
    round_ends a ~from:3 ~upto:3;
    Audit.observe a (E.Phase_start { round = 4; phase = 1; preamble = true });
    round_ends a ~from:4 ~upto:4;
    Audit.finish a;
    Audit.violations a
  in
  let missed = run_phase ~with_progress:false in
  checki "miss flagged once" 1
    (count_kind missed (function
      | Audit.Progress_miss { phase = 0 } -> true
      | _ -> false));
  checkb "flagged for the receiver" true
    (List.for_all (fun v -> v.Audit.node = 0) missed);
  (* node 1 is the active sender: its own neighbor (node 0) is not
     active, so node 1 carries no obligation *)
  let ok = run_phase ~with_progress:true in
  checki "no miss with progress" 0 (List.length ok)

(* --- QCheck: online auditor == offline reference scan --- *)

(* One scripted ack history: per node at most one bcast, acked or not.
   The offline rule (straight from the LB spec): flag node u iff
   - acked and ack_round - bcast_round > t_ack, or
   - never acked and rounds_observed - bcast_round > t_ack. *)
let audit_equivalence_property =
  let open QCheck in
  let scenario =
    let node_plan =
      triple (int_bound 6) (int_bound 12) (option (int_bound 10))
    in
    pair (list_of_size Gen.(1 -- 8) node_plan) (int_bound 6)
  in
  Test.make ~count:300 ~name:"auditor flags exactly the offline deadline misses"
    scenario
    (fun (plans, t_ack) ->
      (* materialize: node i bcasts at round b; delay d means ack at b+1+d *)
      let plans =
        List.mapi
          (fun i (b, d_extra, ack) ->
            let bcast_round = b in
            let ack_round =
              Option.map (fun d -> bcast_round + 1 + d + (d_extra mod 3)) ack
            in
            (i, bcast_round, ack_round))
          plans
      in
      let horizon =
        List.fold_left
          (fun acc (_, b, a) -> max acc (max b (Option.value a ~default:0)))
          0 plans
        + 1
      in
      let a = Audit.create ~t_ack () in
      for r = 0 to horizon - 1 do
        List.iter
          (fun (node, b, _) ->
            if b = r then Audit.observe a (E.Bcast { round = r; node; uid = 0 }))
          plans;
        List.iter
          (fun (node, b, ack) ->
            match ack with
            | Some ar when ar = r ->
                Audit.observe a
                  (E.Ack { round = r; node; uid = 0; latency = r - b })
            | _ -> ())
          plans;
        Audit.observe a
          (E.Round_end
             { round = r; transmitters = 0; deliveries = 0; collisions = 0 })
      done;
      Audit.finish a;
      let flagged_online =
        List.sort_uniq compare
          (List.filter_map
             (fun v ->
               match v.Audit.kind with
               | Audit.Late_ack _ | Audit.Missing_ack _ -> Some v.Audit.node
               | _ -> None)
             (Audit.violations a))
      in
      let flagged_offline =
        List.sort_uniq compare
          (List.filter_map
             (fun (node, b, ack) ->
               match ack with
               | Some ar -> if ar - b > t_ack then Some node else None
               | None -> if horizon - b > t_ack then Some node else None)
             plans)
      in
      if flagged_online <> flagged_offline then
        QCheck.Test.fail_reportf
          "t_ack=%d horizon=%d online=[%s] offline=[%s]" t_ack horizon
          (String.concat ";" (List.map string_of_int flagged_online))
          (String.concat ";" (List.map string_of_int flagged_offline))
      else true)

(* --- engine integration --- *)

(* A deterministic random configuration built twice from the same seed
   must yield bit-identical traces with and without a sink attached, and
   identical to the reference resolver: the disabled path is the PR 2
   engine, and the enabled path must not perturb execution either. *)
let build_config seed =
  let rng = Rng.of_int seed in
  let n = 3 + Rng.int rng 20 in
  let dual =
    Geo.random_field ~rng ~n ~width:3.0 ~height:3.0 ~r:1.5 ~gray_g':0.5 ()
  in
  let nodes =
    Array.init n (fun src ->
        let node_rng = Rng.split rng in
        {
          P.decide =
            (fun ~round:_ _ ->
              if Rng.bernoulli node_rng 0.3 then
                P.Transmit (M.Data (M.payload ~src ~uid:0 ()))
              else P.Listen);
          absorb = (fun ~round:_ d -> match d with Some _ -> [ () ] | None -> []);
        })
  in
  (dual, nodes)

let trace_fingerprint trace =
  let buf = Buffer.create 256 in
  Trace.iter
    (fun record ->
      Buffer.add_string buf (string_of_int record.Trace.round);
      Array.iter
        (fun a ->
          Buffer.add_char buf (match a with P.Transmit _ -> 'T' | P.Listen -> 'L'))
        record.Trace.actions;
      Array.iter
        (fun d -> Buffer.add_char buf (match d with Some _ -> '1' | None -> '0'))
        record.Trace.delivered)
    trace;
  Buffer.contents buf

let test_sink_does_not_perturb_traces () =
  List.iter
    (fun seed ->
      let run ~variant =
        let dual, nodes = build_config seed in
        let scheduler = Sch.bernoulli ~seed ~p:0.4 in
        let env = Radiosim.Env.null ~name:"obs" () in
        let trace, observer = Trace.recorder () in
        (match variant with
        | `Plain ->
            ignore
              (Engine.run ~observer ~dual ~scheduler ~nodes ~env ~rounds:25 ())
        | `Sink ->
            let sink = Sink.create ~capacity:16 () in
            ignore
              (Engine.run ~observer ~sink ~dual ~scheduler ~nodes ~env
                 ~rounds:25 ())
        | `Reference ->
            ignore
              (Engine.run_reference ~observer ~dual ~scheduler ~nodes ~env
                 ~rounds:25 ()));
        trace_fingerprint trace
      in
      let plain = run ~variant:`Plain in
      checkb "sink-enabled trace identical" true (run ~variant:`Sink = plain);
      checkb "reference trace identical" true (run ~variant:`Reference = plain))
    [ 11; 23; 47 ]

let test_engine_round_end_counts () =
  (* Round_end aggregates must equal the per-event counts inside the
     round's bracket. *)
  let dual, nodes = build_config 5 in
  let sink = Sink.create ~capacity:65536 () in
  let (_ : int) =
    Engine.run ~sink ~dual
      ~scheduler:(Sch.bernoulli ~seed:5 ~p:0.4)
      ~nodes
      ~env:(Radiosim.Env.null ~name:"obs" ())
      ~rounds:40 ()
  in
  let tx = ref 0 and dl = ref 0 and cl = ref 0 and rounds = ref 0 in
  Sink.iter sink (fun e ->
      match e with
      | E.Transmit _ -> incr tx
      | E.Deliver _ -> incr dl
      | E.Collision _ -> incr cl
      | E.Round_end { transmitters; deliveries; collisions; _ } ->
          incr rounds;
          checki "transmitters agree" !tx transmitters;
          checki "deliveries agree" !dl deliveries;
          checki "collisions agree" !cl collisions;
          tx := 0;
          dl := 0;
          cl := 0
      | _ -> ());
  checki "all rounds bracketed" 40 !rounds

(* --- service integration: glue + auditor vs Lb_spec --- *)

let test_service_obs_matches_spec () =
  let dual = Geo.random_field ~rng:(Rng.of_int 99) ~n:24 ~width:3.0 ~height:3.0 ~r:1.5 ~gray_g':0.5 () in
  let params = Params.of_dual ~tack_phases:1 ~eps1:0.25 dual in
  let phases = 3 in
  let capacity = phases * params.Params.phase_len * (2 * Dual.n dual + 8) in
  let sink = Sink.create ~capacity () in
  let metrics = Metrics.create () in
  let auditor = L.Lb_obs.auditor ~dual ~params () in
  Sink.on_event sink (Audit.observe auditor);
  let outcome =
    L.Service.run ~sink ~metrics ~dual ~params ~senders:[ 0; 5 ] ~phases ~seed:31 ()
  in
  Audit.finish auditor;
  let report = outcome.L.Service.report in
  let v = Audit.violations auditor in
  checki "ack counts agree" report.L.Lb_spec.ack_count
    (List.length (Audit.ack_latencies auditor));
  checki "deadline misses agree"
    (report.L.Lb_spec.late_ack_count + report.L.Lb_spec.missing_ack_count)
    (count_kind v (function
      | Audit.Late_ack _ | Audit.Missing_ack _ -> true
      | _ -> false));
  checki "progress misses agree" report.L.Lb_spec.progress_failures
    (count_kind v (function Audit.Progress_miss _ -> true | _ -> false));
  let max_latency =
    List.fold_left (fun acc (_, _, l) -> max acc l) 0 (Audit.ack_latencies auditor)
  in
  checki "max latency agrees" report.L.Lb_spec.max_ack_latency max_latency;
  checki "one snapshot per phase" phases
    (List.length outcome.L.Service.obs_snapshots);
  (* the sink-enabled service outcome equals the plain one *)
  let plain =
    L.Service.run ~dual ~params ~senders:[ 0; 5 ] ~phases ~seed:31 ()
  in
  checkb "identical report with and without sink" true
    (plain.L.Service.report = report);
  (* bcast/ack counters line up with the spec report *)
  (match Metrics.summary (Metrics.histogram metrics "lb.ack_latency") with
  | Some s -> checki "ack histogram count" report.L.Lb_spec.ack_count s.Metrics.count
  | None -> checki "ack histogram empty means no acks" 0 report.L.Lb_spec.ack_count);
  checkb "no events dropped" true (Sink.dropped sink = 0)

(* --- string codec: escape must be exactly invertible --- *)

module J = Obs.Json

let parse_single_string line =
  match J.parse_flat line with
  | Ok [ ("k", J.Str s) ] -> Ok s
  | Ok fields -> Error (Printf.sprintf "unexpected fields (%d)" (List.length fields))
  | Error e -> Error e

let roundtrip_string s =
  parse_single_string (Printf.sprintf "{\"k\":\"%s\"}" (J.escape s))

let test_codec_all_bytes () =
  (* Every byte, alone and in context, survives escape → parse. *)
  for b = 0 to 255 do
    let probe = Printf.sprintf "a%cb" (Char.chr b) in
    match roundtrip_string probe with
    | Ok s ->
        checkb (Printf.sprintf "byte 0x%02x round-trips" b) true
          (String.equal s probe)
    | Error e -> Alcotest.failf "byte 0x%02x: %s" b e
  done

let test_codec_u_escape_exactness () =
  (* The \uXXXX parser must accept exactly what escape emits — four hex
     digits, either case — and nothing looser.  int_of_string-style
     leniency (underscores, 0x prefixes) silently changed bytes before
     re-emission, which is what this pins down. *)
  let accepted =
    [ ("{\"k\":\"\\u0041\"}", "A"); ("{\"k\":\"\\u000b\"}", "\011");
      ("{\"k\":\"\\u000B\"}", "\011"); ("{\"k\":\"\\u007F\"}", "\127");
      ("{\"k\":\"\\b\"}", "\b"); ("{\"k\":\"\\f\"}", "\012") ]
  in
  List.iter
    (fun (line, want) ->
      match parse_single_string line with
      | Ok s -> checkb (Printf.sprintf "%s decodes" line) true (String.equal s want)
      | Error e -> Alcotest.failf "%s rejected: %s" line e)
    accepted;
  let rejected =
    [ "{\"k\":\"\\u0_41\"}";        (* underscore leniency *)
      "{\"k\":\"\\u1_23\"}";
      "{\"k\":\"\\u0x12\"}";        (* radix-prefix leniency *)
      "{\"k\":\"\\u004\"}";         (* too short *)
      "{\"k\":\"\\u004g\"}";        (* non-hex digit *)
      "{\"k\":\"\\u0080\"}";        (* above ASCII: raw bytes only *)
      "{\"k\":\"\\uFFFF\"}" ]
  in
  List.iter
    (fun line ->
      match parse_single_string line with
      | Ok s -> Alcotest.failf "%s wrongly accepted as %S" line s
      | Error _ -> ())
    rejected

let codec_roundtrip_property =
  QCheck.Test.make ~name:"json string codec: escape/parse_flat exact inverse"
    ~count:500
    QCheck.(string_gen_of_size Gen.(0 -- 40) Gen.char)
    (fun s ->
      match roundtrip_string s with
      | Ok s' -> String.equal s s'
      | Error e -> QCheck.Test.fail_reportf "parse failed on %S: %s" s e)

let qcheck_cases = [ audit_equivalence_property; codec_roundtrip_property ]

let suite =
  [
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "streaming consumers" `Quick test_consumers_see_everything;
    Alcotest.test_case "json roundtrip per constructor" `Quick
      test_json_roundtrip_per_constructor;
    Alcotest.test_case "jsonl file roundtrip" `Quick test_jsonl_file_roundtrip;
    Alcotest.test_case "parser rejects malformed lines" `Quick
      test_parser_rejections;
    Alcotest.test_case "string codec: all 256 bytes" `Quick test_codec_all_bytes;
    Alcotest.test_case "string codec: \\u escape exactness" `Quick
      test_codec_u_escape_exactness;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "bounded histogram mode" `Quick
      test_bounded_histogram_mode;
    Alcotest.test_case "bounded histogram fixed memory" `Quick
      test_bounded_histogram_fixed_memory;
    Alcotest.test_case "metrics artifact escaping" `Quick test_metrics_artifact;
    Alcotest.test_case "audit: timely ack is clean" `Quick test_audit_ack_ok;
    Alcotest.test_case "audit: late ack" `Quick test_audit_late_ack;
    Alcotest.test_case "audit: missing then late ack" `Quick
      test_audit_missing_then_ack;
    Alcotest.test_case "audit: missing at finish" `Quick
      test_audit_missing_at_finish;
    Alcotest.test_case "audit: delta breach" `Quick test_audit_delta_breach;
    Alcotest.test_case "audit: progress obligations" `Quick test_audit_progress;
    Alcotest.test_case "engine: sink does not perturb traces" `Quick
      test_sink_does_not_perturb_traces;
    Alcotest.test_case "engine: round_end counts" `Quick
      test_engine_round_end_counts;
    Alcotest.test_case "service: auditor matches Lb_spec" `Quick
      test_service_obs_matches_spec;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
