(* Tests for the baseline broadcast strategies and the shared
   progress-latency harness. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module P = Radiosim.Process
module M = Localcast.Messages
module Decay = Baseline.Decay
module Uniform = Baseline.Uniform
module Round_robin = Baseline.Round_robin
module Harness = Baseline.Harness
module Rng = Prng.Rng

let payload src = M.payload ~src ~uid:0 ()

let count_transmissions node rounds =
  let count = ref 0 in
  for round = 0 to rounds - 1 do
    match node.P.decide ~round [] with
    | P.Transmit _ -> incr count
    | P.Listen -> ()
  done;
  !count

let test_decay_levels_for () =
  checki "delta'=2" 2 (Decay.levels_for ~delta':2);
  checki "delta'=8" 4 (Decay.levels_for ~delta':8);
  checki "delta'=9" 5 (Decay.levels_for ~delta':9);
  checki "delta'=1" 2 (Decay.levels_for ~delta':1)

let test_decay_validation () =
  Alcotest.check_raises "levels >= 1"
    (Invalid_argument "Decay.node: levels must be >= 1") (fun () ->
      ignore (Decay.node ~levels:0 ~message:(payload 0) ~rng:(Rng.of_int 1)))

let test_decay_transmission_rate () =
  (* With a single level the schedule transmits w.p. 1/2 every round. *)
  let node = Decay.node ~levels:1 ~message:(payload 0) ~rng:(Rng.of_int 2) in
  let c = count_transmissions node 10_000 in
  checkb "rate near 1/2" true (Float.abs ((float_of_int c /. 10_000.0) -. 0.5) < 0.02)

let test_decay_level_structure () =
  (* With 3 levels, per-epoch expected transmissions = 1/2 + 1/4 + 1/8. *)
  let node = Decay.node ~levels:3 ~message:(payload 0) ~rng:(Rng.of_int 3) in
  let epochs = 6000 in
  let c = count_transmissions node (3 * epochs) in
  let per_epoch = float_of_int c /. float_of_int epochs in
  checkb "per-epoch rate near 7/8" true (Float.abs (per_epoch -. 0.875) < 0.05)

let test_decay_hot_predicate () =
  checkb "level 0 hot" true (Decay.hot_predicate ~levels:4 ~hot_levels:2 0);
  checkb "level 1 hot" true (Decay.hot_predicate ~levels:4 ~hot_levels:2 1);
  checkb "level 2 cold" false (Decay.hot_predicate ~levels:4 ~hot_levels:2 2);
  checkb "wraps around" true (Decay.hot_predicate ~levels:4 ~hot_levels:2 4)

let test_uniform_edges () =
  let one = Uniform.node ~p:1.0 ~message:(payload 0) ~rng:(Rng.of_int 4) in
  checki "p=1 always" 100 (count_transmissions one 100);
  let zero = Uniform.node ~p:0.0 ~message:(payload 0) ~rng:(Rng.of_int 4) in
  checki "p=0 never" 0 (count_transmissions zero 100);
  Alcotest.check_raises "validation"
    (Invalid_argument "Uniform.node: p must be in [0, 1]") (fun () ->
      ignore (Uniform.node ~p:1.5 ~message:(payload 0) ~rng:(Rng.of_int 4)))

let test_uniform_rate () =
  let node = Uniform.node ~p:0.25 ~message:(payload 0) ~rng:(Rng.of_int 5) in
  let c = count_transmissions node 10_000 in
  checkb "rate near 1/4" true (Float.abs ((float_of_int c /. 10_000.0) -. 0.25) < 0.02)

let test_round_robin_pattern () =
  let node = Round_robin.node ~n:4 ~id:2 ~message:(payload 2) in
  for round = 0 to 19 do
    let expected = round mod 4 = 2 in
    let actual =
      match node.P.decide ~round [] with P.Transmit _ -> true | P.Listen -> false
    in
    checkb "slot discipline" expected actual
  done;
  Alcotest.check_raises "validation" (Invalid_argument "Round_robin.node: bad id/n")
    (fun () -> ignore (Round_robin.node ~n:3 ~id:3 ~message:(payload 0)))

let test_harness_immediate () =
  let dual = Geo.pair () in
  let nodes =
    [| Uniform.node ~p:1.0 ~message:(payload 0) ~rng:(Rng.of_int 6); Harness.receiver () |]
  in
  Alcotest.check (Alcotest.option Alcotest.int) "heard at round 0" (Some 0)
    (Harness.first_reception ~dual ~scheduler:Sch.reliable_only ~nodes ~receiver:1
       ~max_rounds:10)

let test_harness_starvation () =
  let dual = Geo.pair () in
  let nodes =
    [| Uniform.node ~p:0.0 ~message:(payload 0) ~rng:(Rng.of_int 6); Harness.receiver () |]
  in
  Alcotest.check (Alcotest.option Alcotest.int) "never hears" None
    (Harness.first_reception ~dual ~scheduler:Sch.reliable_only ~nodes ~receiver:1
       ~max_rounds:25)

let test_decay_beats_starvation_without_adversary () =
  (* Decay makes progress quickly on the grey-cluster fixture when the
     scheduler keeps unreliable links off. *)
  let k = 8 in
  let dual = Geo.gray_cluster ~k ~r:1.5 () in
  let rng = Rng.of_int 7 in
  let levels = Decay.levels_for ~delta':(Dual.delta' dual) in
  let nodes =
    Array.init (k + 2) (fun v ->
        if v = 0 then Harness.receiver ()
        else Decay.node ~levels ~message:(payload v) ~rng:(Rng.split rng))
  in
  let latency =
    Harness.first_reception ~dual ~scheduler:Sch.reliable_only ~nodes ~receiver:0
      ~max_rounds:500
  in
  checkb "fast progress without adversary" true
    (match latency with Some l -> l < 100 | None -> false)

let test_thwart_starves_decay () =
  (* The paper's Discussion attack: under the thwarting scheduler, Decay's
     receiver starves far longer than under the benign scheduler. *)
  let k = 8 in
  let dual = Geo.gray_cluster ~k ~r:1.5 () in
  let levels = Decay.levels_for ~delta':(Dual.delta' dual) in
  let run scheduler seed =
    let rng = Rng.of_int seed in
    let nodes =
      Array.init (k + 2) (fun v ->
          if v = 0 then Harness.receiver ()
          else Decay.node ~levels ~message:(payload v) ~rng:(Rng.split rng))
    in
    Harness.first_reception ~dual ~scheduler ~nodes ~receiver:0 ~max_rounds:4000
  in
  let thwart =
    Sch.thwart ~hot:(Decay.hot_predicate ~levels ~hot_levels:(levels - 1))
  in
  let benign_total = ref 0 and thwart_total = ref 0 in
  let trials = 10 in
  for seed = 1 to trials do
    (match run Sch.reliable_only seed with
    | Some l -> benign_total := !benign_total + l
    | None -> benign_total := !benign_total + 4000);
    match run thwart seed with
    | Some l -> thwart_total := !thwart_total + l
    | None -> thwart_total := !thwart_total + 4000
  done;
  checkb "adversary at least triples decay's latency" true
    (!thwart_total > 3 * !benign_total)

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("decay levels_for", test_decay_levels_for);
      ("decay validation", test_decay_validation);
      ("decay transmission rate", test_decay_transmission_rate);
      ("decay level structure", test_decay_level_structure);
      ("decay hot predicate", test_decay_hot_predicate);
      ("uniform edges", test_uniform_edges);
      ("uniform rate", test_uniform_rate);
      ("round robin pattern", test_round_robin_pattern);
      ("harness immediate", test_harness_immediate);
      ("harness starvation", test_harness_starvation);
      ("decay fast without adversary", test_decay_beats_starvation_without_adversary);
      ("thwart starves decay", test_thwart_starves_decay);
    ]
