let levels_for ~delta' =
  let rec bits k = if 1 lsl k >= delta' then k else bits (k + 1) in
  max 1 (bits 0) + 1

let node ~levels ~message ~rng =
  if levels < 1 then invalid_arg "Decay.node: levels must be >= 1";
  let decide ~round _inputs =
    let level = round mod levels in
    let p = 1.0 /. float_of_int (1 lsl (level + 1)) in
    if Prng.Rng.bernoulli rng p then
      Radiosim.Process.Transmit (Localcast.Messages.Data message)
    else Radiosim.Process.Listen
  in
  { Radiosim.Process.decide; absorb = (fun ~round:_ _ -> []) }

let hot_predicate ~levels ~hot_levels round = round mod levels < hot_levels

let hot_levels_against ~levels ~contention =
  if contention < 1 then 0
  else begin
    let threshold = log (float_of_int (contention + 1)) /. float_of_int contention in
    let rec count j =
      if j >= levels then j
      else if 1.0 /. float_of_int (1 lsl (j + 1)) > threshold then count (j + 1)
      else j
    in
    count 0
  end
