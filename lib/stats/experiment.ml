let trials ~seed ~n f =
  List.init n (fun trial ->
      (* A fixed affine-then-mix derivation keeps trial seeds reproducible
         and well separated. *)
      let derived = (seed * 0x9E3779B1) + (trial * 0x85EBCA77) + 0x165667B1 in
      f ~trial ~seed:derived)

let count p l = List.length (List.filter p l)

let float_samples f l = List.map f l

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)
