(* Tests for the statistics/experiment-harness library. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

module Summary = Stats.Summary
module Ci = Stats.Ci
module Table = Stats.Table
module Experiment = Stats.Experiment

let test_summary_known () =
  let s = Summary.of_list [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checki "count" 5 s.Summary.count;
  checkf "mean" 3.0 s.Summary.mean;
  checkf "min" 1.0 s.Summary.min;
  checkf "max" 5.0 s.Summary.max;
  checkf "median" 3.0 s.Summary.median;
  checkf "stddev" (sqrt 2.5) s.Summary.stddev

let test_summary_singleton () =
  let s = Summary.of_list [ 7.5 ] in
  checkf "mean" 7.5 s.Summary.mean;
  checkf "stddev 0" 0.0 s.Summary.stddev;
  checkf "p99" 7.5 s.Summary.p99

let test_summary_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty sample")
    (fun () -> ignore (Summary.of_list []))

let test_summary_of_ints () =
  let s = Summary.of_ints [ 2; 4; 6 ] in
  checkf "mean" 4.0 s.Summary.mean

let test_mean () =
  checkf "mean" 2.0 (Summary.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Summary.mean: empty sample")
    (fun () -> ignore (Summary.mean []))

let test_percentile () =
  let sorted = [| 10.0; 20.0; 30.0; 40.0 |] in
  checkf "p0" 10.0 (Summary.percentile sorted 0.0);
  checkf "p100" 40.0 (Summary.percentile sorted 1.0);
  checkf "p50 interpolated" 25.0 (Summary.percentile sorted 0.5);
  Alcotest.check_raises "q range" (Invalid_argument "Summary.percentile: q outside [0,1]")
    (fun () -> ignore (Summary.percentile sorted 1.5))

let test_wilson_basic () =
  let ci = Ci.wilson ~successes:90 ~trials:100 () in
  checkf "rate" 0.9 ci.Ci.rate;
  checkb "ordering" true (ci.Ci.lower <= ci.Ci.rate && ci.Ci.rate <= ci.Ci.upper);
  checkb "bounded" true (ci.Ci.lower >= 0.0 && ci.Ci.upper <= 1.0)

let test_wilson_extremes () =
  let all = Ci.wilson ~successes:50 ~trials:50 () in
  checkb "upper is 1 at perfect score" true (all.Ci.upper = 1.0);
  checkb "lower below 1" true (all.Ci.lower < 1.0);
  let none = Ci.wilson ~successes:0 ~trials:50 () in
  checkb "lower is 0 at zero score" true (none.Ci.lower = 0.0);
  checkb "upper above 0 (rule of three)" true (none.Ci.upper > 0.0)

let test_wilson_narrows () =
  let small = Ci.wilson ~successes:9 ~trials:10 () in
  let large = Ci.wilson ~successes:900 ~trials:1000 () in
  checkb "more trials, tighter interval" true
    (large.Ci.upper -. large.Ci.lower < small.Ci.upper -. small.Ci.lower)

let test_wilson_validation () =
  Alcotest.check_raises "trials" (Invalid_argument "Ci.wilson: trials must be positive")
    (fun () -> ignore (Ci.wilson ~successes:0 ~trials:0 ()));
  Alcotest.check_raises "successes"
    (Invalid_argument "Ci.wilson: successes outside [0, trials]") (fun () ->
      ignore (Ci.wilson ~successes:5 ~trials:3 ()))

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let rendered = Table.render t in
  checkb "has title" true
    (String.length rendered > 0 && String.sub rendered 0 8 = "== demo ");
  (* all data lines share one width *)
  let lines = String.split_on_char '\n' rendered in
  let widths =
    List.filter_map
      (fun l -> if String.length l > 0 && l.[0] = '|' then Some (String.length l) else None)
      lines
  in
  checkb "aligned" true (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_mismatch () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_row: column count mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_table_cells () =
  Alcotest.check Alcotest.string "int" "42" (Table.cell_int 42);
  Alcotest.check Alcotest.string "float" "3.14" (Table.cell_float 3.14159);
  Alcotest.check Alcotest.string "float decimals" "3.1416"
    (Table.cell_float ~decimals:4 3.14159);
  Alcotest.check Alcotest.string "rate" "97.50%" (Table.cell_rate 0.975)

let test_trials_runner () =
  let results = Experiment.trials ~seed:1 ~n:5 (fun ~trial ~seed -> (trial, seed)) in
  checki "five results" 5 (List.length results);
  Alcotest.check (Alcotest.list Alcotest.int) "trial indices in order"
    [ 0; 1; 2; 3; 4 ]
    (List.map fst results);
  let seeds = List.map snd results in
  checki "distinct seeds" 5 (List.length (List.sort_uniq Int.compare seeds))

let test_trials_reproducible () =
  let run () = Experiment.trials ~seed:9 ~n:3 (fun ~trial:_ ~seed -> seed) in
  checkb "same master seed, same sub-seeds" true (run () = run ())

let test_trials_seed_derivation () =
  (* The per-trial seed routes the affine combination through the
     SplitMix64 finalizer; lock the published derivation down so tables
     stay regenerable. *)
  let expected ~seed ~trial =
    let affine = (seed * 0x9E3779B1) + (trial * 0x85EBCA77) + 0x165667B1 in
    Int64.to_int (Prng.Splitmix.mix (Int64.of_int affine))
  in
  let seeds = Experiment.trials ~seed:20260706 ~n:4 (fun ~trial:_ ~seed -> seed) in
  Alcotest.check (Alcotest.list Alcotest.int) "affine-then-mix"
    (List.init 4 (fun trial -> expected ~seed:20260706 ~trial))
    seeds

let test_trials_par_matches_sequential () =
  let f ~trial ~seed = (trial, seed, float_of_int (seed land 0xffff) /. 7.0) in
  let reference = Experiment.trials ~seed:42 ~n:7 f in
  List.iter
    (fun domains ->
      checkb
        (Printf.sprintf "domains=%d bit-identical" domains)
        true
        (Experiment.trials_par ~domains ~seed:42 ~n:7 f = reference))
    [ 1; 2; 3; 7; 16 ]

let test_trials_par_edge_cases () =
  checkb "n=0" true (Experiment.trials_par ~domains:4 ~seed:1 ~n:0 (fun ~trial ~seed:_ -> trial) = []);
  checkb "n=1" true
    (Experiment.trials_par ~domains:4 ~seed:1 ~n:1 (fun ~trial:_ ~seed -> seed)
    = Experiment.trials ~seed:1 ~n:1 (fun ~trial:_ ~seed -> seed));
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Experiment.trials_par: domains must be >= 1") (fun () ->
      ignore (Experiment.trials_par ~domains:0 ~seed:1 ~n:3 (fun ~trial ~seed:_ -> trial)))

exception Trial_failed of int

(* A raising trial must surface on the calling thread — with its
   backtrace and identity intact, never as a Domain.join artifact or a
   silent hang — and must not leave worker domains running. *)
let test_trials_par_failure_propagation () =
  let run_failing ~domains ~failing =
    try
      ignore
        (Experiment.trials_par ~domains ~seed:9 ~n:20 (fun ~trial ~seed:_ ->
             if trial = failing then raise (Trial_failed trial);
             trial));
      None
    with Trial_failed t -> Some t
  in
  (* Worker-domain failure (trial 13 lands off the main domain's first
     chunk at domains:4) and main-domain failure (trial 0). *)
  checkb "worker-domain exception re-raised" true
    (run_failing ~domains:4 ~failing:13 = Some 13);
  checkb "main-domain exception re-raised" true
    (run_failing ~domains:4 ~failing:0 = Some 0);
  checkb "sequential path too" true (run_failing ~domains:1 ~failing:5 = Some 5);
  (* After a failed run all domains were joined: the harness is reusable
     and still bit-identical to the sequential runner. *)
  let f ~trial ~seed = (trial * 3) + (seed land 7) in
  checkb "harness intact after failure" true
    (Experiment.trials_par ~domains:4 ~seed:9 ~n:20 f
    = Experiment.trials ~seed:9 ~n:20 f)

let test_summary_percentiles_small_n () =
  (* Nearest-rank-with-interpolation at small n, pinned so refactors of
     the percentile path can't drift: p99 over 3 samples interpolates
     inside the top gap, p90 over 10 lands between the 9th and 10th. *)
  let s3 = Summary.of_list [ 1.0; 2.0; 3.0 ] in
  checkf "p99 of {1,2,3}" 2.98 s3.Summary.p99;
  checkf "median of {1,2,3}" 2.0 s3.Summary.median;
  let s10 = Summary.of_ints (List.init 10 (fun i -> i)) in
  checkf "p90 of 0..9" 8.1 s10.Summary.p90;
  checkf "p99 of 0..9" 8.91 s10.Summary.p99;
  (* Two samples: every percentile is a convex combination of the two. *)
  let s2 = Summary.of_list [ 10.0; 20.0 ] in
  checkf "median of pair" 15.0 s2.Summary.median;
  checkf "p90 of pair" 19.0 s2.Summary.p90

let test_summary_rejects_nan () =
  (* NaN poisons sort comparisons (Float.compare is total but places NaN
     arbitrarily relative to the data's intent) and every moment; the
     contract is to reject at the door. *)
  List.iter
    (fun samples ->
      Alcotest.check_raises "NaN rejected"
        (Invalid_argument "Summary.of_array: NaN sample") (fun () ->
          ignore (Summary.of_list samples)))
    [ [ Float.nan ]; [ 1.0; Float.nan; 3.0 ]; [ Float.nan; Float.nan ] ];
  (* Infinities are honest samples and pass through. *)
  let s = Summary.of_list [ 1.0; Float.infinity ] in
  checkb "inf max" true (s.Summary.max = Float.infinity);
  checkb "inf mean" true (s.Summary.mean = Float.infinity)

(* The work-stealing runner must stay bit-identical to the sequential
   runner even when per-trial cost is wildly uneven — stragglers shift
   which domain executes which chunk, but results land by trial index
   and seeds derive from the trial index alone.  The busy-work below
   makes early trials ~100x the cost of late ones (and vice versa), so
   the chunk cursor is actually contended at domains > 1. *)
let test_trials_par_work_stealing () =
  let burn spins seed =
    let acc = ref seed in
    for _ = 1 to spins do
      acc := (!acc * 0x9E3779B1) land max_int
    done;
    !acc
  in
  let front_loaded ~trial ~seed = (trial, burn ((50 - trial) * 200) seed) in
  let back_loaded ~trial ~seed = (trial, burn (trial * 200) seed) in
  List.iter
    (fun (name, f) ->
      let reference = Experiment.trials ~seed:77 ~n:50 f in
      List.iter
        (fun domains ->
          checkb
            (Printf.sprintf "%s domains=%d bit-identical" name domains)
            true
            (Experiment.trials_par ~domains ~seed:77 ~n:50 f = reference))
        [ 1; 2; 7 ])
    [ ("front-loaded", front_loaded); ("back-loaded", back_loaded) ]

(* --- streaming quantiles (Stats.Quantile) --- *)

module Quantile = Stats.Quantile

let test_quantile_empty () =
  let q = Quantile.create () in
  checki "count" 0 (Quantile.count q);
  checkb "quantile NaN" true (Float.is_nan (Quantile.quantile q 0.5));
  checkb "mean NaN" true (Float.is_nan (Quantile.mean q));
  checkb "min +inf" true (Quantile.min_value q = infinity);
  checkb "max -inf" true (Quantile.max_value q = neg_infinity)

let test_quantile_exact_moments () =
  let q = Quantile.create () in
  for i = 1 to 100 do
    Quantile.observe_int q i
  done;
  checki "count" 100 (Quantile.count q);
  checkf "sum exact" 5050.0 (Quantile.sum q);
  checkf "mean exact" 50.5 (Quantile.mean q);
  checkf "min exact" 1.0 (Quantile.min_value q);
  checkf "max exact" 100.0 (Quantile.max_value q);
  let eb = Quantile.error_bound q in
  (* extreme quantiles stay inside [min, max] and within the bound *)
  let q0 = Quantile.quantile q 0.0 and q1 = Quantile.quantile q 1.0 in
  checkb "q0 near min" true (q0 >= 1.0 && q0 <= 1.0 *. (1.0 +. eb));
  checkb "q1 near max" true (q1 <= 100.0 && q1 >= 100.0 *. (1.0 -. eb));
  checkb "median within relative error bound" true
    (Float.abs (Quantile.quantile q 0.5 -. 50.0) <= (eb *. 50.0) +. 1.0)

let test_quantile_constant_stream () =
  let q = Quantile.create () in
  for _ = 1 to 1000 do
    Quantile.observe q 37.25
  done;
  (* every quantile of a constant stream is the constant, exactly:
     estimates are clamped into [min, max] *)
  List.iter
    (fun p -> checkf (Printf.sprintf "q%.2f" p) 37.25 (Quantile.quantile q p))
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ]

let test_quantile_observe_int_matches_observe () =
  let a = Quantile.create () and b = Quantile.create () in
  List.iter
    (fun k ->
      Quantile.observe_int a k;
      Quantile.observe b (float_of_int k))
    [ 0; 1; 7; 1024; 999_999; 3 ];
  checki "count" (Quantile.count a) (Quantile.count b);
  checkf "sum" (Quantile.sum a) (Quantile.sum b);
  List.iter
    (fun p ->
      checkf (Printf.sprintf "q%.2f equal" p) (Quantile.quantile a p)
        (Quantile.quantile b p))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let test_quantile_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  let q = Quantile.create () in
  checkb "negative observation" true (raises (fun () -> Quantile.observe q (-1.0)));
  checkb "NaN observation" true (raises (fun () -> Quantile.observe q Float.nan));
  checkb "negative observe_int" true (raises (fun () -> Quantile.observe_int q (-1)));
  checkb "q out of range" true (raises (fun () -> Quantile.quantile q 1.5));
  checkb "sub = 0" true (raises (fun () -> Quantile.create ~sub:0 ()));
  checkb "hi <= lo" true (raises (fun () -> Quantile.create ~lo:4.0 ~hi:2.0 ()))

let test_quantile_reset () =
  let q = Quantile.create () in
  Quantile.observe_int q 5;
  Quantile.reset q;
  checki "count after reset" 0 (Quantile.count q);
  checkb "quantile NaN after reset" true
    (Float.is_nan (Quantile.quantile q 0.5));
  Quantile.observe_int q 9;
  checkf "usable after reset" 9.0 (Quantile.quantile q 0.5)

(* ------------------------------------------------------------------ *)
(* Ranked-table aggregation (Rank), the E25 tournament's aggregator.   *)

module Rank = Stats.Rank

let test_rank_bootstrap_basic () =
  let samples = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let ci = Rank.bootstrap ~seed:11 samples in
  checkf "point estimate is the sample mean" 3.0 ci.Rank.mean;
  checkb "lower <= mean <= upper" true
    (ci.Rank.lower <= ci.Rank.mean && ci.Rank.mean <= ci.Rank.upper);
  checkb "interval has width on a spread sample" true
    (ci.Rank.upper > ci.Rank.lower);
  checkb "same (samples, seed) reproduces the interval" true
    (Rank.bootstrap ~seed:11 samples = ci);
  checkb "wider confidence widens the interval" true
    (let wide = Rank.bootstrap ~seed:11 ~confidence:0.99 samples in
     wide.Rank.upper -. wide.Rank.lower >= ci.Rank.upper -. ci.Rank.lower)

let test_rank_bootstrap_degenerate () =
  (* A single trial and a zero-variance cell both collapse the interval
     to the mean instead of resampling. *)
  let single = Rank.bootstrap ~seed:3 [| 42.0 |] in
  checkb "single sample collapses" true
    (single = { Rank.mean = 42.0; lower = 42.0; upper = 42.0 });
  let flat = Rank.bootstrap ~seed:3 [| 7.0; 7.0; 7.0; 7.0 |] in
  checkb "zero variance collapses" true
    (flat = { Rank.mean = 7.0; lower = 7.0; upper = 7.0 });
  (* Degenerate inputs consume no randomness, so the seed is irrelevant. *)
  checkb "seed-independent when degenerate" true
    (Rank.bootstrap ~seed:4 [| 7.0; 7.0; 7.0; 7.0 |] = flat)

let test_rank_bootstrap_validation () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Rank.bootstrap: empty samples") (fun () ->
      ignore (Rank.bootstrap ~seed:1 [||]));
  Alcotest.check_raises "NaN sample"
    (Invalid_argument "Rank.bootstrap: NaN sample") (fun () ->
      ignore (Rank.bootstrap ~seed:1 [| 1.0; Float.nan |]));
  Alcotest.check_raises "replicates"
    (Invalid_argument "Rank.bootstrap: replicates must be >= 1") (fun () ->
      ignore (Rank.bootstrap ~replicates:0 ~seed:1 [| 1.0; 2.0 |]));
  Alcotest.check_raises "confidence = 1"
    (Invalid_argument "Rank.bootstrap: confidence must be in (0, 1)")
    (fun () -> ignore (Rank.bootstrap ~confidence:1.0 ~seed:1 [| 1.0; 2.0 |]));
  Alcotest.check_raises "confidence NaN"
    (Invalid_argument "Rank.bootstrap: confidence must be in (0, 1)")
    (fun () ->
      ignore (Rank.bootstrap ~confidence:Float.nan ~seed:1 [| 1.0; 2.0 |]))

let ranks rows = List.map (fun r -> (r.Rank.label, r.Rank.rank)) rows

let test_rank_table_order () =
  let cells = [ ("b", [| 2.0 |]); ("a", [| 1.0 |]); ("c", [| 3.0 |]) ] in
  Alcotest.(check (list (pair string int)))
    "ascending (smaller is better)"
    [ ("a", 1); ("b", 2); ("c", 3) ]
    (ranks (Rank.table ~seed:5 cells));
  Alcotest.(check (list (pair string int)))
    "descending (larger is better)"
    [ ("c", 1); ("b", 2); ("a", 3) ]
    (ranks (Rank.table ~descending:true ~seed:5 cells))

let test_rank_table_ties () =
  (* Exact ties share a rank with competition ("1224") numbering, and
     label order breaks the sort deterministically. *)
  let cells =
    [ ("d", [| 1.0 |]); ("c", [| 1.0 |]); ("b", [| 1.0 |]); ("a", [| 2.0 |]) ]
  in
  Alcotest.(check (list (pair string int)))
    "competition numbering"
    [ ("b", 1); ("c", 1); ("d", 1); ("a", 4) ]
    (ranks (Rank.table ~seed:5 cells));
  (* tie_eps groups near-equal means, measured against the group's
     representative (its best mean), not pairwise neighbours. *)
  let near =
    [ ("a", [| 1.0 |]); ("b", [| 1.04 |]); ("c", [| 1.08 |]); ("d", [| 2.0 |]) ]
  in
  Alcotest.(check (list (pair string int)))
    "tie_eps groups around the representative"
    [ ("a", 1); ("b", 1); ("c", 3); ("d", 4) ]
    (ranks (Rank.table ~tie_eps:0.05 ~seed:5 near))

let test_rank_table_single_trial () =
  (* Single-trial cells are legal: collapsed CIs, counts recorded. *)
  let rows = Rank.table ~seed:9 [ ("x", [| 3.0 |]); ("y", [| 1.0; 2.0 |]) ] in
  List.iter
    (fun r ->
      match r.Rank.label with
      | "x" ->
          checki "count" 1 r.Rank.count;
          checkb "collapsed" true
            (r.Rank.ci.Rank.lower = 3.0 && r.Rank.ci.Rank.upper = 3.0)
      | _ -> checki "count" 2 r.Rank.count)
    rows

let test_rank_table_row_independence () =
  (* A row's interval is keyed by (seed, label): it must not change when
     other rows join or leave the table. *)
  let samples = [| 1.0; 4.0; 2.0; 8.0; 5.0 |] in
  let ci_of rows label =
    (List.find (fun r -> r.Rank.label = label) rows).Rank.ci
  in
  let alone = Rank.table ~seed:7 [ ("arm", samples) ] in
  let crowded =
    Rank.table ~seed:7
      [ ("other", [| 9.0; 10.0; 11.0 |]); ("arm", samples) ]
  in
  checkb "interval independent of table mates" true
    (ci_of alone "arm" = ci_of crowded "arm")

let test_rank_table_validation () =
  Alcotest.check_raises "empty table"
    (Invalid_argument "Rank.table: empty table") (fun () ->
      ignore (Rank.table ~seed:1 []));
  Alcotest.check_raises "duplicate labels"
    (Invalid_argument "Rank.table: duplicate labels") (fun () ->
      ignore (Rank.table ~seed:1 [ ("a", [| 1.0 |]); ("a", [| 2.0 |]) ]));
  Alcotest.check_raises "NaN sample"
    (Invalid_argument "Rank.table: NaN sample") (fun () ->
      ignore (Rank.table ~seed:1 [ ("a", [| Float.nan |]) ]));
  Alcotest.check_raises "empty cell"
    (Invalid_argument "Rank.table: empty samples") (fun () ->
      ignore (Rank.table ~seed:1 [ ("a", [||]) ]));
  Alcotest.check_raises "negative tie_eps"
    (Invalid_argument "Rank.table: tie_eps must be >= 0") (fun () ->
      ignore (Rank.table ~tie_eps:(-0.1) ~seed:1 [ ("a", [| 1.0 |]) ]));
  Alcotest.check_raises "NaN tie_eps"
    (Invalid_argument "Rank.table: tie_eps must be >= 0") (fun () ->
      ignore (Rank.table ~tie_eps:Float.nan ~seed:1 [ ("a", [| 1.0 |]) ]))

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"bootstrap interval brackets the mean and reproduces"
      ~count:60
      (pair small_int (list_of_size Gen.(int_range 1 30) (int_range 0 100)))
      (fun (seed, xs) ->
        let samples = Array.of_list (List.map float_of_int xs) in
        let ci = Rank.bootstrap ~seed samples in
        ci.Rank.lower <= ci.Rank.mean
        && ci.Rank.mean <= ci.Rank.upper
        && Rank.bootstrap ~seed samples = ci);
    Test.make ~name:"table ranks are a permutation-invariant of the cells"
      ~count:60
      (pair small_int (int_range 2 8))
      (fun (seed, k) ->
        (* Any shuffle of the cells yields identical (label, rank, ci)
           rows once sorted: ranking is a function of the set. *)
        let cell i =
          ( Printf.sprintf "arm%d" i,
            Array.init 5 (fun j -> float_of_int (((i * 7) + (j * j)) mod 13))
          )
        in
        let cells = List.init k cell in
        let rotated = List.tl cells @ [ List.hd cells ] in
        let norm rows =
          List.sort compare
            (List.map (fun r -> (r.Rank.label, r.Rank.rank, r.Rank.ci)) rows)
        in
        norm (Rank.table ~seed cells) = norm (Rank.table ~seed rotated));
    Test.make ~name:"trials_par equals trials at any domain count" ~count:100
      (triple (int_range 1 8) (int_bound 40) small_int)
      (fun (domains, n, seed) ->
        let f ~trial ~seed = (trial, seed, seed * 3) in
        Experiment.trials_par ~domains ~seed ~n f
        = Experiment.trials ~seed ~n f);
    Test.make
      ~name:"streaming quantile tracks exact order statistics within bound"
      ~count:150
      (pair (list_of_size Gen.(int_range 1 400) (int_range 1 1_000_000))
         (int_bound 99))
      (fun (samples, pct) ->
        let q = Quantile.create () in
        List.iter (Quantile.observe_int q) samples;
        let sorted =
          Array.of_list (List.map float_of_int (List.sort compare samples))
        in
        let p = float_of_int pct /. 100.0 in
        let est = Quantile.quantile q p in
        (* Tolerance: the estimator's bounded relative error, plus one
           rank of slack on each side for the nearest-rank vs
           interpolated convention difference. *)
        let n = Array.length sorted in
        let r = p *. float_of_int (n - 1) in
        let lo = sorted.(max 0 (int_of_float (floor r) - 1)) in
        let hi = sorted.(min (n - 1) (int_of_float (ceil r) + 1)) in
        let eb = Quantile.error_bound q in
        est >= lo *. (1.0 -. eb) -. 1e-9 && est <= hi *. (1.0 +. eb) +. 1e-9);
  ]

let test_count_and_time () =
  checki "count" 2 (Experiment.count (fun x -> x > 1) [ 0; 2; 3 ]);
  let x, secs = Experiment.time (fun () -> 42) in
  checki "result" 42 x;
  checkb "non-negative time" true (secs >= 0.0);
  (* monotonic clock: a timed sleep-free busy loop reports a sane,
     strictly bounded duration *)
  let (), measured = Experiment.time (fun () -> ignore (Sys.opaque_identity (Array.make 1024 0))) in
  checkb "bounded time" true (measured < 60.0)

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("summary known values", test_summary_known);
      ("summary singleton", test_summary_singleton);
      ("summary empty raises", test_summary_empty_raises);
      ("summary of_ints", test_summary_of_ints);
      ("mean", test_mean);
      ("percentile", test_percentile);
      ("wilson basic", test_wilson_basic);
      ("wilson extremes", test_wilson_extremes);
      ("wilson narrows", test_wilson_narrows);
      ("wilson validation", test_wilson_validation);
      ("table render", test_table_render);
      ("table mismatch", test_table_mismatch);
      ("table cells", test_table_cells);
      ("trials runner", test_trials_runner);
      ("trials reproducible", test_trials_reproducible);
      ("trials seed derivation", test_trials_seed_derivation);
      ("trials_par matches sequential", test_trials_par_matches_sequential);
      ("trials_par edge cases", test_trials_par_edge_cases);
      ("trials_par failure propagation", test_trials_par_failure_propagation);
      ("summary percentiles at small n", test_summary_percentiles_small_n);
      ("summary rejects NaN", test_summary_rejects_nan);
      ("trials_par work stealing uneven load", test_trials_par_work_stealing);
      ("count and time", test_count_and_time);
      ("quantile empty", test_quantile_empty);
      ("quantile exact moments", test_quantile_exact_moments);
      ("quantile constant stream", test_quantile_constant_stream);
      ("quantile observe_int = observe", test_quantile_observe_int_matches_observe);
      ("quantile validation", test_quantile_validation);
      ("quantile reset", test_quantile_reset);
      ("rank bootstrap basic", test_rank_bootstrap_basic);
      ("rank bootstrap degenerate", test_rank_bootstrap_degenerate);
      ("rank bootstrap validation", test_rank_bootstrap_validation);
      ("rank table order", test_rank_table_order);
      ("rank table ties", test_rank_table_ties);
      ("rank table single trial", test_rank_table_single_trial);
      ("rank table row independence", test_rank_table_row_independence);
      ("rank table validation", test_rank_table_validation);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
