type t = {
  g : Graph.t;
  g' : Graph.t;
  embedding : Embedding.t option;
  r : float;
  delta : int;
  delta' : int;
  unreliable : (int * int) array;
  (* Flat CSR incidence of the unreliable edges: node [u]'s incident
     unreliable edges are the slots [inc_off.(u) .. inc_off.(u+1) - 1],
     holding the far endpoint in [inc_nbr] and the edge's index into
     [unreliable] in [inc_edge].  Built once at creation so the engine
     never re-derives (or re-allocates) it per run. *)
  inc_off : int array;
  inc_nbr : int array;
  inc_edge : int array;
}

(* The r-geographic conditions:
   (a) every pair at distance <= 1 is a G-edge, and
   (b) every G'-edge spans distance <= r.
   Condition (b) is a linear scan of E'.  Condition (a) needs candidate
   pairs at distance <= 1; instead of the O(n²) all-pairs scan we bucket
   the embedding into a unit grid and compare each vertex only against
   the 3×3 neighborhood of its cell — O(n · local density), which keeps
   [create] usable at n >= 10^4. *)
let check_r_geographic emb r g g' =
  let n = Embedding.n emb in
  let edges_ok =
    let ok = ref true in
    for u = 0 to n - 1 do
      Graph.iter_neighbors g' u (fun v ->
          if u < v && Embedding.vertex_distance emb u v > r then ok := false)
    done;
    !ok
  in
  edges_ok
  && begin
       let cell v =
         let p = Embedding.point emb v in
         ( int_of_float (Float.floor p.Embedding.x),
           int_of_float (Float.floor p.Embedding.y) )
       in
       let buckets : (int * int, int list) Hashtbl.t = Hashtbl.create (max 16 n) in
       for v = n - 1 downto 0 do
         let c = cell v in
         Hashtbl.replace buckets c
           (v :: (Option.value ~default:[] (Hashtbl.find_opt buckets c)))
       done;
       let ok = ref true in
       for u = 0 to n - 1 do
         let cx, cy = cell u in
         for dx = -1 to 1 do
           for dy = -1 to 1 do
             match Hashtbl.find_opt buckets (cx + dx, cy + dy) with
             | None -> ()
             | Some vs ->
                 List.iter
                   (fun v ->
                     if
                       v > u
                       && Embedding.vertex_distance emb u v <= 1.0
                       && not (Graph.mem_edge g u v)
                     then ok := false)
                   vs
           done
         done
       done;
       !ok
     end

let create ?embedding ?(r = 1.0) ~g ~g' () =
  if Graph.n g <> Graph.n g' then
    invalid_arg "Dual.create: vertex count mismatch between G and G'";
  if not (Graph.is_subgraph g g') then
    invalid_arg "Dual.create: E is not a subset of E'";
  if r < 1.0 then invalid_arg "Dual.create: r must be >= 1";
  (match embedding with
  | None -> ()
  | Some emb ->
      if Embedding.n emb <> Graph.n g then
        invalid_arg "Dual.create: embedding size mismatch";
      if not (check_r_geographic emb r g g') then
        invalid_arg "Dual.create: embedding violates the r-geographic property");
  let n = Graph.n g in
  let unreliable =
    Graph.edges g'
    |> List.filter (fun (u, v) -> not (Graph.mem_edge g u v))
    |> Array.of_list
  in
  let m = Array.length unreliable in
  let inc_off = Array.make (n + 1) 0 in
  Array.iter
    (fun (u, v) ->
      inc_off.(u + 1) <- inc_off.(u + 1) + 1;
      inc_off.(v + 1) <- inc_off.(v + 1) + 1)
    unreliable;
  for v = 0 to n - 1 do
    inc_off.(v + 1) <- inc_off.(v + 1) + inc_off.(v)
  done;
  let inc_nbr = Array.make (2 * m) 0 in
  let inc_edge = Array.make (2 * m) 0 in
  let cursor = Array.sub inc_off 0 n in
  Array.iteri
    (fun idx (u, v) ->
      inc_nbr.(cursor.(u)) <- v;
      inc_edge.(cursor.(u)) <- idx;
      cursor.(u) <- cursor.(u) + 1;
      inc_nbr.(cursor.(v)) <- u;
      inc_edge.(cursor.(v)) <- idx;
      cursor.(v) <- cursor.(v) + 1)
    unreliable;
  {
    g;
    g';
    embedding;
    r;
    delta = max 1 (Graph.max_closed_degree g);
    delta' = max 1 (Graph.max_closed_degree g');
    unreliable;
    inc_off;
    inc_nbr;
    inc_edge;
  }

let g t = t.g
let g' t = t.g'
let n t = Graph.n t.g
let r t = t.r
let embedding t = t.embedding
let delta t = t.delta
let delta' t = t.delta'
let unreliable_edges t = t.unreliable
let unreliable_count t = Array.length t.unreliable
let reliable_neighbors t u = Graph.neighbors t.g u
let all_neighbors t u = Graph.neighbors t.g' u
let iter_reliable_neighbors t u f = Graph.iter_neighbors t.g u f
let iter_all_neighbors t u f = Graph.iter_neighbors t.g' u f
let fold_reliable_neighbors t u ~init ~f = Graph.fold_neighbors t.g u ~init ~f
let fold_all_neighbors t u ~init ~f = Graph.fold_neighbors t.g' u ~init ~f

let unreliable_incidence_csr t = (t.inc_off, t.inc_nbr, t.inc_edge)

let iter_unreliable_incident t u f =
  for i = t.inc_off.(u) to t.inc_off.(u + 1) - 1 do
    f (Array.unsafe_get t.inc_nbr i) (Array.unsafe_get t.inc_edge i)
  done

let is_r_geographic t =
  match t.embedding with
  | None -> false
  | Some emb -> check_r_geographic emb t.r t.g t.g'

let pp ppf t =
  Format.fprintf ppf "@[dual n=%d |E|=%d |E'|=%d Δ=%d Δ'=%d r=%.2f@]"
    (n t) (Graph.edge_count t.g) (Graph.edge_count t.g') t.delta t.delta' t.r
