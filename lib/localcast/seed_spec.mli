(** Checker for the Seed(δ, ε) specification (paper §3.1).

    Conditions 1–3 are checked directly on an execution:

    + {e Well-formedness}: exactly one [decide(*, *)_u] per vertex;
    + {e Consistency}: equal owners imply equal seeds;
    + {e Agreement}: for each vertex [u], the number of distinct owners
      appearing in decisions across [N_{G'}(u) ∪ {u}] is at most δ.  The
      spec demands this per-vertex with probability ≥ 1 − ε; the checker
      reports the per-vertex outcome so callers can estimate that
      probability across trials.

    Condition 4 ({e Independence}) is statistical; {!bit_balance} and
    {!cross_agreement} provide the estimators the property tests and
    experiment E4 use (Lemmas B.17/B.18: each committed seed bit is a fair
    coin, and seeds of distinct owners are independent). *)

type report = {
  well_formed : bool;
  consistent : bool;
  owners_per_vertex : int array;
      (** distinct decided owners in each closed G'-neighborhood *)
  agreement_ok : bool array;  (** per-vertex [owners_per_vertex.(u) <= δ] *)
  max_owners : int;
  violation_count : int;  (** number of vertices with [agreement_ok = false] *)
}

val decisions_of_trace :
  (Messages.msg, unit, Messages.seed_output) Radiosim.Trace.t ->
  n:int ->
  (int * Messages.seed_announcement) list array
(** Per-vertex [(round, decide)] events extracted from a standalone
    SeedAlg trace. *)

val check :
  dual:Dualgraph.Dual.t ->
  delta_bound:int ->
  decisions:(int * Messages.seed_announcement) list array ->
  report

val owners : decisions:(int * Messages.seed_announcement) list array -> int array
(** The owner each vertex committed to (requires well-formedness; raises
    [Invalid_argument] otherwise). *)

val bit_balance : Messages.seed_announcement list -> float
(** Fraction of 1-bits across the given announcements' seeds — should
    concentrate around 1/2 (Lemma B.17). *)

val cross_agreement : Prng.Bitstring.t -> Prng.Bitstring.t -> float
(** Fraction of positions on which two equal-length seeds agree — should
    concentrate around 1/2 for seeds of distinct owners (Lemma B.18). *)
