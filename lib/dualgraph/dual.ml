type t = {
  g : Graph.t;
  g' : Graph.t;
  embedding : Embedding.t option;
  r : float;
  delta : int;
  delta' : int;
  unreliable : (int * int) array;
  (* Flat CSR incidence of the unreliable edges: node [u]'s incident
     unreliable edges are the slots [inc_off.(u) .. inc_off.(u+1) - 1],
     holding the far endpoint in [inc_nbr] and the edge's index into
     [unreliable] in [inc_edge].  Built once at creation so the engine
     never re-derives (or re-allocates) it per run. *)
  inc_off : int array;
  inc_nbr : int array;
  inc_edge : int array;
}

(* The r-geographic conditions:
   (a) every pair at distance <= 1 is a G-edge, and
   (b) every G'-edge spans distance <= r.
   Condition (b) is a linear scan of E'.  Condition (a) needs candidate
   pairs at distance <= 1; instead of the O(n²) all-pairs scan a
   unit-cell Grid compares each vertex only against the 3×3
   neighborhood of its cell — O(n · local density), which keeps
   [create] usable at n >= 10^4. *)
let check_r_geographic emb r g g' =
  let n = Embedding.n emb in
  let edges_ok =
    let ok = ref true in
    for u = 0 to n - 1 do
      Graph.iter_neighbors g' u (fun v ->
          if u < v && Embedding.vertex_distance emb u v > r then ok := false)
    done;
    !ok
  in
  edges_ok
  && begin
       let grid = Grid.create ~cell:1.0 emb in
       let ok = ref true in
       for u = 0 to n - 1 do
         Grid.iter_neighborhood grid u (fun v ->
             if
               v > u
               && Embedding.vertex_distance emb u v <= 1.0
               && not (Graph.mem_edge g u v)
             then ok := false)
       done;
       !ok
     end

(* One two-pointer merge per vertex over the sorted CSR slices of G and
   G' both verifies E ⊆ E' and enumerates E' \ E in lexicographic
   order — linear in |E| + |E'|, no per-edge binary searches or list
   churn.  [emit] sees each unreliable edge (u, v), u < v, in the order
   the [unreliable] array indexes them (the edge ids schedulers see). *)
let subset_and_diff ~g ~g' emit =
  let n = Graph.n g in
  let goff = Graph.csr_offsets g and gadj = Graph.csr_neighbors g in
  let g'off = Graph.csr_offsets g' and g'adj = Graph.csr_neighbors g' in
  let subset = ref true in
  let m = ref 0 in
  for u = 0 to n - 1 do
    let i = ref goff.(u) in
    let iend = goff.(u + 1) in
    for j = g'off.(u) to g'off.(u + 1) - 1 do
      let v = Array.unsafe_get g'adj j in
      while !i < iend && Array.unsafe_get gadj !i < v do
        (* a G-neighbor absent from the G' slice *)
        subset := false;
        incr i
      done;
      if !i < iend && Array.unsafe_get gadj !i = v then incr i
      else if v > u then begin
        emit u v !m;
        incr m
      end
    done;
    if !i < iend then subset := false
  done;
  (!subset, !m)

let create ?embedding ?(r = 1.0) ?(validate = true) ~g ~g' () =
  if Graph.n g <> Graph.n g' then
    invalid_arg "Dual.create: vertex count mismatch between G and G'";
  if r < 1.0 then invalid_arg "Dual.create: r must be >= 1";
  (match embedding with
  | None -> ()
  | Some emb ->
      if Embedding.n emb <> Graph.n g then
        invalid_arg "Dual.create: embedding size mismatch";
      if validate && not (check_r_geographic emb r g g') then
        invalid_arg "Dual.create: embedding violates the r-geographic property");
  let n = Graph.n g in
  let subset, m = subset_and_diff ~g ~g' (fun _ _ _ -> ()) in
  if not subset then invalid_arg "Dual.create: E is not a subset of E'";
  let unreliable = Array.make m (0, 0) in
  let (_ : bool * int) =
    subset_and_diff ~g ~g' (fun u v k -> unreliable.(k) <- (u, v))
  in
  let inc_off = Array.make (n + 1) 0 in
  Array.iter
    (fun (u, v) ->
      inc_off.(u + 1) <- inc_off.(u + 1) + 1;
      inc_off.(v + 1) <- inc_off.(v + 1) + 1)
    unreliable;
  for v = 0 to n - 1 do
    inc_off.(v + 1) <- inc_off.(v + 1) + inc_off.(v)
  done;
  let inc_nbr = Array.make (2 * m) 0 in
  let inc_edge = Array.make (2 * m) 0 in
  let cursor = Array.sub inc_off 0 n in
  Array.iteri
    (fun idx (u, v) ->
      inc_nbr.(cursor.(u)) <- v;
      inc_edge.(cursor.(u)) <- idx;
      cursor.(u) <- cursor.(u) + 1;
      inc_nbr.(cursor.(v)) <- u;
      inc_edge.(cursor.(v)) <- idx;
      cursor.(v) <- cursor.(v) + 1)
    unreliable;
  {
    g;
    g';
    embedding;
    r;
    delta = max 1 (Graph.max_closed_degree g);
    delta' = max 1 (Graph.max_closed_degree g');
    unreliable;
    inc_off;
    inc_nbr;
    inc_edge;
  }

let g t = t.g
let g' t = t.g'
let n t = Graph.n t.g
let r t = t.r
let embedding t = t.embedding
let delta t = t.delta
let delta' t = t.delta'
let unreliable_edges t = t.unreliable
let unreliable_count t = Array.length t.unreliable
let reliable_neighbors t u = Graph.neighbors t.g u
let all_neighbors t u = Graph.neighbors t.g' u
let iter_reliable_neighbors t u f = Graph.iter_neighbors t.g u f
let iter_all_neighbors t u f = Graph.iter_neighbors t.g' u f
let fold_reliable_neighbors t u ~init ~f = Graph.fold_neighbors t.g u ~init ~f
let fold_all_neighbors t u ~init ~f = Graph.fold_neighbors t.g' u ~init ~f

let unreliable_incidence_csr t = (t.inc_off, t.inc_nbr, t.inc_edge)

let iter_unreliable_incident t u f =
  for i = t.inc_off.(u) to t.inc_off.(u + 1) - 1 do
    f (Array.unsafe_get t.inc_nbr i) (Array.unsafe_get t.inc_edge i)
  done

let is_r_geographic t =
  match t.embedding with
  | None -> false
  | Some emb -> check_r_geographic emb t.r t.g t.g'

let pp ppf t =
  Format.fprintf ppf "@[dual n=%d |E|=%d |E'|=%d Δ=%d Δ'=%d r=%.2f@]"
    (n t) (Graph.edge_count t.g) (Graph.edge_count t.g') t.delta t.delta' t.r
