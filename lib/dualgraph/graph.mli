(** Simple undirected graphs on vertices [0 .. n-1].

    This is the substrate under both components of a dual graph
    [(G, G')].  Vertices are dense integer indices (the simulator
    addresses nodes by index; the separate injective [id] mapping of the
    paper's model lives in {!Radiosim} configurations).  Self-loops are
    rejected; duplicate edges are collapsed.

    The adjacency is stored in compressed-sparse-row (CSR) form: one flat
    neighbor array plus an offsets array.  Hot paths should use
    {!iter_neighbors} / {!fold_neighbors} or the raw {!csr_offsets} /
    {!csr_neighbors} accessors, which do not allocate. *)

type t

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a graph with vertices [0..n-1].  Raises
    [Invalid_argument] on out-of-range endpoints or self-loops. *)

val of_sorted_arrays : n:int -> us:int array -> vs:int array -> len:int -> t
(** [of_sorted_arrays ~n ~us ~vs ~len] builds a graph from the first
    [len] edges [(us.(i), vs.(i))], which must already be normalized
    ([us.(i) < vs.(i)]) and strictly lexicographically sorted (hence
    duplicate-free).  O(n + len) — the generator fast path that skips
    {!create}'s re-sort and dedup.  Raises [Invalid_argument] if the
    input violates any of those conditions. *)

val empty : int -> t
(** [empty n] has [n] vertices and no edges. *)

val n : t -> int
(** Number of vertices. *)

val edge_count : t -> int

val neighbors : t -> int -> int array
(** Sorted neighbor array of a vertex, freshly allocated on every call
    (the adjacency lives in one flat CSR block).  Convenient for tests
    and one-off queries; hot paths should use {!iter_neighbors},
    {!fold_neighbors} or the CSR accessors instead. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g u f] applies [f] to each neighbor of [u] in
    ascending order, without allocating. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_neighbors g u ~init ~f] folds [f] over the neighbors of [u] in
    ascending order, without allocating intermediate structures. *)

val csr_offsets : t -> int array
(** The CSR offsets array, of length [n + 1]: vertex [u]'s neighbors are
    [csr_neighbors g].(i) for [csr_offsets g].(u) <= i <
    [csr_offsets g].(u+1).  Owned by the graph — do not mutate. *)

val csr_neighbors : t -> int array
(** The flat CSR neighbor array, sorted within each vertex slice.  Owned
    by the graph — do not mutate. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** Symmetric edge membership via binary search in the smaller endpoint's
    sorted slice; [mem_edge g u u] is [false], as is any query with an
    out-of-range endpoint. *)

val edges : t -> (int * int) list
(** Each undirected edge once, as [(u, v)] with [u < v], sorted.  Read
    directly off the sorted CSR slices — no decoding or re-sorting. *)

val max_closed_degree : t -> int
(** [max_closed_degree g] is the paper's degree bound: the maximum over
    vertices [u] of [|N(u) ∪ {u}|], i.e. max degree + 1.  This is the
    quantity Δ (for G) and Δ' (for G'). *)

val is_subgraph : t -> t -> bool
(** [is_subgraph g g'] checks that [g] and [g'] have the same vertex set
    and every edge of [g] is an edge of [g'] — the dual graph condition
    [E ⊆ E']. *)

val union : t -> t -> t
(** Edge-wise union of two graphs on the same vertex set, built by a
    per-vertex linear merge of the sorted CSR slices (no re-hashing of
    the combined edge list). *)

val is_connected : t -> bool
(** Whole-graph connectivity (vacuously true for [n <= 1]). *)

val bfs_distances : t -> int -> int array
(** [bfs_distances g src] is the array of hop distances from [src];
    unreachable vertices get [max_int]. *)

val diameter : t -> int
(** Largest finite pairwise hop distance (0 for [n <= 1]).  Raises
    [Invalid_argument] if the graph is disconnected. *)

val pp : Format.formatter -> t -> unit
