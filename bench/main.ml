(* Experiment harness entry point.

   Regenerates every experiment table in EXPERIMENTS.md:

     E1-E4   seed agreement (Theorem 3.1, Seed spec)
     E5-E7   local broadcast (Theorem 4.1, Lemma C.1)
     E8      the oblivious-adversary attack on fixed schedules (Discussion)
     E9      true locality: guarantees independent of n (§1)
     E10     seed-refresh ablation (§4.2 remark)
     E11     abstract MAC layer flood (§1, §5)
     E12     region goodness and leader counts (Appendix B)
     E13     oblivious vs adaptive link scheduling ([11])
     E14     loose coordination vs a global-seed oracle (ablation)
     E15     sustained throughput vs offered load (open-loop workloads)
     E16     near-optimality demos (Ω(log Δ) progress, Ω(Δ) ack)
     E17     SeedAlg vs gossip seed agreement (baseline)
     E18     physical-layer flood vs MAC-layer flood
     E19     the geographic parameter r
     E20     crash/restart churn: ack-driven recovery vs a fixed budget
     E21     tiled engine at scale: flat per-node cost to n = 10^6
     E22     multi-message serving under rate x burstiness x policy
     E23     reception models: dual-graph vs SINR physical interference
             on the same embeddings (also the reception CI smoke)
     E24     SINR reception at scale: output-sensitive kernels to n = 10^6
     E25     back-off strategy tournament: strategy x adversary x fault
             plan x topology, ranked with bootstrap CIs (also the
             tournament CI smoke: quick mode hard-fails on an ordering
             inversion in the churn anchor cell)
     obs     observability layer: event stream, metrics artifact, and the
             online auditor cross-checked against Lb_spec (writes
             BENCH_obs.json and BENCH_obs_events.jsonl)
     micro   Bechamel micro-benchmarks M1-M14 (also writes BENCH_micro.json)
     service serving-engine benchmarks M10-M11 + the 10^6-arrival load
             acceptance run (writes BENCH_service.json)

   Usage:
     dune exec bench/main.exe                # everything, full trials
     dune exec bench/main.exe -- --quick     # reduced trials
     dune exec bench/main.exe -- --only e8   # one experiment group
*)

let groups : (string * (unit -> unit)) list =
  [
    ("e1-e4", Exp_seed.run);
    ("e5-e7", Exp_lb.run);
    ("e8", Exp_adversary.run);
    ("e9", Exp_locality.run);
    ("e10", Exp_ablation.run);
    ("e11", Exp_mac.run);
    ("e12", Exp_regions.run);
    ("e13", Exp_adaptive.run);
    ("e14", Exp_oracle.run);
    ("e15", Exp_throughput.run);
    ("e16", Exp_optimality.run);
    ("e17", Exp_seed_baseline.run);
    ("e18", Exp_flood.run);
    ("e19", Exp_geo.run);
    ("e20", Exp_churn.run);
    ("e21", Exp_scale.run);
    ("e22", Exp_load.run);
    ("e23", Exp_reception.run);
    ("e24", Exp_scale.run_e24);
    ("e25", Exp_tournament.run);
    ("obs", Exp_obs.run);
    ("micro", Micro.run);
    ("service", Exp_service.run);
  ]

let group_for token =
  let token = String.lowercase_ascii token in
  List.filter
    (fun (name, _) ->
      name = token
      || (* e.g. --only e6 matches the e5-e7 group *)
      List.mem token (String.split_on_char '-' name)
      ||
      match (token, name) with
      | ("e2", "e1-e4") | ("e3", "e1-e4") | ("e6", "e5-e7") -> true
      | _ -> false)
    groups

let () =
  let only = ref [] in
  let spec =
    [
      ( "--only",
        Arg.String (fun s -> only := s :: !only),
        "GROUP run only this experiment group (e1-e4, e5-e7, e8, e9, e10, e11, \
         e12, e13, e14, e15, e16, e17, e18, e19, e20, e21, e22, e23, e24, \
         e25, obs, micro, service); repeatable" );
      ("--quick", Arg.Set Exp_common.quick, " reduced trial counts");
      ( "--domains",
        Arg.Int
          (fun d ->
            if d < 1 then raise (Arg.Bad "--domains: need at least 1 domain");
            Exp_common.domains := d),
        "N worker domains for trial execution (default 1, or \
         LOCALCAST_DOMAINS); tables are bit-identical at any value" );
    ]
  in
  Arg.parse spec
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "bench/main.exe [--quick] [--domains N] [--only GROUP]";
  let selected =
    match !only with
    | [] -> groups
    | tokens ->
        let picked = List.concat_map group_for tokens in
        if picked = [] then begin
          prerr_endline "no experiment group matches --only selection";
          exit 1
        end
        else
          (* preserve canonical order, drop duplicates *)
          List.filter (fun g -> List.memq g picked) groups
  in
  Printf.printf
    "Local broadcast layer: experiment harness (master seed %d%s, %d domain%s)\n%!"
    Exp_common.master_seed
    (if !Exp_common.quick then ", quick mode" else "")
    !Exp_common.domains
    (if !Exp_common.domains = 1 then "" else "s");
  let total_start = Unix.gettimeofday () in
  List.iter
    (fun (name, run) ->
      let start = Unix.gettimeofday () in
      run ();
      Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. start))
    selected;
  Printf.printf "\nall selected experiments done in %.1fs\n"
    (Unix.gettimeofday () -. total_start)
