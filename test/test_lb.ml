(* Tests for the local broadcast layer: LB parameter derivation, the
   LBAlg process (phase structure, ack timing, recv semantics), the LB
   environments, and the LB(t_ack, t_prog, ε) spec monitor. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module Trace = Radiosim.Trace
module P = Radiosim.Process
module M = Localcast.Messages
module Params = Localcast.Params
module Lb_alg = Localcast.Lb_alg
module Lb_env = Localcast.Lb_env
module Lb_spec = Localcast.Lb_spec
module Rng = Prng.Rng

let small_params ?(tack_phases = 2) ?(seed_refresh = 1) ?(eps1 = 0.2) dual =
  Params.of_dual ~tack_phases ~seed_refresh ~eps1 dual

(* Run LBAlg with a given environment; return (trace, env, report). *)
let run_lb ?(scheduler = Sch.reliable_only) ?(rng_seed = 7) ~params ~envt ~rounds dual =
  let n = Dual.n dual in
  let rng = Rng.of_int rng_seed in
  let nodes = Lb_alg.network params ~rng ~n in
  let trace, obs = Trace.recorder () in
  let monitor = Lb_spec.monitor ~dual ~params ~env:envt () in
  let observer record =
    obs record;
    Lb_spec.observe monitor record
  in
  let (_ : int) =
    Engine.run ~observer ~dual ~scheduler ~nodes ~env:(Lb_env.env envt) ~rounds ()
  in
  (trace, Lb_spec.finish monitor)

(* --- Params --- *)

let test_params_validation () =
  let raises msg f = Alcotest.check_raises msg (Invalid_argument
    ("Params.make: " ^ msg)) f in
  raises "degree bounds must be >= 1" (fun () ->
      ignore (Params.make ~delta:0 ~delta':1 ~r:1.0 ~eps1:0.1 ()));
  raises "delta' must be >= delta" (fun () ->
      ignore (Params.make ~delta:4 ~delta':2 ~r:1.0 ~eps1:0.1 ()));
  raises "r must be >= 1" (fun () ->
      ignore (Params.make ~delta:2 ~delta':2 ~r:0.5 ~eps1:0.1 ()));
  raises "seed_refresh must be >= 1" (fun () ->
      ignore (Params.make ~seed_refresh:0 ~delta:2 ~delta':2 ~r:1.0 ~eps1:0.1 ()));
  raises "tack_phases must be >= 1" (fun () ->
      ignore (Params.make ~tack_phases:0 ~delta:2 ~delta':2 ~r:1.0 ~eps1:0.1 ()))

let test_params_structure () =
  let p = Params.make ~delta:8 ~delta':12 ~r:1.5 ~eps1:0.1 () in
  checki "phase_len = ts + tprog" p.Params.phase_len (p.Params.ts + p.Params.tprog);
  checki "t_prog" p.Params.phase_len (Params.t_prog_rounds p);
  checki "t_ack" ((p.Params.tack_phases + 1) * p.Params.phase_len)
    (Params.t_ack_rounds p);
  checki "eps2 is eps1/2" 0 (compare p.Params.eps2 0.05);
  checki "log_delta of 8" 3 p.Params.log_delta;
  checkb "kappa covers body bits" true
    (p.Params.seed.Params.kappa
    = p.Params.tprog
      * (p.Params.participant_bits + (p.Params.level_draws * p.Params.level_bits)))

let test_params_kappa_refresh () =
  let base = Params.make ~delta:8 ~delta':8 ~r:1.0 ~eps1:0.1 () in
  let doubled = Params.make ~seed_refresh:2 ~delta:8 ~delta':8 ~r:1.0 ~eps1:0.1 () in
  let bits =
    base.Params.participant_bits + (base.Params.level_draws * base.Params.level_bits)
  in
  checki "refresh=2 kappa"
    ((base.Params.tprog + (base.Params.ts + base.Params.tprog)) * bits)
    doubled.Params.seed.Params.kappa

let test_params_level_bits () =
  let p1 = Params.make ~delta:2 ~delta':2 ~r:1.0 ~eps1:0.1 () in
  checki "delta<=2 has no level bits" 0 p1.Params.level_bits;
  checki "delta<=2 needs one (vacuous) draw" 1 p1.Params.level_draws;
  let p2 = Params.make ~delta:16 ~delta':16 ~r:1.0 ~eps1:0.1 () in
  checki "delta=16: logΔ=4, 2 level bits" 2 p2.Params.level_bits;
  checki "delta=16: 2^2 mod 4 = 0, single draw" 1 p2.Params.level_draws;
  (* logΔ=3 does not divide 2^2: the level pick needs its rejection
     budget to stay uniform. *)
  let p3 = Params.make ~delta:8 ~delta':8 ~r:1.0 ~eps1:0.1 () in
  checki "delta=8: logΔ=3, 2 level bits" 2 p3.Params.level_bits;
  checki "delta=8: rejection budget" 4 p3.Params.level_draws

let test_params_monotonicity () =
  let tprog ~delta ~eps1 =
    (Params.make ~delta ~delta':delta ~r:1.0 ~eps1 ()).Params.tprog
  in
  checkb "tprog grows with delta" true (tprog ~delta:64 ~eps1:0.1 > tprog ~delta:4 ~eps1:0.1);
  checkb "tprog grows with 1/eps" true (tprog ~delta:8 ~eps1:0.01 > tprog ~delta:8 ~eps1:0.2);
  let tack ~delta =
    (Params.make ~delta ~delta':delta ~r:1.0 ~eps1:0.1 ()).Params.tack_phases
  in
  checkb "tack grows with delta" true (tack ~delta:64 > tack ~delta:4)

let test_params_of_dual () =
  let dual = Geo.clique 8 in
  let p = Params.of_dual ~eps1:0.1 dual in
  checki "delta from dual" 8 p.Params.delta;
  checki "delta' from dual" 8 p.Params.delta'

let test_params_calibration_overrides () =
  (* Every leading constant is a live parameter: doubling c_tprog doubles
     Tprog; doubling c_delta doubles the spec bound. *)
  let base = Params.default_calibration in
  let with_cal calibration =
    Params.make ~calibration ~delta:8 ~delta':8 ~r:1.0 ~eps1:0.1 ()
  in
  let p0 = with_cal base in
  let p1 = with_cal { base with Params.c_tprog = 2.0 *. base.Params.c_tprog } in
  checkb "c_tprog scales Tprog" true
    (abs ((2 * p0.Params.tprog) - p1.Params.tprog) <= 2);
  let p2 = with_cal { base with Params.c_delta = 2.0 *. base.Params.c_delta } in
  checkb "c_delta scales the bound" true
    (abs ((2 * p0.Params.delta_bound) - p2.Params.delta_bound) <= 2);
  let p3 =
    with_cal { base with Params.c_seed_phase = 2.0 *. base.Params.c_seed_phase }
  in
  checkb "c_seed_phase scales Ts" true (p3.Params.ts > p0.Params.ts)

let test_params_pp () =
  let p = Params.make ~delta:8 ~delta':8 ~r:1.0 ~eps1:0.1 () in
  checkb "pp renders" true (String.length (Format.asprintf "%a" Params.pp p) > 0)

(* --- phase helpers --- *)

let test_phase_helpers () =
  let dual = Geo.pair () in
  let p = small_params dual in
  checki "round 0 in phase 0" 0 (Lb_alg.phase_of_round p 0);
  checki "phase 1 starts at phase_len" 1 (Lb_alg.phase_of_round p p.Params.phase_len);
  checkb "round 0 is preamble" true (Lb_alg.is_preamble_round p 0);
  checkb "round ts is body" false (Lb_alg.is_preamble_round p p.Params.ts);
  let p2 = small_params ~seed_refresh:2 dual in
  checkb "phase 1 has no preamble at refresh 2" false
    (Lb_alg.is_preamble_round p2 p2.Params.phase_len)

(* --- single node behavior --- *)

let test_ack_timing_exact () =
  (* A bcast delivered at round 0 (a phase boundary) is acked at the last
     round of the tack_phases-th phase. *)
  let dual = Geo.singleton () in
  let params = small_params ~tack_phases:2 dual in
  let envt = Lb_env.one_shot ~n:1 ~bcasts:[ (0, 0) ] in
  let rounds = 4 * params.Params.phase_len in
  let trace, report = run_lb ~params ~envt ~rounds dual in
  checki "one ack" 1 report.Lb_spec.ack_count;
  checki "no late acks" 0 report.Lb_spec.late_ack_count;
  let acks =
    List.filter_map
      (fun (round, out) -> match out with M.Ack _ -> Some round | _ -> None)
      (Trace.outputs_of trace 0)
  in
  Alcotest.check (Alcotest.list Alcotest.int) "ack at end of phase 1"
    [ (2 * params.Params.phase_len) - 1 ]
    acks

let test_ack_timing_mid_phase_bcast () =
  (* A bcast arriving mid-phase waits for the next boundary, then spends
     tack_phases full phases sending. *)
  let dual = Geo.singleton () in
  let params = small_params ~tack_phases:1 dual in
  let mid = params.Params.phase_len / 2 in
  let envt = Lb_env.one_shot ~n:1 ~bcasts:[ (0, mid) ] in
  let rounds = 4 * params.Params.phase_len in
  let trace, _ = run_lb ~params ~envt ~rounds dual in
  let acks =
    List.filter_map
      (fun (round, out) -> match out with M.Ack _ -> Some round | _ -> None)
      (Trace.outputs_of trace 0)
  in
  Alcotest.check (Alcotest.list Alcotest.int) "ack at end of phase 2"
    [ (2 * params.Params.phase_len) - 1 ]
    acks

let test_transmissions_only_in_body () =
  let dual = Geo.pair () in
  let params = small_params ~tack_phases:2 dual in
  let envt = Lb_env.saturate ~n:2 ~senders:[ 0 ] () in
  let rounds = 3 * params.Params.phase_len in
  let trace, _ = run_lb ~params ~envt ~rounds dual in
  Trace.iter
    (fun record ->
      Array.iter
        (fun action ->
          match action with
          | P.Transmit (M.Data _) ->
              checkb "data only in body rounds" false
                (Lb_alg.is_preamble_round params record.Trace.round)
          | P.Transmit (M.Seed_msg _) ->
              checkb "seeds only in preamble" true
                (Lb_alg.is_preamble_round params record.Trace.round)
          | P.Listen -> ())
        record.Trace.actions)
    trace

let test_committed_outputs () =
  let dual = Geo.pair () in
  let params = small_params dual in
  let envt = Lb_env.saturate ~n:2 ~senders:[ 0 ] () in
  let rounds = 2 * params.Params.phase_len in
  let trace, _ = run_lb ~params ~envt ~rounds dual in
  let commits v =
    List.filter_map
      (fun (round, out) ->
        match out with M.Committed a -> Some (round, a) | _ -> None)
      (Trace.outputs_of trace v)
  in
  List.iter
    (fun v ->
      let cs = commits v in
      checki "one commit per phase" 2 (List.length cs);
      List.iter
        (fun (round, { M.owner; _ }) ->
          checki "commit lands on first body round" params.Params.ts
            (round mod params.Params.phase_len);
          checkb "owner is a vertex" true (owner >= 0 && owner < 2))
        cs)
    [ 0; 1 ]

let test_recv_once_per_message () =
  let dual = Geo.pair () in
  let params = small_params ~tack_phases:2 dual in
  let envt = Lb_env.saturate ~n:2 ~senders:[ 0 ] () in
  let rounds = 6 * params.Params.phase_len in
  let trace, _ = run_lb ~params ~envt ~rounds dual in
  let recvs =
    List.filter_map
      (fun (_, out) -> match out with M.Recv p -> Some p | _ -> None)
      (Trace.outputs_of trace 1)
  in
  checkb "received something" true (recvs <> []);
  let distinct = List.sort_uniq compare recvs in
  checki "each message recv'd exactly once" (List.length distinct)
    (List.length recvs)

let test_pair_progress_and_reliability () =
  let dual = Geo.pair () in
  let params = small_params ~tack_phases:2 dual in
  let envt = Lb_env.saturate ~n:2 ~senders:[ 0 ] () in
  let rounds = 8 * params.Params.phase_len in
  let _, report = run_lb ~params ~envt ~rounds dual in
  checki "validity clean" 0 report.Lb_spec.validity_violations;
  checki "no late acks" 0 report.Lb_spec.late_ack_count;
  checki "no missing acks" 0 report.Lb_spec.missing_ack_count;
  checkb "progress opportunities seen" true (report.Lb_spec.progress_opportunities > 0);
  checkb "progress rate high" true (Lb_spec.progress_rate report >= 0.8);
  checkb "reliability attempts" true (report.Lb_spec.reliability_attempts >= 2);
  checkb "reliability perfect on a pair" true
    (Lb_spec.reliability_rate report = 1.0)

let test_clique_all_neighbors_served () =
  let dual = Geo.clique 6 in
  let params = small_params ~tack_phases:4 ~eps1:0.1 dual in
  let envt = Lb_env.one_shot ~n:6 ~bcasts:[ (0, 0) ] in
  let rounds = 6 * params.Params.phase_len in
  let _, report = run_lb ~params ~envt ~rounds dual in
  checki "one ack" 1 report.Lb_spec.ack_count;
  checki "validity" 0 report.Lb_spec.validity_violations;
  checkb "all clique members got the message" true
    (report.Lb_spec.reliability_failures = 0)

let test_random_field_end_to_end () =
  let rng = Rng.of_int 99 in
  let dual =
    Geo.random_field ~rng ~n:25 ~width:3.0 ~height:3.0 ~r:1.5 ~gray_g':0.5 ()
  in
  let params = small_params ~tack_phases:3 ~eps1:0.1 dual in
  let envt = Lb_env.saturate ~n:25 ~senders:[ 0; 12 ] () in
  let rounds = 6 * params.Params.phase_len in
  let _, report =
    run_lb ~scheduler:(Sch.bernoulli ~seed:4 ~p:0.5) ~params ~envt ~rounds dual
  in
  checki "validity" 0 report.Lb_spec.validity_violations;
  checki "late acks" 0 report.Lb_spec.late_ack_count;
  checkb "progress mostly succeeds" true (Lb_spec.progress_rate report >= 0.8)

let test_seed_refresh_variant () =
  let dual = Geo.pair () in
  let params = small_params ~tack_phases:2 ~seed_refresh:2 dual in
  let envt = Lb_env.saturate ~n:2 ~senders:[ 0 ] () in
  let rounds = 8 * params.Params.phase_len in
  let _, report = run_lb ~params ~envt ~rounds dual in
  checki "validity clean under refresh" 0 report.Lb_spec.validity_violations;
  checkb "progress still works" true (Lb_spec.progress_rate report >= 0.8);
  checkb "reliability still works" true (Lb_spec.reliability_rate report >= 0.9)

let test_deterministic_replay () =
  let dual = Geo.clique 5 in
  let params = small_params dual in
  let run () =
    let envt = Lb_env.saturate ~n:5 ~senders:[ 0 ] () in
    let _, report = run_lb ~rng_seed:3 ~params ~envt
        ~rounds:(4 * params.Params.phase_len) dual in
    (report.Lb_spec.ack_count, report.Lb_spec.progress_failures,
     report.Lb_spec.reliability_failures)
  in
  checkb "same seeds, same execution" true (run () = run ())

(* --- Lb_env --- *)

let test_env_one_shot () =
  let dual = Geo.pair () in
  let params = small_params ~tack_phases:1 dual in
  let envt = Lb_env.one_shot ~n:2 ~bcasts:[ (0, 0) ] in
  let (_ : 'a * 'b) = run_lb ~params ~envt ~rounds:(3 * params.Params.phase_len) dual in
  let log = Lb_env.log envt in
  checki "exactly one entry" 1 (List.length log);
  let entry = List.hd log in
  checki "entry node" 0 entry.Lb_env.node;
  checki "bcast round" 0 entry.Lb_env.bcast_round;
  checkb "acked" true (entry.Lb_env.ack_round <> None);
  checkb "receiver logged" true
    (List.exists (fun (v, _) -> v = 1) entry.Lb_env.recv_rounds)

let test_env_saturate_reissues () =
  let dual = Geo.singleton () in
  let params = small_params ~tack_phases:1 dual in
  let envt = Lb_env.saturate ~n:1 ~senders:[ 0 ] () in
  let (_ : 'a * 'b) = run_lb ~params ~envt ~rounds:(5 * params.Params.phase_len) dual in
  checkb "multiple entries issued" true (List.length (Lb_env.log envt) >= 3)

let test_env_unique_payloads () =
  let dual = Geo.singleton () in
  let params = small_params ~tack_phases:1 dual in
  let envt = Lb_env.saturate ~n:1 ~senders:[ 0 ] () in
  let (_ : 'a * 'b) = run_lb ~params ~envt ~rounds:(5 * params.Params.phase_len) dual in
  let payloads = List.map (fun e -> e.Lb_env.payload) (Lb_env.log envt) in
  checki "payloads unique" (List.length payloads)
    (List.length (List.sort_uniq compare payloads))

let test_env_is_active () =
  let dual = Geo.singleton () in
  let params = small_params ~tack_phases:1 dual in
  let envt = Lb_env.one_shot ~n:1 ~bcasts:[ (0, 0) ] in
  let (_ : 'a * 'b) = run_lb ~params ~envt ~rounds:(3 * params.Params.phase_len) dual in
  let entry = List.hd (Lb_env.log envt) in
  let ack = Option.get entry.Lb_env.ack_round in
  checkb "active at bcast" true (Lb_env.is_active envt ~node:0 ~round:0);
  checkb "active at ack round" true (Lb_env.is_active envt ~node:0 ~round:ack);
  checkb "inactive after ack" false (Lb_env.is_active envt ~node:0 ~round:(ack + 1))

(* --- Lb_spec monitor on synthetic records --- *)

let mk_record ~n ~round ?(inputs = []) ?(delivered = []) ?(outputs = []) () =
  let input_arr = Array.make n [] in
  List.iter (fun (v, i) -> input_arr.(v) <- i :: input_arr.(v)) inputs;
  let deliver_arr = Array.make n None in
  List.iter (fun (v, m) -> deliver_arr.(v) <- Some m) delivered;
  let output_arr = Array.make n [] in
  List.iter (fun (v, o) -> output_arr.(v) <- output_arr.(v) @ [ o ]) outputs;
  {
    Trace.round;
    inputs = input_arr;
    actions = Array.make n P.Listen;
    delivered = deliver_arr;
    outputs = output_arr;
  }

let synthetic_monitor dual =
  let params = small_params ~tack_phases:1 dual in
  let envt = Lb_env.one_shot ~n:(Dual.n dual) ~bcasts:[] in
  (params, Lb_spec.monitor ~dual ~params ~env:envt ())

let test_spec_validity_violation () =
  let dual = Geo.pair () in
  let _, monitor = synthetic_monitor dual in
  (* A Recv with no active source is a validity violation. *)
  let ghost = M.payload ~src:0 ~uid:9 () in
  Lb_spec.observe monitor
    (mk_record ~n:2 ~round:0 ~outputs:[ (1, M.Recv ghost) ] ());
  let report = Lb_spec.finish monitor in
  checki "violation counted" 1 report.Lb_spec.validity_violations

let test_spec_valid_recv () =
  let dual = Geo.pair () in
  let _, monitor = synthetic_monitor dual in
  let m = M.payload ~src:0 ~uid:0 () in
  Lb_spec.observe monitor
    (mk_record ~n:2 ~round:0 ~inputs:[ (0, M.Bcast m) ]
       ~delivered:[ (1, M.Data m) ]
       ~outputs:[ (1, M.Recv m) ]
       ());
  let report = Lb_spec.finish monitor in
  checki "no violation" 0 report.Lb_spec.validity_violations

let test_spec_reliability_failure () =
  (* Sender acks while a reliable neighbor never received: failure. *)
  let dual = Geo.clique 3 in
  let _, monitor = synthetic_monitor dual in
  let m = M.payload ~src:0 ~uid:0 () in
  Lb_spec.observe monitor
    (mk_record ~n:3 ~round:0 ~inputs:[ (0, M.Bcast m) ]
       ~outputs:[ (1, M.Recv m) ]
       ());
  Lb_spec.observe monitor
    (mk_record ~n:3 ~round:1 ~outputs:[ (0, M.Ack m) ] ());
  let report = Lb_spec.finish monitor in
  checki "attempt" 1 report.Lb_spec.reliability_attempts;
  checki "failure (node 2 missed)" 1 report.Lb_spec.reliability_failures

let test_spec_reliability_success () =
  let dual = Geo.clique 3 in
  let _, monitor = synthetic_monitor dual in
  let m = M.payload ~src:0 ~uid:0 () in
  Lb_spec.observe monitor
    (mk_record ~n:3 ~round:0 ~inputs:[ (0, M.Bcast m) ]
       ~outputs:[ (1, M.Recv m); (2, M.Recv m) ]
       ());
  Lb_spec.observe monitor (mk_record ~n:3 ~round:1 ~outputs:[ (0, M.Ack m) ] ());
  let report = Lb_spec.finish monitor in
  checki "no failure" 0 report.Lb_spec.reliability_failures;
  checkb "rate 1" true (Lb_spec.reliability_rate report = 1.0)

let test_spec_late_and_missing_acks () =
  let dual = Geo.pair () in
  let params, monitor = synthetic_monitor dual in
  let m = M.payload ~src:0 ~uid:0 () in
  let t_ack = Params.t_ack_rounds params in
  Lb_spec.observe monitor (mk_record ~n:2 ~round:0 ~inputs:[ (0, M.Bcast m) ] ());
  for round = 1 to t_ack + 1 do
    Lb_spec.observe monitor (mk_record ~n:2 ~round ())
  done;
  Lb_spec.observe monitor
    (mk_record ~n:2 ~round:(t_ack + 2) ~outputs:[ (0, M.Ack m) ] ());
  let report = Lb_spec.finish monitor in
  checki "late ack" 1 report.Lb_spec.late_ack_count;
  checki "max latency" (t_ack + 2) report.Lb_spec.max_ack_latency;
  (* And a bcast never acked at all: *)
  let _, monitor2 = synthetic_monitor dual in
  let m2 = M.payload ~src:1 ~uid:0 () in
  Lb_spec.observe monitor2 (mk_record ~n:2 ~round:0 ~inputs:[ (1, M.Bcast m2) ] ());
  for round = 1 to t_ack + 5 do
    Lb_spec.observe monitor2 (mk_record ~n:2 ~round ())
  done;
  let report2 = Lb_spec.finish monitor2 in
  checki "missing ack" 1 report2.Lb_spec.missing_ack_count

let test_spec_progress_accounting () =
  let dual = Geo.pair () in
  let params, monitor = synthetic_monitor dual in
  let m = M.payload ~src:0 ~uid:0 () in
  (* Node 0 active through a full phase; node 1 hears nothing: one
     opportunity, one failure. *)
  Lb_spec.observe monitor (mk_record ~n:2 ~round:0 ~inputs:[ (0, M.Bcast m) ] ());
  for round = 1 to params.Params.phase_len - 1 do
    Lb_spec.observe monitor (mk_record ~n:2 ~round ())
  done;
  let report = Lb_spec.finish monitor in
  checki "one opportunity (node 1)" 1 report.Lb_spec.progress_opportunities;
  checki "one failure" 1 report.Lb_spec.progress_failures

let test_spec_progress_success () =
  let dual = Geo.pair () in
  let params, monitor = synthetic_monitor dual in
  let m = M.payload ~src:0 ~uid:0 () in
  Lb_spec.observe monitor (mk_record ~n:2 ~round:0 ~inputs:[ (0, M.Bcast m) ] ());
  Lb_spec.observe monitor
    (mk_record ~n:2 ~round:1 ~delivered:[ (1, M.Data m) ] ());
  for round = 2 to params.Params.phase_len - 1 do
    Lb_spec.observe monitor (mk_record ~n:2 ~round ())
  done;
  let report = Lb_spec.finish monitor in
  checki "opportunity" 1 report.Lb_spec.progress_opportunities;
  checki "no failure" 0 report.Lb_spec.progress_failures

let test_spec_progress_needs_full_phase_activity () =
  (* A neighbor active for only part of the phase creates no obligation. *)
  let dual = Geo.pair () in
  let params, monitor = synthetic_monitor dual in
  let m = M.payload ~src:0 ~uid:0 () in
  (* bcast only at round 3: rounds 0-2 inactive → not active throughout *)
  for round = 0 to 2 do
    Lb_spec.observe monitor (mk_record ~n:2 ~round ())
  done;
  Lb_spec.observe monitor (mk_record ~n:2 ~round:3 ~inputs:[ (0, M.Bcast m) ] ());
  for round = 4 to params.Params.phase_len - 1 do
    Lb_spec.observe monitor (mk_record ~n:2 ~round ())
  done;
  let report = Lb_spec.finish monitor in
  checki "no opportunity" 0 report.Lb_spec.progress_opportunities

let test_spec_partial_phase_ignored () =
  let dual = Geo.pair () in
  let _, monitor = synthetic_monitor dual in
  let m = M.payload ~src:0 ~uid:0 () in
  (* Active nodes but the phase never completes: no progress accounting. *)
  Lb_spec.observe monitor (mk_record ~n:2 ~round:0 ~inputs:[ (0, M.Bcast m) ] ());
  Lb_spec.observe monitor (mk_record ~n:2 ~round:1 ());
  let report = Lb_spec.finish monitor in
  checki "no opportunities from partial phase" 0 report.Lb_spec.progress_opportunities

let test_spec_rates_empty () =
  let dual = Geo.pair () in
  let _, monitor = synthetic_monitor dual in
  let report = Lb_spec.finish monitor in
  checkb "reliability rate defaults to 1" true (Lb_spec.reliability_rate report = 1.0);
  checkb "progress rate defaults to 1" true (Lb_spec.progress_rate report = 1.0)

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("params validation", test_params_validation);
      ("params structure", test_params_structure);
      ("params kappa refresh", test_params_kappa_refresh);
      ("params level bits", test_params_level_bits);
      ("params monotonicity", test_params_monotonicity);
      ("params of_dual", test_params_of_dual);
      ("params calibration overrides", test_params_calibration_overrides);
      ("params pp", test_params_pp);
      ("phase helpers", test_phase_helpers);
      ("ack timing exact", test_ack_timing_exact);
      ("ack timing mid-phase bcast", test_ack_timing_mid_phase_bcast);
      ("transmissions only in body", test_transmissions_only_in_body);
      ("committed outputs", test_committed_outputs);
      ("recv once per message", test_recv_once_per_message);
      ("pair progress and reliability", test_pair_progress_and_reliability);
      ("clique all neighbors served", test_clique_all_neighbors_served);
      ("random field end-to-end", test_random_field_end_to_end);
      ("seed refresh variant", test_seed_refresh_variant);
      ("deterministic replay", test_deterministic_replay);
      ("env one_shot", test_env_one_shot);
      ("env saturate reissues", test_env_saturate_reissues);
      ("env unique payloads", test_env_unique_payloads);
      ("env is_active", test_env_is_active);
      ("spec validity violation", test_spec_validity_violation);
      ("spec valid recv", test_spec_valid_recv);
      ("spec reliability failure", test_spec_reliability_failure);
      ("spec reliability success", test_spec_reliability_success);
      ("spec late and missing acks", test_spec_late_and_missing_acks);
      ("spec progress accounting", test_spec_progress_accounting);
      ("spec progress success", test_spec_progress_success);
      ("spec progress needs full-phase activity", test_spec_progress_needs_full_phase_activity);
      ("spec partial phase ignored", test_spec_partial_phase_ignored);
      ("spec rates empty", test_spec_rates_empty);
    ]
