(* Tests for the high-level Localcast.Service runners and the
   physical-layer Flood_decay baseline. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Params = Localcast.Params
module Service = Localcast.Service
module L = Localcast
module Rng = Prng.Rng

let small_params ?(tack_phases = 2) dual = Params.of_dual ~tack_phases ~eps1:0.2 dual

(* --- Service.run --- *)

let test_run_matches_manual_pipeline () =
  (* The one-call runner must reproduce exactly what the hand-assembled
     pipeline (as in test_lb.ml) produces. *)
  let dual = Geo.clique 5 in
  let params = small_params dual in
  let via_service =
    Service.run ~scheduler:Sch.reliable_only ~dual ~params ~senders:[ 0 ]
      ~phases:4 ~seed:7 ()
  in
  let manual =
    let n = Dual.n dual in
    let rng = Rng.of_int 7 in
    let nodes = L.Lb_alg.network params ~rng ~n in
    let envt = L.Lb_env.saturate ~n ~senders:[ 0 ] () in
    let monitor = L.Lb_spec.monitor ~dual ~params ~env:envt () in
    let (_ : int) =
      Radiosim.Engine.run
        ~observer:(L.Lb_spec.observe monitor)
        ~dual ~scheduler:Sch.reliable_only ~nodes ~env:(L.Lb_env.env envt)
        ~rounds:(4 * params.Params.phase_len)
        ()
    in
    L.Lb_spec.finish monitor
  in
  checki "same ack count" manual.L.Lb_spec.ack_count
    via_service.Service.report.L.Lb_spec.ack_count;
  checki "same progress failures" manual.L.Lb_spec.progress_failures
    via_service.Service.report.L.Lb_spec.progress_failures;
  checki "rounds executed" (4 * params.Params.phase_len)
    via_service.Service.rounds_executed

let test_run_deterministic () =
  let dual = Geo.clique 4 in
  let params = small_params dual in
  let go () =
    let o = Service.run ~dual ~params ~senders:[ 0; 2 ] ~phases:4 ~seed:3 () in
    (o.Service.report.L.Lb_spec.ack_count,
     o.Service.report.L.Lb_spec.progress_failures,
     List.length o.Service.env_log)
  in
  checkb "deterministic" true (go () = go ())

let test_run_observer_sees_rounds () =
  let dual = Geo.pair () in
  let params = small_params dual in
  let seen = ref 0 in
  let (_ : Service.outcome) =
    Service.run
      ~observer:(fun _ -> incr seen)
      ~dual ~params ~senders:[ 0 ] ~phases:2 ~seed:1 ()
  in
  checki "observer called per round" (2 * params.Params.phase_len) !seen

(* --- Service.one_shot --- *)

let test_one_shot_completion () =
  let dual = Geo.clique 4 in
  let params = small_params ~tack_phases:3 dual in
  let outcome, completion =
    Service.one_shot ~scheduler:Sch.reliable_only ~dual ~params ~sender:0 ~seed:5 ()
  in
  checki "one ack" 1 outcome.Service.report.L.Lb_spec.ack_count;
  (match completion with
  | Some round ->
      checkb "completion before the ack window closed" true
        (round < Params.t_ack_rounds params)
  | None -> Alcotest.fail "expected full neighborhood completion")

let test_one_shot_isolated_sender () =
  (* A sender with no reliable neighbors completes vacuously at round 0. *)
  let dual = Geo.singleton () in
  let params = small_params dual in
  let _, completion = Service.one_shot ~dual ~params ~sender:0 ~seed:6 () in
  Alcotest.check (Alcotest.option Alcotest.int) "vacuous completion" (Some 0)
    completion

(* --- Service.first_reception --- *)

let test_first_reception () =
  let dual = Geo.pair () in
  let params = small_params dual in
  let latency =
    Service.first_reception ~scheduler:Sch.reliable_only ~dual ~params ~receiver:0
      ~max_rounds:(4 * params.Params.phase_len)
      ~seed:8 ()
  in
  (match latency with
  | Some round ->
      checkb "reception in a body round" false
        (L.Lb_alg.is_preamble_round params round)
  | None -> Alcotest.fail "pair receiver should hear its neighbor")

let test_first_reception_starves_alone () =
  let dual = Geo.singleton () in
  let params = small_params dual in
  Alcotest.check (Alcotest.option Alcotest.int) "no neighbors, no reception" None
    (Service.first_reception ~dual ~params ~receiver:0 ~max_rounds:200 ~seed:9 ())

(* --- Flood_decay --- *)

let test_flood_decay_pair () =
  let dual = Geo.pair () in
  let result =
    Baseline.Flood_decay.run ~rng:(Rng.of_int 10) ~dual
      ~scheduler:Sch.reliable_only ~source:0 ~relay_epochs:4 ~max_rounds:500 ()
  in
  checki "covers both" 2 result.Baseline.Flood_decay.covered_count;
  checkb "fast" true
    (match result.Baseline.Flood_decay.completion_round with
    | Some round -> round < 100
    | None -> false)

let test_flood_decay_validation () =
  let dual = Geo.pair () in
  Alcotest.check_raises "source" (Invalid_argument "Flood_decay.run: source out of range")
    (fun () ->
      ignore
        (Baseline.Flood_decay.run ~rng:(Rng.of_int 1) ~dual
           ~scheduler:Sch.reliable_only ~source:9 ~relay_epochs:1 ~max_rounds:10 ()));
  Alcotest.check_raises "epochs"
    (Invalid_argument "Flood_decay.run: relay_epochs must be >= 1") (fun () ->
      ignore
        (Baseline.Flood_decay.run ~rng:(Rng.of_int 1) ~dual
           ~scheduler:Sch.reliable_only ~source:0 ~relay_epochs:0 ~max_rounds:10 ()))

let test_flood_decay_no_guarantee () =
  (* With a one-epoch window on a longer line, some trial fails to cover —
     the unreliability the MAC-layer flood removes. *)
  let dual = Geo.line ~n:12 ~spacing:0.9 () in
  let incomplete = ref 0 in
  for seed = 1 to 10 do
    let result =
      Baseline.Flood_decay.run ~rng:(Rng.of_int seed) ~dual
        ~scheduler:Sch.reliable_only ~source:0 ~relay_epochs:1 ~max_rounds:5000 ()
    in
    if result.Baseline.Flood_decay.covered_count < 12 then incr incomplete
  done;
  checkb "raw flooding sometimes stalls" true (!incomplete > 0)

let test_flood_decay_relay_window_bounded () =
  (* After the window closes, nodes stay silent: the run's executed rounds
     stop early only on coverage, so with an unreachable island the run
     uses the full budget but transmissions cease. *)
  let g = Dualgraph.Graph.create ~n:3 ~edges:[ (0, 1) ] in
  let dual = Dual.create ~g ~g':g () in
  let result =
    Baseline.Flood_decay.run ~rng:(Rng.of_int 11) ~dual
      ~scheduler:Sch.reliable_only ~source:0 ~relay_epochs:2 ~max_rounds:300 ()
  in
  checki "island unreachable" 2 result.Baseline.Flood_decay.covered_count;
  checki "budget exhausted" 300 result.Baseline.Flood_decay.rounds_executed

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("service.run matches manual pipeline", test_run_matches_manual_pipeline);
      ("service.run deterministic", test_run_deterministic);
      ("service.run observer", test_run_observer_sees_rounds);
      ("service.one_shot completion", test_one_shot_completion);
      ("service.one_shot isolated", test_one_shot_isolated_sender);
      ("service.first_reception", test_first_reception);
      ("service.first_reception starves alone", test_first_reception_starves_alone);
      ("flood_decay pair", test_flood_decay_pair);
      ("flood_decay validation", test_flood_decay_validation);
      ("flood_decay no guarantee", test_flood_decay_no_guarantee);
      ("flood_decay bounded window", test_flood_decay_relay_window_bounded);
    ]
