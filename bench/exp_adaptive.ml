(* Experiment E13: why the paper assumes an OBLIVIOUS link scheduler.
   Against an adaptive scheduler (which sees each round's transmission
   vector before choosing the unreliable edges) the predecessor work [11]
   proves efficient progress impossible.  We reproduce the contrast: the
   collision-forcing Adaptive.jam adversary versus an oblivious
   Bernoulli scheduler, on the grey-cluster fixture, for fixed-probability
   senders and for LBAlg. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Adaptive = Radiosim.Adaptive
module Engine = Radiosim.Engine
module M = Localcast.Messages
module Params = Localcast.Params
module Table = Stats.Table

let max_rounds = 120_000

let uniform_latency ~dual ~mode ~seed =
  let n = Dual.n dual in
  let rng = Prng.Rng.of_int seed in
  let nodes =
    Array.init n (fun v ->
        if v = 0 then Baseline.Harness.receiver ()
        else
          Baseline.Uniform.node ~p:0.5
            ~message:(M.payload ~src:v ~uid:0 ())
            ~rng:(Prng.Rng.split rng))
  in
  let env = Radiosim.Env.null ~name:"e13" () in
  let result = ref None in
  let stop record =
    match record.Radiosim.Trace.delivered.(0) with
    | Some (M.Data _) ->
        if !result = None then result := Some record.Radiosim.Trace.round;
        true
    | _ -> false
  in
  let (_ : int) =
    match mode with
    | `Adaptive ->
        Engine.run_adaptive ~stop ~dual ~adversary:(Adaptive.jam dual) ~nodes ~env
          ~rounds:max_rounds ()
    | `Oblivious ->
        Engine.run ~stop ~dual
          ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
          ~nodes ~env ~rounds:max_rounds ()
  in
  !result

let lbalg_latency ~dual ~params ~mode ~seed =
  let n = Dual.n dual in
  let rng = Prng.Rng.of_int seed in
  let nodes = Localcast.Lb_alg.network params ~rng ~n in
  let senders = List.init (n - 1) (fun i -> i + 1) in
  let envt = Localcast.Lb_env.saturate ~n ~senders () in
  let result = ref None in
  let stop record =
    match record.Radiosim.Trace.delivered.(0) with
    | Some (M.Data _) ->
        if !result = None then result := Some record.Radiosim.Trace.round;
        true
    | _ -> false
  in
  let (_ : int) =
    match mode with
    | `Adaptive ->
        Engine.run_adaptive ~stop ~dual ~adversary:(Adaptive.jam dual) ~nodes
          ~env:(Localcast.Lb_env.env envt) ~rounds:max_rounds ()
    | `Oblivious ->
        Engine.run ~stop ~dual
          ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
          ~nodes
          ~env:(Localcast.Lb_env.env envt)
          ~rounds:max_rounds ()
  in
  !result

let run () =
  section "E13: oblivious vs adaptive link scheduling ([11], paper §1/§2)";
  note
    "Grey-cluster fixture (receiver u, reliable sender v, k grey senders).\n\
     'adaptive' = collision-forcing jammer choosing edges after seeing the\n\
     round's transmitters.  Mean rounds until u first hears anything.";
  let trials = trials_scaled 10 in
  let table =
    Table.create ~title:"E13: progress latency, oblivious vs adaptive"
      ~columns:
        [ "k"; "algorithm"; "oblivious"; "adaptive"; "slowdown";
          "starved (adaptive)" ]
  in
  let ks = if !quick then [ 6; 12 ] else [ 4; 8; 12; 16 ] in
  List.iter
    (fun k ->
      let dual = Geo.gray_cluster ~k ~r:1.5 () in
      (* Same salt for both modes and algorithms: paired per-trial seeds. *)
      let sample f = run_trials ~n:trials (fun ~trial:_ ~seed -> f ~seed) in
      let add_row name latency_of =
        let oblivious = sample (fun ~seed -> latency_of ~mode:`Oblivious ~seed) in
        let adaptive = sample (fun ~seed -> latency_of ~mode:`Adaptive ~seed) in
        let o = mean_option_latency ~max_rounds oblivious in
        let a = mean_option_latency ~max_rounds adaptive in
        Table.add_row table
          [
            Table.cell_int k;
            name;
            Table.cell_float ~decimals:0 o;
            Table.cell_float ~decimals:0 a;
            Table.cell_float ~decimals:1 (a /. Float.max 1.0 o);
            Printf.sprintf "%d/%d" (starved adaptive) trials;
          ]
      in
      add_row "uniform(1/2)" (fun ~mode ~seed -> uniform_latency ~dual ~mode ~seed);
      let params = Params.of_dual ~eps1:0.1 ~tack_phases:2 dual in
      add_row "lbalg" (fun ~mode ~seed -> lbalg_latency ~dual ~params ~mode ~seed))
    ks;
  Table.print table;
  note
    "Expected: the adaptive jammer blows up the fixed-probability sender\n\
     exponentially in k (u hears only when v transmits alone among k+1).\n\
     LBAlg's sparse, seed-coordinated transmissions blunt the attack, but\n\
     obliviousness is what the paper's guarantees are proved under —\n\
     under adaptivity no algorithm can achieve efficient progress [11].\n"
