module Dual = Dualgraph.Dual
module M = Localcast.Messages
module P = Radiosim.Process

type result = {
  covered : bool array;
  covered_count : int;
  completion_round : int option;
  rounds_executed : int;
}

let run ~rng ~dual ~scheduler ~source ~relay_epochs ~max_rounds () =
  let n = Dual.n dual in
  if source < 0 || source >= n then invalid_arg "Flood_decay.run: source out of range";
  if relay_epochs < 1 then invalid_arg "Flood_decay.run: relay_epochs must be >= 1";
  let levels = Decay.levels_for ~delta':(Dual.delta' dual) in
  let relay_rounds = relay_epochs * levels in
  let covered = Array.make n false in
  let covered_count = ref 0 in
  let completion_round = ref None in
  let cover ~round v =
    if not covered.(v) then begin
      covered.(v) <- true;
      incr covered_count;
      if !covered_count = n && !completion_round = None then
        completion_round := Some round
    end
  in
  let node v =
    let node_rng = Prng.Rng.split rng in
    (* relay window: [start, start + relay_rounds), set on first coverage *)
    let relay_start = ref (if v = source then Some 0 else None) in
    let decide ~round _inputs =
      match !relay_start with
      | Some start when round >= start && round < start + relay_rounds ->
          let level = (round - start) mod levels in
          let p = 1.0 /. float_of_int (1 lsl (level + 1)) in
          if Prng.Rng.bernoulli node_rng p then
            P.Transmit (M.Data (M.payload ~src:v ~uid:0 ~tag:1 ()))
          else P.Listen
      | _ -> P.Listen
    in
    let absorb ~round received =
      (match received with
      | Some (M.Data _) ->
          cover ~round v;
          if !relay_start = None then relay_start := Some (round + 1)
      | Some (M.Seed_msg _) | None -> ());
      []
    in
    { P.decide; absorb }
  in
  cover ~round:0 source;
  let nodes = Array.init n node in
  let stop _ = !covered_count = n in
  let rounds_executed =
    Radiosim.Engine.run ~stop ~dual ~scheduler ~nodes
      ~env:(Radiosim.Env.null ~name:"flood-decay" ())
      ~rounds:max_rounds ()
  in
  {
    covered;
    covered_count = !covered_count;
    completion_round = !completion_round;
    rounds_executed;
  }
