(* Experiment E19: the geographic parameter r.

   Every bound in the paper carries r² factors (δ = O(r² log 1/ε);
   Tprog ∝ r²), and the Appendix B analysis even notes a
   double-exponential dependence of its error constants on r,
   concluding "for this approach to be feasible in practice, one would
   need to have small values of r".  This sweep grows r at fixed node
   density and watches the grey zone widen: more unreliable edges, more
   seed groups per (larger) neighborhood, longer derived phases — while
   the guarantees continue to hold. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Params = Localcast.Params
module L = Localcast
module Table = Stats.Table

let run () =
  section "E19: growing the grey zone — the r dependence (§2, App. B note)";
  note
    "Random fields at fixed density (n=40 in a 4x4 box), r sweep.  The\n\
     grey zone (1, r] supplies the unreliable edges; delta' and the\n\
     derived bounds grow ~r^2.";
  let trials = trials_scaled 8 in
  let phases = 5 in
  let table =
    Table.create ~title:"E19: r sweep (eps=0.1)"
      ~columns:
        [ "r"; "delta'"; "unreliable edges"; "delta bound"; "max owners";
          "t_prog"; "progress freq" ]
  in
  let rs = if !quick then [ 1.0; 2.0 ] else [ 1.0; 1.5; 2.0; 3.0 ] in
  List.iter
    (fun r ->
      let samples =
        run_trials
          ~salt:(int_of_float (10.0 *. r))
          ~n:trials
          (fun ~trial:_ ~seed ->
            let dual =
              Geo.random_field ~rng:(Prng.Rng.of_int seed) ~n:40 ~width:4.0
                ~height:4.0 ~r ~gray_g':0.5 ()
            in
            let params = Params.of_dual ~eps1:0.1 ~tack_phases:2 dual in
            (* seed agreement quality at this r *)
            let seed_params =
              Params.make_seed ~eps:params.Params.eps2 ~delta:(Dual.delta dual)
                ~kappa:8 ()
            in
            let outcome =
              run_seed_trial ~dual ~params:seed_params
                ~delta_bound:params.Params.delta_bound
                ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
                ~seed
            in
            (* service guarantee at this r *)
            let report, _ =
              run_lb_trial ~dual ~params ~senders:[ 0; 20 ] ~phases ~seed ()
            in
            ( Dual.delta' dual,
              Array.length (Dual.unreliable_edges dual),
              params.Params.delta_bound,
              Params.t_prog_rounds params,
              outcome.seed_report.L.Seed_spec.max_owners,
              report.L.Lb_spec.progress_opportunities,
              report.L.Lb_spec.progress_failures ))
      in
      let delta' = ref 0 and unreliable = ref 0 in
      let delta_bound = ref 0 and t_prog = ref 0 in
      let max_owners = ref 0 in
      let opportunities = ref 0 and failures = ref 0 in
      List.iter
        (fun (d', unrel, bound, tp, owners, opps, fails) ->
          delta' := max !delta' d';
          unreliable := !unreliable + unrel;
          delta_bound := bound;
          t_prog := max !t_prog tp;
          max_owners := max !max_owners owners;
          opportunities := !opportunities + opps;
          failures := !failures + fails)
        samples;
      Table.add_row table
        [
          Table.cell_float ~decimals:1 r;
          Table.cell_int !delta';
          Table.cell_int (!unreliable / trials);
          Table.cell_int !delta_bound;
          Table.cell_int !max_owners;
          Table.cell_int !t_prog;
          Table.cell_float ~decimals:4
            (1.0 -. (float_of_int !failures /. float_of_int (max 1 !opportunities)));
        ])
    rs;
  Table.print table;
  note
    "Expected: unreliable-edge count and delta' swell ~r^2; the spec's\n\
     delta bound and the derived t_prog grow with them; measured owner\n\
     counts stay far below the bound and progress stays >= 1 - eps —\n\
     the cost of a wider grey zone is time, not correctness.  (The paper\n\
     recommends small r in practice; this is why.)\n"
