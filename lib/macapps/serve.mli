(** Heavy-traffic multi-message serving over the abstract MAC layer.

    {!Multi_broadcast} disseminates a {e fixed} batch of [k] messages and
    keeps O(k·n) delivery state — fine for experiments, fatal for the
    production posture: an ongoing service facing millions of arrivals
    has no [k].  This module is the open-loop serving engine: an
    arrival process ({!Workload}) injects fresh messages every round,
    each node stores-and-forwards through a {e bounded} relay queue with
    an explicit backpressure policy, and all message state lives in a
    pooled, generation-tagged slot table whose footprint is
    O(max in-flight) — independent of how long the run lasts or how many
    messages pass through.

    The steady-state hot path (arrival draws, admission, queueing,
    relay pumping, reception, completion, expiry) allocates nothing:
    flat [int array]/[Bytes]/[Bigarray] state, interned message ids
    (slot index + generation packed in the payload tag), and
    {!Stats.Quantile} streaming estimators for the latency percentiles.
    A [Gc.minor_words] probe over the post-warmup window is part of the
    {!report} and regression-tested in [test/test_serve.ml].

    Layering: {!Core} is the MAC-independent state machine (drive it
    from anything that can deliver [recv]/[ack] events); {!Sim} is a
    synthetic fixed-latency driver used by the M10 micro-bench and the
    conservation/allocation tests; {!run} glues {!Core} onto the real
    {!Localcast.Mac} stack via its per-round [tick] hook. *)

type policy =
  | Drop_tail  (** a full queue sheds the incoming relay *)
  | Drop_newest
      (** a full queue evicts its newest entry to admit the incoming
          one (oldest-first service order is preserved) *)
  | Source_throttle
      (** like [Drop_tail] for relays, and additionally refuses {e
          admission} of fresh arrivals at a node whose queue is full —
          pushing loss to the edge before it costs pool slots *)

val pp_policy : Format.formatter -> policy -> unit

val policy_to_string : policy -> string

val parse_policy : string -> (policy, string) result
(** ["drop-tail"], ["drop-newest"], ["source-throttle"]. *)

type config = {
  queue_cap : int;  (** per-node relay queue bound (≥ 1) *)
  max_inflight : int;  (** slot pool size: admission cap on live messages *)
  ttl : int;
      (** rounds a message may live: admitted at round [r], it is
          expired at the top of round [r + ttl] unless completed (≥ 1) *)
  policy : policy;
  ack_deadline : int;
      (** SLO: an ack arriving more than this many rounds after its
          bcast request counts as a miss.  [0] means no deadline in
          {!Core}/{!Sim}; {!run} substitutes the MAC's [f_ack] bound. *)
}

val config :
  ?queue_cap:int ->
  ?max_inflight:int ->
  ?ttl:int ->
  ?policy:policy ->
  ?ack_deadline:int ->
  unit ->
  config
(** Defaults: [queue_cap = 16], [max_inflight = 4096], [ttl = 8192],
    [policy = Drop_tail], [ack_deadline = 0].  Raises [Invalid_argument]
    on out-of-range fields. *)

type report = {
  rounds : int;
  arrivals : int;  (** offered: what the workload generated *)
  admitted : int;  (** granted a pool slot *)
  rejected : int;  (** refused at admission (pool full / throttled) *)
  completed : int;  (** delivered to every node before expiry *)
  expired : int;  (** ttl elapsed first *)
  inflight : int;  (** slots still live at the end *)
  relays : int;  (** bcast requests issued (sources included) *)
  relay_drops : int;  (** relays shed by the backpressure policy *)
  stale_skips : int;
      (** queued relays found dead (completed/expired) at pop time —
          lazy invalidation means shedding costs nothing at completion *)
  acks : int;
  ack_misses : int;  (** acks later than the deadline *)
  goodput : float;  (** completions per round *)
  delivery_p50 : float;  (** completion latency percentiles (rounds; *)
  delivery_p99 : float;  (** NaN when nothing completed) *)
  ack_p50 : float;
  ack_p99 : float;
  max_queue_depth : int;  (** peak total queued relays, network-wide *)
  mean_queue_depth : float;
  minor_words_per_round : float;
      (** allocation probe over the post-warmup window; NaN when the
          driver did not measure it *)
  audit : string list;
      (** conservation violations; [[]] on every correct run:
          [arrivals = admitted + rejected] and
          [admitted = completed + expired + inflight] must hold
          {e exactly} *)
}

val pp_report : Format.formatter -> report -> unit

(** {1 The MAC-independent state machine} *)

module Core : sig
  type t

  val create : ?metrics:Obs.Metrics.t -> config:config -> n:int -> unit -> t
  (** [metrics] maintains the [serve.*] instruments (see
      [docs/OBSERVABILITY.md]) live: counters per event, gauges at each
      {!tick}, latency distributions in {e bounded} histograms — safe
      for unbounded horizons, allocation-free per event. *)

  val set_send : t -> (node:int -> tag:int -> bool) -> unit
  (** The transmission hook: called with an interned message [tag] when
      [node] should broadcast; returns whether the request was accepted
      (a [false] re-queues the entry at the head).  Wire this to
      {!Localcast.Mac.request} or a synthetic channel before the first
      {!tick}. *)

  val tick : t -> workload:Workload.t -> round:int -> unit
  (** Top-of-round work: expire this round's ttl wheel bucket, admit the
      workload's arrivals for every node, record queue-depth gauges.
      Rounds must be strictly increasing across calls. *)

  val on_recv : t -> node:int -> round:int -> tag:int -> unit
  (** Deliver an interned message to [node]: first receptions mark
      coverage, complete the message when coverage reaches [n], and
      enqueue a relay (subject to the policy).  Stale tags (the slot
      was freed and re-generationed) are counted and dropped. *)

  val on_ack : t -> node:int -> round:int -> tag:int -> unit
  (** The node's outstanding bcast completed: record ack latency
      against the deadline and pump the node's queue. *)

  val inflight : t -> int

  val queued : t -> int
  (** Total queued relays network-wide. *)

  val report : ?minor_words_per_round:float -> t -> rounds:int -> report
end

(** {1 Synthetic driver (benches and tests)} *)

module Sim : sig
  (** A fixed-latency ring channel under {!Core}: each broadcast is
      delivered to the [degree] ring neighbors after [relay_delay]
      rounds and acknowledged after [ack_delay] rounds.  No MAC, no
      engine — this isolates the serving hot path, so M10 measures and
      the allocation test asserts {e this} loop. *)

  type t

  val create :
    ?metrics:Obs.Metrics.t ->
    config:config ->
    n:int ->
    degree:int ->
    relay_delay:int ->
    ack_delay:int ->
    unit ->
    t
  (** Ring neighbors at offsets ±1..±degree/2.  Requires
      [1 ≤ relay_delay ≤ ack_delay] and even [degree ≥ 2] (with
      [degree ≥ n] truncated to the whole ring). *)

  val core : t -> Core.t

  val round : t -> int

  val step : t -> workload:Workload.t -> unit
  (** One round: deliver due receptions and acks, then {!Core.tick}. *)

  val run : t -> workload:Workload.t -> rounds:int -> ?warmup:int -> unit -> report
  (** [step] in a loop with the [Gc.minor_words] probe bracketing the
      post-[warmup] window (default warmup: [min (rounds/10) 1000]
      rounds). *)
end

(** {1 The full stack} *)

val run :
  ?sink:Obs.Sink.t ->
  ?metrics:Obs.Metrics.t ->
  ?warmup:int ->
  config:config ->
  workload:Workload.t ->
  params:Localcast.Params.t ->
  rng:Prng.Rng.t ->
  dual:Dualgraph.Dual.t ->
  scheduler:Radiosim.Scheduler.t ->
  rounds:int ->
  unit ->
  report
(** Serve the workload over a real {!Localcast.Mac} on [dual] for
    [rounds] rounds: arrivals are injected through the MAC's per-round
    [tick] hook, receptions and acks flow back through its callbacks,
    and a [config.ack_deadline] of [0] is replaced by the MAC's [f_ack]
    bound.  The workload must have been created for the dual's node
    count ([Invalid_argument] otherwise).  [minor_words_per_round] in
    the report covers the whole stack (MAC and engine included), not
    just the serving layer; the serving-layer-only number comes from
    {!Sim.run}. *)
