module Region = Dualgraph.Region

type snapshot = {
  phase : int;
  election_prob : float;
  active_per_region : int array;
  leaders_per_region : int array;
}

let cumulative_probability s x =
  float_of_int s.active_per_region.(x) *. s.election_prob

let is_good ~eps ~c2 s x =
  cumulative_probability s x <= c2 *. (log (1.0 /. eps) /. log 2.0)

type t = {
  params : Params.seed;
  regions : Region.t;
  cores : Seed_core.t array;
  mutable nodes :
    (Messages.msg, unit, Messages.seed_output) Radiosim.Process.node array;
  mutable snapshots_rev : snapshot list;
}

let count_per_region regions cores predicate =
  let counts = Array.make (Region.region_count regions) 0 in
  Array.iteri
    (fun v core ->
      if predicate core then begin
        let x = Region.region_of_vertex regions v in
        counts.(x) <- counts.(x) + 1
      end)
    cores;
  counts

let phase_of (params : Params.seed) local_round =
  (local_round / params.Params.phase_len) + 1

(* Sampling protocol, exploiting the engine's fixed node iteration order:
   node 0's [decide] runs before any election of the round, so it samples
   the phase-start active counts; node 0's [absorb] runs after the whole
   transmit/receive step, so on the first round of a phase every election
   has been resolved and the leader counts are exact. *)
let create (params : Params.seed) ~dual ~rng =
  let regions = Region.of_dual dual in
  let n = Dualgraph.Dual.n dual in
  let cores =
    Array.init n (fun id -> Seed_core.create params ~id ~rng:(Prng.Rng.split rng))
  in
  let t = { params; regions; cores; nodes = [||]; snapshots_rev = [] } in
  let total = Params.seed_duration params in
  let pending_active = ref [||] in
  let node id =
    let core = cores.(id) in
    let decide ~round _inputs =
      if round >= total then Radiosim.Process.Listen
      else begin
        if id = 0 && round mod params.Params.phase_len = 0 then
          pending_active :=
            count_per_region regions cores (fun c ->
                Seed_core.status c = Seed_core.Active);
        Seed_core.decide_action core ~local_round:round
      end
    in
    let absorb ~round received =
      if round < total then begin
        Seed_core.absorb core ~local_round:round received;
        if round = total - 1 then Seed_core.finalize core;
        if id = 0 && round mod params.Params.phase_len = 0 then begin
          let h = phase_of params round in
          let leaders =
            count_per_region regions cores (fun c ->
                match Seed_core.status c with
                | Seed_core.Leader h' -> h' = h
                | Seed_core.Active | Seed_core.Inactive -> false)
          in
          t.snapshots_rev <-
            {
              phase = h;
              election_prob =
                1.0 /. float_of_int (1 lsl (params.Params.phases - h + 1));
              active_per_region = !pending_active;
              leaders_per_region = leaders;
            }
            :: t.snapshots_rev
        end
      end;
      match Seed_core.take_event core with
      | Some announcement -> [ Messages.Decide announcement ]
      | None -> []
    in
    { Radiosim.Process.decide; absorb }
  in
  t.nodes <- Array.init n node;
  t

let nodes t = t.nodes
let regions t = t.regions
let snapshots t = List.rev t.snapshots_rev

let total_leaders_per_region t =
  let totals = Array.make (Region.region_count t.regions) 0 in
  List.iter
    (fun s ->
      Array.iteri (fun x l -> totals.(x) <- totals.(x) + l) s.leaders_per_region)
    (snapshots t);
  totals
