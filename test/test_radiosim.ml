(* Tests for the synchronous radio engine: the collision rule, oblivious
   link schedulers, environments and traces. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module G = Dualgraph.Graph
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module P = Radiosim.Process
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module Trace = Radiosim.Trace
module Env = Radiosim.Env
module M = Localcast.Messages

(* A node that transmits a fixed data message in the rounds satisfying
   [when_], and listens otherwise. *)
let talker ~src ~when_ =
  let message = M.Data (M.payload ~src ~uid:0 ()) in
  {
    P.decide =
      (fun ~round _ -> if when_ round then P.Transmit message else P.Listen);
    absorb = (fun ~round:_ _ -> []);
  }

let listener () = P.silent ()

let always _ = true

let run_one_round ?(scheduler = Sch.reliable_only) ~dual nodes =
  let trace, obs = Trace.recorder () in
  let env = Env.null ~name:"t" () in
  let (_ : int) =
    Engine.run ~observer:obs ~dual ~scheduler ~nodes ~env ~rounds:1 ()
  in
  Trace.get trace 0

(* --- schedulers --- *)

let test_scheduler_constants () =
  checkb "reliable_only off" false (Sch.active Sch.reliable_only ~round:3 ~edge:0);
  checkb "all_edges on" true (Sch.active Sch.all_edges ~round:3 ~edge:0)

let test_scheduler_bernoulli_deterministic () =
  let s = Sch.bernoulli ~seed:5 ~p:0.5 in
  for round = 0 to 50 do
    checkb "repeatable" (Sch.active s ~round ~edge:2) (Sch.active s ~round ~edge:2)
  done

let test_scheduler_bernoulli_rate () =
  let s = Sch.bernoulli ~seed:5 ~p:0.3 in
  let hits = ref 0 in
  let n = 20_000 in
  for round = 0 to n - 1 do
    if Sch.active s ~round ~edge:(round mod 17) then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  checkb "rate near p" true (Float.abs (rate -. 0.3) < 0.02)

let test_scheduler_bernoulli_edges_independent () =
  let s = Sch.bernoulli ~seed:5 ~p:0.5 in
  let same = ref 0 in
  for round = 0 to 999 do
    if Sch.active s ~round ~edge:0 = Sch.active s ~round ~edge:1 then incr same
  done;
  checkb "edges decorrelated" true (!same > 350 && !same < 650)

let test_scheduler_flicker () =
  let s = Sch.flicker ~period:4 ~duty:2 in
  checkb "round 0 on" true (Sch.active s ~round:0 ~edge:9);
  checkb "round 1 on" true (Sch.active s ~round:1 ~edge:9);
  checkb "round 2 off" false (Sch.active s ~round:2 ~edge:9);
  checkb "round 3 off" false (Sch.active s ~round:3 ~edge:9);
  checkb "round 4 on again" true (Sch.active s ~round:4 ~edge:9);
  Alcotest.check_raises "validation"
    (Invalid_argument "Scheduler.flicker: need 0 <= duty <= period, period > 0")
    (fun () -> ignore (Sch.flicker ~period:2 ~duty:3))

let test_scheduler_edge_phase () =
  let s = Sch.edge_phase_flicker ~period:3 in
  checkb "edge 0 round 0" true (Sch.active s ~round:0 ~edge:0);
  checkb "edge 0 round 1" false (Sch.active s ~round:1 ~edge:0);
  checkb "edge 1 round 1" true (Sch.active s ~round:1 ~edge:1);
  checkb "edge 4 round 1" true (Sch.active s ~round:1 ~edge:4)

let test_scheduler_thwart () =
  let s = Sch.thwart ~hot:(fun round -> round mod 2 = 0) in
  checkb "hot round" true (Sch.active s ~round:0 ~edge:3);
  checkb "cold round" false (Sch.active s ~round:1 ~edge:3)

(* --- collision rule --- *)

let test_single_transmitter_delivers () =
  let dual = Geo.pair () in
  let record = run_one_round ~dual [| talker ~src:0 ~when_:always; listener () |] in
  checkb "listener hears" true (record.Trace.delivered.(1) <> None);
  checkb "transmitter hears nothing" true (record.Trace.delivered.(0) = None)

let test_two_transmitters_collide () =
  let dual = Geo.clique 3 in
  let record =
    run_one_round ~dual
      [| talker ~src:0 ~when_:always; talker ~src:1 ~when_:always; listener () |]
  in
  checkb "collision at listener" true (record.Trace.delivered.(2) = None)

let test_non_neighbor_silent () =
  (* 0 and 2 are not neighbors on a unit-spaced line with r=1. *)
  let dual = Geo.line ~n:3 ~spacing:0.9 ~r:1.0 () in
  let record =
    run_one_round ~dual [| talker ~src:0 ~when_:always; listener (); listener () |]
  in
  checkb "neighbor hears" true (record.Trace.delivered.(1) <> None);
  checkb "non-neighbor does not" true (record.Trace.delivered.(2) = None)

let test_unreliable_edge_gated_by_scheduler () =
  let dual = Geo.line ~n:3 ~spacing:0.9 ~r:2.0 () in
  (* The only unreliable edge is (0, 2). *)
  let nodes () = [| talker ~src:0 ~when_:always; listener (); listener () |] in
  let on = run_one_round ~scheduler:Sch.all_edges ~dual (nodes ()) in
  checkb "edge on: delivered" true (on.Trace.delivered.(2) <> None);
  let off = run_one_round ~scheduler:Sch.reliable_only ~dual (nodes ()) in
  checkb "edge off: silent" true (off.Trace.delivered.(2) = None)

let test_unreliable_edge_causes_collision () =
  (* The defining dual graph hazard: a reliable transmission that would
     arrive cleanly is destroyed when the scheduler switches in an
     unreliable link carrying a second transmitter. *)
  let dual = Geo.gray_cluster ~k:1 ~r:1.5 () in
  (* vertices: 0 = receiver u, 1 = reliable neighbor v, 2 = grey node *)
  let nodes () =
    [| listener (); talker ~src:1 ~when_:always; talker ~src:2 ~when_:always |]
  in
  let off = run_one_round ~scheduler:Sch.reliable_only ~dual (nodes ()) in
  checkb "without grey edge: v heard" true
    (match off.Trace.delivered.(0) with
    | Some (M.Data p) -> p.M.src = 1
    | _ -> false);
  let on = run_one_round ~scheduler:Sch.all_edges ~dual (nodes ()) in
  checkb "with grey edge: collision" true (on.Trace.delivered.(0) = None)

let test_message_content_preserved () =
  let dual = Geo.pair () in
  let record = run_one_round ~dual [| talker ~src:0 ~when_:always; listener () |] in
  (match record.Trace.delivered.(1) with
  | Some (M.Data p) ->
      checki "src" 0 p.M.src;
      checki "uid" 0 p.M.uid
  | _ -> Alcotest.fail "expected data delivery")

let test_engine_validation () =
  let dual = Geo.pair () in
  let env = Env.null ~name:"t" () in
  Alcotest.check_raises "node count"
    (Invalid_argument "Engine.run: node array size differs from vertex count")
    (fun () ->
      ignore
        (Engine.run ~dual ~scheduler:Sch.reliable_only ~nodes:[| listener () |]
           ~env ~rounds:1 ()));
  Alcotest.check_raises "negative rounds"
    (Invalid_argument "Engine.run: negative round count") (fun () ->
      ignore
        (Engine.run ~dual ~scheduler:Sch.reliable_only
           ~nodes:[| listener (); listener () |]
           ~env ~rounds:(-1) ()))

let test_engine_stop () =
  let dual = Geo.pair () in
  let env = Env.null ~name:"t" () in
  let nodes = [| talker ~src:0 ~when_:(fun r -> r = 3); listener () |] in
  let executed =
    Engine.run ~dual ~scheduler:Sch.reliable_only ~nodes ~env ~rounds:100
      ~stop:(fun record -> record.Trace.delivered.(1) <> None)
      ()
  in
  checki "stopped right after delivery" 4 executed

let test_engine_round_count () =
  let dual = Geo.pair () in
  let env = Env.null ~name:"t" () in
  let executed =
    Engine.run ~dual ~scheduler:Sch.reliable_only
      ~nodes:[| listener (); listener () |]
      ~env ~rounds:17 ()
  in
  checki "all rounds executed" 17 executed

let test_engine_determinism () =
  let mk () =
    let rng = Prng.Rng.of_int 77 in
    let dual =
      Geo.random_field ~rng:(Prng.Rng.of_int 5) ~n:20 ~width:3.0 ~height:3.0
        ~r:1.5 ()
    in
    let nodes =
      Array.init 20 (fun src ->
          let node_rng = Prng.Rng.split rng in
          talker ~src ~when_:(fun _ -> Prng.Rng.bernoulli node_rng 0.3))
    in
    let trace, obs = Trace.recorder () in
    let (_ : int) =
      Engine.run ~observer:obs ~dual
        ~scheduler:(Sch.bernoulli ~seed:3 ~p:0.5)
        ~nodes
        ~env:(Env.null ~name:"t" ())
        ~rounds:50 ()
    in
    List.init 20 (fun v -> (Trace.transmission_count trace v, Trace.deliveries_of trace v))
  in
  checkb "identical executions" true (mk () = mk ())

let test_transmitter_counts () =
  let dual = Geo.clique 4 in
  let transmitting = [| true; true; false; false |] in
  let counts =
    Engine.transmitter_counts ~dual ~scheduler:Sch.reliable_only ~round:0
      ~transmitting ()
  in
  Alcotest.check (Alcotest.array Alcotest.int) "counts" [| 1; 1; 2; 2 |] counts

let test_transmitter_counts_unreliable () =
  let dual = Geo.line ~n:3 ~spacing:0.9 ~r:2.0 () in
  let transmitting = [| true; false; false |] in
  let on =
    Engine.transmitter_counts ~dual ~scheduler:Sch.all_edges ~round:0
      ~transmitting ()
  in
  let off =
    Engine.transmitter_counts ~dual ~scheduler:Sch.reliable_only ~round:0
      ~transmitting ()
  in
  checki "node 2 sees 0 over grey edge (on)" 1 on.(2);
  checki "node 2 sees nothing (off)" 0 off.(2)

(* The precomputed-incidence fast path must agree with the naive path on
   a topology with a real grey zone, for both an all-on and an all-off
   scheduler. *)
let test_transmitter_counts_incidence () =
  let dual = Geo.random_field ~rng:(Prng.Rng.of_int 71) ~n:24 ~width:3.0
      ~height:3.0 ~r:1.8 ~gray_g':0.6 ()
  in
  let n = Dual.n dual in
  let incidence = Engine.unreliable_incidence dual in
  let rng = Prng.Rng.of_int 72 in
  for round = 0 to 9 do
    let transmitting = Array.init n (fun _ -> Prng.Rng.bool rng) in
    List.iter
      (fun scheduler ->
        let naive =
          Engine.transmitter_counts ~dual ~scheduler ~round ~transmitting ()
        in
        let fast =
          Engine.transmitter_counts ~incidence ~dual ~scheduler ~round
            ~transmitting ()
        in
        Alcotest.check (Alcotest.array Alcotest.int)
          "precomputed incidence matches naive path" naive fast)
      [ Sch.all_edges; Sch.reliable_only; Sch.bernoulli ~seed:round ~p:0.5 ]
  done

(* Scheduler.fill_active must agree with per-edge Scheduler.active for
   every scheduler kind, including the custom-made default derivation. *)
let test_scheduler_fill_active () =
  let schedulers =
    [
      Sch.reliable_only;
      Sch.all_edges;
      Sch.bernoulli ~seed:11 ~p:0.35;
      Sch.flicker ~period:5 ~duty:2;
      Sch.edge_phase_flicker ~period:3;
      Sch.thwart ~hot:(fun round -> round mod 3 = 1);
      Sch.make ~name:"custom" (fun ~round ~edge -> (round + edge) mod 4 = 0);
    ]
  in
  let m = 41 in
  let buf = Bytes.create m in
  List.iter
    (fun s ->
      for round = 0 to 24 do
        Sch.fill_active s ~round buf;
        for edge = 0 to m - 1 do
          checkb
            (Printf.sprintf "%s round %d edge %d"
               (Format.asprintf "%a" Sch.pp s) round edge)
            (Sch.active s ~round ~edge)
            (Bytes.get buf edge = '\001')
        done
      done)
    schedulers

(* Scheduler.fill_active_sparse must emit exactly the active edges, as
   strictly ascending indices, for every scheduler kind — the derived
   scan path and both native sparse resolvers (constant schedulers and
   the skip-sampling bernoulli_sparse). *)
let test_scheduler_fill_active_sparse () =
  let schedulers =
    [
      Sch.reliable_only;
      Sch.all_edges;
      Sch.bernoulli ~seed:11 ~p:0.35;
      Sch.bernoulli_sparse ~seed:11 ~p:0.35;
      Sch.bernoulli_sparse ~seed:4 ~p:0.0;
      Sch.bernoulli_sparse ~seed:4 ~p:1.0;
      Sch.flicker ~period:5 ~duty:2;
      Sch.edge_phase_flicker ~period:3;
      Sch.thwart ~hot:(fun round -> round mod 3 = 1);
      Sch.make ~name:"custom" (fun ~round ~edge -> (round + edge) mod 4 = 0);
    ]
  in
  let m = 41 in
  let buf = Array.make m (-1) in
  List.iter
    (fun s ->
      let name = Format.asprintf "%a" Sch.pp s in
      for round = 0 to 24 do
        let count = Sch.fill_active_sparse s ~round ~m buf in
        checkb (Printf.sprintf "%s round %d count in range" name round)
          true
          (count >= 0 && count <= m);
        for i = 1 to count - 1 do
          checkb
            (Printf.sprintf "%s round %d ascending at %d" name round i)
            true
            (buf.(i - 1) < buf.(i))
        done;
        let member = Array.make m false in
        for i = 0 to count - 1 do
          member.(buf.(i)) <- true
        done;
        for edge = 0 to m - 1 do
          checkb
            (Printf.sprintf "%s round %d edge %d" name round edge)
            (Sch.active s ~round ~edge)
            member.(edge)
        done
      done)
    schedulers

(* bernoulli_sparse draws the active set jointly (a count plus
   placements) where bernoulli draws per-edge coins, so the two can only
   be compared in distribution.  Two-sample checks over R rounds with
   deterministic seeds:

   - per-edge marginal: each edge's activation frequency under the two
     schedulers, compared by a two-proportion z statistic, maximized
     over edges;
   - per-round activation count: the Binomial(m, p) count histogram,
     compared by a two-sample χ² statistic.

   With m = 64, p = 0.3, R = 4000 the χ² bins below have expected
   counts well above 5, df = 13, and the 99.9% quantile is ≈ 34.5; the
   z bound 4.5 leaves comparable slack after a union bound over the 64
   edges.  Seeds are fixed, so these never flake — a failure means the
   distribution actually moved. *)
let test_bernoulli_sparse_distribution () =
  let m = 64 and p = 0.3 and rounds = 4000 in
  let dense = Sch.bernoulli ~seed:101 ~p in
  let sparse = Sch.bernoulli_sparse ~seed:202 ~p in
  let per_edge_d = Array.make m 0 and per_edge_s = Array.make m 0 in
  let counts_d = Array.make rounds 0 and counts_s = Array.make rounds 0 in
  let dense_buf = Bytes.create m in
  let sparse_buf = Array.make m 0 in
  for round = 0 to rounds - 1 do
    Sch.fill_active dense ~round dense_buf;
    for edge = 0 to m - 1 do
      if Bytes.get dense_buf edge = '\001' then begin
        per_edge_d.(edge) <- per_edge_d.(edge) + 1;
        counts_d.(round) <- counts_d.(round) + 1
      end
    done;
    let k = Sch.fill_active_sparse sparse ~round ~m sparse_buf in
    counts_s.(round) <- k;
    for i = 0 to k - 1 do
      per_edge_s.(sparse_buf.(i)) <- per_edge_s.(sparse_buf.(i)) + 1
    done
  done;
  (* per-edge marginals: two-proportion z, maximized over edges *)
  let r = float_of_int rounds in
  let worst_z = ref 0.0 in
  for edge = 0 to m - 1 do
    let pa = float_of_int per_edge_d.(edge) /. r in
    let pb = float_of_int per_edge_s.(edge) /. r in
    let pool = (pa +. pb) /. 2.0 in
    let se = sqrt (2.0 *. pool *. (1.0 -. pool) /. r) in
    let z = abs_float (pa -. pb) /. se in
    if z > !worst_z then worst_z := z
  done;
  checkb
    (Printf.sprintf "per-edge marginal worst |z| = %.2f < 4.5" !worst_z)
    true (!worst_z < 4.5);
  (* per-round count histogram: two-sample χ² over bins [<=13], 14..25,
     [>=26] — expected bin masses all comfortably above 5 at R=4000 *)
  let lo = 13 and hi = 26 in
  let nbins = hi - lo + 1 in
  let bin c = if c <= lo then 0 else if c >= hi then nbins - 1 else c - lo in
  let hist_d = Array.make nbins 0 and hist_s = Array.make nbins 0 in
  Array.iter (fun c -> hist_d.(bin c) <- hist_d.(bin c) + 1) counts_d;
  Array.iter (fun c -> hist_s.(bin c) <- hist_s.(bin c) + 1) counts_s;
  let chi2 = ref 0.0 in
  for b = 0 to nbins - 1 do
    let o1 = float_of_int hist_d.(b) and o2 = float_of_int hist_s.(b) in
    if o1 +. o2 > 0.0 then
      chi2 := !chi2 +. (((o1 -. o2) ** 2.0) /. (o1 +. o2))
  done;
  checkb
    (Printf.sprintf "per-round count χ² = %.2f < 34.5 (df 13)" !chi2)
    true (!chi2 < 34.5);
  (* and the sample moments of the sparse count sit near Binomial(m, p) *)
  let mean = Array.fold_left (fun a c -> a +. float_of_int c) 0.0 counts_s /. r in
  checkb
    (Printf.sprintf "sparse count mean %.2f ~ %.2f" mean (float_of_int m *. p))
    true
    (abs_float (mean -. (float_of_int m *. p)) < 0.5)

(* --- trace utilities --- *)

let sample_trace () =
  let dual = Geo.pair () in
  let trace, obs = Trace.recorder () in
  let nodes = [| talker ~src:0 ~when_:(fun r -> r mod 2 = 0); listener () |] in
  let (_ : int) =
    Engine.run ~observer:obs ~dual ~scheduler:Sch.reliable_only ~nodes
      ~env:(Env.null ~name:"t" ())
      ~rounds:10 ()
  in
  trace

let test_trace_length_get () =
  let trace = sample_trace () in
  checki "length" 10 (Trace.length trace);
  checki "round stamps" 7 (Trace.get trace 7).Trace.round;
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Trace.get: round out of range") (fun () ->
      ignore (Trace.get trace 10))

let test_trace_queries () =
  let trace = sample_trace () in
  checki "transmissions" 5 (Trace.transmission_count trace 0);
  checki "deliveries" 5 (List.length (Trace.deliveries_of trace 1));
  checki "no outputs" 0 (List.length (Trace.outputs_of trace 0));
  List.iter
    (fun (round, _) -> checkb "delivery on even rounds" true (round mod 2 = 0))
    (Trace.deliveries_of trace 1)

let test_trace_fold_iter () =
  let trace = sample_trace () in
  let folded = Trace.fold (fun acc r -> acc + r.Trace.round) 0 trace in
  checki "fold sums rounds" 45 folded;
  let count = ref 0 in
  Trace.iter (fun _ -> incr count) trace;
  checki "iter visits all" 10 !count

(* --- environments --- *)

let test_env_scripted () =
  let env = Env.scripted ~name:"s" [ (2, 1, "hello"); (5, 0, "bye") ] in
  Alcotest.check (Alcotest.list Alcotest.string) "at round 2 node 1" [ "hello" ]
    (env.Env.inputs ~round:2 ~node:1);
  Alcotest.check (Alcotest.list Alcotest.string) "wrong node" []
    (env.Env.inputs ~round:2 ~node:0);
  Alcotest.check (Alcotest.list Alcotest.string) "wrong round" []
    (env.Env.inputs ~round:3 ~node:1)

let test_env_inputs_reach_process () =
  let dual = Geo.pair () in
  let env = Env.scripted ~name:"s" [ (4, 0, ()) ] in
  let got = ref None in
  let probe =
    {
      P.decide =
        (fun ~round inputs ->
          if inputs <> [] then got := Some round;
          P.Listen);
      absorb = (fun ~round:_ _ -> []);
    }
  in
  let (_ : int) =
    Engine.run ~dual ~scheduler:Sch.reliable_only
      ~nodes:[| probe; listener () |]
      ~env ~rounds:8 ()
  in
  Alcotest.check (Alcotest.option Alcotest.int) "input at round 4" (Some 4) !got

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("scheduler constants", test_scheduler_constants);
      ("scheduler bernoulli deterministic", test_scheduler_bernoulli_deterministic);
      ("scheduler bernoulli rate", test_scheduler_bernoulli_rate);
      ("scheduler bernoulli edges independent", test_scheduler_bernoulli_edges_independent);
      ("scheduler flicker", test_scheduler_flicker);
      ("scheduler edge phase", test_scheduler_edge_phase);
      ("scheduler thwart", test_scheduler_thwart);
      ("single transmitter delivers", test_single_transmitter_delivers);
      ("two transmitters collide", test_two_transmitters_collide);
      ("non-neighbor silent", test_non_neighbor_silent);
      ("unreliable edge gated", test_unreliable_edge_gated_by_scheduler);
      ("unreliable edge causes collision", test_unreliable_edge_causes_collision);
      ("message content preserved", test_message_content_preserved);
      ("engine validation", test_engine_validation);
      ("engine stop", test_engine_stop);
      ("engine round count", test_engine_round_count);
      ("engine determinism", test_engine_determinism);
      ("transmitter counts", test_transmitter_counts);
      ("transmitter counts unreliable", test_transmitter_counts_unreliable);
      ("transmitter counts precomputed incidence", test_transmitter_counts_incidence);
      ("scheduler fill_active agrees with active", test_scheduler_fill_active);
      ( "scheduler fill_active_sparse agrees with active",
        test_scheduler_fill_active_sparse );
      ( "bernoulli_sparse matches bernoulli in distribution",
        test_bernoulli_sparse_distribution );
      ("trace length/get", test_trace_length_get);
      ("trace queries", test_trace_queries);
      ("trace fold/iter", test_trace_fold_iter);
      ("env scripted", test_env_scripted);
      ("env inputs reach process", test_env_inputs_reach_process);
    ]
