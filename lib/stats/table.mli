(** Aligned plain-text tables for the experiment reports.

    [bench/main.exe] prints one table per experiment; this renderer keeps
    the columns readable in a terminal and in EXPERIMENTS.md code blocks. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] on column-count mismatch. *)

val render : t -> string

val print : t -> unit
(** [render] to stdout, followed by a blank line. *)

val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string

val cell_rate : float -> string
(** Percent with two decimals, e.g. ["97.50%"]. *)
