(** Minimal JSON helpers for the observability layer.

    The sink exports events as JSONL (one flat JSON object per line) and
    the metrics registry dumps snapshot artifacts; both need only string
    escaping plus a parser for {e flat} objects — string keys mapping to
    integers, booleans or strings, no nesting.  Keeping this in-tree
    avoids a JSON dependency and gives every writer in the repository
    (including [bench/micro.ml]'s [BENCH_micro.json]) one shared, correct
    escaping implementation. *)

val escape : string -> string
(** Escape a string for inclusion between double quotes in JSON output:
    double quotes, backslashes and all control characters below [0x20]
    are escaped (newline, tab and carriage return symbolically, the rest
    as [\uXXXX]).  Other bytes pass through unchanged. *)

type value =
  | Int of int
  | Bool of bool
  | Str of string
      (** The value vocabulary of a flat event object.  Floats never
          appear in the event stream (rounds, node ids and latencies are
          integral), so the parser stays exact. *)

val parse_flat : string -> ((string * value) list, string) result
(** Parse one flat JSON object — string keys mapping to values
    restricted to integers, booleans and strings — into its fields in
    order of appearance.  Returns [Error reason] on malformed input,
    nested structures, or trailing garbage.  Inverse of the object
    serialization used by {!Event.to_json}: in particular the string
    parser accepts every escape {!escape} emits — including the
    [\uXXXX] forms covering the control bytes — with exactly four hex
    digits, so [escape]d strings over the full byte range survive a
    parse round trip unchanged ([\u0_41]-style lenient forms are
    rejected, keeping re-emission byte-identical).  Bytes [>= 0x80]
    pass through raw both ways; [\u] escapes above [0x7f] are
    rejected rather than silently narrowed. *)

val field_int : (string * value) list -> string -> (int, string) result
(** Look up a required integer field. *)

val field_bool : (string * value) list -> string -> (bool, string) result
(** Look up a required boolean field. *)

val field_str : (string * value) list -> string -> (string, string) result
(** Look up a required string field. *)
