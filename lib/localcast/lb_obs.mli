(** Observability glue for the local broadcast stack.

    The engine emits only structural events (rounds, transmissions,
    deliveries); everything protocol-level — phase boundaries, [bcast] /
    [ack] / [recv] service events, seed commits, progress receptions —
    lives in the round records LBAlg produces.  This module translates
    those records into {!Obs.Event} values on the shared sink and into
    {!Obs.Metrics} updates, and pre-wires the {!Obs.Audit} monitor with
    the deadlines and graphs a topology-plus-parameters pair implies.

    Pass {!observer} to {!Radiosim.Engine.run} (alongside the sink) and
    the engine's structural stream interleaves with the protocol stream
    in causal order: each round's protocol events land between its
    [Round_start] and [Round_end] brackets — the ordering {!Obs.Audit}
    relies on.  {!Localcast.Service} does this wiring for you. *)

type t

val create :
  ?metrics:Obs.Metrics.t ->
  sink:Obs.Sink.t ->
  dual:Dualgraph.Dual.t ->
  params:Params.t ->
  unit ->
  t
(** A translator for one run over [dual] under [params].  Protocol
    events go to [sink]; when [metrics] is given the translator also
    maintains the conventional instruments (see the name table in
    [docs/OBSERVABILITY.md]): counters [lb.bcasts], [lb.acks],
    [lb.recvs], [lb.seed_commits], [engine.transmits],
    [engine.deliveries], [engine.collisions]; histograms
    [lb.ack_latency] and [lb.progress_latency] (node-attributed),
    [lb.transmitters_per_round], and [seed.owners_per_neighborhood]
    (the δ occupancy of each closed G'-neighborhood, sampled once per
    phase); gauge [engine.rounds].  A labeled snapshot ([phase-0],
    [phase-1], …) is taken as each complete phase closes.  The
    engine-level counters are fed by a streaming consumer registered on
    [sink], so they also count events the engine emits directly. *)

val observer :
  t ->
  (Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Trace.round_record ->
  unit
(** The translating observer.  Feed it every round record, in order, of
    exactly one run (it carries per-run activity state).  Per record it
    emits, in this order: [Phase_start] (on a phase's first round), one
    [Bcast] per environment bcast input, one [Progress] per first
    qualifying reception of the phase, one [Recv] / [Ack] /
    [Seed_commit] per corresponding node output.  Activity bookkeeping
    (what makes a reception "qualifying") mirrors {!Lb_spec.observe}
    exactly: a sender is active from its bcast round through its ack
    round inclusive. *)

val snapshots : t -> Obs.Metrics.snapshot list
(** The per-phase snapshots taken so far, oldest first (empty when the
    translator has no registry).  Hand the list to
    {!Obs.Metrics.write_json} for the [BENCH_obs.json] artifact. *)

val auditor : ?window:int -> dual:Dualgraph.Dual.t -> params:Params.t -> unit -> Obs.Audit.t
(** An online spec auditor pre-wired for this topology and parameter
    set: [t_ack = Params.t_ack_rounds], [t_prog = Params.t_prog_rounds],
    [delta_bound = params.delta_bound], [g] the reliable adjacency and
    [g'_closed] the closed G'-neighborhoods of [dual].  Attach it with
    [Obs.Sink.on_event sink (Obs.Audit.observe a)] {e before} the run so
    it sees the complete stream, and call {!Obs.Audit.finish} after.
    [window] is the causal-evidence ring size per violation. *)

val closed_neighborhoods : Dualgraph.Dual.t -> int array array
(** The closed G'-neighborhood ([u] plus its G' neighbors) of every
    vertex — the sets the Seed(δ, ε) bound quantifies over. *)

val seed_observer :
  sink:Obs.Sink.t ->
  unit ->
  (Messages.msg, unit, Messages.seed_output) Radiosim.Trace.round_record ->
  unit
(** Translator for standalone {!Seed_alg} runs: each [Decide (j, s)]
    output becomes a [Seed_commit] event. *)
