(** Deterministic fault plans: crash/restart churn and jam windows.

    A plan is a pure function of its construction parameters — given the
    same seed it describes the same faults at any domain count, which keeps
    {!Stats.Experiment} trials bit-identical under parallel execution.  The
    engine consults the plan each round:

    - a node whose crash round has arrived is {e dead}: it neither
      transmits nor receives, its environment is not polled for inputs and
      its process is not stepped;
    - a dead node whose restart round arrives is {e revived}: the engine
      swaps in a fresh process (fresh SeedAlg state — no memory of the
      pre-crash incarnation survives);
    - a node inside one of its {e jam windows} still runs (its process may
      decide to transmit and is charged for doing so) but nothing reaches
      the air: the transmission is suppressed before collision resolution,
      invisible to every listener and to adaptive adversaries.

    Each node crashes at most once.  [crash = max_int] means "never
    crashes"; [restart = max_int] means "never restarts" (crash is
    permanent).  The dead interval of a node is [\[crash, restart)] in
    engine rounds.

    Plans are consumed by {!Radiosim.Engine.run} via a {!cursor}, and
    queried by the survivor-relative accounting in {!Localcast.Lb_spec}
    and {!Obs.Audit} through {!alive} / {!alive_through}. *)

type t

type event = Crash | Restart

(** {1 Construction} *)

val empty : n:int -> t
(** The plan with no faults over [n] nodes.  Running the engine with an
    empty plan is trace-identical to running it with no plan at all. *)

val make :
  n:int ->
  ?crashes:(int * int) list ->
  ?restarts:(int * int) list ->
  ?jams:(int * int * int) list ->
  unit ->
  t
(** [make ~n ~crashes ~restarts ~jams ()] builds an explicit plan.

    [crashes] lists [(node, round)] pairs, at most one per node, with
    [round >= 0].  [restarts] lists [(node, round)] pairs; each restarted
    node must also crash, strictly earlier.  [jams] lists
    [(node, from, until)] half-open suppression windows [\[from, until)];
    a node may have several, but they must not overlap.

    @raise Invalid_argument on out-of-range nodes, duplicate entries,
    restarts without (or not after) a crash, or malformed/overlapping jam
    windows. *)

val churn :
  seed:int ->
  n:int ->
  rounds:int ->
  rate:float ->
  ?downtime:int ->
  ?protect:int list ->
  unit ->
  t
(** [churn ~seed ~n ~rounds ~rate ()] derives a crash plan from [seed] via
    SplitMix: each node independently draws its crash round from the
    geometric distribution with per-round hazard [rate] (so a node is
    still up at round [r] with probability [(1 - rate)^r]); draws landing
    at or beyond [rounds] mean the node never crashes.  Crashes happen at
    round 1 or later, so round 0 always has the full population.

    [?downtime] gives every crashed node a restart [downtime] rounds after
    its crash; omitted, crashes are permanent.  [?protect] lists nodes
    exempt from churn (e.g. a designated sender under measurement).

    The per-node streams are derived as [mix(seed · A + node · B)], never
    from a shared sequential generator, so the plan is independent of
    iteration order and stable under any trial-parallelism split. *)

val of_spec :
  seed:int -> n:int -> rounds:int -> string -> (t, string) result
(** [of_spec ~seed ~n ~rounds spec] parses the CLI fault grammar:

    {v
    SPEC    := clause (';' clause)*
    clause  := 'crash:'   NODE '@' ROUND
             | 'restart:' NODE '@' ROUND
             | 'jam:'     NODE '@' FROM '-' UNTIL
             | 'churn:'   RATE [',' DOWNTIME]
    v}

    e.g. ["crash:3@10;restart:3@40;jam:7@0-25"] or ["churn:0.002,120"].
    A [churn] clause derives crash/restart rounds from [seed] (see
    {!churn}) for every node without an explicit [crash] clause.
    Whitespace around clauses is ignored.  Errors report the offending
    clause. *)

(** {1 Queries} *)

val n : t -> int
(** Number of nodes the plan covers (must match the engine's vertex
    count). *)

val is_empty : t -> bool
(** [true] iff the plan contains no crash and no jam window. *)

val alive : t -> node:int -> round:int -> bool
(** [alive t ~node ~round] is [false] iff [round] falls in the node's dead
    interval [\[crash, restart)]. *)

val alive_through : t -> node:int -> from:int -> until:int -> bool
(** [alive_through t ~node ~from ~until] is [true] iff the node is alive
    at every round of the inclusive window [\[from, until\]] — the
    survivor predicate used to scope [t_ack]/[t_prog] claims. *)

val jammed : t -> node:int -> round:int -> bool
(** [true] iff [round] falls inside one of the node's jam windows. *)

val has_jams : t -> bool
(** [true] iff the plan contains at least one jam window.  Engines use
    this to skip the per-transmitter {!jammed} probe entirely on
    jam-free plans. *)

val fill_alive : t -> round:int -> Bytes.t -> unit
(** [fill_alive t ~round buf] sets [buf.[v]] to ['\001'] if node [v] is
    alive at [round] and ['\000'] otherwise, for all [v < n t] — a
    batched form of {!alive} for per-tile liveness snapshots (each tile
    reads its own slice of one shared buffer).  [buf] must hold at
    least [n t] bytes; bytes past [n t] are untouched.  Like {!alive}
    and {!jammed}, this reads only immutable plan state and is safe to
    call from several domains at once.
    @raise Invalid_argument if [buf] is shorter than [n t]. *)

val crash_round : t -> int -> int option
(** [crash_round t node] is the node's crash round, if it ever crashes. *)

val restart_round : t -> int -> int option
(** [restart_round t node] is the node's restart round, if any. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: fault counts and the first few scheduled events. *)

(** {1 Engine-facing transition stream} *)

type cursor
(** Mutable iteration state over the plan's (round, node, event)
    transitions in ascending round order.  One cursor per engine run. *)

val cursor : t -> cursor

val apply : cursor -> round:int -> (int -> event -> unit) -> unit
(** [apply cur ~round f] calls [f node event] for every transition
    scheduled at a round [<= round] that the cursor has not yet emitted,
    in ascending (round, node) order.  Driving it with consecutive rounds
    — as the engine does — yields exactly the transitions of each round,
    in order. *)
