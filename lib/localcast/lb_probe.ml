module Dual = Dualgraph.Dual
module Trace = Radiosim.Trace

type contention = {
  body_rounds : int;
  silent : int;
  single : int;
  collision : int;
}

let reception_rate c =
  if c.body_rounds = 0 then 0.0
  else float_of_int c.single /. float_of_int c.body_rounds

let contention_profile ~dual ~scheduler ~params ~node trace =
  let body_rounds = ref 0 and silent = ref 0 and single = ref 0 in
  let collision = ref 0 in
  (* One incidence precomputation for the whole trace, not one per round. *)
  let incidence = Radiosim.Engine.unreliable_incidence dual in
  Trace.iter
    (fun record ->
      if not (Lb_alg.is_preamble_round params record.Trace.round) then begin
        incr body_rounds;
        let transmitting =
          Array.map
            (function
              | Radiosim.Process.Transmit _ -> true
              | Radiosim.Process.Listen -> false)
            record.Trace.actions
        in
        let counts =
          Radiosim.Engine.transmitter_counts ~incidence ~dual ~scheduler
            ~round:record.Trace.round ~transmitting ()
        in
        match counts.(node) with
        | 0 -> incr silent
        | 1 -> incr single
        | _ -> incr collision
      end)
    trace;
  {
    body_rounds = !body_rounds;
    silent = !silent;
    single = !single;
    collision = !collision;
  }

let committed_owners ~params ~n ~phase trace =
  let owners = Array.make n None in
  let phase_len = params.Params.phase_len in
  Trace.iter
    (fun record ->
      if record.Trace.round / phase_len = phase then
        Array.iteri
          (fun v outs ->
            List.iter
              (fun out ->
                match out with
                | Messages.Committed { Messages.owner; _ } ->
                    owners.(v) <- Some owner
                | Messages.Recv _ | Messages.Ack _ -> ())
              outs)
          record.Trace.outputs)
    trace;
  owners

let groups_in_neighborhood ~dual ~owners ~node =
  let seen = Hashtbl.create 8 in
  let absorb v =
    match owners.(v) with
    | Some owner -> Hashtbl.replace seen owner ()
    | None -> ()
  in
  absorb node;
  Dual.iter_all_neighbors dual node absorb;
  Hashtbl.length seen
