(** Round-robin transmission (Clementi, Monti, Silvestri — paper's
    reference [4]).

    Node [id] transmits exactly in rounds [t ≡ id (mod n)], which is
    collision-free and fault-tolerant-optimal for global broadcast — but
    inherently {e non-local}: it needs the global bound [n] and a
    network-wide id ordering, the very dependence this paper's "true
    locality" program removes.  Included as the non-local reference point
    in experiment E8/E9 discussions. *)

val node :
  n:int ->
  id:int ->
  message:Localcast.Messages.payload ->
  (Localcast.Messages.msg, unit, unit) Radiosim.Process.node
