(* An Internet-of-Things style deployment: a large sensor field where a
   handful of sensors continuously publish readings to their reliable
   neighborhoods — the ubiquitous-computing scenario the paper's "true
   locality" argument targets.

   The point demonstrated here: the SAME parameters (derived from Δ, Δ',
   r, ε₁ only) drive fields of 50, 150 and 300 nodes, and the measured
   per-node guarantees do not degrade as n grows — time and error depend
   only on local density.

   Run with:  dune exec examples/iot_field.exe  (takes ~a minute) *)

open Core
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module L = Localcast

(* Constant density: area scales with n. *)
let field_for ~rng ~n =
  let side = sqrt (float_of_int n /. 4.0) in
  Geo.random_field ~rng ~n ~width:side ~height:side ~r:1.5 ~gray_g':0.5 ()

let run_field ~n ~seed =
  let rng = Prng.Rng.of_int seed in
  let dual = field_for ~rng ~n in
  (* Parameters from a fixed LOCAL density bound, not from this topology's
     incidental maxima — the same numbers work for every n. *)
  let params = L.Params.make ~delta:32 ~delta':48 ~r:1.5 ~eps1:0.1 ~tack_phases:4 () in
  let senders = List.init (max 1 (n / 10)) (fun i -> i * 10) in
  let nodes = L.Lb_alg.network params ~rng ~n in
  let envt = L.Lb_env.saturate ~n ~senders () in
  let monitor = L.Lb_spec.monitor ~dual ~params ~env:envt () in
  let rounds = 5 * params.L.Params.phase_len in
  let (_ : int) =
    Radiosim.Engine.run
      ~observer:(L.Lb_spec.observe monitor)
      ~dual
      ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
      ~nodes ~env:(L.Lb_env.env envt) ~rounds ()
  in
  (dual, params, L.Lb_spec.finish monitor)

let () =
  let table =
    Stats.Table.create ~title:"IoT field: same local parameters, growing n"
      ~columns:
        [ "n"; "max deg"; "senders"; "validity"; "progress"; "reliability"; "max ack" ]
  in
  List.iter
    (fun n ->
      let dual, _params, report = run_field ~n ~seed:(100 + n) in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int n;
          Stats.Table.cell_int (Dual.delta dual);
          Stats.Table.cell_int (max 1 (n / 10));
          (if report.L.Lb_spec.validity_violations = 0 then "clean" else "VIOLATED");
          Stats.Table.cell_rate (L.Lb_spec.progress_rate report);
          Stats.Table.cell_rate (L.Lb_spec.reliability_rate report);
          Stats.Table.cell_int report.L.Lb_spec.max_ack_latency;
        ])
    [ 50; 150; 300 ];
  Stats.Table.print table;
  print_endline
    "Rows share one parameter set derived from the local density bound;\n\
     the guarantees hold flat while n grows 6x (paper, 'True Locality')."
