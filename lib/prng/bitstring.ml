type t = { len : int; data : Bytes.t }

let byte_count len = (len + 7) / 8

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitstring.get: index out of range";
  let byte = Char.code (Bytes.get t.data (i / 8)) in
  byte land (1 lsl (i mod 8)) <> 0

let make_empty len = { len; data = Bytes.make (byte_count len) '\000' }

let set_bit data i =
  let b = Char.code (Bytes.get data (i / 8)) in
  Bytes.set data (i / 8) (Char.chr (b lor (1 lsl (i mod 8))))

let random rng k =
  assert (k >= 0);
  let t = make_empty k in
  for i = 0 to k - 1 do
    if Rng.bool rng then set_bit t.data i
  done;
  t

let of_bools bools =
  let t = make_empty (List.length bools) in
  List.iteri (fun i b -> if b then set_bit t.data i) bools;
  t

let to_bools t = List.init t.len (get t)

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let compare a b =
  let c = Int.compare a.len b.len in
  if c <> 0 then c else Bytes.compare a.data b.data

let ones t =
  let count = ref 0 in
  for i = 0 to t.len - 1 do
    if get t i then incr count
  done;
  !count

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let of_string s =
  let t = make_empty (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> set_bit t.data i
      | '0' -> ()
      | _ -> invalid_arg "Bitstring.of_string: expected only '0'/'1'")
    s;
  t

let pp ppf t =
  let limit = 32 in
  if t.len <= limit then Format.pp_print_string ppf (to_string t)
  else
    Format.fprintf ppf "%s...(%d bits)"
      (String.init limit (fun i -> if get t i then '1' else '0'))
      t.len

type cursor = { src : t; mutable pos : int }

let cursor src = { src; pos = 0 }

let remaining c = c.src.len - c.pos

let position c = c.pos

let take_bit c =
  if c.pos >= c.src.len then invalid_arg "Bitstring.take_bit: exhausted";
  let b = get c.src c.pos in
  c.pos <- c.pos + 1;
  b

let take_int c k =
  assert (k >= 0 && k <= 30);
  let rec go acc remaining =
    if remaining = 0 then acc
    else go ((acc lsl 1) lor (if take_bit c then 1 else 0)) (remaining - 1)
  in
  go 0 k

let take_all_zero c k =
  (* Consume all [k] bits even after seeing a 1, so that nodes sharing a
     seed stay aligned on the same cursor position. *)
  let all_zero = ref true in
  for _ = 1 to k do
    if take_bit c then all_zero := false
  done;
  !all_zero
