type 'msg action =
  | Transmit of 'msg
  | Listen

type ('msg, 'input, 'output) node = {
  decide : round:int -> 'input list -> 'msg action;
  absorb : round:int -> 'msg option -> 'output list;
}

let silent () =
  { decide = (fun ~round:_ _ -> Listen); absorb = (fun ~round:_ _ -> []) }

let pp_action pp_msg ppf = function
  | Transmit m -> Format.fprintf ppf "transmit(%a)" pp_msg m
  | Listen -> Format.pp_print_string ppf "listen"
