(** The region partition of Appendix A.1.

    The plane is cut into half-unit grid squares (so any two points in one
    region are within distance 1, hence reliable neighbors), and the
    region graph [G_{R,r}] joins regions containing points within distance
    [r].  The paper's analysis (goodness contraction, Lemma B.10) lives on
    this structure; here it powers instrumentation — e.g. the seed
    agreement spec checker reports per-region leader counts — and tests of
    the f-boundedness property (Lemma A.2). *)

type t
(** The occupied regions of one embedded dual graph. *)

val of_dual : Dual.t -> t
(** Raises [Invalid_argument] if the dual graph carries no embedding. *)

val region_count : t -> int
(** Number of occupied regions, indexed [0 .. region_count - 1]. *)

val region_of_vertex : t -> int -> int
(** The region containing a vertex. *)

val members : t -> int -> int array
(** Vertices inside a region, sorted. *)

val region_neighbors : t -> int -> int list
(** Adjacent regions in the region graph [G_{R,r}] (within point distance
    [r], excluding the region itself). *)

val regions_within : t -> int -> int -> int list
(** [regions_within t x h]: all regions at hop distance ≤ [h] from region
    [x] in the region graph, including [x] itself. *)

val max_members : t -> int
(** Largest region population — by Lemma A.3 reasoning this is ≤ Δ. *)

val square_side : float
(** The grid pitch, 1/2. *)
