module Mac = Localcast.Mac

type result = {
  covered : bool array;
  covered_count : int;
  completion_round : int option;
  relays : int;
  rounds_executed : int;
}

let run ~params ~rng ~dual ~scheduler ~source ~max_rounds ?(flood_tag = 1) () =
  let n = Dualgraph.Dual.n dual in
  if source < 0 || source >= n then invalid_arg "Flood.run: source out of range";
  let covered = Array.make n false in
  let relayed = Array.make n false in
  let covered_count = ref 0 in
  let completion_round = ref None in
  let relays = ref 0 in
  let mac = ref None in
  let cover ~round node =
    if not covered.(node) then begin
      covered.(node) <- true;
      incr covered_count;
      if !covered_count = n && !completion_round = None then
        completion_round := Some round
    end
  in
  let relay ~node =
    if not relayed.(node) then begin
      relayed.(node) <- true;
      match !mac with
      | Some mac ->
          if Mac.request mac ~node ~tag:flood_tag then incr relays
          else relayed.(node) <- false (* busy: retry on a later reception *)
      | None -> ()
    end
  in
  let callbacks =
    {
      Mac.on_recv =
        (fun ~node ~round payload ->
          if payload.Localcast.Messages.tag = flood_tag then begin
            cover ~round node;
            relay ~node
          end);
      on_ack = (fun ~node:_ ~round:_ _ -> ());
    }
  in
  let m = Mac.create ~callbacks ~params ~rng ~dual () in
  mac := Some m;
  cover ~round:0 source;
  relayed.(source) <- true;
  if Mac.request m ~node:source ~tag:flood_tag then incr relays;
  let stop _record = !covered_count = n in
  let rounds_executed = Mac.run ~stop m ~scheduler ~rounds:max_rounds in
  {
    covered;
    covered_count = !covered_count;
    completion_round = !completion_round;
    relays = !relays;
    rounds_executed;
  }
