(** Post-hoc analytics over LBAlg traces (Lemma C.1's decomposition).

    Lemma C.1 bounds the per-round reception probability by decomposing a
    body round into: the seed groups in a neighborhood (at most δ), the
    event that exactly one group participates, and the event that exactly
    one member of that group transmits.  These helpers reconstruct the
    observable parts of that decomposition from a recorded trace: the
    group structure (from the [Committed] instrumentation outputs) and
    each receiver's per-round contention (from the actions and the link
    schedule).

    All functions are pure trace analyses — they never perturb an
    execution. *)

type contention = {
  body_rounds : int;  (** body rounds examined *)
  silent : int;  (** rounds with no transmitting topology-neighbor *)
  single : int;  (** rounds with exactly one (a clean reception) *)
  collision : int;  (** rounds with two or more *)
}

val reception_rate : contention -> float
(** [single / body_rounds] — the empirical p_u. *)

val contention_profile :
  dual:Dualgraph.Dual.t ->
  scheduler:Radiosim.Scheduler.t ->
  params:Params.t ->
  node:int ->
  (Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Trace.t ->
  contention
(** Classify every body round of the trace by the number of transmitting
    neighbors the node faces under the given link schedule (which must be
    the schedule the trace was produced under). *)

val committed_owners :
  params:Params.t ->
  n:int ->
  phase:int ->
  (Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Trace.t ->
  int option array
(** The seed owner each node committed for the given phase ([None] when
    the trace does not cover that phase's commit, e.g. a non-refresh
    phase under [seed_refresh > 1], where the owner is the one committed
    at the preceding refresh phase). *)

val groups_in_neighborhood :
  dual:Dualgraph.Dual.t -> owners:int option array -> node:int -> int
(** Distinct committed owners across the node's closed G'-neighborhood —
    the [k <= δ] of Lemma C.1. *)
