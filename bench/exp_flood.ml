(* Experiment E18: what the reliability layer buys for global broadcast.

   Two floods of the same message over the same multihop dual graphs:

   - Flood_decay: the classical physical-layer construction [2] — relay
     with a Decay sweep for a bounded window, no acknowledgements;
   - Macapps.Flood: the same logic written over the abstract MAC layer,
     which keeps retransmitting until the reliability guarantee fires.

   On reliable schedules the raw flood is enormously cheaper.  On dual
   graphs with unreliable links switched in, its bounded relay windows
   can be wiped out by contention and coverage stalls — the MAC-layer
   flood pays its polylog overhead and always finishes.  This is the
   paper's value proposition for building the layer at all. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Params = Localcast.Params
module Table = Stats.Table

let run () =
  section "E18: physical-layer flood vs MAC-layer flood (global broadcast)";
  note
    "Line topologies with 2-hop unreliable shortcuts (r=2).  'benign' =\n\
     reliable links only; 'hostile' = every unreliable link switched in\n\
     permanently (maximum standing contention).  relay_epochs = 2 for the\n\
     raw flood.";
  let trials = trials_scaled 10 in
  let table =
    Table.create ~title:"E18: coverage and completion"
      ~columns:
        [ "n"; "scheduler"; "algorithm"; "coverage"; "mean completion" ]
  in
  let sizes = if !quick then [ 8 ] else [ 8; 16; 24 ] in
  List.iter
    (fun n ->
      let dual = Geo.line ~n ~spacing:0.9 ~r:2.0 () in
      let params = Params.of_dual ~eps1:0.1 ~tack_phases:3 dual in
      let mac_budget = 60 * n * params.Params.phase_len in
      let raw_budget = mac_budget in
      List.iter
        (fun (sched_name, scheduler) ->
          (* Both floods share salt n, so each trial pits them against the
             same seed. *)
          let raw_samples =
            run_trials ~salt:n ~n:trials (fun ~trial:_ ~seed ->
                let result =
                  Baseline.Flood_decay.run
                    ~rng:(Prng.Rng.of_int seed)
                    ~dual ~scheduler ~source:0 ~relay_epochs:2
                    ~max_rounds:raw_budget ()
                in
                ( result.Baseline.Flood_decay.covered_count,
                  result.Baseline.Flood_decay.completion_round ))
          in
          let mac_samples =
            run_trials ~salt:n ~n:trials (fun ~trial:_ ~seed ->
                let result =
                  Macapps.Flood.run ~params
                    ~rng:(Prng.Rng.of_int seed)
                    ~dual ~scheduler ~source:0 ~max_rounds:mac_budget ()
                in
                ( result.Macapps.Flood.covered_count,
                  result.Macapps.Flood.completion_round ))
          in
          let fold samples =
            let cov = ref 0 and total = ref 0 in
            let completions = ref [] in
            List.iter
              (fun (c, completion) ->
                cov := !cov + c;
                total := !total + n;
                match completion with
                | Some round -> completions := float_of_int round :: !completions
                | None -> ())
              samples;
            (!cov, !total, !completions)
          in
          let raw_cov, raw_total, raw_completions = fold raw_samples in
          let mac_cov, mac_total, mac_completions = fold mac_samples in
          let mean l = if l = [] then Float.nan else Stats.Summary.mean l in
          Table.add_row table
            [
              Table.cell_int n;
              sched_name;
              "flood-decay";
              Printf.sprintf "%d/%d" raw_cov raw_total;
              Table.cell_float ~decimals:0 (mean raw_completions);
            ];
          Table.add_row table
            [
              Table.cell_int n;
              sched_name;
              "mac-flood";
              Printf.sprintf "%d/%d" mac_cov mac_total;
              Table.cell_float ~decimals:0 (mean mac_completions);
            ])
        [ ("benign", Sch.reliable_only); ("hostile", Sch.all_edges) ])
    sizes;
  Table.print table;
  note
    "Expected: flood-decay is orders of magnitude faster WHEN it covers,\n\
     but its coverage is unreliable: each hop gets one bounded relay\n\
     window with no acknowledgement, so a single unlucky window breaks\n\
     the chain — even on the benign schedule.  (Standing unreliable links\n\
     can even HELP it by adding 2-hop paths — but nothing gives it a\n\
     guarantee.)  The MAC-layer flood pays the t_ack overhead per hop and\n\
     reaches full coverage in every configuration: that guarantee is what\n\
     the local broadcast layer exists to sell.\n"
