(* Experiments E21/E24: the tiled engine at scale.  Constant-density
   random fields from n = 10^4 to n = 10^6 with one fixed local
   parameter set (r, transmit p, scheduler p) — so Δ is flat and the
   per-node per-round cost must be flat too.  E21 drives the dual-graph
   reception model (round loop O(n + active edges), never O(n²)); E24
   drives the same curve under SINR physical interference, where the
   output-sensitive kernels must keep the cost proportional to the
   transmitters' footprint rather than to n × cols.  Wall-clock is
   measured around [Tiled.run] (tiles = 1 delegates to the flat
   sequential engine; tiles = 2 exercises the parallel path), resident
   memory is read from /proc/self/status after each run, and a digest
   cross-check asserts on the spot that the 2-tile trace is identical
   to the 1-tile trace. *)

open Core
open Exp_common
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Tiled = Radiosim.Tiled
module Trace = Radiosim.Trace
module P = Radiosim.Process
module M = Localcast.Messages
module Table = Stats.Table
module Clock = Monotonic_clock

let sched_p = 0.02
let r = 1.0

let vm_rss_mb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line when String.length line > 6 && String.sub line 0 6 = "VmRSS:" ->
          let kb =
            String.trim (String.sub line 6 (String.length line - 6))
          in
          let kb =
            match String.split_on_char ' ' kb with
            | v :: _ -> float_of_string v
            | [] -> Float.nan
          in
          close_in ic;
          Some (kb /. 1024.0)
      | _ -> scan ()
      | exception End_of_file ->
          close_in ic;
          None
    in
    scan ()
  with _ -> None

let make_field ~seed ~n =
  let side = sqrt (float_of_int n) in
  Geo.random_field
    ~rng:(Prng.Rng.of_int seed)
    ~n ~width:side ~height:side ~r ~gray_g':0.5 ()

let make_nodes ~seed ~n ~transmit_p =
  let rng = Prng.Rng.of_int (seed + 1) in
  Array.init n (fun src ->
      Baseline.Uniform.node ~p:transmit_p
        ~message:(M.payload ~src ~uid:0 ())
        ~rng:(Prng.Rng.split rng))

(* FNV-1a over the round's actions and deliveries: a cheap order-
   sensitive digest of the observable trace, used both for the
   tiles=1 vs tiles=2 identity check and as the printed trace hash. *)
let fnv_init = 0xcbf29ce48422325 (* FNV offset basis, truncated to 63-bit *)
let fnv h x = (h lxor x) * 0x100000001b3

let digest_observer acc record =
  let h = ref (fnv !acc record.Trace.round) in
  Array.iter
    (fun a ->
      h :=
        fnv !h
          (match a with
          | P.Transmit (M.Data p) -> 3 + p.M.src
          | P.Transmit _ -> 2
          | P.Listen -> 1))
    record.Trace.actions;
  Array.iter
    (fun d ->
      h :=
        fnv !h
          (match d with
          | Some (M.Data p) -> 3 + p.M.src
          | Some _ -> 2
          | None -> 1))
    record.Trace.delivered;
  acc := !h

(* The timed run carries no observer: materializing four n-sized record
   arrays per round is the *instrumentation* cost, not the engine's, and
   at n = 10^6 it dominates.  The trace digest comes from a separate,
   untimed run over identically-seeded state. *)
let timed_run ?reception ~name ~dual ~nodes ~seed ~rounds ~tiles () =
  let scheduler = Sch.bernoulli_sparse ~seed ~p:sched_p in
  let t0 = Clock.now () in
  let executed =
    Tiled.run ?reception ~tiles ~dual ~scheduler ~nodes
      ~env:(Radiosim.Env.null ~name ())
      ~rounds ()
  in
  let elapsed_ns = Int64.to_float (Int64.sub (Clock.now ()) t0) in
  (executed, elapsed_ns)

let hash_run ?reception ~name ~dual ~nodes ~seed ~rounds ~tiles () =
  let scheduler = Sch.bernoulli_sparse ~seed ~p:sched_p in
  let hash = ref fnv_init in
  let (_ : int) =
    Tiled.run ?reception
      ~observer:(digest_observer hash)
      ~tiles ~dual ~scheduler ~nodes
      ~env:(Radiosim.Env.null ~name ())
      ~rounds ()
  in
  !hash

(* One size/tiles sweep shared by E21 and E24: time (min of reps),
   digest, assert tiles>1 hashes against tiles=1, emit table rows. *)
let scale_curve ~name ~reception ~transmit_p ~sizes ~table =
  let base_cost = ref None in
  List.iter
    (fun (n, rounds, check_two_tiles) ->
      let seed = master_seed + n in
      let dual = make_field ~seed ~n in
      let tile_counts = if check_two_tiles then [ 1; 2 ] else [ 1 ] in
      let one_tile_hash = ref None in
      List.iter
        (fun tiles ->
          (* Node state is consumed by a run (stateful RNGs), so each
             run — timed or digesting — gets a fresh, identically-seeded
             population. *)
          (* Min of three repetitions: on a time-shared host the minimum
             is the least-interfered estimate of the deterministic cost. *)
          let reps = if !quick then 1 else 3 in
          let best = ref infinity in
          for _ = 1 to reps do
            let executed, elapsed_ns =
              timed_run ?reception ~name ~dual
                ~nodes:(make_nodes ~seed ~n ~transmit_p)
                ~seed ~rounds ~tiles ()
            in
            assert (executed = rounds);
            if elapsed_ns < !best then best := elapsed_ns
          done;
          let per_node = !best /. float_of_int (n * rounds) in
          let rss = vm_rss_mb () in
          let hash =
            hash_run ?reception ~name ~dual
              ~nodes:(make_nodes ~seed ~n ~transmit_p)
              ~seed ~rounds ~tiles ()
          in
          (match (tiles, !one_tile_hash) with
          | 1, _ -> one_tile_hash := Some hash
          | _, Some h when h <> hash ->
              failwith
                (Printf.sprintf
                   "%s: tiles=%d trace hash diverges from tiles=1 at n=%d"
                   name tiles n)
          | _ -> ());
          if tiles = 1 && !base_cost = None then base_cost := Some per_node;
          let vs_base =
            match !base_cost with
            | Some b when b > 0.0 -> Printf.sprintf "%.2fx" (per_node /. b)
            | _ -> "-"
          in
          Table.add_row table
            [
              Table.cell_int n;
              Table.cell_int tiles;
              Table.cell_int rounds;
              Table.cell_float ~decimals:1 per_node;
              vs_base;
              (match rss with
              | Some mb -> Table.cell_float ~decimals:1 mb
              | None -> "n/a");
              Printf.sprintf "%016x" (hash land max_int);
            ])
        tile_counts)
    sizes

let columns =
  [ "n"; "tiles"; "rounds"; "ns/node/round"; "vs smallest"; "RSS MB";
    "trace hash" ]

let run () =
  section "E21: tiled engine at scale — flat per-node per-round cost";
  note
    "Constant-density fields (1 node per unit^2, r=%.1f, transmit\n\
     p=%.2f, bernoulli-sparse scheduler p=%.2f) from 10^4 to 10^6\n\
     nodes.  ns/node/round must stay flat (within 2x) as n grows 100x;\n\
     tiles=2 additionally exercises the halo-exchange path and must\n\
     reproduce the tiles=1 trace hash bit-for-bit."
    r 0.01 sched_p;
  let sizes =
    if !quick then [ (2_000, 10, true) ; (8_000, 10, false) ]
    else [ (10_000, 60, true); (100_000, 30, true); (1_000_000, 24, false) ]
  in
  let table =
    Table.create ~title:"E21: wall-clock and memory per round vs n" ~columns
  in
  scale_curve ~name:"e21" ~reception:None ~transmit_p:0.01 ~sizes ~table;
  Table.print table;
  note
    "Expected: ns/node/round flat within 2x across the full size range\n\
     (the round loop is O(n + active edges) with Δ fixed); tiles=2 rows\n\
     match the tiles=1 trace hash exactly (halo exchange is semantics-\n\
     free); RSS grows linearly in n.\n"

(* E24: the same constant-density curve under SINR physical
   interference.  Transmit p = 2·10^-4 keeps the expected transmitter
   count per round proportional to n (2 at 10^4, 200 at 10^6) while
   staying sparse: the output-sensitive kernels should only ever touch
   the transmitters' footprint (occupied columns, their near bands, and
   the listeners inside), so ns/node/round must stay within a small
   constant of the dual-graph curve even though a dense SINR sweep
   would be O(n·cols) per round.  Tiles=2 is cross-checked at every
   size — including 10^6 — because the SINR scan phase partitions slot
   ranges rather than pushing along edges, a code path E21 never
   exercises. *)
let sinr_params = "sinr:alpha=3,beta=1.2,noise=0.02"

let run_e24 () =
  section "E24: SINR reception at scale — output-sensitive kernels";
  let reception =
    match Radiosim.Reception.of_spec sinr_params with
    | Ok m -> m
    | Error e -> failwith ("E24: bad reception spec: " ^ e)
  in
  note
    "Constant-density fields (1 node per unit^2, r=%.1f, transmit\n\
     p=%.4f, bernoulli-sparse scheduler p=%.2f) from 10^4 to 10^6\n\
     nodes under %s.  The sparse kernels make the\n\
     round cost proportional to the transmitters' footprint, so\n\
     ns/node/round must stay within 3x of E21's dual-graph figure at\n\
     10^6; tiles=2 partitions the SINR scan by slot ranges and must\n\
     reproduce the tiles=1 trace hash bit-for-bit at every size."
    r 0.0002 sched_p sinr_params;
  let sizes =
    if !quick then [ (2_000, 10, true); (8_000, 10, true) ]
    else [ (10_000, 60, true); (100_000, 30, true); (1_000_000, 24, true) ]
  in
  let table =
    Table.create ~title:"E24: SINR wall-clock and memory per round vs n"
      ~columns
  in
  scale_curve ~name:"e24" ~reception:(Some reception) ~transmit_p:0.0002
    ~sizes ~table;
  Table.print table;
  note
    "Expected: ns/node/round flat as n grows 100x and within 3x of the\n\
     E21 dual-graph curve (the active-column scan touches only the\n\
     transmitters' footprint); tiles=2 rows match the tiles=1 trace\n\
     hash exactly at every size (all floats accumulate in grid-column\n\
     order, never tile order); RSS grows linearly in n.\n"
