module Dual = Dualgraph.Dual

type t = {
  name : string;
  choose : round:int -> transmitting:bool array -> edge:int -> bool;
}

let name t = t.name
let choose t = t.choose

let of_oblivious scheduler =
  {
    name = Scheduler.name scheduler;
    choose =
      (fun ~round ~transmitting:_ ~edge -> Scheduler.active scheduler ~round ~edge);
  }

let jam dual =
  let n = Dual.n dual in
  (* Cache one round's decision, keyed by BOTH the round number and the
     physical identity of the transmission vector: even if the engine
     reuses the vector's storage across rounds, the round component keeps
     the cache fresh, and an adversary value (incorrectly but harmlessly)
     shared across several runs never serves a stale decision. *)
  let last_key : (int * bool array) option ref = ref None in
  let active = Array.make (Dual.unreliable_count dual) false in
  let recompute transmitting =
    Array.fill active 0 (Array.length active) false;
    for u = 0 to n - 1 do
      if not transmitting.(u) then begin
        let reliable_transmitters = ref 0 in
        Dual.iter_reliable_neighbors dual u (fun v ->
            if transmitting.(v) then incr reliable_transmitters);
        let unreliable_transmitters =
          (* Prepending while scanning the ascending CSR slice yields
             descending edge order — the same order the previous
             prepend-built incidence lists had, so the adversary's edge
             choices (and hence recorded traces) are unchanged. *)
          let acc = ref [] in
          Dual.iter_unreliable_incident dual u (fun v edge ->
              if transmitting.(v) then acc := (edge, v) :: !acc);
          !acc
        in
        match (!reliable_transmitters, unreliable_transmitters) with
        | 1, (edge, _) :: _ ->
            (* One clean reliable transmitter: collide it if possible. *)
            active.(edge) <- true
        | 0, [ _ ] ->
            (* A single unreliable transmitter would deliver: keep it out. *)
            ()
        | 0, (e1, _) :: (e2, _) :: _ ->
            (* Several unreliable transmitters: bring in two to collide.
               (They may already be incident elsewhere; extra inclusions
               only ever add contention.) *)
            active.(e1) <- true;
            active.(e2) <- true
        | _ -> ()
      end
    done
  in
  {
    name = "adaptive-jam";
    choose =
      (fun ~round ~transmitting ~edge ->
        let fresh =
          match !last_key with
          | Some (r, v) -> r <> round || not (v == transmitting)
          | None -> true
        in
        if fresh then begin
          recompute transmitting;
          last_key := Some (round, transmitting)
        end;
        active.(edge));
  }
