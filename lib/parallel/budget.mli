(** A process-wide domain budget shared by every parallel subsystem.

    OCaml domains are heavyweight (one system thread plus GC
    participation each), and oversubscribing them degrades everything:
    a tiled engine run nested inside a [Stats.Experiment.trials_par]
    sweep must not multiply the two domain counts.  This module is the
    single ledger both consult: spawners register the extra domains
    they hold, and {!suggested_extra} tells a new spawner how many more
    the machine can absorb.

    The budget only shapes {e defaults}.  An explicit [~domains] or
    [~tiles] argument is always honored verbatim, so correctness tests
    can force parallel execution on any machine — including a
    single-core CI runner, where the suggested extra is 0. *)

val capacity : unit -> int
(** Total domains the machine is expected to run well, including the
    main domain.  Initially [Domain.recommended_domain_count ()]. *)

val set_capacity : int -> unit
(** Override {!capacity} (clamped to >= 1).  Benchmarks use this to pin
    the budget regardless of the host. *)

val in_flight : unit -> int
(** Extra domains currently registered as spawned and not yet joined. *)

val note_spawned : int -> unit
(** Register [k] freshly spawned extra domains against the budget. *)

val note_joined : int -> unit
(** Release [k] previously registered domains back to the budget. *)

val suggested_extra : unit -> int
(** [max 0 (capacity () - 1 - in_flight ())] — how many extra domains a
    new parallel section should spawn by default so the process stays
    within capacity.  Zero whenever the budget is exhausted (or the
    machine is single-core). *)
