let chi_square_statistic ~observed ~expected =
  if Array.length observed <> Array.length expected then
    invalid_arg "Hypothesis.chi_square_statistic: length mismatch";
  if Array.length observed = 0 then
    invalid_arg "Hypothesis.chi_square_statistic: empty";
  let acc = ref 0.0 in
  Array.iteri
    (fun i o ->
      let e = expected.(i) in
      if e <= 0.0 then invalid_arg "Hypothesis.chi_square_statistic: expected <= 0";
      let d = float_of_int o -. e in
      acc := !acc +. (d *. d /. e))
    observed;
  !acc

let chi_square_uniform observed =
  let k = Array.length observed in
  if k = 0 then invalid_arg "Hypothesis.chi_square_uniform: empty";
  let total = Array.fold_left ( + ) 0 observed in
  let expected = Array.make k (float_of_int total /. float_of_int k) in
  chi_square_statistic ~observed ~expected

let chi_square_critical ~df =
  if df < 1 then invalid_arg "Hypothesis.chi_square_critical: df must be >= 1";
  (* Wilson–Hilferty: X²_p(df) ≈ df · (1 - 2/(9 df) + z_p sqrt(2/(9 df)))³
     with z_0.99 = 2.326348. *)
  let dff = float_of_int df in
  let z = 2.326348 in
  let t = 1.0 -. (2.0 /. (9.0 *. dff)) +. (z *. sqrt (2.0 /. (9.0 *. dff))) in
  dff *. t *. t *. t

let uniform_ok ?df observed =
  let df = match df with Some df -> df | None -> Array.length observed - 1 in
  chi_square_uniform observed <= chi_square_critical ~df

let serial_correlation samples =
  let n = Array.length samples in
  if n < 3 then 0.0
  else begin
    let mean = Array.fold_left ( +. ) 0.0 samples /. float_of_int n in
    let num = ref 0.0 and den = ref 0.0 in
    for i = 0 to n - 2 do
      num := !num +. ((samples.(i) -. mean) *. (samples.(i + 1) -. mean))
    done;
    for i = 0 to n - 1 do
      den := !den +. ((samples.(i) -. mean) *. (samples.(i) -. mean))
    done;
    if !den = 0.0 then 0.0 else !num /. !den
  end
