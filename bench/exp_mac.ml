(* Experiment E11: abstract MAC layer composition (§1, §5).  A multihop
   flood written against the MAC events completes in O(D · f_ack)-shaped
   time on dual graphs with flapping unreliable links. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Params = Localcast.Params
module Table = Stats.Table

let run () =
  section "E11: flood over the abstract MAC layer (§1, §5)";
  note
    "Line topologies with 2-hop unreliable shortcuts (r = 2); flapping\n\
     Bernoulli(1/2) scheduler.  Completion rounds normalized by hop count\n\
     and by the MAC's f_ack bound.";
  let trials = trials_scaled 5 in
  let table =
    Table.create ~title:"E11: flood completion vs network diameter"
      ~columns:
        [ "hops"; "f_ack"; "mean completion"; "rounds/hop"; "completion/(D*f_ack)";
          "coverage" ]
  in
  let sizes = if !quick then [ 3; 9 ] else [ 3; 5; 9; 17 ] in
  List.iter
    (fun n ->
      let dual = Geo.line ~n ~spacing:0.9 ~r:2.0 () in
      let params = Params.of_dual ~eps1:0.1 ~tack_phases:3 dual in
      let f_ack = Params.t_ack_rounds params in
      let hops = n - 1 in
      let samples =
        run_trials ~salt:n ~n:trials (fun ~trial:_ ~seed ->
            let result =
              Macapps.Flood.run ~params
                ~rng:(Prng.Rng.of_int seed)
                ~dual
                ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
                ~source:0
                ~max_rounds:(50 * n * params.Params.phase_len)
                ()
            in
            ( result.Macapps.Flood.covered_count,
              result.Macapps.Flood.completion_round ))
      in
      let completions = ref [] and covered = ref 0 and total = ref 0 in
      List.iter
        (fun (cov, completion) ->
          covered := !covered + cov;
          total := !total + n;
          match completion with
          | Some round -> completions := float_of_int round :: !completions
          | None -> ())
        samples;
      let mean_completion =
        if !completions = [] then Float.nan else Stats.Summary.mean !completions
      in
      Table.add_row table
        [
          Table.cell_int hops;
          Table.cell_int f_ack;
          Table.cell_float ~decimals:0 mean_completion;
          Table.cell_float ~decimals:0 (mean_completion /. float_of_int hops);
          Table.cell_float ~decimals:3
            (mean_completion /. (float_of_int hops *. float_of_int f_ack));
          Printf.sprintf "%d/%d" !covered !total;
        ])
    sizes;
  Table.print table;
  note
    "Expected: full coverage; rounds/hop roughly constant (linear-in-D\n\
     shape); completion well under D * f_ack (the worst-case budget).\n"
