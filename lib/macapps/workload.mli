(** Open-loop arrival workloads for the multi-message serving engine.

    A workload assigns every (node, round) pair a number of fresh
    message {e arrivals} — the offered load the serving layer must
    admit, queue or shed.  Three canonical shapes:

    - [Poisson]: each node draws an independent Poisson count with the
      network rate split evenly — the memoryless baseline.
    - [Bursty]: a per-node on/off modulator (geometric on and off period
      lengths) gates a Poisson process whose on-rate is scaled up so the
      {e time-averaged} offered load still equals [rate] — the same
      load, concentrated into bursts.
    - [Hotspot]: a seed-chosen fraction of nodes carries a
      disproportionate share of the offered load (rate skew), the rest
      split the remainder — the many-users-few-talkers shape.

    Determinism is the point: arrivals at node [v] are a pure function
    of [(seed, v, round)] — per-node streams are derived independently
    (SplitMix-style finalizer), so the plan is {e order-independent}:
    any interleaving of nodes, any split of nodes across domains, and
    any round skipping produce bit-identical counts (QCheck-enforced in
    [test/test_serve.ml]).  The only constraint is per-node round
    monotonicity, which the bursty modulator's cursor needs.

    {!arrivals} allocates nothing: all state lives in preallocated flat
    arrays, and the draws use an inline 63-bit finalizer rather than a
    boxed [int64] generator — the serving loop calls it every round. *)

type process =
  | Poisson of { rate : float }
      (** [rate]: expected arrivals per round, whole network. *)
  | Bursty of { rate : float; on_mean : float; off_mean : float }
      (** Per-node on/off gating with geometric period lengths of the
          given means (rounds, ≥ 1); time-averaged offered load is
          [rate] per round network-wide. *)
  | Hotspot of { rate : float; hot_fraction : float; hot_share : float }
      (** About [hot_fraction] of nodes (seed-chosen, at least one)
          carry [hot_share] of the offered load. *)

val pp_process : Format.formatter -> process -> unit

val parse : string -> (process, string) result
(** CLI grammar (docs/LOAD.md): ["poisson:RATE"],
    ["bursty:RATE:ON_MEAN:OFF_MEAN"],
    ["hotspot:RATE:HOT_FRACTION:HOT_SHARE"].  Parameters are validated
    the same way {!create} validates them, so an [Ok] process is always
    accepted by {!create}. *)

val process_to_string : process -> string
(** Inverse of {!parse}. *)

type t

val create : process:process -> n:int -> seed:int -> unit -> t
(** Instantiate for [n] nodes.  Raises [Invalid_argument] on
    negative/non-finite rates, means < 1, or fractions outside
    [\[0, 1\]]. *)

val process : t -> process

val n : t -> int

val arrivals : t -> node:int -> round:int -> int
(** Arrival count for the pair.  Rounds must be non-decreasing per node
    ([Invalid_argument] otherwise); across nodes any order is fine and
    changes nothing.  Counts are capped at 64 per (node, round) so the
    draw budget is fixed.  O(expected count), allocation-free. *)

val hot : t -> node:int -> bool
(** Whether the node is in the hotspot set ([false] for the other
    processes). *)
