(* Golden-trace conformance suite.

   Each config below deterministically drives the engine — a fixed
   topology, a fixed oblivious scheduler, fixed Bernoulli-transmit
   processes and (usually) a fault plan — with an event sink attached,
   and compares the resulting JSONL event stream byte-for-byte against a
   committed trace in test/golden/.  Any change to engine scheduling,
   collision resolution, fault transitions or the event codecs shows up
   as a diff here before it can silently change simulation results.

   The corpus spans the scheduler zoo (bernoulli, bernoulli-sparse,
   flicker, edge-phase-flicker, thwart, all-edges, reliable-only) crossed
   with fault-plan shapes (none, crashes, crash+restart, jam windows,
   seed-derived churn with and without revival), two SINR-reception
   runs (one clean, one with jam windows and churn) pinning the physical
   interference backend's scheduling-free reception, its event mapping
   and its jam-as-noise fault semantics, and two tournament cells
   (a back-off relay network under jam windows, a sawtooth relay
   network under churn) pinning the E25 strategy/relay semantics —
   acquisition, local-round schedules, the global budget window and the
   counter-mode per-node streams of Baseline.Strategy.

   Regenerating the corpus (after an intentional semantic change):

     dune build && \
     GOLDEN_OUT=$PWD/test/golden \
       ./_build/default/test/test_main.exe test golden-traces

   then review the diff and commit.  With GOLDEN_OUT set the suite
   writes traces instead of checking them. *)

open Core
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module P = Radiosim.Process
module M = Localcast.Messages
module Rng = Prng.Rng
module Plan = Faults.Plan

type processes =
  | Bernoulli of float
      (** every node transmits i.i.d. with this per-round probability *)
  | Relay of { spec : string; budget : int }
      (** one E25 tournament cell: node 0 initially holds the payload,
          every node runs [Strategy.relay] under the [Strategy.parse]d
          spec with the given global budget window *)

type config = {
  name : string;
  seed : int;
  n : int;
  rounds : int;
  processes : processes;
  scheduler : seed:int -> Sch.t;
  faults : string option;  (** Plan.of_spec grammar; [None] = no plan *)
  reception : string;  (** Reception.of_spec grammar *)
}

let configs =
  [
    {
      name = "bernoulli_no_faults";
      seed = 11;
      n = 10;
      rounds = 30;
      processes = Bernoulli 0.4;
      scheduler = (fun ~seed -> Sch.bernoulli ~seed ~p:0.5);
      faults = None;
      reception = "dual";
    };
    {
      name = "bernoulli_crash";
      seed = 12;
      n = 10;
      rounds = 28;
      processes = Bernoulli 0.35;
      scheduler = (fun ~seed -> Sch.bernoulli ~seed ~p:0.4);
      faults = Some "crash:2@5;crash:7@11";
      reception = "dual";
    };
    {
      name = "sparse_crash_restart";
      seed = 13;
      n = 12;
      rounds = 32;
      processes = Bernoulli 0.3;
      scheduler = (fun ~seed -> Sch.bernoulli_sparse ~seed ~p:0.3);
      faults = Some "crash:4@6;restart:4@14;crash:9@3;restart:9@20";
      reception = "dual";
    };
    {
      name = "flicker_jam";
      seed = 14;
      n = 9;
      rounds = 24;
      processes = Bernoulli 0.5;
      scheduler = (fun ~seed:_ -> Sch.flicker ~period:6 ~duty:3);
      faults = Some "jam:1@0-10;jam:5@4-12;jam:5@16-20";
      reception = "dual";
    };
    {
      name = "thwart_crash_jam";
      seed = 15;
      n = 10;
      rounds = 30;
      processes = Bernoulli 0.4;
      scheduler = (fun ~seed:_ -> Sch.thwart ~hot:(fun r -> r mod 5 < 2));
      faults = Some "crash:3@7;jam:0@5-15";
      reception = "dual";
    };
    {
      name = "edge_phase_churn_revive";
      seed = 16;
      n = 12;
      rounds = 40;
      processes = Bernoulli 0.35;
      scheduler = (fun ~seed:_ -> Sch.edge_phase_flicker ~period:5);
      faults = Some "churn:0.02,8";
      reception = "dual";
    };
    {
      name = "all_edges_churn_permanent";
      seed = 17;
      n = 8;
      rounds = 36;
      processes = Bernoulli 0.25;
      scheduler = (fun ~seed:_ -> Sch.all_edges);
      faults = Some "churn:0.03";
      reception = "dual";
    };
    {
      name = "reliable_only_mixed";
      seed = 18;
      n = 11;
      rounds = 32;
      processes = Bernoulli 0.45;
      scheduler = (fun ~seed:_ -> Sch.reliable_only);
      faults = Some "crash:2@4;restart:2@9;jam:6@2-8;churn:0.01,10";
      reception = "dual";
    };
    {
      name = "sinr_no_faults";
      seed = 19;
      n = 12;
      rounds = 30;
      processes = Bernoulli 0.4;
      scheduler = (fun ~seed -> Sch.bernoulli ~seed ~p:0.5);
      faults = None;
      reception = "sinr:alpha=3,beta=1.2,noise=0.02";
    };
    {
      name = "sinr_jam_churn";
      seed = 20;
      n = 11;
      rounds = 32;
      processes = Bernoulli 0.35;
      scheduler = (fun ~seed:_ -> Sch.reliable_only);
      faults = Some "jam:3@2-12;jam:8@6-20;churn:0.02,8";
      reception = "sinr:alpha=3.5,beta=1.5,noise=0.01,jam=500,near=3";
    };
    {
      name = "backoff_relay_jam";
      seed = 21;
      n = 10;
      rounds = 30;
      processes = Relay { spec = "backoff:4"; budget = 26 };
      scheduler = (fun ~seed -> Sch.bernoulli ~seed ~p:0.5);
      faults = Some "jam:2@3-12;jam:6@8-18";
      reception = "dual";
    };
    {
      name = "sawtooth_relay_churn";
      seed = 22;
      n = 12;
      rounds = 36;
      processes = Relay { spec = "sawtooth:4"; budget = 30 };
      scheduler = (fun ~seed:_ -> Sch.edge_phase_flicker ~period:5);
      faults = Some "churn:0.02,8";
      reception = "dual";
    };
  ]

(* Most golden processes are deliberately protocol-free: i.i.d.
   Bernoulli transmitters, so the corpus pins engine/fault/scheduler
   semantics without churning whenever LBAlg's internals evolve.  The
   two Relay configs additionally pin the strategy/relay layer that the
   E25 tournament is built on. *)
let process ~p ~src ~rng =
  {
    P.decide =
      (fun ~round:_ _ ->
        if Rng.bernoulli rng p then
          P.Transmit (M.Data (M.payload ~src ~uid:0 ()))
        else P.Listen);
    absorb = (fun ~round:_ _ -> []);
  }

(* Fresh-state revival, same (seed, node, round) SplitMix derivation
   shape as Service.reviver, so restarted golden nodes are reproducible
   too. *)
let revive_of ~seed ~p ~node ~round =
  let mixed =
    Prng.Splitmix.mix
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.add
            (Int64.mul (Int64.of_int (node + 1)) 0xC2B2AE3D27D4EB4FL)
            (Int64.mul (Int64.of_int (round + 1)) 0x165667B19E3779F9L)))
  in
  process ~p ~src:node ~rng:(Rng.create mixed)

let strategy_of ~name spec =
  match Baseline.Strategy.parse spec with
  | Ok t -> t
  | Error e -> Alcotest.failf "config %s: bad strategy spec: %s" name e

let run_config c =
  let rng = Rng.of_int c.seed in
  let dual =
    Geo.random_field ~rng ~n:c.n ~width:3.2 ~height:3.2 ~r:1.5 ~gray_g':0.5 ()
  in
  let n = Dual.n dual in
  let faults =
    match c.faults with
    | None -> None
    | Some spec -> (
        match Plan.of_spec ~seed:c.seed ~n ~rounds:c.rounds spec with
        | Ok plan -> Some plan
        | Error e -> Alcotest.failf "config %s: bad fault spec: %s" c.name e)
  in
  let reception =
    match Radiosim.Reception.of_spec c.reception with
    | Ok m -> m
    | Error e -> Alcotest.failf "config %s: bad reception spec: %s" c.name e
  in
  let nodes =
    match c.processes with
    | Bernoulli p ->
        let node_rng = Rng.of_int (c.seed + 1) in
        Array.init n (fun src -> process ~p ~src ~rng:(Rng.split node_rng))
    | Relay { spec; budget } ->
        let strat = strategy_of ~name:c.name spec in
        Array.init n (fun node ->
            Baseline.Strategy.relay strat
              ?initial:
                (if node = 0 then Some (M.payload ~src:0 ~uid:0 ()) else None)
              ~budget
              ~rng:(Baseline.Strategy.node_rng ~seed:c.seed ~node ())
              ~node ())
  in
  let revive ~node ~round =
    match c.processes with
    | Bernoulli p -> revive_of ~seed:c.seed ~p ~node ~round
    | Relay { spec; budget } ->
        (* A revived relay has lost the message: fresh strategy state on
           the node's revival-round stream, silent until it re-acquires. *)
        Baseline.Strategy.relay
          (strategy_of ~name:c.name spec)
          ~budget
          ~rng:(Baseline.Strategy.node_rng ~round ~seed:c.seed ~node ())
          ~node ()
  in
  let sink =
    Obs.Sink.create ~capacity:(max 65536 (c.rounds * ((2 * n) + 8))) ()
  in
  let (_ : int) =
    Engine.run ~sink ?faults ~reception ~revive ~dual
      ~scheduler:(c.scheduler ~seed:c.seed)
      ~nodes
      ~env:(Radiosim.Env.null ~name:c.name ())
      ~rounds:c.rounds ()
  in
  if Obs.Sink.dropped sink > 0 then
    Alcotest.failf "config %s: sink dropped %d events (capacity too small)"
      c.name (Obs.Sink.dropped sink);
  let buf = Buffer.create 65536 in
  Obs.Sink.iter sink (fun ev ->
      Buffer.add_string buf (Obs.Event.to_json ev);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let golden_dir () =
  match Sys.getenv_opt "GOLDEN_OUT" with Some dir -> dir | None -> "golden"

let golden_path name = Filename.concat (golden_dir ()) (name ^ ".jsonl")

let read_file path = In_channel.with_open_bin path In_channel.input_all

let first_diff expected actual =
  let el = String.split_on_char '\n' expected in
  let al = String.split_on_char '\n' actual in
  let rec scan i = function
    | [], [] -> None
    | e :: _, [] -> Some (i, e, "<missing line>")
    | [], a :: _ -> Some (i, "<missing line>", a)
    | e :: es, a :: as_ ->
        if String.equal e a then scan (i + 1) (es, as_) else Some (i, e, a)
  in
  scan 1 (el, al)

let conformance c () =
  let actual = run_config c in
  match Sys.getenv_opt "GOLDEN_OUT" with
  | Some _ ->
      Out_channel.with_open_bin (golden_path c.name) (fun oc ->
          Out_channel.output_string oc actual)
  | None ->
      let path = golden_path c.name in
      if not (Sys.file_exists path) then
        Alcotest.failf
          "missing golden trace %s — regenerate with GOLDEN_OUT (see header \
           of test_golden.ml)"
          path;
      let expected = read_file path in
      if not (String.equal expected actual) then begin
        match first_diff expected actual with
        | Some (line, e, a) ->
            Alcotest.failf
              "%s: trace diverges at line %d@.  golden: %s@.  actual: %s@.\
               (%d golden bytes vs %d actual)"
              c.name line e a (String.length expected) (String.length actual)
        | None ->
            Alcotest.failf "%s: traces differ (%d vs %d bytes)" c.name
              (String.length expected) (String.length actual)
      end

(* Committed corpus files must round-trip through the event codecs line
   by line — to_json (of_json_line l) = l — independently of what the
   simulator currently produces.  This is what lets an offline consumer
   trust the artifact format. *)
let codec_validation c () =
  let path = golden_path c.name in
  if not (Sys.file_exists path) then
    Alcotest.failf "missing golden trace %s" path;
  let lines = String.split_on_char '\n' (read_file path) in
  let count = ref 0 in
  List.iteri
    (fun i line ->
      if String.length line > 0 then begin
        incr count;
        match Obs.Event.of_json_line line with
        | Error e -> Alcotest.failf "%s line %d: %s" c.name (i + 1) e
        | Ok ev ->
            let rt = Obs.Event.to_json ev in
            if not (String.equal rt line) then
              Alcotest.failf
                "%s line %d: codec not an exact inverse@.  file:      %s@.  \
                 roundtrip: %s"
                c.name (i + 1) line rt
      end)
    lines;
  if !count = 0 then Alcotest.failf "%s: empty golden trace" c.name

let suite =
  List.map
    (fun c ->
      Alcotest.test_case ("conformance: " ^ c.name) `Quick (conformance c))
    configs
  @ List.map
      (fun c ->
        Alcotest.test_case ("codec roundtrip: " ^ c.name) `Quick
          (codec_validation c))
      configs
