let to_string dual =
  let buf = Buffer.create 1024 in
  let n = Dual.n dual in
  Buffer.add_string buf "dualgraph v1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" n);
  Buffer.add_string buf (Printf.sprintf "r %f\n" (Dual.r dual));
  (match Dual.embedding dual with
  | Some emb ->
      for v = 0 to n - 1 do
        let p = Embedding.point emb v in
        Buffer.add_string buf
          (Printf.sprintf "point %d %f %f\n" v p.Embedding.x p.Embedding.y)
      done
  | None -> ());
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "edge g %d %d\n" u v))
    (Graph.edges (Dual.g dual));
  Array.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "edge u %d %d\n" u v))
    (Dual.unreliable_edges dual);
  Buffer.contents buf

type parse_state = {
  mutable n : int option;
  mutable r : float;
  mutable points : (int * float * float) list;
  mutable reliable : (int * int) list;
  mutable unreliable : (int * int) list;
  mutable header_seen : bool;
}

let fail_line line_number message =
  invalid_arg (Printf.sprintf "Dualgraph.Io: line %d: %s" line_number message)

let of_string text =
  let state =
    { n = None; r = 1.0; points = []; reliable = []; unreliable = [];
      header_seen = false }
  in
  let handle_line line_number line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let tokens =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun t -> t <> "")
    in
    let int_of token =
      match int_of_string_opt token with
      | Some v -> v
      | None -> fail_line line_number (Printf.sprintf "expected integer, got %S" token)
    in
    let float_of token =
      match float_of_string_opt token with
      | Some v -> v
      | None -> fail_line line_number (Printf.sprintf "expected float, got %S" token)
    in
    match tokens with
    | [] -> ()
    | [ "dualgraph"; "v1" ] -> state.header_seen <- true
    | [ "n"; count ] -> state.n <- Some (int_of count)
    | [ "r"; radius ] -> state.r <- float_of radius
    | [ "point"; v; x; y ] ->
        state.points <- (int_of v, float_of x, float_of y) :: state.points
    | [ "edge"; "g"; u; v ] -> state.reliable <- (int_of u, int_of v) :: state.reliable
    | [ "edge"; "u"; u; v ] ->
        state.unreliable <- (int_of u, int_of v) :: state.unreliable
    | _ -> fail_line line_number (Printf.sprintf "unrecognized record %S" (String.trim line))
  in
  List.iteri
    (fun i line -> handle_line (i + 1) line)
    (String.split_on_char '\n' text);
  if not state.header_seen then invalid_arg "Dualgraph.Io: missing 'dualgraph v1' header";
  let n =
    match state.n with
    | Some n -> n
    | None -> invalid_arg "Dualgraph.Io: missing 'n' record"
  in
  let embedding =
    match state.points with
    | [] -> None
    | points ->
        if List.length points <> n then
          invalid_arg "Dualgraph.Io: point records must cover every vertex";
        let coords = Array.make n { Embedding.x = 0.0; y = 0.0 } in
        let seen = Array.make n false in
        List.iter
          (fun (v, x, y) ->
            if v < 0 || v >= n then invalid_arg "Dualgraph.Io: point vertex out of range";
            if seen.(v) then invalid_arg "Dualgraph.Io: duplicate point record";
            seen.(v) <- true;
            coords.(v) <- { Embedding.x; y })
          points;
        Some (Embedding.create coords)
  in
  let g = Graph.create ~n ~edges:state.reliable in
  let g' = Graph.create ~n ~edges:(state.reliable @ state.unreliable) in
  Dual.create ?embedding ~r:state.r ~g ~g' ()

let save dual ~filename =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string dual))

let load filename =
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
