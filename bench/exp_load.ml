(* Experiment E22: the serving engine under rate x burstiness x policy.

   The open-loop sweep: three arrival shapes (memoryless Poisson, on/off
   bursts at the same time-averaged rate, hotspot rate skew) crossed
   with the three backpressure policies, at offered loads from half the
   flooding capacity to 4x past it.  Runs on the synthetic Sim channel
   (ring degree 8, relay 1 round, ack 2 rounds — capacity ~0.5
   completable messages/round), which isolates the queueing and
   shedding dynamics from MAC latency; E15 covers the full MAC stack.

   Expected shape: below capacity every policy completes nearly
   everything and the policies are indistinguishable; past capacity
   goodput plateaus at the channel's completable rate while the
   policies choose WHO loses — drop-tail sheds relays mid-flood
   (coverage failures, expiries), source-throttle rejects at admission
   (fewer pool slots wasted on doomed messages, so the plateau holds
   higher), and drop-newest favors older messages (lower delivery p99
   among completions, fewer but older survivors).  Bursty arrivals at
   the same average rate degrade earlier (queues overflow during
   bursts); hotspot skew bottlenecks the hot nodes' single MAC
   endpoint. *)

open Core
open Exp_common
module Serve = Macapps.Serve
module Workload = Macapps.Workload
module Table = Stats.Table

let rates = [ 0.25; 0.5; 1.0; 2.0 ]

let policies = [ Serve.Drop_tail; Serve.Drop_newest; Serve.Source_throttle ]

let process_of ~rate = function
  | "poisson" -> Workload.Poisson { rate }
  | "bursty" -> Workload.Bursty { rate; on_mean = 50.0; off_mean = 150.0 }
  | "hotspot" -> Workload.Hotspot { rate; hot_fraction = 0.1; hot_share = 0.7 }
  | s -> invalid_arg ("E22: unknown process " ^ s)

let cell ~rate ~policy ~shape ~trials ~rounds ~salt =
  let samples =
    run_trials ~salt ~n:trials (fun ~trial:_ ~seed ->
        let workload =
          Workload.create ~process:(process_of ~rate shape) ~n:64 ~seed ()
        in
        let config =
          Serve.config ~queue_cap:16 ~max_inflight:4096 ~ttl:500 ~policy
            ~ack_deadline:12 ()
        in
        let sim =
          Serve.Sim.create ~config ~n:64 ~degree:8 ~relay_delay:1 ~ack_delay:2
            ()
        in
        let r = Serve.Sim.run sim ~workload ~rounds () in
        if r.Serve.audit <> [] then
          failwith
            ("E22: conservation audit failed: "
            ^ String.concat "; " r.Serve.audit);
        ( r.Serve.goodput,
          float_of_int r.Serve.completed /. float_of_int (max 1 r.Serve.admitted),
          float_of_int r.Serve.rejected /. float_of_int (max 1 r.Serve.arrivals),
          r.Serve.delivery_p99,
          float_of_int r.Serve.max_queue_depth ))
  in
  let dim f = Stats.Summary.mean (List.map f samples) in
  let goodput = dim (fun (g, _, _, _, _) -> g) in
  let served = dim (fun (_, s, _, _, _) -> s) in
  let rejected = dim (fun (_, _, r, _, _) -> r) in
  let p99s =
    List.filter_map
      (fun (_, _, _, p, _) -> if Float.is_nan p then None else Some p)
      samples
  in
  let p99 =
    if p99s = [] then Float.nan else Stats.Summary.mean p99s
  in
  let depth = dim (fun (_, _, _, _, d) -> d) in
  (goodput, served, rejected, p99, depth)

let run () =
  section "E22: serving under rate x burstiness x backpressure policy";
  note
    "Sim channel n=64 (ring degree 8, relay 1, ack 2; flooding capacity\n\
     ~0.5 msg/round).  Offered rates sweep 0.5x to 4x capacity; every\n\
     cell audits conservation exactly.";
  let trials = trials_scaled 4 in
  let rounds = if !quick then 8_000 else 40_000 in
  List.iter
    (fun shape ->
      let table =
        Table.create
          ~title:(Printf.sprintf "E22: %s arrivals (n=64, %d rounds)" shape rounds)
          ~columns:
            [ "rate"; "policy"; "goodput/round"; "completed/admitted";
              "rejected frac"; "delivery p99"; "max depth" ]
      in
      List.iteri
        (fun ri rate ->
          List.iteri
            (fun pi policy ->
              let salt =
                 (match shape with
                  | "poisson" -> 2200
                  | "bursty" -> 2300
                  | _ -> 2400)
                + (ri * 10) + pi
              in
              let goodput, served, rejected, p99, depth =
                cell ~rate ~policy ~shape ~trials ~rounds ~salt
              in
              Table.add_row table
                [
                  Table.cell_float ~decimals:2 rate;
                  Serve.policy_to_string policy;
                  Table.cell_float ~decimals:4 goodput;
                  Table.cell_float ~decimals:4 served;
                  Table.cell_float ~decimals:4 rejected;
                  (if Float.is_nan p99 then "-"
                   else Table.cell_float ~decimals:0 p99);
                  Table.cell_float ~decimals:0 depth;
                ])
            policies)
        rates;
      Table.print table)
    [ "poisson"; "bursty"; "hotspot" ];
  note
    "Expected: near-identical policies below capacity; past it, goodput\n\
     plateaus at the channel cap and the policies pick the loss site —\n\
     source-throttle rejects at admission (nonzero rejected frac, higher\n\
     completed/admitted), drop-tail/drop-newest shed relays instead.\n\
     Bursty arrivals lose more at equal average rate; hotspot load\n\
     queues at the hot nodes' endpoints.\n"
