let node ~n ~id ~message =
  if n < 1 || id < 0 || id >= n then invalid_arg "Round_robin.node: bad id/n";
  (* Slotted never consumes randomness, so any generator will do. *)
  Strategy.sender (Strategy.Slotted { slots = n }) ~message
    ~rng:(Prng.Rng.of_int 0) ~node:id
