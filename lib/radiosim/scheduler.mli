(** Oblivious link schedulers (paper §2).

    A link scheduler resolves, for every round [t], which edges of
    [E' \ E] join the communication topology.  The paper's scheduler is a
    sequence [G₁, G₂, …] fixed before the execution starts — i.e.
    {e oblivious}: it may know the algorithm and the topology, but not the
    coin flips of the run.  We enforce obliviousness structurally: a
    scheduler is a pure function of [(round, edge index)] plus state fixed
    at construction time (its own seed, the decay schedule it is
    attacking, …), and the engine never feeds execution information back
    into it.

    Edge indices refer to {!Dualgraph.Dual.unreliable_edges}. *)

type t

val name : t -> string

val active : t -> round:int -> edge:int -> bool
(** Whether unreliable edge [edge] is present in round [round]. *)

val fill_active : t -> round:int -> Bytes.t -> unit
(** [fill_active t ~round buf] materializes the round's whole activation
    set in one pass: byte [e] of [buf] is set to ['\001'] iff edge [e]
    is present in [round], for every [e < Bytes.length buf].  Callers
    size [buf] to {!Dualgraph.Dual.unreliable_count} and reuse it across
    rounds.  Agrees with {!active} edge-by-edge (a property the test
    suite checks), but resolves each edge exactly once per round —
    constant and periodic schedulers fill with a single [Bytes.fill],
    and hash-based schedulers hash each edge once instead of once per
    incident listener. *)

val fill_active_sparse : t -> round:int -> m:int -> int array -> int
(** [fill_active_sparse t ~round ~m buf] writes the indices of the edges
    active in [round] (among edges [0 .. m-1]) into the prefix of [buf]
    in strictly increasing order, each exactly once, and returns their
    count.  Callers size [buf] to at least [m]
    ({!Dualgraph.Dual.unreliable_count}) and reuse it across rounds.
    Agrees with {!active} edge-by-edge and with {!fill_active} (checked
    by the test suite), but schedulers whose expected active set is far
    smaller than [m] — constant/periodic schedulers and
    {!bernoulli_sparse} — emit the set directly in time proportional to
    its size, instead of resolving all [m] edges.  Raises
    [Invalid_argument] if [m < 0] or [buf] is shorter than [m].

    Domain safety: both engines resolve the activation set exactly once
    per round from a single domain ({!Tiled.run} does so on its
    coordinator, never from tile workers), so a scheduler needs no
    internal synchronization — but see {!bernoulli_sparse} for why one
    [t] value must still not be shared across concurrently running
    engine instances. *)

val resolves_sparsely : t -> bool
(** Whether {!fill_active_sparse} does work proportional to the emitted
    set ([true]) rather than resolving every edge per round ([false] —
    the derived fallback used by {!make} and hash-per-edge schedulers
    like {!bernoulli}).  Feeds the [scheduler.edges_resolved]
    observability counter; see [docs/OBSERVABILITY.md]. *)

val make : name:string -> (round:int -> edge:int -> bool) -> t
(** Build a custom scheduler.  The function must be pure; the batch
    {!fill_active} and {!fill_active_sparse} forms are derived from
    it. *)

val reliable_only : t
(** Never includes an unreliable edge: the topology is always G.  Under
    this scheduler the model degenerates to the classical radio network
    model. *)

val all_edges : t
(** Always includes every unreliable edge: the topology is always G'. *)

val bernoulli : seed:int -> p:float -> t
(** Each (edge, round) pair is included independently with probability
    [p], via a hash of the pair — oblivious by construction.  Resolving
    a round costs one hash per edge; for sweeps where [p·m] is small,
    {!bernoulli_sparse} has the same distribution at cost proportional
    to the active set. *)

val bernoulli_sparse : seed:int -> p:float -> t
(** Distributionally equivalent to {!bernoulli} — each (edge, round)
    pair active independently with probability [p], per-round active
    count Binomial(m, p) — but {e not} bit-identical to it: the active
    set is drawn by geometric skip sampling from a per-round SplitMix
    stream seeded by [(seed, round)], so {!fill_active_sparse} costs
    O(p·m + 1) per round instead of one hash per edge.  Still oblivious:
    the round's set is a pure function of the round number.  The
    two-sample tests in the suite check both the per-edge marginal and
    the per-round count distribution against {!bernoulli}.  Membership
    queries ({!active}) replay the round's walk through a one-round
    memo, which makes a single [t] value unsafe to share across domains
    (create one per trial, as the experiment harness already does). *)

val flicker : period:int -> duty:int -> t
(** Deterministic periodic scheduler: edges are present in rounds
    [t mod period < duty] and absent otherwise. *)

val edge_phase_flicker : period:int -> t
(** Each edge [e] is present only in rounds [t ≡ e mod period] — different
    edges alternate, so local contention keeps shifting shape. *)

val thwart : hot:(int -> bool) -> t
(** The Discussion-§1 adversary, parameterized by a predicate telling it
    in which rounds the attacked fixed-probability schedule transmits with
    {e high} probability.  In hot rounds it includes every unreliable edge
    (maximizing contention, forcing collisions); in cold rounds it removes
    them all (so the few remaining reliable transmitters almost never
    fire).  [hot] must be a pure function of the round number: the
    scheduler remains oblivious, since a fixed transmit-probability
    schedule is known before the execution begins. *)

val pp : Format.formatter -> t -> unit
