type t = {
  name : string;
  active : round:int -> edge:int -> bool;
}

let name t = t.name
let active t = t.active
let make ~name active = { name; active }

let reliable_only =
  { name = "reliable-only"; active = (fun ~round:_ ~edge:_ -> false) }

let all_edges = { name = "all-edges"; active = (fun ~round:_ ~edge:_ -> true) }

let bernoulli ~seed ~p =
  let active ~round ~edge =
    let h =
      Prng.Splitmix.mix
        (Int64.add
           (Int64.mul (Int64.of_int round) 0x100000001B3L)
           (Int64.of_int ((edge * 2654435761) + seed)))
    in
    (* Scale 53 hash bits into [0, 1) and compare against [p], exactly
       mirroring Rng.float / Rng.bernoulli. *)
    let v = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0 in
    v < p
  in
  { name = Printf.sprintf "bernoulli(p=%.2f)" p; active }

let flicker ~period ~duty =
  if period <= 0 || duty < 0 || duty > period then
    invalid_arg "Scheduler.flicker: need 0 <= duty <= period, period > 0";
  {
    name = Printf.sprintf "flicker(%d/%d)" duty period;
    active = (fun ~round ~edge:_ -> round mod period < duty);
  }

let edge_phase_flicker ~period =
  if period <= 0 then invalid_arg "Scheduler.edge_phase_flicker: period > 0";
  {
    name = Printf.sprintf "edge-phase(%d)" period;
    active = (fun ~round ~edge -> round mod period = edge mod period);
  }

let thwart ~hot =
  { name = "thwart"; active = (fun ~round ~edge:_ -> hot round) }

let pp ppf t = Format.pp_print_string ppf t.name
