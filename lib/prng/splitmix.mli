(** SplitMix64: a fast, splittable, deterministic pseudo-random generator.

    This is the generator of Steele, Lea and Flood ("Fast splittable
    pseudorandom number generators", OOPSLA 2014), implemented from scratch.
    It is the randomness substrate for every simulation in this repository:
    both the algorithms' coin flips and the generation of topologies and
    link schedules.  Determinism matters here — an execution is a pure
    function of (configuration, seed), which is exactly the paper's notion
    of fixing a configuration and then considering the induced execution
    tree.

    The state is a single [int64].  [next] advances the state and produces
    64 pseudo-random bits; [split] derives an independent stream, which we
    use to give every node, the scheduler and the environment their own
    generators without cross-contamination. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val next : t -> int64
(** [next t] advances [t] and returns 64 fresh pseudo-random bits. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose output
    stream is (statistically) independent of the remainder of [t]'s. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the
    same stream.  Used by tests to check determinism. *)

val mix : int64 -> int64
(** [mix z] is the 64-bit finalizer (mix function) used internally;
    exposed for hashing embedding coordinates into scheduler decisions. *)
