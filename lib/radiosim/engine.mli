(** The synchronous execution engine for the dual graph model (paper §2).

    Round [t] (0-indexed) proceeds exactly as the model prescribes:

    + every node receives its environment inputs,
    + every node commits to [Transmit m] or [Listen],
    + the communication topology for the round is formed: all of [E] plus
      the subset of [E' \ E] the (oblivious) link scheduler activates,
    + node [u] receives [m] from [v] iff [u] listens, [v] transmits [m],
      and [v] is the {e only} transmitter among [u]'s neighbors in the
      round's topology; otherwise a listener receives ⊥ ([None] — no
      collision detection),
    + every node emits outputs, which the environment consumes.

    The combination (dual graph, nodes, scheduler, environment) is the
    paper's {e configuration}; given the per-node RNGs it fully determines
    the execution.

    Reception is resolved {e transmitter-centrically} over a {e sparse}
    activation set: the round's active unreliable-edge indices are
    materialized once into a reusable index buffer
    ({!Scheduler.fill_active_sparse}), the round's unreliable adjacency
    is built {e for those edges only}, and then only the round's
    transmitters push (first-message, collision) state along their
    reliable CSR slice plus that per-round adjacency into per-listener
    scratch.  A round therefore costs O(T·Δ + active + n) for T
    transmitters and [active] scheduled edges — the regime the
    decay-ladder algorithms live in, where T is a small constant and,
    under sparse link schedulers ({!Scheduler.bernoulli_sparse}),
    [active ≈ p·m ≪ m] — instead of the listener-centric O(n·Δ') of
    {!run_reference}.

    Step 4's collision rule is the {e reception model} and is pluggable
    ({!Reception.t}): the default {!Reception.Dual_graph} is the rule
    above, kept branch-for-branch the pre-refactor engine (bit-identical
    traces, enforced by the property suite and the golden corpus);
    {!Reception.Sinr} replaces it with physical interference computed
    over the topology's Euclidean embedding — the scheduler is then not
    consulted and steps 1–3 and 5 run unchanged.  See [docs/RECEPTION.md]
    for the contract both models satisfy. *)

type incidence
(** Per-node incidence of a dual graph's unreliable edges in flat CSR
    form — the data the engine needs beyond the reliable adjacency.  The
    dual graph precomputes it at creation, so obtaining it is O(1) and
    allocation-free. *)

val unreliable_incidence : Dualgraph.Dual.t -> incidence
(** The unreliable-edge incidence of a topology, shared with the dual
    graph's internal representation (O(1), no per-call allocation). *)

val run :
  ?observer:(('msg, 'input, 'output) Trace.round_record -> unit) ->
  ?stop:(('msg, 'input, 'output) Trace.round_record -> bool) ->
  ?incidence:incidence ->
  ?sink:Obs.Sink.t ->
  ?metrics:Obs.Metrics.t ->
  ?faults:Faults.Plan.t ->
  ?revive:(node:int -> round:int -> ('msg, 'input, 'output) Process.node) ->
  ?reception:Reception.t ->
  dual:Dualgraph.Dual.t ->
  scheduler:Scheduler.t ->
  nodes:('msg, 'input, 'output) Process.node array ->
  env:('input, 'output) Env.t ->
  rounds:int ->
  unit ->
  int
(** Executes up to [rounds] rounds and returns the number actually
    executed.  [observer] sees each round's record as it completes;
    [stop], checked after the observer, ends the run early when it
    returns [true].  [incidence] must come from {!unreliable_incidence}
    on the same [dual] (it is fetched from the dual when absent).  Raises
    [Invalid_argument] if the node array size differs from the graph's
    vertex count.

    [sink], when given, receives the structural event stream of the run
    (per round: [Round_start], one [Transmit] per transmitter, one
    [Deliver] or [Collision] per affected listener, then — after the
    observer, so a translating observer's protocol events nest inside
    the round — [Round_end] with the round's aggregate counts).  When
    absent, no event code runs at all: the execution path, allocation
    behavior and produced traces are exactly those of the
    uninstrumented engine.

    [metrics], when given, registers two counters on the registry and
    advances them once per round in which the activation set is resolved
    (rounds with at least one transmitter and at least one unreliable
    edge): [engine.active_edges] accumulates the size of each round's
    active set, and [scheduler.edges_resolved] the number of per-edge
    resolutions the scheduler performed to produce it — equal to the
    active count for natively sparse schedulers
    ({!Scheduler.resolves_sparsely}) and to the unreliable edge count
    for dense ones.  Their ratio is the measured win of the sparse
    path.  As with [sink], absence means the counting code never
    runs.

    [faults], when given, attaches a {!Faults.Plan} (whose node count
    must match the graph's).  Transitions take effect at the top of
    their round: a {e dead} node (crash round reached, restart round
    not) is invisible to its environment ([inputs] not polled, outputs
    discarded), its process is not stepped, it never transmits and it
    receives nothing (its trace record shows [Listen] / no delivery /
    no outputs); a node inside a {e jam window} still runs and may
    decide to transmit, but the transmission is suppressed before
    reception is resolved — no listener hears it and it causes no
    collisions.  A {e restart} clears deadness and swaps in the process
    [revive ~node ~round] returns (fresh algorithm state); without
    [revive] the frozen pre-crash process resumes.  The caller's node
    array is never mutated (restarts act on an internal copy).  With a
    sink, [Crash]/[Restart] events are emitted inside the round's
    bracket before any [Transmit]; with metrics, [faults.crashes],
    [faults.restarts] and [faults.jams] counters advance.  With an
    {e empty} plan — or none — the run is bit-identical to the
    uninstrumented engine.

    [reception] selects the reception model (default
    {!Reception.dual_graph}, the semantics documented above — the run is
    then bit-identical to the engine before models were pluggable).
    Under {!Reception.Sinr} the round's listeners instead decode by
    signal-to-interference ratio over the topology's embedding: the link
    scheduler is not consulted ([scheduler] may still drive other runs;
    here its edges simply never fire), [engine.active_edges] and
    [scheduler.edges_resolved] do not advance, a failed decode still
    emits [Collision], and a jam window adds the model's [jam] noise to
    the victim's receiver instead of suppressing its transmission
    ([faults.jams] then counts jammed {e listeners} per contended
    round).  Raises [Invalid_argument] if the model requires an
    embedding the topology lacks. *)

val run_adaptive :
  ?observer:(('msg, 'input, 'output) Trace.round_record -> unit) ->
  ?stop:(('msg, 'input, 'output) Trace.round_record -> bool) ->
  ?incidence:incidence ->
  ?sink:Obs.Sink.t ->
  ?metrics:Obs.Metrics.t ->
  ?faults:Faults.Plan.t ->
  ?revive:(node:int -> round:int -> ('msg, 'input, 'output) Process.node) ->
  ?reception:Reception.t ->
  dual:Dualgraph.Dual.t ->
  adversary:Adaptive.t ->
  nodes:('msg, 'input, 'output) Process.node array ->
  env:('input, 'output) Env.t ->
  rounds:int ->
  unit ->
  int
(** Like {!run}, but the unreliable-edge choice is made by an
    {!Adaptive} adversary that sees the round's transmission vector —
    the model variant under which the paper's predecessor work proves
    efficient progress impossible.  The adversary is consulted once per
    (round, edge) while the activation index list is filled (an
    adversary is inherently dense: it must see every edge to rule on
    it, so [scheduler.edges_resolved] advances by the full unreliable
    edge count per resolved round).  [sink], [metrics], [faults] and
    [revive] behave as in {!run}; note the adversary sees the
    {e on-air} transmission vector — dead and jammed nodes read as
    non-transmitters.  Kept separate from {!run} so that a type of
    scheduler can never silently escalate into the stronger
    adversary.  [reception] must be {!Reception.Dual_graph} (the
    default): the adversary's whole power is ruling on unreliable
    edges, which SINR ignores — passing an SINR model raises
    [Invalid_argument] rather than silently dropping the adversary. *)

val run_reference :
  ?observer:(('msg, 'input, 'output) Trace.round_record -> unit) ->
  ?stop:(('msg, 'input, 'output) Trace.round_record -> bool) ->
  dual:Dualgraph.Dual.t ->
  scheduler:Scheduler.t ->
  nodes:('msg, 'input, 'output) Process.node array ->
  env:('input, 'output) Env.t ->
  rounds:int ->
  unit ->
  int
(** The retained listener-centric resolver: every listener scans its full
    topology neighborhood, querying the scheduler per incident edge —
    O(n·Δ') per round.  Same observable semantics as {!run} (the
    property suite asserts bit-identical traces on random
    configurations); kept as the executable reference for tests and as
    the micro-benchmark baseline.  Deliberately takes no event sink:
    the reference semantics stay frozen.  Not for production use. *)

val transmitter_counts :
  ?incidence:incidence ->
  dual:Dualgraph.Dual.t ->
  scheduler:Scheduler.t ->
  round:int ->
  transmitting:bool array ->
  unit ->
  int array
(** Diagnostic: for the given transmitting set, the number of
    topology-neighbors of each node that transmit in [round] (the
    contention each listener faces).  Used by tests to cross-check the
    engine's collision rule.  Routes through the same activation-buffer
    + transmitter-centric path as {!run}.  [incidence] must come from
    {!unreliable_incidence} on the same [dual]; when absent it is
    fetched from the dual (O(1)). *)
