(* Experiment E25: the back-off strategy tournament under the full
   adversary zoo.

   Every cell is (topology × adversary × fault plan × arm): one
   broadcast relayed under a contention strategy — or served by LBAlg —
   with the cell semantics fixed in Baseline.Tournament (experiment
   E20's eligibility and censoring rules).  The matrix sweeps

     topology    clique(12), random geometric field (n=36, E20's), line(16)
     adversary   Bernoulli(1/2), decay-thwarting oblivious, adaptive jam
     fault plan  none, permanent crashes, jam windows, crash/restart churn
     arm         fixed, decay, decay-restart, sawtooth, backoff,
                 slotted, lbalg

   and reports one ranked table per metric (coverage, first-reception
   latency, transmission cost): arms are ranked inside every arena by
   their per-trial means, and an arm's overall score is the bootstrap CI
   of its rank across arenas — scale-free, so clique latencies and line
   latencies aggregate without unit games.  Trials are paired: inside an
   arena every arm sees the same per-trial seeds, link schedules and
   fault plans, and each arena's salt is a pure function of its axis
   names, so any sub-matrix (quick mode, the CI smoke, the CLI) runs on
   the same streams as the full sweep.

   The churn column doubles as the regression anchor for E20: on the
   pinned master seed the random-field Bernoulli churn cell must rank
   LBAlg's coverage strictly above fixed-budget Decay's, and Decay's
   churn coverage must fall below its fault-free coverage.  Violations
   raise — the CI quick-mode smoke hard-fails on an ordering
   inversion. *)

open Core
open Exp_common
module Plan = Faults.Plan
module T = Baseline.Tournament
module Strategy = Baseline.Strategy
module Rank = Stats.Rank
module Table = Stats.Table

let sender = 0

(* --- the matrix axes (fixed names: they key the per-arena salts) --- *)

let topo_names = [ "clique"; "rgg"; "line" ]
let adv_names = [ "bern"; "thwart"; "adaptive" ]
let fault_names = [ "none"; "crash"; "jam"; "churn" ]

let topology = function
  | "clique" -> Geo.clique 12
  (* E20's exact field, so the churn anchor cell is E20's setup verbatim. *)
  | "rgg" -> random_field ~seed:(master_seed + 20) ~n:36 ()
  | "line" -> Geo.line ~n:16 ()
  | t -> invalid_arg ("unknown topology " ^ t)

let adversary dual = function
  | "bern" -> T.Oblivious (fun ~seed -> Sch.bernoulli ~seed ~p:0.5)
  | "thwart" ->
      let levels = Strategy.levels_for ~delta':(Dual.delta' dual) in
      let hot_levels =
        max 1
          (Baseline.Decay.hot_levels_against ~levels
             ~contention:(Dual.delta' dual))
      in
      T.Oblivious
        (fun ~seed:_ ->
          Sch.thwart ~hot:(Baseline.Decay.hot_predicate ~levels ~hot_levels))
  | "adaptive" -> T.Adaptive_jam
  | a -> invalid_arg ("unknown adversary " ^ a)

(* Seed-derived jam plan: every non-sender node is a victim with
   probability 0.3, jammed for the middle half of the horizon.  Per-node
   streams (never a shared sequential draw) keep the plan independent of
   iteration order, like Plan.churn's. *)
let jam_plan ~n ~horizon ~seed =
  let from = horizon / 4 and until = max ((horizon / 4) + 1) (3 * horizon / 4) in
  let jams = ref [] in
  for v = 0 to n - 1 do
    if v <> sender then begin
      let rng =
        Prng.Rng.create
          (Prng.Splitmix.mix
             Int64.(
               add
                 (mul (of_int seed) 0x9E3779B97F4A7C15L)
                 (mul (of_int (v + 1)) 0xD6E8FEB86659FD93L)))
      in
      if Prng.Rng.bernoulli rng 0.3 then jams := (v, from, until) :: !jams
    end
  done;
  Plan.make ~n ~jams:!jams ()

let fault_plan (a : T.arena) = function
  | "none" -> None
  | "crash" ->
      (* Permanent crashes: the per-round hazard is sized so ~30% of the
         population is gone by the horizon (a dead node is ineligible,
         so the cell measures coverage of the remaining 70% as relays
         vanish mid-run). *)
      let rate = 1.0 -. (0.7 ** (1.0 /. float_of_int a.T.horizon)) in
      Some
        (fun ~seed ->
          Plan.churn ~seed ~n:(Dual.n a.T.dual) ~rounds:a.T.horizon ~rate
            ~protect:[ sender ] ())
  | "jam" ->
      Some (fun ~seed -> jam_plan ~n:(Dual.n a.T.dual) ~horizon:a.T.horizon ~seed)
  | "churn" ->
      Some
        (fun ~seed ->
          Plan.churn ~seed ~n:(Dual.n a.T.dual) ~rounds:a.T.horizon ~rate:0.05
            ~downtime:a.T.budget ~protect:[ sender ] ())
  | f -> invalid_arg ("unknown fault plan " ^ f)

(* The arena salt is a pure function of the axis names so every
   sub-matrix runs on the full sweep's streams. *)
let cell_salt ~topo ~adv ~fault =
  let idx names x =
    let rec go i = function
      | [] -> invalid_arg ("unknown axis value " ^ x)
      | y :: _ when y = x -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 names
  in
  2500 + (idx topo_names topo * 16) + (idx adv_names adv * 4)
  + idx fault_names fault

type cell = {
  topo : string;
  adv : string;
  fault : string;
  arena : T.arena;
  (* per arm label: per-trial samples, eligible trials only *)
  mutable results : (string * T.sample list) list;
}

let make_cell ~topo ~adv ~fault =
  let dual = topology topo in
  let base = T.arena ~sender ~adversary:(adversary dual adv) ~dual () in
  let arena = { base with T.plan_of = fault_plan base fault } in
  { topo; adv; fault; arena; results = [] }

let run_cell ~trials cell =
  let arms = T.arms ~dual:cell.arena.T.dual in
  let per_trial =
    run_trials
      ~salt:(cell_salt ~topo:cell.topo ~adv:cell.adv ~fault:cell.fault)
      ~n:trials
      (fun ~trial:_ ~seed ->
        List.map (fun arm -> T.trial cell.arena arm ~seed) arms)
  in
  cell.results <-
    List.mapi
      (fun j arm ->
        ( T.arm_label arm,
          List.filter_map (fun row -> List.nth row j) per_trial ))
      arms

(* --- aggregation: rank arms inside each arena, bootstrap across --- *)

type metric = { label : string; descending : bool; get : T.sample -> float }

let metrics =
  [
    { label = "coverage"; descending = true; get = (fun s -> s.T.coverage) };
    { label = "latency"; descending = false; get = (fun s -> s.T.latency) };
    { label = "tx cost"; descending = false; get = (fun s -> s.T.cost) };
  ]

let metric_seed m =
  master_seed
  + (match m.label with "coverage" -> 251 | "latency" -> 257 | _ -> 263)

(* Competition ranks of the cell's arms under one metric; arms with no
   eligible trial are absent. *)
let cell_ranks m cell =
  let cells =
    List.filter_map
      (fun (label, samples) ->
        match samples with
        | [] -> None
        | _ -> Some (label, Array.of_list (List.map m.get samples)))
      cell.results
  in
  match cells with
  | [] -> []
  | _ ->
      List.map
        (fun (r : Rank.row) -> (r.Rank.label, float_of_int r.Rank.rank))
        (Rank.table ~descending:m.descending ~tie_eps:1e-9
           ~seed:(metric_seed m) cells)

let mean_samples label cell m =
  match List.assoc_opt label cell.results with
  | None | Some [] -> None
  | Some samples ->
      Some
        (Stats.Summary.mean (List.map m.get samples))

let fmt_ci (ci : Rank.ci) =
  Printf.sprintf "%.2f [%.2f, %.2f]" ci.Rank.mean ci.Rank.lower ci.Rank.upper

let ranked_table m cells =
  (* label -> (fault name -> rank list), insertion-ordered by arm *)
  let by_arm : (string * (string * float) list ref) list ref = ref [] in
  let note_rank label fault rank =
    let bucket =
      match List.assoc_opt label !by_arm with
      | Some b -> b
      | None ->
          let b = ref [] in
          by_arm := !by_arm @ [ (label, b) ];
          b
    in
    bucket := (fault, rank) :: !bucket
  in
  List.iter
    (fun cell ->
      List.iter (fun (label, rank) -> note_rank label cell.fault rank)
        (cell_ranks m cell))
    cells;
  let overall =
    List.map
      (fun (label, bucket) ->
        (label, Array.of_list (List.map snd !bucket)))
      !by_arm
  in
  let rows =
    Rank.table ~descending:false ~tie_eps:0.05 ~seed:(metric_seed m) overall
  in
  let faults_present =
    List.filter (fun f -> List.exists (fun c -> c.fault = f) cells) fault_names
  in
  let table =
    Table.create
      ~title:(Printf.sprintf "E25: arms ranked by %s (rank 1 is best)" m.label)
      ~columns:
        ([ "rank"; "arm"; "arenas"; "mean rank [95% CI]" ]
        @ List.map (fun f -> f ^ " rank") faults_present)
  in
  List.iter
    (fun (r : Rank.row) ->
      let bucket = !(List.assoc r.Rank.label !by_arm) in
      let fault_cells =
        List.map
          (fun f ->
            match
              List.filter_map
                (fun (fault, rank) -> if fault = f then Some rank else None)
                bucket
            with
            | [] -> "-"
            | ranks ->
                Table.cell_float ~decimals:2 (Stats.Summary.mean ranks))
          faults_present
      in
      Table.add_row table
        ([
           Table.cell_int r.Rank.rank;
           r.Rank.label;
           Table.cell_int r.Rank.count;
           fmt_ci r.Rank.ci;
         ]
        @ fault_cells))
    rows;
  Table.print table

(* --- the E20 regression anchor: the rgg × bern × churn cell --- *)

let anchor_detail cells =
  let anchor =
    List.find
      (fun c -> c.topo = "rgg" && c.adv = "bern" && c.fault = "churn")
      cells
  in
  let table =
    Table.create
      ~title:
        "E25 anchor cell (rgg × bern × churn 0.05): per-arm detail, \
         bootstrap 95% CIs over trials"
      ~columns:[ "arm"; "trials"; "coverage"; "latency"; "tx cost" ]
  in
  List.iter
    (fun (label, samples) ->
      match samples with
      | [] -> ()
      | _ ->
          let col m =
            fmt_ci
              (Rank.bootstrap ~seed:(metric_seed m)
                 (Array.of_list (List.map m.get samples)))
          in
          Table.add_row table
            ([ label; Table.cell_int (List.length samples) ]
            @ List.map col metrics))
    anchor.results;
  Table.print table;
  let coverage = List.nth metrics 0 in
  let mean_of label =
    match mean_samples label anchor coverage with
    | Some m -> m
    | None -> failwith ("E25 anchor cell: no samples for " ^ label)
  in
  let lbalg = mean_of "lbalg" and decay = mean_of "decay" in
  if not (lbalg > decay) then
    failwith
      (Printf.sprintf
         "E25 ordering inversion: churn-cell coverage lbalg %.4f <= decay \
          %.4f (expected LBAlg > Decay, the E20 collapse)"
         lbalg decay);
  let fault_free =
    List.find
      (fun c -> c.topo = "rgg" && c.adv = "bern" && c.fault = "none")
      cells
  in
  let decay_clean =
    match mean_samples "decay" fault_free coverage with
    | Some m -> m
    | None -> failwith "E25 fault-free cell: no decay samples"
  in
  if not (decay < decay_clean) then
    failwith
      (Printf.sprintf
         "E25 ordering inversion: decay coverage did not degrade under \
          churn (%.4f under churn vs %.4f fault-free)"
         decay decay_clean);
  note
    "Anchor checks passed: lbalg churn coverage %.3f > decay %.3f, and\n\
     decay degrades from its fault-free %.3f — E20's collapse, reproduced\n\
     as one matrix cell."
    lbalg decay decay_clean

let run () =
  section "E25: back-off strategy tournament under the adversary zoo";
  let matrix =
    if !quick then
      (* The smoke sub-matrix always contains the anchor cells. *)
      [ ("rgg", "bern"); ("rgg", "adaptive") ]
      |> List.concat_map (fun (topo, adv) ->
             List.filter_map
               (fun fault ->
                 if adv = "adaptive" && fault <> "none" then None
                 else Some (topo, adv, fault))
               [ "none"; "churn" ])
    else
      List.concat_map
        (fun topo ->
          List.concat_map
            (fun adv -> List.map (fun fault -> (topo, adv, fault)) fault_names)
            adv_names)
        topo_names
  in
  let cells =
    List.map (fun (topo, adv, fault) -> make_cell ~topo ~adv ~fault) matrix
  in
  let trials = trials_scaled 8 in
  (* The two anchor cells carry hard ordering assertions on the pinned
     master seed, so they always get a statistically safe trial floor —
     quick mode included (the CI smoke runs exactly this). *)
  let trials_for cell =
    if cell.topo = "rgg" && cell.adv = "bern"
       && (cell.fault = "churn" || cell.fault = "none")
    then max trials 16
    else trials
  in
  note
    "%d arenas × 7 arms × %d paired trials (anchor cells: %d); arms:\n\
     fixed, decay, decay-restart, sawtooth, backoff, slotted (all relays\n\
     inside a one-phase broadcast window, E20's discipline) and lbalg\n\
     (skipped under the adaptive-jam adversary, which the paper's model\n\
     excludes).  Ranks are per-arena; the CI is a seeded bootstrap over\n\
     arenas."
    (List.length cells) trials (max trials 16);
  List.iter (fun cell -> run_cell ~trials:(trials_for cell) cell) cells;
  List.iter (fun m -> ranked_table m cells) metrics;
  anchor_detail cells
