(* Tests for the Oracle seed source (E14's perfect-coordination ablation). *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Trace = Radiosim.Trace
module P = Radiosim.Process
module M = Localcast.Messages
module Params = Localcast.Params
module Lb_alg = Localcast.Lb_alg
module Lb_env = Localcast.Lb_env
module Lb_spec = Localcast.Lb_spec
module Rng = Prng.Rng

let run ~seed_source ~dual ~params ~phases ~rng_seed =
  let n = Dualgraph.Dual.n dual in
  let nodes = Lb_alg.network ~seed_source params ~rng:(Rng.of_int rng_seed) ~n in
  let envt = Lb_env.saturate ~n ~senders:[ 0 ] () in
  let trace, obs = Trace.recorder () in
  let monitor = Lb_spec.monitor ~dual ~params ~env:envt () in
  let observer record =
    obs record;
    Lb_spec.observe monitor record
  in
  let (_ : int) =
    Radiosim.Engine.run ~observer ~dual ~scheduler:Sch.reliable_only ~nodes
      ~env:(Lb_env.env envt)
      ~rounds:(phases * params.Params.phase_len)
      ()
  in
  (trace, Lb_spec.finish monitor)

let oracle () = Lb_alg.Oracle (Rng.of_int 777)

let test_oracle_no_seed_traffic () =
  (* Oracle mode never transmits during preambles — there is no agreement
     protocol to run. *)
  let dual = Geo.pair () in
  let params = Params.of_dual ~tack_phases:2 ~eps1:0.2 dual in
  let trace, _ =
    run ~seed_source:(oracle ()) ~dual ~params ~phases:3 ~rng_seed:1
  in
  Trace.iter
    (fun record ->
      Array.iter
        (fun action ->
          match action with
          | P.Transmit (M.Seed_msg _) -> Alcotest.fail "seed message under oracle"
          | P.Transmit (M.Data _) | P.Listen -> ())
        record.Trace.actions)
    trace

let test_oracle_commits_shared_seed () =
  (* All nodes commit the same seed (owner -1) at every refresh phase. *)
  let dual = Geo.clique 4 in
  let params = Params.of_dual ~tack_phases:2 ~eps1:0.2 dual in
  let trace, _ =
    run ~seed_source:(oracle ()) ~dual ~params ~phases:2 ~rng_seed:2
  in
  let commits v =
    List.filter_map
      (fun (_, out) -> match out with M.Committed a -> Some a | _ -> None)
      (Trace.outputs_of trace v)
  in
  let reference = commits 0 in
  checki "two phases committed" 2 (List.length reference);
  List.iter
    (fun ({ M.owner; _ } : M.seed_announcement) ->
      checki "oracle owner sentinel" (-1) owner)
    reference;
  for v = 1 to 3 do
    checkb
      (Printf.sprintf "node %d shares node 0's seeds" v)
      true
      (List.for_all2
         (fun (a : M.seed_announcement) (b : M.seed_announcement) ->
           Prng.Bitstring.equal a.M.seed b.M.seed)
         reference (commits v))
  done

let test_oracle_seeds_change_across_phases () =
  let dual = Geo.pair () in
  let params = Params.of_dual ~tack_phases:2 ~eps1:0.2 dual in
  let trace, _ =
    run ~seed_source:(oracle ()) ~dual ~params ~phases:2 ~rng_seed:3
  in
  let commits =
    List.filter_map
      (fun (_, out) -> match out with M.Committed a -> Some a.M.seed | _ -> None)
      (Trace.outputs_of trace 0)
  in
  match commits with
  | [ a; b ] -> checkb "fresh seed each phase" false (Prng.Bitstring.equal a b)
  | _ -> Alcotest.fail "expected two commits"

let test_oracle_service_still_correct () =
  let dual = Geo.clique 5 in
  let params = Params.of_dual ~tack_phases:2 ~eps1:0.2 dual in
  let _, report =
    run ~seed_source:(oracle ()) ~dual ~params ~phases:8 ~rng_seed:4
  in
  checki "validity" 0 report.Lb_spec.validity_violations;
  checki "late acks" 0 report.Lb_spec.late_ack_count;
  checkb "progress works" true (Lb_spec.progress_rate report >= 0.8);
  checkb "reliability works" true (Lb_spec.reliability_rate report >= 0.9)

let test_oracle_shared_rng_not_advanced () =
  (* Resolving the oracle must not advance the caller's generator: two
     networks built from the same generator behave identically. *)
  let shared = Rng.of_int 99 in
  let before = Rng.bits64 (Rng.copy shared) in
  let dual = Geo.pair () in
  let params = Params.of_dual ~tack_phases:1 ~eps1:0.2 dual in
  let (_ : (M.msg, M.lb_input, M.lb_output) P.node array) =
    Lb_alg.network ~seed_source:(Lb_alg.Oracle shared) params ~rng:(Rng.of_int 1)
      ~n:2
  in
  let after = Rng.bits64 (Rng.copy shared) in
  Alcotest.check Alcotest.int64 "generator untouched" before after

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("oracle: no seed traffic", test_oracle_no_seed_traffic);
      ("oracle: shared commits", test_oracle_commits_shared_seed);
      ("oracle: fresh seed per phase", test_oracle_seeds_change_across_phases);
      ("oracle: service still correct", test_oracle_service_still_correct);
      ("oracle: shared rng untouched", test_oracle_shared_rng_not_advanced);
    ]
