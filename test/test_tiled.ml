(* The tiled engine's conformance anchor: any tiling must be
   trace-identical — round records, event stream, metrics — to the
   sequential engine (and through it to the retained reference
   resolver), because parallel decomposition is an execution strategy,
   never a semantics change.  Plus units for the tile index, the worker
   pool's failure protocol and the domain budget. *)

open Core
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Tile = Dualgraph.Tile
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module Tiled = Radiosim.Tiled
module Trace = Radiosim.Trace
module P = Radiosim.Process
module M = Localcast.Messages
module Rng = Prng.Rng
module Plan = Faults.Plan
module Pool = Parallel.Pool
module Budget = Parallel.Budget

(* Fresh configuration per call: processes hold RNG state, so every run
   under comparison rebuilds its own nodes from the same seeds. *)
let make_config seed =
  let rng = Rng.of_int seed in
  let n = 2 + Rng.int rng 30 in
  let dual =
    Geo.random_field ~rng ~n ~width:3.5 ~height:3.5 ~r:1.5 ~gray_g':0.5 ()
  in
  let p = [| 0.05; 0.15; 0.35; 0.8 |].(seed mod 4) in
  let node_rng = Rng.of_int (seed + 1) in
  let nodes =
    Array.init n (fun src ->
        let node_rng = Rng.split node_rng in
        {
          P.decide =
            (fun ~round:_ _ ->
              if Rng.bernoulli node_rng p then
                P.Transmit (M.Data (M.payload ~src ~uid:0 ()))
              else P.Listen);
          absorb =
            (fun ~round delivered ->
              match delivered with
              | Some (M.Data payload) -> [ (round, payload.M.src) ]
              | Some (M.Seed_msg _) | None -> []);
        })
  in
  (dual, n, nodes)

let scheduler_of_seed = Test_engine_props.scheduler_of_seed

let faults_of_seed ~n ~rounds seed =
  match seed mod 4 with
  | 0 -> None
  | 1 ->
      Some
        (Plan.make ~n
           ~crashes:[ (seed mod n, 2); ((seed + 1) mod n, 5) ]
           ())
  | 2 ->
      let v = seed mod n in
      Some
        (Plan.make ~n ~crashes:[ (v, 1) ]
           ~restarts:[ (v, 4) ]
           ~jams:[ ((seed + 2) mod n, 0, 6); ((seed + 2) mod n, 8, 11) ]
           ())
  | _ -> Some (Plan.churn ~seed ~n ~rounds ~rate:0.04 ~downtime:5 ())

let revive_of ~seed ~node ~round =
  let mixed =
    Prng.Splitmix.mix
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.add
            (Int64.mul (Int64.of_int (node + 1)) 0xC2B2AE3D27D4EB4FL)
            (Int64.mul (Int64.of_int (round + 1)) 0x165667B19E3779F9L)))
  in
  let rng = Rng.create mixed in
  {
    P.decide =
      (fun ~round:_ _ ->
        if Rng.bernoulli rng 0.3 then
          P.Transmit (M.Data (M.payload ~src:node ~uid:1 ()))
        else P.Listen);
    absorb = (fun ~round:_ _ -> []);
  }

type execution = {
  executed : int;
  records : (int * string) list;  (** (round, digest of the record) *)
  events : string;  (** JSONL event stream *)
  counters : (string * int) list;
}

(* Record digests: the structural content of each round record,
   printed.  Comparing strings keeps failures readable. *)
let digest_record (r : (M.msg, 'i, int * int) Trace.round_record) =
  let b = Buffer.create 256 in
  Array.iteri
    (fun v a ->
      Buffer.add_string b
        (match a with
        | P.Transmit (M.Data p) -> Printf.sprintf "T%d:%d;" v p.M.src
        | P.Transmit _ -> Printf.sprintf "T%d:?;" v
        | P.Listen -> ""))
    r.Trace.actions;
  Buffer.add_char b '|';
  Array.iteri
    (fun v d ->
      match d with
      | Some (M.Data p) -> Buffer.add_string b (Printf.sprintf "D%d:%d;" v p.M.src)
      | Some _ -> Buffer.add_string b (Printf.sprintf "D%d:?;" v)
      | None -> ())
    r.Trace.delivered;
  Buffer.add_char b '|';
  Array.iteri
    (fun v outs ->
      List.iter
        (fun (round, src) ->
          Buffer.add_string b (Printf.sprintf "O%d:%d@%d;" v src round))
        outs)
    r.Trace.outputs;
  Buffer.contents b

let run_one ~engine ~tiles ~rounds seed =
  let dual, n, nodes = make_config seed in
  let scheduler = scheduler_of_seed seed in
  let faults = faults_of_seed ~n ~rounds seed in
  let sink = Obs.Sink.create ~capacity:(max 65536 (rounds * ((2 * n) + 8))) () in
  let metrics = Obs.Metrics.create () in
  let records = ref [] in
  let observer r = records := (r.Trace.round, digest_record r) :: !records in
  let env = Radiosim.Env.null ~name:"tiled-prop" () in
  let revive ~node ~round = revive_of ~seed ~node ~round in
  let executed =
    if engine then
      Engine.run ~observer ~sink ~metrics ?faults ~revive ~dual ~scheduler
        ~nodes ~env ~rounds ()
    else
      Tiled.run ~observer ~sink ~metrics ?faults ~revive ~tiles ~dual
        ~scheduler ~nodes ~env ~rounds ()
  in
  let buf = Buffer.create 4096 in
  Obs.Sink.iter sink (fun ev ->
      Buffer.add_string buf (Obs.Event.to_json ev);
      Buffer.add_char buf '\n');
  let snap = Obs.Metrics.snapshot ~label:"end" metrics in
  {
    executed;
    records = List.rev !records;
    events = Buffer.contents buf;
    counters = snap.Obs.Metrics.counters;
  }

let executions_equal a b =
  a.executed = b.executed && a.records = b.records
  && String.equal a.events b.events
  && a.counters = b.counters

(* Reference comparison — run_reference takes no faults/sink, so
   compare plain record streams on fault-free configs. *)
let run_plain ~how ~rounds seed =
  let dual, _, nodes = make_config seed in
  let scheduler = scheduler_of_seed seed in
  let trace, observer = Trace.recorder () in
  let env = Radiosim.Env.null ~name:"tiled-ref" () in
  let executed =
    match how with
    | `Reference ->
        Engine.run_reference ~observer ~dual ~scheduler ~nodes ~env ~rounds ()
    | `Tiled tiles ->
        Tiled.run ~observer ~tiles ~dual ~scheduler ~nodes ~env ~rounds ()
  in
  ( executed,
    List.init (Trace.length trace) (fun i ->
        digest_record (Trace.get trace i)) )

(* A stateful (impure) environment: inputs consume a per-node schedule
   and the poll order is recorded, so the test pins both the serial
   polling path and its engine-identical visit sequence. *)
let impure_env ~n log =
  let pending = Array.init n (fun v -> [ (0, v * 10); (3, v * 10 + 1) ]) in
  {
    Radiosim.Env.name = "impure";
    pure_inputs = false;
    inputs =
      (fun ~round ~node ->
        log := (round, node) :: !log;
        let take, keep =
          List.partition (fun (r, _) -> r <= round) pending.(node)
        in
        pending.(node) <- keep;
        List.map snd take);
    notify = (fun ~round:_ ~node:_ _ -> ());
  }

let test_tile_partition () =
  List.iter
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 1 + Rng.int rng 200 in
      let dual =
        Geo.random_field ~rng ~n ~width:6.0 ~height:6.0 ~r:1.5 ~gray_g':0.5 ()
      in
      List.iter
        (fun tiles ->
          let t = Tile.of_dual ~tiles dual in
          let k = Tile.tiles t in
          Alcotest.(check bool)
            "tile count clamped to [1, n]"
            true
            (k >= 1 && k <= max n 1 && k <= max tiles 1);
          let seen = Array.make n 0 in
          let lo = n / k and hi = (n / k) + 1 in
          for i = 0 to k - 1 do
            let mem = Tile.members t i in
            let len = Array.length mem in
            Alcotest.(check bool)
              "balanced within one" true
              (len = lo || len = hi);
            Array.iteri
              (fun j v ->
                if j > 0 then
                  Alcotest.(check bool) "members ascending" true (mem.(j - 1) < v);
                Alcotest.(check int) "owner matches membership" i (Tile.owner t v);
                seen.(v) <- seen.(v) + 1)
              mem
          done;
          Array.iteri
            (fun v c -> Alcotest.(check int) (Printf.sprintf "node %d owned once" v) 1 c)
            seen;
          let crossing = Tile.cross_edges t dual in
          Alcotest.(check bool) "cross_edges non-negative" true (crossing >= 0))
        [ 1; 2; 3; 7; 64; 1000 ])
    [ 3; 17; 91 ]

let test_tile_stripes_are_spatial () =
  (* On a wide uniform field, striping by grid columns must cut far
     fewer G' edges than an arbitrary (shuffled-id) equipartition.
     Relabel the same field's vertices randomly: the spatial tiler then
     sees no usable id structure, while the embedding still guides the
     stripes. *)
  let rng = Rng.of_int 4242 in
  let n = 400 in
  let dual =
    Geo.random_field ~rng ~n ~width:16.0 ~height:4.0 ~r:1.2 ~gray_g':0.5 ()
  in
  let t = Tile.of_dual ~tiles:4 dual in
  let spatial = Tile.cross_edges t dual in
  (* Expected cross edges of a random partition: ~ (k-1)/k of all edges. *)
  let g' = Dual.g' dual in
  let total =
    (Array.length (Dualgraph.Graph.csr_neighbors g')) / 2
  in
  Alcotest.(check bool)
    (Printf.sprintf "spatial stripes cut %d of %d edges (< 40%%)" spatial total)
    true
    (float_of_int spatial < 0.4 *. float_of_int total)

let test_pool_runs_all () =
  let pool = Pool.create ~workers:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let hits = Array.make 4 0 in
      for _ = 1 to 50 do
        Pool.run pool (fun i -> hits.(i) <- hits.(i) + 1)
      done;
      Array.iteri
        (fun i c -> Alcotest.(check int) (Printf.sprintf "worker %d ran every phase" i) 50 c)
        hits)

exception Boom of int

let test_pool_propagates_failure () =
  let pool = Pool.create ~workers:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let raised =
        try
          Pool.run pool (fun i -> if i = 2 then raise (Boom i));
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int)) "worker exception re-raised" (Some 2) raised;
      (* The pool survives a failed phase. *)
      let ok = Atomic.make 0 in
      Pool.run pool (fun _ -> ignore (Atomic.fetch_and_add ok 1));
      Alcotest.(check int) "pool still usable" 3 (Atomic.get ok))

let test_budget_accounting () =
  let before = Budget.in_flight () in
  let pool = Pool.create ~workers:3 in
  Alcotest.(check int) "pool registers extra domains" (before + 2)
    (Budget.in_flight ());
  Pool.shutdown pool;
  Alcotest.(check int) "shutdown releases them" before (Budget.in_flight ());
  Alcotest.(check bool) "suggested_extra never negative" true
    (Budget.suggested_extra () >= 0)

let test_tiled_matches_engine_fixed () =
  (* Deterministic spot checks across fault shapes and tile counts,
     comparing the full observable surface (records, events, metrics). *)
  List.iter
    (fun seed ->
      let rounds = 24 in
      let base = run_one ~engine:true ~tiles:1 ~rounds seed in
      List.iter
        (fun tiles ->
          let tiled = run_one ~engine:false ~tiles ~rounds seed in
          if not (executions_equal base tiled) then
            Alcotest.failf
              "seed %d tiles %d: tiled execution diverges from Engine.run \
               (executed %d vs %d; events %d vs %d bytes)"
              seed tiles base.executed tiled.executed
              (String.length base.events)
              (String.length tiled.events))
        [ 1; 2; 3; 5 ])
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_tiled_impure_env () =
  List.iter
    (fun tiles ->
      let run use_tiled =
        let rng = Rng.of_int 99 in
        let n = 12 in
        let dual =
          Geo.random_field ~rng ~n ~width:3.0 ~height:3.0 ~r:1.5 ~gray_g':0.5 ()
        in
        let node_rng = Rng.of_int 100 in
        let nodes =
          Array.init n (fun src ->
              let node_rng = Rng.split node_rng in
              {
                P.decide =
                  (fun ~round:_ inputs ->
                    if inputs <> [] || Rng.bernoulli node_rng 0.3 then
                      P.Transmit (M.Data (M.payload ~src ~uid:0 ()))
                    else P.Listen);
                absorb = (fun ~round:_ _ -> []);
              })
        in
        let log = ref [] in
        let env = impure_env ~n log in
        let trace, observer = Trace.recorder () in
        let (_ : int) =
          if use_tiled then
            Tiled.run ~observer ~tiles ~dual
              ~scheduler:(Sch.bernoulli ~seed:7 ~p:0.4)
              ~nodes ~env ~rounds:8 ()
          else
            Engine.run ~observer ~dual
              ~scheduler:(Sch.bernoulli ~seed:7 ~p:0.4)
              ~nodes ~env ~rounds:8 ()
        in
        ( List.rev !log,
          List.init (Trace.length trace) (fun i -> digest_record (Trace.get trace i)) )
      in
      let log_e, trace_e = run false in
      let log_t, trace_t = run true in
      Alcotest.(check bool)
        (Printf.sprintf "tiles %d: impure env polled in the engine's order" tiles)
        true (log_e = log_t);
      Alcotest.(check (list string))
        (Printf.sprintf "tiles %d: impure env trace identical" tiles)
        trace_e trace_t)
    [ 2; 4 ]

let test_tiled_process_failure () =
  let rng = Rng.of_int 5 in
  let n = 10 in
  let dual =
    Geo.random_field ~rng ~n ~width:3.0 ~height:3.0 ~r:1.5 ~gray_g':0.5 ()
  in
  let nodes =
    Array.init n (fun src ->
        {
          P.decide =
            (fun ~round _ ->
              if src = 7 && round = 3 then raise (Boom src)
              else P.Transmit (M.Data (M.payload ~src ~uid:0 ())));
          absorb = (fun ~round:_ _ -> []);
        })
  in
  let raised =
    try
      let (_ : int) =
        Tiled.run ~tiles:3 ~dual ~scheduler:Sch.all_edges ~nodes
          ~env:(Radiosim.Env.null ~name:"boom" ())
          ~rounds:10 ()
      in
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "worker-domain process exception re-raised"
    (Some 7) raised

let qcheck_cases =
  let open QCheck in
  [
    Test.make
      ~name:
        "tile obliviousness: any tiling is trace-identical to Engine.run \
         (records, events, metrics) under faults, jams and revival"
      ~count:30 small_int
      (fun seed ->
        let rounds = 20 in
        let base = run_one ~engine:true ~tiles:1 ~rounds seed in
        List.for_all
          (fun tiles ->
            executions_equal base (run_one ~engine:false ~tiles ~rounds seed))
          [ 1; 2; 3; 5 ])
      ;
    Test.make
      ~name:"tile obliviousness: any tiling equals Engine.run_reference"
      ~count:30 small_int
      (fun seed ->
        let rounds = 15 in
        let reference = run_plain ~how:`Reference ~rounds seed in
        List.for_all
          (fun tiles -> run_plain ~how:(`Tiled tiles) ~rounds seed = reference)
          [ 1; 2; 4 ]);
  ]

let suite =
  [
    Alcotest.test_case "tile partition invariants" `Quick test_tile_partition;
    Alcotest.test_case "tile stripes follow the embedding" `Quick
      test_tile_stripes_are_spatial;
    Alcotest.test_case "pool runs every worker per phase" `Quick
      test_pool_runs_all;
    Alcotest.test_case "pool re-raises worker exceptions" `Quick
      test_pool_propagates_failure;
    Alcotest.test_case "pool registers with the domain budget" `Quick
      test_budget_accounting;
    Alcotest.test_case "tiled run matches engine on fixed configs" `Quick
      test_tiled_matches_engine_fixed;
    Alcotest.test_case "impure env polls serially in engine order" `Quick
      test_tiled_impure_env;
    Alcotest.test_case "process exception propagates from worker domain" `Quick
      test_tiled_process_failure;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
