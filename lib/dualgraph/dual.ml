type t = {
  g : Graph.t;
  g' : Graph.t;
  embedding : Embedding.t option;
  r : float;
  delta : int;
  delta' : int;
  unreliable : (int * int) array;
}

let check_r_geographic emb r g g' =
  let n = Embedding.n emb in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Embedding.vertex_distance emb u v in
      if d <= 1.0 && not (Graph.mem_edge g u v) then ok := false;
      if d > r && Graph.mem_edge g' u v then ok := false
    done
  done;
  !ok

let create ?embedding ?(r = 1.0) ~g ~g' () =
  if Graph.n g <> Graph.n g' then
    invalid_arg "Dual.create: vertex count mismatch between G and G'";
  if not (Graph.is_subgraph g g') then
    invalid_arg "Dual.create: E is not a subset of E'";
  if r < 1.0 then invalid_arg "Dual.create: r must be >= 1";
  (match embedding with
  | None -> ()
  | Some emb ->
      if Embedding.n emb <> Graph.n g then
        invalid_arg "Dual.create: embedding size mismatch";
      if not (check_r_geographic emb r g g') then
        invalid_arg "Dual.create: embedding violates the r-geographic property");
  let unreliable =
    Graph.edges g'
    |> List.filter (fun (u, v) -> not (Graph.mem_edge g u v))
    |> Array.of_list
  in
  {
    g;
    g';
    embedding;
    r;
    delta = max 1 (Graph.max_closed_degree g);
    delta' = max 1 (Graph.max_closed_degree g');
    unreliable;
  }

let g t = t.g
let g' t = t.g'
let n t = Graph.n t.g
let r t = t.r
let embedding t = t.embedding
let delta t = t.delta
let delta' t = t.delta'
let unreliable_edges t = t.unreliable
let reliable_neighbors t u = Graph.neighbors t.g u
let all_neighbors t u = Graph.neighbors t.g' u

let is_r_geographic t =
  match t.embedding with
  | None -> false
  | Some emb -> check_r_geographic emb t.r t.g t.g'

let pp ppf t =
  Format.fprintf ppf "@[dual n=%d |E|=%d |E'|=%d Δ=%d Δ'=%d r=%.2f@]"
    (n t) (Graph.edge_count t.g) (Graph.edge_count t.g') t.delta t.delta' t.r
