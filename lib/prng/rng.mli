(** Convenience layer over {!Splitmix}: typed random draws.

    Every simulated entity (node, scheduler, environment, workload
    generator) holds its own [Rng.t], obtained by [split]ting a root
    generator.  This keeps executions reproducible and lets tests replay a
    single node's coin flips in isolation. *)

type t

val create : int64 -> t
(** Fresh generator from a 64-bit seed. *)

val of_int : int -> t
(** Fresh generator from an [int] seed. *)

val split : t -> t
(** Derive an independent generator (advances the parent). *)

val copy : t -> t
(** Duplicate the state (both produce the same stream afterwards). *)

val bits64 : t -> int64
(** 64 fresh pseudo-random bits. *)

val bool : t -> bool
(** A fair coin. *)

val bits : t -> int -> int
(** [bits t k] is a uniform integer in [\[0, 2^k)], for [0 <= k <= 62]
    (the full non-negative range of a 64-bit-platform OCaml int). *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]; any positive
    OCaml int (up to [max_int]) is accepted.  Uses rejection sampling,
    so the distribution is exactly uniform. *)

val int_in_range : t -> min:int -> max:int -> int
(** Uniform in the inclusive range [\[min, max\]].  Requires [min <= max]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val geometric_trial : t -> int -> bool
(** [geometric_trial t b] flips [b] fair coins and returns [true] iff all
    landed zero — i.e. [true] with probability [2^-b].  This is the exact
    primitive LBAlg uses for its broadcast decision (step 3 of the body
    round), implemented with the same bit-consumption semantics. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
