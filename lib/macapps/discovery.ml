module Mac = Localcast.Mac
module M = Localcast.Messages
module Dual = Dualgraph.Dual
module Graph = Dualgraph.Graph

type result = {
  discovered : int list array;
  complete : bool;
  completion_round : int option;
  missing_pairs : int;
  spurious_pairs : int;
  rounds_executed : int;
}

let hello_tag = 1

let run ~params ~rng ~dual ~scheduler ~max_rounds () =
  let n = Dual.n dual in
  let heard = Array.init n (fun _ -> Hashtbl.create 8) in
  (* Completion = every reliable (u, v) pair established in both
     directions; track how many are still missing. *)
  let missing = ref 0 in
  for u = 0 to n - 1 do
    missing := !missing + Graph.degree (Dual.g dual) u
  done;
  let completion_round = ref None in
  let callbacks =
    {
      Mac.on_recv =
        (fun ~node ~round payload ->
          if payload.M.tag = hello_tag then begin
            let src = payload.M.src in
            if not (Hashtbl.mem heard.(node) src) then begin
              Hashtbl.add heard.(node) src ();
              if Graph.mem_edge (Dual.g dual) node src then begin
                decr missing;
                if !missing = 0 && !completion_round = None then
                  completion_round := Some round
              end
            end
          end);
      on_ack = (fun ~node:_ ~round:_ _ -> ());
    }
  in
  let mac = Mac.create ~callbacks ~params ~rng ~dual () in
  for v = 0 to n - 1 do
    let (_ : bool) = Mac.request mac ~node:v ~tag:hello_tag in
    ()
  done;
  let stop _ = !missing = 0 in
  let rounds_executed = Mac.run ~stop mac ~scheduler ~rounds:max_rounds in
  let discovered =
    Array.map
      (fun tbl -> Hashtbl.fold (fun src () acc -> src :: acc) tbl [] |> List.sort Int.compare)
      heard
  in
  let spurious_pairs = ref 0 in
  Array.iteri
    (fun v srcs ->
      List.iter
        (fun src ->
          if not (Graph.mem_edge (Dual.g' dual) v src) then incr spurious_pairs)
        srcs)
    discovered;
  {
    discovered;
    complete = !missing = 0;
    completion_round = !completion_round;
    missing_pairs = !missing;
    spurious_pairs = !spurious_pairs;
    rounds_executed;
  }
