module Mac = Localcast.Mac
module M = Localcast.Messages

type result = {
  delivered : bool array array;
  complete_messages : int;
  completion_round : int option;
  relays : int;
  rounds_executed : int;
}

let run ~params ~rng ~dual ~scheduler ~sources ~max_rounds () =
  let n = Dualgraph.Dual.n dual in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Multi_broadcast.run: source out of range")
    sources;
  let k = List.length sources in
  let delivered = Array.make_matrix k n false in
  let remaining = ref (k * n) in
  let completion_round = ref None in
  let relays = ref 0 in
  (* Per node: messages seen (to relay once) and the relay queue awaiting
     a free MAC endpoint. *)
  let seen = Array.init n (fun _ -> Array.make k false) in
  let queue = Array.make n [] in
  let mac = ref None in
  let mark ~round idx node =
    if not delivered.(idx).(node) then begin
      delivered.(idx).(node) <- true;
      decr remaining;
      if !remaining = 0 && !completion_round = None then
        completion_round := Some round
    end
  in
  let try_send node =
    match (!mac, queue.(node)) with
    | Some mac, idx :: rest ->
        if Mac.request mac ~node ~tag:(idx + 1) then begin
          incr relays;
          queue.(node) <- rest
        end
    | _ -> ()
  in
  let enqueue node idx =
    if not seen.(node).(idx) then begin
      seen.(node).(idx) <- true;
      queue.(node) <- queue.(node) @ [ idx ];
      try_send node
    end
  in
  let callbacks =
    {
      Mac.on_recv =
        (fun ~node ~round payload ->
          let idx = payload.M.tag - 1 in
          if idx >= 0 && idx < k then begin
            mark ~round idx node;
            enqueue node idx
          end);
      on_ack = (fun ~node ~round:_ _ -> try_send node);
    }
  in
  let m = Mac.create ~callbacks ~params ~rng ~dual () in
  mac := Some m;
  List.iteri
    (fun idx source ->
      mark ~round:0 idx source;
      enqueue source idx)
    sources;
  let stop _ = !remaining = 0 in
  let rounds_executed = Mac.run ~stop m ~scheduler ~rounds:max_rounds in
  let complete_messages =
    Array.fold_left
      (fun acc per_node -> if Array.for_all Fun.id per_node then acc + 1 else acc)
      0 delivered
  in
  {
    delivered;
    complete_messages;
    completion_round = !completion_round;
    relays = !relays;
    rounds_executed;
  }
