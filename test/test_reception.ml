(* Reception models: the spec grammar, the Dual_graph extraction's
   trace identity, the SINR backend's physics units, and SINR agreement
   between the sequential and tiled engines at any tile count. *)

open Core
module Dual = Dualgraph.Dual
module Graph = Dualgraph.Graph
module Emb = Dualgraph.Embedding
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module Tiled = Radiosim.Tiled
module Trace = Radiosim.Trace
module Reception = Radiosim.Reception
module Sinr = Radiosim.Sinr
module P = Radiosim.Process
module M = Localcast.Messages
module Rng = Prng.Rng
module Plan = Faults.Plan

(* ---------- spec grammar ---------- *)

let test_spec_parse () =
  let ok spec =
    match Reception.of_spec spec with
    | Ok m -> m
    | Error e -> Alcotest.failf "%S rejected: %s" spec e
  in
  Alcotest.(check string) "dual" "dual-graph" (Reception.name (ok "dual"));
  Alcotest.(check string)
    "dual-graph, case-insensitive" "dual-graph"
    (Reception.name (ok "Dual-Graph"));
  Alcotest.(check bool) "bare sinr = defaults" true
    (ok "sinr" = Reception.sinr ());
  (match ok "sinr:alpha=4,beta=2,noise=1e-3" with
  | Reception.Sinr p ->
      Alcotest.(check (float 0.0)) "alpha" 4.0 p.Reception.alpha;
      Alcotest.(check (float 0.0)) "beta" 2.0 p.Reception.beta;
      Alcotest.(check (float 0.0)) "noise" 1e-3 p.Reception.noise;
      Alcotest.(check (float 0.0)) "power default" 1.0 p.Reception.power;
      Alcotest.(check int) "near default" 2 p.Reception.near
  | Reception.Dual_graph -> Alcotest.fail "sinr spec parsed as dual");
  Alcotest.(check bool) "dual needs no embedding" false
    (Reception.requires_embedding (ok "dual"));
  Alcotest.(check bool) "sinr needs an embedding" true
    (Reception.requires_embedding (ok "sinr"));
  List.iter
    (fun bad ->
      match Reception.of_spec bad with
      | Ok _ -> Alcotest.failf "%S accepted" bad
      | Error _ -> ())
    [
      "bogus";
      "sinr:alpha=0";
      "sinr:alpha=-1";
      "sinr:beta=nan";
      "sinr:noise=-0.1";
      "sinr:power=0";
      "sinr:near=0";
      "sinr:near=1.5";
      "sinr:volume=11";
      "sinr:alpha";
      "sinr:alpha=x";
    ]

let test_spec_roundtrip () =
  let rng = Rng.of_int 2024 in
  for _ = 1 to 50 do
    let m =
      if Rng.bernoulli rng 0.2 then Reception.dual_graph
      else
        Reception.sinr
          ~alpha:(0.5 +. Rng.float rng 5.0)
          ~beta:(0.1 +. Rng.float rng 4.0)
          ~noise:(Rng.float rng 0.2)
          ~power:(0.1 +. Rng.float rng 9.0)
          ~jam:(Rng.float rng 2000.0)
          ~near:(1 + Rng.int rng 6)
          ()
    in
    match Reception.of_spec (Reception.to_spec m) with
    | Ok m' ->
        if m <> m' then
          Alcotest.failf "spec %S did not round-trip" (Reception.to_spec m)
    | Error e -> Alcotest.failf "own spec %S rejected: %s" (Reception.to_spec m) e
  done

(* ---------- guard rails ---------- *)

(* A 2-node explicit dual: points at distance exactly 1, one reliable
   edge, no unreliable ones.  Small enough to compute the SINR test by
   hand. *)
let two_node_dual () =
  let emb = Emb.create [| { Emb.x = 0.0; y = 0.0 }; { Emb.x = 1.0; y = 0.0 } |] in
  let g = Graph.create ~n:2 ~edges:[ (0, 1) ] in
  Dual.create ~embedding:emb ~r:1.5 ~g ~g':g ()

let one_transmitter ~n ~src =
  Array.init n (fun v ->
      if v = src then
        {
          P.decide = (fun ~round:_ _ -> P.Transmit (M.Data (M.payload ~src ~uid:0 ())));
          absorb = (fun ~round:_ _ -> []);
        }
      else
        {
          P.decide = (fun ~round:_ _ -> P.Listen);
          absorb = (fun ~round:_ _ -> []);
        })

let run_two_node ?faults ~reception () =
  let dual = two_node_dual () in
  let trace, observer = Trace.recorder () in
  let (_ : int) =
    Engine.run ~observer ?faults ~reception ~dual ~scheduler:Sch.reliable_only
      ~nodes:(one_transmitter ~n:2 ~src:1)
      ~env:(Radiosim.Env.null ~name:"rx" ())
      ~rounds:1 ()
  in
  (Trace.get trace 0).Trace.delivered.(0)

let test_adaptive_rejects_sinr () =
  let dual = two_node_dual () in
  let raised =
    try
      let (_ : int) =
        Engine.run_adaptive
          ~reception:(Reception.sinr ())
          ~dual
          ~adversary:(Radiosim.Adaptive.of_oblivious Sch.reliable_only)
          ~nodes:(one_transmitter ~n:2 ~src:1)
          ~env:(Radiosim.Env.null ~name:"rx" ())
          ~rounds:1 ()
      in
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "run_adaptive + Sinr raises" true raised

let test_sinr_needs_embedding () =
  let g = Graph.create ~n:2 ~edges:[ (0, 1) ] in
  let dual = Dual.create ~g ~g':g () in
  let raised =
    try
      let (_ : int) =
        Engine.run
          ~reception:(Reception.sinr ())
          ~dual ~scheduler:Sch.reliable_only
          ~nodes:(one_transmitter ~n:2 ~src:1)
          ~env:(Radiosim.Env.null ~name:"rx" ())
          ~rounds:1 ()
      in
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "embeddingless dual raises under SINR" true raised

(* ---------- physics units ---------- *)

let test_beta_threshold_edge () =
  (* One transmitter at distance 1: signal = power = 1 at any alpha, no
     other transmitter, empty far field — the SINR test reduces to
     1 >= beta * noise.  With beta = 2 and noise = 1/2 that is exact
     equality, which must decode (the rule is >=, not >); one ulp more
     noise must drown it. *)
  let decode noise =
    run_two_node
      ~reception:(Reception.sinr ~alpha:3.0 ~beta:2.0 ~noise ~power:1.0 ())
      ()
  in
  Alcotest.(check bool) "exact threshold decodes" true (decode 0.5 <> None);
  Alcotest.(check bool) "one ulp past the threshold drowns" true
    (decode (Float.succ 0.5) = None)

let test_jam_is_additive_noise () =
  let sinr = Reception.sinr () in
  (* Baseline: the lone neighbor is decodable. *)
  Alcotest.(check bool) "unjammed SINR decodes" true
    (run_two_node ~reception:sinr () <> None);
  (* Jam the listener: its noise floor gains [jam = 1000], far above
     the signal, so reception dies at the victim. *)
  let jam_listener = Plan.make ~n:2 ~jams:[ (0, 0, 1) ] () in
  Alcotest.(check bool) "jammed listener is deafened" true
    (run_two_node ~faults:jam_listener ~reception:sinr () = None);
  (* Jam the transmitter: under SINR the radio still transmits (only
     its reception would suffer), so the listener still decodes —
     exactly where the two physics part ways, because the dual-graph
     model suppresses the jammed transmission instead. *)
  let jam_tx = Plan.make ~n:2 ~jams:[ (1, 0, 1) ] () in
  Alcotest.(check bool) "jammed SINR transmitter is still heard" true
    (run_two_node ~faults:jam_tx ~reception:sinr () <> None);
  Alcotest.(check bool) "jammed dual-graph transmitter is suppressed" true
    (run_two_node ~faults:jam_tx ~reception:Reception.dual_graph () = None)

let test_distance_monotonicity () =
  (* A line of nodes one unit apart, node 0 transmitting.  Signal must
     fall strictly with distance, and the decode verdict must be a
     prefix: success out to d* = (power/(beta*noise))^(1/alpha) ~ 4.05,
     drowned beyond. *)
  let n = 6 in
  let emb =
    Emb.create (Array.init n (fun i -> { Emb.x = float_of_int i; y = 0.0 }))
  in
  let g =
    Graph.create ~n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))
  in
  let dual = Dual.create ~embedding:emb ~r:1.0 ~g ~g':g () in
  let params =
    match Reception.sinr ~near:100 () with
    | Reception.Sinr p -> p
    | Reception.Dual_graph -> assert false
  in
  let field = Sinr.create ~params dual in
  Sinr.load_round field ~transmitters:[| 0 |] ~count:1;
  let prev = ref infinity in
  for v = 1 to n - 1 do
    let best, signal, _ = Sinr.diag field ~jammed:false ~listener:v in
    Alcotest.(check int) (Printf.sprintf "node %d hears node 0" v) 0 best;
    Alcotest.(check bool)
      (Printf.sprintf "signal at %d weaker than at %d" v (v - 1))
      true (signal < !prev);
    prev := signal;
    let verdict = Sinr.receive field ~jammed:false ~listener:v in
    let expect = if float_of_int v <= 4.05 then 0 else -2 in
    Alcotest.(check int)
      (Printf.sprintf "decode verdict at distance %d" v)
      expect verdict
  done

(* ---------- trace identity ---------- *)

(* The full-surface comparison harness of test_tiled, with the
   reception model as a parameter: records, event stream and counters
   must agree between any two ways of running the same configuration. *)
type execution = {
  executed : int;
  records : (int * string) list;
  events : string;
  counters : (string * int) list;
}

let run_full ?reception ~engine ~tiles ~rounds seed =
  let rng = Rng.of_int seed in
  let n = 2 + Rng.int rng 30 in
  let dual =
    Geo.random_field ~rng ~n ~width:3.5 ~height:3.5 ~r:1.5 ~gray_g':0.5 ()
  in
  let scheduler = Test_engine_props.scheduler_of_seed seed in
  let p = [| 0.05; 0.15; 0.35; 0.8 |].(seed mod 4) in
  let node_rng = Rng.of_int (seed + 1) in
  let nodes =
    Array.init n (fun src ->
        let node_rng = Rng.split node_rng in
        {
          P.decide =
            (fun ~round:_ _ ->
              if Rng.bernoulli node_rng p then
                P.Transmit (M.Data (M.payload ~src ~uid:0 ()))
              else P.Listen);
          absorb =
            (fun ~round delivered ->
              match delivered with
              | Some (M.Data payload) -> [ (round, payload.M.src) ]
              | Some (M.Seed_msg _) | None -> []);
        })
  in
  let faults =
    match seed mod 4 with
    | 0 -> None
    | 1 -> Some (Plan.make ~n ~crashes:[ (seed mod n, 2); ((seed + 1) mod n, 5) ] ())
    | 2 ->
        let v = seed mod n in
        Some
          (Plan.make ~n ~crashes:[ (v, 1) ]
             ~restarts:[ (v, 4) ]
             ~jams:[ ((seed + 2) mod n, 0, 6); ((seed + 2) mod n, 8, 11) ]
             ())
    | _ -> Some (Plan.churn ~seed ~n ~rounds ~rate:0.04 ~downtime:5 ())
  in
  let sink = Obs.Sink.create ~capacity:(max 65536 (rounds * ((2 * n) + 8))) () in
  let metrics = Obs.Metrics.create () in
  let records = ref [] in
  let digest (r : (M.msg, 'i, int * int) Trace.round_record) =
    let b = Buffer.create 256 in
    Array.iteri
      (fun v a ->
        match a with
        | P.Transmit (M.Data pl) -> Buffer.add_string b (Printf.sprintf "T%d:%d;" v pl.M.src)
        | P.Transmit _ -> Buffer.add_string b (Printf.sprintf "T%d:?;" v)
        | P.Listen -> ())
      r.Trace.actions;
    Buffer.add_char b '|';
    Array.iteri
      (fun v d ->
        match d with
        | Some (M.Data pl) -> Buffer.add_string b (Printf.sprintf "D%d:%d;" v pl.M.src)
        | Some _ -> Buffer.add_string b (Printf.sprintf "D%d:?;" v)
        | None -> ())
      r.Trace.delivered;
    Buffer.contents b
  in
  let observer r = records := (r.Trace.round, digest r) :: !records in
  let env = Radiosim.Env.null ~name:"rx-prop" () in
  let revive ~node ~round =
    let mixed =
      Prng.Splitmix.mix
        (Int64.add
           (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
           (Int64.add
              (Int64.mul (Int64.of_int (node + 1)) 0xC2B2AE3D27D4EB4FL)
              (Int64.mul (Int64.of_int (round + 1)) 0x165667B19E3779F9L)))
    in
    let rng = Rng.create mixed in
    {
      P.decide =
        (fun ~round:_ _ ->
          if Rng.bernoulli rng 0.3 then
            P.Transmit (M.Data (M.payload ~src:node ~uid:1 ()))
          else P.Listen);
      absorb = (fun ~round:_ _ -> []);
    }
  in
  let executed =
    if engine then
      Engine.run ~observer ~sink ~metrics ?faults ~revive ?reception ~dual
        ~scheduler ~nodes ~env ~rounds ()
    else
      Tiled.run ~observer ~sink ~metrics ?faults ~revive ?reception ~tiles
        ~dual ~scheduler ~nodes ~env ~rounds ()
  in
  let buf = Buffer.create 4096 in
  Obs.Sink.iter sink (fun ev ->
      Buffer.add_string buf (Obs.Event.to_json ev);
      Buffer.add_char buf '\n');
  let snap = Obs.Metrics.snapshot ~label:"end" metrics in
  {
    executed;
    records = List.rev !records;
    events = Buffer.contents buf;
    counters = snap.Obs.Metrics.counters;
  }

let executions_equal a b =
  a.executed = b.executed && a.records = b.records
  && String.equal a.events b.events
  && a.counters = b.counters

(* Naive all-pairs SINR evaluation, written independently of the
   column bucketing: plain id-order accumulation over every
   transmitter. *)
let naive_receive ~params ~emb ~transmitters ~listener =
  let p : Reception.sinr = params in
  let lp = Emb.point emb listener in
  let best = ref (-1) and best_pw = ref 0.0 and sum = ref 0.0 in
  Array.iter
    (fun w ->
      let wp = Emb.point emb w in
      let dx = wp.Emb.x -. lp.Emb.x and dy = wp.Emb.y -. lp.Emb.y in
      let d2 = Float.max ((dx *. dx) +. (dy *. dy)) 1e-12 in
      let pw = p.Reception.power *. (d2 ** (-.p.Reception.alpha /. 2.0)) in
      sum := !sum +. pw;
      if pw > !best_pw then begin
        best_pw := pw;
        best := w
      end)
    transmitters;
  if !best < 0 then (-1, 0.0, 0.0)
  else
    ( !best,
      !best_pw,
      !sum -. !best_pw +. p.Reception.noise )

(* ---------- sparse-kernel guard rails ---------- *)

(* A transmitter exactly on a near-band column boundary: cell = max r 1
   = 1, a node at x = 0 pins the grid origin, and the transmitter sits
   at x = 3.0 — the edge between columns 2 and 3 (half-open cells put it
   in column 3).  Activation, the per-listener path and the batched slot
   path must all agree with the frozen dense reference. *)
let test_boundary_column () =
  let xs = [| 0.0; 0.5; 1.5; 2.5; 3.0; 3.5; 4.5; 5.5 |] in
  let n = Array.length xs in
  let emb = Emb.create (Array.map (fun x -> { Emb.x; y = 0.0 }) xs) in
  (* SINR never reads the link graphs, only the embedding and r — an
     edgeless pair keeps the fixture minimal (validation skipped: no
     edges means the r-geographic conditions cannot hold). *)
  let g = Graph.create ~n ~edges:[] in
  let dual = Dual.create ~embedding:emb ~r:1.0 ~validate:false ~g ~g':g () in
  let params =
    match Reception.sinr ~alpha:3.0 ~beta:1.2 ~noise:0.02 ~near:1 () with
    | Reception.Sinr p -> p
    | Reception.Dual_graph -> assert false
  in
  let field = Sinr.create ~params dual in
  let tx = 4 (* x = 3.0 *) in
  Alcotest.(check int) "cols" 6 (Sinr.cols field);
  Alcotest.(check int) "boundary transmitter lands in column 3" 3
    (Sinr.column_of field tx);
  Sinr.load_round field ~transmitters:[| tx |] ~count:1;
  List.iter
    (fun (c, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "column %d active" c)
        expect
        (Sinr.column_active field c))
    [ (0, false); (1, false); (2, true); (3, true); (4, true); (5, false) ];
  let act, nact = Sinr.active_columns field in
  Alcotest.(check (list int)) "active list" [ 2; 3; 4 ]
    (Array.to_list (Array.sub act 0 nact));
  for u = 0 to n - 1 do
    if u <> tx then begin
      let rr = Sinr.receive_reference field ~jammed:false ~listener:u in
      Alcotest.(check int)
        (Printf.sprintf "receive(%d) = reference" u)
        rr
        (Sinr.receive field ~jammed:false ~listener:u);
      if not (Sinr.column_active field (Sinr.column_of field u)) then
        Alcotest.(check int) (Printf.sprintf "skipped listener %d silent" u)
          (-1) rr
    end
  done;
  let soff = Sinr.slot_off field and snode = Sinr.slot_node field in
  for c = 0 to Sinr.cols field - 1 do
    if Sinr.column_active field c then begin
      Sinr.scan_slots field ~column:c ~lo:soff.(c) ~hi:soff.(c + 1);
      for s = soff.(c) to soff.(c + 1) - 1 do
        let u = snode.(s) in
        if u <> tx then
          Alcotest.(check int)
            (Printf.sprintf "verdict at slot %d = reference" s)
            (Sinr.receive_reference field ~jammed:false ~listener:u)
            (Sinr.verdict field ~jammed:false ~slot:s)
      done
    end
  done

(* The round kernels allocate nothing at steady state: load_round plus a
   full active-column sweep (batched scans + verdicts), probed like the
   Serve engine's zero-allocation loop. *)
let test_kernel_no_alloc () =
  let rng = Rng.of_int 4242 in
  let n = 256 in
  let dual =
    Geo.random_field ~rng ~n ~width:16.0 ~height:16.0 ~r:1.0 ~gray_g':0.5 ()
  in
  let params =
    match Reception.sinr ~alpha:3.0 ~beta:1.2 ~noise:0.02 () with
    | Reception.Sinr p -> p
    | Reception.Dual_graph -> assert false
  in
  let field = Sinr.create ~params dual in
  (* A cycle of non-empty sparse transmitter sets (ascending ids). *)
  let sets =
    Array.init 16 (fun i ->
        match
          List.filter
            (fun _ -> Rng.bernoulli rng (1.0 /. 256.0))
            (List.init n Fun.id)
        with
        | [] -> [| i * 37 mod n |]
        | l -> Array.of_list l)
  in
  let soff = Sinr.slot_off field in
  let run_round i =
    let tx = sets.(i mod 16) in
    Sinr.load_round field ~transmitters:tx ~count:(Array.length tx);
    let act, nact = Sinr.active_columns field in
    let sink = ref 0 in
    for a = 0 to nact - 1 do
      let c = Array.unsafe_get act a in
      Sinr.scan_slots field ~column:c ~lo:soff.(c) ~hi:soff.(c + 1);
      (* reads every slot, transmitters included — pure scratch reads *)
      for s = soff.(c) to soff.(c + 1) - 1 do
        sink := !sink + Sinr.verdict field ~jammed:false ~slot:s
      done
    done;
    !sink
  in
  for i = 0 to 31 do
    ignore (run_round i)
  done;
  let rounds = 1000 in
  let w0 = Gc.minor_words () in
  let acc = ref 0 in
  for i = 0 to rounds - 1 do
    acc := !acc + run_round i
  done;
  let per_round = (Gc.minor_words () -. w0) /. float_of_int rounds in
  ignore !acc;
  Alcotest.(check bool)
    (Printf.sprintf "steady-state kernel allocation (%.3f minor words/round)"
       per_round)
    true (per_round < 8.0)

let qcheck_cases =
  let open QCheck in
  [
    Test.make
      ~name:
        "explicit Dual_graph reception is the default: identical records, \
         events and counters at any tile count, under the scheduler and \
         fault zoo"
      ~count:25 small_int
      (fun seed ->
        let rounds = 20 in
        let base = run_full ~engine:true ~tiles:1 ~rounds seed in
        let explicit =
          run_full ~reception:Reception.dual_graph ~engine:true ~tiles:1
            ~rounds seed
        in
        executions_equal base explicit
        && List.for_all
             (fun tiles ->
               executions_equal base
                 (run_full ~reception:Reception.dual_graph ~engine:false
                    ~tiles ~rounds seed))
             [ 2; 3 ]);
    Test.make
      ~name:
        "SINR: tiled execution is trace-identical to the sequential engine \
         at any tile count, under the scheduler and fault zoo"
      ~count:25 small_int
      (fun seed ->
        let rounds = 20 in
        let reception =
          Reception.sinr ~alpha:3.0 ~beta:1.2 ~noise:0.02
            ~near:(1 + (seed mod 3))
            ()
        in
        let base = run_full ~reception ~engine:true ~tiles:1 ~rounds seed in
        List.for_all
          (fun tiles ->
            executions_equal base
              (run_full ~reception ~engine:false ~tiles ~rounds seed))
          [ 1; 2; 3; 5 ]);
    Test.make
      ~name:
        "SINR column bucketing agrees with a naive all-pairs sum when the \
         near band covers the whole field"
      ~count:40 small_int
      (fun seed ->
        let rng = Rng.of_int (seed + 31) in
        let n = 3 + Rng.int rng 40 in
        let dual =
          Geo.random_field ~rng ~n ~width:6.0 ~height:6.0 ~r:1.5 ~gray_g':0.5 ()
        in
        let emb = Option.get (Dual.embedding dual) in
        let params =
          match
            Reception.sinr
              ~alpha:(2.0 +. Rng.float rng 3.0)
              ~beta:(0.5 +. Rng.float rng 2.0)
              ~noise:(0.001 +. Rng.float rng 0.1)
              ~near:10_000 ()
          with
          | Reception.Sinr p -> p
          | Reception.Dual_graph -> assert false
        in
        let field = Sinr.create ~params dual in
        let transmitters =
          Array.of_list
            (List.filter (fun _ -> Rng.bernoulli rng 0.3) (List.init n Fun.id))
        in
        if Array.length transmitters = 0 then true
        else begin
          Sinr.load_round field ~transmitters
            ~count:(Array.length transmitters);
          let is_tx = Array.make n false in
          Array.iter (fun v -> is_tx.(v) <- true) transmitters;
          let ok = ref true in
          for u = 0 to n - 1 do
            if not is_tx.(u) then begin
              let nbest, nsig, ninterf =
                naive_receive ~params ~emb ~transmitters ~listener:u
              in
              let gbest, gsig, ginterf =
                Sinr.diag field ~jammed:false ~listener:u
              in
              (* Different accumulation orders, so compare to relative
                 tolerance; the candidate and its (order-free) signal
                 must agree exactly. *)
              let close a b =
                Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b)
              in
              if
                nbest <> gbest
                || nsig <> gsig
                || not (close ninterf ginterf)
                || Sinr.receive field ~jammed:false ~listener:u
                   <> (if nbest < 0 then -1
                       else if gsig >= params.Reception.beta *. ginterf then
                         nbest
                       else -2)
              then ok := false
            end
          done;
          !ok
        end);
    Test.make
      ~name:
        "SINR sparse kernels ≡ frozen dense reference: receive, batched \
         verdicts and the skip set agree on random fields, transmitter sets \
         and jam flags"
      ~count:60 small_int
      (fun seed ->
        let rng = Rng.of_int (seed + 977) in
        let n = 3 + Rng.int rng 60 in
        let r = if Rng.bernoulli rng 0.5 then 1.0 else 1.6 in
        let dual =
          Geo.random_field ~rng ~n ~width:9.0 ~height:4.0 ~r ~gray_g':0.5 ()
        in
        let params =
          match
            Reception.sinr
              ~alpha:(2.0 +. Rng.float rng 3.0)
              ~beta:(0.5 +. Rng.float rng 2.0)
              ~noise:(0.001 +. Rng.float rng 0.1)
              ~near:(1 + Rng.int rng 3)
              ()
          with
          | Reception.Sinr p -> p
          | Reception.Dual_graph -> assert false
        in
        let field = Sinr.create ~params dual in
        let transmitters =
          Array.of_list
            (List.filter (fun _ -> Rng.bernoulli rng 0.15) (List.init n Fun.id))
        in
        let count = Array.length transmitters in
        if count = 0 then true
        else begin
          Sinr.load_round field ~transmitters ~count;
          let is_tx = Array.make n false in
          Array.iter (fun v -> is_tx.(v) <- true) transmitters;
          let jam = Array.init n (fun _ -> Rng.bernoulli rng 0.3) in
          let ok = ref true in
          for u = 0 to n - 1 do
            if not is_tx.(u) then begin
              let rr = Sinr.receive_reference field ~jammed:jam.(u) ~listener:u in
              if Sinr.receive field ~jammed:jam.(u) ~listener:u <> rr then
                ok := false;
              if
                (not (Sinr.column_active field (Sinr.column_of field u)))
                && rr <> -1
              then ok := false
            end
          done;
          let soff = Sinr.slot_off field and snode = Sinr.slot_node field in
          let act, nact = Sinr.active_columns field in
          for a = 0 to nact - 1 do
            let c = act.(a) in
            Sinr.scan_slots field ~column:c ~lo:soff.(c) ~hi:soff.(c + 1);
            for s = soff.(c) to soff.(c + 1) - 1 do
              let u = snode.(s) in
              if not is_tx.(u) then
                if
                  Sinr.verdict field ~jammed:jam.(u) ~slot:s
                  <> Sinr.receive_reference field ~jammed:jam.(u) ~listener:u
                then ok := false
            done
          done;
          !ok
        end);
    Test.make
      ~name:
        "SINR activation soundness: across successive rounds, no skipped \
         listener ever has an in-band transmitter"
      ~count:40 small_int
      (fun seed ->
        let rng = Rng.of_int (seed + 5501) in
        let n = 3 + Rng.int rng 60 in
        let dual =
          Geo.random_field ~rng ~n ~width:9.0 ~height:4.0 ~r:1.0 ~gray_g':0.5 ()
        in
        let params =
          match Reception.sinr ~near:(1 + Rng.int rng 3) () with
          | Reception.Sinr p -> p
          | Reception.Dual_graph -> assert false
        in
        let field = Sinr.create ~params dual in
        let ok = ref true in
        (* Several loads on one field: the activation set (and its mark
           bytes) must track each round's transmitters, not accumulate. *)
        for _ = 1 to 5 do
          let transmitters =
            Array.of_list
              (List.filter
                 (fun _ -> Rng.bernoulli rng 0.08)
                 (List.init n Fun.id))
          in
          let count = Array.length transmitters in
          Sinr.load_round field ~transmitters ~count;
          for u = 0 to n - 1 do
            let cu = Sinr.column_of field u in
            let in_band =
              Array.exists
                (fun w -> abs (Sinr.column_of field w - cu) <= params.Reception.near)
                transmitters
            in
            (* active ⟺ some transmitter in band; skipped ⟹ reference
               decodes silence *)
            if Sinr.column_active field cu <> in_band then ok := false;
            if
              (not (Sinr.column_active field cu))
              && Sinr.receive_reference field ~jammed:false ~listener:u <> -1
            then ok := false
          done
        done;
        !ok);
  ]

let suite =
  [
    Alcotest.test_case "spec grammar parses and validates" `Quick
      test_spec_parse;
    Alcotest.test_case "spec round-trips through to_spec" `Quick
      test_spec_roundtrip;
    Alcotest.test_case "run_adaptive rejects SINR" `Quick
      test_adaptive_rejects_sinr;
    Alcotest.test_case "SINR requires an embedding" `Quick
      test_sinr_needs_embedding;
    Alcotest.test_case "beta threshold edge decodes on exact equality" `Quick
      test_beta_threshold_edge;
    Alcotest.test_case "jamming is additive noise under SINR" `Quick
      test_jam_is_additive_noise;
    Alcotest.test_case "received power falls monotonically with distance"
      `Quick test_distance_monotonicity;
    Alcotest.test_case "transmitter on a near-band column boundary" `Quick
      test_boundary_column;
    Alcotest.test_case "round kernels allocate nothing at steady state" `Quick
      test_kernel_no_alloc;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
