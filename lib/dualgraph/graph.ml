type t = {
  size : int;
  adj : int array array;
  edge_set : (int, unit) Hashtbl.t;
}

let edge_key size u v =
  let lo = min u v and hi = max u v in
  (lo * size) + hi

let create ~n ~edges =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.create: vertex %d out of range [0,%d)" v n)
  in
  let edge_set = Hashtbl.create (max 16 (List.length edges)) in
  let buckets = Array.make n [] in
  let add_edge (u, v) =
    check u;
    check v;
    if u = v then invalid_arg "Graph.create: self-loop";
    let key = edge_key n u v in
    if not (Hashtbl.mem edge_set key) then begin
      Hashtbl.add edge_set key ();
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v)
    end
  in
  List.iter add_edge edges;
  let adj =
    Array.map (fun l -> Array.of_list (List.sort_uniq Int.compare l)) buckets
  in
  { size = n; adj; edge_set }

let empty n = create ~n ~edges:[]

let n t = t.size

let edge_count t = Hashtbl.length t.edge_set

let neighbors t u = t.adj.(u)

let degree t u = Array.length t.adj.(u)

let mem_edge t u v = u <> v && Hashtbl.mem t.edge_set (edge_key t.size u v)

let edges t =
  Hashtbl.fold (fun key () acc -> (key / t.size, key mod t.size) :: acc) t.edge_set []
  |> List.sort compare

let max_closed_degree t =
  let best = ref 1 in
  for u = 0 to t.size - 1 do
    best := max !best (degree t u + 1)
  done;
  if t.size = 0 then 0 else !best

let is_subgraph g g' =
  n g = n g'
  && List.for_all (fun (u, v) -> mem_edge g' u v) (edges g)

let union a b =
  if n a <> n b then invalid_arg "Graph.union: vertex count mismatch";
  create ~n:(n a) ~edges:(edges a @ edges b)

let bfs_distances t src =
  let dist = Array.make t.size max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      t.adj.(u)
  done;
  dist

let is_connected t =
  t.size <= 1
  || Array.for_all (fun d -> d < max_int) (bfs_distances t 0)

let diameter t =
  if t.size <= 1 then 0
  else begin
    if not (is_connected t) then invalid_arg "Graph.diameter: disconnected graph";
    let best = ref 0 in
    for u = 0 to t.size - 1 do
      Array.iter (fun d -> if d > !best then best := d) (bfs_distances t u)
    done;
    !best
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@]" t.size (edge_count t)
