module P = Radiosim.Process

type seed_source =
  | Agreement
  | Oracle of Prng.Rng.t

(* Internal form: the oracle collapses to a shared 64-bit base from which
   every node derives the same per-phase seed without further
   synchronization. *)
type source =
  | Src_agreement
  | Src_oracle of int64

type mode =
  | Receiving
  | Sending of { message : Messages.payload; mutable phases_left : int }

type state = {
  params : Params.t;
  id : int;
  rng : Prng.Rng.t;
  source : source;
  seen : (Messages.payload, unit) Hashtbl.t;
  mutable mode : mode;
  mutable pending : Messages.payload option;
  mutable core : Seed_core.t option;  (** live during a preamble *)
  mutable cursor : Prng.Bitstring.cursor option;  (** live during body rounds *)
  mutable pending_outputs : Messages.lb_output list;
}

let phase_of_round params round = round / params.Params.phase_len

let position_in_phase params round = round mod params.Params.phase_len

let has_preamble params phase = phase mod params.Params.seed_refresh = 0

let is_preamble_round params round =
  has_preamble params (phase_of_round params round)
  && position_in_phase params round < params.Params.ts

let resolve_source = function
  | Agreement -> Src_agreement
  | Oracle shared ->
      (* Copy so that deriving the base never advances the shared
         generator: every node resolves to the same base. *)
      Src_oracle (Prng.Rng.bits64 (Prng.Rng.copy shared))

let oracle_seed state ~phase =
  match state.source with
  | Src_agreement -> assert false
  | Src_oracle base ->
      let derived =
        Prng.Rng.create (Prng.Splitmix.mix (Int64.add base (Int64.of_int phase)))
      in
      Prng.Bitstring.random derived state.params.Params.seed.Params.kappa

let create params ~source ~id ~rng =
  {
    params;
    id;
    rng;
    source;
    seen = Hashtbl.create 32;
    mode = Receiving;
    pending = None;
    core = None;
    cursor = None;
    pending_outputs = [];
  }

let queue_output state out = state.pending_outputs <- out :: state.pending_outputs

(* Commit the preamble's seed and open a cursor on it for body rounds. *)
let commit_seed state =
  match state.core with
  | None -> ()
  | Some core ->
      Seed_core.finalize core;
      (match Seed_core.decision core with
      | Some announcement ->
          state.cursor <- Some (Prng.Bitstring.cursor announcement.Messages.seed);
          queue_output state (Messages.Committed announcement)
      | None -> assert false);
      state.core <- None

(* Every node holding a committed seed advances its cursor identically,
   whether sending or receiving: this keeps all members of one seed group
   at the same bit position even when a node enters the sending state
   partway through a multi-phase seed cycle (seed_refresh > 1). *)
let body_action state =
  match state.cursor with
  | None -> P.Listen
  | Some cursor ->
      let params = state.params in
      (* Step 1: shared participant decision (probability 2^-d). *)
      let participant =
        Prng.Bitstring.take_all_zero cursor params.Params.participant_bits
      in
      if not participant then P.Listen
      else begin
        (* Step 3: shared probability level, then local coins.  The
           level must be uniform in [1, log Δ]; reducing one draw mod
           log Δ would skew toward small levels whenever 2^level_bits is
           not a multiple of log Δ, so we rejection-sample: accept the
           first draw below the largest multiple of log Δ (uniform after
           reduction), over a fixed budget of level_draws draws so every
           group member consumes the same shared bits.  If all draws
           land in the short biased tail (probability < 2^-level_draws),
           fall back to the last draw reduced mod log Δ. *)
        let b =
          if params.Params.level_bits = 0 then 1
          else begin
            let m = params.Params.log_delta in
            let limit = (1 lsl params.Params.level_bits) / m * m in
            let chosen = ref (-1) in
            let last = ref 0 in
            for _ = 1 to params.Params.level_draws do
              let v = Prng.Bitstring.take_int cursor params.Params.level_bits in
              last := v;
              if !chosen < 0 && v < limit then chosen := v
            done;
            (if !chosen >= 0 then !chosen mod m else !last mod m) + 1
          end
        in
        match state.mode with
        | Sending { message; _ } when Prng.Rng.geometric_trial state.rng b ->
            P.Transmit (Messages.Data message)
        | Sending _ | Receiving -> P.Listen
      end

let decide state ~round inputs =
  let params = state.params in
  List.iter
    (fun (Messages.Bcast m) ->
      (* The LB environment contract: one outstanding bcast per node. *)
      assert (state.pending = None);
      (match state.mode with Receiving -> () | Sending _ -> assert false);
      state.pending <- Some m)
    inputs;
  let phase = phase_of_round params round in
  let pos = position_in_phase params round in
  if pos = 0 then begin
    (* Phase boundary: promote a pending bcast to sending state... *)
    (match (state.mode, state.pending) with
    | Receiving, Some m ->
        state.mode <- Sending { message = m; phases_left = params.Params.tack_phases };
        state.pending <- None
    | _ -> ());
    (* ...and open a fresh seed source when this phase carries one. *)
    if has_preamble params phase then begin
      state.cursor <- None;
      match state.source with
      | Src_agreement ->
          state.core <-
            Some (Seed_core.create params.Params.seed ~id:state.id ~rng:state.rng)
      | Src_oracle _ -> state.core <- None
    end
  end;
  if has_preamble params phase && pos < params.Params.ts then
    match state.core with
    | Some core -> Seed_core.decide_action core ~local_round:pos
    | None -> P.Listen (* oracle mode idles through the preamble *)
  else begin
    (* First body round after a preamble: commit the phase's seed. *)
    (match state.source with
    | Src_agreement -> if state.core <> None then commit_seed state
    | Src_oracle _ ->
        if state.cursor = None then begin
          let seed = oracle_seed state ~phase in
          state.cursor <- Some (Prng.Bitstring.cursor seed);
          (* Owner -1 marks the magical global owner. *)
          queue_output state (Messages.Committed { Messages.owner = -1; seed })
        end);
    body_action state
  end

let absorb state ~round received =
  let params = state.params in
  let pos = position_in_phase params round in
  let in_preamble = is_preamble_round params round in
  (match received with
  | Some (Messages.Seed_msg _ as msg) ->
      if in_preamble then
        (match state.core with
        | Some core -> Seed_core.absorb core ~local_round:pos (Some msg)
        | None -> ())
  | Some (Messages.Data m) ->
      if not (Hashtbl.mem state.seen m) then begin
        Hashtbl.add state.seen m ();
        queue_output state (Messages.Recv m)
      end
  | None ->
      if in_preamble then (
        match state.core with
        | Some core -> Seed_core.absorb core ~local_round:pos None
        | None -> ()));
  (* Phase end: retire finished senders. *)
  if pos = params.Params.phase_len - 1 then begin
    match state.mode with
    | Sending s ->
        s.phases_left <- s.phases_left - 1;
        if s.phases_left = 0 then begin
          queue_output state (Messages.Ack s.message);
          state.mode <- Receiving
        end
    | Receiving -> ()
  end;
  let outs = List.rev state.pending_outputs in
  state.pending_outputs <- [];
  outs

let node ?(seed_source = Agreement) params ~id ~rng =
  let state = create params ~source:(resolve_source seed_source) ~id ~rng in
  {
    P.decide = (fun ~round inputs -> decide state ~round inputs);
    absorb = (fun ~round received -> absorb state ~round received);
  }

let network ?seed_source params ~rng ~n =
  Array.init n (fun id -> node ?seed_source params ~id ~rng:(Prng.Rng.split rng))

let phase_of_round params round = phase_of_round params round

let is_preamble_round params round = is_preamble_round params round
