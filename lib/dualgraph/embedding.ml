type point = { x : float; y : float }

type t = point array

let create points = Array.copy points

let n t = Array.length t

let point t i = t.(i)

let distance p q =
  let dx = p.x -. q.x and dy = p.y -. q.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let vertex_distance t u v = distance t.(u) t.(v)

let pp_point ppf p = Format.fprintf ppf "(%.3f, %.3f)" p.x p.y
