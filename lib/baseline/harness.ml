let receiver () = Radiosim.Process.silent ()

let first_reception ~dual ~scheduler ~nodes ~receiver ~max_rounds =
  let result = ref None in
  let stop record =
    match record.Radiosim.Trace.delivered.(receiver) with
    | Some (Localcast.Messages.Data _) ->
        if !result = None then result := Some record.Radiosim.Trace.round;
        true
    | Some (Localcast.Messages.Seed_msg _) | None -> false
  in
  let env = Radiosim.Env.null ~name:"baseline" () in
  let (_ : int) =
    Radiosim.Engine.run ~stop ~dual ~scheduler ~nodes ~env ~rounds:max_rounds ()
  in
  !result
