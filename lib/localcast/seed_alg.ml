let duration = Params.seed_duration

let node params ~id ~rng =
  let core = Seed_core.create params ~id ~rng in
  let total = Seed_core.duration core in
  let decide ~round _inputs =
    if round < total then Seed_core.decide_action core ~local_round:round
    else Radiosim.Process.Listen
  in
  let absorb ~round received =
    if round < total then begin
      Seed_core.absorb core ~local_round:round received;
      if round = total - 1 then Seed_core.finalize core
    end;
    match Seed_core.take_event core with
    | Some announcement -> [ Messages.Decide announcement ]
    | None -> []
  in
  { Radiosim.Process.decide; absorb }

let network params ~rng ~n =
  Array.init n (fun id -> node params ~id ~rng:(Prng.Rng.split rng))
