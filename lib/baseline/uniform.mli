(** Fixed uniform-probability broadcaster.

    The simplest contention strategy: transmit with a constant probability
    [p] every round.  Optimal when [p ≈ 1/contention] and the contention
    never changes — which is exactly what the dual graph's link scheduler
    violates.  Serves as a second baseline in experiment E8. *)

val node :
  p:float ->
  message:Localcast.Messages.payload ->
  rng:Prng.Rng.t ->
  (Localcast.Messages.msg, unit, unit) Radiosim.Process.node
