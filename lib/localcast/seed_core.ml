type status =
  | Active
  | Leader of int
  | Inactive

type t = {
  params : Params.seed;
  id : int;
  rng : Prng.Rng.t;
  initial_seed : Prng.Bitstring.t;
  mutable status : status;
  mutable decision : Messages.seed_announcement option;
  mutable pending_event : Messages.seed_announcement option;
}

let create params ~id ~rng =
  {
    params;
    id;
    rng;
    initial_seed = Prng.Bitstring.random rng params.Params.kappa;
    status = Active;
    decision = None;
    pending_event = None;
  }

let initial_seed t = t.initial_seed
let status t = t.status
let duration t = Params.seed_duration t.params

let decide t announcement =
  assert (t.decision = None);
  t.decision <- Some announcement;
  t.pending_event <- Some announcement

let phase_of t local_round = (local_round / t.params.Params.phase_len) + 1

let decide_action t ~local_round =
  let params = t.params in
  if local_round < 0 || local_round >= duration t then
    invalid_arg "Seed_core.decide_action: local round out of range";
  let h = phase_of t local_round in
  let phase_start = local_round mod params.Params.phase_len = 0 in
  (* A leader's tenure ends with its phase. *)
  (match t.status with
  | Leader h' when phase_start && h > h' -> t.status <- Inactive
  | _ -> ());
  (match t.status with
  | Active when phase_start ->
      let p = 1.0 /. float_of_int (1 lsl (params.Params.phases - h + 1)) in
      if Prng.Rng.bernoulli t.rng p then begin
        t.status <- Leader h;
        decide t { Messages.owner = t.id; seed = t.initial_seed }
      end
  | Active | Leader _ | Inactive -> ());
  match t.status with
  | Leader _ when Prng.Rng.bernoulli t.rng params.Params.broadcast_prob ->
      Radiosim.Process.Transmit
        (Messages.Seed_msg { Messages.owner = t.id; seed = t.initial_seed })
  | Leader _ | Active | Inactive -> Radiosim.Process.Listen

let absorb t ~local_round:_ received =
  match (t.status, received) with
  | Active, Some (Messages.Seed_msg announcement) ->
      t.status <- Inactive;
      decide t announcement
  | (Active | Leader _ | Inactive), _ -> ()

let take_event t =
  let event = t.pending_event in
  t.pending_event <- None;
  event

let finalize t =
  match t.status with
  | Active ->
      t.status <- Inactive;
      decide t { Messages.owner = t.id; seed = t.initial_seed }
  | Leader _ | Inactive -> ()

let decision t = t.decision
