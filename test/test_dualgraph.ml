(* Tests for the dual graph substrate: graphs, embeddings, the dual graph
   invariants (E ⊆ E', r-geographic), topology generators, and the
   Appendix A.1 region partition. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module G = Dualgraph.Graph
module E = Dualgraph.Embedding
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Grid = Dualgraph.Grid
module Region = Dualgraph.Region
module Rng = Prng.Rng

(* --- Graph --- *)

let path5 = G.create ~n:5 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4) ]

let test_graph_dedupe () =
  let g = G.create ~n:3 ~edges:[ (0, 1); (1, 0); (0, 1) ] in
  checki "one edge" 1 (G.edge_count g)

let test_graph_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (G.create ~n:2 ~edges:[ (1, 1) ]))

let test_graph_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.create: vertex 5 out of range [0,3)") (fun () ->
      ignore (G.create ~n:3 ~edges:[ (0, 5) ]))

let test_graph_neighbors_sorted () =
  let g = G.create ~n:4 ~edges:[ (2, 0); (2, 3); (2, 1) ] in
  Alcotest.check (Alcotest.array Alcotest.int) "sorted" [| 0; 1; 3 |]
    (G.neighbors g 2)

let test_graph_degree_mem () =
  checki "degree mid" 2 (G.degree path5 1);
  checki "degree end" 1 (G.degree path5 0);
  checkb "mem" true (G.mem_edge path5 2 1);
  checkb "mem sym" true (G.mem_edge path5 1 2);
  checkb "no edge" false (G.mem_edge path5 0 2);
  checkb "no self edge" false (G.mem_edge path5 2 2)

let test_graph_edges_canonical () =
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "canonical" [ (0, 1); (1, 2); (2, 3); (3, 4) ] (G.edges path5)

let test_graph_max_closed_degree () =
  checki "path" 3 (G.max_closed_degree path5);
  checki "empty graph" 1 (G.max_closed_degree (G.empty 4));
  checki "zero vertices" 0 (G.max_closed_degree (G.empty 0));
  let star = G.create ~n:5 ~edges:[ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  checki "star hub" 5 (G.max_closed_degree star)

let test_graph_subgraph () =
  let sub = G.create ~n:5 ~edges:[ (1, 2) ] in
  checkb "is subgraph" true (G.is_subgraph sub path5);
  checkb "not subgraph" false (G.is_subgraph path5 sub);
  checkb "size mismatch" false (G.is_subgraph (G.empty 3) path5)

let test_graph_union () =
  let a = G.create ~n:3 ~edges:[ (0, 1) ] in
  let b = G.create ~n:3 ~edges:[ (1, 2) ] in
  checki "union edges" 2 (G.edge_count (G.union a b))

let test_graph_of_sorted_arrays () =
  let us = [| 0; 0; 1; 2 |] and vs = [| 1; 3; 2; 4 |] in
  let fast = G.of_sorted_arrays ~n:5 ~us ~vs ~len:4 in
  let slow = G.create ~n:5 ~edges:[ (0, 1); (0, 3); (1, 2); (2, 4) ] in
  checkb "equals create on the same edges" true (G.edges fast = G.edges slow);
  (* len prefix: trailing slots are ignored *)
  let prefix = G.of_sorted_arrays ~n:5 ~us ~vs ~len:2 in
  checki "prefix edge count" 2 (G.edge_count prefix);
  checki "empty" 0 (G.edge_count (G.of_sorted_arrays ~n:3 ~us:[||] ~vs:[||] ~len:0));
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Graph.of_sorted_arrays: edges must be strictly sorted")
    (fun () ->
      ignore (G.of_sorted_arrays ~n:5 ~us:[| 1; 0 |] ~vs:[| 2; 1 |] ~len:2));
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Graph.of_sorted_arrays: edges must be strictly sorted")
    (fun () ->
      ignore (G.of_sorted_arrays ~n:5 ~us:[| 0; 0 |] ~vs:[| 1; 1 |] ~len:2));
  Alcotest.check_raises "unnormalized rejected"
    (Invalid_argument "Graph.of_sorted_arrays: edges must satisfy 0 <= u < v < n")
    (fun () -> ignore (G.of_sorted_arrays ~n:5 ~us:[| 3 |] ~vs:[| 1 |] ~len:1));
  Alcotest.check_raises "out of range rejected"
    (Invalid_argument "Graph.of_sorted_arrays: edges must satisfy 0 <= u < v < n")
    (fun () -> ignore (G.of_sorted_arrays ~n:3 ~us:[| 0 |] ~vs:[| 3 |] ~len:1))

let test_graph_csr_layout () =
  let g = G.create ~n:4 ~edges:[ (2, 0); (2, 3); (2, 1); (0, 1) ] in
  Alcotest.check (Alcotest.array Alcotest.int) "offsets" [| 0; 2; 4; 7; 8 |]
    (G.csr_offsets g);
  Alcotest.check (Alcotest.array Alcotest.int) "flat neighbors"
    [| 1; 2; 0; 2; 0; 1; 3; 2 |] (G.csr_neighbors g);
  (* The flat slices and the allocated views must agree. *)
  for u = 0 to 3 do
    Alcotest.check (Alcotest.array Alcotest.int) "slice = neighbors"
      (G.neighbors g u)
      (Array.sub (G.csr_neighbors g) (G.csr_offsets g).(u) (G.degree g u))
  done

let test_graph_iter_fold_neighbors () =
  let g = G.create ~n:4 ~edges:[ (2, 0); (2, 3); (2, 1) ] in
  let seen = ref [] in
  G.iter_neighbors g 2 (fun v -> seen := v :: !seen);
  Alcotest.check (Alcotest.list Alcotest.int) "iter ascending" [ 0; 1; 3 ]
    (List.rev !seen);
  checki "fold sum" 4 (G.fold_neighbors g 2 ~init:0 ~f:( + ));
  checki "fold empty" 0 (G.fold_neighbors (G.empty 2) 1 ~init:0 ~f:( + ))

let test_graph_mem_edge_out_of_range () =
  checkb "beyond n" false (G.mem_edge path5 0 7);
  checkb "negative" false (G.mem_edge path5 (-1) 2)

let test_graph_union_overlap () =
  let a = G.create ~n:4 ~edges:[ (0, 1); (1, 2); (0, 3) ] in
  let b = G.create ~n:4 ~edges:[ (1, 2); (2, 3); (1, 3) ] in
  let u = G.union a b in
  checki "deduplicated union" 5 (G.edge_count u);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "canonical edge list"
    [ (0, 1); (0, 3); (1, 2); (1, 3); (2, 3) ]
    (G.edges u);
  (* union result keeps sorted CSR slices *)
  Alcotest.check (Alcotest.array Alcotest.int) "slice of 1" [| 0; 2; 3 |]
    (G.neighbors u 1);
  Alcotest.check (Alcotest.array Alcotest.int) "slice of 3" [| 0; 1; 2 |]
    (G.neighbors u 3)

let test_graph_bfs () =
  let d = G.bfs_distances path5 0 in
  Alcotest.check (Alcotest.array Alcotest.int) "distances" [| 0; 1; 2; 3; 4 |] d;
  let disconnected = G.create ~n:3 ~edges:[ (0, 1) ] in
  checki "unreachable" max_int (G.bfs_distances disconnected 0).(2)

let test_graph_connectivity () =
  checkb "path connected" true (G.is_connected path5);
  checkb "empty n=1" true (G.is_connected (G.empty 1));
  checkb "empty n=0" true (G.is_connected (G.empty 0));
  checkb "disconnected" false (G.is_connected (G.empty 2))

let test_graph_diameter () =
  checki "path diameter" 4 (G.diameter path5);
  let k3 = G.create ~n:3 ~edges:[ (0, 1); (1, 2); (0, 2) ] in
  checki "clique diameter" 1 (G.diameter k3);
  checki "single" 0 (G.diameter (G.empty 1));
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Graph.diameter: disconnected graph") (fun () ->
      ignore (G.diameter (G.empty 2)))

(* --- Embedding --- *)

let test_embedding_distance () =
  let p = { E.x = 0.0; y = 0.0 } and q = { E.x = 3.0; y = 4.0 } in
  Alcotest.check (Alcotest.float 1e-9) "3-4-5" 5.0 (E.distance p q);
  let emb = E.create [| p; q |] in
  Alcotest.check (Alcotest.float 1e-9) "vertex distance" 5.0 (E.vertex_distance emb 0 1);
  checki "n" 2 (E.n emb)

(* --- Grid --- *)

(* The 3x3 neighborhood must cover every vertex within the cell side of
   the query point (u included), and visit ids as ascending per-cell
   runs. *)
let test_grid_neighborhood_covers () =
  let rng = Rng.of_int 31 in
  let n = 80 in
  let pts =
    Array.init n (fun _ ->
        { E.x = Rng.float rng 5.0 -. 2.5; y = Rng.float rng 5.0 -. 2.5 })
  in
  let emb = E.create pts in
  List.iter
    (fun cell ->
      let grid = Grid.create ~cell emb in
      for u = 0 to n - 1 do
        let seen = Array.make n 0 in
        let prev = ref (-1) and runs = ref 1 in
        Grid.iter_neighborhood grid u (fun v ->
            seen.(v) <- seen.(v) + 1;
            if v <= !prev then incr runs;
            prev := v);
        checkb "at most 9 ascending runs" true (!runs <= 9);
        checki "u itself visited once" 1 seen.(u);
        for v = 0 to n - 1 do
          if E.vertex_distance emb u v <= cell then
            checki
              (Printf.sprintf "cell %.1f: u=%d covers v=%d" cell u v)
              1 seen.(v)
        done
      done)
    [ 1.0; 1.5 ];
  Alcotest.check_raises "cell must be positive"
    (Invalid_argument "Grid.create: cell size must be positive") (fun () ->
      ignore (Grid.create ~cell:0.0 emb))

(* Points exactly on the bounding box's right/top edge sit at
   (max - min) / cell = cols exactly; the cell index must be clamped
   into the last column/row, not fall off the grid.  Regression for the
   boundary case, exercised with cell sizes that divide the extent
   evenly (where the quotient is exact) and ones that don't. *)
let test_grid_boundary_clamped () =
  List.iter
    (fun cell ->
      let pts =
        [|
          { E.x = 0.0; y = 0.0 };
          { E.x = 4.0; y = 0.0 };      (* right edge *)
          { E.x = 0.0; y = 4.0 };      (* top edge *)
          { E.x = 4.0; y = 4.0 };      (* corner *)
          { E.x = 2.0; y = 4.0 };
          { E.x = 4.0; y = 1.7 };
        |]
      in
      let emb = E.create pts in
      let grid = Grid.create ~cell emb in
      let cols = Grid.cols grid and rows = Grid.rows grid in
      Array.iteri
        (fun v _ ->
          let c = Grid.cell_index grid v in
          checkb
            (Printf.sprintf "cell %.2f: vertex %d index %d in range" cell v c)
            true
            (c >= 0 && c < cols * rows);
          (* Clamping must land edge points in the *last* column/row, so
             the 3x3 neighborhood still covers their true neighbors. *)
          let col = c mod cols and row = c / cols in
          let { E.x; y } = E.point emb v in
          if x >= 4.0 then checki "right edge in last column" (cols - 1) col;
          if y >= 4.0 then checki "top edge in last row" (rows - 1) row)
        pts;
      (* Coverage still holds across the boundary: corner (4,4) and
         mid-top (2,4) see each other when within one cell side. *)
      for u = 0 to Array.length pts - 1 do
        let seen = Array.make (Array.length pts) false in
        Grid.iter_neighborhood grid u (fun v -> seen.(v) <- true);
        Array.iteri
          (fun v _ ->
            if E.vertex_distance emb u v <= cell then
              checkb (Printf.sprintf "cell %.2f: %d covers %d" cell u v) true
                seen.(v))
          pts
      done)
    [ 1.0; 2.0; 4.0; 0.4; 1.3 ]

(* --- Dual --- *)

let test_dual_subset_enforced () =
  let g = G.create ~n:2 ~edges:[ (0, 1) ] in
  let g' = G.empty 2 in
  Alcotest.check_raises "E ⊆ E'" (Invalid_argument "Dual.create: E is not a subset of E'")
    (fun () -> ignore (Dual.create ~g ~g' ()))

let test_dual_degrees () =
  let dual = Geo.clique 6 in
  checki "delta" 6 (Dual.delta dual);
  checki "delta'" 6 (Dual.delta' dual);
  checki "n" 6 (Dual.n dual)

let test_dual_unreliable_edges () =
  let dual = Geo.line ~n:3 ~spacing:0.9 ~r:2.0 () in
  (* consecutive reliable; two-hop (distance 1.8 ≤ 2) unreliable *)
  checki "one unreliable edge" 1 (Array.length (Dual.unreliable_edges dual));
  checkb "it is the 2-hop pair" true (Dual.unreliable_edges dual = [| (0, 2) |])

let test_dual_incidence_csr () =
  (* The flat incidence must agree with the canonical edge array: every
     (endpoint, edge-index) pair appears exactly once per endpoint. *)
  let dual = Geo.grid ~rows:3 ~cols:4 ~spacing:1.0 ~r:1.5 () in
  let edges = Dual.unreliable_edges dual in
  let m = Array.length edges in
  checki "unreliable_count" m (Dual.unreliable_count dual);
  let off, nbr, eidx = Dual.unreliable_incidence_csr dual in
  checki "offsets length" (Dual.n dual + 1) (Array.length off);
  checki "incidence entries" (2 * m) (Array.length nbr);
  checki "edge-index entries" (2 * m) (Array.length eidx);
  let seen = Hashtbl.create 64 in
  for u = 0 to Dual.n dual - 1 do
    Dual.iter_unreliable_incident dual u (fun v e ->
        let a, b = edges.(e) in
        checkb "incident entry matches edge" true
          ((a = u && b = v) || (a = v && b = u));
        checkb "fresh (u, e) pair" false (Hashtbl.mem seen (u, e));
        Hashtbl.add seen (u, e) ())
  done;
  checki "every edge incident to both endpoints" (2 * m) (Hashtbl.length seen)

let test_dual_create_large () =
  (* The r-geographic check must stay usable at n in the thousands: this
     is quadratic-sensitive, so a long line flushes out any all-pairs
     scan (previously ~2.5e7 pair checks; grid-bucketed it is linear). *)
  let n = 5000 in
  let dual = Geo.line ~n ~spacing:0.9 ~r:2.0 () in
  checki "n" n (Dual.n dual);
  checkb "r-geographic" true (Dual.is_r_geographic dual);
  checki "two-hop grey edges" (n - 2) (Dual.unreliable_count dual)

let test_dual_geographic_validation () =
  (* Two points at distance 0.5 with no reliable edge: invalid. *)
  let emb = E.create [| { E.x = 0.0; y = 0.0 }; { E.x = 0.5; y = 0.0 } |] in
  let g = G.empty 2 in
  Alcotest.check_raises "close pair needs G edge"
    (Invalid_argument "Dual.create: embedding violates the r-geographic property")
    (fun () -> ignore (Dual.create ~embedding:emb ~g ~g':g ()))

let test_dual_distant_unreliable_invalid () =
  (* Edge in G' between points at distance > r: invalid. *)
  let emb = E.create [| { E.x = 0.0; y = 0.0 }; { E.x = 5.0; y = 0.0 } |] in
  let g = G.empty 2 in
  let g' = G.create ~n:2 ~edges:[ (0, 1) ] in
  Alcotest.check_raises "distant pair cannot be in G'"
    (Invalid_argument "Dual.create: embedding violates the r-geographic property")
    (fun () -> ignore (Dual.create ~embedding:emb ~r:1.5 ~g ~g' ()))

let test_dual_is_r_geographic () =
  let dual = Geo.line ~n:4 () in
  checkb "generator output is r-geographic" true (Dual.is_r_geographic dual);
  let bare = Dual.create ~g:(G.empty 2) ~g':(G.empty 2) () in
  checkb "no embedding: not checkable" false (Dual.is_r_geographic bare)

let test_dual_validate_false () =
  (* ~validate:false skips the geometric check (is_r_geographic can
     still expose the violation) but never the E ⊆ E' check. *)
  let emb = E.create [| { E.x = 0.0; y = 0.0 }; { E.x = 0.5; y = 0.0 } |] in
  let g = G.empty 2 in
  let dual = Dual.create ~embedding:emb ~validate:false ~g ~g':g () in
  checkb "violation detectable after the fact" false (Dual.is_r_geographic dual);
  Alcotest.check_raises "subset check still enforced"
    (Invalid_argument "Dual.create: E is not a subset of E'") (fun () ->
      ignore
        (Dual.create ~validate:false
           ~g:(G.create ~n:2 ~edges:[ (0, 1) ])
           ~g':(G.empty 2) ()))

(* --- Generators --- *)

let test_clique_structure () =
  let dual = Geo.clique 5 in
  checki "complete G" 10 (G.edge_count (Dual.g dual));
  checki "G' = G" 10 (G.edge_count (Dual.g' dual));
  checkb "r-geographic" true (Dual.is_r_geographic dual)

let test_line_structure () =
  let dual = Geo.line ~n:4 ~spacing:0.9 ~r:1.0 () in
  checki "chain edges" 3 (G.edge_count (Dual.g dual));
  checki "no unreliable" 0 (Array.length (Dual.unreliable_edges dual));
  let dual2 = Geo.line ~n:4 ~spacing:0.9 ~r:2.0 () in
  checki "two-hop grey edges" 2 (Array.length (Dual.unreliable_edges dual2))

let test_pair_singleton () =
  let p = Geo.pair () in
  checki "pair edge" 1 (G.edge_count (Dual.g p));
  let s = Geo.singleton () in
  checki "singleton" 1 (Dual.n s);
  checki "no edges" 0 (G.edge_count (Dual.g' s))

let test_gray_cluster_structure () =
  let k = 6 in
  let dual = Geo.gray_cluster ~k ~r:1.5 () in
  checki "n" (k + 2) (Dual.n dual);
  checkb "u-v reliable" true (G.mem_edge (Dual.g dual) 0 1);
  for i = 2 to k + 1 do
    checkb "u-grey unreliable" true
      (G.mem_edge (Dual.g' dual) 0 i && not (G.mem_edge (Dual.g dual) 0 i));
    checkb "v-grey absent" false (G.mem_edge (Dual.g' dual) 1 i)
  done;
  checkb "grey clique" true (G.mem_edge (Dual.g dual) 2 3);
  checkb "r-geographic" true (Dual.is_r_geographic dual);
  Alcotest.check_raises "small r rejected"
    (Invalid_argument "Geometric.gray_cluster: requires r >= 1.41") (fun () ->
      ignore (Geo.gray_cluster ~k:2 ~r:1.0 ()))

let test_star_unembedded () =
  let dual = Geo.star_unembedded ~leaves:7 in
  checki "hub degree" 7 (G.degree (Dual.g dual) 0);
  checki "delta" 8 (Dual.delta dual)

let test_grid_structure () =
  let dual = Geo.grid ~rows:3 ~cols:3 ~spacing:1.0 ~r:1.5 () in
  checki "n" 9 (Dual.n dual);
  (* orthogonal neighbors at distance 1.0 are reliable *)
  checkb "orthogonal reliable" true (G.mem_edge (Dual.g dual) 0 1);
  (* diagonal at √2 ≈ 1.414 ≤ 1.5 is grey-zone: unreliable *)
  checkb "diagonal unreliable" true
    (G.mem_edge (Dual.g' dual) 0 4 && not (G.mem_edge (Dual.g dual) 0 4));
  checkb "r-geographic" true (Dual.is_r_geographic dual)

let test_dense_disk () =
  let rng = Rng.of_int 3 in
  let dual = Geo.dense_disk ~rng ~n:12 in
  checki "clique edges" (12 * 11 / 2) (G.edge_count (Dual.g dual));
  checki "delta" 12 (Dual.delta dual)

let test_random_field_deterministic () =
  let mk seed =
    Geo.random_field ~rng:(Rng.of_int seed) ~n:25 ~width:4.0 ~height:4.0 ~r:1.5 ()
  in
  let a = mk 9 and b = mk 9 in
  checki "same edge count" (G.edge_count (Dual.g' a)) (G.edge_count (Dual.g' b));
  checkb "same edges" true (G.edges (Dual.g a) = G.edges (Dual.g b))

let test_cluster_field () =
  let rng = Rng.of_int 12 in
  let dual =
    Geo.cluster_field ~rng ~clusters:3 ~per_cluster:5 ~field:6.0 ~r:1.5 ()
  in
  checki "n" 15 (Dual.n dual);
  (* each cluster is co-located within spread 0.3 < 1: a reliable clique *)
  for c = 0 to 2 do
    for i = 0 to 4 do
      for j = i + 1 to 4 do
        checkb "intra-cluster reliable" true
          (G.mem_edge (Dual.g dual) ((c * 5) + i) ((c * 5) + j))
      done
    done
  done

(* --- Region partition --- *)

let region_fixture () =
  let rng = Rng.of_int 21 in
  let dual =
    Geo.random_field ~rng ~n:60 ~width:5.0 ~height:5.0 ~r:1.5 ~gray_g':0.7 ()
  in
  (dual, Region.of_dual dual)

let test_region_requires_embedding () =
  let bare = Dual.create ~g:(G.empty 2) ~g':(G.empty 2) () in
  Alcotest.check_raises "no embedding"
    (Invalid_argument "Region.of_dual: dual graph has no embedding") (fun () ->
      ignore (Region.of_dual bare))

let test_region_members_partition () =
  let dual, regions = region_fixture () in
  let n = Dual.n dual in
  let seen = Array.make n 0 in
  for x = 0 to Region.region_count regions - 1 do
    Array.iter (fun v -> seen.(v) <- seen.(v) + 1) (Region.members regions x)
  done;
  Array.iteri (fun v c -> checki (Printf.sprintf "vertex %d once" v) 1 c) seen

let test_region_members_close () =
  (* Any two members of one region are within distance 1 (region side 1/2),
     hence reliable neighbors — the Lemma A.3 ingredient. *)
  let dual, regions = region_fixture () in
  let emb = Option.get (Dual.embedding dual) in
  for x = 0 to Region.region_count regions - 1 do
    let m = Region.members regions x in
    Array.iter
      (fun u ->
        Array.iter
          (fun v ->
            if u <> v then begin
              checkb "within unit distance" true (E.vertex_distance emb u v <= 1.0);
              checkb "reliable neighbors" true (G.mem_edge (Dual.g dual) u v)
            end)
          m)
      m
  done

let test_region_vertex_consistency () =
  let _, regions = region_fixture () in
  for x = 0 to Region.region_count regions - 1 do
    Array.iter
      (fun v -> checki "member maps back" x (Region.region_of_vertex regions v))
      (Region.members regions x)
  done

let test_region_neighbors_symmetric () =
  let _, regions = region_fixture () in
  for x = 0 to Region.region_count regions - 1 do
    List.iter
      (fun y ->
        checkb "symmetric" true (List.mem x (Region.region_neighbors regions y)))
      (Region.region_neighbors regions x)
  done

let test_regions_within () =
  let _, regions = region_fixture () in
  let x = 0 in
  Alcotest.check (Alcotest.list Alcotest.int) "h=0 is self" [ x ]
    (Region.regions_within regions x 0);
  let h1 = Region.regions_within regions x 1 in
  checkb "h=1 contains self" true (List.mem x h1);
  List.iter
    (fun y -> checkb "h=1 contains neighbor" true (List.mem y h1))
    (Region.region_neighbors regions x);
  let counts =
    List.map (fun h -> List.length (Region.regions_within regions x h)) [ 0; 1; 2; 3 ]
  in
  checkb "monotone growth" true
    (List.for_all2 ( <= ) counts (List.tl counts @ [ max_int ]))

let test_region_f_bounded () =
  (* Lemma A.2 shape: regions within h hops grow at most quadratically —
     each hop reaches at most distance r + diag, so the h-ball fits in a
     disk of radius h·(r + 1) and holds ≤ c·r²·(h+1)² half-unit squares. *)
  let dual, regions = region_fixture () in
  let r = Dual.r dual in
  for h = 0 to 3 do
    let count = List.length (Region.regions_within regions 0 h) in
    let bound =
      int_of_float
        (Float.ceil (16.0 *. (r +. 1.0) *. (r +. 1.0))
        *. float_of_int ((h + 1) * (h + 1)))
    in
    checkb (Printf.sprintf "f-bounded at h=%d" h) true (count <= bound)
  done

let test_region_max_members_le_delta () =
  let dual, regions = region_fixture () in
  checkb "max region size <= Δ (Lemma A.3)" true
    (Region.max_members regions <= Dual.delta dual)

(* --- qcheck properties --- *)

(* The historical all-pairs generator, re-implemented naively: points
   drawn exactly as random_field draws them, then every pair (u, v) in
   lexicographic order — d <= 1 reliable, 1 < d <= r grey with one
   gray_g' draw (and a nested gray_g draw on success).  The grid-bucketed
   generator must consume the rng identically and produce identical
   graphs. *)
let naive_random_field ~seed ~n ~width ~height ~r ~gray_g' ~gray_g =
  let rng = Rng.of_int seed in
  let points =
    Array.init n (fun _ ->
        { E.x = Rng.float rng width; y = Rng.float rng height })
  in
  let emb = E.create points in
  let reliable = ref [] and all = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = E.vertex_distance emb u v in
      if d <= 1.0 then begin
        reliable := (u, v) :: !reliable;
        all := (u, v) :: !all
      end
      else if d <= r then
        if Rng.bernoulli rng gray_g' then begin
          all := (u, v) :: !all;
          if Rng.bernoulli rng gray_g then reliable := (u, v) :: !reliable
        end
    done
  done;
  let g = G.create ~n ~edges:!reliable in
  let g' = G.create ~n ~edges:!all in
  Dual.create ~embedding:emb ~r ~g ~g' ()

let qcheck_cases =
  let open QCheck in
  [
    Test.make
      ~name:"bucketed generation matches the naive all-pairs reference"
      ~count:40
      (pair (int_range 0 60) small_int)
      (fun (n, seed) ->
        let fast =
          Geo.random_field ~rng:(Rng.of_int seed) ~n ~width:4.5 ~height:4.5
            ~r:1.6 ~gray_g':0.5 ~gray_g:0.2 ()
        in
        let slow =
          naive_random_field ~seed ~n ~width:4.5 ~height:4.5 ~r:1.6
            ~gray_g':0.5 ~gray_g:0.2
        in
        G.edges (Dual.g fast) = G.edges (Dual.g slow)
        && G.edges (Dual.g' fast) = G.edges (Dual.g' slow)
        && Dual.unreliable_edges fast = Dual.unreliable_edges slow);
    Test.make ~name:"random_field is r-geographic" ~count:25
      (pair (int_range 0 40) small_int)
      (fun (n, seed) ->
        let rng = Rng.of_int seed in
        let dual =
          Geo.random_field ~rng ~n ~width:4.0 ~height:4.0 ~r:1.5 ~gray_g':0.5
            ~gray_g:0.2 ()
        in
        Dual.is_r_geographic dual);
    Test.make ~name:"random_field has E ⊆ E'" ~count:25
      (pair (int_range 0 40) small_int)
      (fun (n, seed) ->
        let rng = Rng.of_int seed in
        let dual = Geo.random_field ~rng ~n ~width:4.0 ~height:4.0 ~r:1.5 () in
        G.is_subgraph (Dual.g dual) (Dual.g' dual));
    Test.make ~name:"delta' bounds delta" ~count:25
      (pair (int_range 1 40) small_int)
      (fun (n, seed) ->
        let rng = Rng.of_int seed in
        let dual = Geo.random_field ~rng ~n ~width:4.0 ~height:4.0 ~r:1.5 () in
        Dual.delta dual <= Dual.delta' dual);
    Test.make ~name:"Lemma A.3 shape: delta' bounded by a geometric multiple of delta"
      ~count:25
      (pair (int_range 1 40) small_int)
      (fun (n, seed) ->
        (* Lemma A.3: delta' <= c_r * delta with c_r = c1 r^2; our grid
           partition gives the generous concrete bound 4 (r + 1)^2. *)
        let rng = Rng.of_int seed in
        let dual =
          Geo.random_field ~rng ~n ~width:4.0 ~height:4.0 ~r:1.5 ~gray_g':1.0 ()
        in
        let r = Dual.r dual in
        let c_r = 4.0 *. (r +. 1.0) *. (r +. 1.0) in
        float_of_int (Dual.delta' dual) <= c_r *. float_of_int (Dual.delta dual));
    Test.make ~name:"region partition covers all vertices" ~count:20
      (pair (int_range 1 40) small_int)
      (fun (n, seed) ->
        let rng = Rng.of_int seed in
        let dual = Geo.random_field ~rng ~n ~width:4.0 ~height:4.0 ~r:1.5 () in
        let regions = Region.of_dual dual in
        let total =
          List.fold_left
            (fun acc x -> acc + Array.length (Region.members regions x))
            0
            (List.init (Region.region_count regions) Fun.id)
        in
        total = n);
  ]

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("graph dedupe", test_graph_dedupe);
      ("graph self loop", test_graph_self_loop);
      ("graph out of range", test_graph_out_of_range);
      ("graph neighbors sorted", test_graph_neighbors_sorted);
      ("graph degree/mem", test_graph_degree_mem);
      ("graph edges canonical", test_graph_edges_canonical);
      ("graph max closed degree", test_graph_max_closed_degree);
      ("graph subgraph", test_graph_subgraph);
      ("graph union", test_graph_union);
      ("graph of_sorted_arrays", test_graph_of_sorted_arrays);
      ("graph csr layout", test_graph_csr_layout);
      ("grid neighborhood covers", test_grid_neighborhood_covers);
      ("grid boundary clamped", test_grid_boundary_clamped);
      ("graph iter/fold neighbors", test_graph_iter_fold_neighbors);
      ("graph mem_edge out of range", test_graph_mem_edge_out_of_range);
      ("graph union overlap", test_graph_union_overlap);
      ("graph bfs", test_graph_bfs);
      ("graph connectivity", test_graph_connectivity);
      ("graph diameter", test_graph_diameter);
      ("embedding distance", test_embedding_distance);
      ("dual subset enforced", test_dual_subset_enforced);
      ("dual degrees", test_dual_degrees);
      ("dual unreliable edges", test_dual_unreliable_edges);
      ("dual incidence csr", test_dual_incidence_csr);
      ("dual create large", test_dual_create_large);
      ("dual geographic validation", test_dual_geographic_validation);
      ("dual distant unreliable invalid", test_dual_distant_unreliable_invalid);
      ("dual is_r_geographic", test_dual_is_r_geographic);
      ("dual validate:false", test_dual_validate_false);
      ("clique structure", test_clique_structure);
      ("line structure", test_line_structure);
      ("pair/singleton", test_pair_singleton);
      ("gray cluster structure", test_gray_cluster_structure);
      ("star unembedded", test_star_unembedded);
      ("grid structure", test_grid_structure);
      ("dense disk", test_dense_disk);
      ("random field deterministic", test_random_field_deterministic);
      ("cluster field", test_cluster_field);
      ("region requires embedding", test_region_requires_embedding);
      ("region members partition", test_region_members_partition);
      ("region members close", test_region_members_close);
      ("region vertex consistency", test_region_vertex_consistency);
      ("region neighbors symmetric", test_region_neighbors_symmetric);
      ("regions within", test_regions_within);
      ("region f-bounded", test_region_f_bounded);
      ("region size vs delta", test_region_max_members_le_delta);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
