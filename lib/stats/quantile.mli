(** Streaming quantile estimation in constant memory.

    A fixed-bin base-2 logarithmic histogram (the HDR-histogram idea):
    the value axis is cut into [sub] geometric sub-bins per octave
    between [lo] and [hi], so one bin spans a ratio of [2^(1/sub)] and a
    quantile read off the cumulative bin counts is correct to a bounded
    {e relative} error — [2^(1/(2·sub)) - 1] (≈ 2.2% at the default
    [sub = 16]) for values inside [\[lo, hi)] — independent of how many
    observations were folded in.  Memory is fixed at creation
    ([octaves·sub + 2] integer bins plus a few exact accumulators), so a
    long-horizon run can observe millions of latencies without the
    unbounded sample storage {!Summary} and raw {!Obs.Metrics}
    histograms need.

    [count], [sum], [mean], [min] and [max] are exact; only the interior
    percentiles are approximate.  Values below [lo] land in an underflow
    bin whose quantile reads back the exact minimum; values at or above
    [hi] land in an overflow bin that reads back the exact maximum — so
    estimates are always inside [\[min, max\]].  Observations must be
    non-negative and non-NaN ([Invalid_argument] otherwise — same
    poisoning argument as {!Summary.of_array}). *)

type t

val create : ?sub:int -> ?lo:float -> ?hi:float -> unit -> t
(** [create ()] covers [\[1e-9, 2^62)] at 16 sub-bins per octave
    (1,138 bins, ≈ 9 KB).  [sub] must be ≥ 1, [lo] positive and finite,
    [hi > lo]. *)

val observe : t -> float -> unit
(** Fold one value in.  O(1); the estimator itself allocates nothing
    (but the [float] argument is boxed at the call site on non-flambda
    compilers — hot paths should prefer {!observe_int}). *)

val observe_int : t -> int -> unit
(** [observe_int t k] = [observe t (float_of_int k)] with no boxing at
    the call boundary: the sample travels as an immediate int, so the
    call is genuinely allocation-free — what the serving engine uses
    for round-valued latencies and queue depths. *)

val count : t -> int

val sum : t -> float

val mean : t -> float
(** NaN when empty. *)

val min_value : t -> float
(** [infinity] when empty (so [min]/[max] fold correctly). *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q ∈ \[0, 1\]]: the nearest-rank quantile, read
    from the bins at geometric-midpoint resolution and clamped into
    [\[min, max\]].  NaN when empty; [Invalid_argument] on [q] outside
    [\[0, 1\]]. *)

val error_bound : t -> float
(** The worst-case relative error of {!quantile} for values inside
    [\[lo, hi)]: [2^(1/(2·sub)) - 1]. *)

val bins : t -> int
(** Number of integer bins held (fixed at creation) — the memory story
    in one number. *)

val reset : t -> unit
(** Forget all observations; bins and bounds are kept. *)
