(** Execution traces.

    The engine can report, for every round, the environment inputs, who
    transmitted what, what each node cleanly received (or ⊥), and the
    outputs each node emitted.  Specification checkers
    ({!Localcast.Seed_spec}, {!Localcast.Lb_spec}) are written against
    these records.

    Recording a full trace costs memory proportional to [rounds × n];
    long sweeps instead pass a streaming observer to the engine and keep
    nothing. *)

type ('msg, 'input, 'output) round_record = {
  round : int;
  inputs : 'input list array;  (** per node, environment inputs this round *)
  actions : 'msg Process.action array;  (** per node, this round's action *)
  delivered : 'msg option array;
      (** per node: [Some m] for a clean reception, [None] for ⊥ *)
  outputs : 'output list array;  (** per node, outputs emitted this round *)
}

type ('msg, 'input, 'output) t

val recorder :
  unit ->
  ('msg, 'input, 'output) t * (('msg, 'input, 'output) round_record -> unit)
(** A fresh trace plus the observer that appends to it. *)

val length : ('msg, 'input, 'output) t -> int
(** Number of recorded rounds. *)

val get : ('msg, 'input, 'output) t -> int -> ('msg, 'input, 'output) round_record

val iter :
  (('msg, 'input, 'output) round_record -> unit) -> ('msg, 'input, 'output) t -> unit

val fold :
  ('acc -> ('msg, 'input, 'output) round_record -> 'acc) ->
  'acc ->
  ('msg, 'input, 'output) t ->
  'acc

val outputs_of : ('msg, 'input, 'output) t -> int -> (int * 'output) list
(** [outputs_of t node]: all outputs of [node] as [(round, output)],
    in round order. *)

val deliveries_of : ('msg, 'input, 'output) t -> int -> (int * 'msg) list
(** All clean receptions of a node as [(round, message)]. *)

val transmission_count : ('msg, 'input, 'output) t -> int -> int
(** Number of rounds in which a node transmitted. *)
