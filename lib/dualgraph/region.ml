let square_side = 0.5

type t = {
  region_of_vertex : int array;
  members : int array array;
  adjacency : int list array;
}

(* Minimum Euclidean distance between two half-unit grid squares given
   their integer grid coordinates. *)
let square_distance (ix1, iy1) (ix2, iy2) =
  let axis a b =
    let gap = abs (a - b) in
    if gap <= 1 then 0.0 else float_of_int (gap - 1) *. square_side
  in
  let dx = axis ix1 ix2 and dy = axis iy1 iy2 in
  sqrt ((dx *. dx) +. (dy *. dy))

let coords_of_point (p : Embedding.point) =
  let f v = int_of_float (Float.floor (v /. square_side)) in
  (f p.Embedding.x, f p.Embedding.y)

let of_dual dual =
  match Dual.embedding dual with
  | None -> invalid_arg "Region.of_dual: dual graph has no embedding"
  | Some emb ->
      let n = Dual.n dual in
      let table = Hashtbl.create 64 in
      let coords = ref [] in
      let region_of_vertex = Array.make n (-1) in
      for v = 0 to n - 1 do
        let c = coords_of_point (Embedding.point emb v) in
        let idx =
          match Hashtbl.find_opt table c with
          | Some idx -> idx
          | None ->
              let idx = Hashtbl.length table in
              Hashtbl.add table c idx;
              coords := c :: !coords;
              idx
        in
        region_of_vertex.(v) <- idx
      done;
      let k = Hashtbl.length table in
      let coord_array = Array.make k (0, 0) in
      Hashtbl.iter (fun c idx -> coord_array.(idx) <- c) table;
      let buckets = Array.make k [] in
      for v = n - 1 downto 0 do
        let x = region_of_vertex.(v) in
        buckets.(x) <- v :: buckets.(x)
      done;
      let members = Array.map Array.of_list buckets in
      let r = Dual.r dual in
      let adjacency =
        Array.init k (fun x ->
            List.filter_map
              (fun y ->
                if y <> x && square_distance coord_array.(x) coord_array.(y) <= r
                then Some y
                else None)
              (List.init k Fun.id))
      in
      { region_of_vertex; members; adjacency }

let region_count t = Array.length t.members
let region_of_vertex t v = t.region_of_vertex.(v)
let members t x = t.members.(x)
let region_neighbors t x = t.adjacency.(x)

let regions_within t x h =
  let k = region_count t in
  let dist = Array.make k max_int in
  let queue = Queue.create () in
  dist.(x) <- 0;
  Queue.add x queue;
  while not (Queue.is_empty queue) do
    let y = Queue.pop queue in
    if dist.(y) < h then
      List.iter
        (fun z ->
          if dist.(z) = max_int then begin
            dist.(z) <- dist.(y) + 1;
            Queue.add z queue
          end)
        t.adjacency.(y)
  done;
  List.filter (fun y -> dist.(y) <= h) (List.init k Fun.id)

let max_members t =
  Array.fold_left (fun acc m -> max acc (Array.length m)) 0 t.members
