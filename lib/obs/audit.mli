(** Online spec-violation auditor over the event stream.

    The auditor consumes events as they are emitted (register {!observe}
    with {!Sink.on_event}, or replay a JSONL file through it) and flags,
    the moment they become detectable:

    - {e Late acknowledgements}: an [Ack] whose latency exceeds [t_ack];
    - {e Missing acknowledgements}: a [Bcast] still unanswered once
      [t_ack] rounds have elapsed (checked online at every [Round_end]
      and finally at {!finish}, matching [Lb_spec]'s end-of-run rule);
    - {e Progress deadline misses} (needs [t_prog] and [g]): a
      (receiver, phase) pair whose receiver had a reliable neighbor
      actively broadcasting through the {e entire} phase — activity is
      reconstructed from [Bcast]/[Ack] events — yet saw no qualifying
      reception ([Progress] event) during it;
    - {e δ-bound breaches} (needs [delta_bound] and [g'_closed]): a
      vertex whose closed G'-neighborhood committed to more than
      [delta_bound] distinct seed owners ([Seed_commit] events), checked
      once per phase.

    Each violation carries the window of events that led up to it (the
    auditor's own bounded ring of recent events), so a deadline miss
    arrives with its causal context instead of a bare counter.

    Progress and δ auditing interpret the protocol-level events that
    [Localcast.Lb_obs] adds to the stream; a stream containing only the
    engine's structural events still gets full acknowledgement
    auditing.

    {e Churn.}  The auditor is fault-aware through the stream alone: a
    [Crash] event waives the crashed node's outstanding ack obligations
    (dead senders owe nothing) and taints it for the open progress phase,
    so a receiver that dies mid-window yields neither [Late_ack] /
    [Missing_ack] nor [Progress_miss] false breaches; a [Restart] resumes
    obligations from the next phase boundary on.  Verdicts are therefore
    survivor-scoped, matching [Lb_spec]'s accounting under a
    [Faults.Plan]. *)

type kind =
  | Late_ack of { latency : int }  (** latency > t_ack *)
  | Missing_ack of { bcast_round : int }
      (** unanswered with > t_ack rounds elapsed *)
  | Progress_miss of { phase : int }
      (** opportunity (fully-active reliable neighbor) without a
          qualifying reception *)
  | Delta_breach of { owners : int; bound : int }
      (** distinct committed seed owners in the closed G'-neighborhood
          above the bound *)

type violation = {
  kind : kind;
  node : int;  (** the vertex the obligation belonged to *)
  round : int;  (** the round at which the violation became detectable *)
  detail : string;  (** human-readable one-liner *)
  window : Event.t list;
      (** the auditor's recent-event window at detection time, oldest
          first — the evidence trail *)
}

val pp_violation : Format.formatter -> violation -> unit
(** The [detail] line; print [window] yourself for the full context. *)

type t

val create :
  ?window:int ->
  ?t_prog:int ->
  ?delta_bound:int ->
  ?g:int array array ->
  ?g'_closed:int array array ->
  t_ack:int ->
  unit ->
  t
(** [window] (default 64) bounds the evidence ring.  [g] is the reliable
    adjacency (enables progress auditing together with [t_prog]);
    [g'_closed] the {e closed} G'-neighborhoods, vertex included (enables
    δ auditing together with [delta_bound]).  [Localcast.Lb_obs.auditor]
    derives all of these from a topology and a parameter set. *)

val observe : t -> Event.t -> unit
(** Feed one event.  Events must arrive in round order (any order within
    a round is fine as long as [Round_end] comes last, which the engine
    guarantees). *)

val finish : t -> unit
(** Close the stream: judge still-outstanding acknowledgements against
    the rounds that actually elapsed and close the open phase.
    Idempotent; further {!observe} calls are errors. *)

val violations : t -> violation list
(** All violations so far, in detection order.  Callable before
    {!finish} for live monitoring. *)

val ack_latencies : t -> (int * int * int) list
(** Every acknowledged bcast as [(node, uid, latency)], in ack order —
    the auditor's reconstruction of the experiment ack-latency table
    (includes acks that arrived after their deadline was already
    flagged). *)

val rounds_seen : t -> int
(** Number of rounds the stream has covered (last round + 1). *)
