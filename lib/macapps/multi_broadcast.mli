(** Multi-message network-wide broadcast over the abstract MAC layer.

    The workload of the paper's references [9, 10] (Ghaffari–Kantor–
    Lynch–Newport, PODC'14): [k] distinct messages originate at arbitrary
    sources and every node must deliver all of them.  Each node relays
    each message once, queueing relays while its single MAC endpoint is
    busy — the standard store-and-forward discipline on top of
    bcast/ack/recv events. *)

type result = {
  delivered : bool array array;
      (** [delivered.(i).(v)]: message [i] reached node [v] *)
  complete_messages : int;  (** messages that reached every node *)
  completion_round : int option;
      (** first round when all messages reached all nodes *)
  relays : int;  (** total MAC bcast requests issued (sources included) *)
  rounds_executed : int;
}

val run :
  params:Localcast.Params.t ->
  rng:Prng.Rng.t ->
  dual:Dualgraph.Dual.t ->
  scheduler:Radiosim.Scheduler.t ->
  sources:int list ->
  max_rounds:int ->
  unit ->
  result
(** [run ~sources] starts one message per listed source (message [i]
    originates at [List.nth sources i]; a node may appear several times
    and will originate several messages, serialized through its MAC
    endpoint).  Message identity travels in the payload [tag] as
    [i + 1]. *)
