module Dual = Dualgraph.Dual
module Graph = Dualgraph.Graph

(* Per-node incidence of unreliable edges in flat CSR form, shared with
   the dual graph that precomputed it: node [u]'s incident unreliable
   edges occupy slots [off.(u) .. off.(u+1) - 1]. *)
type incidence = {
  inc_off : int array;
  inc_nbr : int array;
  inc_edge : int array;
}

let unreliable_incidence dual =
  let inc_off, inc_nbr, inc_edge = Dual.unreliable_incidence_csr dual in
  { inc_off; inc_nbr; inc_edge }

(* The shared round loop, resolved transmitter-centrically over a
   sparse activation set.

   [fill_sparse] writes the round's active unreliable-edge {e indices}
   into the reusable index buffer (ascending, one slot per active edge)
   and returns their count, before any reception is resolved; for
   oblivious schedulers it ignores the transmission vector, for adaptive
   adversaries (Adaptive.t) it may inspect it.  [resolved_of count] is
   the number of per-edge scheduler resolutions that fill performed
   (= count for natively sparse schedulers, m for dense ones) — it only
   feeds the [scheduler.edges_resolved] counter.

   From the index list the loop builds the round's unreliable adjacency
   {e for the active edges only} (intrusive per-node lists over
   preallocated arrays, heads reset edge-by-edge after the round), so
   per-round scheduler + topology cost is proportional to the active
   set, not to m.  Reception then iterates only over the round's
   transmitters: each transmitter pushes its message along its reliable
   CSR slice and its active unreliable adjacency into per-listener
   (first-message, collision) scratch — O(T·Δ + active + n) per round.
   All scratch never escapes, so it is allocated once per run. *)
let run_with ~fill_sparse ~resolved_of ~dual ~nodes ~env ~rounds ?incidence
    ?observer ?stop ?sink ?metrics ?faults ?revive
    ?(reception = Reception.dual_graph) () =
  let n = Dual.n dual in
  (* The reception model is fixed for the whole run.  Dual_graph keeps
     the loop below branch-for-branch the pre-refactor engine (the
     property suite and the golden corpus hold it to bit-identical
     traces); Sinr swaps only the reception phase — scheduling, fault
     transitions, event emission and record serialization are shared. *)
  let sinr_field =
    match reception with
    | Reception.Dual_graph -> None
    | Reception.Sinr p -> Some (Sinr.create ~params:p dual)
  in
  (* Under the dual-graph model a jam window suppresses the victim's
     transmission; under SINR it is additive noise at the victim's
     receiver instead — the jammer cannot silence a physical radio, only
     drown what it hears. *)
  let jam_suppresses = Option.is_none sinr_field in
  if Array.length nodes <> n then
    invalid_arg "Engine.run: node array size differs from vertex count";
  if rounds < 0 then invalid_arg "Engine.run: negative round count";
  (match faults with
  | Some plan when Faults.Plan.n plan <> n ->
      invalid_arg "Engine.run: fault plan node count differs from vertex count"
  | _ -> ());
  (* Restarts swap processes in place; work on a copy so the caller's
     node array survives the run. *)
  let nodes = match faults with None -> nodes | Some _ -> Array.copy nodes in
  let dead = Bytes.make (max n 1) '\000' in
  let fault_cursor =
    match faults with None -> None | Some plan -> Some (Faults.Plan.cursor plan)
  in
  (* Liveness closures: one indirect call per node per round when a plan
     is attached, a constant-false closure otherwise — the no-fault path
     stays branch-for-branch the PR 4 loop. *)
  let is_dead =
    match faults with
    | None -> fun _ -> false
    | Some _ -> fun v -> Bytes.unsafe_get dead v = '\001'
  in
  let round = ref 0 in
  let jammed =
    match faults with
    | None -> fun _ -> false
    | Some plan when not (Faults.Plan.has_jams plan) -> fun _ -> false
    | Some plan -> fun v -> Faults.Plan.jammed plan ~node:v ~round:!round
  in
  (match incidence with
  | Some inc ->
      if Array.length inc.inc_off <> n + 1 then
        invalid_arg "Engine.run: incidence/graph mismatch"
  | None -> ());
  let g_off = Graph.csr_offsets (Dual.g dual) in
  let g_adj = Graph.csr_neighbors (Dual.g dual) in
  let m = Dual.unreliable_count dual in
  (* Unreliable edge endpoints in flat form, plus the round's sparse
     activation buffer and the intrusive per-round adjacency (slots 2k
     and 2k+1 belong to the k-th active edge). *)
  let eu = Array.make (max m 1) 0 and ev = Array.make (max m 1) 0 in
  Array.iteri
    (fun i (u, v) ->
      eu.(i) <- u;
      ev.(i) <- v)
    (Dual.unreliable_edges dual);
  let sparse = Array.make (max m 1) 0 in
  let adj_head = Array.make (max n 1) (-1) in
  let adj_next = Array.make (max (2 * m) 1) 0 in
  let adj_nbr = Array.make (max (2 * m) 1) 0 in
  let ctr_active, ctr_resolved =
    match metrics with
    | None -> (None, None)
    | Some reg ->
        ( Some (Obs.Metrics.counter reg "engine.active_edges"),
          Some (Obs.Metrics.counter reg "scheduler.edges_resolved") )
  in
  let ctr_crash, ctr_restart, ctr_jam =
    match (metrics, faults) with
    | Some reg, Some _ ->
        ( Some (Obs.Metrics.counter reg "faults.crashes"),
          Some (Obs.Metrics.counter reg "faults.restarts"),
          Some (Obs.Metrics.counter reg "faults.jams") )
    | _ -> (None, None, None)
  in
  (* Per-listener reception scratch, reset (when touched) every round. *)
  let heard = Array.make (max n 1) None in
  let collided = Bytes.make (max n 1) '\000' in
  let transmitters = Array.make (max n 1) 0 in
  let push u sm =
    if Bytes.unsafe_get collided u = '\000' then
      match Array.unsafe_get heard u with
      | None -> Array.unsafe_set heard u sm
      | Some _ -> Bytes.unsafe_set collided u '\001'
  in
  (* A round record can escape the loop only through [observer] or
     [stop]; when neither is supplied, the per-round arrays are reused
     across rounds instead of being reallocated (the engine's dominant
     allocation cost on long unobserved runs). *)
  let record_escapes = observer <> None || stop <> None in
  let buffers = ref None in
  let executed = ref 0 in
  let continue = ref true in
  while !continue && !round < rounds do
    let t = !round in
    (* Event emission is gated on the sink's presence per site, never per
       element: the disabled path executes exactly the PR 2 loop (the
       property suite asserts bit-identical traces, the micro-benchmarks
       a <= 2% regression budget). *)
    (match sink with
    | None -> ()
    | Some s -> Obs.Sink.emit s (Obs.Event.Round_start { round = t }));
    (* Fault transitions take effect at the top of the round: a node
       crashing at round t is already silent in t, a node restarting at t
       already participates in t (with the fresh process [revive]
       supplies — without [revive], the frozen pre-crash state resumes). *)
    (match fault_cursor with
    | None -> ()
    | Some cur ->
        Faults.Plan.apply cur ~round:t (fun node ev ->
            match ev with
            | Faults.Plan.Crash ->
                Bytes.unsafe_set dead node '\001';
                (match sink with
                | None -> ()
                | Some s ->
                    Obs.Sink.emit s (Obs.Event.Crash { round = t; node }));
                (match ctr_crash with
                | Some c -> Obs.Metrics.incr c
                | None -> ())
            | Faults.Plan.Restart ->
                Bytes.unsafe_set dead node '\000';
                (match revive with
                | Some fresh -> nodes.(node) <- fresh ~node ~round:t
                | None -> ());
                (match sink with
                | None -> ()
                | Some s ->
                    Obs.Sink.emit s (Obs.Event.Restart { round = t; node }));
                (match ctr_restart with
                | Some c -> Obs.Metrics.incr c
                | None -> ())));
    (* Step 1 + 2: inputs, then transmit/listen decisions.  A dead node
       is invisible to its environment and its process is not stepped; a
       jammed transmitter is charged for its decision but taken off the
       air before reception is resolved. *)
    let inputs, actions, transmitting, delivered, outputs =
      match !buffers with
      | Some b -> b
      | None ->
          let b =
            ( Array.make n [],
              (Array.make n Process.Listen : _ Process.action array),
              Array.make n false,
              Array.make n None,
              Array.make n [] )
          in
          if not record_escapes then buffers := Some b;
          b
    in
    for v = 0 to n - 1 do
      inputs.(v) <- (if is_dead v then [] else env.Env.inputs ~round:t ~node:v)
    done;
    for v = 0 to n - 1 do
      if is_dead v then begin
        actions.(v) <- Process.Listen;
        transmitting.(v) <- false
      end
      else begin
        let a = nodes.(v).Process.decide ~round:t inputs.(v) in
        actions.(v) <- a;
        transmitting.(v) <-
          (match a with
          | Process.Transmit _ ->
              if jam_suppresses && jammed v then begin
                (match ctr_jam with Some c -> Obs.Metrics.incr c | None -> ());
                false
              end
              else true
          | Process.Listen -> false)
      end
    done;
    (* Step 3: receptions under the round's topology, driven by the
       transmitter set. *)
    let tcount = ref 0 in
    for v = 0 to n - 1 do
      if Array.unsafe_get transmitting v then begin
        Array.unsafe_set transmitters !tcount v;
        incr tcount
      end
    done;
    let acount = ref 0 in
    (match sinr_field with
    | Some f ->
        if !tcount > 0 then begin
          (* SINR reception: every listener's outcome is a pure function
             of the global transmitter set.  The link scheduler is not
             consulted (interference replaces adversarial edge choice),
             so no activation set is resolved and [engine.active_edges]
             does not advance.  Work is transmitter-centric: only the
             round's active columns are visited — a listener of an
             inactive column has no in-band candidate and decodes -1,
             i.e. its scratch stays exactly as silence left it. *)
          Sinr.load_round f ~transmitters ~count:!tcount;
          (* The reference path charged faults.jams once per jammed
             alive listener in every contended round, whether or not
             anything was in its band; keep that meaning with a
             dedicated counting pass (gated off unless a plan actually
             schedules jams — without one the counter stays 0 anyway). *)
          (match (ctr_jam, faults) with
          | Some c, Some plan when Faults.Plan.has_jams plan ->
              for u = 0 to n - 1 do
                if
                  (not (Array.unsafe_get transmitting u))
                  && (not (is_dead u))
                  && jammed u
                then Obs.Metrics.incr c
              done
          | _ -> ());
          let act, nact = Sinr.active_columns f in
          let soff = Sinr.slot_off f and snode = Sinr.slot_node f in
          for a = 0 to nact - 1 do
            let c = Array.unsafe_get act a in
            let lo = Array.unsafe_get soff c
            and hi = Array.unsafe_get soff (c + 1) in
            Sinr.scan_slots f ~column:c ~lo ~hi;
            for s = lo to hi - 1 do
              let u = Array.unsafe_get snode s in
              if (not (Array.unsafe_get transmitting u)) && not (is_dead u)
              then begin
                match Sinr.verdict f ~jammed:(jammed u) ~slot:s with
                | -1 -> ()
                | -2 -> Bytes.unsafe_set collided u '\001'
                | v -> (
                    match Array.unsafe_get actions v with
                    | Process.Transmit msg -> Array.unsafe_set heard u (Some msg)
                    | Process.Listen -> assert false)
              end
            done
          done
        end
    | None ->
    if !tcount > 0 then begin
      if m > 0 then begin
        acount := fill_sparse ~round:t ~transmitting sparse;
        (match ctr_active with
        | None -> ()
        | Some c ->
            Obs.Metrics.incr ~by:!acount c;
            (match ctr_resolved with
            | None -> ()
            | Some c -> Obs.Metrics.incr ~by:(resolved_of !acount) c));
        for k = 0 to !acount - 1 do
          let e = Array.unsafe_get sparse k in
          let a = Array.unsafe_get eu e and b = Array.unsafe_get ev e in
          Array.unsafe_set adj_nbr (2 * k) b;
          Array.unsafe_set adj_next (2 * k) (Array.unsafe_get adj_head a);
          Array.unsafe_set adj_head a (2 * k);
          Array.unsafe_set adj_nbr ((2 * k) + 1) a;
          Array.unsafe_set adj_next ((2 * k) + 1) (Array.unsafe_get adj_head b);
          Array.unsafe_set adj_head b ((2 * k) + 1)
        done
      end;
      for i = 0 to !tcount - 1 do
        let v = Array.unsafe_get transmitters i in
        match actions.(v) with
        | Process.Listen -> ()
        | Process.Transmit msg ->
            (* One [Some] per transmitter, shared across its receivers. *)
            let sm = Some msg in
            for j = g_off.(v) to g_off.(v + 1) - 1 do
              push (Array.unsafe_get g_adj j) sm
            done;
            let j = ref (Array.unsafe_get adj_head v) in
            while !j >= 0 do
              push (Array.unsafe_get adj_nbr !j) sm;
              j := Array.unsafe_get adj_next !j
            done
      done;
      (* Tear the round's adjacency back down, touching only the heads
         the active edges set. *)
      for k = 0 to !acount - 1 do
        let e = Array.unsafe_get sparse k in
        Array.unsafe_set adj_head (Array.unsafe_get eu e) (-1);
        Array.unsafe_set adj_head (Array.unsafe_get ev e) (-1)
      done
    end);
    for u = 0 to n - 1 do
      delivered.(u) <-
        (match actions.(u) with
        | Process.Transmit _ -> None
        | Process.Listen ->
            if is_dead u then None
            else if Bytes.unsafe_get collided u = '\001' then None
            else Array.unsafe_get heard u)
    done;
    (* Structural events: one Transmit per transmitter, one
       Deliver/Collision per affected listener.  Read the per-listener
       scratch before it is reset below. *)
    let deliveries = ref 0 and collisions = ref 0 in
    (match sink with
    | None -> ()
    | Some s ->
        for i = 0 to !tcount - 1 do
          Obs.Sink.emit s
            (Obs.Event.Transmit
               { round = t; node = Array.unsafe_get transmitters i })
        done;
        if !tcount > 0 then
          for u = 0 to n - 1 do
            match actions.(u) with
            | Process.Transmit _ -> ()
            | Process.Listen when is_dead u -> ()
            | Process.Listen ->
                if Bytes.unsafe_get collided u = '\001' then begin
                  incr collisions;
                  Obs.Sink.emit s (Obs.Event.Collision { round = t; node = u })
                end
                else if delivered.(u) <> None then begin
                  incr deliveries;
                  Obs.Sink.emit s (Obs.Event.Deliver { round = t; node = u })
                end
          done);
    if !tcount > 0 then begin
      Array.fill heard 0 n None;
      Bytes.fill collided 0 n '\000'
    end;
    (* Step 4: outputs, consumed by the environment. *)
    for v = 0 to n - 1 do
      outputs.(v) <-
        (if is_dead v then [] else nodes.(v).Process.absorb ~round:t delivered.(v))
    done;
    Array.iteri
      (fun v outs -> if outs <> [] then env.Env.notify ~round:t ~node:v outs)
      outputs;
    if record_escapes then begin
      let record = { Trace.round = t; inputs; actions; delivered; outputs } in
      (match observer with Some f -> f record | None -> ());
      match stop with Some p when p record -> continue := false | _ -> ()
    end;
    (* Round_end comes after the observer so that protocol-level events a
       translating observer emits (Localcast.Lb_obs) land inside the
       round's bracket. *)
    (match sink with
    | None -> ()
    | Some s ->
        Obs.Sink.emit s
          (Obs.Event.Round_end
             {
               round = t;
               transmitters = !tcount;
               deliveries = !deliveries;
               collisions = !collisions;
             }));
    incr executed;
    incr round
  done;
  !executed

let run ?observer ?stop ?incidence ?sink ?metrics ?faults ?revive ?reception
    ~dual ~scheduler ~nodes ~env ~rounds () =
  let m = Dual.unreliable_count dual in
  let fill_sparse ~round ~transmitting:_ buf =
    Scheduler.fill_active_sparse scheduler ~round ~m buf
  in
  let resolved_of count =
    if Scheduler.resolves_sparsely scheduler then count else m
  in
  run_with ~fill_sparse ~resolved_of ~dual ~nodes ~env ~rounds ?incidence
    ?observer ?stop ?sink ?metrics ?faults ?revive ?reception ()

let run_adaptive ?observer ?stop ?incidence ?sink ?metrics ?faults ?revive
    ?(reception = Reception.dual_graph) ~dual ~adversary ~nodes ~env ~rounds ()
    =
  (* The adaptive adversary's whole power is choosing which unreliable
     edges fire after seeing the transmitter set; SINR ignores those
     edges entirely, so combining the two would silently run a plain
     SINR simulation while claiming adversarial semantics. *)
  (match reception with
  | Reception.Dual_graph -> ()
  | Reception.Sinr _ ->
      invalid_arg
        "Engine.run_adaptive: the SINR reception model does not consult the \
         link scheduler, so an adaptive adversary has nothing to rule on; \
         use Engine.run with ~reception, or the dual-graph model");
  let m = Dual.unreliable_count dual in
  let fill_sparse ~round ~transmitting buf =
    let k = ref 0 in
    for edge = 0 to m - 1 do
      if Adaptive.choose adversary ~round ~transmitting ~edge then begin
        Array.unsafe_set buf !k edge;
        incr k
      end
    done;
    !k
  in
  (* The adversary is consulted once per (round, edge) regardless of the
     outcome. *)
  let resolved_of _count = m in
  run_with ~fill_sparse ~resolved_of ~dual ~nodes ~env ~rounds ?incidence
    ?observer ?stop ?sink ?metrics ?faults ?revive ()

(* The retained listener-centric resolver: for every listener, scan its
   topology neighborhood and apply the collision rule, querying the
   scheduler per (listener, incident edge).  O(n·Δ') per round and
   allocating; kept verbatim as the executable reference semantics — the
   property suite asserts the transmitter-centric engine produces
   bit-identical traces, and the micro-benchmarks report the speedup
   against it. *)
let run_reference ?observer ?stop ~dual ~scheduler ~nodes ~env ~rounds () =
  let n = Dual.n dual in
  if Array.length nodes <> n then
    invalid_arg "Engine.run: node array size differs from vertex count";
  if rounds < 0 then invalid_arg "Engine.run: negative round count";
  let executed = ref 0 in
  let continue = ref true in
  let round = ref 0 in
  while !continue && !round < rounds do
    let t = !round in
    let inputs = Array.init n (fun v -> env.Env.inputs ~round:t ~node:v) in
    let actions =
      Array.mapi (fun v node -> node.Process.decide ~round:t inputs.(v)) nodes
    in
    let delivered =
      Array.init n (fun u ->
          match actions.(u) with
          | Process.Transmit _ -> None
          | Process.Listen ->
              let heard = ref None in
              let collided = ref false in
              let consider v =
                match actions.(v) with
                | Process.Listen -> ()
                | Process.Transmit m -> (
                    match !heard with
                    | None -> heard := Some m
                    | Some _ -> collided := true)
              in
              Dual.iter_reliable_neighbors dual u consider;
              Dual.iter_unreliable_incident dual u (fun v edge ->
                  if Scheduler.active scheduler ~round:t ~edge then consider v);
              if !collided then None else !heard)
    in
    let outputs =
      Array.init n (fun v -> nodes.(v).Process.absorb ~round:t delivered.(v))
    in
    Array.iteri
      (fun v outs -> if outs <> [] then env.Env.notify ~round:t ~node:v outs)
      outputs;
    let record = { Trace.round = t; inputs; actions; delivered; outputs } in
    (match observer with Some f -> f record | None -> ());
    (match stop with Some p when p record -> continue := false | _ -> ());
    incr executed;
    incr round
  done;
  !executed

let transmitter_counts ?incidence ~dual ~scheduler ~round ~transmitting () =
  let n = Dual.n dual in
  if Array.length transmitting <> n then
    invalid_arg "Engine.transmitter_counts: size mismatch";
  let inc =
    match incidence with
    | Some inc ->
        if Array.length inc.inc_off <> n + 1 then
          invalid_arg "Engine.transmitter_counts: incidence/graph mismatch";
        inc
    | None -> unreliable_incidence dual
  in
  let g_off = Graph.csr_offsets (Dual.g dual) in
  let g_adj = Graph.csr_neighbors (Dual.g dual) in
  let m = Dual.unreliable_count dual in
  let active = Bytes.create m in
  if m > 0 then Scheduler.fill_active scheduler ~round active;
  let counts = Array.make n 0 in
  for v = 0 to n - 1 do
    if transmitting.(v) then begin
      for j = g_off.(v) to g_off.(v + 1) - 1 do
        let u = Array.unsafe_get g_adj j in
        counts.(u) <- counts.(u) + 1
      done;
      for j = inc.inc_off.(v) to inc.inc_off.(v + 1) - 1 do
        if Bytes.unsafe_get active (Array.unsafe_get inc.inc_edge j) = '\001'
        then begin
          let u = Array.unsafe_get inc.inc_nbr j in
          counts.(u) <- counts.(u) + 1
        end
      done
    end
  done;
  counts
