(** Descriptive statistics over float samples.

    The experiment harness reports means, dispersion and order statistics
    of measured latencies and rates.  All functions are total on non-empty
    inputs and raise [Invalid_argument] on empty ones unless noted. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

val of_list : float list -> t

val of_array : float array -> t
(** Raises [Invalid_argument] on an empty array and on any NaN sample:
    [Float.compare] sorts NaNs below every number, so accepting them
    would silently poison [min]/[mean]/[stddev] while the percentiles
    still looked plausible.  Callers with possibly-NaN measurements
    must filter (and account for the drops) before summarizing.
    Infinities are accepted — they order correctly and show up loudly.
    [of_list] and [of_ints] route through here and share the
    contract. *)

val of_ints : int list -> t

val mean : float list -> float

val percentile : float array -> float -> float
(** [percentile sorted q] with [q ∈ \[0,1\]]: linear-interpolated order
    statistic.  The array must be sorted ascending. *)

val pp : Format.formatter -> t -> unit
