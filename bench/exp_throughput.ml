(* Experiment E15: sustained service throughput vs sender density.

   The LB service is ongoing: messages keep arriving.  This experiment
   saturates a growing fraction of a field's nodes and measures delivered
   acknowledgements per 10k rounds and the progress guarantee under load.
   The paper makes no explicit throughput claim; the experiment verifies
   the service degrades gracefully (the guarantees are per-node and
   contention-bounded, so load changes latency allocation, not
   correctness). *)

open Core
open Exp_common
module Params = Localcast.Params
module L = Localcast
module Table = Stats.Table

let run () =
  section "E15: sustained throughput vs sender density";
  note
    "Random field n=40; a growing fraction of nodes is kept saturated.\n\
     Guarantees must hold at every load; delivered acks measure capacity.";
  let trials = trials_scaled 6 in
  let phases = 8 in
  let table =
    Table.create ~title:"E15: load sweep (eps=0.1)"
      ~columns:
        [ "senders"; "progress freq"; "reliability"; "acks/10k rounds";
          "progress p90 latency" ]
  in
  let fractions = if !quick then [ 0.1; 0.6 ] else [ 0.05; 0.1; 0.25; 0.5; 1.0 ] in
  List.iter
    (fun fraction ->
      let k = max 1 (int_of_float (Float.round (fraction *. 40.0))) in
      let samples =
        run_trials
          ~salt:(int_of_float (fraction *. 100.0))
          ~n:trials
          (fun ~trial:_ ~seed ->
            let dual = random_field ~seed ~n:40 () in
            let params = Params.of_dual ~eps1:0.1 ~tack_phases:2 dual in
            let senders = List.init k (fun i -> i * 40 / k) in
            let report, _ = run_lb_trial ~dual ~params ~senders ~phases ~seed () in
            ( report.L.Lb_spec.progress_opportunities,
              report.L.Lb_spec.progress_failures,
              report.L.Lb_spec.reliability_attempts,
              report.L.Lb_spec.reliability_failures,
              report.L.Lb_spec.ack_count,
              report.L.Lb_spec.rounds_observed,
              List.map float_of_int report.L.Lb_spec.progress_latencies ))
      in
      let opportunities = ref 0 and failures = ref 0 in
      let attempts = ref 0 and rel_failures = ref 0 in
      let acks = ref 0 and rounds_total = ref 0 in
      let latencies = ref [] in
      let sender_count = ref k in
      List.iter
        (fun (opps, fails, atts, rfails, ack, rounds, lats) ->
          opportunities := !opportunities + opps;
          failures := !failures + fails;
          attempts := !attempts + atts;
          rel_failures := !rel_failures + rfails;
          acks := !acks + ack;
          rounds_total := !rounds_total + rounds;
          latencies := lats @ !latencies)
        samples;
      let p90 =
        if !latencies = [] then Float.nan
        else (Stats.Summary.of_list !latencies).Stats.Summary.p90
      in
      Table.add_row table
        [
          Printf.sprintf "%d/40" !sender_count;
          Table.cell_float ~decimals:4
            (1.0 -. (float_of_int !failures /. float_of_int (max 1 !opportunities)));
          Printf.sprintf "%d/%d" (!attempts - !rel_failures) !attempts;
          Table.cell_float
            (10_000.0 *. float_of_int !acks /. float_of_int (max 1 !rounds_total));
          Table.cell_float ~decimals:0 p90;
        ])
    fractions;
  Table.print table;
  note
    "Expected: progress stays >= 1 - eps at every load; aggregate ack\n\
     throughput rises with sender count and saturates as neighborhoods\n\
     fill (one clean reception per receiver per round is the physical\n\
     cap); p90 first-reception latency stays well inside Tprog.\n"
