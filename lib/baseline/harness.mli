(** Progress-latency harness shared by the baseline experiments.

    Runs a network of always-active senders plus passive listeners and
    reports how long a designated receiver waits for its first clean data
    reception — the quantity the paper's progress bound controls. *)

val first_reception :
  dual:Dualgraph.Dual.t ->
  scheduler:Radiosim.Scheduler.t ->
  nodes:(Localcast.Messages.msg, unit, unit) Radiosim.Process.node array ->
  receiver:int ->
  max_rounds:int ->
  int option
(** The 0-based round of the receiver's first clean data reception, or
    [None] if it starves for [max_rounds] rounds. *)

val receiver : unit -> (Localcast.Messages.msg, unit, unit) Radiosim.Process.node
(** A silent listener. *)
