(* Tests for the baseline broadcast strategies and the shared
   progress-latency harness. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module P = Radiosim.Process
module M = Localcast.Messages
module Decay = Baseline.Decay
module Uniform = Baseline.Uniform
module Round_robin = Baseline.Round_robin
module Harness = Baseline.Harness
module Rng = Prng.Rng

let payload src = M.payload ~src ~uid:0 ()

let count_transmissions node rounds =
  let count = ref 0 in
  for round = 0 to rounds - 1 do
    match node.P.decide ~round [] with
    | P.Transmit _ -> incr count
    | P.Listen -> ()
  done;
  !count

let test_decay_levels_for () =
  checki "delta'=2" 2 (Decay.levels_for ~delta':2);
  checki "delta'=8" 4 (Decay.levels_for ~delta':8);
  checki "delta'=9" 5 (Decay.levels_for ~delta':9);
  checki "delta'=1" 2 (Decay.levels_for ~delta':1)

let test_decay_validation () =
  Alcotest.check_raises "levels >= 1"
    (Invalid_argument "Decay.node: levels must be >= 1") (fun () ->
      ignore (Decay.node ~levels:0 ~message:(payload 0) ~rng:(Rng.of_int 1)))

let test_decay_transmission_rate () =
  (* With a single level the schedule transmits w.p. 1/2 every round. *)
  let node = Decay.node ~levels:1 ~message:(payload 0) ~rng:(Rng.of_int 2) in
  let c = count_transmissions node 10_000 in
  checkb "rate near 1/2" true (Float.abs ((float_of_int c /. 10_000.0) -. 0.5) < 0.02)

let test_decay_level_structure () =
  (* With 3 levels, per-epoch expected transmissions = 1/2 + 1/4 + 1/8. *)
  let node = Decay.node ~levels:3 ~message:(payload 0) ~rng:(Rng.of_int 3) in
  let epochs = 6000 in
  let c = count_transmissions node (3 * epochs) in
  let per_epoch = float_of_int c /. float_of_int epochs in
  checkb "per-epoch rate near 7/8" true (Float.abs (per_epoch -. 0.875) < 0.05)

let test_decay_hot_predicate () =
  checkb "level 0 hot" true (Decay.hot_predicate ~levels:4 ~hot_levels:2 0);
  checkb "level 1 hot" true (Decay.hot_predicate ~levels:4 ~hot_levels:2 1);
  checkb "level 2 cold" false (Decay.hot_predicate ~levels:4 ~hot_levels:2 2);
  checkb "wraps around" true (Decay.hot_predicate ~levels:4 ~hot_levels:2 4)

let test_uniform_edges () =
  let one = Uniform.node ~p:1.0 ~message:(payload 0) ~rng:(Rng.of_int 4) in
  checki "p=1 always" 100 (count_transmissions one 100);
  let zero = Uniform.node ~p:0.0 ~message:(payload 0) ~rng:(Rng.of_int 4) in
  checki "p=0 never" 0 (count_transmissions zero 100);
  Alcotest.check_raises "validation"
    (Invalid_argument "Uniform.node: p must be in [0, 1]") (fun () ->
      ignore (Uniform.node ~p:1.5 ~message:(payload 0) ~rng:(Rng.of_int 4)))

let test_uniform_rate () =
  let node = Uniform.node ~p:0.25 ~message:(payload 0) ~rng:(Rng.of_int 5) in
  let c = count_transmissions node 10_000 in
  checkb "rate near 1/4" true (Float.abs ((float_of_int c /. 10_000.0) -. 0.25) < 0.02)

let test_round_robin_pattern () =
  let node = Round_robin.node ~n:4 ~id:2 ~message:(payload 2) in
  for round = 0 to 19 do
    let expected = round mod 4 = 2 in
    let actual =
      match node.P.decide ~round [] with P.Transmit _ -> true | P.Listen -> false
    in
    checkb "slot discipline" expected actual
  done;
  Alcotest.check_raises "validation" (Invalid_argument "Round_robin.node: bad id/n")
    (fun () -> ignore (Round_robin.node ~n:3 ~id:3 ~message:(payload 0)))

let test_harness_immediate () =
  let dual = Geo.pair () in
  let nodes =
    [| Uniform.node ~p:1.0 ~message:(payload 0) ~rng:(Rng.of_int 6); Harness.receiver () |]
  in
  Alcotest.check (Alcotest.option Alcotest.int) "heard at round 0" (Some 0)
    (Harness.first_reception ~dual ~scheduler:Sch.reliable_only ~nodes ~receiver:1
       ~max_rounds:10)

let test_harness_starvation () =
  let dual = Geo.pair () in
  let nodes =
    [| Uniform.node ~p:0.0 ~message:(payload 0) ~rng:(Rng.of_int 6); Harness.receiver () |]
  in
  Alcotest.check (Alcotest.option Alcotest.int) "never hears" None
    (Harness.first_reception ~dual ~scheduler:Sch.reliable_only ~nodes ~receiver:1
       ~max_rounds:25)

let test_decay_beats_starvation_without_adversary () =
  (* Decay makes progress quickly on the grey-cluster fixture when the
     scheduler keeps unreliable links off. *)
  let k = 8 in
  let dual = Geo.gray_cluster ~k ~r:1.5 () in
  let rng = Rng.of_int 7 in
  let levels = Decay.levels_for ~delta':(Dual.delta' dual) in
  let nodes =
    Array.init (k + 2) (fun v ->
        if v = 0 then Harness.receiver ()
        else Decay.node ~levels ~message:(payload v) ~rng:(Rng.split rng))
  in
  let latency =
    Harness.first_reception ~dual ~scheduler:Sch.reliable_only ~nodes ~receiver:0
      ~max_rounds:500
  in
  checkb "fast progress without adversary" true
    (match latency with Some l -> l < 100 | None -> false)

let test_thwart_starves_decay () =
  (* The paper's Discussion attack: under the thwarting scheduler, Decay's
     receiver starves far longer than under the benign scheduler. *)
  let k = 8 in
  let dual = Geo.gray_cluster ~k ~r:1.5 () in
  let levels = Decay.levels_for ~delta':(Dual.delta' dual) in
  let run scheduler seed =
    let rng = Rng.of_int seed in
    let nodes =
      Array.init (k + 2) (fun v ->
          if v = 0 then Harness.receiver ()
          else Decay.node ~levels ~message:(payload v) ~rng:(Rng.split rng))
    in
    Harness.first_reception ~dual ~scheduler ~nodes ~receiver:0 ~max_rounds:4000
  in
  let thwart =
    Sch.thwart ~hot:(Decay.hot_predicate ~levels ~hot_levels:(levels - 1))
  in
  let benign_total = ref 0 and thwart_total = ref 0 in
  let trials = 10 in
  for seed = 1 to trials do
    (match run Sch.reliable_only seed with
    | Some l -> benign_total := !benign_total + l
    | None -> benign_total := !benign_total + 4000);
    match run thwart seed with
    | Some l -> thwart_total := !thwart_total + l
    | None -> thwart_total := !thwart_total + 4000
  done;
  checkb "adversary at least triples decay's latency" true
    (!thwart_total > 3 * !benign_total)

(* ------------------------------------------------------------------ *)
(* The strategy family behind the refactored baselines (E25).          *)

module S = Baseline.Strategy
module T = Baseline.Tournament

(* Pre-refactor [Decay.node], [Uniform.node] and [Round_robin.node],
   copied verbatim: the refactored modules delegate to [Strategy] and
   must stay round-for-round identical to these frozen oracles. *)
module Frozen = struct
  let decay_node ~levels ~message ~rng =
    if levels < 1 then invalid_arg "Decay.node: levels must be >= 1";
    let decide ~round _inputs =
      let level = round mod levels in
      let p = 1.0 /. float_of_int (1 lsl (level + 1)) in
      if Prng.Rng.bernoulli rng p then
        Radiosim.Process.Transmit (Localcast.Messages.Data message)
      else Radiosim.Process.Listen
    in
    { Radiosim.Process.decide; absorb = (fun ~round:_ _ -> []) }

  let uniform_node ~p ~message ~rng =
    if p < 0.0 || p > 1.0 then invalid_arg "Uniform.node: p must be in [0, 1]";
    let decide ~round:_ _inputs =
      if Prng.Rng.bernoulli rng p then
        Radiosim.Process.Transmit (Localcast.Messages.Data message)
      else Radiosim.Process.Listen
    in
    { Radiosim.Process.decide; absorb = (fun ~round:_ _ -> []) }

  let round_robin_node ~n ~id ~message =
    if n < 1 || id < 0 || id >= n then invalid_arg "Round_robin.node: bad id/n";
    let decide ~round _inputs =
      if round mod n = id then
        Radiosim.Process.Transmit (Localcast.Messages.Data message)
      else Radiosim.Process.Listen
    in
    { Radiosim.Process.decide; absorb = (fun ~round:_ _ -> []) }
end

(* Drive [node] for [rounds] rounds like the engine does — decide, then
   absorb (here: nothing received) — and record the transmit schedule. *)
let schedule node rounds =
  List.init rounds (fun round ->
      let t =
        match node.P.decide ~round [] with
        | P.Transmit _ -> true
        | P.Listen -> false
      in
      ignore (node.P.absorb ~round None);
      t)

let test_strategy_spec_roundtrip () =
  let specs =
    [
      "fixed:0.125";
      "decay:5";
      "decay-restart:3";
      "sawtooth:4";
      "backoff:6";
      "slotted:12";
    ]
  in
  List.iter
    (fun s ->
      match S.parse s with
      | Ok t -> Alcotest.check Alcotest.string "roundtrip" s (S.to_spec t)
      | Error e -> Alcotest.failf "parse %S: %s" s e)
    specs;
  (match S.parse "DECAY:5" with
  | Ok t -> Alcotest.check Alcotest.string "case-insensitive" "decay:5" (S.to_spec t)
  | Error e -> Alcotest.fail e);
  Alcotest.check Alcotest.string "name" "decay-restart"
    (S.name (S.Decay_restart { levels = 3 }));
  Alcotest.check Alcotest.string "pp" "backoff:2"
    (Format.asprintf "%a" S.pp (S.Backoff { max_exp = 2 }))

let test_strategy_validate () =
  let rejected s =
    match S.parse s with
    | Error _ -> ()
    | Ok t -> Alcotest.failf "parse %S unexpectedly accepted %s" s (S.to_spec t)
  in
  List.iter rejected
    [
      "fixed:1.5";
      "fixed:-0.1";
      "fixed:nan";
      "fixed:";
      "decay:0";
      "decay:63";
      "decay-restart:0";
      "sawtooth:-1";
      "backoff:-1";
      "backoff:63";
      "slotted:0";
      "bogus:3";
      "decay";
      "decay:2:3";
    ];
  Alcotest.check_raises "init validates"
    (Invalid_argument "Strategy.init: decay: levels must be in [1, 62]")
    (fun () ->
      ignore (S.init (S.Decay { levels = 0 }) ~rng:(Rng.of_int 1) ~node:0));
  Alcotest.check_raises "init node >= 0"
    (Invalid_argument "Strategy.init: node must be >= 0") (fun () ->
      ignore (S.init (S.Fixed { p = 0.5 }) ~rng:(Rng.of_int 1) ~node:(-1)))

let test_strategy_decide_monotone () =
  let st = S.init (S.Fixed { p = 0.5 }) ~rng:(Rng.of_int 2) ~node:0 in
  ignore (S.decide st ~round:0);
  ignore (S.decide st ~round:3);
  Alcotest.check_raises "repeat round"
    (Invalid_argument "Strategy.decide: rounds must be strictly increasing")
    (fun () -> ignore (S.decide st ~round:3));
  Alcotest.check_raises "earlier round"
    (Invalid_argument "Strategy.decide: rounds must be strictly increasing")
    (fun () -> ignore (S.decide st ~round:1));
  let fresh = S.init (S.Fixed { p = 0.5 }) ~rng:(Rng.of_int 2) ~node:0 in
  Alcotest.check_raises "negative round"
    (Invalid_argument "Strategy.decide: round must be >= 0") (fun () ->
      ignore (S.decide fresh ~round:(-1)))

let test_backoff_windows () =
  (* max_exp = 0 pins the window exponent at 0: transmit w.p. 1 forever. *)
  let st = S.init (S.Backoff { max_exp = 0 }) ~rng:(Rng.of_int 3) ~node:0 in
  for round = 0 to 49 do
    checkb "k=0 always transmits" true (S.decide st ~round)
  done;
  (* max_exp = 1: round 0 is the certain k=0 window, then k parks at 1
     (p = 1/2 per round). *)
  let st = S.init (S.Backoff { max_exp = 1 }) ~rng:(Rng.of_int 4) ~node:0 in
  checkb "first round certain" true (S.decide st ~round:0);
  let c = ref 0 in
  let rounds = 10_000 in
  for round = 1 to rounds do
    if S.decide st ~round then incr c
  done;
  checkb "parked rate near 1/2" true
    (Float.abs ((float_of_int !c /. float_of_int rounds) -. 0.5) < 0.02);
  (* Decoding a message resets the window: with feedback every round the
     node never leaves the certain k=0 window. *)
  let st = S.init (S.Backoff { max_exp = 8 }) ~rng:(Rng.of_int 5) ~node:0 in
  for round = 0 to 49 do
    checkb "reset keeps k=0" true (S.decide st ~round);
    S.feedback st ~round ~heard:true
  done

let test_decay_restart_feedback () =
  (* Without feedback the ladder descends and parks at levels-1. *)
  let st = S.init (S.Decay_restart { levels = 4 }) ~rng:(Rng.of_int 6) ~node:0 in
  for round = 0 to 9 do
    ignore (S.decide st ~round);
    S.feedback st ~round ~heard:false
  done;
  let c = ref 0 in
  let rounds = 16_000 in
  for round = 10 to 9 + rounds do
    if S.decide st ~round then incr c
  done;
  checkb "parked rate near 1/16" true
    (Float.abs ((float_of_int !c /. float_of_int rounds) -. 0.0625) < 0.01);
  (* With a decode every round the ladder restarts from the top. *)
  let st = S.init (S.Decay_restart { levels = 4 }) ~rng:(Rng.of_int 7) ~node:0 in
  let c = ref 0 in
  for round = 0 to rounds - 1 do
    if S.decide st ~round then incr c;
    S.feedback st ~round ~heard:true
  done;
  checkb "restarted rate near 1/2" true
    (Float.abs ((float_of_int !c /. float_of_int rounds) -. 0.5) < 0.02)

let test_sawtooth_sweep () =
  (* levels = 2 sweeps p = 1/4 then 1/2 each epoch: 3/4 per epoch. *)
  let st = S.init (S.Sawtooth { levels = 2 }) ~rng:(Rng.of_int 8) ~node:0 in
  let epochs = 8000 in
  let c = ref 0 in
  for round = 0 to (2 * epochs) - 1 do
    if S.decide st ~round then incr c
  done;
  let per_epoch = float_of_int !c /. float_of_int epochs in
  checkb "per-epoch rate near 3/4" true (Float.abs (per_epoch -. 0.75) < 0.05)

let test_strategy_zoo () =
  let zoo = S.zoo ~delta':8 ~n:12 in
  Alcotest.check (Alcotest.list Alcotest.string) "zoo arms"
    [ "fixed:0.125"; "decay:4"; "decay-restart:4"; "sawtooth:4"; "backoff:4";
      "slotted:12" ]
    (List.map S.to_spec zoo);
  List.iter
    (fun t ->
      match S.validate t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "zoo arm %s invalid: %s" (S.to_spec t) e)
    (S.zoo ~delta':1 ~n:1)

let test_node_rng_streams () =
  let draws rng = List.init 5 (fun _ -> Rng.bits64 rng) in
  let a = draws (S.node_rng ~seed:42 ~node:3 ()) in
  let b = draws (S.node_rng ~seed:42 ~node:3 ()) in
  checkb "same key, same stream" true (a = b);
  checkb "different node differs" true
    (a <> draws (S.node_rng ~seed:42 ~node:4 ()));
  checkb "different seed differs" true
    (a <> draws (S.node_rng ~seed:43 ~node:3 ()));
  checkb "revival round differs" true
    (a <> draws (S.node_rng ~round:1 ~seed:42 ~node:3 ()))

let test_relay_semantics () =
  let slotted = S.Slotted { slots = 1 } in
  (* An initial holder transmits on its schedule from engine round 0 and
     falls silent once the global budget window closes. *)
  let holder =
    S.relay slotted ~initial:(payload 0) ~budget:3
      ~rng:(S.node_rng ~seed:1 ~node:0 ())
      ~node:0 ()
  in
  Alcotest.check (Alcotest.list Alcotest.bool) "holder budget window"
    [ true; true; true; false; false ]
    (schedule holder 5);
  (* An acquirer stays silent, ignores seed traffic, and starts its local
     schedule the round after first decoding a data payload. *)
  let relay =
    S.relay slotted ~budget:4 ~rng:(S.node_rng ~seed:1 ~node:1 ()) ~node:1 ()
  in
  let transmit round =
    match relay.P.decide ~round [] with
    | P.Transmit _ -> true
    | P.Listen -> false
  in
  let seed_msg =
    M.Seed_msg { M.owner = 0; seed = Prng.Bitstring.of_bools [ true ] }
  in
  checkb "silent before acquiring" false (transmit 0);
  ignore (relay.P.absorb ~round:0 (Some seed_msg));
  checkb "seed traffic does not acquire" false (transmit 1);
  ignore (relay.P.absorb ~round:1 (Some (M.Data (payload 0))));
  checkb "relays on local round 0" true (transmit 2);
  ignore (relay.P.absorb ~round:2 None);
  checkb "keeps relaying inside the budget" true (transmit 3);
  ignore (relay.P.absorb ~round:3 None);
  checkb "global budget silences the relay" false (transmit 4);
  Alcotest.check_raises "budget >= 0"
    (Invalid_argument "Strategy.relay: budget must be >= 0") (fun () ->
      ignore
        (S.relay slotted ~budget:(-1) ~rng:(Rng.of_int 1) ~node:0 ()))

let test_sender_reuse_restarts_schedule () =
  (* The micro-benches reuse one baseline node across engine runs; a
     round going backwards restarts the schedule on the same stream
     instead of raising. *)
  let node = Uniform.node ~p:1.0 ~message:(payload 0) ~rng:(Rng.of_int 9) in
  checki "first run" 10 (count_transmissions node 10);
  checki "reused run restarts at round 0" 10 (count_transmissions node 10);
  let node = Round_robin.node ~n:3 ~id:1 ~message:(payload 1) in
  ignore (count_transmissions node 5);
  checkb "slot discipline intact after reuse" true
    (match node.P.decide ~round:1 [] with
    | P.Transmit _ -> true
    | P.Listen -> false)

let test_tournament_cell () =
  let dual = Geo.clique 6 in
  let arena = T.arena ~dual () in
  let arms = T.arms ~dual in
  checki "zoo plus lbalg" 7 (List.length arms);
  Alcotest.check (Alcotest.list Alcotest.string) "arm labels"
    [ "fixed"; "decay"; "decay-restart"; "sawtooth"; "backoff"; "slotted";
      "lbalg" ]
    (List.map T.arm_label arms);
  let adaptive = { arena with T.adversary = T.Adaptive_jam } in
  List.iter
    (fun arm ->
      checkb "oblivious supports all" true (T.supports arena arm);
      checkb "adaptive excludes only lbalg"
        (T.arm_label arm <> "lbalg")
        (T.supports adaptive arm))
    arms;
  checkb "unsupported trial is None" true
    (T.trial adaptive T.Lbalg ~seed:1 = None);
  let arm = T.Strategy (S.Decay { levels = 3 }) in
  match (T.trial arena arm ~seed:3, T.trial arena arm ~seed:3) with
  | Some a, Some b ->
      checkb "trial is a pure function of (arena, arm, seed)" true (a = b);
      checkb "coverage in [0,1]" true (a.T.coverage >= 0.0 && a.T.coverage <= 1.0);
      checkb "latency within horizon" true
        (a.T.latency >= 0.0 && a.T.latency <= float_of_int arena.T.horizon);
      checkb "cost positive" true (a.T.cost > 0.0)
  | _ -> Alcotest.fail "trial returned None on a fault-free clique"

(* QCheck generators for the property-test hardening pass. *)
let strategy_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> S.Fixed { p = float_of_int i /. 16.0 }) (0 -- 16);
        map (fun l -> S.Decay { levels = l }) (1 -- 8);
        map (fun l -> S.Decay_restart { levels = l }) (1 -- 8);
        map (fun l -> S.Sawtooth { levels = l }) (1 -- 8);
        map (fun k -> S.Backoff { max_exp = k }) (0 -- 8);
        map (fun s -> S.Slotted { slots = s }) (1 -- 8);
      ])

let strategy_arb = QCheck.make strategy_gen ~print:S.to_spec

(* The transmit schedule of [spec] at [node] under [seed], replaying the
   given feedback history ([heard] per round, cycled). *)
let decisions spec ~seed ~node ~feedback rounds =
  let st = S.init spec ~rng:(S.node_rng ~seed ~node ()) ~node in
  let k = Array.length feedback in
  List.init rounds (fun round ->
      let d = S.decide st ~round in
      S.feedback st ~round ~heard:(k > 0 && feedback.(round mod k));
      d)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"refactored baselines match their frozen oracles" ~count:40
      (pair small_int (pair (int_range 1 8) (int_range 0 16)))
      (fun (seed, (levels, p16)) ->
        let p = float_of_int p16 /. 16.0 in
        let rounds = 200 in
        let msg = payload 0 in
        schedule (Frozen.decay_node ~levels ~message:msg ~rng:(Rng.of_int seed))
          rounds
        = schedule (Decay.node ~levels ~message:msg ~rng:(Rng.of_int seed))
            rounds
        && schedule (Frozen.uniform_node ~p ~message:msg ~rng:(Rng.of_int seed))
             rounds
           = schedule (Uniform.node ~p ~message:msg ~rng:(Rng.of_int seed))
               rounds
        && schedule
             (Frozen.round_robin_node ~n:levels ~id:(p16 mod levels)
                ~message:msg)
             rounds
           = schedule
               (Round_robin.node ~n:levels ~id:(p16 mod levels) ~message:msg)
               rounds);
    Test.make
      ~name:"decisions are a pure function of (strategy, seed, node, feedback)"
      ~count:60
      (pair strategy_arb (pair small_int (pair (int_range 0 20) (list bool))))
      (fun (spec, (seed, (node, fb))) ->
        let feedback = Array.of_list fb in
        decisions spec ~seed ~node ~feedback 120
        = decisions spec ~seed ~node ~feedback 120);
    Test.make
      ~name:"node streams are independent of materialization order" ~count:40
      (pair strategy_arb small_int)
      (fun (spec, seed) ->
        let rounds = 80 in
        let nodes = [ 0; 1; 2; 3 ] in
        (* Node-major: each node's full schedule in isolation. *)
        let isolated =
          List.map
            (fun node -> decisions spec ~seed ~node ~feedback:[||] rounds)
            nodes
        in
        (* Round-major: all nodes advanced in lockstep, reverse order. *)
        let states =
          List.map
            (fun node -> S.init spec ~rng:(S.node_rng ~seed ~node ()) ~node)
            nodes
        in
        let interleaved =
          List.init rounds (fun round ->
              List.rev_map (fun st -> S.decide st ~round) (List.rev states))
        in
        List.for_all2
          (fun node_idx isolated_schedule ->
            isolated_schedule
            = List.map (fun per_round -> List.nth per_round node_idx)
                interleaved)
          [ 0; 1; 2; 3 ] isolated);
    Test.make
      ~name:"relay with initial+budget is draw-for-draw the budgeted sender"
      ~count:40
      (pair small_int (pair (int_range 1 6) (int_range 1 60)))
      (fun (seed, (levels, budget)) ->
        let msg = payload 0 in
        let rng () = S.node_rng ~seed ~node:0 () in
        let oracle =
          schedule (Frozen.decay_node ~levels ~message:msg ~rng:(rng ())) budget
        in
        let relay =
          S.relay (S.Decay { levels }) ~initial:msg ~budget ~rng:(rng ())
            ~node:0 ()
        in
        schedule relay (budget + 20)
        = oracle @ List.init 20 (fun _ -> false));
  ]

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("decay levels_for", test_decay_levels_for);
      ("decay validation", test_decay_validation);
      ("decay transmission rate", test_decay_transmission_rate);
      ("decay level structure", test_decay_level_structure);
      ("decay hot predicate", test_decay_hot_predicate);
      ("uniform edges", test_uniform_edges);
      ("uniform rate", test_uniform_rate);
      ("round robin pattern", test_round_robin_pattern);
      ("harness immediate", test_harness_immediate);
      ("harness starvation", test_harness_starvation);
      ("decay fast without adversary", test_decay_beats_starvation_without_adversary);
      ("thwart starves decay", test_thwart_starves_decay);
      ("strategy spec roundtrip", test_strategy_spec_roundtrip);
      ("strategy validation", test_strategy_validate);
      ("strategy decide monotone", test_strategy_decide_monotone);
      ("backoff windows", test_backoff_windows);
      ("decay-restart feedback", test_decay_restart_feedback);
      ("sawtooth sweep", test_sawtooth_sweep);
      ("strategy zoo", test_strategy_zoo);
      ("node_rng streams", test_node_rng_streams);
      ("relay semantics", test_relay_semantics);
      ("sender reuse restarts schedule", test_sender_reuse_restarts_schedule);
      ("tournament cell", test_tournament_cell);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
