let levels_for = Strategy.levels_for

let node ~levels ~message ~rng =
  if levels < 1 then invalid_arg "Decay.node: levels must be >= 1";
  Strategy.sender (Strategy.Decay { levels }) ~message ~rng ~node:0

let hot_predicate ~levels ~hot_levels round = round mod levels < hot_levels

let hot_levels_against ~levels ~contention =
  if contention < 1 then 0
  else begin
    let threshold = log (float_of_int (contention + 1)) /. float_of_int contention in
    let rec count j =
      if j >= levels then j
      else if 1.0 /. float_of_int (1 lsl (j + 1)) > threshold then count (j + 1)
      else j
    in
    count 0
  end
