(** The synchronous execution engine for the dual graph model (paper §2).

    Round [t] (0-indexed) proceeds exactly as the model prescribes:

    + every node receives its environment inputs,
    + every node commits to [Transmit m] or [Listen],
    + the communication topology for the round is formed: all of [E] plus
      the subset of [E' \ E] the (oblivious) link scheduler activates,
    + node [u] receives [m] from [v] iff [u] listens, [v] transmits [m],
      and [v] is the {e only} transmitter among [u]'s neighbors in the
      round's topology; otherwise a listener receives ⊥ ([None] — no
      collision detection),
    + every node emits outputs, which the environment consumes.

    The combination (dual graph, nodes, scheduler, environment) is the
    paper's {e configuration}; given the per-node RNGs it fully determines
    the execution. *)

val run :
  ?observer:(('msg, 'input, 'output) Trace.round_record -> unit) ->
  ?stop:(('msg, 'input, 'output) Trace.round_record -> bool) ->
  dual:Dualgraph.Dual.t ->
  scheduler:Scheduler.t ->
  nodes:('msg, 'input, 'output) Process.node array ->
  env:('input, 'output) Env.t ->
  rounds:int ->
  unit ->
  int
(** Executes up to [rounds] rounds and returns the number actually
    executed.  [observer] sees each round's record as it completes;
    [stop], checked after the observer, ends the run early when it
    returns [true].  Raises [Invalid_argument] if the node array size
    differs from the graph's vertex count. *)

val run_adaptive :
  ?observer:(('msg, 'input, 'output) Trace.round_record -> unit) ->
  ?stop:(('msg, 'input, 'output) Trace.round_record -> bool) ->
  dual:Dualgraph.Dual.t ->
  adversary:Adaptive.t ->
  nodes:('msg, 'input, 'output) Process.node array ->
  env:('input, 'output) Env.t ->
  rounds:int ->
  unit ->
  int
(** Like {!run}, but the unreliable-edge choice is made by an
    {!Adaptive} adversary that sees the round's transmission vector —
    the model variant under which the paper's predecessor work proves
    efficient progress impossible.  Kept separate from {!run} so that a
    type of scheduler can never silently escalate into the stronger
    adversary. *)

type incidence
(** Precomputed per-node incidence of a dual graph's unreliable edges —
    the data {!transmitter_counts} needs beyond the reliable adjacency.
    Building it walks every unreliable edge (O(|E' \ E|)), so callers
    that query many rounds of one topology should build it once with
    {!unreliable_incidence} and pass it back in. *)

val unreliable_incidence : Dualgraph.Dual.t -> incidence
(** Precompute the unreliable-edge incidence of a topology, for reuse
    across many {!transmitter_counts} queries. *)

val transmitter_counts :
  ?incidence:incidence ->
  dual:Dualgraph.Dual.t ->
  scheduler:Scheduler.t ->
  round:int ->
  transmitting:bool array ->
  unit ->
  int array
(** Diagnostic: for the given transmitting set, the number of
    topology-neighbors of each node that transmit in [round] (the
    contention each listener faces).  Used by tests to cross-check the
    engine's collision rule.  [incidence] must come from
    {!unreliable_incidence} on the same [dual]; when absent it is
    rebuilt on every call. *)
