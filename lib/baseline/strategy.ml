type t =
  | Fixed of { p : float }
  | Decay of { levels : int }
  | Decay_restart of { levels : int }
  | Sawtooth of { levels : int }
  | Backoff of { max_exp : int }
  | Slotted of { slots : int }

(* Ladder depths are capped at 62 so every [1 lsl] below stays within a
   63-bit OCaml int. *)
let max_levels = 62

let validate = function
  | Fixed { p } ->
      if Float.is_nan p || p < 0.0 || p > 1.0 then
        Error "fixed: p must be in [0, 1]"
      else Ok ()
  | Decay { levels } ->
      if levels < 1 || levels > max_levels then
        Error "decay: levels must be in [1, 62]"
      else Ok ()
  | Decay_restart { levels } ->
      if levels < 1 || levels > max_levels then
        Error "decay-restart: levels must be in [1, 62]"
      else Ok ()
  | Sawtooth { levels } ->
      if levels < 1 || levels > max_levels then
        Error "sawtooth: levels must be in [1, 62]"
      else Ok ()
  | Backoff { max_exp } ->
      if max_exp < 0 || max_exp > max_levels then
        Error "backoff: max_exp must be in [0, 62]"
      else Ok ()
  | Slotted { slots } ->
      if slots < 1 then Error "slotted: slots must be >= 1" else Ok ()

let float_to_string p =
  let s = Printf.sprintf "%g" p in
  if float_of_string s = p then s else Printf.sprintf "%.17g" p

let to_spec = function
  | Fixed { p } -> "fixed:" ^ float_to_string p
  | Decay { levels } -> "decay:" ^ string_of_int levels
  | Decay_restart { levels } -> "decay-restart:" ^ string_of_int levels
  | Sawtooth { levels } -> "sawtooth:" ^ string_of_int levels
  | Backoff { max_exp } -> "backoff:" ^ string_of_int max_exp
  | Slotted { slots } -> "slotted:" ^ string_of_int slots

let name = function
  | Fixed _ -> "fixed"
  | Decay _ -> "decay"
  | Decay_restart _ -> "decay-restart"
  | Sawtooth _ -> "sawtooth"
  | Backoff _ -> "backoff"
  | Slotted _ -> "slotted"

let pp ppf t = Format.pp_print_string ppf (to_spec t)

let parse spec =
  let fail () =
    Error
      (Printf.sprintf
         "bad strategy %S (expected fixed:P | decay:L | decay-restart:L | \
          sawtooth:L | backoff:K | slotted:N)"
         spec)
  in
  let checked t = match validate t with Ok () -> Ok t | Error e -> Error e in
  match String.split_on_char ':' (String.lowercase_ascii spec) with
  | [ "fixed"; arg ] -> (
      match float_of_string_opt arg with
      | Some p -> checked (Fixed { p })
      | None -> fail ())
  | [ family; arg ] -> (
      match (family, int_of_string_opt arg) with
      | "decay", Some levels -> checked (Decay { levels })
      | "decay-restart", Some levels -> checked (Decay_restart { levels })
      | "sawtooth", Some levels -> checked (Sawtooth { levels })
      | "backoff", Some max_exp -> checked (Backoff { max_exp })
      | "slotted", Some slots -> checked (Slotted { slots })
      | _ -> fail ())
  | _ -> fail ()

let levels_for ~delta' =
  let rec bits k = if 1 lsl k >= delta' then k else bits (k + 1) in
  max 1 (bits 0) + 1

let zoo ~delta' ~n =
  let levels = levels_for ~delta' in
  [
    Fixed { p = 1.0 /. float_of_int (max 2 delta') };
    Decay { levels };
    Decay_restart { levels };
    Sawtooth { levels };
    Backoff { max_exp = levels };
    Slotted { slots = n };
  ]

type state = {
  spec : t;
  rng : Prng.Rng.t;
  node : int;
  (* [level] is the Decay_restart ladder position or the Backoff window
     exponent; [window_left] counts the rounds remaining in the current
     Backoff window. *)
  mutable level : int;
  mutable window_left : int;
  mutable last_round : int;
}

let init spec ~rng ~node =
  (match validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Strategy.init: " ^ e));
  if node < 0 then invalid_arg "Strategy.init: node must be >= 0";
  { spec; rng; node; level = 0; window_left = 1; last_round = -1 }

let spec st = st.spec

let pow2_inv k = 1.0 /. float_of_int (1 lsl k)

let decide st ~round =
  if round < 0 then invalid_arg "Strategy.decide: round must be >= 0";
  if round <= st.last_round then
    invalid_arg "Strategy.decide: rounds must be strictly increasing";
  st.last_round <- round;
  match st.spec with
  | Fixed { p } -> Prng.Rng.bernoulli st.rng p
  | Decay { levels } -> Prng.Rng.bernoulli st.rng (pow2_inv ((round mod levels) + 1))
  | Decay_restart { levels } ->
      let r = Prng.Rng.bernoulli st.rng (pow2_inv (st.level + 1)) in
      st.level <- min (st.level + 1) (levels - 1);
      r
  | Sawtooth { levels } ->
      Prng.Rng.bernoulli st.rng (pow2_inv (levels - (round mod levels)))
  | Backoff { max_exp } ->
      let r = Prng.Rng.bernoulli st.rng (pow2_inv st.level) in
      st.window_left <- st.window_left - 1;
      if st.window_left <= 0 then begin
        st.level <- min (st.level + 1) max_exp;
        st.window_left <- 1 lsl st.level
      end;
      r
  | Slotted { slots } -> round mod slots = st.node mod slots

let feedback st ~round:_ ~heard =
  if heard then
    match st.spec with
    | Decay_restart _ -> st.level <- 0
    | Backoff _ ->
        st.level <- 0;
        st.window_left <- 1
    | Fixed _ | Decay _ | Sawtooth _ | Slotted _ -> ()

let node_rng ?(round = 0) ~seed ~node () =
  let open Int64 in
  let key =
    add
      (add
         (mul (of_int seed) 0x9E3779B97F4A7C15L)
         (mul (of_int (node + 1)) 0xC2B2AE3D27D4EB4FL))
      (mul (of_int round) 0x165667B19E3779F9L)
  in
  Prng.Rng.create (Prng.Splitmix.mix key)

let heard = function Some _ -> true | None -> false

let sender spec ~message ~rng ~node =
  let st = ref (init spec ~rng ~node) in
  let decide ~round _inputs =
    (* A round going backwards means the node object was reused for a
       fresh engine run (the micro-benches drive M1/M5/M6 this way):
       restart the schedule but keep drawing from the same stream,
       exactly the pre-refactor baselines' behavior. *)
    if round <= !st.last_round then st := init spec ~rng ~node;
    if decide !st ~round then
      Radiosim.Process.Transmit (Localcast.Messages.Data message)
    else Radiosim.Process.Listen
  in
  let absorb ~round received =
    feedback !st ~round ~heard:(heard received);
    []
  in
  { Radiosim.Process.decide; absorb }

let relay spec ?initial ?budget ~rng ~node () =
  (match budget with
  | Some b when b < 0 -> invalid_arg "Strategy.relay: budget must be >= 0"
  | _ -> ());
  let st = init spec ~rng ~node in
  let holding = ref initial in
  (* Engine round of the relay's local round 0: an initial holder starts
     at 0; an acquirer's schedule starts the round after first
     reception. *)
  let base = ref 0 in
  (* The budget is the broadcast's global active window in engine
     rounds, not a per-relay allowance: every relay falls silent from
     round [budget] on, exactly like experiment E20's budgeted sender. *)
  let active round =
    round - !base >= 0
    && match budget with None -> true | Some b -> round < b
  in
  let decide ~round _inputs =
    match !holding with
    | Some payload when active round && decide st ~round:(round - !base) ->
        Radiosim.Process.Transmit (Localcast.Messages.Data payload)
    | Some _ | None -> Radiosim.Process.Listen
  in
  let absorb ~round received =
    (match !holding with
    | Some _ ->
        if active round then
          feedback st ~round:(round - !base) ~heard:(heard received)
    | None -> (
        match received with
        | Some (Localcast.Messages.Data payload) ->
            holding := Some payload;
            base := round + 1
        | Some (Localcast.Messages.Seed_msg _) | None -> ()));
    []
  in
  { Radiosim.Process.decide; absorb }
