(** Deterministic environments for the local broadcast problem (§4.1).

    The problem constrains environments to (1) never reuse a message and
    (2) wait for [ack(m)_u] before handing [u] another [bcast].  The
    environments here obey both and keep a {!log} of every bcast/ack pair,
    which the {!Lb_spec} checker consumes to reconstruct the
    actively-broadcasting intervals. *)

type entry = {
  node : int;
  payload : Messages.payload;
  bcast_round : int;
  mutable ack_round : int option;
  mutable recv_rounds : (int * int) list;
      (** [(receiver, round)] of every [Recv] of this payload *)
}

type t

val env : t -> (Messages.lb_input, Messages.lb_output) Radiosim.Env.t

val log : t -> entry list
(** All entries, in bcast order. *)

val saturate : ?start:int -> n:int -> senders:int list -> unit -> t
(** Every node in [senders] receives a fresh [bcast] at round [start]
    (default 0) and again one round after each of its acks — so senders
    are actively broadcasting essentially forever.  This realizes the
    progress property's hypothesis (an always-active G-neighbor). *)

val one_shot : n:int -> bcasts:(int * int) list -> t
(** [one_shot ~n ~bcasts] issues a single [bcast] to each [(node, round)]
    pair.  Used for acknowledgement-latency and reliability experiments. *)

val is_active : t -> node:int -> round:int -> bool
(** Whether the node is actively broadcasting some message in the given
    round (it received a bcast at or before [round] and had not acked it
    by the end of round [round - 1]). *)
