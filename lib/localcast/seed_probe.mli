(** Region-level instrumentation of SeedAlg executions (Appendix B).

    The paper's analysis of SeedAlg lives on the half-unit region
    partition of Appendix A.1: for region [x] and phase [h] it tracks the
    active count [a_{x,h}], the cumulative leader-election probability
    [P_{x,h} = a_{x,h} · p_h], calls the region {e good} when
    [P_{x,h} <= c₂ log(1/ε)], and bounds the leaders elected per region
    per phase (Lemmas B.2, B.6, B.8).  This probe records exactly those
    quantities from a live execution so experiments (E12) and tests can
    check the lemmas' empirical shape.

    Usage: build the probed network, run the engine for
    [Seed_alg.duration] rounds, then read {!snapshots}. *)

type snapshot = {
  phase : int;  (** 1-based phase number h *)
  election_prob : float;  (** p_h = 2^{-(phases - h + 1)} *)
  active_per_region : int array;  (** a_{x,h}, sampled at phase start *)
  leaders_per_region : int array;  (** l_{x,h}, after the election step *)
}

val cumulative_probability : snapshot -> int -> float
(** [cumulative_probability s x] is [P_{x,h} = a_{x,h} · p_h]. *)

val is_good : eps:float -> c2:float -> snapshot -> int -> bool
(** The paper's goodness predicate: [P_{x,h} <= c2 · log₂(1/eps)]. *)

type t

val create : Params.seed -> dual:Dualgraph.Dual.t -> rng:Prng.Rng.t -> t
(** Raises [Invalid_argument] if the dual graph has no embedding (the
    region partition needs one). *)

val nodes :
  t -> (Messages.msg, unit, Messages.seed_output) Radiosim.Process.node array

val regions : t -> Dualgraph.Region.t

val snapshots : t -> snapshot list
(** One snapshot per phase, in phase order.  Complete only after the
    engine has run all [Params.seed_duration] rounds. *)

val total_leaders_per_region : t -> int array
(** Σ_h l_{x,h} for each region — the quantity Lemma B.4 bounds. *)
