type t =
  | Round_start of { round : int }
  | Round_end of {
      round : int;
      transmitters : int;
      deliveries : int;
      collisions : int;
    }
  | Transmit of { round : int; node : int }
  | Deliver of { round : int; node : int }
  | Collision of { round : int; node : int }
  | Phase_start of { round : int; phase : int; preamble : bool }
  | Seed_commit of { round : int; node : int; owner : int }
  | Bcast of { round : int; node : int; uid : int }
  | Recv of { round : int; node : int; src : int; uid : int }
  | Ack of { round : int; node : int; uid : int; latency : int }
  | Progress of { round : int; node : int; latency : int }
  | Mark of { round : int; node : int; label : string }
  | Crash of { round : int; node : int }
  | Restart of { round : int; node : int }

let round = function
  | Round_start { round }
  | Round_end { round; _ }
  | Transmit { round; _ }
  | Deliver { round; _ }
  | Collision { round; _ }
  | Phase_start { round; _ }
  | Seed_commit { round; _ }
  | Bcast { round; _ }
  | Recv { round; _ }
  | Ack { round; _ }
  | Progress { round; _ }
  | Mark { round; _ }
  | Crash { round; _ }
  | Restart { round; _ } -> round

let kind = function
  | Round_start _ -> "round_start"
  | Round_end _ -> "round_end"
  | Transmit _ -> "transmit"
  | Deliver _ -> "deliver"
  | Collision _ -> "collision"
  | Phase_start _ -> "phase_start"
  | Seed_commit _ -> "seed_commit"
  | Bcast _ -> "bcast"
  | Recv _ -> "recv"
  | Ack _ -> "ack"
  | Progress _ -> "progress"
  | Mark _ -> "mark"
  | Crash _ -> "crash"
  | Restart _ -> "restart"

let equal (a : t) (b : t) = a = b

let pp ppf ev =
  match ev with
  | Round_start { round } -> Format.fprintf ppf "r%d start" round
  | Round_end { round; transmitters; deliveries; collisions } ->
      Format.fprintf ppf "r%d end tx=%d del=%d col=%d" round transmitters
        deliveries collisions
  | Transmit { round; node } -> Format.fprintf ppf "r%d %d!" round node
  | Deliver { round; node } -> Format.fprintf ppf "r%d %d<-" round node
  | Collision { round; node } -> Format.fprintf ppf "r%d %d<-*collision*" round node
  | Phase_start { round; phase; preamble } ->
      Format.fprintf ppf "r%d phase %d%s" round phase
        (if preamble then " (preamble)" else "")
  | Seed_commit { round; node; owner } ->
      Format.fprintf ppf "r%d %d commits seed of %d" round node owner
  | Bcast { round; node; uid } ->
      Format.fprintf ppf "r%d bcast(%d#%d)" round node uid
  | Recv { round; node; src; uid } ->
      Format.fprintf ppf "r%d %d:recv(%d#%d)" round node src uid
  | Ack { round; node; uid; latency } ->
      Format.fprintf ppf "r%d %d:ack(#%d) after %d" round node uid latency
  | Progress { round; node; latency } ->
      Format.fprintf ppf "r%d %d:progress at +%d" round node latency
  | Mark { round; node; label } ->
      Format.fprintf ppf "r%d %d:mark %s" round node label
  | Crash { round; node } -> Format.fprintf ppf "r%d %d:crash" round node
  | Restart { round; node } -> Format.fprintf ppf "r%d %d:restart" round node

let to_json ev =
  match ev with
  | Round_start { round } ->
      Printf.sprintf {|{"ev":"round_start","round":%d}|} round
  | Round_end { round; transmitters; deliveries; collisions } ->
      Printf.sprintf
        {|{"ev":"round_end","round":%d,"transmitters":%d,"deliveries":%d,"collisions":%d}|}
        round transmitters deliveries collisions
  | Transmit { round; node } ->
      Printf.sprintf {|{"ev":"transmit","round":%d,"node":%d}|} round node
  | Deliver { round; node } ->
      Printf.sprintf {|{"ev":"deliver","round":%d,"node":%d}|} round node
  | Collision { round; node } ->
      Printf.sprintf {|{"ev":"collision","round":%d,"node":%d}|} round node
  | Phase_start { round; phase; preamble } ->
      Printf.sprintf {|{"ev":"phase_start","round":%d,"phase":%d,"preamble":%b}|}
        round phase preamble
  | Seed_commit { round; node; owner } ->
      Printf.sprintf {|{"ev":"seed_commit","round":%d,"node":%d,"owner":%d}|}
        round node owner
  | Bcast { round; node; uid } ->
      Printf.sprintf {|{"ev":"bcast","round":%d,"node":%d,"uid":%d}|} round node
        uid
  | Recv { round; node; src; uid } ->
      Printf.sprintf {|{"ev":"recv","round":%d,"node":%d,"src":%d,"uid":%d}|}
        round node src uid
  | Ack { round; node; uid; latency } ->
      Printf.sprintf {|{"ev":"ack","round":%d,"node":%d,"uid":%d,"latency":%d}|}
        round node uid latency
  | Progress { round; node; latency } ->
      Printf.sprintf {|{"ev":"progress","round":%d,"node":%d,"latency":%d}|}
        round node latency
  | Mark { round; node; label } ->
      Printf.sprintf {|{"ev":"mark","round":%d,"node":%d,"label":"%s"}|} round
        node (Json.escape label)
  | Crash { round; node } ->
      Printf.sprintf {|{"ev":"crash","round":%d,"node":%d}|} round node
  | Restart { round; node } ->
      Printf.sprintf {|{"ev":"restart","round":%d,"node":%d}|} round node

let of_json_line line =
  let ( let* ) = Result.bind in
  let* fields = Json.parse_flat line in
  let* ev = Json.field_str fields "ev" in
  let int = Json.field_int fields in
  match ev with
  | "round_start" ->
      let* round = int "round" in
      Ok (Round_start { round })
  | "round_end" ->
      let* round = int "round" in
      let* transmitters = int "transmitters" in
      let* deliveries = int "deliveries" in
      let* collisions = int "collisions" in
      Ok (Round_end { round; transmitters; deliveries; collisions })
  | "transmit" ->
      let* round = int "round" in
      let* node = int "node" in
      Ok (Transmit { round; node })
  | "deliver" ->
      let* round = int "round" in
      let* node = int "node" in
      Ok (Deliver { round; node })
  | "collision" ->
      let* round = int "round" in
      let* node = int "node" in
      Ok (Collision { round; node })
  | "phase_start" ->
      let* round = int "round" in
      let* phase = int "phase" in
      let* preamble = Json.field_bool fields "preamble" in
      Ok (Phase_start { round; phase; preamble })
  | "seed_commit" ->
      let* round = int "round" in
      let* node = int "node" in
      let* owner = int "owner" in
      Ok (Seed_commit { round; node; owner })
  | "bcast" ->
      let* round = int "round" in
      let* node = int "node" in
      let* uid = int "uid" in
      Ok (Bcast { round; node; uid })
  | "recv" ->
      let* round = int "round" in
      let* node = int "node" in
      let* src = int "src" in
      let* uid = int "uid" in
      Ok (Recv { round; node; src; uid })
  | "ack" ->
      let* round = int "round" in
      let* node = int "node" in
      let* uid = int "uid" in
      let* latency = int "latency" in
      Ok (Ack { round; node; uid; latency })
  | "progress" ->
      let* round = int "round" in
      let* node = int "node" in
      let* latency = int "latency" in
      Ok (Progress { round; node; latency })
  | "mark" ->
      let* round = int "round" in
      let* node = int "node" in
      let* label = Json.field_str fields "label" in
      Ok (Mark { round; node; label })
  | "crash" ->
      let* round = int "round" in
      let* node = int "node" in
      Ok (Crash { round; node })
  | "restart" ->
      let* round = int "round" in
      let* node = int "node" in
      Ok (Restart { round; node })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)
