type ci = { mean : float; lower : float; upper : float }

let mean_of samples =
  let sum = Array.fold_left ( +. ) 0.0 samples in
  sum /. float_of_int (Array.length samples)

let check_samples ~who samples =
  if Array.length samples = 0 then invalid_arg (who ^ ": empty samples");
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg (who ^ ": NaN sample"))
    samples

let bootstrap ?(replicates = 1000) ?(confidence = 0.95) ~seed samples =
  check_samples ~who:"Rank.bootstrap" samples;
  if replicates < 1 then invalid_arg "Rank.bootstrap: replicates must be >= 1";
  if
    Float.is_nan confidence || confidence <= 0.0 || confidence >= 1.0
  then invalid_arg "Rank.bootstrap: confidence must be in (0, 1)";
  let n = Array.length samples in
  let mean = mean_of samples in
  let degenerate =
    n = 1 || Array.for_all (fun x -> x = samples.(0)) samples
  in
  if degenerate then { mean; lower = mean; upper = mean }
  else begin
    let rng = Prng.Rng.create (Prng.Splitmix.mix (Int64.of_int seed)) in
    let means =
      Array.init replicates (fun _ ->
          let sum = ref 0.0 in
          for _ = 1 to n do
            sum := !sum +. samples.(Prng.Rng.int rng n)
          done;
          !sum /. float_of_int n)
    in
    Array.sort Float.compare means;
    let tail = (1.0 -. confidence) /. 2.0 in
    let lower = Summary.percentile means tail in
    let upper = Summary.percentile means (1.0 -. tail) in
    (* The point estimate is the sample mean, not the resampled one; a
       small resample set can land the percentile band beside it, so
       clamp the interval around the estimate. *)
    { mean; lower = Float.min lower mean; upper = Float.max upper mean }
  end

type row = { label : string; count : int; ci : ci; rank : int }

(* Per-row bootstrap stream keyed by (seed, label) so a row's interval is
   independent of which other rows share the table. *)
let label_seed ~seed label =
  let acc = ref (Int64.of_int seed) in
  String.iter
    (fun c ->
      acc :=
        Prng.Splitmix.mix
          (Int64.add
             (Int64.mul !acc 0x100000001B3L)
             (Int64.of_int (Char.code c))))
    label;
  Int64.to_int !acc

let table ?replicates ?confidence ?(descending = false) ?(tie_eps = 0.0) ~seed
    cells =
  if cells = [] then invalid_arg "Rank.table: empty table";
  if Float.is_nan tie_eps || tie_eps < 0.0 then
    invalid_arg "Rank.table: tie_eps must be >= 0";
  let labels = List.map fst cells in
  let sorted_labels = List.sort_uniq String.compare labels in
  if List.length sorted_labels <> List.length labels then
    invalid_arg "Rank.table: duplicate labels";
  let scored =
    List.map
      (fun (label, samples) ->
        check_samples ~who:"Rank.table" samples;
        let ci =
          bootstrap ?replicates ?confidence ~seed:(label_seed ~seed label)
            samples
        in
        (label, Array.length samples, ci))
      cells
  in
  let better a b = if descending then Float.compare b a else Float.compare a b in
  let ordered =
    List.sort
      (fun (la, _, ca) (lb, _, cb) ->
        let c = better ca.mean cb.mean in
        if c <> 0 then c else String.compare la lb)
      scored
  in
  (* Competition ("1224") ranking: a row ties the current group when its
     mean is within [tie_eps] of the group's representative (the group's
     first, i.e. best, mean). *)
  let rows, _, _, _ =
    List.fold_left
      (fun (acc, position, group_rank, group_mean) (label, count, ci) ->
        let position = position + 1 in
        let tied =
          position > 1
          && Float.abs (ci.mean -. group_mean) <= tie_eps
        in
        let group_rank = if tied then group_rank else position in
        let group_mean = if tied then group_mean else ci.mean in
        ({ label; count; ci; rank = group_rank } :: acc, position, group_rank,
         group_mean))
      ([], 0, 1, Float.nan) ordered
  in
  List.rev rows
