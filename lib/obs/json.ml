let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type value =
  | Int of int
  | Bool of bool
  | Str of string

exception Parse of string

let parse_flat line =
  let n = String.length line in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | Some c' -> fail "expected '%c' at %d, found '%c'" c !pos c'
    | None -> fail "expected '%c' at %d, found end of input" c !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = line.[!pos] in
      incr pos;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          (if !pos >= n then fail "dangling escape";
           let e = line.[!pos] in
           incr pos;
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               (* Exactly four hex digits, decoded by hand: routing the
                  substring through [int_of_string "0x…"] accepted
                  OCaml's numeric-literal leniencies — "\u0_41" parsed
                  as 0x41 — so a line could decode to a string whose
                  re-emission differed byte-for-byte from the input. *)
               if !pos + 4 > n then fail "truncated \\u escape";
               let code = ref 0 in
               for _ = 1 to 4 do
                 let d =
                   match line.[!pos] with
                   | '0' .. '9' as c -> Char.code c - Char.code '0'
                   | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                   | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                   | _ ->
                       fail "malformed \\u escape %S"
                         (String.sub line !pos (min 4 (n - !pos)))
                 in
                 incr pos;
                 code := (!code lsl 4) lor d
               done;
               if !code < 0x80 then Buffer.add_char buf (Char.chr !code)
               else fail "non-ASCII \\u escape unsupported"
           | e -> fail "unknown escape '\\%c'" e);
          go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_keyword kw v =
    if !pos + String.length kw <= n && String.sub line !pos (String.length kw) = kw
    then begin
      pos := !pos + String.length kw;
      v
    end
    else fail "malformed literal at %d" !pos
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while !pos < n && (match line.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if !pos < n && (line.[!pos] = '.' || line.[!pos] = 'e' || line.[!pos] = 'E')
    then fail "floats are not part of the event vocabulary (at %d)" start;
    match int_of_string_opt (String.sub line start (!pos - start)) with
    | Some v -> Int v
    | None -> fail "malformed number at %d" start
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some 't' -> parse_keyword "true" (Bool true)
    | Some 'f' -> parse_keyword "false" (Bool false)
    | Some ('-' | '0' .. '9') -> parse_int ()
    | Some c -> fail "unsupported value starting with '%c' at %d" c !pos
    | None -> fail "expected a value at %d, found end of input" !pos
  in
  try
    expect '{';
    skip_ws ();
    let fields = ref [] in
    (match peek () with
    | Some '}' -> incr pos
    | _ ->
        let rec members () =
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; skip_ws (); members ()
          | Some '}' -> incr pos
          | Some c -> fail "expected ',' or '}' at %d, found '%c'" !pos c
          | None -> fail "unterminated object"
        in
        members ());
    skip_ws ();
    if !pos <> n then fail "trailing garbage at %d" !pos;
    Ok (List.rev !fields)
  with Parse reason -> Error reason

let field fields key =
  match List.assoc_opt key fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let field_int fields key =
  match field fields key with
  | Ok (Int v) -> Ok v
  | Ok _ -> Error (Printf.sprintf "field %S is not an integer" key)
  | Error e -> Error e

let field_bool fields key =
  match field fields key with
  | Ok (Bool v) -> Ok v
  | Ok _ -> Error (Printf.sprintf "field %S is not a boolean" key)
  | Error e -> Error e

let field_str fields key =
  match field fields key with
  | Ok (Str v) -> Ok v
  | Ok _ -> Error (Printf.sprintf "field %S is not a string" key)
  | Error e -> Error e
