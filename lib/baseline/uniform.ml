let node ~p ~message ~rng =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg "Uniform.node: p must be in [0, 1]";
  Strategy.sender (Strategy.Fixed { p }) ~message ~rng ~node:0
