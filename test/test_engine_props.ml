(* Property-based tests of the engine's collision semantics: on random
   topologies with random transmission patterns, re-derive every delivery
   from first principles and compare. *)

open Core

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module Trace = Radiosim.Trace
module P = Radiosim.Process
module M = Localcast.Messages
module Rng = Prng.Rng

(* One random configuration: topology, Bernoulli scheduler, nodes that
   transmit i.i.d. with probability 0.3.  Returns the recorded trace plus
   everything needed to recheck it. *)
let random_execution seed =
  let rng = Rng.of_int seed in
  let n = 3 + Rng.int rng 25 in
  let dual =
    Geo.random_field ~rng ~n ~width:3.5 ~height:3.5 ~r:1.5 ~gray_g':0.6 ()
  in
  let scheduler = Sch.bernoulli ~seed ~p:0.4 in
  let nodes =
    Array.init n (fun src ->
        let node_rng = Rng.split rng in
        {
          P.decide =
            (fun ~round:_ _ ->
              if Rng.bernoulli node_rng 0.3 then
                P.Transmit (M.Data (M.payload ~src ~uid:0 ()))
              else P.Listen);
          absorb = (fun ~round:_ _ -> []);
        })
  in
  let trace, observer = Trace.recorder () in
  let (_ : int) =
    Engine.run ~observer ~dual ~scheduler ~nodes
      ~env:(Radiosim.Env.null ~name:"prop" ())
      ~rounds:30 ()
  in
  (dual, scheduler, trace)

(* Reference model of the collision rule, written independently of the
   engine: u receives m from v iff u listens, v transmits m, and v is the
   only transmitter among u's topology-neighbors this round. *)
let expected_delivery ~dual ~scheduler ~record u =
  match record.Trace.actions.(u) with
  | P.Transmit _ -> None
  | P.Listen ->
      let transmitting =
        Array.map
          (function P.Transmit _ -> true | P.Listen -> false)
          record.Trace.actions
      in
      let counts =
        Engine.transmitter_counts ~dual ~scheduler ~round:record.Trace.round
          ~transmitting ()
      in
      if counts.(u) <> 1 then None
      else begin
        (* find the unique transmitting topology-neighbor *)
        let result = ref None in
        Array.iter
          (fun v ->
            if transmitting.(v) then
              match record.Trace.actions.(v) with
              | P.Transmit m -> result := Some m
              | P.Listen -> ())
          (Dual.reliable_neighbors dual u);
        Array.iteri
          (fun edge (a, b) ->
            if Sch.active scheduler ~round:record.Trace.round ~edge then begin
              let consider x y =
                if x = u && transmitting.(y) then
                  match record.Trace.actions.(y) with
                  | P.Transmit m -> result := Some m
                  | P.Listen -> ()
              in
              consider a b;
              consider b a
            end)
          (Dual.unreliable_edges dual);
        !result
      end

(* Equivalence of the transmitter-centric engine and the retained
   listener-centric reference resolver: identically-seeded runs must
   produce bit-identical record streams (same actions, deliveries and
   outputs every round) across random duals, schedulers and transmit
   patterns. *)
let scheduler_of_seed seed =
  match seed mod 6 with
  | 0 -> Sch.reliable_only
  | 1 -> Sch.all_edges
  | 2 -> Sch.bernoulli ~seed ~p:0.4
  | 3 -> Sch.edge_phase_flicker ~period:(1 + (seed mod 7))
  | 4 -> Sch.bernoulli_sparse ~seed ~p:0.4
  | _ -> Sch.flicker ~period:4 ~duty:2

let equivalence_execution ~use_reference seed =
  let rng = Rng.of_int seed in
  let n = 2 + Rng.int rng 30 in
  let dual =
    Geo.random_field ~rng ~n ~width:3.5 ~height:3.5 ~r:1.6 ~gray_g':0.5 ()
  in
  let scheduler = scheduler_of_seed seed in
  (* Transmit probability spans sparse to saturated regimes. *)
  let p = [| 0.02; 0.1; 0.3; 0.8 |].(seed mod 4) in
  let node_rng = Rng.of_int (seed + 1) in
  let nodes =
    Array.init n (fun src ->
        let node_rng = Rng.split node_rng in
        {
          P.decide =
            (fun ~round:_ _ ->
              if Rng.bernoulli node_rng p then
                P.Transmit (M.Data (M.payload ~src ~uid:0 ()))
              else P.Listen);
          absorb =
            (fun ~round delivered ->
              match delivered with
              | Some (M.Data payload) -> [ (round, payload.M.src) ]
              | Some (M.Seed_msg _) | None -> []);
        })
  in
  let trace, observer = Trace.recorder () in
  let env = Radiosim.Env.null ~name:"equiv" () in
  let executed =
    if use_reference then
      Engine.run_reference ~observer ~dual ~scheduler ~nodes ~env ~rounds:25 ()
    else Engine.run ~observer ~dual ~scheduler ~nodes ~env ~rounds:25 ()
  in
  (executed, trace)

let records_equal a b =
  a.Trace.round = b.Trace.round
  && a.Trace.inputs = b.Trace.inputs
  && a.Trace.actions = b.Trace.actions
  && a.Trace.delivered = b.Trace.delivered
  && a.Trace.outputs = b.Trace.outputs

(* Every built-in scheduler, including the ones the trace-identity
   property does not sample (thwart is adversary-shaped but still a
   fixed function of the round). *)
let scheduler_zoo seed =
  [
    Sch.reliable_only;
    Sch.all_edges;
    Sch.bernoulli ~seed ~p:0.3;
    Sch.bernoulli_sparse ~seed ~p:0.3;
    Sch.flicker ~period:5 ~duty:2;
    Sch.edge_phase_flicker ~period:(1 + (seed mod 6));
    Sch.thwart ~hot:(fun r -> ((r * 7) + seed) mod 5 < 2);
  ]

let qcheck_cases =
  let open QCheck in
  [
    Test.make
      ~name:
        "built-in schedulers are oblivious: point queries are repeatable and \
         order-independent, and agree with sparse resolution"
      ~count:40 small_int
      (fun seed ->
        let m = 1 + (seed mod 53) in
        let rng = Rng.of_int (seed + 77) in
        List.for_all
          (fun sch ->
            (* Pseudo-random out-of-order (round, edge) point queries,
               interleaved with whole-round sparse resolutions that
               revisit rounds already queried — an oblivious schedule is
               a pure function of (round, edge), so every answer must be
               identical on the second pass. *)
            let queries =
              List.init 60 (fun _ -> (Rng.int rng 40, Rng.int rng m))
            in
            let ask () =
              List.map
                (fun (round, edge) -> Sch.active sch ~round ~edge)
                queries
            in
            let first = ask () in
            let buf = Array.make m (-1) in
            let sparse_ok =
              List.for_all
                (fun round ->
                  let count = Sch.fill_active_sparse sch ~round ~m buf in
                  if count < 0 || count > m then false
                  else begin
                    let member = Array.make m false in
                    let ok = ref true in
                    for i = 0 to count - 1 do
                      if i > 0 && buf.(i - 1) >= buf.(i) then ok := false;
                      member.(buf.(i)) <- true
                    done;
                    for edge = 0 to m - 1 do
                      if Sch.active sch ~round ~edge <> member.(edge) then
                        ok := false
                    done;
                    !ok
                  end)
                (* out of order, with a repeat *)
                [ 17; 3; 29; 3; 0; 38 ]
            in
            sparse_ok && first = ask ())
          (scheduler_zoo seed));
    Test.make
      ~name:"transmitter-centric engine is trace-identical to the reference"
      ~count:60 small_int
      (fun seed ->
        let fast_n, fast = equivalence_execution ~use_reference:false seed in
        let ref_n, reference = equivalence_execution ~use_reference:true seed in
        fast_n = ref_n
        && Trace.length fast = Trace.length reference
        && begin
             let ok = ref true in
             for i = 0 to Trace.length fast - 1 do
               if not (records_equal (Trace.get fast i) (Trace.get reference i))
               then ok := false
             done;
             !ok
           end);
    Test.make
      ~name:"run_adaptive on a lifted oblivious scheduler matches run"
      ~count:25 small_int
      (fun seed ->
        let run_engine ~adaptive =
          let rng = Rng.of_int seed in
          let n = 2 + Rng.int rng 20 in
          let dual =
            Geo.random_field ~rng ~n ~width:3.0 ~height:3.0 ~r:1.6 ~gray_g':0.5 ()
          in
          let scheduler = Sch.bernoulli ~seed ~p:0.5 in
          let node_rng = Rng.of_int (seed + 1) in
          let nodes =
            Array.init n (fun src ->
                let node_rng = Rng.split node_rng in
                {
                  P.decide =
                    (fun ~round:_ _ ->
                      if Rng.bernoulli node_rng 0.3 then
                        P.Transmit (M.Data (M.payload ~src ~uid:0 ()))
                      else P.Listen);
                  absorb = (fun ~round:_ _ -> []);
                })
          in
          let trace, observer = Trace.recorder () in
          let env = Radiosim.Env.null ~name:"equiv" () in
          let (_ : int) =
            if adaptive then
              Engine.run_adaptive ~observer ~dual
                ~adversary:(Radiosim.Adaptive.of_oblivious scheduler)
                ~nodes ~env ~rounds:20 ()
            else Engine.run ~observer ~dual ~scheduler ~nodes ~env ~rounds:20 ()
          in
          List.init (Trace.length trace) (fun i ->
              let r = Trace.get trace i in
              (r.Trace.actions, r.Trace.delivered))
        in
        run_engine ~adaptive:true = run_engine ~adaptive:false);
    Test.make
      ~name:"fill_active_sparse agrees with active on random schedulers"
      ~count:60 small_int
      (fun seed ->
        let scheduler = scheduler_of_seed seed in
        let m = 1 + (seed mod 97) in
        let buf = Array.make m (-1) in
        let ok = ref true in
        for round = 0 to 14 do
          let count = Sch.fill_active_sparse scheduler ~round ~m buf in
          if count < 0 || count > m then ok := false;
          let member = Array.make m false in
          for i = 0 to count - 1 do
            if i > 0 && buf.(i - 1) >= buf.(i) then ok := false;
            member.(buf.(i)) <- true
          done;
          for edge = 0 to m - 1 do
            if Sch.active scheduler ~round ~edge <> member.(edge) then
              ok := false
          done
        done;
        !ok);
    Test.make ~name:"engine matches the reference collision rule" ~count:40
      small_int
      (fun seed ->
        let dual, scheduler, trace = random_execution seed in
        let ok = ref true in
        Trace.iter
          (fun record ->
            for u = 0 to Dual.n dual - 1 do
              let expected = expected_delivery ~dual ~scheduler ~record u in
              if record.Trace.delivered.(u) <> expected then ok := false
            done)
          trace;
        !ok);
    Test.make ~name:"delivered messages were transmitted by a G'-neighbor"
      ~count:40 small_int
      (fun seed ->
        let dual, _, trace = random_execution seed in
        let ok = ref true in
        Trace.iter
          (fun record ->
            Array.iteri
              (fun u delivered ->
                match delivered with
                | Some (M.Data p) ->
                    let src = p.M.src in
                    let is_neighbor =
                      Array.exists (( = ) src) (Dual.all_neighbors dual u)
                    in
                    let src_transmitted =
                      match record.Trace.actions.(src) with
                      | P.Transmit _ -> true
                      | P.Listen -> false
                    in
                    if not (is_neighbor && src_transmitted) then ok := false
                | Some (M.Seed_msg _) | None -> ())
              record.Trace.delivered)
          trace;
        !ok);
    Test.make ~name:"transmitters never receive" ~count:40 small_int
      (fun seed ->
        let dual, _, trace = random_execution seed in
        let ok = ref true in
        Trace.iter
          (fun record ->
            Array.iteri
              (fun u action ->
                match (action, record.Trace.delivered.(u)) with
                | P.Transmit _, Some _ -> ok := false
                | _ -> ())
              record.Trace.actions)
          trace;
        ignore dual;
        !ok);
    Test.make ~name:"reliable-only delivery is a lower bound" ~count:25
      small_int
      (fun seed ->
        (* Removing unreliable links can only remove contention from G
           deliveries: any round where a node has exactly one reliable
           transmitting neighbor and no scheduler, it receives. *)
        let dual, _, _ = random_execution seed in
        let n = Dual.n dual in
        let nodes =
          Array.init n (fun src ->
              if src = 0 then P.silent ()
              else
                {
                  P.decide =
                    (fun ~round:_ _ ->
                      if src = 1 then P.Transmit (M.Data (M.payload ~src ~uid:0 ()))
                      else P.Listen);
                  absorb = (fun ~round:_ _ -> []);
                })
        in
        let trace, observer = Trace.recorder () in
        let (_ : int) =
          Engine.run ~observer ~dual ~scheduler:Sch.reliable_only ~nodes
            ~env:(Radiosim.Env.null ~name:"prop" ())
            ~rounds:1 ()
        in
        let record = Trace.get trace 0 in
        let should_receive =
          n > 1 && Array.exists (( = ) 1) (Dual.reliable_neighbors dual 0)
        in
        (record.Trace.delivered.(0) <> None) = should_receive);
  ]

let suite = List.map QCheck_alcotest.to_alcotest qcheck_cases
