module Dual = Dualgraph.Dual
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module Trace = Radiosim.Trace

type outcome = {
  report : Lb_spec.report;
  env_log : Lb_env.entry list;
  rounds_executed : int;
  obs_snapshots : Obs.Metrics.snapshot list;
}

let default_scheduler ~seed = Sch.bernoulli ~seed ~p:0.5

let finish ?glue ~monitor ~envt ~rounds_executed () =
  {
    report = Lb_spec.finish monitor;
    env_log = Lb_env.log envt;
    rounds_executed;
    obs_snapshots =
      (match glue with Some g -> Lb_obs.snapshots g | None -> []);
  }

(* The optional observability wiring shared by [run] and [one_shot]: a
   protocol-event translator when a sink is present (metrics ride on
   it), composed after the spec monitor so both see each record. *)
let obs_glue ?sink ?metrics ~dual ~params () =
  match sink with
  | None -> None
  | Some sink -> Some (Lb_obs.create ?metrics ~sink ~dual ~params ())

(* A restarted node re-enters with fresh SeedAlg state: a brand-new
   LBAlg process whose generator is derived from (seed, node, round) via
   SplitMix — a pure function of the run's identity, so faulted runs stay
   bit-identical at any trial-parallelism split. *)
let reviver ?seed_source ~params ~seed () ~node ~round =
  let mixed =
    Prng.Splitmix.mix
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.add
            (Int64.mul (Int64.of_int (node + 1)) 0xC2B2AE3D27D4EB4FL)
            (Int64.mul (Int64.of_int (round + 1)) 0x165667B19E3779F9L)))
  in
  Lb_alg.node ?seed_source params ~id:node ~rng:(Prng.Rng.create mixed)

let revive_opt ?seed_source ~params ~seed faults =
  match faults with
  | None -> None
  | Some _ -> Some (reviver ?seed_source ~params ~seed ())

let run ?scheduler ?seed_source ?observer ?sink ?metrics ?faults ?reception
    ~dual ~params ~senders ~phases ~seed () =
  let scheduler =
    match scheduler with Some s -> s | None -> default_scheduler ~seed
  in
  let n = Dual.n dual in
  let rng = Prng.Rng.of_int seed in
  let nodes = Lb_alg.network ?seed_source params ~rng ~n in
  let envt = Lb_env.saturate ~n ~senders () in
  let monitor = Lb_spec.monitor ?faults ~dual ~params ~env:envt () in
  let glue = obs_glue ?sink ?metrics ~dual ~params () in
  let observe record =
    Lb_spec.observe monitor record;
    (match glue with Some g -> Lb_obs.observer g record | None -> ());
    match observer with Some f -> f record | None -> ()
  in
  let revive = revive_opt ?seed_source ~params ~seed faults in
  let rounds_executed =
    Engine.run ~observer:observe ?sink ?metrics ?faults ?revive ?reception
      ~dual ~scheduler ~nodes
      ~env:(Lb_env.env envt)
      ~rounds:(phases * params.Params.phase_len)
      ()
  in
  finish ?glue ~monitor ~envt ~rounds_executed ()

let one_shot ?scheduler ?sink ?metrics ?faults ?reception ~dual ~params
    ~sender ~seed () =
  let scheduler =
    match scheduler with Some s -> s | None -> default_scheduler ~seed
  in
  let n = Dual.n dual in
  let rng = Prng.Rng.of_int seed in
  let nodes = Lb_alg.network params ~rng ~n in
  let envt = Lb_env.one_shot ~n ~bcasts:[ (sender, 0) ] in
  let monitor = Lb_spec.monitor ?faults ~dual ~params ~env:envt () in
  let glue = obs_glue ?sink ?metrics ~dual ~params () in
  let observe record =
    Lb_spec.observe monitor record;
    match glue with Some g -> Lb_obs.observer g record | None -> ()
  in
  let revive = revive_opt ~params ~seed faults in
  let rounds_executed =
    Engine.run ~observer:observe ?sink ?metrics ?faults ?revive ?reception
      ~dual ~scheduler ~nodes
      ~env:(Lb_env.env envt)
      ~rounds:(Params.t_ack_rounds params)
      ()
  in
  let outcome = finish ?glue ~monitor ~envt ~rounds_executed () in
  (* Completion is survivor-relative under a fault plan: only reliable
     neighbors alive for the whole run owe (and are owed) a reception. *)
  let counts v =
    match faults with
    | None -> true
    | Some plan ->
        Faults.Plan.alive_through plan ~node:v ~from:0
          ~until:(rounds_executed - 1)
  in
  let completion =
    match outcome.env_log with
    | [ entry ] ->
        let last = ref 0 and all = ref true in
        Dual.iter_reliable_neighbors dual sender (fun v ->
            if counts v then begin
              let first_recv =
                List.filter_map
                  (fun (u, round) -> if u = v then Some round else None)
                  entry.Lb_env.recv_rounds
                |> List.fold_left min max_int
              in
              if first_recv = max_int then all := false
              else if first_recv > !last then last := first_recv
            end);
        if !all then Some !last else None
    | _ -> None
  in
  (outcome, completion)

let first_reception ?scheduler ?seed_source ?sink ?faults ?reception ~dual
    ~params ~receiver ~max_rounds ~seed () =
  let scheduler =
    match scheduler with Some s -> s | None -> default_scheduler ~seed
  in
  let n = Dual.n dual in
  let rng = Prng.Rng.of_int seed in
  let nodes = Lb_alg.network ?seed_source params ~rng ~n in
  let senders = List.filter (fun v -> v <> receiver) (List.init n Fun.id) in
  let envt = Lb_env.saturate ~n ~senders () in
  let result = ref None in
  let stop record =
    match record.Trace.delivered.(receiver) with
    | Some (Messages.Data _) ->
        if !result = None then result := Some record.Trace.round;
        true
    | _ -> false
  in
  let revive = revive_opt ?seed_source ~params ~seed faults in
  let (_ : int) =
    Engine.run ~stop ?sink ?faults ?revive ?reception ~dual ~scheduler ~nodes
      ~env:(Lb_env.env envt) ~rounds:max_rounds ()
  in
  !result
