(** The back-off strategy family behind one shared signature.

    The contention-management literature the paper argues against —
    Bar-Yehuda–Goldreich–Itai Decay, fixed-probability Aloha, windowed
    exponential back-off, the re-seeding sawtooth of the contention
    bounds line of work (arXiv 1803.02216, 1206.0154) — is a space of
    {e transmit-probability schedules} differing only in how the
    schedule evolves and what feedback (if any) resets it.  This module
    makes that space first-class: a strategy is a pure description
    ({!t}), instantiated per node into a {!state} exposing a per-round
    transmit decision ({!decide}) and a collision/silence feedback hook
    ({!feedback}).  The legacy {!Decay}, {!Uniform} and {!Round_robin}
    baselines are thin wrappers over this interface (round-for-round
    identical to their pre-refactor implementations — the test suite
    keeps frozen copies as oracles), and the tournament runner
    ([bench/exp_tournament.ml], experiment E25) sweeps the whole family
    against the adversary zoo.

    {b Determinism contract} (the {!Macapps.Workload} contract, enforced
    by QCheck): a node's transmit schedule is a pure function of
    (strategy, seed, node, round, feedback history).  Each node draws
    from its own counter-mode stream ({!node_rng}), so schedules are
    independent of the order nodes are queried in and of any
    trial-parallelism split; {!decide} consumes the stream once per
    round, in strictly increasing round order. *)

type t =
  | Fixed of { p : float }
      (** Transmit with constant probability [p] every round — the
          Aloha-style baseline; with [p = 1/Δ] it is the optimal static
          choice against known contention [Δ]. *)
  | Decay of { levels : int }
      (** The BGI fixed geometric ladder: in round [t] transmit with
          probability [2^-(t mod levels + 1)].  Schedule-driven; ignores
          feedback.  This is exactly the legacy {!Decay} baseline. *)
  | Decay_restart of { levels : int }
      (** A descending ladder with feedback re-seeding: the level starts
          at 0 (probability 1/2), descends one step per round and parks
          at [levels - 1]; decoding {e any} message ({!feedback} with
          [heard = true]) restarts the ladder from the top, because a
          successful decode means the local contention estimate the
          ladder had backed off for is stale. *)
  | Sawtooth of { levels : int }
      (** The re-seeding sweep: round [t] transmits with probability
          [2^-(levels - t mod levels)], i.e. each epoch sweeps the whole
          probability range from [2^-levels] {e up} to [1/2] and then
          drops back.  Late arrivals are caught by the next sweep at
          every density — the sawtooth idea from the contention-bounds
          literature.  Schedule-driven; ignores feedback. *)
  | Backoff of { max_exp : int }
      (** Log-window binary exponential back-off: window [k]
          (0-indexed) lasts [2^k] rounds, during which the node
          transmits each round with probability [2^-k]; after the
          window expires [k] advances (saturating at [max_exp]), so
          after [W] rounds the window index has grown only
          logarithmically in [W].  Decoding a message resets the
          window to [k = 0]. *)
  | Slotted of { slots : int }
      (** TDMA round-robin: node [v] transmits exactly in rounds
          [t ≡ v mod slots].  Deterministic, contention-free with
          [slots >= n] — and non-local: it needs a global bound on the
          id space, which is the documented reason the paper rejects
          it. *)

val validate : t -> (unit, string) result
(** Parameter check shared by {!parse} and {!init}: [p] within [0, 1]
    (NaN rejected), [1 <= levels <= 62], [0 <= max_exp <= 62] (so every
    probability [2^-k] stays an exact OCaml int power), [slots >= 1]. *)

val parse : string -> (t, string) result
(** Spec grammar, one strategy per string (case-insensitive):

    {v
    fixed:P | decay:L | decay-restart:L | sawtooth:L
            | backoff:K | slotted:N
    v}

    e.g. ["fixed:0.125"], ["decay:5"], ["backoff:6"].  {!to_spec} is the
    canonical inverse. *)

val to_spec : t -> string
(** Canonical spec string; [parse (to_spec t) = Ok t]. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_spec}. *)

val name : t -> string
(** The family name alone ([“fixed”], [“decay”], …) for table labels. *)

val levels_for : delta':int -> int
(** The standard ladder depth against maximum potential degree [Δ']:
    ⌈log₂ Δ'⌉ + 1 levels — re-exported by {!Decay.levels_for}. *)

val zoo : delta':int -> n:int -> t list
(** The canonical tournament arms for a topology with [n] nodes and
    maximum potential degree [delta']: [Fixed (1/max 2 delta')] and,
    with [l = levels_for ~delta'], [Decay l], [Decay_restart l],
    [Sawtooth l], [Backoff l] and [Slotted n]. *)

(** {1 Per-node runtime state} *)

type state

val init : t -> rng:Prng.Rng.t -> node:int -> state
(** Fresh per-node state.  [rng] is the node's private stream (use
    {!node_rng} for the counter-mode derivation); [node] feeds the
    {!Slotted} slot discipline and must be [>= 0].
    @raise Invalid_argument if {!validate} rejects the strategy or
    [node < 0]. *)

val spec : state -> t

val decide : state -> round:int -> bool
(** The round's transmit decision.  Rounds must be presented in
    strictly increasing order starting from a round [>= 0]; randomized
    strategies consume exactly one draw from the node's stream per call
    (none when the scheduled probability is 0 or 1, matching
    {!Prng.Rng.bernoulli}).
    @raise Invalid_argument on a non-monotone round. *)

val feedback : state -> round:int -> heard:bool -> unit
(** The collision/silence feedback hook: [heard = true] means the node
    decoded a message this round, [heard = false] means it heard
    nothing — silence and collision are indistinguishable in the model
    (no collision detection), and a transmitting node hears nothing.
    Pure state update; consumes no randomness, so schedule-driven
    strategies are bit-unaffected by it. *)

val node_rng : ?round:int -> seed:int -> node:int -> unit -> Prng.Rng.t
(** The counter-mode per-node stream: a SplitMix generator keyed by
    [mix(seed·A + (node+1)·B + round·C)] — a pure function of its
    arguments, so any subset of nodes materialized in any order (or
    split across domains) draws identical streams.  [round] (default 0)
    keys the fresh stream of a node {e revived} at that round by a
    fault plan; revival rounds are always [>= 1], so revived streams
    never collide with initial ones. *)

(** {1 Process builders} *)

val sender :
  t ->
  message:Localcast.Messages.payload ->
  rng:Prng.Rng.t ->
  node:int ->
  (Localcast.Messages.msg, unit, unit) Radiosim.Process.node
(** A perpetually active sender for [message]: transmits whenever
    {!decide} says so, and feeds every reception (or its absence) back
    through {!feedback}.  The legacy baselines are this builder with
    the corresponding strategy.  A round that goes {e backwards}
    restarts the schedule (fresh {!state}) while continuing the same
    random stream — so a sender object reused across engine runs
    behaves like the pre-refactor baselines did. *)

val relay :
  t ->
  ?initial:Localcast.Messages.payload ->
  ?budget:int ->
  rng:Prng.Rng.t ->
  node:int ->
  unit ->
  (Localcast.Messages.msg, unit, unit) Radiosim.Process.node
(** The tournament's relay discipline.  A node starts silent unless it
    [initial]ly holds a payload; on first decoding a data payload it
    acquires it and begins relaying it on the strategy's schedule,
    counting {e local} rounds from its acquisition (round 0 of the
    schedule is the round after first reception; an initial holder
    starts at engine round 0).  [budget], when given, is the
    broadcast's total active window in {e engine} rounds: every relay
    falls silent from round [budget] on — the a-priori window every
    ack-free baseline must fix in advance (experiment E20's collapse
    under churn is exactly this window expiring before churned
    receivers return, and the relay with [initial] and [budget] is
    draw-for-draw E20's budgeted sender).  Feedback flows only while
    the relay is active; a
    crashed-and-revived relay (fresh state via {!node_rng} with the
    revival round) has lost the message and starts silent again. *)
