(* Experiment E23: reception models — the dual-graph collision rule vs
   SINR physical interference, same algorithm, same embeddings.

   Every row pair runs LBAlg over the *same* random fields, seeds and
   link schedules; only the reception model differs.  Three questions:

   - service guarantees: how do acks, reliability and progress move when
     adversarial edge unreliability is replaced by emergent
     interference?  (The spec monitor stays dual-graph-relative, so its
     "validity" column doubles as a beyond-G' decode counter under SINR:
     a lone transmitter is decodable out to d* = (power/(beta·noise))^
     (1/alpha), past the geographic parameter r.)
   - parameter sensitivity: a harsher decode threshold (beta) or noise
     floor shrinks d* and drowns contended rounds first;
   - determinism at scale: the tiled engine under SINR must reproduce
     the sequential trace hash bit-for-bit at n = 10^4 — the per-column
     aggregation makes the float accumulation order a property of the
     topology, not the tiling.

   The run *fails hard* (nonzero exit) if the dual-graph rows show
   validity violations, if the SINR baseline completes zero acks, or if
   the tiles=1 and tiles=2 SINR trace hashes diverge — this is the CI
   smoke for the reception subsystem. *)

open Core
open Exp_common
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Tiled = Radiosim.Tiled
module Trace = Radiosim.Trace
module Reception = Radiosim.Reception
module P = Radiosim.Process
module M = Localcast.Messages
module Params = Localcast.Params
module L = Localcast
module Table = Stats.Table

let models () =
  [
    ("dual-graph", Reception.dual_graph);
    ("sinr (defaults)", Reception.sinr ());
    ("sinr beta=3", Reception.sinr ~beta:3.0 ());
    ("sinr noise=0.1", Reception.sinr ~noise:0.1 ());
  ]

(* --- saturated service comparison --- *)

let saturation () =
  let trials = trials_scaled 8 in
  let phases = 6 in
  let n = if !quick then 24 else 40 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E23a: saturated LBAlg, same fields and seeds (n=%d, 3 senders, %d \
            phases)"
           n phases)
      ~columns:
        [
          "reception"; "acks"; "late"; "missing"; "progress fail freq";
          "validity viol";
        ]
  in
  let failures = ref [] in
  List.iter
    (fun (label, reception) ->
      (* Same salt for every model: paired topologies and seeds. *)
      let samples =
        run_trials ~n:trials (fun ~trial:_ ~seed ->
            let dual = random_field ~seed ~n () in
            let params = Params.of_dual ~eps1:0.1 ~tack_phases:2 dual in
            let outcome =
              L.Service.run ~reception ~dual ~params
                ~senders:[ 0; n / 3; 2 * n / 3 ]
                ~phases ~seed ()
            in
            let r = outcome.L.Service.report in
            ( r.L.Lb_spec.ack_count,
              r.L.Lb_spec.late_ack_count,
              r.L.Lb_spec.missing_ack_count,
              r.L.Lb_spec.progress_opportunities,
              r.L.Lb_spec.progress_failures,
              r.L.Lb_spec.validity_violations ))
      in
      let acks = ref 0 and late = ref 0 and missing = ref 0 in
      let opps = ref 0 and fails = ref 0 and validity = ref 0 in
      List.iter
        (fun (a, l, m, o, f, v) ->
          acks := !acks + a;
          late := !late + l;
          missing := !missing + m;
          opps := !opps + o;
          fails := !fails + f;
          validity := !validity + v)
        samples;
      Table.add_row table
        [
          label;
          Table.cell_int !acks;
          Table.cell_int !late;
          Table.cell_int !missing;
          Table.cell_float ~decimals:4
            (float_of_int !fails /. float_of_int (max 1 !opps));
          Table.cell_int !validity;
        ];
      if label = "dual-graph" && !validity > 0 then
        failures :=
          Printf.sprintf "dual-graph rows must audit clean, got %d validity \
                          violations" !validity
          :: !failures;
      if label = "sinr (defaults)" && !acks = 0 then
        failures := "SINR baseline completed zero acks" :: !failures)
    (models ());
  Table.print table;
  note
    "The spec monitor is dual-graph-relative: under SINR, 'validity'\n\
     counts decodes from beyond-G' transmitters (physically real — a\n\
     lone transmitter carries past r), not soundness bugs.\n";
  !failures

(* --- one-shot reliability on a shared field --- *)

let one_shot () =
  let trials = trials_scaled 8 in
  let n = if !quick then 24 else 40 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E23b: one-shot bcast from node 0, same fields and seeds (n=%d)" n)
      ~columns:[ "reception"; "reliability"; "mean completion"; "incomplete" ]
  in
  List.iter
    (fun (label, reception) ->
      let samples =
        run_trials ~n:trials (fun ~trial:_ ~seed ->
            let dual = random_field ~seed ~n () in
            let params = Params.of_dual ~eps1:0.1 ~tack_phases:2 dual in
            let outcome, completion =
              L.Service.one_shot ~reception ~dual ~params ~sender:0 ~seed ()
            in
            let r = outcome.L.Service.report in
            ( r.L.Lb_spec.reliability_attempts,
              r.L.Lb_spec.reliability_failures,
              completion ))
      in
      let attempts = ref 0 and fails = ref 0 in
      let completions = ref [] and incomplete = ref 0 in
      List.iter
        (fun (a, f, completion) ->
          attempts := !attempts + a;
          fails := !fails + f;
          match completion with
          | Some round -> completions := float_of_int round :: !completions
          | None -> incr incomplete)
        samples;
      let mean =
        if !completions = [] then Float.nan
        else Stats.Summary.mean !completions
      in
      Table.add_row table
        [
          label;
          Printf.sprintf "%d/%d" (!attempts - !fails) !attempts;
          Table.cell_float ~decimals:0 mean;
          Table.cell_int !incomplete;
        ])
    (models ());
  Table.print table;
  note
    "Completion = round the last reliable neighbor first received.\n\
     Under SINR the ack discipline rides interference rather than\n\
     adversarial edge choice; harsher beta/noise delays completion.\n"

(* --- determinism at scale: SINR trace hash, tiles 1 vs 2 --- *)

let fnv_init = 0xcbf29ce48422325
let fnv h x = (h lxor x) * 0x100000001b3

let digest_observer acc record =
  let h = ref (fnv !acc record.Trace.round) in
  Array.iter
    (fun a ->
      h :=
        fnv !h
          (match a with
          | P.Transmit (M.Data p) -> 3 + p.M.src
          | P.Transmit _ -> 2
          | P.Listen -> 1))
    record.Trace.actions;
  Array.iter
    (fun d ->
      h :=
        fnv !h
          (match d with
          | Some (M.Data p) -> 3 + p.M.src
          | Some _ -> 2
          | None -> 1))
    record.Trace.delivered;
  acc := !h

let scale_hash () =
  let n = if !quick then 2_000 else 10_000 in
  let rounds = if !quick then 10 else 24 in
  let seed = master_seed + 23 in
  let side = sqrt (float_of_int n) in
  let dual =
    Geo.random_field
      ~rng:(Prng.Rng.of_int seed)
      ~n ~width:side ~height:side ~r:1.0 ~gray_g':0.5 ()
  in
  let reception = Reception.sinr ~alpha:3.0 ~beta:1.2 ~noise:0.02 () in
  let run tiles =
    let rng = Prng.Rng.of_int (seed + 1) in
    let nodes =
      Array.init n (fun src ->
          Baseline.Uniform.node ~p:0.01
            ~message:(M.payload ~src ~uid:0 ())
            ~rng:(Prng.Rng.split rng))
    in
    let hash = ref fnv_init in
    let (_ : int) =
      Tiled.run
        ~observer:(digest_observer hash)
        ~reception ~tiles ~dual
        ~scheduler:(Sch.bernoulli_sparse ~seed ~p:0.02)
        ~nodes
        ~env:(Radiosim.Env.null ~name:"e23" ())
        ~rounds ()
    in
    !hash
  in
  let h1 = run 1 and h2 = run 2 in
  let table =
    Table.create
      ~title:"E23c: SINR trace determinism across tilings"
      ~columns:[ "n"; "rounds"; "tiles"; "trace hash" ]
  in
  Table.add_row table
    [ Table.cell_int n; Table.cell_int rounds; "1"; Printf.sprintf "%016x" h1 ];
  Table.add_row table
    [ Table.cell_int n; Table.cell_int rounds; "2"; Printf.sprintf "%016x" h2 ];
  Table.print table;
  if h1 <> h2 then
    [ Printf.sprintf "SINR tiles=1 vs tiles=2 trace hash mismatch \
                      (%016x vs %016x)" h1 h2 ]
  else begin
    note "Hashes match: the tiling never shows in the SINR trace.\n";
    []
  end

let run () =
  section "E23: reception models — dual-graph vs SINR on the same embeddings";
  let failures = saturation () in
  one_shot ();
  let failures = failures @ scale_hash () in
  match failures with
  | [] -> ()
  | fs ->
      List.iter (fun f -> Printf.eprintf "E23 FAILURE: %s\n%!" f) fs;
      failwith "E23: reception-model smoke failed"
