(* Experiment E14: the cost of LOOSE coordination.  LBAlg pays for not
   having a global seed: seed agreement leaves up to δ distinct seed
   groups per neighborhood, and only rounds where the right group
   participates alone are useful (Lemma C.1's 1/δ factor).  The Oracle
   seed source hands every node the same seed (perfect coordination,
   impossible in the real model) with an identical phase structure, so
   the gap between the two isolates exactly that factor. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module M = Localcast.Messages
module Params = Localcast.Params
module L = Localcast
module Table = Stats.Table

let max_rounds = 60_000

let latency ~dual ~params ~seed_source ~seed =
  let n = Dual.n dual in
  let rng = Prng.Rng.of_int seed in
  let nodes = L.Lb_alg.network ?seed_source params ~rng ~n in
  let senders = List.init (n - 1) (fun i -> i + 1) in
  let envt = L.Lb_env.saturate ~n ~senders () in
  let result = ref None in
  let stop record =
    match record.Radiosim.Trace.delivered.(0) with
    | Some (M.Data _) ->
        if !result = None then result := Some record.Radiosim.Trace.round;
        true
    | _ -> false
  in
  let (_ : int) =
    Engine.run ~stop ~dual
      ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
      ~nodes
      ~env:(L.Lb_env.env envt)
      ~rounds:max_rounds ()
  in
  !result

let reception_rate ~dual ~params ~seed_source ~seed ~phases =
  let n = Dual.n dual in
  let rng = Prng.Rng.of_int seed in
  let nodes = L.Lb_alg.network ?seed_source params ~rng ~n in
  let senders = List.init (n - 1) (fun i -> i + 1) in
  let envt = L.Lb_env.saturate ~n ~senders () in
  let body = ref 0 and received = ref 0 in
  let observer record =
    if not (L.Lb_alg.is_preamble_round params record.Radiosim.Trace.round) then begin
      incr body;
      match record.Radiosim.Trace.delivered.(0) with
      | Some (M.Data _) -> incr received
      | _ -> ()
    end
  in
  let (_ : int) =
    Engine.run ~observer ~dual
      ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
      ~nodes
      ~env:(L.Lb_env.env envt)
      ~rounds:(phases * params.Params.phase_len)
      ()
  in
  float_of_int !received /. float_of_int (max 1 !body)

let run () =
  section "E14: ablation — seed agreement vs a global-seed oracle";
  note
    "Identical phase structure; Oracle hands every node the SAME seed\n\
     each phase (unachievable in the model), Agreement runs real SeedAlg.\n\
     Receiver u in a clique of senders; per-body-round reception\n\
     frequency p_u and first-reception latency.";
  let trials = trials_scaled 8 in
  let table =
    Table.create ~title:"E14: perfect vs loose coordination"
      ~columns:
        [ "delta"; "source"; "p_u"; "mean latency"; "latency ratio" ]
  in
  let deltas = if !quick then [ 8 ] else [ 4; 8; 16; 32 ] in
  List.iter
    (fun delta ->
      let dual = Geo.clique (delta + 1) in
      let params = Params.of_dual ~eps1:0.1 ~tack_phases:2 dual in
      (* Same salt for both seed sources: paired per-trial seeds. *)
      let sample f = run_trials ~n:trials (fun ~trial:_ ~seed -> f ~seed) in
      let measure source_of =
        let rates =
          sample (fun ~seed ->
              reception_rate ~dual ~params ~seed_source:(source_of seed) ~seed
                ~phases:4)
        in
        let latencies =
          sample (fun ~seed -> latency ~dual ~params ~seed_source:(source_of seed) ~seed)
        in
        (Stats.Summary.mean rates, mean_option_latency ~max_rounds latencies)
      in
      let agreement_pu, agreement_lat = measure (fun _ -> None) in
      let oracle_pu, oracle_lat =
        measure (fun seed -> Some (L.Lb_alg.Oracle (Prng.Rng.of_int (seed * 13))))
      in
      let add name pu lat ratio =
        Table.add_row table
          [
            Table.cell_int delta;
            name;
            Table.cell_float ~decimals:4 pu;
            Table.cell_float ~decimals:0 lat;
            ratio;
          ]
      in
      add "agreement" agreement_pu agreement_lat "1.0";
      add "oracle" oracle_pu oracle_lat
        (Table.cell_float ~decimals:2 (agreement_lat /. Float.max 1.0 oracle_lat)))
    deltas;
  Table.print table;
  note
    "Expected: latency ratio stays a small constant — loose coordination\n\
     is at least as good as perfect coordination, the paper's core design\n\
     bet.  In fact measured p_u is often HIGHER under agreement: with a\n\
     handful of groups each running its own participation lottery, some\n\
     group participates alone more often than one global group\n\
     participates at all, and the smaller participating group faces less\n\
     internal contention.  The δ-bound is what keeps this a win: the\n\
     guarantee needs FEW groups, not one.\n"
