module Emb = Dualgraph.Embedding
module Grid = Dualgraph.Grid

(* Two co-located points would yield infinite received power; clamp the
   squared distance so the math stays finite (the clamp is far below any
   inter-node distance a generator produces). *)
let min_d2 = 1e-12

type t = {
  n : int;
  px : float array;
  py : float array;
  col : int array;  (* node -> grid column, fixed at creation *)
  ncols : int;
  near : int;
  power : float;
  beta : float;
  noise : float;
  jam : float;
  neg_half_alpha : float;
  pw_far : float array;
      (* pw_far.(d): power of one transmitter at the center of a column
         d columns away, i.e. power / (d * cell)^alpha; index 0 unused *)
  (* per-column listener CSR, fixed at creation: the nodes of column c
     occupy slots [slot_off.(c) .. slot_off.(c+1) - 1] of slot_node,
     ascending by id within a column.  This is the same (column, id)
     order Tile ranks vertices by, so a tile's members are a contiguous
     slot range of it — what lets the tiled engine partition the round's
     reception work by slots without consulting the tiling. *)
  slot_off : int array;  (* length ncols + 1 *)
  slot_node : int array;  (* length n, column-major, ascending per column *)
  (* per-round state, rebuilt by load_round *)
  cnt : int array;  (* transmitters per column *)
  off : int array;  (* CSR offsets into col_tx, length ncols + 1 *)
  fill : int array;  (* placement cursor during the counting sort *)
  col_tx : int array;  (* transmitter ids, column-major, ascending per column *)
  far : float array;  (* far-field interference seen from each column *)
  occ : int array;  (* occupied columns (cnt > 0), ascending *)
  mutable nocc : int;
  act : int array;  (* active columns (within near of an occupied), ascending *)
  mutable nact : int;
  act_mark : Bytes.t;  (* per-column activation byte, mirrors act *)
  mutable off_checked : bool;  (* one-time load_round sanity assert fired *)
  (* batched-scan scratch, indexed by slot.  Disjoint slot ranges touch
     disjoint entries, so concurrent tiles share one t race-free. *)
  s_lx : float array;  (* listener x, gathered once per scan_slots call *)
  s_ly : float array;
  s_best : int array;  (* strongest in-band transmitter, -1 if none *)
  s_best_pw : float array;
  s_sum : float array;  (* exact near-band power sum *)
}

let create ~params dual =
  let p : Reception.sinr = params in
  let emb =
    match Dualgraph.Dual.embedding dual with
    | Some e -> e
    | None ->
        invalid_arg
          "Sinr.create: the SINR reception model needs a Euclidean embedding \
           (this topology has none)"
  in
  let n = Emb.n emb in
  let px = Array.make (max n 1) 0.0 and py = Array.make (max n 1) 0.0 in
  for v = 0 to n - 1 do
    let pt = Emb.point emb v in
    px.(v) <- pt.Emb.x;
    py.(v) <- pt.Emb.y
  done;
  (* Bucket at the Tile stripe granularity: grid columns of side
     max r 1.  The column partition is a property of the topology alone,
     never of the runtime tile count — that is what keeps the far-field
     aggregate, the activation set (and so every trace) tiling-invariant. *)
  let cell = Float.max (Dualgraph.Dual.r dual) 1.0 in
  let grid = Grid.create ~cell emb in
  let ncols = Grid.cols grid in
  let col = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    col.(v) <- Grid.cell_index grid v mod ncols
  done;
  let pw_far = Array.make (max ncols 1) 0.0 in
  for d = 1 to ncols - 1 do
    pw_far.(d) <- p.Reception.power *. ((float_of_int d *. cell) ** -.p.Reception.alpha)
  done;
  (* Counting sort of all nodes by column: the listener CSR. *)
  let slot_off = Array.make (ncols + 1) 0 in
  for v = 0 to n - 1 do
    slot_off.(col.(v) + 1) <- slot_off.(col.(v) + 1) + 1
  done;
  for c = 1 to ncols do
    slot_off.(c) <- slot_off.(c) + slot_off.(c - 1)
  done;
  let slot_node = Array.make (max n 1) 0 in
  let cursor = Array.copy slot_off in
  for v = 0 to n - 1 do
    let c = col.(v) in
    slot_node.(cursor.(c)) <- v;
    cursor.(c) <- cursor.(c) + 1
  done;
  {
    n;
    px;
    py;
    col;
    ncols;
    near = p.Reception.near;
    power = p.Reception.power;
    beta = p.Reception.beta;
    noise = p.Reception.noise;
    jam = p.Reception.jam;
    neg_half_alpha = -.p.Reception.alpha /. 2.0;
    pw_far;
    slot_off;
    slot_node;
    cnt = Array.make ncols 0;
    off = Array.make (ncols + 1) 0;
    fill = Array.make ncols 0;
    col_tx = Array.make (max n 1) 0;
    far = Array.make ncols 0.0;
    occ = Array.make ncols 0;
    nocc = 0;
    act = Array.make ncols 0;
    nact = 0;
    act_mark = Bytes.make ncols '\000';
    off_checked = false;
    s_lx = Array.make (max n 1) 0.0;
    s_ly = Array.make (max n 1) 0.0;
    s_best = Array.make (max n 1) (-1);
    s_best_pw = Array.make (max n 1) 0.0;
    s_sum = Array.make (max n 1) 0.0;
  }

let cols t = t.ncols
let column_of t v = t.col.(v)
let slot_off t = t.slot_off
let slot_node t = t.slot_node
let active_columns t = (t.act, t.nact)
let column_active t c = Bytes.unsafe_get t.act_mark c = '\001'

(* The one-time sanity check that stands in for the per-read bounds
   checks the scan loops no longer pay: the CSR offsets must be monotone
   and cover exactly the loaded transmitters. *)
let off_monotone t ~count =
  let ok = ref (t.off.(0) = 0 && t.off.(t.ncols) = count) in
  for c = 0 to t.ncols - 1 do
    if t.off.(c + 1) < t.off.(c) then ok := false
  done;
  !ok

let load_round t ~transmitters ~count =
  if count < 0 || count > t.n then invalid_arg "Sinr.load_round: bad count";
  let cnt = t.cnt and off = t.off and fill = t.fill in
  Array.fill cnt 0 t.ncols 0;
  for i = 0 to count - 1 do
    let c = Array.unsafe_get t.col (Array.unsafe_get transmitters i) in
    Array.unsafe_set cnt c (Array.unsafe_get cnt c + 1)
  done;
  off.(0) <- 0;
  for c = 0 to t.ncols - 1 do
    off.(c + 1) <- off.(c) + cnt.(c);
    fill.(c) <- off.(c)
  done;
  assert (
    t.off_checked
    ||
    (t.off_checked <- true;
     off_monotone t ~count));
  (* Stable counting sort: the input is ascending by id, so each
     column's slice comes out ascending by id too — the canonical
     accumulation order receive relies on. *)
  for i = 0 to count - 1 do
    let w = Array.unsafe_get transmitters i in
    let c = Array.unsafe_get t.col w in
    Array.unsafe_set t.col_tx (Array.unsafe_get fill c) w;
    Array.unsafe_set fill c (Array.unsafe_get fill c + 1)
  done;
  (* Occupied columns, ascending. *)
  let nocc = ref 0 in
  for c = 0 to t.ncols - 1 do
    if Array.unsafe_get cnt c > 0 then begin
      Array.unsafe_set t.occ !nocc c;
      incr nocc
    end
  done;
  t.nocc <- !nocc;
  (* Far-field table: column i sees count_j transmitters at column-center
     distance |i - j| * cell for every column beyond the near band.
     Only occupied columns contribute — a column with cnt = 0 adds
     0.0 · pw_far = +0.0, and the accumulator starts at +0.0 and only
     ever adds non-negative finite terms (power > 0 keeps pw_far free of
     NaN), so x +. 0.0 = x bit for bit and skipping the zero terms
     leaves every partial sum unchanged.  O(K·cols) per round for K
     occupied columns, against the dense O(cols²). *)
  for i = 0 to t.ncols - 1 do
    let s = ref 0.0 in
    for k = 0 to !nocc - 1 do
      let j = Array.unsafe_get t.occ k in
      let d = abs (j - i) in
      if d > t.near then
        s := !s +. (float_of_int (Array.unsafe_get cnt j) *. Array.unsafe_get t.pw_far d)
    done;
    Array.unsafe_set t.far i !s
  done;
  (* Active columns: the union of [c - near, c + near] over the occupied
     columns, merged ascending (occ is ascending, so a single cursor
     dedups the overlapping windows).  A listener outside every window
     has no in-band transmitter — its scan would find nothing and
     receive would return -1 — so the engines skip it wholesale. *)
  for i = 0 to t.nact - 1 do
    Bytes.unsafe_set t.act_mark (Array.unsafe_get t.act i) '\000'
  done;
  let nact = ref 0 and next = ref 0 in
  for k = 0 to !nocc - 1 do
    let c = Array.unsafe_get t.occ k in
    let lo = max !next (c - t.near) and hi = min (t.ncols - 1) (c + t.near) in
    for j = lo to hi do
      Array.unsafe_set t.act !nact j;
      Bytes.unsafe_set t.act_mark j '\001';
      incr nact
    done;
    if hi >= !next then next := hi + 1
  done;
  t.nact <- !nact

(* The shared near-band scan: candidate (strongest, first-seen on ties)
   plus the exact power sum over the band, accumulated in fixed global
   order — ascending column, then ascending id. *)
let scan t listener =
  let cx = Array.unsafe_get t.col listener in
  let x = Array.unsafe_get t.px listener
  and y = Array.unsafe_get t.py listener in
  let lo = max 0 (cx - t.near) and hi = min (t.ncols - 1) (cx + t.near) in
  let best = ref (-1) and best_pw = ref 0.0 and sum = ref 0.0 in
  for c = lo to hi do
    for idx = Array.unsafe_get t.off c to Array.unsafe_get t.off (c + 1) - 1 do
      let w = Array.unsafe_get t.col_tx idx in
      let dx = Array.unsafe_get t.px w -. x
      and dy = Array.unsafe_get t.py w -. y in
      let d2 = Float.max ((dx *. dx) +. (dy *. dy)) min_d2 in
      let pw = t.power *. (d2 ** t.neg_half_alpha) in
      sum := !sum +. pw;
      if pw > !best_pw then begin
        best_pw := pw;
        best := w
      end
    done
  done;
  (cx, !best, !best_pw, !sum)

let diag t ~jammed ~listener =
  let cx, best, best_pw, sum = scan t listener in
  let floor = t.noise +. (if jammed then t.jam else 0.0) in
  if best < 0 then (-1, 0.0, t.far.(cx) +. floor)
  else (best, best_pw, sum -. best_pw +. t.far.(cx) +. floor)

let receive t ~jammed ~listener =
  let cx = Array.unsafe_get t.col listener in
  if Bytes.unsafe_get t.act_mark cx = '\000' then -1
  else begin
    let _, best, best_pw, sum = scan t listener in
    if best < 0 then -1
    else begin
      let floor = t.noise +. (if jammed then t.jam else 0.0) in
      let interference = sum -. best_pw +. t.far.(cx) +. floor in
      if best_pw >= t.beta *. interference then best else -2
    end
  end

(* Kernel 3: the batched per-column scan.  One pass over each in-band
   transmitter slice serves every listener of the column at once — the
   loop interchange keeps each listener's accumulation sequence exactly
   the per-listener scan's (band columns ascending, ids ascending within
   a column, strict-> tie-break), so sums and candidates are bit-identical.
   Transmitting or dead nodes inside the range are scanned too (their
   scratch is simply never read back); the few wasted lanes cost less
   than branching per (transmitter, listener) pair. *)
let scan_slots t ~column ~lo ~hi =
  if lo < hi then begin
    let s_lx = t.s_lx
    and s_ly = t.s_ly
    and s_best = t.s_best
    and s_best_pw = t.s_best_pw
    and s_sum = t.s_sum in
    for s = lo to hi - 1 do
      let u = Array.unsafe_get t.slot_node s in
      Array.unsafe_set s_lx s (Array.unsafe_get t.px u);
      Array.unsafe_set s_ly s (Array.unsafe_get t.py u);
      Array.unsafe_set s_best s (-1);
      Array.unsafe_set s_best_pw s 0.0;
      Array.unsafe_set s_sum s 0.0
    done;
    let clo = max 0 (column - t.near)
    and chi = min (t.ncols - 1) (column + t.near) in
    for c = clo to chi do
      for idx = Array.unsafe_get t.off c to Array.unsafe_get t.off (c + 1) - 1 do
        let w = Array.unsafe_get t.col_tx idx in
        let wx = Array.unsafe_get t.px w and wy = Array.unsafe_get t.py w in
        for s = lo to hi - 1 do
          let dx = wx -. Array.unsafe_get s_lx s
          and dy = wy -. Array.unsafe_get s_ly s in
          let d2 = Float.max ((dx *. dx) +. (dy *. dy)) min_d2 in
          let pw = t.power *. (d2 ** t.neg_half_alpha) in
          Array.unsafe_set s_sum s (Array.unsafe_get s_sum s +. pw);
          if pw > Array.unsafe_get s_best_pw s then begin
            Array.unsafe_set s_best_pw s pw;
            Array.unsafe_set s_best s w
          end
        done
      done
    done
  end

let verdict t ~jammed ~slot =
  let best = Array.unsafe_get t.s_best slot in
  if best < 0 then -1
  else begin
    let best_pw = Array.unsafe_get t.s_best_pw slot in
    let cx = Array.unsafe_get t.col (Array.unsafe_get t.slot_node slot) in
    let floor = t.noise +. (if jammed then t.jam else 0.0) in
    let interference =
      Array.unsafe_get t.s_sum slot -. best_pw
      +. Array.unsafe_get t.far cx +. floor
    in
    if best_pw >= t.beta *. interference then best else -2
  end

(* ------------------------------------------------------------------ *)
(* The frozen dense reference: PR 8's listener-centric path, kept
   verbatim as the executable oracle the property suite holds the
   sparse kernels to.  It reads only cnt/off/col_tx from the loaded
   round — never far, act or the scratch — so it cannot be contaminated
   by the code it checks. *)

let scan_reference t listener =
  let cx = Array.unsafe_get t.col listener in
  let x = Array.unsafe_get t.px listener
  and y = Array.unsafe_get t.py listener in
  let lo = max 0 (cx - t.near) and hi = min (t.ncols - 1) (cx + t.near) in
  let best = ref (-1) and best_pw = ref 0.0 and sum = ref 0.0 in
  for c = lo to hi do
    for idx = t.off.(c) to t.off.(c + 1) - 1 do
      let w = Array.unsafe_get t.col_tx idx in
      let dx = Array.unsafe_get t.px w -. x
      and dy = Array.unsafe_get t.py w -. y in
      let d2 = Float.max ((dx *. dx) +. (dy *. dy)) min_d2 in
      let pw = t.power *. (d2 ** t.neg_half_alpha) in
      sum := !sum +. pw;
      if pw > !best_pw then begin
        best_pw := pw;
        best := w
      end
    done
  done;
  (cx, !best, !best_pw, !sum)

let far_reference t column =
  let s = ref 0.0 in
  for j = 0 to t.ncols - 1 do
    let d = abs (j - column) in
    if d > t.near then
      s := !s +. (float_of_int t.cnt.(j) *. t.pw_far.(d))
  done;
  !s

let receive_reference t ~jammed ~listener =
  let cx, best, best_pw, sum = scan_reference t listener in
  if best < 0 then -1
  else begin
    let floor = t.noise +. (if jammed then t.jam else 0.0) in
    let interference = sum -. best_pw +. far_reference t cx +. floor in
    if best_pw >= t.beta *. interference then best else -2
  end
