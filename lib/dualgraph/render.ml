let field ?(columns = 60) dual =
  match Dual.embedding dual with
  | None -> invalid_arg "Render.field: dual graph has no embedding"
  | Some emb ->
      let n = Dual.n dual in
      if n = 0 then "(empty field)\n"
      else begin
        let min_x = ref infinity and max_x = ref neg_infinity in
        let min_y = ref infinity and max_y = ref neg_infinity in
        for v = 0 to n - 1 do
          let p = Embedding.point emb v in
          if p.Embedding.x < !min_x then min_x := p.Embedding.x;
          if p.Embedding.x > !max_x then max_x := p.Embedding.x;
          if p.Embedding.y < !min_y then min_y := p.Embedding.y;
          if p.Embedding.y > !max_y then max_y := p.Embedding.y
        done;
        let span_x = Float.max 1e-9 (!max_x -. !min_x) in
        let span_y = Float.max 1e-9 (!max_y -. !min_y) in
        let cols = max 1 columns in
        (* Terminal cells are ~2x taller than wide; halve the row count to
           keep the sketch roughly isometric. *)
        let rows =
          max 1 (int_of_float (Float.round (float_of_int cols *. span_y /. span_x /. 2.0)))
        in
        let counts = Array.make_matrix rows cols 0 in
        for v = 0 to n - 1 do
          let p = Embedding.point emb v in
          let col =
            min (cols - 1)
              (int_of_float ((p.Embedding.x -. !min_x) /. span_x *. float_of_int (cols - 1)))
          in
          let row =
            min (rows - 1)
              (int_of_float ((p.Embedding.y -. !min_y) /. span_y *. float_of_int (rows - 1)))
          in
          counts.(row).(col) <- counts.(row).(col) + 1
        done;
        let buf = Buffer.create (rows * (cols + 1)) in
        for row = rows - 1 downto 0 do
          for col = 0 to cols - 1 do
            let c = counts.(row).(col) in
            Buffer.add_char buf
              (if c = 0 then '.'
               else if c <= 9 then Char.chr (Char.code '0' + c)
               else '+')
          done;
          Buffer.add_char buf '\n'
        done;
        Buffer.contents buf
      end

let degree_histogram dual =
  let g = Dual.g dual in
  let n = Dual.n dual in
  if n = 0 then "(no vertices)\n"
  else begin
    let max_degree = ref 0 in
    for v = 0 to n - 1 do
      if Graph.degree g v > !max_degree then max_degree := Graph.degree g v
    done;
    let counts = Array.make (!max_degree + 1) 0 in
    for v = 0 to n - 1 do
      let d = Graph.degree g v in
      counts.(d) <- counts.(d) + 1
    done;
    let buf = Buffer.create 256 in
    Array.iteri
      (fun degree count ->
        if count > 0 then
          Buffer.add_string buf
            (Printf.sprintf "deg %2d | %s %d\n" degree (String.make count '#') count))
      counts;
    Buffer.contents buf
  end
