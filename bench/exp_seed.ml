(* Experiments E1-E4: the seed agreement service (Theorem 3.1).

   E1  δ-bound: distinct committed owners per G'-neighborhood is
       O(log 1/ε) and does not grow with Δ.
   E2  running time: Ts = O(log Δ · log²(1/ε)).
   E3  error: the per-node agreement event B_{u,δ} fails with frequency
       well below ε, for the paper's δ = O(r² log(1/ε)).
   E4  independence: committed seed bits are fair and cross-owner seeds
       are uncorrelated (Lemmas B.17/B.18). *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Params = Localcast.Params
module L = Localcast
module Table = Stats.Table

(* Neighborhood owner statistics across trials. *)
let owner_stats ~dual ~params ~delta_bound ~trials =
  let outcomes =
    run_trials ~n:trials (fun ~trial:_ ~seed ->
        run_seed_trial ~dual ~params ~delta_bound
          ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
          ~seed)
  in
  let max_owners =
    List.map (fun o -> float_of_int o.seed_report.L.Seed_spec.max_owners) outcomes
  in
  let mean_owner_counts =
    List.concat_map
      (fun o ->
        Array.to_list
          (Array.map float_of_int o.seed_report.L.Seed_spec.owners_per_vertex))
      outcomes
  in
  let violations =
    List.fold_left
      (fun acc o -> acc + o.seed_report.L.Seed_spec.violation_count)
      0 outcomes
  in
  let node_trials = trials * Dual.n dual in
  ( Stats.Summary.of_list max_owners,
    Stats.Summary.of_list mean_owner_counts,
    violations,
    node_trials )

let e1 () =
  section "E1: seed partition bound δ (Theorem 3.1)";
  note
    "Claim: #distinct seed owners in any G'-neighborhood is O(r² log(1/ε)),\n\
     independent of Δ.  Sweep ε at fixed Δ, then Δ at fixed ε.";
  let trials = trials_scaled 20 in
  let table_eps =
    Table.create ~title:"E1a: owners per neighborhood vs eps (clique, delta=16)"
      ~columns:
        [ "eps"; "bound c*log(1/eps)"; "mean owners"; "max owners (mean)";
          "max owners (max)" ]
  in
  let dual = Geo.clique 16 in
  List.iter
    (fun eps ->
      let params = Params.make_seed ~eps ~delta:16 ~kappa:16 () in
      let bound =
        int_of_float (Float.ceil (2.0 *. (log (1.0 /. eps) /. log 2.0)))
      in
      let max_s, mean_s, _, _ =
        owner_stats ~dual ~params ~delta_bound:(max 1 bound) ~trials
      in
      Table.add_row table_eps
        [
          Table.cell_float ~decimals:3 eps;
          Table.cell_int bound;
          Table.cell_float mean_s.Stats.Summary.mean;
          Table.cell_float max_s.Stats.Summary.mean;
          Table.cell_float ~decimals:0 max_s.Stats.Summary.max;
        ])
    [ 0.25; 0.1; 0.05; 0.02 ];
  Table.print table_eps;
  let table_delta =
    Table.create ~title:"E1b: owners per neighborhood vs delta (eps=0.1)"
      ~columns:[ "delta"; "mean owners"; "max owners (mean)"; "max owners (max)" ]
  in
  List.iter
    (fun delta ->
      let dual = Geo.clique delta in
      let params = Params.make_seed ~eps:0.1 ~delta ~kappa:16 () in
      let max_s, mean_s, _, _ = owner_stats ~dual ~params ~delta_bound:8 ~trials in
      Table.add_row table_delta
        [
          Table.cell_int delta;
          Table.cell_float mean_s.Stats.Summary.mean;
          Table.cell_float max_s.Stats.Summary.mean;
          Table.cell_float ~decimals:0 max_s.Stats.Summary.max;
        ])
    (if !quick then [ 4; 16; 64 ] else [ 4; 8; 16; 32; 64; 128 ]);
  Table.print table_delta;
  note
    "Expected shape: E1a grows (slowly) as log(1/eps); E1b is flat in delta.\n"

let e2 () =
  section "E2: seed agreement running time (Theorem 3.1)";
  note
    "Claim: Ts = O(log Δ · log²(1/ε)) rounds.  The ratio column should be\n\
     roughly constant across both sweeps.";
  let table =
    Table.create ~title:"E2: Ts vs (log delta, log^2(1/eps))"
      ~columns:[ "delta"; "eps"; "Ts rounds"; "logD*log2(1/eps)"; "ratio" ]
  in
  let row ~delta ~eps =
    let params = Params.make_seed ~eps ~delta ~kappa:16 () in
    let ts = Params.seed_duration params in
    let log_delta = float_of_int params.Params.phases in
    let li = log (1.0 /. params.Params.seed_eps) /. log 2.0 in
    let predictor = log_delta *. li *. li in
    Table.add_row table
      [
        Table.cell_int delta;
        Table.cell_float ~decimals:3 eps;
        Table.cell_int ts;
        Table.cell_float predictor;
        Table.cell_float (float_of_int ts /. predictor);
      ]
  in
  List.iter (fun delta -> row ~delta ~eps:0.1) [ 2; 8; 32; 128; 512 ];
  List.iter (fun eps -> row ~delta:16 ~eps) [ 0.25; 0.1; 0.05; 0.01 ];
  Table.print table

let e3 () =
  section "E3: seed agreement error probability (Seed spec condition 3)";
  note
    "Claim: P(B_{u,δ} fails) <= ε per node, with the paper's\n\
     δ = c·r²·log(1/ε).  Frequencies are per (node, trial); Wilson 95%% CIs.";
  let trials = trials_scaled 30 in
  let table =
    Table.create ~title:"E3: per-node agreement failure frequency"
      ~columns:
        [ "topology"; "scheduler"; "eps"; "delta bound"; "failures";
          "node-trials"; "freq (95% CI)" ]
  in
  let cases =
    [
      ("random field", "bernoulli", fun seed -> Sch.bernoulli ~seed ~p:0.5);
      ("random field", "all-edges", fun _ -> Sch.all_edges);
      ("random field", "flicker", fun _ -> Sch.flicker ~period:8 ~duty:4);
    ]
  in
  List.iter
    (fun eps ->
      List.iter
        (fun (topo_name, sched_name, scheduler_of) ->
          let samples =
            run_trials ~n:trials (fun ~trial:_ ~seed ->
                let dual = random_field ~seed ~n:50 () in
                let params =
                  Params.make_seed ~eps ~delta:(Dual.delta dual) ~kappa:16 ()
                in
                let r = Dual.r dual in
                let delta_bound =
                  max 1
                    (int_of_float
                       (Float.ceil
                          (6.0 *. r *. r *. (log (1.0 /. eps) /. log 2.0))))
                in
                let outcome =
                  run_seed_trial ~dual ~params ~delta_bound
                    ~scheduler:(scheduler_of seed) ~seed
                in
                ( outcome.seed_report.L.Seed_spec.violation_count,
                  Dual.n dual,
                  delta_bound ))
          in
          let failures = ref 0 and node_trials = ref 0 in
          let delta_bound = ref 0 in
          List.iter
            (fun (violations, nodes, bound) ->
              failures := !failures + violations;
              node_trials := !node_trials + nodes;
              delta_bound := bound)
            samples;
          let ci =
            Stats.Ci.wilson ~successes:!failures ~trials:!node_trials ()
          in
          Table.add_row table
            [
              topo_name;
              sched_name;
              Table.cell_float ~decimals:3 eps;
              Table.cell_int !delta_bound;
              Table.cell_int !failures;
              Table.cell_int !node_trials;
              Format.asprintf "%a" Stats.Ci.pp ci;
            ])
        cases)
    [ 0.1; 0.05 ];
  Table.print table;
  note "Expected: observed frequency (and its upper CI) below eps.\n"

let e4 () =
  section "E4: seed independence (Seed spec condition 4, Lemmas B.17/B.18)";
  let trials = trials_scaled 40 in
  let dual = Geo.clique 8 in
  let params = Params.make_seed ~eps:0.1 ~delta:8 ~kappa:128 () in
  let samples =
    run_trials ~n:trials (fun ~trial:_ ~seed ->
        let outcome =
          run_seed_trial ~dual ~params ~delta_bound:8
            ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
            ~seed
        in
        let by_owner = Hashtbl.create 8 in
        let firsts = ref [] in
        Array.iter
          (List.iter (fun (_, ({ Localcast.Messages.owner; seed = s } as a)) ->
               if not (Hashtbl.mem by_owner owner) then begin
                 Hashtbl.add by_owner owner s;
                 firsts := a :: !firsts
               end))
          outcome.decisions;
        let seeds = Hashtbl.fold (fun _ s acc -> s :: acc) by_owner [] in
        let agreement =
          match seeds with
          | a :: b :: _ -> Some (L.Seed_spec.cross_agreement a b)
          | _ -> None
        in
        (!firsts, agreement))
  in
  let announcements = ref [] in
  let agreements = ref [] in
  List.iter
    (fun (firsts, agreement) ->
      announcements := firsts @ !announcements;
      match agreement with
      | Some a -> agreements := a :: !agreements
      | None -> ())
    samples;
  let balance = L.Seed_spec.bit_balance !announcements in
  let cross = Stats.Summary.of_list !agreements in
  let table =
    Table.create ~title:"E4: committed-seed randomness"
      ~columns:[ "statistic"; "measured"; "ideal" ]
  in
  Table.add_row table
    [ "bit balance (fraction of 1s)"; Table.cell_float ~decimals:4 balance; "0.5000" ];
  Table.add_row table
    [
      "cross-owner bit agreement (mean)";
      Table.cell_float ~decimals:4 cross.Stats.Summary.mean;
      "0.5000";
    ];
  Table.add_row table
    [
      "cross-owner pairs sampled";
      Table.cell_int cross.Stats.Summary.count;
      "-";
    ];
  Table.print table

let run () =
  e1 ();
  e2 ();
  e3 ();
  e4 ()
