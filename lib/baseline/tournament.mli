(** Shared cell semantics for the strategy tournament (experiment E25).

    One tournament {e cell} is (topology, adversary, fault plan, arm):
    a single broadcast from a designated sender, relayed under one
    contention strategy — or served by LBAlg — against one link
    scheduler and one fault plan, measured over the sender's reliable
    neighborhood.  This module fixes those semantics in one place so the
    bench matrix ([bench/exp_tournament.ml]), the CI smoke and the CLI
    [tournament] subcommand cannot drift apart.

    The measurement discipline is experiment E20's, generalized:

    - {e eligibility}: a reliable neighbor of the sender counts iff it
      is alive at the cell's last round — full-run survivors and
      crashed-but-restarted returners; a node that ends the run dead is
      out of scope (matching the survivor-relative {!Localcast.Lb_spec}
      accounting);
    - {e coverage}: eligible neighbors that ever cleanly received the
      sender's payload, over eligible;
    - {e latency}: mean first-reception round over eligible neighbors,
      censoring a starved neighbor at the horizon;
    - {e cost}: transmission decisions charged across {e all} nodes for
      the whole run ({!Obs.Event.Transmit} count — jammed transmitters
      are charged, per the fault-plan contract).

    Strategy arms run every node as a {!Strategy.relay} (the sender
    holds the payload initially) with the retransmission budget of one
    LBAlg phase — the a-priori budget every ack-free baseline must
    choose.  The LBAlg arm is {!Localcast.Service.one_shot} on the same
    seeds, schedules and fault plans.  Determinism: per-node strategy
    streams come from {!Strategy.node_rng}, so a trial is a pure
    function of (arena, arm, seed) at any domain count. *)

type adversary =
  | Oblivious of (seed:int -> Radiosim.Scheduler.t)
      (** An oblivious link scheduler derived from the trial seed (so
          paired arms see identical schedules). *)
  | Adaptive_jam
      (** {!Radiosim.Adaptive.jam} — the collision-forcing adversary.
          LBAlg is {e not} run in such arenas ({!supports} is [false]):
          the paper assumes an oblivious scheduler, and its predecessor
          work proves local broadcast impossible against this one, so
          the cell is only meaningful for the back-off family (cf.
          experiment E13). *)

type arm = Strategy of Strategy.t | Lbalg

val arm_label : arm -> string
(** The family label used to pair rows {e across} topologies:
    {!Strategy.name} for strategy arms (their parameters are
    topology-derived, so specs differ between arenas), ["lbalg"]
    otherwise. *)

val arms : dual:Dualgraph.Dual.t -> arm list
(** The canonical arm list for a topology: {!Strategy.zoo} (sized from
    the topology's [Δ'] and [n]) plus [Lbalg]. *)

type arena = {
  dual : Dualgraph.Dual.t;
  params : Localcast.Params.t;
  sender : int;
  horizon : int;  (** rounds per trial: the ack window [t_ack] *)
  budget : int;  (** strategy relay budget: one phase *)
  adversary : adversary;
  plan_of : (seed:int -> Faults.Plan.t) option;
      (** per-trial fault plan, derived from the trial seed; [None]
          means fault-free *)
}

val arena :
  ?sender:int ->
  ?adversary:adversary ->
  ?plan_of:(seed:int -> Faults.Plan.t) ->
  dual:Dualgraph.Dual.t ->
  unit ->
  arena
(** Build an arena with the tournament's standard derivations:
    [params = Params.of_dual ~eps1:0.1 ~tack_phases:2], horizon
    [t_ack_rounds], budget one [phase_len] — experiment E20's exact
    setup.  [adversary] defaults to the Bernoulli(1/2) scheduler
    derived from each trial seed; [sender] defaults to node 0.
    @raise Invalid_argument if [sender] is out of range. *)

val supports : arena -> arm -> bool
(** [false] only for [Lbalg] under {!Adaptive_jam}. *)

type sample = {
  coverage : float;  (** covered / eligible, in [0, 1] *)
  latency : float;  (** mean first-reception round, horizon-censored *)
  cost : float;  (** transmission decisions charged, whole network *)
}

val trial : arena -> arm -> seed:int -> sample option
(** Run one cell trial.  [None] when the arm is unsupported in this
    arena or no neighbor is eligible (the fault plan killed the whole
    neighborhood) — callers drop such trials from the aggregate. *)
