(* Tests for the Lb_probe trace analytics. *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Trace = Radiosim.Trace
module M = Localcast.Messages
module Params = Localcast.Params
module Lb_alg = Localcast.Lb_alg
module Lb_env = Localcast.Lb_env
module Probe = Localcast.Lb_probe
module Rng = Prng.Rng

let run ~dual ~params ~senders ~phases ~scheduler ~rng_seed =
  let n = Dual.n dual in
  let nodes = Lb_alg.network params ~rng:(Rng.of_int rng_seed) ~n in
  let envt = Lb_env.saturate ~n ~senders () in
  let trace, observer = Trace.recorder () in
  let (_ : int) =
    Radiosim.Engine.run ~observer ~dual ~scheduler ~nodes
      ~env:(Lb_env.env envt)
      ~rounds:(phases * params.Params.phase_len)
      ()
  in
  trace

let test_contention_partition () =
  let dual = Geo.clique 6 in
  let params = Params.of_dual ~tack_phases:3 ~eps1:0.2 dual in
  let scheduler = Sch.reliable_only in
  let trace =
    run ~dual ~params ~senders:[ 1; 2; 3; 4; 5 ] ~phases:3 ~scheduler ~rng_seed:1
  in
  let c = Probe.contention_profile ~dual ~scheduler ~params ~node:0 trace in
  checki "classes partition body rounds" c.Probe.body_rounds
    (c.Probe.silent + c.Probe.single + c.Probe.collision);
  checki "body rounds counted" (3 * params.Params.tprog) c.Probe.body_rounds;
  checkb "some singles occur" true (c.Probe.single > 0)

let test_reception_rate_matches_deliveries () =
  (* The probe's single-transmitter count must equal the engine's clean
     deliveries at a receiver that always listens. *)
  let dual = Geo.clique 4 in
  let params = Params.of_dual ~tack_phases:3 ~eps1:0.2 dual in
  let scheduler = Sch.reliable_only in
  let trace = run ~dual ~params ~senders:[ 1; 2; 3 ] ~phases:2 ~scheduler ~rng_seed:2 in
  let c = Probe.contention_profile ~dual ~scheduler ~params ~node:0 trace in
  let deliveries =
    List.length
      (List.filter
         (fun (round, m) ->
           (not (Lb_alg.is_preamble_round params round))
           && match m with M.Data _ -> true | M.Seed_msg _ -> false)
         (Trace.deliveries_of trace 0))
  in
  checki "probe singles = clean data deliveries" deliveries c.Probe.single

let test_reception_rate_zero_when_empty () =
  let c = { Probe.body_rounds = 0; silent = 0; single = 0; collision = 0 } in
  Alcotest.check (Alcotest.float 1e-9) "empty" 0.0 (Probe.reception_rate c)

let test_committed_owners () =
  let dual = Geo.clique 5 in
  let params = Params.of_dual ~tack_phases:2 ~eps1:0.2 dual in
  let trace =
    run ~dual ~params ~senders:[ 0 ] ~phases:2 ~scheduler:Sch.reliable_only
      ~rng_seed:3
  in
  let owners = Probe.committed_owners ~params ~n:5 ~phase:0 trace in
  Array.iteri
    (fun v owner ->
      match owner with
      | Some o -> checkb (Printf.sprintf "node %d owner valid" v) true (o >= 0 && o < 5)
      | None -> Alcotest.fail "missing commit in phase 0")
    owners;
  (* Groups in a clique neighborhood = distinct owners overall. *)
  let distinct =
    Array.to_list owners
    |> List.filter_map Fun.id
    |> List.sort_uniq Int.compare
    |> List.length
  in
  checki "neighborhood groups" distinct
    (Probe.groups_in_neighborhood ~dual ~owners ~node:0)

let test_committed_owners_out_of_range_phase () =
  let dual = Geo.pair () in
  let params = Params.of_dual ~tack_phases:2 ~eps1:0.2 dual in
  let trace =
    run ~dual ~params ~senders:[ 0 ] ~phases:1 ~scheduler:Sch.reliable_only
      ~rng_seed:4
  in
  let owners = Probe.committed_owners ~params ~n:2 ~phase:7 trace in
  checkb "uncovered phase yields None" true (Array.for_all (( = ) None) owners)

let test_groups_bounded_by_delta () =
  (* Lemma C.1's premise on a real run: the number of groups in any
     neighborhood stays below the spec's δ. *)
  let dual =
    Geo.random_field ~rng:(Rng.of_int 5) ~n:30 ~width:3.0 ~height:3.0 ~r:1.5 ()
  in
  let params = Params.of_dual ~tack_phases:2 ~eps1:0.1 dual in
  let trace =
    run ~dual ~params ~senders:[ 0 ]
      ~phases:1
      ~scheduler:(Sch.bernoulli ~seed:5 ~p:0.5)
      ~rng_seed:5
  in
  let owners = Probe.committed_owners ~params ~n:30 ~phase:0 trace in
  for u = 0 to 29 do
    checkb "groups <= delta bound" true
      (Probe.groups_in_neighborhood ~dual ~owners ~node:u
      <= params.Params.delta_bound)
  done

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("contention partitions body rounds", test_contention_partition);
      ("singles equal clean deliveries", test_reception_rate_matches_deliveries);
      ("reception rate on empty", test_reception_rate_zero_when_empty);
      ("committed owners", test_committed_owners);
      ("uncovered phase", test_committed_owners_out_of_range_phase);
      ("groups bounded by delta", test_groups_bounded_by_delta);
    ]
