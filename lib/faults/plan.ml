(* Deterministic fault plans.  See plan.mli for the model.

   Representation: per-node crash/restart rounds (max_int = never) plus a
   flat CSR of jam windows, and a precomputed transition array sorted by
   (round, node) that the engine walks with a cursor.  Everything is
   derived eagerly at construction, so the per-round queries in the
   engine's hot loop are array reads and short scans. *)

type event = Crash | Restart

type t = {
  n : int;
  crash : int array; (* crash.(v) = round v dies, or max_int *)
  restart : int array; (* restart.(v) > crash.(v), or max_int *)
  jam_off : int array; (* CSR offsets into jam_from/jam_until, length n+1 *)
  jam_from : int array;
  jam_until : int array;
  transitions : (int * int * event) array; (* (round, node, ev), sorted *)
}

let n t = t.n

let is_empty t =
  Array.length t.transitions = 0 && Array.length t.jam_from = 0

let build ~n ~crash ~restart ~jams =
  (* jams: (node, from, until) list, validated by callers for ranges. *)
  let counts = Array.make (n + 1) 0 in
  List.iter (fun (v, _, _) -> counts.(v + 1) <- counts.(v + 1) + 1) jams;
  for i = 0 to n - 1 do
    counts.(i + 1) <- counts.(i + 1) + counts.(i)
  done;
  let jam_off = counts in
  let total = jam_off.(n) in
  let jam_from = Array.make total 0 and jam_until = Array.make total 0 in
  let cursor = Array.copy jam_off in
  List.iter
    (fun (v, f, u) ->
      let i = cursor.(v) in
      cursor.(v) <- i + 1;
      jam_from.(i) <- f;
      jam_until.(i) <- u)
    jams;
  (* sort each node's windows by start and reject overlaps *)
  for v = 0 to n - 1 do
    let lo = jam_off.(v) and hi = jam_off.(v + 1) in
    for i = lo + 1 to hi - 1 do
      (* insertion sort: window counts per node are tiny *)
      let f = jam_from.(i) and u = jam_until.(i) in
      let j = ref i in
      while !j > lo && jam_from.(!j - 1) > f do
        jam_from.(!j) <- jam_from.(!j - 1);
        jam_until.(!j) <- jam_until.(!j - 1);
        decr j
      done;
      jam_from.(!j) <- f;
      jam_until.(!j) <- u
    done;
    for i = lo + 1 to hi - 1 do
      if jam_from.(i) < jam_until.(i - 1) then
        invalid_arg
          (Printf.sprintf "Faults.Plan: overlapping jam windows for node %d" v)
    done
  done;
  let transitions = ref [] in
  for v = 0 to n - 1 do
    if crash.(v) <> max_int then begin
      transitions := (crash.(v), v, Crash) :: !transitions;
      if restart.(v) <> max_int then
        transitions := (restart.(v), v, Restart) :: !transitions
    end
  done;
  let transitions = Array.of_list !transitions in
  Array.sort compare transitions;
  { n; crash; restart; jam_off; jam_from; jam_until; transitions }

let empty ~n =
  if n < 0 then invalid_arg "Faults.Plan.empty: negative n";
  build ~n
    ~crash:(Array.make n max_int)
    ~restart:(Array.make n max_int)
    ~jams:[]

let make ~n ?(crashes = []) ?(restarts = []) ?(jams = []) () =
  if n < 0 then invalid_arg "Faults.Plan.make: negative n";
  let check_node what v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Faults.Plan.make: %s node %d out of range" what v)
  in
  let crash = Array.make n max_int and restart = Array.make n max_int in
  List.iter
    (fun (v, r) ->
      check_node "crash" v;
      if r < 0 then invalid_arg "Faults.Plan.make: negative crash round";
      if crash.(v) <> max_int then
        invalid_arg (Printf.sprintf "Faults.Plan.make: node %d crashes twice" v);
      crash.(v) <- r)
    crashes;
  List.iter
    (fun (v, r) ->
      check_node "restart" v;
      if restart.(v) <> max_int then
        invalid_arg (Printf.sprintf "Faults.Plan.make: node %d restarts twice" v);
      if crash.(v) = max_int then
        invalid_arg
          (Printf.sprintf "Faults.Plan.make: node %d restarts without crashing" v);
      if r <= crash.(v) then
        invalid_arg
          (Printf.sprintf
             "Faults.Plan.make: node %d restart round %d not after crash" v r);
      restart.(v) <- r)
    restarts;
  List.iter
    (fun (v, f, u) ->
      check_node "jam" v;
      if f < 0 || u <= f then
        invalid_arg
          (Printf.sprintf "Faults.Plan.make: bad jam window [%d, %d) for node %d"
             f u v))
    jams;
  build ~n ~crash ~restart ~jams

(* Per-node crash draw: an independent SplitMix stream keyed by
   (seed, node), so the plan is identical no matter how trials are split
   across domains.  The geometric draw inverts the CDF of the per-round
   hazard: still alive at round r with probability (1-rate)^r. *)
let churn ~seed ~n ~rounds ~rate ?downtime ?(protect = []) () =
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Faults.Plan.churn: rate must be in [0, 1)";
  (match downtime with
  | Some d when d <= 0 -> invalid_arg "Faults.Plan.churn: downtime must be > 0"
  | _ -> ());
  if rate = 0.0 then empty ~n
  else begin
    let crash = Array.make n max_int and restart = Array.make n max_int in
    let log_keep = log1p (-.rate) in
    for v = 0 to n - 1 do
      if not (List.mem v protect) then begin
        let h =
          Prng.Splitmix.mix
            (Int64.add
               (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
               (Int64.mul (Int64.of_int (v + 1)) 0xC2B2AE3D27D4EB4FL))
        in
        let u =
          Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
        in
        (* first round >= 1 with a crash; u = 0 maps to round 1 *)
        let gap = floor (log1p (-.u) /. log_keep) in
        if gap < float_of_int (rounds - 1) then begin
          crash.(v) <- 1 + int_of_float gap;
          match downtime with
          | Some d -> restart.(v) <- crash.(v) + d
          | None -> ()
        end
      end
    done;
    build ~n ~crash ~restart ~jams:[]
  end

let crash_round_arr t v =
  if t.crash.(v) = max_int then None else Some t.crash.(v)

let restart_round_arr t v =
  if t.restart.(v) = max_int then None else Some t.restart.(v)

let of_spec ~seed ~n ~rounds spec =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_of s = int_of_string_opt (String.trim s) in
  let clauses =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec parse clauses crashes restarts jams churn_clause =
    match clauses with
    | [] -> Ok (crashes, restarts, jams, churn_clause)
    | clause :: rest -> (
        match String.index_opt clause ':' with
        | None -> fail "clause %S: expected KIND:ARGS" clause
        | Some i -> (
            let kind = String.trim (String.sub clause 0 i) in
            let args =
              String.sub clause (i + 1) (String.length clause - i - 1)
            in
            let node_at () =
              match String.split_on_char '@' args with
              | [ v; r ] -> (
                  match (int_of v, int_of r) with
                  | Some v, Some r -> Ok (v, r)
                  | _ -> fail "clause %S: expected NODE@ROUND" clause)
              | _ -> fail "clause %S: expected NODE@ROUND" clause
            in
            match kind with
            | "crash" -> (
                match node_at () with
                | Ok c -> parse rest (c :: crashes) restarts jams churn_clause
                | Error e -> Error e)
            | "restart" -> (
                match node_at () with
                | Ok r -> parse rest crashes (r :: restarts) jams churn_clause
                | Error e -> Error e)
            | "jam" -> (
                match String.split_on_char '@' args with
                | [ v; window ] -> (
                    match (int_of v, String.split_on_char '-' window) with
                    | Some v, [ f; u ] -> (
                        match (int_of f, int_of u) with
                        | Some f, Some u ->
                            parse rest crashes restarts ((v, f, u) :: jams)
                              churn_clause
                        | _ -> fail "clause %S: expected NODE@FROM-UNTIL" clause)
                    | _ -> fail "clause %S: expected NODE@FROM-UNTIL" clause)
                | _ -> fail "clause %S: expected NODE@FROM-UNTIL" clause)
            | "churn" -> (
                if churn_clause <> None then
                  fail "clause %S: duplicate churn clause" clause
                else
                  match String.split_on_char ',' args with
                  | [ rate ] -> (
                      match float_of_string_opt (String.trim rate) with
                      | Some rate when rate >= 0.0 && rate < 1.0 ->
                          parse rest crashes restarts jams (Some (rate, None))
                      | _ -> fail "clause %S: expected RATE in [0,1)" clause)
                  | [ rate; down ] -> (
                      match
                        (float_of_string_opt (String.trim rate), int_of down)
                      with
                      | Some rate, Some d when rate >= 0.0 && rate < 1.0 && d > 0
                        ->
                          parse rest crashes restarts jams (Some (rate, Some d))
                      | _ -> fail "clause %S: expected RATE[,DOWNTIME]" clause)
                  | _ -> fail "clause %S: expected RATE[,DOWNTIME]" clause)
            | _ -> fail "clause %S: unknown kind %S" clause kind))
  in
  match parse clauses [] [] [] None with
  | Error e -> Error e
  | Ok (crashes, restarts, jams, churn_clause) -> (
      try
        let base =
          match churn_clause with
          | None -> empty ~n
          | Some (rate, downtime) ->
              (* explicit crash clauses take precedence over churn draws *)
              let protect = List.map fst crashes in
              churn ~seed ~n ~rounds ~rate ?downtime ~protect ()
        in
        let crashes =
          List.fold_left
            (fun acc v ->
              match crash_round_arr base v with
              | Some r -> (v, r) :: acc
              | None -> acc)
            crashes
            (List.init n (fun v -> v))
        and restarts =
          List.fold_left
            (fun acc v ->
              match restart_round_arr base v with
              | Some r -> (v, r) :: acc
              | None -> acc)
            restarts
            (List.init n (fun v -> v))
        in
        Ok (make ~n ~crashes ~restarts ~jams ())
      with Invalid_argument msg -> Error msg)

let crash_round t v =
  if v < 0 || v >= t.n then invalid_arg "Faults.Plan.crash_round";
  crash_round_arr t v

let restart_round t v =
  if v < 0 || v >= t.n then invalid_arg "Faults.Plan.restart_round";
  restart_round_arr t v

let alive t ~node ~round = not (t.crash.(node) <= round && round < t.restart.(node))

let alive_through t ~node ~from ~until =
  not (t.crash.(node) <= until && t.restart.(node) > from)

let has_jams t = Array.length t.jam_from > 0

let fill_alive t ~round buf =
  if Bytes.length buf < t.n then
    invalid_arg "Faults.Plan.fill_alive: buffer shorter than node count";
  for v = 0 to t.n - 1 do
    Bytes.unsafe_set buf v
      (if t.crash.(v) <= round && round < t.restart.(v) then '\000' else '\001')
  done

let jammed t ~node ~round =
  (* windows are sorted by start and disjoint; stop at the first window
     starting after [round] *)
  let hi = t.jam_off.(node + 1) in
  let rec scan i =
    i < hi
    && t.jam_from.(i) <= round
    && (round < t.jam_until.(i) || scan (i + 1))
  in
  scan t.jam_off.(node)

let pp ppf t =
  let crashes = ref 0 and restarts = ref 0 in
  Array.iter
    (fun (_, _, ev) ->
      match ev with Crash -> incr crashes | Restart -> incr restarts)
    t.transitions;
  Format.fprintf ppf "faults: %d crash%s, %d restart%s, %d jam window%s / %d nodes"
    !crashes
    (if !crashes = 1 then "" else "es")
    !restarts
    (if !restarts = 1 then "" else "s")
    (Array.length t.jam_from)
    (if Array.length t.jam_from = 1 then "" else "s")
    t.n;
  let shown = min 4 (Array.length t.transitions) in
  if shown > 0 then begin
    Format.fprintf ppf " [";
    for i = 0 to shown - 1 do
      let r, v, ev = t.transitions.(i) in
      Format.fprintf ppf "%s%s %d@%d"
        (if i > 0 then "; " else "")
        (match ev with Crash -> "crash" | Restart -> "restart")
        v r
    done;
    if Array.length t.transitions > shown then Format.fprintf ppf "; ...";
    Format.fprintf ppf "]"
  end

type cursor = { plan : t; mutable idx : int }

let cursor plan = { plan; idx = 0 }

let apply cur ~round f =
  let tr = cur.plan.transitions in
  let len = Array.length tr in
  while
    cur.idx < len
    &&
    let r, _, _ = tr.(cur.idx) in
    r <= round
  do
    let _, node, ev = tr.(cur.idx) in
    cur.idx <- cur.idx + 1;
    f node ev
  done
