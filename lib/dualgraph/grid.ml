(* Flat uniform spatial grid over an embedding, CSR-bucketed.

   Cells are square with a caller-chosen side; vertex ids within a cell
   are stored ascending, so a 3x3 neighborhood scan visits a
   concatenation of ascending runs.  Built by counting sort: two O(n)
   passes, no hashing, no per-cell list allocation. *)

type t = {
  minx : float;
  miny : float;
  cell : float;
  cols : int;
  rows : int;
  off : int array;  (* cols * rows + 1 *)
  ids : int array;  (* length n, bucketed by cell, ascending in-cell *)
  cell_of : int array;  (* vertex -> flat cell index *)
}

let create ~cell emb =
  if not (cell > 0.0) then invalid_arg "Grid.create: cell size must be positive";
  let n = Embedding.n emb in
  if n = 0 then
    {
      minx = 0.0;
      miny = 0.0;
      cell;
      cols = 1;
      rows = 1;
      off = [| 0; 0 |];
      ids = [||];
      cell_of = [||];
    }
  else begin
    let minx = ref infinity and miny = ref infinity in
    let maxx = ref neg_infinity and maxy = ref neg_infinity in
    for v = 0 to n - 1 do
      let p = Embedding.point emb v in
      if p.Embedding.x < !minx then minx := p.Embedding.x;
      if p.Embedding.x > !maxx then maxx := p.Embedding.x;
      if p.Embedding.y < !miny then miny := p.Embedding.y;
      if p.Embedding.y > !maxy then maxy := p.Embedding.y
    done;
    let minx = !minx and miny = !miny in
    (* cols = floor(span / cell) + 1 > span / cell, so interior
       coordinates index in range by construction.  Points landing
       exactly on the right/top edge (x = minx + span) are still
       clamped defensively: [(x -. minx) /. cell] re-rounds, and
       trusting it to stay strictly below [cols] leaves the bucket
       write one float ulp away from out-of-bounds. *)
    let cols = int_of_float (Float.floor ((!maxx -. minx) /. cell)) + 1 in
    let rows = int_of_float (Float.floor ((!maxy -. miny) /. cell)) + 1 in
    let clamp hi i = if i < 0 then 0 else if i >= hi then hi - 1 else i in
    let cell_of = Array.make n 0 in
    let counts = Array.make ((cols * rows) + 1) 0 in
    for v = 0 to n - 1 do
      let p = Embedding.point emb v in
      let cx = clamp cols (int_of_float ((p.Embedding.x -. minx) /. cell)) in
      let cy = clamp rows (int_of_float ((p.Embedding.y -. miny) /. cell)) in
      let c = cx + (cy * cols) in
      cell_of.(v) <- c;
      counts.(c + 1) <- counts.(c + 1) + 1
    done;
    for c = 0 to cols * rows do
      if c > 0 then counts.(c) <- counts.(c) + counts.(c - 1)
    done;
    let off = Array.copy counts in
    let ids = Array.make n 0 in
    let cursor = counts in
    (* visiting v in ascending order keeps each bucket ascending *)
    for v = 0 to n - 1 do
      let c = cell_of.(v) in
      ids.(cursor.(c)) <- v;
      cursor.(c) <- cursor.(c) + 1
    done;
    { minx; miny; cell; cols; rows; off; ids; cell_of }
  end

let cols t = t.cols
let rows t = t.rows
let cell_index t v = t.cell_of.(v)

let iter_neighborhood t u f =
  let c = t.cell_of.(u) in
  let cx = c mod t.cols and cy = c / t.cols in
  for dy = -1 to 1 do
    let y = cy + dy in
    if y >= 0 && y < t.rows then
      for dx = -1 to 1 do
        let x = cx + dx in
        if x >= 0 && x < t.cols then begin
          let b = x + (y * t.cols) in
          for i = t.off.(b) to t.off.(b + 1) - 1 do
            f (Array.unsafe_get t.ids i)
          done
        end
      done
  done
