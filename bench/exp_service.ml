(* M10/M11 + the long-horizon load run: the serving engine's perf
   contract, written to BENCH_service.json and gated in CI.

   M10 times the serving hot path in isolation — Serve.Sim rounds
   (arrival sampling, admission, bounded queues, relay pumping,
   reception, completion, ttl expiry) with no MAC underneath — at a
   rate past the flooding capacity, so the queues sit saturated the
   way a loaded deployment's would.  M11 times the full stack: the
   same engine glued onto the real abstract MAC layer over a dual
   graph.  The load section is the acceptance run: >= 10^6 offered
   arrivals in full mode, with the conservation audit, a goodput
   floor and the Gc.minor_words zero-allocation probe checked hard
   (failwith) before the artifact is written. *)

open Core
module Clock = Monotonic_clock
open Bechamel
open Toolkit
module Serve = Macapps.Serve
module Workload = Macapps.Workload
module Geo = Dualgraph.Geometric
module Params = Localcast.Params
module Sch = Radiosim.Scheduler

let bench ~name fn = (Test.make ~name (Staged.stage fn), fn)

(* The standard synthetic channel: ring degree 8, one-round relays,
   two-round acks — flooding capacity is n / ack_delay = 32 relays per
   round, i.e. about 0.5 completable messages per round, so rate 1.0 is
   ~2x overload: the steady state M10 measures keeps every queue near
   its bound with the backpressure policy doing real work. *)
let sim_config ~ttl =
  Serve.config ~queue_cap:16 ~max_inflight:4096 ~ttl ~ack_deadline:12 ()

let m10_serving_rounds =
  let workload =
    Workload.create ~process:(Poisson { rate = 1.0 }) ~n:64 ~seed:10 ()
  in
  let sim =
    Serve.Sim.create ~config:(sim_config ~ttl:500) ~n:64 ~degree:8
      ~relay_delay:1 ~ack_delay:2 ()
  in
  bench ~name:"M10 serving rounds x64 (sim n=64, rate 1.0)" (fun () ->
      for _ = 1 to 64 do
        Serve.Sim.step sim ~workload
      done)

let m11_full_stack =
  let dual =
    Geo.random_field
      ~rng:(Prng.Rng.of_int 11)
      ~n:32 ~width:4.0 ~height:4.0 ~r:1.5 ~gray_g':0.5 ()
  in
  let params = Params.of_dual ~eps1:0.25 ~tack_phases:1 dual in
  let config = Serve.config ~queue_cap:8 ~max_inflight:256 ~ttl:4096 () in
  let counter = ref 0 in
  bench ~name:"M11 full-stack serve 256 rounds (field-32)" (fun () ->
      incr counter;
      let rng = Prng.Rng.of_int !counter in
      let scheduler = Sch.bernoulli ~seed:!counter ~p:0.5 in
      let workload =
        Workload.create ~process:(Poisson { rate = 0.05 }) ~n:32 ~seed:!counter
          ()
      in
      ignore
        (Serve.run ~config ~workload ~params ~rng ~dual ~scheduler ~rounds:256
           ()))

(* --- the acceptance load run --- *)

let vm_rss_mb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line when String.length line > 6 && String.sub line 0 6 = "VmRSS:" ->
          let kb = String.trim (String.sub line 6 (String.length line - 6)) in
          let kb =
            match String.split_on_char ' ' kb with
            | v :: _ -> float_of_string v
            | [] -> Float.nan
          in
          close_in ic;
          kb /. 1024.0
      | _ -> scan ()
      | exception End_of_file ->
          close_in ic;
          Float.nan
    in
    scan ()
  with _ -> Float.nan

let load_run () =
  (* 5% headroom over 10^6 rounds: at rate 1.0 the offered count is
     Poisson-distributed around the round count, so driving exactly 10^6
     rounds misses the >= 10^6-arrivals floor about half the time *)
  let rounds = if !Exp_common.quick then 50_000 else 1_050_000 in
  let rate = 1.0 in
  let workload =
    Workload.create ~process:(Poisson { rate }) ~n:64 ~seed:22 ()
  in
  let sim =
    Serve.Sim.create ~config:(sim_config ~ttl:500) ~n:64 ~degree:8
      ~relay_delay:1 ~ack_delay:2 ()
  in
  let t0 = Clock.now () in
  let report = Serve.Sim.run sim ~workload ~rounds () in
  let wall_s = Int64.to_float (Int64.sub (Clock.now ()) t0) /. 1e9 in
  let rss = vm_rss_mb () in
  (* acceptance: the run must actually serve, conserve and not allocate *)
  if report.Serve.audit <> [] then
    failwith
      ("service load run failed conservation audit: "
      ^ String.concat "; " report.Serve.audit);
  if report.Serve.completed = 0 then
    failwith "service load run completed no messages (zero goodput)";
  if (not !Exp_common.quick) && report.Serve.arrivals < 1_000_000 then
    failwith
      (Printf.sprintf "service load run offered only %d arrivals (< 10^6)"
         report.Serve.arrivals);
  if report.Serve.minor_words_per_round > 8.0 then
    failwith
      (Printf.sprintf
         "service steady state allocates %.1f minor words/round (> 8): the \
          hot path regressed"
         report.Serve.minor_words_per_round);
  (report, wall_s, rss)

let write_json ~path rows (report, wall_s, rss) =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"git_rev\": \"%s\",\n  \"results\": {\n"
    (Obs.Json.escape (Exp_common.git_rev ()));
  List.iteri
    (fun i (name, ns, r2) ->
      Printf.fprintf oc
        "    \"%s\": { \"ns_per_run\": %.3f, \"r_square\": %s }%s\n"
        (Obs.Json.escape name) ns
        (match r2 with Some r -> Printf.sprintf "%.6f" r | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  },\n  \"load\": {\n";
  let r = report in
  Printf.fprintf oc "    \"rounds\": %d,\n" r.Serve.rounds;
  Printf.fprintf oc "    \"arrivals\": %d,\n" r.Serve.arrivals;
  Printf.fprintf oc "    \"admitted\": %d,\n" r.Serve.admitted;
  Printf.fprintf oc "    \"rejected\": %d,\n" r.Serve.rejected;
  Printf.fprintf oc "    \"completed\": %d,\n" r.Serve.completed;
  Printf.fprintf oc "    \"expired\": %d,\n" r.Serve.expired;
  Printf.fprintf oc "    \"relays\": %d,\n" r.Serve.relays;
  Printf.fprintf oc "    \"relay_drops\": %d,\n" r.Serve.relay_drops;
  Printf.fprintf oc "    \"goodput\": %.6f,\n" r.Serve.goodput;
  Printf.fprintf oc "    \"delivery_p50\": %.1f,\n" r.Serve.delivery_p50;
  Printf.fprintf oc "    \"delivery_p99\": %.1f,\n" r.Serve.delivery_p99;
  Printf.fprintf oc "    \"ack_p50\": %.1f,\n" r.Serve.ack_p50;
  Printf.fprintf oc "    \"ack_p99\": %.1f,\n" r.Serve.ack_p99;
  Printf.fprintf oc "    \"max_queue_depth\": %d,\n" r.Serve.max_queue_depth;
  Printf.fprintf oc "    \"minor_words_per_round\": %.3f,\n"
    r.Serve.minor_words_per_round;
  Printf.fprintf oc "    \"rss_mb\": %.1f,\n" rss;
  Printf.fprintf oc "    \"wall_s\": %.2f,\n" wall_s;
  Printf.fprintf oc "    \"audit_failures\": %d\n" (List.length r.Serve.audit);
  Printf.fprintf oc "  }\n}\n";
  close_out oc

let warmup fn =
  let deadline = Int64.add (Clock.now ()) 50_000_000L (* 50 ms *) in
  let i = ref 0 in
  while !i < 8 || (Int64.compare (Clock.now ()) deadline < 0 && !i < 4096) do
    ignore (fn ());
    incr i
  done

let run () =
  Exp_common.section "M10-M11 + load: the multi-message serving engine";
  let tests = [ m10_serving_rounds; m11_full_stack ] in
  let cfg =
    Benchmark.cfg ~limit:3000
      ~quota:(Time.second (if !Exp_common.quick then 0.5 else 3.0))
      ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let table =
    Stats.Table.create ~title:"serving benchmarks"
      ~columns:[ "benchmark"; "time per run"; "r^2" ]
  in
  let measure_once (test, thunk) =
    warmup thunk;
    let results =
      Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
    in
    let analyzed = Analyze.all ols Instance.monotonic_clock results in
    let row = ref None in
    Hashtbl.iter
      (fun name ols_result ->
        let estimate =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> e
          | _ -> Float.nan
        in
        row := Some (name, estimate, Analyze.OLS.r_square ols_result))
      analyzed;
    match !row with
    | Some r -> r
    | None -> invalid_arg "service: benchmark produced no OLS result"
  in
  let max_attempts = if !Exp_common.quick then 1 else 3 in
  let rec measure_well attempt best bench =
    let (_, _, r2) as row = measure_once bench in
    let best =
      match (best, r2) with
      | None, _ -> row
      | Some (_, _, Some b), Some r when r > b -> row
      | Some b, _ -> b
    in
    match r2 with
    | Some r when r >= 0.9 -> row
    | _ when attempt >= max_attempts -> best
    | _ -> measure_well (attempt + 1) (Some best) bench
  in
  let rows = ref [] in
  List.iter
    (fun bench ->
      let name, estimate, r2 = measure_well 1 None bench in
      let rendered =
        if estimate > 1e6 then Printf.sprintf "%.3f ms" (estimate /. 1e6)
        else if estimate > 1e3 then Printf.sprintf "%.3f us" (estimate /. 1e3)
        else Printf.sprintf "%.1f ns" estimate
      in
      let r2_text =
        match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-"
      in
      let bare =
        match String.index_opt name '/' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      rows := (bare, estimate, r2) :: !rows;
      Stats.Table.add_row table [ name; rendered; r2_text ])
    tests;
  Stats.Table.print table;
  let ((report, wall_s, rss) as load) = load_run () in
  Exp_common.note
    "load run: %d rounds, %d arrivals, %d completed (goodput %.3f/round),\n\
     delivery p50/p99 %.0f/%.0f rounds, %.3f minor words/round, RSS %.1f MB, \
     %.1fs"
    report.Serve.rounds report.Serve.arrivals report.Serve.completed
    report.Serve.goodput report.Serve.delivery_p50 report.Serve.delivery_p99
    report.Serve.minor_words_per_round rss wall_s;
  let path = "BENCH_service.json" in
  write_json ~path (List.rev !rows) load;
  Exp_common.note "wrote %s (git rev %s)" path (Exp_common.git_rev ())
