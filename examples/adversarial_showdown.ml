(* The paper's motivating attack, live: a fixed-probability-schedule
   broadcaster (Decay) against an oblivious link scheduler that knows its
   schedule — versus LBAlg, whose seed-permuted schedule the adversary
   cannot anticipate.

   Topology (Geometric.gray_cluster): receiver u has ONE reliable
   neighbor v and k grey-zone broadcasters reachable only over unreliable
   links.  The thwarting scheduler switches all k grey links IN exactly
   when Decay's schedule probability is high enough that k + 1
   transmitters collide, and OUT when the probability is so low that the
   lone reliable sender v almost never speaks.  As k grows the attack
   bites harder — Decay's progress latency degrades without bound — while
   LBAlg's latency tracks its (k-independent, log Δ-shaped) t_prog under
   benign and adversarial schedulers alike.

   Run with:  dune exec examples/adversarial_showdown.exe *)

open Core
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module M = Localcast.Messages
module L = Localcast

let trials = 12
let max_rounds = 60_000

(* Decay latency: all k+1 senders permanently active, receiver 0 waits. *)
let decay_latency ~dual ~scheduler ~seed =
  let levels = Baseline.Decay.levels_for ~delta':(Dual.delta' dual) in
  let rng = Prng.Rng.of_int seed in
  let nodes =
    Array.init (Dual.n dual) (fun v ->
        if v = 0 then Baseline.Harness.receiver ()
        else
          Baseline.Decay.node ~levels
            ~message:(M.payload ~src:v ~uid:0 ())
            ~rng:(Prng.Rng.split rng))
  in
  Baseline.Harness.first_reception ~dual ~scheduler ~nodes ~receiver:0 ~max_rounds

(* LBAlg latency: same saturation, measured as receiver 0's first clean
   data reception. *)
let lbalg_latency ~dual ~scheduler ~seed =
  let rng = Prng.Rng.of_int seed in
  let params = L.Params.of_dual ~eps1:0.1 ~tack_phases:2 dual in
  let n = Dual.n dual in
  let nodes = L.Lb_alg.network params ~rng ~n in
  let envt = L.Lb_env.saturate ~n ~senders:(List.init (n - 1) (fun i -> i + 1)) () in
  let result = ref None in
  let stop record =
    match record.Radiosim.Trace.delivered.(0) with
    | Some (M.Data _) ->
        if !result = None then result := Some record.Radiosim.Trace.round;
        true
    | _ -> false
  in
  let (_ : int) =
    Radiosim.Engine.run ~stop ~dual ~scheduler ~nodes ~env:(L.Lb_env.env envt)
      ~rounds:max_rounds ()
  in
  !result

let mean_latency f =
  let total = ref 0 in
  for seed = 1 to trials do
    total := !total + (match f ~seed with Some l -> l | None -> max_rounds)
  done;
  float_of_int !total /. float_of_int trials

let () =
  Format.printf
    "Receiver u, one reliable sender v, k grey-zone senders; %d trials.@.\
     'benign' = Bernoulli(1/2) link scheduler; 'thwart' = schedule-aware@.\
     adversary (paper §1 Discussion).  Numbers are mean rounds until u@.\
     first hears anything.@.@."
    trials;
  let table =
    Stats.Table.create ~title:"fixed schedule vs seed-permuted schedule"
      ~columns:
        [ "k"; "decay/benign"; "decay/thwart"; "decay x"; "lbalg/benign";
          "lbalg/thwart"; "lbalg x" ]
  in
  List.iter
    (fun k ->
      let dual = Geo.gray_cluster ~k ~r:1.5 () in
      let levels = Baseline.Decay.levels_for ~delta':(Dual.delta' dual) in
      let hot_levels = Baseline.Decay.hot_levels_against ~levels ~contention:k in
      let thwart = Sch.thwart ~hot:(Baseline.Decay.hot_predicate ~levels ~hot_levels) in
      let benign seed = Sch.bernoulli ~seed ~p:0.5 in
      let db = mean_latency (fun ~seed -> decay_latency ~dual ~scheduler:(benign seed) ~seed) in
      let dt = mean_latency (fun ~seed -> decay_latency ~dual ~scheduler:thwart ~seed) in
      let lb = mean_latency (fun ~seed -> lbalg_latency ~dual ~scheduler:(benign seed) ~seed) in
      let lt = mean_latency (fun ~seed -> lbalg_latency ~dual ~scheduler:thwart ~seed) in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int k;
          Stats.Table.cell_float ~decimals:0 db;
          Stats.Table.cell_float ~decimals:0 dt;
          Stats.Table.cell_float ~decimals:1 (dt /. Float.max 1.0 db);
          Stats.Table.cell_float ~decimals:0 lb;
          Stats.Table.cell_float ~decimals:0 lt;
          Stats.Table.cell_float ~decimals:1 (lt /. Float.max 1.0 lb);
        ])
    [ 8; 16; 32; 64 ];
  Stats.Table.print table;
  print_endline
    "Decay's slowdown factor under the adversary grows with the grey-zone\n\
     contention k; LBAlg's stays flat near 1 (its latency follows t_prog,\n\
     which depends on log Δ, not on the link schedule)."
