(** Neighbor discovery over the abstract MAC layer.

    The problem of the paper's references [5, 6] (Cornejo–Lynch–Viqar–
    Welch): every node announces itself once; each node must learn its
    reliable neighborhood.  The MAC's reliability guarantee does all the
    work — one acknowledged hello per node suffices for every reliable
    neighbor to hear it — while validity caps what can be discovered at
    the G'-neighborhood (grey-zone nodes may or may not be heard). *)

type result = {
  discovered : int list array;  (** per node, sorted ids heard from *)
  complete : bool;
      (** every node discovered its full reliable neighborhood *)
  completion_round : int option;
  missing_pairs : int;
      (** reliable (u, v) pairs where v never heard u *)
  spurious_pairs : int;
      (** discovered pairs outside the G'-neighborhood (must be 0 —
          follows from the LB validity property) *)
  rounds_executed : int;
}

val run :
  params:Localcast.Params.t ->
  rng:Prng.Rng.t ->
  dual:Dualgraph.Dual.t ->
  scheduler:Radiosim.Scheduler.t ->
  max_rounds:int ->
  unit ->
  result
