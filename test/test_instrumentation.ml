(* Tests for the region-level SeedAlg probe (Appendix B instrumentation). *)

open Core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Region = Dualgraph.Region
module Sch = Radiosim.Scheduler
module Params = Localcast.Params
module Probe = Localcast.Seed_probe
module Rng = Prng.Rng

let run_probe ?(eps = 0.1) ?(seed = 11) dual =
  let params = Params.make_seed ~eps ~delta:(Dual.delta dual) ~kappa:16 () in
  let probe = Probe.create params ~dual ~rng:(Rng.of_int seed) in
  let (_ : int) =
    Radiosim.Engine.run ~dual
      ~scheduler:(Sch.bernoulli ~seed ~p:0.5)
      ~nodes:(Probe.nodes probe)
      ~env:(Radiosim.Env.null ~name:"probe" ())
      ~rounds:(Params.seed_duration params)
      ()
  in
  (params, probe)

let field seed =
  Geo.random_field ~rng:(Rng.of_int seed) ~n:50 ~width:4.0 ~height:4.0 ~r:1.5
    ~gray_g':0.5 ()

let test_requires_embedding () =
  let g = Dualgraph.Graph.empty 2 in
  let dual = Dual.create ~g ~g':g () in
  let params = Params.make_seed ~eps:0.1 ~delta:1 ~kappa:4 () in
  Alcotest.check_raises "no embedding"
    (Invalid_argument "Region.of_dual: dual graph has no embedding") (fun () ->
      ignore (Probe.create params ~dual ~rng:(Rng.of_int 1)))

let test_snapshot_per_phase () =
  let dual = field 1 in
  let params, probe = run_probe dual in
  checki "one snapshot per phase" params.Params.phases
    (List.length (Probe.snapshots probe));
  List.iteri
    (fun i s -> checki "phases in order" (i + 1) s.Probe.phase)
    (Probe.snapshots probe)

let test_election_probabilities () =
  let dual = field 2 in
  let params, probe = run_probe dual in
  List.iter
    (fun s ->
      let expected =
        1.0 /. float_of_int (1 lsl (params.Params.phases - s.Probe.phase + 1))
      in
      Alcotest.check (Alcotest.float 1e-12) "p_h" expected s.Probe.election_prob)
    (Probe.snapshots probe);
  (* last phase elects with probability 1/2 *)
  let last = List.nth (Probe.snapshots probe) (params.Params.phases - 1) in
  Alcotest.check (Alcotest.float 1e-12) "final phase 1/2" 0.5 last.Probe.election_prob

let test_lemma_b2_phase_one_good () =
  (* Lemma B.2: every region is good in phase 1 — indeed P_{x,1} =
     a_{x,1}/Δ <= 1 since a region holds at most Δ mutually-reliable
     nodes. *)
  List.iter
    (fun seed ->
      let dual = field seed in
      let _, probe = run_probe ~seed dual in
      match Probe.snapshots probe with
      | first :: _ ->
          for x = 0 to Region.region_count (Probe.regions probe) - 1 do
            checkb "P_{x,1} <= 1" true (Probe.cumulative_probability first x <= 1.0)
          done
      | [] -> Alcotest.fail "no snapshots")
    [ 3; 4; 5 ]

let test_active_counts_non_increasing () =
  let dual = field 6 in
  let _, probe = run_probe ~seed:6 dual in
  let snapshots = Probe.snapshots probe in
  List.iter2
    (fun a b ->
      Array.iteri
        (fun x a_count ->
          checkb "a_{x,h} non-increasing" true (b.Probe.active_per_region.(x) <= a_count))
        a.Probe.active_per_region)
    (List.filteri (fun i _ -> i < List.length snapshots - 1) snapshots)
    (List.tl snapshots)

let test_leaders_bounded_by_active () =
  let dual = field 7 in
  let _, probe = run_probe ~seed:7 dual in
  List.iter
    (fun s ->
      Array.iteri
        (fun x l ->
          checkb "l_{x,h} <= a_{x,h}" true (l <= s.Probe.active_per_region.(x)))
        s.Probe.leaders_per_region)
    (Probe.snapshots probe)

let test_goodness_preserved_empirically () =
  (* Lemma B.8's empirical shape: across trials, regions stay good in
     every phase (with the generous c2 = 4 the paper assumes). *)
  let bad = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let dual = field (100 + seed) in
      let params, probe = run_probe ~seed:(100 + seed) dual in
      List.iter
        (fun s ->
          for x = 0 to Region.region_count (Probe.regions probe) - 1 do
            incr total;
            if not (Probe.is_good ~eps:params.Params.seed_eps ~c2:4.0 s x) then
              incr bad
          done)
        (Probe.snapshots probe))
    [ 1; 2; 3; 4; 5 ];
  checkb "goodness violations are rare" true
    (float_of_int !bad /. float_of_int (max 1 !total) < 0.01)

let test_total_leaders_bounded () =
  (* Lemma B.4's shape: the total number of leaders a region ever elects
     stays O(log(1/eps)) — use a generous 4·log2(1/eps) cap. *)
  let dual = field 8 in
  let params, probe = run_probe ~seed:8 dual in
  let cap =
    int_of_float
      (Float.ceil (4.0 *. (log (1.0 /. params.Params.seed_eps) /. log 2.0)))
  in
  Array.iter
    (fun total -> checkb "region leader total bounded" true (total <= cap))
    (Probe.total_leaders_per_region probe)

let test_probe_decisions_still_valid () =
  (* The probe must not perturb the algorithm: the probed network still
     satisfies the Seed spec. *)
  let dual = field 9 in
  let params = Params.make_seed ~eps:0.1 ~delta:(Dual.delta dual) ~kappa:16 () in
  let probe = Probe.create params ~dual ~rng:(Rng.of_int 9) in
  let trace, observer = Radiosim.Trace.recorder () in
  let (_ : int) =
    Radiosim.Engine.run ~observer ~dual
      ~scheduler:(Sch.bernoulli ~seed:9 ~p:0.5)
      ~nodes:(Probe.nodes probe)
      ~env:(Radiosim.Env.null ~name:"probe" ())
      ~rounds:(Params.seed_duration params)
      ()
  in
  let decisions = Localcast.Seed_spec.decisions_of_trace trace ~n:(Dual.n dual) in
  let report = Localcast.Seed_spec.check ~dual ~delta_bound:30 ~decisions in
  checkb "well-formed" true report.Localcast.Seed_spec.well_formed;
  checkb "consistent" true report.Localcast.Seed_spec.consistent;
  checki "agreement clean" 0 report.Localcast.Seed_spec.violation_count

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("requires embedding", test_requires_embedding);
      ("snapshot per phase", test_snapshot_per_phase);
      ("election probabilities", test_election_probabilities);
      ("lemma B.2: phase 1 good", test_lemma_b2_phase_one_good);
      ("active counts non-increasing", test_active_counts_non_increasing);
      ("leaders bounded by active", test_leaders_bounded_by_active);
      ("goodness preserved", test_goodness_preserved_empirically);
      ("total leaders bounded", test_total_leaders_bounded);
      ("probe preserves spec", test_probe_decisions_still_valid);
    ]
