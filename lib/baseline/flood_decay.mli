(** Physical-layer flooding with Decay contention management.

    The classical global-broadcast construction (Bar-Yehuda–Goldreich–
    Itai [2]): a covered node relays the message using the Decay
    probability sweep for a fixed number of epochs, then falls silent.
    It runs directly on the radio model with no reliability layer
    underneath, so it is fast on benign schedules — and exposed to the
    dual graph's unreliable links: there is no acknowledgement, so a node
    whose relay epochs were eaten by adversarial contention never
    retries, and coverage can stall.  Experiment E18 compares it with the
    flood composed over the abstract MAC layer. *)

type result = {
  covered : bool array;
  covered_count : int;
  completion_round : int option;  (** first round with every node covered *)
  rounds_executed : int;
}

val run :
  rng:Prng.Rng.t ->
  dual:Dualgraph.Dual.t ->
  scheduler:Radiosim.Scheduler.t ->
  source:int ->
  relay_epochs:int ->
  max_rounds:int ->
  unit ->
  result
(** Every node that becomes covered relays for [relay_epochs] Decay
    epochs (of ⌈log₂ Δ'⌉ + 1 rounds each), starting at the next round
    after its first reception. *)
