module Dual = Dualgraph.Dual

type report = {
  well_formed : bool;
  consistent : bool;
  owners_per_vertex : int array;
  agreement_ok : bool array;
  max_owners : int;
  violation_count : int;
}

let decisions_of_trace trace ~n =
  let decisions = Array.make n [] in
  Radiosim.Trace.iter
    (fun record ->
      Array.iteri
        (fun v outs ->
          List.iter
            (fun (Messages.Decide announcement) ->
              decisions.(v) <- (record.Radiosim.Trace.round, announcement) :: decisions.(v))
            outs)
        record.Radiosim.Trace.outputs)
    trace;
  Array.map List.rev decisions

let check ~dual ~delta_bound ~decisions =
  let n = Dual.n dual in
  if Array.length decisions <> n then
    invalid_arg "Seed_spec.check: decisions array size mismatch";
  let well_formed = Array.for_all (fun l -> List.length l = 1) decisions in
  (* Consistency: one seed per owner across the whole execution. *)
  let owner_seed : (int, Prng.Bitstring.t) Hashtbl.t = Hashtbl.create 64 in
  let consistent = ref true in
  Array.iter
    (List.iter (fun (_, { Messages.owner; seed }) ->
         match Hashtbl.find_opt owner_seed owner with
         | None -> Hashtbl.add owner_seed owner seed
         | Some existing ->
             if not (Prng.Bitstring.equal existing seed) then consistent := false))
    decisions;
  (* Agreement: distinct owners per closed G'-neighborhood. *)
  let owners_per_vertex =
    Array.init n (fun u ->
        let seen = Hashtbl.create 8 in
        let absorb v =
          List.iter
            (fun (_, { Messages.owner; _ }) -> Hashtbl.replace seen owner ())
            decisions.(v)
        in
        absorb u;
        Dual.iter_all_neighbors dual u absorb;
        Hashtbl.length seen)
  in
  let agreement_ok = Array.map (fun k -> k <= delta_bound) owners_per_vertex in
  let max_owners = Array.fold_left max 0 owners_per_vertex in
  let violation_count =
    Array.fold_left (fun acc ok -> if ok then acc else acc + 1) 0 agreement_ok
  in
  {
    well_formed;
    consistent = !consistent;
    owners_per_vertex;
    agreement_ok;
    max_owners;
    violation_count;
  }

let owners ~decisions =
  Array.map
    (function
      | [ (_, { Messages.owner; _ }) ] -> owner
      | _ -> invalid_arg "Seed_spec.owners: execution is not well-formed")
    decisions

let bit_balance announcements =
  let total = ref 0 and set = ref 0 in
  List.iter
    (fun { Messages.seed; _ } ->
      total := !total + Prng.Bitstring.length seed;
      set := !set + Prng.Bitstring.ones seed)
    announcements;
  if !total = 0 then 0.5 else float_of_int !set /. float_of_int !total

let cross_agreement a b =
  let len = min (Prng.Bitstring.length a) (Prng.Bitstring.length b) in
  if len = 0 then 0.5
  else begin
    let agree = ref 0 in
    for i = 0 to len - 1 do
      if Prng.Bitstring.get a i = Prng.Bitstring.get b i then incr agree
    done;
    float_of_int !agree /. float_of_int len
  end
