(* Shared machinery for the experiment harness (see DESIGN.md §4 for the
   experiment index).  Every experiment is a deterministic function of the
   master seed below, so the tables in EXPERIMENTS.md can be regenerated
   exactly. *)

open Core
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module Trace = Radiosim.Trace
module M = Localcast.Messages
module Params = Localcast.Params
module L = Localcast

let master_seed = 20260706

(* Quick mode: fewer trials, smaller sweeps; set from the command line. *)
let quick = ref false

let trials_scaled n = if !quick then max 2 (n / 4) else n

(* Worker domains for the trial runner; set by --domains or the
   LOCALCAST_DOMAINS environment variable.  Results are bit-identical at
   every value (Stats.Experiment.trials_par restores trial order and
   derives per-trial seeds from the trial index alone), so parallelism
   is purely a wall-clock knob. *)
let domains =
  ref
    (match Sys.getenv_opt "LOCALCAST_DOMAINS" with
    | Some s -> ( match int_of_string_opt s with Some d when d >= 1 -> d | _ -> 1)
    | None -> 1)

(* The standard trial loop: [n] independently seeded trials of [f], run
   over the domain pool.  [salt] distinguishes sweeps within one
   experiment (e.g. one row per Δ) that would otherwise share trial
   streams; experiments that deliberately pair samples (same seeds for
   two algorithms or schedulers) call this twice with the same salt.
   [f] runs concurrently with itself: it must keep its state trial-local
   and return its measurements for sequential aggregation. *)
let run_trials ?(salt = 0) ~n f =
  Stats.Experiment.trials_par ~domains:!domains ~seed:(master_seed + salt) ~n f

(* The working tree's short git revision, stamped into the JSON
   artifacts (BENCH_micro.json, BENCH_obs.json) so perf and observability
   trajectories can be tracked across commits. *)
let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let rev = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when rev <> "" -> rev
    | _ -> "unknown"
  with _ -> "unknown"

let section title =
  Printf.printf "\n######## %s ########\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

(* --- standard topologies --- *)

let random_field ~seed ~n ?(width = 4.0) ?(r = 1.5) ?(gray = 0.5) () =
  Geo.random_field ~rng:(Prng.Rng.of_int seed) ~n ~width ~height:width ~r
    ~gray_g':gray ()

(* --- seed agreement trial --- *)

type seed_outcome = {
  seed_report : L.Seed_spec.report;
  decisions : (int * M.seed_announcement) list array;
}

let run_seed_trial ~dual ~params ~delta_bound ~scheduler ~seed =
  let n = Dual.n dual in
  let rng = Prng.Rng.of_int seed in
  let nodes = L.Seed_alg.network params ~rng ~n in
  let trace, observer = Trace.recorder () in
  let (_ : int) =
    Engine.run ~observer ~dual ~scheduler ~nodes
      ~env:(Radiosim.Env.null ~name:"seed" ())
      ~rounds:(L.Seed_alg.duration params)
      ()
  in
  let decisions = L.Seed_spec.decisions_of_trace trace ~n in
  { seed_report = L.Seed_spec.check ~dual ~delta_bound ~decisions; decisions }

(* --- local broadcast trial --- *)

let run_lb_trial ?(scheduler_of_seed = fun seed -> Sch.bernoulli ~seed ~p:0.5)
    ?observer ~dual ~params ~senders ~phases ~seed () =
  let outcome =
    L.Service.run ~scheduler:(scheduler_of_seed seed) ?observer ~dual ~params
      ~senders ~phases ~seed ()
  in
  (outcome.L.Service.report, outcome.L.Service.env_log)

(* One-shot reliability trial: node 0 broadcasts once at round 0; runs the
   full derived acknowledgement window. *)
let run_reliability_trial ~dual ~params ~seed =
  let outcome, completion = L.Service.one_shot ~dual ~params ~sender:0 ~seed () in
  (outcome.L.Service.report, completion)

let lbalg_first_reception ~dual ~params ~scheduler ~receiver ~seed ~max_rounds =
  L.Service.first_reception ~scheduler ~dual ~params ~receiver ~max_rounds ~seed ()

let decay_first_reception ~dual ~scheduler ~receiver ~seed ~max_rounds =
  let levels = Baseline.Decay.levels_for ~delta':(Dual.delta' dual) in
  let rng = Prng.Rng.of_int seed in
  let nodes =
    Array.init (Dual.n dual) (fun v ->
        if v = receiver then Baseline.Harness.receiver ()
        else
          Baseline.Decay.node ~levels
            ~message:(M.payload ~src:v ~uid:0 ())
            ~rng:(Prng.Rng.split rng))
  in
  Baseline.Harness.first_reception ~dual ~scheduler ~nodes ~receiver ~max_rounds

let mean_option_latency ~max_rounds samples =
  let value = function Some l -> float_of_int l | None -> float_of_int max_rounds in
  Stats.Summary.mean (List.map value samples)

let starved samples = Stats.Experiment.count (fun s -> s = None) samples
