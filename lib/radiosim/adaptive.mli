(** Adaptive link schedulers — the model variant the paper rules out.

    The paper assumes an {e oblivious} link scheduler (fixed before the
    execution).  Its predecessor work (Ghaffari–Lynch–Newport, the paper's
    [11]) proved that against an {e adaptive} scheduler — one that picks
    the round's unreliable edges {e after} seeing who transmits — local
    broadcast with efficient progress is impossible.  This module
    implements such adversaries so experiment E13 can reproduce the
    contrast that justifies the obliviousness assumption.

    An adaptive scheduler is consulted once per round, after all transmit
    decisions are fixed, and returns the set of unreliable edges to
    include.  Use with {!Engine.run_adaptive}. *)

type t

val name : t -> string

val choose : t -> round:int -> transmitting:bool array -> edge:int -> bool
(** [choose t ~round ~transmitting] decides, for the round whose
    transmission vector is [transmitting], whether each unreliable edge
    joins the topology.  Implementations must be deterministic functions
    of their arguments (plus construction-time state). *)

val of_oblivious : Scheduler.t -> t
(** Lift an oblivious scheduler (it ignores the transmission vector). *)

val jam : Dualgraph.Dual.t -> t
(** The collision-forcing adversary behind the impossibility argument.
    For every listening node [u] it inspects the transmitters among [u]'s
    potential neighbors and picks the unreliable edges so that [u] never
    hears a clean message if the adversary can help it:

    - if exactly one reliable neighbor of [u] transmits, it switches in an
      unreliable edge from any other transmitter to collide with it;
    - if no reliable neighbor transmits, it switches in either zero or at
      least two transmitting unreliable neighbors (never exactly one).

    [u] receives only in rounds where a reliable neighbor transmits alone
    {e and} no transmitting node is within unreliable range — the
    adversary is powerless only then. *)
