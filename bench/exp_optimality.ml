(* Experiment E16: the paper's near-optimality discussion (§1, Results).

   Two lower-bound shapes are claimed:

   (a) "any progress bound ... requires logarithmic rounds" — progress
       reduces to symmetry breaking among an UNKNOWN number of
       contenders [21].  We show it empirically: a fixed transmission
       probability p is only good for one contention scale; sweeping the
       (hidden) number of active senders m makes every fixed p fail
       somewhere, while a log Δ-level Decay sweep — and LBAlg's log Δ
       level selection — stay uniformly good.  The log Δ factor in
       t_prog buys exactly this uniformity.

   (b) "any acknowledgement bound requires at least Δ rounds" — a
       receiver adjacent to Δ broadcasters receives at most one message
       per round, so some broadcaster waits Δ rounds.  We saturate a
       clique and measure the time until EVERY sender's message has been
       received by a common neighbor: it must be ≥ Δ - 1 rounds; LBAlg's
       t_ack = O(Δ polylog) is a polylog factor above that floor. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module Engine = Radiosim.Engine
module Trace = Radiosim.Trace
module M = Localcast.Messages
module P = Radiosim.Process
module Table = Stats.Table

(* (a) mean rounds until receiver 0 hears something when exactly [m] of
   the clique's senders are active and every active sender transmits with
   probability [p] each round. *)
let fixed_p_latency ~delta ~m ~p ~seed ~max_rounds =
  let dual = Geo.clique (delta + 1) in
  let rng = Prng.Rng.of_int seed in
  let nodes =
    Array.init (delta + 1) (fun v ->
        if v = 0 || v > m then Baseline.Harness.receiver ()
        else
          Baseline.Uniform.node ~p
            ~message:(M.payload ~src:v ~uid:0 ())
            ~rng:(Prng.Rng.split rng))
  in
  Baseline.Harness.first_reception ~dual ~scheduler:Sch.reliable_only ~nodes
    ~receiver:0 ~max_rounds

let decay_latency ~delta ~m ~seed ~max_rounds =
  let dual = Geo.clique (delta + 1) in
  let rng = Prng.Rng.of_int seed in
  let levels = Baseline.Decay.levels_for ~delta':(delta + 1) in
  let nodes =
    Array.init (delta + 1) (fun v ->
        if v = 0 || v > m then Baseline.Harness.receiver ()
        else
          Baseline.Decay.node ~levels
            ~message:(M.payload ~src:v ~uid:0 ())
            ~rng:(Prng.Rng.split rng))
  in
  Baseline.Harness.first_reception ~dual ~scheduler:Sch.reliable_only ~nodes
    ~receiver:0 ~max_rounds

let e16a () =
  let delta = 64 in
  let max_rounds = 5000 in
  let trials = trials_scaled 20 in
  let table =
    Table.create
      ~title:
        "E16a: symmetry breaking with unknown contention (clique delta=64, \
         mean latency)"
      ~columns:
        [ "active m"; "p=1/2"; "p=1/8"; "p=1/64"; "decay (log-sweep)" ]
  in
  (* Same salt for every (m, p) cell: columns are paired comparisons. *)
  let mean f =
    mean_option_latency ~max_rounds
      (run_trials ~n:trials (fun ~trial:_ ~seed -> f ~seed))
  in
  List.iter
    (fun m ->
      let fixed p = mean (fun ~seed -> fixed_p_latency ~delta ~m ~p ~seed ~max_rounds) in
      let decay = mean (fun ~seed -> decay_latency ~delta ~m ~seed ~max_rounds) in
      Table.add_row table
        [
          Table.cell_int m;
          Table.cell_float ~decimals:1 (fixed 0.5);
          Table.cell_float ~decimals:1 (fixed 0.125);
          Table.cell_float ~decimals:1 (fixed (1.0 /. 64.0));
          Table.cell_float ~decimals:1 decay;
        ])
    (if !quick then [ 1; 64 ] else [ 1; 4; 16; 64 ]);
  Table.print table;
  note
    "Every fixed p has a contention scale where it explodes (p=1/2 at\n\
     m=64; p=1/64 at m=1); the log Δ-level sweep is uniformly fast.  This\n\
     is why t_prog carries a log Δ factor — it is Ω-necessary [21].\n"

(* (b) saturate a clique of delta senders plus one receiver; measure the
   first round by which the receiver has heard all delta DISTINCT
   messages.  Information-theoretic floor: delta - 1 (one clean reception
   per round). *)
let all_messages_latency ~delta ~seed ~max_rounds =
  let dual = Geo.clique (delta + 1) in
  let params = Localcast.Params.of_dual ~eps1:0.1 ~tack_phases:100 dual in
  let rng = Prng.Rng.of_int seed in
  let nodes = Localcast.Lb_alg.network params ~rng ~n:(delta + 1) in
  let senders = List.init delta (fun i -> i + 1) in
  let envt = Localcast.Lb_env.saturate ~n:(delta + 1) ~senders () in
  let heard = Hashtbl.create delta in
  let result = ref None in
  let observer record =
    (match record.Trace.delivered.(0) with
    | Some (M.Data p) -> Hashtbl.replace heard p.M.src ()
    | _ -> ());
    if Hashtbl.length heard = delta && !result = None then
      result := Some record.Trace.round
  in
  let stop _ = !result <> None in
  let (_ : int) =
    Engine.run ~observer ~stop ~dual ~scheduler:Sch.reliable_only ~nodes
      ~env:(Localcast.Lb_env.env envt) ~rounds:max_rounds ()
  in
  !result

let e16b () =
  let trials = trials_scaled 6 in
  let table =
    Table.create
      ~title:"E16b: the delta-round acknowledgement floor (clique, LBAlg)"
      ~columns:
        [ "delta"; "floor (delta-1)"; "rounds to hear all delta"; "t_ack bound" ]
  in
  List.iter
    (fun delta ->
      let max_rounds = 400_000 in
      let latencies =
        run_trials ~salt:delta ~n:trials (fun ~trial:_ ~seed ->
            all_messages_latency ~delta ~seed ~max_rounds)
      in
      let mean = mean_option_latency ~max_rounds latencies in
      let params =
        Localcast.Params.of_dual ~eps1:0.1 (Geo.clique (delta + 1))
      in
      Table.add_row table
        [
          Table.cell_int delta;
          Table.cell_int (delta - 1);
          Table.cell_float ~decimals:0 mean;
          Table.cell_int (Localcast.Params.t_ack_rounds params);
        ])
    (if !quick then [ 4; 16 ] else [ 2; 4; 8; 16 ]);
  Table.print table;
  note
    "The measured all-messages time sits between the information floor\n\
     (delta - 1: one clean reception per round) and the t_ack bound;\n\
     both grow ~linearly in delta — the bound is Δ-optimal up to polylog\n\
     factors, as the paper claims.\n"

let run () =
  section "E16: near-optimality (paper §1, Results discussion)";
  e16a ();
  e16b ()
