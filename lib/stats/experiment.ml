(* One derived seed per trial.  The affine combination separates the
   (master seed, trial) pairs; routing it through the SplitMix64
   finalizer then decorrelates them, so nearby master seeds (or salted
   variants of one master seed) cannot yield overlapping trial streams
   the way the raw affine form could. *)
let derived_seed ~seed ~trial =
  let affine = (seed * 0x9E3779B1) + (trial * 0x85EBCA77) + 0x165667B1 in
  (* [to_int] keeps the low 63 bits — deterministic on 64-bit platforms. *)
  Int64.to_int (Prng.Splitmix.mix (Int64.of_int affine))

let trials ~seed ~n f =
  List.init n (fun trial -> f ~trial ~seed:(derived_seed ~seed ~trial))

let trials_par ?(domains = 1) ~seed ~n f =
  if domains < 1 then invalid_arg "Experiment.trials_par: domains must be >= 1";
  let workers = min domains n in
  if workers <= 1 then trials ~seed ~n f
  else begin
    (* Static block partition of the trial indices over a small pool of
       worker domains.  Each trial's seed depends only on its index, so
       the partition cannot affect any result; slots are disjoint, so the
       unsynchronized writes below are race-free. *)
    let results = Array.make n None in
    let chunk = (n + workers - 1) / workers in
    let worker w () =
      let lo = w * chunk in
      let hi = min n (lo + chunk) in
      for trial = lo to hi - 1 do
        results.(trial) <- Some (f ~trial ~seed:(derived_seed ~seed ~trial))
      done
    in
    (* The spawning domain takes the first block itself. *)
    let spawned = List.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    worker 0 ();
    List.iter Domain.join spawned;
    List.init n (fun trial ->
        match results.(trial) with
        | Some r -> r
        | None -> assert false (* every slot belongs to exactly one block *))
  end

let count p l = List.length (List.filter p l)

let float_samples f l = List.map f l

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)
