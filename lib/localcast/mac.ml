type callbacks = {
  on_recv : node:int -> round:int -> Messages.payload -> unit;
  on_ack : node:int -> round:int -> Messages.payload -> unit;
}

let no_callbacks =
  {
    on_recv = (fun ~node:_ ~round:_ _ -> ());
    on_ack = (fun ~node:_ ~round:_ _ -> ());
  }

type t = {
  params : Params.t;
  dual : Dualgraph.Dual.t;
  nodes :
    (Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Process.node array;
  env : (Messages.lb_input, Messages.lb_output) Radiosim.Env.t;
  queued : Messages.payload option array;  (** requests awaiting delivery *)
  outstanding : bool array;  (** bcast issued, ack not yet seen *)
  next_uid : int array;
  mutable started : bool;
}

let create ?(callbacks = no_callbacks) ~params ~rng ~dual () =
  let n = Dualgraph.Dual.n dual in
  let queued = Array.make n None in
  let outstanding = Array.make n false in
  let env_inputs ~round:_ ~node =
    match queued.(node) with
    | Some payload ->
        queued.(node) <- None;
        [ Messages.Bcast payload ]
    | None -> []
  in
  let env_notify ~round ~node outs =
    List.iter
      (fun out ->
        match out with
        | Messages.Recv payload -> callbacks.on_recv ~node ~round payload
        | Messages.Ack payload ->
            outstanding.(node) <- false;
            callbacks.on_ack ~node ~round payload
        | Messages.Committed _ -> ())
      outs
  in
  {
    params;
    dual;
    nodes = Lb_alg.network params ~rng ~n;
    env =
      {
        Radiosim.Env.name = "abstract-mac";
        (* [inputs] pops the queued bcast — a side effect. *)
        pure_inputs = false;
        inputs = env_inputs;
        notify = env_notify;
      };
    queued;
    outstanding;
    next_uid = Array.make n 0;
    started = false;
  }

let busy t ~node = t.outstanding.(node) || t.queued.(node) <> None

let request t ~node ~tag =
  if busy t ~node then false
  else begin
    let payload = Messages.payload ~tag ~src:node ~uid:t.next_uid.(node) () in
    t.next_uid.(node) <- t.next_uid.(node) + 1;
    t.queued.(node) <- Some payload;
    t.outstanding.(node) <- true;
    true
  end

let f_prog t = Params.t_prog_rounds t.params
let f_ack t = Params.t_ack_rounds t.params

let run ?observer ?stop ?sink ?metrics ?faults ?revive ?reception ?tick t
    ~scheduler ~rounds =
  if t.started then invalid_arg "Mac.run: already run";
  t.started <- true;
  let env =
    match tick with
    | None -> t.env
    | Some tick ->
        (* Fire once at the top of each round, when the engine polls the
           round's first live node for inputs — before that node's queued
           bcast (if any) is popped, so a request made inside the tick is
           seen by every node's poll of the same round. *)
        let last = ref (-1) in
        {
          t.env with
          Radiosim.Env.inputs =
            (fun ~round ~node ->
              if round > !last then begin
                last := round;
                tick ~round
              end;
              t.env.Radiosim.Env.inputs ~round ~node);
        }
  in
  let observer =
    match sink with
    | None -> observer
    | Some sink ->
        (* Interleave the protocol stream with the engine's structural
           one, as Service.run does. *)
        let glue = Lb_obs.create ?metrics ~sink ~dual:t.dual ~params:t.params () in
        let f record =
          Lb_obs.observer glue record;
          match observer with Some f -> f record | None -> ()
        in
        Some f
  in
  Radiosim.Engine.run ?observer ?stop ?sink ?metrics ?faults ?revive
    ?reception ~dual:t.dual ~scheduler ~nodes:t.nodes ~env ~rounds ()
