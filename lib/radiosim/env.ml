type ('input, 'output) t = {
  name : string;
  pure_inputs : bool;
  inputs : round:int -> node:int -> 'input list;
  notify : round:int -> node:int -> 'output list -> unit;
}

let null ~name () =
  {
    name;
    pure_inputs = true;
    inputs = (fun ~round:_ ~node:_ -> []);
    notify = (fun ~round:_ ~node:_ _ -> ());
  }

let scripted ~name events =
  let inputs ~round ~node =
    List.filter_map
      (fun (r, v, input) -> if r = round && v = node then Some input else None)
      events
  in
  { name; pure_inputs = true; inputs; notify = (fun ~round:_ ~node:_ _ -> ()) }
