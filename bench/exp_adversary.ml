(* Experiment E8: the Discussion's motivating attack.  A schedule-aware
   oblivious adversary degrades the fixed-probability Decay baseline by a
   factor that grows with grey-zone contention, while LBAlg (whose
   schedule is permuted by post-execution seed agreement) is unaffected.

   Also includes the non-local round-robin reference point: collision-free
   but needs the global id space — the dependence "true locality" bans. *)

open Core
open Exp_common
module Dual = Dualgraph.Dual
module Geo = Dualgraph.Geometric
module Sch = Radiosim.Scheduler
module M = Localcast.Messages
module Params = Localcast.Params
module Table = Stats.Table

let max_rounds = 60_000

let round_robin_first_reception ~dual ~scheduler ~receiver ~max_rounds =
  let n = Dual.n dual in
  let nodes =
    Array.init n (fun v ->
        if v = receiver then Baseline.Harness.receiver ()
        else Baseline.Round_robin.node ~n ~id:v ~message:(M.payload ~src:v ~uid:0 ()))
  in
  Baseline.Harness.first_reception ~dual ~scheduler ~nodes ~receiver ~max_rounds

let run () =
  section "E8: fixed schedules vs the oblivious adversary (Discussion, §1)";
  note
    "Grey-cluster fixture: receiver u, one reliable sender v, k grey-zone\n\
     senders behind unreliable links.  'thwart' includes all grey links\n\
     exactly when Decay's schedule probability is high.  Mean rounds until\n\
     u first hears anything.";
  let trials = trials_scaled 12 in
  let table =
    Table.create ~title:"E8: progress latency under attack"
      ~columns:
        [ "k"; "algorithm"; "benign"; "thwart"; "slowdown"; "starved (thwart)" ]
  in
  let ks = if !quick then [ 8; 32 ] else [ 8; 16; 32; 64 ] in
  List.iter
    (fun k ->
      let dual = Geo.gray_cluster ~k ~r:1.5 () in
      let levels = Baseline.Decay.levels_for ~delta':(Dual.delta' dual) in
      let hot_levels = Baseline.Decay.hot_levels_against ~levels ~contention:k in
      let thwart =
        Sch.thwart ~hot:(Baseline.Decay.hot_predicate ~levels ~hot_levels)
      in
      let benign seed = Sch.bernoulli ~seed ~p:0.5 in
      (* Same salt everywhere: benign and thwart runs (and all three
         algorithms) see identical per-trial seeds, so each row is a
         paired comparison. *)
      let sample f = run_trials ~n:trials (fun ~trial:_ ~seed -> f ~seed) in
      let add_row name latency_of =
        let benign_samples = sample (fun ~seed -> latency_of ~scheduler:(benign seed) ~seed) in
        let thwart_samples = sample (fun ~seed -> latency_of ~scheduler:thwart ~seed) in
        let b = mean_option_latency ~max_rounds benign_samples in
        let t = mean_option_latency ~max_rounds thwart_samples in
        Table.add_row table
          [
            Table.cell_int k;
            name;
            Table.cell_float ~decimals:0 b;
            Table.cell_float ~decimals:0 t;
            Table.cell_float ~decimals:1 (t /. Float.max 1.0 b);
            Printf.sprintf "%d/%d" (starved thwart_samples) trials;
          ]
      in
      add_row "decay" (fun ~scheduler ~seed ->
          decay_first_reception ~dual ~scheduler ~receiver:0 ~seed ~max_rounds);
      let params = Params.of_dual ~eps1:0.1 ~tack_phases:2 dual in
      add_row "lbalg" (fun ~scheduler ~seed ->
          lbalg_first_reception ~dual ~params ~scheduler ~receiver:0 ~seed
            ~max_rounds);
      add_row "round-robin*" (fun ~scheduler ~seed:_ ->
          round_robin_first_reception ~dual ~scheduler ~receiver:0 ~max_rounds))
    ks;
  Table.print table;
  note
    "Expected: decay's slowdown grows with k; lbalg's stays ~1.  (*) the\n\
     round-robin reference is immune by construction but needs the global\n\
     parameter n — exactly the dependence this paper eliminates.\n"
