(** Multi-hop flood over the abstract MAC layer.

    The canonical first algorithm of the abstract-MAC-layer literature
    (Kuhn–Lynch–Newport; Khabbazian et al.): a source broadcasts a
    message; every node relays it once upon first reception.  Written
    purely against {!Localcast.Mac}, it inherits the dual graph tolerance
    of the underlying LB service — the composition claim of the paper's
    introduction.  Over a network of reliable diameter D the expected
    completion time is O(D · f_ack)-shaped (each hop costs at most one
    acknowledgement epoch). *)

type result = {
  covered : bool array;  (** nodes that got the flood (source included) *)
  covered_count : int;
  completion_round : int option;
      (** first round at which every node was covered, if reached *)
  relays : int;  (** number of nodes that rebroadcast *)
  rounds_executed : int;
}

val run :
  ?sink:Obs.Sink.t ->
  ?metrics:Obs.Metrics.t ->
  params:Localcast.Params.t ->
  rng:Prng.Rng.t ->
  dual:Dualgraph.Dual.t ->
  scheduler:Radiosim.Scheduler.t ->
  source:int ->
  max_rounds:int ->
  ?flood_tag:int ->
  unit ->
  result
(** Floods from [source], stopping as soon as every vertex is covered or
    [max_rounds] elapse.  [flood_tag] (default 1) identifies the flood in
    message tags.

    [sink] receives the full stack's event stream (engine structural
    events, LB protocol events via the MAC) plus the flood's own [Mark]
    annotations: [flood.cover] when a node first gets the message,
    [flood.relay] when it rebroadcasts, and a network-wide
    [flood.complete] when coverage reaches n.  [metrics] maintains the
    [flood.relays] counter and [flood.covered] gauge alongside. *)
