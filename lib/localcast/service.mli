(** One-call runners for the local broadcast service.

    Most users want to answer one of three questions about a topology:
    does the service meet its spec here, how long until a receiver first
    hears something, and does a one-shot broadcast reach the whole
    neighborhood in time?  These functions package the full pipeline —
    network construction, environment, engine, spec monitor — behind a
    single deterministic call (same arguments ⟹ same numbers).  The
    experiment harness in [bench/] is built from exactly these. *)

type outcome = {
  report : Lb_spec.report;  (** the spec monitor's verdicts *)
  env_log : Lb_env.entry list;  (** per-bcast ack/reception log *)
  rounds_executed : int;
  obs_snapshots : Obs.Metrics.snapshot list;
      (** per-phase metric snapshots, oldest first; non-empty only when
          the run was given both a sink and a metrics registry *)
}

val reviver :
  ?seed_source:Lb_alg.seed_source ->
  params:Params.t ->
  seed:int ->
  unit ->
  node:int ->
  round:int ->
  (Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Process.node
(** The fresh-state re-entry function the runners pass to
    {!Radiosim.Engine.run} as [?revive] under a fault plan: a brand-new
    {!Lb_alg.node} whose generator is [mix(seed·A + (node+1)·B +
    (round+1)·C)] — a pure function of the run's identity, so faulted
    runs stay bit-identical at any trial-parallelism split.  Exposed for
    drivers (the CLI, benches) that call the engine directly. *)

val run :
  ?scheduler:Radiosim.Scheduler.t ->
  ?seed_source:Lb_alg.seed_source ->
  ?observer:
    ((Messages.msg, Messages.lb_input, Messages.lb_output) Radiosim.Trace.round_record ->
    unit) ->
  ?sink:Obs.Sink.t ->
  ?metrics:Obs.Metrics.t ->
  ?faults:Faults.Plan.t ->
  ?reception:Radiosim.Reception.t ->
  dual:Dualgraph.Dual.t ->
  params:Params.t ->
  senders:int list ->
  phases:int ->
  seed:int ->
  unit ->
  outcome
(** Saturates the given senders for [phases] service phases under the
    scheduler (default Bernoulli(1/2) derived from [seed]) and returns
    the spec monitor's verdicts.  [observer] additionally sees every
    round record.

    [sink] turns on observability: the engine emits its structural
    events into it and a {!Lb_obs} translator adds the protocol events,
    interleaved in causal order (an {!Obs.Audit} consumer registered on
    the sink before the call sees the complete stream).  [metrics], used
    together with [sink], additionally maintains the conventional
    instruments and fills [obs_snapshots] with one labeled snapshot per
    completed phase.  Neither option perturbs the execution: traces,
    verdicts and RNG draws are identical with and without them.

    [faults] runs the engine under the given {!Faults.Plan} with
    survivor-relative spec accounting (see {!Lb_spec}): the report's
    [t_ack]/[t_prog] claims are scoped to nodes alive for the full
    obligation window, so a crash plan yields no false breaches.
    Restarted nodes re-enter with a fresh LBAlg process whose RNG is
    derived from (seed, node, round) via SplitMix — deterministic at any
    domain count.

    [reception] selects the engine's reception model (default
    {!Radiosim.Reception.dual_graph}); the algorithm, environment, spec
    monitor and observability rail are physics-agnostic and run
    unchanged over {!Radiosim.Reception.Sinr}.  Under a fault plan note
    the SINR jam semantics: jam windows degrade the victim's reception
    instead of suppressing its transmission (see [docs/RECEPTION.md]). *)

val one_shot :
  ?scheduler:Radiosim.Scheduler.t ->
  ?sink:Obs.Sink.t ->
  ?metrics:Obs.Metrics.t ->
  ?faults:Faults.Plan.t ->
  ?reception:Radiosim.Reception.t ->
  dual:Dualgraph.Dual.t ->
  params:Params.t ->
  sender:int ->
  seed:int ->
  unit ->
  outcome * int option
(** A single [bcast] at round 0, run for the full derived
    acknowledgement window [t_ack].  The second component is the round by
    which the {e last} reliable neighbor had received the message, if all
    of them did.  [sink], [metrics], [faults] and [reception]
    behave as in {!run}; under a fault plan, completion is judged over
    the {e survivor} neighbors (alive for the whole run) only. *)

val first_reception :
  ?scheduler:Radiosim.Scheduler.t ->
  ?seed_source:Lb_alg.seed_source ->
  ?sink:Obs.Sink.t ->
  ?faults:Faults.Plan.t ->
  ?reception:Radiosim.Reception.t ->
  dual:Dualgraph.Dual.t ->
  params:Params.t ->
  receiver:int ->
  max_rounds:int ->
  seed:int ->
  unit ->
  int option
(** All nodes except [receiver] saturate; returns the 0-based round of
    the receiver's first clean data reception, or [None] if it starves
    for [max_rounds].  [sink] receives the engine's structural events
    (this runner has no spec observer, so no protocol events);
    [reception] behaves as in {!run}. *)
