(* Candidate pairs at distance <= r are found with a uniform grid of
   cell size max(r, 1) (see Grid): each point is compared only against
   the 3x3 neighborhood of its cell — O(n · local density) instead of
   the all-pairs O(n²) scan, which is what keeps generation usable at
   n >= 10^4 (the same grid backs Dual.create's r-geographic check).
   Edges accumulate into flat int arrays in lexicographic order, so the
   graphs build through Graph.of_sorted_arrays with no re-sort, dedup,
   or per-edge boxing.

   Reproducibility note: the grey-zone draws must consume the rng in
   exactly the order the historical all-pairs loop did — pairs (u, v)
   in lexicographic order, one gray_g' draw per candidate and a nested
   gray_g draw on success — or every seeded topology in the test suite
   and EXPERIMENTS.md shifts.  The grid scan visits each u's candidates
   as a concatenation of ascending per-cell runs; sorting them (an
   insertion sort, near-linear on such input) before any classification
   restores exactly that order. *)
let build_from_points ?rng ~r ~gray_g' ~gray_g points =
  let n = Array.length points in
  let emb = Embedding.create points in
  let gray_draw p =
    match rng with
    | Some rng -> Prng.Rng.bernoulli rng p
    | None ->
        if p >= 1.0 then true
        else if p <= 0.0 then false
        else invalid_arg "Geometric: fractional grey-zone probability requires ~rng"
  in
  let grid = Grid.create ~cell:(Float.max r 1.0) emb in
  (* Unboxed coordinate arrays: the scan's distance evaluations read
     these flat float arrays instead of chasing boxed point records. *)
  let xs = Array.make (max n 1) 0.0 and ys = Array.make (max n 1) 0.0 in
  for v = 0 to n - 1 do
    let p = points.(v) in
    xs.(v) <- p.Embedding.x;
    ys.(v) <- p.Embedding.y
  done;
  (* Growable (u, v) accumulators for the reliable and full edge sets. *)
  let ru = ref (Array.make 64 0) and rv = ref (Array.make 64 0) in
  let rlen = ref 0 in
  let au = ref (Array.make 64 0) and av = ref (Array.make 64 0) in
  let alen = ref 0 in
  let push bu bv blen u v =
    let cap = Array.length !bu in
    if !blen = cap then begin
      let nu = Array.make (2 * cap) 0 and nv = Array.make (2 * cap) 0 in
      Array.blit !bu 0 nu 0 cap;
      Array.blit !bv 0 nv 0 cap;
      bu := nu;
      bv := nv
    end;
    !bu.(!blen) <- u;
    !bv.(!blen) <- v;
    incr blen
  in
  (* Candidates carry their classification in the low bit (1 = grey
     zone, 0 = reliable), so each pair's distance is evaluated exactly
     once and the sort on the packed value still orders by v. *)
  let cand = Array.make (max n 1) 0 in
  for u = 0 to n - 1 do
    let k = ref 0 in
    let ux = Array.unsafe_get xs u and uy = Array.unsafe_get ys u in
    Grid.iter_neighborhood grid u (fun v ->
        if v > u then begin
          let dx = Array.unsafe_get xs v -. ux
          and dy = Array.unsafe_get ys v -. uy in
          let d = sqrt ((dx *. dx) +. (dy *. dy)) in
          if d <= r then begin
            cand.(!k) <- (v lsl 1) lor (if d <= 1.0 then 0 else 1);
            incr k
          end
        end);
    for i = 1 to !k - 1 do
      let x = cand.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && cand.(!j) > x do
        cand.(!j + 1) <- cand.(!j);
        decr j
      done;
      cand.(!j + 1) <- x
    done;
    for i = 0 to !k - 1 do
      let packed = cand.(i) in
      let v = packed lsr 1 in
      if packed land 1 = 0 then begin
        push ru rv rlen u v;
        push au av alen u v
      end
      else if gray_draw gray_g' then begin
        push au av alen u v;
        if gray_draw gray_g then push ru rv rlen u v
      end
    done
  done;
  let g = Graph.of_sorted_arrays ~n ~us:!ru ~vs:!rv ~len:!rlen in
  let g' = Graph.of_sorted_arrays ~n ~us:!au ~vs:!av ~len:!alen in
  (* ~validate:false: r-geographic holds by construction — G holds every
     pair at distance <= 1 plus grey winners, and every G' edge spans
     distance <= r (test_dualgraph re-checks via Dual.is_r_geographic
     against a naive all-pairs reference). *)
  Dual.create ~embedding:emb ~r ~validate:false ~g ~g' ()

let random_field ~rng ~n ~width ~height ~r ?(gray_g' = 0.5) ?(gray_g = 0.0) () =
  if n < 0 then invalid_arg "Geometric.random_field: negative n";
  let points =
    Array.init n (fun _ ->
        { Embedding.x = Prng.Rng.float rng width; y = Prng.Rng.float rng height })
  in
  build_from_points ~rng ~r ~gray_g' ~gray_g points

let grid ~rows ~cols ~spacing ~r ?(gray_g' = 1.0) ?rng () =
  if rows <= 0 || cols <= 0 then invalid_arg "Geometric.grid: empty grid";
  let points =
    Array.init (rows * cols) (fun i ->
        let row = i / cols and col = i mod cols in
        {
          Embedding.x = float_of_int col *. spacing;
          y = float_of_int row *. spacing;
        })
  in
  build_from_points ?rng ~r ~gray_g' ~gray_g:0.0 points

let cluster_field ~rng ~clusters ~per_cluster ~field ~r ?(spread = 0.3) ?(gray_g' = 0.5)
    () =
  if clusters <= 0 || per_cluster <= 0 then
    invalid_arg "Geometric.cluster_field: empty cluster spec";
  let centers =
    Array.init clusters (fun _ ->
        { Embedding.x = Prng.Rng.float rng field; y = Prng.Rng.float rng field })
  in
  let points =
    Array.init (clusters * per_cluster) (fun i ->
        let c = centers.(i / per_cluster) in
        {
          Embedding.x = c.Embedding.x +. Prng.Rng.float rng spread;
          y = c.Embedding.y +. Prng.Rng.float rng spread;
        })
  in
  build_from_points ~rng ~r ~gray_g' ~gray_g:0.0 points

let dense_disk ~rng ~n =
  if n < 0 then invalid_arg "Geometric.dense_disk: negative n";
  (* Rejection-sample points in the disk of radius 1/2 around (1/2, 1/2):
     all pairwise distances are then <= 1. *)
  let rec draw () =
    let x = Prng.Rng.float rng 1.0 and y = Prng.Rng.float rng 1.0 in
    let dx = x -. 0.5 and dy = y -. 0.5 in
    if (dx *. dx) +. (dy *. dy) <= 0.25 then { Embedding.x; y } else draw ()
  in
  build_from_points ~rng ~r:1.0 ~gray_g':0.0 ~gray_g:0.0 (Array.init n (fun _ -> draw ()))

let line ~n ?(spacing = 0.9) ?(r = 1.0) () =
  if n < 0 then invalid_arg "Geometric.line: negative n";
  let points =
    Array.init n (fun i -> { Embedding.x = float_of_int i *. spacing; y = 0.0 })
  in
  build_from_points ~r ~gray_g':1.0 ~gray_g:0.0 points

let clique n =
  if n < 0 then invalid_arg "Geometric.clique: negative n";
  (* Co-located points within a tiny disk: the reliable graph is complete. *)
  let points =
    Array.init n (fun i ->
        { Embedding.x = 0.001 *. float_of_int (i mod 32); y = 0.0 })
  in
  build_from_points ~r:1.0 ~gray_g':0.0 ~gray_g:0.0 points

let pair () = line ~n:2 ~spacing:0.9 ()

let singleton () = clique 1

let gray_cluster ~k ?(r = 1.5) () =
  if k < 0 then invalid_arg "Geometric.gray_cluster: negative k";
  if r < 1.41 then invalid_arg "Geometric.gray_cluster: requires r >= 1.41";
  (* u at the origin; v at (0.9, 0); the grey cluster co-located around
     (-(1 + r) / 2, 0), i.e. in u's grey zone and out of v's range. *)
  let gx = -.(1.0 +. r) /. 2.0 in
  let points =
    Array.init (k + 2) (fun i ->
        if i = 0 then { Embedding.x = 0.0; y = 0.0 }
        else if i = 1 then { Embedding.x = 0.9; y = 0.0 }
        else { Embedding.x = gx +. (0.0001 *. float_of_int i); y = 0.0 })
  in
  build_from_points ~r ~gray_g':1.0 ~gray_g:0.0 points

let ring ~n ?(hop = 0.9) ?(r = 1.0) () =
  if n < 3 then invalid_arg "Geometric.ring: need n >= 3";
  (* Chord length between consecutive points equals [hop] when the radius
     is hop / (2 sin(pi/n)). *)
  let radius = hop /. (2.0 *. sin (Float.pi /. float_of_int n)) in
  let points =
    Array.init n (fun i ->
        let angle = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
        { Embedding.x = radius *. cos angle; y = radius *. sin angle })
  in
  build_from_points ~r ~gray_g':1.0 ~gray_g:0.0 points

let corridor ~rng ~n ~length ?(height = 0.8) ?(r = 1.5) ?(gray_g' = 0.5) () =
  if n < 0 then invalid_arg "Geometric.corridor: negative n";
  let points =
    Array.init n (fun _ ->
        { Embedding.x = Prng.Rng.float rng length; y = Prng.Rng.float rng height })
  in
  build_from_points ~rng ~r ~gray_g' ~gray_g:0.0 points

let star_unembedded ~leaves =
  if leaves < 0 then invalid_arg "Geometric.star_unembedded: negative leaves";
  let n = leaves + 1 in
  let edges = List.init leaves (fun i -> (0, i + 1)) in
  let g = Graph.create ~n ~edges in
  Dual.create ~g ~g':g ()
