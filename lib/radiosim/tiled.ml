module Dual = Dualgraph.Dual
module Graph = Dualgraph.Graph
module Tile = Dualgraph.Tile
module A1 = Bigarray.Array1

let default_tiles () = 1 + Parallel.Budget.suggested_extra ()

(* Growable flat int buffer — transmitter lists, touched-listener lists
   and halo outboxes all reuse it round to round, so steady-state rounds
   allocate nothing for bookkeeping. *)
type ibuf = { mutable data : int array; mutable len : int }

let ibuf_make () = { data = Array.make 64 0; len = 0 }

let ibuf_push b x =
  let cap = Array.length b.data in
  if b.len = cap then begin
    let d = Array.make (2 * cap) 0 in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d
  end;
  Array.unsafe_set b.data b.len x;
  b.len <- b.len + 1

(* The multi-tile path mirrors Engine.run phase for phase; every
   trace-visible serialization (events, notify, records) is produced by
   the coordinator in ascending node order, so the tiling never shows.
   See tiled.mli and DESIGN.md §10 for the determinism argument. *)
let run ?observer ?stop ?sink ?metrics ?faults ?revive ?tiles
    ?(reception = Reception.dual_graph) ~dual ~scheduler ~nodes ~env ~rounds ()
    =
  (match tiles with
  | Some k when k < 1 -> invalid_arg "Tiled.run: tiles must be >= 1"
  | _ -> ());
  let n = Dual.n dual in
  let k =
    min (match tiles with Some k -> k | None -> default_tiles ()) (max n 1)
  in
  if k <= 1 then
    (* The single-domain path is the sequential engine itself. *)
    Engine.run ?observer ?stop ?sink ?metrics ?faults ?revive ~reception ~dual
      ~scheduler ~nodes ~env ~rounds ()
  else begin
    if Array.length nodes <> n then
      invalid_arg "Tiled.run: node array size differs from vertex count";
    if rounds < 0 then invalid_arg "Tiled.run: negative round count";
    (match faults with
    | Some plan when Faults.Plan.n plan <> n ->
        invalid_arg "Tiled.run: fault plan node count differs from vertex count"
    | _ -> ());
    let tile = Tile.of_dual ~tiles:k dual in
    let k = Tile.tiles tile in
    let owner = Array.init n (Tile.owner tile) in
    let members = Array.init k (Tile.members tile) in
    let nodes = match faults with None -> nodes | Some _ -> Array.copy nodes in
    let dead = Bytes.make n '\000' in
    let fault_cursor = Option.map Faults.Plan.cursor faults in
    let is_dead =
      match faults with
      | None -> fun _ -> false
      | Some _ -> fun v -> Bytes.unsafe_get dead v = '\001'
    in
    let round = ref 0 in
    let jammed =
      match faults with
      | None -> fun _ -> false
      | Some plan when not (Faults.Plan.has_jams plan) -> fun _ -> false
      | Some plan -> fun v -> Faults.Plan.jammed plan ~node:v ~round:!round
    in
    (* Reception model, fixed for the run.  Under SINR the field is
       loaded by the coordinator each round and [Sinr.receive] is a pure
       function of the loaded state, so tiles may evaluate their
       listeners in any order — the trace cannot depend on the tiling. *)
    let sinr_field =
      match reception with
      | Reception.Dual_graph -> None
      | Reception.Sinr p -> Some (Sinr.create ~params:p dual)
    in
    let jam_suppresses = Option.is_none sinr_field in
    let has_jams =
      match faults with
      | Some plan -> Faults.Plan.has_jams plan
      | None -> false
    in
    let g_off = Graph.csr_offsets (Dual.g dual) in
    let g_adj = Graph.csr_neighbors (Dual.g dual) in
    let m = Dual.unreliable_count dual in
    let eu = Array.make (max m 1) 0 and ev = Array.make (max m 1) 0 in
    Array.iteri
      (fun i (u, v) ->
        eu.(i) <- u;
        ev.(i) <- v)
      (Dual.unreliable_edges dual);
    let sparse = Array.make (max m 1) 0 in
    let adj_head = Array.make n (-1) in
    let adj_next = Array.make (max (2 * m) 1) 0 in
    let adj_nbr = Array.make (max (2 * m) 1) 0 in
    let ctr_active, ctr_resolved =
      match metrics with
      | None -> (None, None)
      | Some reg ->
          ( Some (Obs.Metrics.counter reg "engine.active_edges"),
            Some (Obs.Metrics.counter reg "scheduler.edges_resolved") )
    in
    let ctr_crash, ctr_restart, ctr_jam =
      match (metrics, faults) with
      | Some reg, Some _ ->
          ( Some (Obs.Metrics.counter reg "faults.crashes"),
            Some (Obs.Metrics.counter reg "faults.restarts"),
            Some (Obs.Metrics.counter reg "faults.jams") )
      | _ -> (None, None, None)
    in
    (* Per-listener reception accumulator, unboxed: -1 nothing heard,
       >= 0 the single transmitter heard so far, -2 collided.  A slot is
       written only by the listener's owning tile (remote transmissions
       arrive through the outboxes), so the phases below are race-free
       by ownership. *)
    let heard = A1.create Bigarray.int Bigarray.c_layout n in
    A1.fill heard (-1);
    let transmit = Bytes.make n '\000' in
    let tx = Array.init k (fun _ -> ibuf_make ()) in
    (* SINR only: the round's global transmitter list in ascending id
       order, and the round's transmitter count — shared with the absorb
       phase, which must know whether the field was loaded at all. *)
    let tx_global = Array.make (max n 1) 0 in
    let tcount = ref 0 in
    let touched = Array.init k (fun _ -> ibuf_make ()) in
    let outbox = Array.init k (fun _ -> Array.init k (fun _ -> ibuf_make ())) in
    let jam_hits = Array.make k 0 in
    let record_escapes = observer <> None || stop <> None in
    let inputs_r = ref (Array.make n []) in
    let actions_r = ref (Array.make n Process.Listen) in
    let delivered_r = ref (Array.make n None) in
    let outputs_r = ref (Array.make n []) in
    let pure_env = env.Env.pure_inputs in
    let push_local tb w src =
      let cur = A1.unsafe_get heard w in
      if cur = -1 then begin
        A1.unsafe_set heard w src;
        ibuf_push tb w
      end
      else if cur <> -2 then A1.unsafe_set heard w (-2)
    in
    let phase_decide i =
      let t = !round in
      let inputs = !inputs_r and actions = !actions_r in
      let mem = members.(i) in
      let txb = tx.(i) in
      txb.len <- 0;
      let jams = ref 0 in
      for idx = 0 to Array.length mem - 1 do
        let v = Array.unsafe_get mem idx in
        if is_dead v then begin
          inputs.(v) <- [];
          actions.(v) <- Process.Listen;
          Bytes.unsafe_set transmit v '\000'
        end
        else begin
          if pure_env then inputs.(v) <- env.Env.inputs ~round:t ~node:v;
          let a = nodes.(v).Process.decide ~round:t inputs.(v) in
          actions.(v) <- a;
          match a with
          | Process.Transmit _ ->
              if jam_suppresses && jammed v then begin
                incr jams;
                Bytes.unsafe_set transmit v '\000'
              end
              else begin
                Bytes.unsafe_set transmit v '\001';
                ibuf_push txb v
              end
          | Process.Listen -> Bytes.unsafe_set transmit v '\000'
        end
      done;
      jam_hits.(i) <- !jams
    in
    let phase_push i =
      let txb = tx.(i) in
      let tb = touched.(i) in
      let ob = outbox.(i) in
      for idx = 0 to txb.len - 1 do
        let v = Array.unsafe_get txb.data idx in
        let deliver w =
          let o = Array.unsafe_get owner w in
          if o = i then push_local tb w v
          else begin
            let b = Array.unsafe_get ob o in
            ibuf_push b w;
            ibuf_push b v
          end
        in
        for j = g_off.(v) to g_off.(v + 1) - 1 do
          deliver (Array.unsafe_get g_adj j)
        done;
        let j = ref (Array.unsafe_get adj_head v) in
        while !j >= 0 do
          deliver (Array.unsafe_get adj_nbr !j);
          j := Array.unsafe_get adj_next !j
        done
      done
    in
    (* SINR reception, transmitter-centric: tile i owns the contiguous
       slot range [i·n/k, (i+1)·n/k) of the field's column-major
       listener CSR (the same spatial ranking Tile stripes, so the load
       split matches the member split), walks only the columns of that
       range that are active this round, and writes verdicts into
       [heard] with the dual path's -2/src encoding.  Two tiles sharing
       a split column scan disjoint slot sub-ranges, so the batched
       scratch inside [f] is touched race-free; the skip set itself is
       derived from topology-fixed column data only, never the tiling.
       Runs only in contended rounds (the coordinator gates the phase on
       tcount > 0, exactly when the reference path consulted receive). *)
    let phase_sinr_scan i =
      match sinr_field with
      | None -> ()
      | Some f ->
          let slo = i * n / k and shi = (i + 1) * n / k in
          let soff = Sinr.slot_off f and snode = Sinr.slot_node f in
          let tb = touched.(i) in
          (* faults.jams charges every jammed alive listener of a
             contended round, in or out of band — same meaning as the
             sequential engine's counting pass. *)
          let jams = ref 0 in
          if has_jams then
            for s = slo to shi - 1 do
              let v = Array.unsafe_get snode s in
              if
                Bytes.unsafe_get transmit v = '\000'
                && (not (is_dead v))
                && jammed v
              then incr jams
            done;
          jam_hits.(i) <- !jams;
          let s = ref slo in
          while !s < shi do
            let c = Sinr.column_of f (Array.unsafe_get snode !s) in
            let cend = min shi (Array.unsafe_get soff (c + 1)) in
            if Sinr.column_active f c then begin
              Sinr.scan_slots f ~column:c ~lo:!s ~hi:cend;
              for slot = !s to cend - 1 do
                let u = Array.unsafe_get snode slot in
                if Bytes.unsafe_get transmit u = '\000' && not (is_dead u)
                then begin
                  match Sinr.verdict f ~jammed:(jammed u) ~slot with
                  | -1 -> ()
                  | -2 ->
                      A1.unsafe_set heard u (-2);
                      ibuf_push tb u
                  | src ->
                      A1.unsafe_set heard u src;
                      ibuf_push tb u
                end
              done
            end;
            s := cend
          done
    in
    let phase_absorb i =
      let t = !round in
      let actions = !actions_r
      and delivered = !delivered_r
      and outputs = !outputs_r in
      let tb = touched.(i) in
      (match sinr_field with
      | Some _ ->
          (* No halo exchange under SINR: nothing was pushed, and the
             scan phase already folded every verdict into [heard]. *)
          ()
      | None ->
          (* Halo exchange: apply foreign transmissions addressed to this
             tile.  Drain order (ascending source tile) is fixed but cannot
             matter — the accumulator fold is commutative. *)
          for src_tile = 0 to k - 1 do
            if src_tile <> i then begin
              let b = outbox.(src_tile).(i) in
              let j = ref 0 in
              while !j < b.len do
                push_local tb
                  (Array.unsafe_get b.data !j)
                  (Array.unsafe_get b.data (!j + 1));
                j := !j + 2
              done;
              b.len <- 0
            end
          done);
      let mem = members.(i) in
      for idx = 0 to Array.length mem - 1 do
        let v = Array.unsafe_get mem idx in
        let d =
          match actions.(v) with
          | Process.Transmit _ -> None
          | Process.Listen ->
              if is_dead v then None
              else
                let s = A1.unsafe_get heard v in
                if s < 0 then None
                else
                  (match actions.(s) with
                  | Process.Transmit msg -> Some msg
                  | Process.Listen -> assert false)
        in
        delivered.(v) <- d;
        outputs.(v) <-
          (if is_dead v then [] else nodes.(v).Process.absorb ~round:t d)
      done
    in
    let pool = Parallel.Pool.create ~workers:k in
    Fun.protect
      ~finally:(fun () -> Parallel.Pool.shutdown pool)
      (fun () ->
        let executed = ref 0 in
        let continue = ref true in
        while !continue && !round < rounds do
          let t = !round in
          (match sink with
          | None -> ()
          | Some s -> Obs.Sink.emit s (Obs.Event.Round_start { round = t }));
          (match fault_cursor with
          | None -> ()
          | Some cur ->
              Faults.Plan.apply cur ~round:t (fun node ev ->
                  match ev with
                  | Faults.Plan.Crash ->
                      Bytes.unsafe_set dead node '\001';
                      (match sink with
                      | None -> ()
                      | Some s ->
                          Obs.Sink.emit s (Obs.Event.Crash { round = t; node }));
                      (match ctr_crash with
                      | Some c -> Obs.Metrics.incr c
                      | None -> ())
                  | Faults.Plan.Restart ->
                      Bytes.unsafe_set dead node '\000';
                      (match revive with
                      | Some fresh -> nodes.(node) <- fresh ~node ~round:t
                      | None -> ());
                      (match sink with
                      | None -> ()
                      | Some s ->
                          Obs.Sink.emit s (Obs.Event.Restart { round = t; node }));
                      (match ctr_restart with
                      | Some c -> Obs.Metrics.incr c
                      | None -> ())));
          if record_escapes then begin
            inputs_r := Array.make n [];
            actions_r := Array.make n Process.Listen;
            delivered_r := Array.make n None;
            outputs_r := Array.make n []
          end;
          if not pure_env then begin
            (* Stateful environments see exactly the sequential engine's
               poll sequence: ascending nodes, dead ones skipped. *)
            let inputs = !inputs_r in
            for v = 0 to n - 1 do
              inputs.(v) <-
                (if is_dead v then [] else env.Env.inputs ~round:t ~node:v)
            done
          end;
          Parallel.Pool.run pool phase_decide;
          tcount := 0;
          for i = 0 to k - 1 do
            tcount := !tcount + tx.(i).len
          done;
          let acount = ref 0 in
          (match sinr_field with
          | Some f ->
              (* The global transmitter list is rebuilt in ascending id
                 order — the canonical accumulation order — by scanning
                 the transmit bytes, never by concatenating per-tile
                 lists (tile stripes do not partition the id space).
                 The link scheduler is not consulted under SINR, and
                 nothing is pushed: the scan phase resolves reception
                 over the active columns, then absorb reads [heard]. *)
              if !tcount > 0 then begin
                let j = ref 0 in
                for v = 0 to n - 1 do
                  if Bytes.unsafe_get transmit v = '\001' then begin
                    Array.unsafe_set tx_global !j v;
                    incr j
                  end
                done;
                Sinr.load_round f ~transmitters:tx_global ~count:!tcount;
                Parallel.Pool.run pool phase_sinr_scan
              end
          | None ->
              if !tcount > 0 && m > 0 then begin
                acount :=
                  Scheduler.fill_active_sparse scheduler ~round:t ~m sparse;
                (match ctr_active with
                | None -> ()
                | Some c ->
                    Obs.Metrics.incr ~by:!acount c;
                    (match ctr_resolved with
                    | Some c ->
                        Obs.Metrics.incr
                          ~by:
                            (if Scheduler.resolves_sparsely scheduler then
                               !acount
                             else m)
                          c
                    | None -> ()));
                for kk = 0 to !acount - 1 do
                  let e = Array.unsafe_get sparse kk in
                  let a = Array.unsafe_get eu e
                  and b = Array.unsafe_get ev e in
                  Array.unsafe_set adj_nbr (2 * kk) b;
                  Array.unsafe_set adj_next (2 * kk)
                    (Array.unsafe_get adj_head a);
                  Array.unsafe_set adj_head a (2 * kk);
                  Array.unsafe_set adj_nbr ((2 * kk) + 1) a;
                  Array.unsafe_set adj_next ((2 * kk) + 1)
                    (Array.unsafe_get adj_head b);
                  Array.unsafe_set adj_head b ((2 * kk) + 1)
                done
              end;
              if !tcount > 0 then Parallel.Pool.run pool phase_push);
          Parallel.Pool.run pool phase_absorb;
          (* Jam accounting: under the dual-graph model the decide phase
             counted suppressed transmitters; under SINR the absorb
             phase counted jammed listeners in contended rounds.  Either
             way the per-round total lands on the counter here, at the
             same round boundary the sequential engine reaches. *)
          (match ctr_jam with
          | Some c ->
              let total = Array.fold_left ( + ) 0 jam_hits in
              if total > 0 then Obs.Metrics.incr ~by:total c
          | None -> ());
          let deliveries = ref 0 and collisions = ref 0 in
          (match sink with
          | None -> ()
          | Some s ->
              for v = 0 to n - 1 do
                if Bytes.unsafe_get transmit v = '\001' then
                  Obs.Sink.emit s (Obs.Event.Transmit { round = t; node = v })
              done;
              if !tcount > 0 then begin
                let actions = !actions_r in
                for u = 0 to n - 1 do
                  match actions.(u) with
                  | Process.Transmit _ -> ()
                  | Process.Listen when is_dead u -> ()
                  | Process.Listen ->
                      let sv = A1.unsafe_get heard u in
                      if sv = -2 then begin
                        incr collisions;
                        Obs.Sink.emit s
                          (Obs.Event.Collision { round = t; node = u })
                      end
                      else if sv >= 0 then begin
                        incr deliveries;
                        Obs.Sink.emit s
                          (Obs.Event.Deliver { round = t; node = u })
                      end
                done
              end);
          if !tcount > 0 then begin
            for kk = 0 to !acount - 1 do
              let e = Array.unsafe_get sparse kk in
              Array.unsafe_set adj_head (Array.unsafe_get eu e) (-1);
              Array.unsafe_set adj_head (Array.unsafe_get ev e) (-1)
            done;
            for i = 0 to k - 1 do
              let tb = touched.(i) in
              for j = 0 to tb.len - 1 do
                A1.unsafe_set heard (Array.unsafe_get tb.data j) (-1)
              done;
              tb.len <- 0
            done
          end;
          let outputs = !outputs_r in
          Array.iteri
            (fun v outs -> if outs <> [] then env.Env.notify ~round:t ~node:v outs)
            outputs;
          if record_escapes then begin
            let record =
              {
                Trace.round = t;
                inputs = !inputs_r;
                actions = !actions_r;
                delivered = !delivered_r;
                outputs = !outputs_r;
              }
            in
            (match observer with Some f -> f record | None -> ());
            match stop with Some p when p record -> continue := false | _ -> ()
          end;
          (match sink with
          | None -> ()
          | Some s ->
              Obs.Sink.emit s
                (Obs.Event.Round_end
                   {
                     round = t;
                     transmitters = !tcount;
                     deliveries = !deliveries;
                     collisions = !collisions;
                   }));
          incr executed;
          incr round
        done;
        !executed)
  end
