let capacity_v = Atomic.make (max 1 (Domain.recommended_domain_count ()))
let in_flight_v = Atomic.make 0

let capacity () = Atomic.get capacity_v
let set_capacity c = Atomic.set capacity_v (max 1 c)
let in_flight () = Atomic.get in_flight_v

let note_spawned k = ignore (Atomic.fetch_and_add in_flight_v k)
let note_joined k = ignore (Atomic.fetch_and_add in_flight_v (-k))

let suggested_extra () = max 0 (capacity () - 1 - in_flight ())
